// Command rfsim runs one workload on the timing simulator under a chosen
// cache configuration and fill policy, and prints the performance counters.
//
// Examples:
//
//	rfsim -workload aes                          # demand-fetch baseline
//	rfsim -workload aes -window -16,15           # random fill cache
//	rfsim -workload libquantum -window 0,15      # streaming speedup
//	rfsim -workload aes -l1kind plcache -mode preload
//	rfsim -workload sjeng -l1 8192 -ways 1 -mode disable
//	rfsim -workload aes -design scattercache        # registry design by name
//	rfsim -workload aes -design randfill            # SA + the paper's window
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"randfill/internal/aes"
	"randfill/internal/cache"
	"randfill/internal/mem"
	"randfill/internal/prefetch"
	"randfill/internal/rng"
	"randfill/internal/securecache"
	"randfill/internal/sim"
	"randfill/internal/traceio"
	"randfill/internal/workloads"
)

func main() {
	workload := flag.String("workload", "aes", "aes, aesdec, or a benchmark: "+strings.Join(workloads.Names(), ", "))
	traceFile := flag.String("trace", "", "replay a trace file (see cmd/rftrace) instead of generating a workload")
	l1size := flag.Int("l1", 32*1024, "L1 data cache size in bytes")
	ways := flag.Int("ways", 4, "L1 associativity")
	l1kind := flag.String("l1kind", "sa", "L1 architecture: sa, newcache, plcache, rpcache, nomo, scattercache, mirage")
	design := flag.String("design", "", "secure-cache design from the registry: "+strings.Join(securecache.Names(), ", "))
	policy := flag.String("policy", "", "L1 replacement policy override ("+strings.Join(cache.PolicyNames(), ", ")+"; default: the architecture's own)")
	window := flag.String("window", "0,0", "random fill window as 'a,b' meaning [i-a, i+b]")
	l2window := flag.String("l2window", "0,0", "random fill window at the L2 ('a,b'; 0,0 = demand fill)")
	l3size := flag.Int("l3", 0, "add an L3 of this size in bytes (0 = two-level hierarchy)")
	l3ways := flag.Int("l3ways", 16, "L3 associativity")
	l3lat := flag.Uint64("l3lat", 40, "L3 hit latency in cycles")
	l3window := flag.String("l3window", "0,0", "random fill window at the L3 ('a,b'; requires -l3)")
	mode := flag.String("mode", "", "fill mode override: demand, randomfill, disable, preload")
	mshrs := flag.Int("mshrs", 4, "miss queue entries")
	accesses := flag.Int("n", 500000, "benchmark trace length (ignored for aes)")
	bytes := flag.Int("bytes", 32*1024, "AES CBC input size")
	seed := flag.Uint64("seed", 1, "random seed")
	steady := flag.Bool("steady", false, "warm the caches with one pass and measure the second")
	tagged := flag.Bool("prefetch", false, "attach a tagged next-line prefetcher")
	flag.Parse()

	w, err := parseWindow(*window)
	if err != nil {
		fatal(err)
	}

	w2, err := parseWindow(*l2window)
	if err != nil {
		fatal(err)
	}
	w3, err := parseWindow(*l3window)
	if err != nil {
		fatal(err)
	}

	cfg := sim.DefaultConfig()
	cfg.L1 = cache.Geometry{SizeBytes: *l1size, Ways: *ways}
	cfg.L1Kind = sim.CacheKind(*l1kind)
	if *design != "" {
		d, ok := securecache.ByName(*design)
		if !ok {
			fatal(fmt.Errorf("unknown design %q (have: %s)", *design, strings.Join(securecache.Names(), ", ")))
		}
		if d.Name == "randfill" {
			// The paper's design is the SA cache plus the random fill
			// policy; default to its evaluation window when none is given.
			cfg.L1Kind = sim.KindSA
			if w.Zero() && *mode == "" {
				w = rng.Symmetric(32)
			}
		} else {
			// Registry names deliberately match the simulator's kinds.
			cfg.L1Kind = sim.CacheKind(d.Name)
		}
	}
	if !cache.KnownPolicy(*policy) {
		fatal(fmt.Errorf("unknown policy %q (have: %s)", *policy, strings.Join(cache.PolicyNames(), ", ")))
	}
	cfg.L1Policy = *policy
	cfg.MissQueue = *mshrs
	cfg.Seed = *seed
	cfg.L2Window = w2
	if *l3size > 0 {
		cfg.Levels = []sim.LevelConfig{
			{Geom: cfg.L2, HitLat: cfg.L2HitLat, Window: w2},
			{Geom: cache.Geometry{SizeBytes: *l3size, Ways: *l3ways}, HitLat: *l3lat, Window: w3},
		}
	} else if !w3.Zero() {
		fatal(fmt.Errorf("-l3window requires -l3"))
	}

	tc := sim.ThreadConfig{}
	switch *mode {
	case "", "demand":
		if !w.Zero() {
			tc = sim.ThreadConfig{Mode: sim.ModeRandomFill, Window: w}
		}
	case "randomfill":
		tc = sim.ThreadConfig{Mode: sim.ModeRandomFill, Window: w}
	case "disable":
		tc = sim.ThreadConfig{Mode: sim.ModeDisableSecret}
	case "preload":
		tc = sim.ThreadConfig{
			Mode:          sim.ModePreload,
			SecretRegions: aes.DefaultLayout().EncTableRegions(),
			Owner:         1,
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	var trace mem.Trace
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		trace, err = traceio.Read(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		*workload = *traceFile
	} else {
		var err error
		trace, err = buildTrace(*workload, *accesses, *bytes, *seed)
		if err != nil {
			fatal(err)
		}
	}

	m := sim.New(cfg)
	if *tagged {
		m.Prefetcher = prefetch.NewTagged()
	}
	var res sim.Result
	if *steady {
		res = m.RunTraceSteady(tc, trace)
	} else {
		res = m.RunTrace(tc, trace)
	}

	fmt.Printf("workload:       %s (%d accesses, %d instructions)\n",
		*workload, len(trace), trace.Instructions())
	fmt.Printf("L1:             %v %s, window %v, mode %v\n", cfg.L1, cfg.L1Kind, w, tc.Mode)
	fmt.Printf("cycles:         %.0f\n", res.Cycles)
	fmt.Printf("IPC:            %.3f\n", res.IPC())
	fmt.Printf("L1 MPKI:        %.2f\n", res.MPKI())
	fmt.Printf("hits/misses:    %d / %d (+%d merged)\n", res.Hits, res.Misses, res.Merged)
	fmt.Printf("hit rate:       %.1f%%\n", 100*res.HitRate())
	fmt.Printf("random fills:   %d\n", res.RandomFills)
	fmt.Printf("prefetches:     %d\n", res.Prefetches)
	fmt.Printf("stall cycles:   %.0f (%.1f%%)\n", res.StallCycles, 100*res.StallCycles/res.Cycles)
	h := m.Hierarchy()
	for k := 1; k < h.Depth(); k++ {
		lvl := h.Level(k)
		s := lvl.Stats()
		fmt.Printf("L%d:             %d accesses, %d hits, %d misses, %d wb-in (%d allocated)",
			k+1, s.Accesses, s.Hits, s.Misses, s.WritebacksIn, s.WritebackAllocs)
		if fs := lvl.FillStats(); fs != nil {
			fmt.Printf(", rf issued/dropped/clamped %d/%d/%d",
				fs.RandomIssued, fs.RandomDropped, fs.RandomClamped)
		}
		fmt.Println()
	}
	fmt.Printf("memory:         %d fetches, %d write-backs\n", h.MemAccesses(), h.MemWritebacks())
}

func parseWindow(s string) (rng.Window, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return rng.Window{}, fmt.Errorf("window %q: want 'a,b'", s)
	}
	a, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
	b, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err1 != nil || err2 != nil {
		return rng.Window{}, fmt.Errorf("window %q: bad integers", s)
	}
	if a < 0 {
		a = -a // accept '-16,15' as the paper writes windows
	}
	return rng.Window{A: a, B: b}, nil
}

func buildTrace(name string, n, bytes int, seed uint64) (mem.Trace, error) {
	switch name {
	case "aes", "aesdec":
		src := rng.New(seed)
		var key, iv [16]byte
		src.Bytes(key[:])
		src.Bytes(iv[:])
		pt := make([]byte, bytes)
		src.Bytes(pt)
		c, err := aes.New(key[:])
		if err != nil {
			return nil, err
		}
		tr := &aes.Tracer{Cipher: c, Layout: aes.DefaultLayout()}
		if name == "aes" {
			_, trace, err := tr.EncryptCBC(pt, iv[:])
			return trace, err
		}
		_, trace, err := tr.DecryptCBC(pt, iv[:])
		return trace, err
	default:
		g, ok := workloads.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", name)
		}
		return g.Gen(n, seed), nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rfsim:", err)
	os.Exit(1)
}
