// Command rfbench is the repository's performance-regression harness: it
// times a fixed set of named kernels — the hot paths behind the paper's
// experiments — and writes the results as a schema'd BENCH.json, which can
// be compared against a committed baseline to gate regressions.
//
// Examples:
//
//	rfbench                          # run all kernels, JSON to stdout
//	rfbench -short -out BENCH.json   # CI smoke set, write baseline
//	rfbench -short -compare BENCH.json       # exit 1 on >20% ns/op regression
//	rfbench -kernels table3-cell,sim-replay  # subset
//	rfbench -list                            # enumerate kernels
//
// Timing is delegated to testing.Benchmark, so kernels auto-scale their
// iteration counts and report allocations exactly like `go test -bench`.
// Performance methodology, including how the kernels were chosen, is in
// DESIGN.md §7.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"

	"randfill/internal/aes"
	"randfill/internal/atomicio"
	"randfill/internal/attacks"
	"randfill/internal/cache"
	"randfill/internal/experiments"
	"randfill/internal/mem"
	"randfill/internal/parexp"
	"randfill/internal/rng"
	"randfill/internal/securecache"
	"randfill/internal/sim"
	"randfill/internal/trace"
)

// Schema identifies the BENCH.json layout; bump on incompatible change.
const Schema = "randfill-bench/v1"

// Report is the top-level BENCH.json document.
type Report struct {
	Schema  string   `json:"schema"`
	Commit  string   `json:"commit"`
	Go      string   `json:"go"`
	Kernels []Kernel `json:"kernels"`
}

// Kernel is one measured kernel.
type Kernel struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// kernelDef names a benchmark kernel. The short flag selects the reduced
// budget used by the CI smoke job; both budgets measure the same code
// paths, the short one just bounds wall-clock.
type kernelDef struct {
	name string
	desc string
	run  func(short bool, b *testing.B)
}

func kernels() []kernelDef {
	return []kernelDef{
		{
			name: "table3-cell",
			desc: "one Table III cell: sharded Monte Carlo P1-P2 + measurements-to-success search (workers=1)",
			run: func(short bool, b *testing.B) {
				sc := experiments.QuickScale()
				sc.Workers = 1
				if short {
					sc.MonteCarloTrials = 4000
					sc.AttackMaxSamples = 1 << 13
					sc.AttackBatch = 1 << 12
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tb := experiments.Table3Cell(sc, 2)
					if len(tb.Rows) != 1 {
						b.Fatal("bad cell table")
					}
				}
			},
		},
		{
			name: "collision-sweep",
			desc: "final-round collision attack measurement loop (per-sample encrypt + replay + stats)",
			run: func(short bool, b *testing.B) {
				batch := 2000
				if short {
					batch = 500
				}
				cfg := attacks.CollisionConfig{Sim: sim.DefaultConfig(), Seed: 7}
				cfg.Sim.MissQueue = 2
				a := attacks.NewCollision(cfg)
				a.Collect(8) // warm scratch buffers out of the timed region
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					a.Collect(batch)
				}
			},
		},
		{
			name: "sim-replay",
			desc: "timing-simulator batch replay of an AES-CBC trace under a random fill window",
			run: func(short bool, b *testing.B) {
				tr := aesTrace(b, 11, short)
				machine := sim.New(sim.DefaultConfig())
				thread := machine.NewThread(sim.ThreadConfig{
					Mode:   sim.ModeRandomFill,
					Window: rng.Symmetric(16),
				})
				// Compile once, replay per op: the batch core's contract is
				// that a trace is decoded a single time (DESIGN.md §12), so
				// the kernel times replay of the precompiled word stream.
				ct := trace.Compile(tr)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					thread.ReplayBatch(ct)
					thread.Drain()
				}
			},
		},
		{
			name: "hierarchy-replay",
			desc: "3-level hierarchy batch replay of an AES-CBC trace: random fill at L1 and L2, demand-fill L3",
			run: func(short bool, b *testing.B) {
				tr := aesTrace(b, 13, short)
				cfg := sim.DefaultConfig()
				cfg.Levels = []sim.LevelConfig{
					{Geom: cache.Geometry{SizeBytes: 256 * 1024, Ways: 8}, HitLat: 12, Window: rng.Window{A: 8, B: 7}},
					{Geom: cache.Geometry{SizeBytes: 2 * 1024 * 1024, Ways: 16}, HitLat: 40},
				}
				machine := sim.New(cfg)
				thread := machine.NewThread(sim.ThreadConfig{
					Mode:   sim.ModeRandomFill,
					Window: rng.Symmetric(16),
				})
				ct := trace.Compile(tr)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					thread.ReplayBatch(ct)
					thread.Drain()
				}
			},
		},
		{
			name: "replay-batch",
			desc: "windowed concurrent replay: 8 cold windows of an AES-CBC trace across the parexp pool",
			run: func(short bool, b *testing.B) {
				tr := aesTrace(b, 11, short)
				ct := trace.Compile(tr)
				cfg := sim.DefaultConfig()
				cfg.Seed = 11
				tc := sim.ThreadConfig{
					Mode:   sim.ModeRandomFill,
					Window: rng.Symmetric(16),
				}
				want := uint64(0)
				for i := range tr {
					want += tr[i].Instructions()
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rs := sim.ReplayWindows(cfg, tc, ct, parexp.Shards, 0)
					if sim.MergeResults(rs).Instructions != want {
						b.Fatal("windowed replay lost instructions")
					}
				}
			},
		},
		{
			name: "occupancy-probe",
			desc: "cache-occupancy attack round loop: prime, victim sweep, probe-miss count (scattercache)",
			run: func(short bool, b *testing.B) {
				trials := 100
				if short {
					trials = 25
				}
				p := attacks.NewOccupancyProber(attacks.OccupancyConfig{
					NewCache: func(src *rng.Source) securecache.SecureCache {
						c, err := securecache.New("scattercache", securecache.Config{
							Geom: cache.Geometry{SizeBytes: 8 * 1024, Ways: 4},
						}, src)
						if err != nil {
							b.Fatal(err)
						}
						return c
					},
					Lines:       96,
					VictimSizes: []int{16, 32, 64, 96},
					Trials:      trials,
					Seed:        17,
				})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// Each Run continues the prober's RNG stream: fresh
					// rounds per op, zero allocations (the scratch pins in
					// internal/attacks hold this at 0 allocs/op).
					if res := p.Run(); res.Trials != 4*trials {
						b.Fatal("short occupancy run")
					}
				}
			},
		},
		{
			name: "flushreload-probe",
			desc: "Flush-Reload probe loop: flush, victim access, reload over the observable range",
			run: func(short bool, b *testing.B) {
				trials := 4000
				if short {
					trials = 1000
				}
				p := attacks.NewFlushReloadProber(attacks.FlushReloadConfig{
					NewCache: func(src *rng.Source) cache.Cache {
						return cache.NewSetAssoc(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}, cache.LRU{})
					},
					Window: rng.Symmetric(32),
					Region: mem.Region{Base: 0x11000, Size: 1024},
					Trials: trials,
					Seed:   9,
				})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if res := p.Run(); res.Trials != trials {
						b.Fatal("short flush-reload run")
					}
				}
			},
		},
	}
}

// aesTrace builds the shared AES-CBC replay workload: an 8 KB (short: 2 KB)
// encryption traced at the default table layout, seeded deterministically.
func aesTrace(b *testing.B, seed uint64, short bool) mem.Trace {
	bytes := 8 * 1024
	if short {
		bytes = 2 * 1024
	}
	src := rng.New(seed)
	var key, iv [16]byte
	src.Bytes(key[:])
	src.Bytes(iv[:])
	pt := make([]byte, bytes)
	src.Bytes(pt)
	cipher, err := aes.New(key[:])
	if err != nil {
		b.Fatal(err)
	}
	tracer := &aes.Tracer{Cipher: cipher, Layout: aes.DefaultLayout()}
	_, tr, err := tracer.EncryptCBC(pt, iv[:])
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func main() {
	short := flag.Bool("short", false, "run the reduced CI smoke budgets")
	out := flag.String("out", "", "write BENCH.json to this file (default stdout)")
	compare := flag.String("compare", "", "baseline BENCH.json to diff against; regressions beyond -threshold exit nonzero")
	threshold := flag.Float64("threshold", 20, "ns/op regression tolerance for -compare, in percent")
	names := flag.String("kernels", "", "comma-separated kernel subset (default all)")
	list := flag.Bool("list", false, "list kernels and exit")
	commit := flag.String("commit", "", "commit hash to record (default from build info)")
	flag.Parse()

	defs := kernels()
	if *list {
		for _, k := range defs {
			fmt.Printf("%-18s %s\n", k.name, k.desc)
		}
		return
	}
	if *names != "" {
		defs = selectKernels(defs, strings.Split(*names, ","))
	}

	rep := Report{Schema: Schema, Commit: commitHash(*commit), Go: runtime.Version()}
	for _, k := range defs {
		def := k
		fmt.Fprintf(os.Stderr, "running %s...\n", def.name)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			def.run(*short, b)
		})
		rep.Kernels = append(rep.Kernels, Kernel{
			Name:        def.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}

	if err := emit(rep, *out); err != nil {
		fatal(err)
	}
	if *compare != "" {
		ok, err := compareBaseline(rep, *compare, *threshold)
		if err != nil {
			fatal(err)
		}
		if !ok {
			os.Exit(1)
		}
	}
}

func selectKernels(defs []kernelDef, names []string) []kernelDef {
	byName := func(n string) *kernelDef {
		for i := range defs {
			if defs[i].name == n {
				return &defs[i]
			}
		}
		return nil
	}
	var out []kernelDef
	for _, n := range names {
		n = strings.TrimSpace(n)
		k := byName(n)
		if k == nil {
			fatal(fmt.Errorf("unknown kernel %q (see -list)", n))
		}
		out = append(out, *k)
	}
	return out
}

// commitHash resolves the commit to record: explicit flag, then the VCS
// stamp the go tool embeds when building from a checkout, then "unknown"
// (e.g. `go run` of a dirty tree with VCS stamping off).
func commitHash(override string) string {
	if override != "" {
		return override
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return "unknown"
}

func emit(rep Report, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err := os.Stdout.Write(data)
		return err
	}
	// Atomic so an interrupted run can never leave a half-written BENCH.json
	// for compareBaseline (or CI) to choke on.
	return atomicio.WriteFile(path, data, 0o644)
}

// compareBaseline prints a benchstat-style delta table of rep against the
// baseline file — ns/op and allocs/op side by side, with a geomean speedup
// over the kernels both runs measured — and reports whether every kernel is
// within the ns/op regression threshold. Kernels present on only one side are
// reported but never fail the gate (adding a kernel must not require
// regenerating history first).
func compareBaseline(rep Report, path string, thresholdPct float64) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return false, fmt.Errorf("%s: %v", path, err)
	}
	if base.Schema != Schema {
		return false, fmt.Errorf("%s: schema %q, want %q", path, base.Schema, Schema)
	}
	old := make(map[string]Kernel, len(base.Kernels))
	for _, k := range base.Kernels {
		old[k.Name] = k
	}

	fmt.Printf("comparing against %s (commit %s)\n", path, base.Commit)
	fmt.Printf("%-18s %14s %14s %8s %10s %10s %8s\n",
		"kernel", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta")
	ok := true
	logRatioSum, compared := 0.0, 0
	for _, k := range rep.Kernels {
		o, found := old[k.Name]
		if !found {
			fmt.Printf("%-18s %14s %14.0f %8s %10s %10d %8s  (new kernel)\n",
				k.Name, "-", k.NsPerOp, "-", "-", k.AllocsPerOp, "-")
			continue
		}
		delta := 100 * (k.NsPerOp - o.NsPerOp) / o.NsPerOp
		verdict := ""
		if delta > thresholdPct {
			verdict = "  REGRESSION"
			ok = false
		}
		fmt.Printf("%-18s %14.0f %14.0f %+7.1f%% %10d %10d %8s%s\n",
			k.Name, o.NsPerOp, k.NsPerOp, delta,
			o.AllocsPerOp, k.AllocsPerOp, allocDelta(o.AllocsPerOp, k.AllocsPerOp), verdict)
		if o.NsPerOp > 0 && k.NsPerOp > 0 {
			logRatioSum += math.Log(k.NsPerOp / o.NsPerOp)
			compared++
		}
	}
	for _, k := range base.Kernels {
		if _, found := findKernel(rep.Kernels, k.Name); !found {
			fmt.Printf("%-18s %14.0f %14s %8s %10d %10s %8s  (not run)\n",
				k.Name, k.NsPerOp, "-", "-", k.AllocsPerOp, "-", "-")
		}
	}
	if compared > 0 {
		// benchstat convention: geomean of new/old time ratios over the
		// kernels measured on both sides; < 1.00x means faster overall.
		fmt.Printf("geomean ns/op ratio (new/old) over %d kernels: %.2fx\n",
			compared, math.Exp(logRatioSum/float64(compared)))
	}
	if !ok {
		fmt.Printf("FAIL: ns/op regression beyond %.0f%% tolerance\n", thresholdPct)
	}
	return ok, nil
}

// allocDelta formats the allocs/op change as a benchstat-style percentage,
// with the 0 → 0 and N → 0 edges spelled out.
func allocDelta(old, new int64) string {
	switch {
	case old == new:
		return "0.0%"
	case old == 0:
		return "+inf"
	default:
		return fmt.Sprintf("%+.1f%%", 100*float64(new-old)/float64(old))
	}
}

func findKernel(ks []Kernel, name string) (Kernel, bool) {
	for _, k := range ks {
		if k.Name == name {
			return k, true
		}
	}
	return Kernel{}, false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rfbench:", err)
	os.Exit(2)
}
