package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func sampleReport(ns float64) Report {
	return Report{
		Schema: Schema,
		Commit: "deadbeef",
		Go:     "go1.22",
		Kernels: []Kernel{
			{Name: "table3-cell", Iterations: 3, NsPerOp: ns, BytesPerOp: 64, AllocsPerOp: 1},
			{Name: "sim-replay", Iterations: 100, NsPerOp: 1000, BytesPerOp: 0, AllocsPerOp: 0},
		},
	}
}

func writeReport(t *testing.T, rep Report) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH.json")
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareWithinThreshold(t *testing.T) {
	base := writeReport(t, sampleReport(1000))
	ok, err := compareBaseline(sampleReport(1100), base, 20)
	if err != nil || !ok {
		t.Fatalf("10%% slower flagged as regression: ok=%v err=%v", ok, err)
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	base := writeReport(t, sampleReport(1000))
	ok, err := compareBaseline(sampleReport(1500), base, 20)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("50% slowdown passed the 20% gate")
	}
}

func TestCompareIgnoresNewAndMissingKernels(t *testing.T) {
	base := sampleReport(1000)
	base.Kernels = append(base.Kernels, Kernel{Name: "retired-kernel", NsPerOp: 5})
	path := writeReport(t, base)
	rep := sampleReport(1000)
	rep.Kernels = append(rep.Kernels, Kernel{Name: "brand-new", NsPerOp: 7})
	ok, err := compareBaseline(rep, path, 20)
	if err != nil || !ok {
		t.Fatalf("kernel set drift failed the gate: ok=%v err=%v", ok, err)
	}
}

func TestCompareRejectsWrongSchema(t *testing.T) {
	base := sampleReport(1000)
	base.Schema = "randfill-bench/v0"
	path := writeReport(t, base)
	if _, err := compareBaseline(sampleReport(1000), path, 20); err == nil {
		t.Error("wrong schema accepted")
	}
}

func TestSelectKernelsPreservesRequestOrder(t *testing.T) {
	defs := selectKernels(kernels(), []string{"sim-replay", " table3-cell"})
	if len(defs) != 2 || defs[0].name != "sim-replay" || defs[1].name != "table3-cell" {
		t.Fatalf("selectKernels = %v", defs)
	}
}

func TestEmitRoundTrips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := emit(sampleReport(42), path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema || len(rep.Kernels) != 2 || rep.Kernels[0].NsPerOp != 42 {
		t.Fatalf("round trip lost data: %+v", rep)
	}
}
