// Command rflint runs the repository's domain-aware static analysis: the
// determinism, RNG-hygiene, and simulator-invariant checkers in
// internal/analysis/checkers. See DESIGN.md ("Determinism & lint policy").
//
// Usage:
//
//	rflint [flags] [./...|dir]
//
// With no argument (or "./..."), the whole module containing the current
// directory is analyzed, tests included. A directory argument restricts
// reporting to the packages under that directory (the rest of the module is
// still loaded so cross-package types resolve). Findings can be suppressed
// inline with "//lint:ignore <checker> <reason>" on the offending line or
// the line above.
//
// Flags:
//
//	-json              emit diagnostics as a JSON array
//	-checkers a,b,...  run only the named checkers (default: all)
//	-fail-on  sev      exit nonzero at this severity: warning|error|never
//	-tests=false       skip _test.go files
//	-list              print the available checkers and exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"randfill/internal/analysis"
	"randfill/internal/analysis/checkers"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	checkerList := flag.String("checkers", "", "comma-separated checkers to run (default all)")
	failOn := flag.String("fail-on", "warning", "exit nonzero at this severity: warning, error, or never")
	tests := flag.Bool("tests", true, "include _test.go files")
	list := flag.Bool("list", false, "list available checkers and exit")
	flag.Parse()

	if *list {
		for _, az := range checkers.All() {
			fmt.Printf("%-12s %s\n", az.Name(), az.Doc())
		}
		return
	}

	switch *failOn {
	case "warning", "error", "never":
	default:
		fatal(fmt.Errorf("bad -fail-on %q (want warning, error, or never)", *failOn))
	}

	azs := checkers.All()
	if *checkerList != "" {
		var err error
		azs, err = checkers.ByName(*checkerList)
		if err != nil {
			fatal(err)
		}
	}

	dir := "."
	switch flag.NArg() {
	case 0:
	case 1:
		if arg := flag.Arg(0); arg != "./..." {
			dir = arg
		}
	default:
		fatal(fmt.Errorf("at most one package argument, got %d", flag.NArg()))
	}

	fset, pkgs, err := analysis.Load(analysis.LoadConfig{Dir: dir, Tests: *tests})
	if err != nil {
		fatal(err)
	}
	if dir != "." {
		abs, err := filepath.Abs(dir)
		if err != nil {
			fatal(err)
		}
		var kept []*analysis.Package
		for _, pkg := range pkgs {
			if pkg.Dir == abs || strings.HasPrefix(pkg.Dir, abs+string(filepath.Separator)) {
				kept = append(kept, pkg)
			}
		}
		pkgs = kept
	}
	if len(pkgs) == 0 {
		// testdata/vendor/hidden dirs are skipped; "clean" would be a lie here.
		fatal(fmt.Errorf("no Go packages found under %s", dir))
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "rflint: %s: type error (analysis degraded): %v\n", pkg.Path, terr)
		}
	}

	diags, err := analysis.Run(fset, pkgs, azs)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) == 0 {
			fmt.Println("rflint: clean")
		}
	}

	if *failOn == "never" {
		return
	}
	threshold, err := analysis.ParseSeverity(*failOn)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		if d.Severity >= threshold {
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rflint:", err)
	os.Exit(1)
}
