// Command rflint runs the repository's domain-aware static analysis: the
// determinism, RNG-hygiene, and simulator-invariant checkers in
// internal/analysis/checkers. See DESIGN.md ("Determinism & lint policy"
// and "Taint analysis & the leak manifest").
//
// Usage:
//
//	rflint [flags] [./...|dir]
//
// With no argument (or "./..."), the whole module containing the current
// directory is analyzed, tests included. A directory argument restricts
// reporting to the packages under that directory (the whole module is
// still loaded and analyzed so cross-package taint and types resolve).
// Findings can be suppressed inline with "//lint:ignore <checker> <reason>"
// on the offending line or the line above.
//
// The ctflow checker's findings are reconciled against the committed leak
// manifest (LEAKS.json at the module root): findings listed there are the
// victim packages' intentional leaks and are expected; findings not listed
// are new leaks; listed entries with no finding mean a victim stopped
// leaking. Both directions fail the run.
//
// Flags:
//
//	-json              emit diagnostics as a JSON array
//	-checkers a,b,...  run only the named checkers (default: all)
//	-fail-on  sev      exit nonzero at this severity: warning|error|never
//	-tests=false       skip _test.go files
//	-list              print the available checkers and exit
//	-trace             print each finding's source→hop→sink witness path
//	-manifest path     leak manifest ("auto" = <module>/LEAKS.json, "none" = off)
//	-write-manifest    regenerate the leak manifest from current findings
//	-since ref         report only packages with files changed since the git ref
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"randfill/internal/analysis"
	"randfill/internal/analysis/checkers"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	checkerList := flag.String("checkers", "", "comma-separated checkers to run (default all)")
	failOn := flag.String("fail-on", "warning", "exit nonzero at this severity: warning, error, or never")
	tests := flag.Bool("tests", true, "include _test.go files")
	list := flag.Bool("list", false, "list available checkers and exit")
	trace := flag.Bool("trace", false, "print each finding's source→hop→sink witness path")
	manifestFlag := flag.String("manifest", "auto", `leak manifest path ("auto" = <module>/LEAKS.json, "none" = disabled)`)
	writeManifest := flag.Bool("write-manifest", false, "regenerate the leak manifest from current ctflow findings")
	since := flag.String("since", "", "report only packages with files changed since this git ref")
	flag.Parse()

	if *list {
		for _, az := range checkers.All() {
			fmt.Printf("%-12s %s\n", az.Name(), az.Doc())
		}
		return
	}

	switch *failOn {
	case "warning", "error", "never":
	default:
		fatal(fmt.Errorf("bad -fail-on %q (want warning, error, or never)", *failOn))
	}

	azs := checkers.All()
	if *checkerList != "" {
		var err error
		azs, err = checkers.ByName(*checkerList)
		if err != nil {
			fatal(err)
		}
	}

	dir := "."
	switch flag.NArg() {
	case 0:
	case 1:
		if arg := flag.Arg(0); arg != "./..." {
			dir = arg
		}
	default:
		fatal(fmt.Errorf("at most one package argument, got %d", flag.NArg()))
	}
	if *since != "" && dir != "." {
		fatal(fmt.Errorf("-since and a directory argument are mutually exclusive"))
	}

	modRoot, _, err := analysis.FindModuleRoot(dir)
	if err != nil {
		fatal(err)
	}

	// The whole module is always loaded and analyzed — interprocedural
	// taint needs every package — and scoping only restricts what is
	// *reported*.
	fset, pkgs, err := analysis.Load(analysis.LoadConfig{Dir: dir, Tests: *tests})
	if err != nil {
		fatal(err)
	}

	// scope is the set of package directories to report on; nil = all.
	var scope map[string]bool
	if dir != "." {
		abs, err := filepath.Abs(dir)
		if err != nil {
			fatal(err)
		}
		scope = map[string]bool{}
		for _, pkg := range pkgs {
			if pkg.Dir == abs || strings.HasPrefix(pkg.Dir, abs+string(filepath.Separator)) {
				scope[pkg.Dir] = true
			}
		}
		if len(scope) == 0 {
			// testdata/vendor/hidden dirs are skipped; "clean" would be a lie here.
			fatal(fmt.Errorf("no Go packages found under %s", dir))
		}
	}
	if *since != "" {
		scope, err = changedScope(modRoot, *since, pkgs)
		if err != nil {
			fatal(err)
		}
		if scope != nil && len(scope) == 0 {
			fmt.Printf("rflint: no packages changed since %s\n", *since)
			return
		}
	}

	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "rflint: %s: type error (analysis degraded): %v\n", pkg.Path, terr)
		}
	}

	diags, err := analysis.Run(fset, pkgs, azs)
	if err != nil {
		fatal(err)
	}
	if scope != nil {
		var kept []analysis.Diagnostic
		for _, d := range diags {
			if scope[filepath.Dir(d.File)] {
				kept = append(kept, d)
			}
		}
		diags = kept
	}

	// Reconcile ctflow findings with the leak manifest.
	manifestPath := ""
	switch *manifestFlag {
	case "none":
	case "auto", "":
		p := filepath.Join(modRoot, analysis.ManifestName)
		if _, err := os.Stat(p); err == nil || *writeManifest {
			manifestPath = p
		}
	default:
		manifestPath = *manifestFlag
	}
	if *writeManifest {
		if manifestPath == "" {
			fatal(fmt.Errorf("-write-manifest needs a manifest path (-manifest is %q)", *manifestFlag))
		}
		old, _ := analysis.LoadManifest(manifestPath)
		m := analysis.BuildManifest(diags, modRoot, old)
		if err := m.WriteManifest(manifestPath); err != nil {
			fatal(err)
		}
		fmt.Printf("rflint: wrote %d leak sites to %s\n", len(m.Leaks), manifestPath)
	}
	if manifestPath != "" {
		m, err := analysis.LoadManifest(manifestPath)
		if err != nil {
			fatal(err)
		}
		var inScope func(string) bool
		if scope != nil {
			inScope = func(rel string) bool {
				return scope[filepath.Join(modRoot, filepath.FromSlash(filepath.Dir(rel)))]
			}
		}
		diags = m.Apply(diags, modRoot, inScope)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
			if *trace {
				for _, s := range d.Trace {
					if s.File != "" {
						fmt.Printf("    %s:%d: %s\n", s.File, s.Line, s.Desc)
					} else {
						fmt.Printf("    %s\n", s.Desc)
					}
				}
			}
		}
		if len(diags) == 0 {
			fmt.Println("rflint: clean")
		}
	}

	if *failOn == "never" {
		return
	}
	threshold, err := analysis.ParseSeverity(*failOn)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		if d.Severity >= threshold {
			os.Exit(1)
		}
	}
}

// changedScope maps `git diff --name-only <ref>` (plus untracked files) to
// the set of package directories to report on. A change to the analysis
// framework, the checkers, this command, or go.mod invalidates every
// package's verdict, so those return a nil scope (= full lint).
//
// Both git commands run in modRoot, and the diff uses --relative with a
// `.` pathspec so paths come back relative to the module root even when
// the module lives in a subdirectory of the git repository (git's default
// is top-level-relative paths, which would map to nonexistent dirs and
// silently empty the scope). ls-files is cwd-relative already.
func changedScope(modRoot, ref string, pkgs []*analysis.Package) (map[string]bool, error) {
	files, err := gitLines(modRoot, "diff", "--name-only", "--relative", ref, "--", ".")
	if err != nil {
		return nil, fmt.Errorf("-since %s: %w", ref, err)
	}
	untracked, err := gitLines(modRoot, "ls-files", "--others", "--exclude-standard")
	if err != nil {
		return nil, fmt.Errorf("-since %s: %w", ref, err)
	}
	files = append(files, untracked...)

	byDir := map[string]bool{}
	for _, pkg := range pkgs {
		byDir[pkg.Dir] = false
	}
	scope := map[string]bool{}
	for _, f := range files {
		if f == "go.mod" || f == "go.sum" ||
			strings.HasPrefix(f, "internal/analysis/") ||
			strings.HasPrefix(f, "cmd/rflint/") {
			return nil, nil // the lint rules themselves changed: full lint
		}
		dir := filepath.Join(modRoot, filepath.FromSlash(filepath.Dir(f)))
		if _, ok := byDir[dir]; ok {
			scope[dir] = true
		}
	}
	return scope, nil
}

func gitLines(dir string, args ...string) ([]string, error) {
	cmd := exec.Command("git", args...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("git %s: %v: %s", strings.Join(args, " "), err, strings.TrimSpace(errBuf.String()))
	}
	var lines []string
	for _, l := range strings.Split(out.String(), "\n") {
		if l = strings.TrimSpace(l); l != "" {
			lines = append(lines, l)
		}
	}
	return lines, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rflint:", err)
	os.Exit(1)
}
