// Command rftrace generates, inspects, and dumps memory access traces.
//
// Examples:
//
//	rftrace gen -workload libquantum -n 500000 -o lq.trace
//	rftrace gen -workload aes -bytes 32768 -o aes.trace
//	rftrace info lq.trace
//	rftrace dump -n 20 lq.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"randfill/internal/aes"
	"randfill/internal/mem"
	"randfill/internal/rng"
	"randfill/internal/traceio"
	"randfill/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "dump":
		cmdDump(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  rftrace gen  -workload NAME [-n N] [-bytes B] [-seed S] -o FILE
  rftrace info FILE
  rftrace dump [-n N] FILE`)
	os.Exit(2)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	workload := fs.String("workload", "aes", "aes, aesdec, or a benchmark name")
	n := fs.Int("n", 500000, "benchmark trace length")
	bytes := fs.Int("bytes", 32*1024, "AES CBC input size")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("o", "", "output file (required)")
	fs.Parse(args)
	if *out == "" {
		fatal(fmt.Errorf("gen: -o is required"))
	}

	trace, err := buildTrace(*workload, *n, *bytes, *seed)
	if err != nil {
		fatal(err)
	}
	// Atomic write: a failure anywhere (including the final flush on a full
	// disk) leaves any existing file untouched and never a truncated trace.
	size, err := traceio.WriteFile(*out, trace)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d accesses (%d bytes, %.2f bytes/access) to %s\n",
		len(trace), size, float64(size)/float64(len(trace)), *out)
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	trace := load(fs)
	fmt.Println(traceio.Summarize(trace))
}

func cmdDump(args []string) {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	n := fs.Int("n", 50, "records to print (0 = all)")
	fs.Parse(args)
	trace := load(fs)
	if err := traceio.DumpText(os.Stdout, trace, *n); err != nil {
		fatal(err)
	}
}

func load(fs *flag.FlagSet) mem.Trace {
	if fs.NArg() != 1 {
		usage()
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	trace, err := traceio.Read(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
	return trace
}

func buildTrace(name string, n, bytes int, seed uint64) (mem.Trace, error) {
	switch name {
	case "aes", "aesdec":
		src := rng.New(seed)
		var key, iv [16]byte
		src.Bytes(key[:])
		src.Bytes(iv[:])
		pt := make([]byte, bytes)
		src.Bytes(pt)
		c, err := aes.New(key[:])
		if err != nil {
			return nil, err
		}
		tr := &aes.Tracer{Cipher: c, Layout: aes.DefaultLayout()}
		if name == "aes" {
			_, trace, err := tr.EncryptCBC(pt, iv[:])
			return trace, err
		}
		_, trace, err := tr.DecryptCBC(pt, iv[:])
		return trace, err
	default:
		g, ok := workloads.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", name)
		}
		return g.Gen(n, seed), nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rftrace:", err)
	os.Exit(1)
}
