package main

// The fabric suite drives the real experiments binary as a multi-process
// fleet over a shared fabric directory and asserts the distributed
// acceptance contract: the coordinator's rendered stdout is byte-identical
// to a single-process run no matter how many worker processes ran, died
// mid-unit, or were re-dispatched — and -join merges any set of partial
// stores to the same bytes.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"randfill/internal/faultinject"
)

// proc is one running experiments process with captured streams.
type proc struct {
	cmd      *exec.Cmd
	out, err bytes.Buffer
}

// startBin launches the experiments binary without waiting and registers a
// hard-kill cleanup so a hung process cannot wedge the test run.
func startBin(t *testing.T, args ...string) *proc {
	t.Helper()
	p := &proc{cmd: exec.Command(binary(t), args...)}
	p.cmd.Stdout, p.cmd.Stderr = &p.out, &p.err
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("starting %v: %v", args, err)
	}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			// Best-effort teardown of an already-failed test.
			_ = p.cmd.Process.Kill()
			_ = p.cmd.Wait()
		}
	})
	return p
}

// wait blocks for the process and returns its streams and exit code.
func (p *proc) wait(t *testing.T) runResult {
	t.Helper()
	err := p.cmd.Wait()
	code := 0
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("waiting for %v: %v", p.cmd.Args, err)
		}
		code = ee.ExitCode()
	}
	return runResult{p.out.String(), p.err.String(), code}
}

// coordArgs builds the coordinator command line with test-friendly timing.
func coordArgs(dir, name string, extra ...string) []string {
	return append([]string{"-role", "coordinator", "-fabric-dir", dir,
		"-run", name, "-scale", "quick",
		"-lease-ttl", "2s", "-fabric-poll", "50ms"}, extra...)
}

// workerArgs builds a worker command line with test-friendly timing.
func workerArgs(dir, name, id string, extra ...string) []string {
	return append([]string{"-role", "worker", "-fabric-dir", dir,
		"-run", name, "-scale", "quick", "-worker-id", id,
		"-lease-ttl", "2s", "-fabric-poll", "50ms",
		"-worker-idle-exit", "2m"}, extra...)
}

// fabricRun runs one coordinator plus n external workers to completion and
// returns the coordinator's result and each worker's exit code.
// workerFaults maps worker index -> -fault-plan spec.
func fabricRun(t *testing.T, name string, n int, workerFaults map[int]string) (runResult, []int) {
	t.Helper()
	dir := t.TempDir()
	coord := startBin(t, coordArgs(dir, name)...)
	workers := make([]*proc, n)
	for i := range workers {
		args := workerArgs(dir, name, fmt.Sprintf("w%d", i))
		if f, ok := workerFaults[i]; ok {
			args = append(args, "-fault-plan", f)
		}
		workers[i] = startBin(t, args...)
	}
	res := coord.wait(t)
	codes := make([]int, n)
	for i, w := range workers {
		codes[i] = w.wait(t).code
	}
	return res, codes
}

// TestFabricByteIdenticalAcrossTopologies is the headline distributed
// acceptance test: for an attack experiment and the policy matrix, a
// single-process 8-worker run, a 4-worker-process fabric run, and a
// 4-worker fabric run with 2 workers fault-killed mid-run all print the
// same bytes.
func TestFabricByteIdenticalAcrossTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fabric runs")
	}
	for _, name := range []string{"Figure2", "PolicyMatrix"} {
		t.Run(name, func(t *testing.T) {
			clean := runBin(t, "-run", name, "-scale", "quick", "-workers", "8")
			if clean.code != 0 {
				t.Fatalf("clean run exited %d:\n%s", clean.code, clean.stderr)
			}

			t.Run("FourWorkers", func(t *testing.T) {
				res, codes := fabricRun(t, name, 4, nil)
				if res.code != 0 {
					t.Fatalf("coordinator exited %d:\n%s", res.code, res.stderr)
				}
				if res.stdout != clean.stdout {
					t.Errorf("fabric stdout differs from single-process run\n--- fabric ---\n%s--- clean ---\n%s",
						res.stdout, clean.stdout)
				}
				for i, c := range codes {
					if c != 0 {
						t.Errorf("worker %d exited %d", i, c)
					}
				}
			})

			t.Run("TwoWorkersKilled", func(t *testing.T) {
				// Workers 0 and 1 hard-exit after completing one unit each;
				// the survivors absorb the remaining work and any leases the
				// dead workers still held are re-dispatched after expiry.
				res, codes := fabricRun(t, name, 4, map[int]string{
					0: "kill-worker-after-units=1",
					1: "kill-worker-after-units=1",
				})
				if res.code != 0 {
					t.Fatalf("coordinator exited %d:\n%s", res.code, res.stderr)
				}
				if res.stdout != clean.stdout {
					t.Errorf("fabric stdout after worker kills differs from single-process run\n--- fabric ---\n%s--- clean ---\n%s",
						res.stdout, clean.stdout)
				}
				for _, i := range []int{0, 1} {
					if codes[i] != faultinject.KillExitCode {
						t.Errorf("killed worker %d exited %d, want %d", i, codes[i], faultinject.KillExitCode)
					}
				}
				for _, i := range []int{2, 3} {
					if codes[i] != 0 {
						t.Errorf("surviving worker %d exited %d", i, codes[i])
					}
				}
			})
		})
	}
}

// TestFabricKillWholeWorkerMidUnit: a worker is SIGKILLed while stalled
// inside a unit, holding its lease. The lease expires, the coordinator
// re-dispatches the unit to the surviving worker, and the rendered table
// still matches the single-process bytes.
func TestFabricKillWholeWorkerMidUnit(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fabric runs")
	}
	clean := runBin(t, "-run", "Figure2", "-scale", "quick", "-workers", "8")
	if clean.code != 0 {
		t.Fatalf("clean run exited %d:\n%s", clean.code, clean.stderr)
	}

	dir := t.TempDir()
	coord := startBin(t, coordArgs(dir, "Figure2")...)
	// w0 stalls for two minutes inside its first unit, so the SIGKILL is
	// guaranteed to land mid-unit with a claimed lease.
	stalled := startBin(t, workerArgs(dir, "Figure2", "w0",
		"-fault-plan", "stall-worker=0:2m")...)
	time.Sleep(1500 * time.Millisecond)
	if err := stalled.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	survivor := startBin(t, workerArgs(dir, "Figure2", "w1")...)

	res := coord.wait(t)
	if res.code != 0 {
		t.Fatalf("coordinator exited %d:\n%s", res.code, res.stderr)
	}
	if res.stdout != clean.stdout {
		t.Errorf("stdout after whole-worker kill differs from single-process run\n--- fabric ---\n%s--- clean ---\n%s",
			res.stdout, clean.stdout)
	}
	stalled.wait(t) // reap; a SIGKILLed process has no meaningful exit contract
	if c := survivor.wait(t).code; c != 0 {
		t.Errorf("surviving worker exited %d", c)
	}
	if !strings.Contains(res.stderr, "re-dispatched") {
		t.Errorf("coordinator stderr does not report re-dispatch:\n%s", res.stderr)
	}
}

// TestFabricTornLeaseRedispatch: the coordinator's own lease write is torn
// mid-file by the fault plan. The torn lease reads as absent, the unit is
// re-dispatched, and the output is still byte-identical.
func TestFabricTornLeaseRedispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fabric runs")
	}
	clean := runBin(t, "-run", "Figure2", "-scale", "quick", "-workers", "8")
	if clean.code != 0 {
		t.Fatalf("clean run exited %d:\n%s", clean.code, clean.stderr)
	}
	dir := t.TempDir()
	coord := startBin(t, append(coordArgs(dir, "Figure2"),
		"-fault-plan", "torn-lease=2")...)
	worker := startBin(t, workerArgs(dir, "Figure2", "w0")...)
	res := coord.wait(t)
	if res.code != 0 {
		t.Fatalf("coordinator exited %d:\n%s", res.code, res.stderr)
	}
	if res.stdout != clean.stdout {
		t.Error("stdout after torn lease differs from single-process run")
	}
	if c := worker.wait(t).code; c != 0 {
		t.Errorf("worker exited %d", c)
	}
}

// TestFabricClockSkewedWorker: a worker whose clock runs 45 seconds ahead
// writes lease deadlines far in the future; the run still completes to the
// exact single-process bytes.
func TestFabricClockSkewedWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fabric runs")
	}
	clean := runBin(t, "-run", "Figure2", "-scale", "quick", "-workers", "8")
	if clean.code != 0 {
		t.Fatalf("clean run exited %d:\n%s", clean.code, clean.stderr)
	}
	dir := t.TempDir()
	coord := startBin(t, coordArgs(dir, "Figure2")...)
	worker := startBin(t, workerArgs(dir, "Figure2", "w0",
		"-fault-plan", "clock-skew=45s")...)
	res := coord.wait(t)
	if res.code != 0 {
		t.Fatalf("coordinator exited %d:\n%s", res.code, res.stderr)
	}
	if res.stdout != clean.stdout {
		t.Error("stdout with a clock-skewed worker differs from single-process run")
	}
	if c := worker.wait(t).code; c != 0 {
		t.Errorf("worker exited %d", c)
	}
}

// TestFabricSpawn: the coordinator's -fabric-spawn convenience launches its
// own worker subprocesses and the result matches the single-process bytes.
func TestFabricSpawn(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fabric runs")
	}
	clean := runBin(t, "-run", "Figure2", "-scale", "quick", "-workers", "8")
	if clean.code != 0 {
		t.Fatalf("clean run exited %d:\n%s", clean.code, clean.stderr)
	}
	res := runBin(t, append(coordArgs(t.TempDir(), "Figure2"),
		"-fabric-spawn", "3")...)
	if res.code != 0 {
		t.Fatalf("coordinator exited %d:\n%s", res.code, res.stderr)
	}
	if res.stdout != clean.stdout {
		t.Errorf("-fabric-spawn stdout differs from single-process run\n--- fabric ---\n%s--- clean ---\n%s",
			res.stdout, clean.stdout)
	}
}

// TestFabricSecondCoordinatorRefuses: while one coordinator holds a live
// lease on the fabric directory, a second coordinator exits with code 5 and
// does not disturb the first.
func TestFabricSecondCoordinatorRefuses(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fabric runs")
	}
	dir := t.TempDir()
	// Long TTL and no workers: the first coordinator just holds the lease.
	first := startBin(t, "-role", "coordinator", "-fabric-dir", dir,
		"-run", "Figure2", "-scale", "quick", "-lease-ttl", "1m", "-fabric-poll", "50ms")
	time.Sleep(time.Second)

	second := runBin(t, "-role", "coordinator", "-fabric-dir", dir,
		"-run", "Figure2", "-scale", "quick", "-lease-ttl", "1m")
	if second.code != 5 {
		t.Fatalf("second coordinator exited %d, want 5:\n%s", second.code, second.stderr)
	}

	if err := first.cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if c := first.wait(t).code; c != 3 {
		t.Errorf("interrupted first coordinator exited %d, want 3", c)
	}
}

// TestFabricJoinMergesPartialRuns: two overlapping partial checkpoint
// stores (one with a torn file) merge into a fresh destination; the joined
// run re-executes only the missing units and prints the exact
// single-process bytes.
func TestFabricJoinMergesPartialRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess join runs")
	}
	clean := runBin(t, "-run", "Figure2", "-scale", "quick", "-workers", "1")
	if clean.code != 0 {
		t.Fatalf("clean run exited %d:\n%s", clean.code, clean.stderr)
	}

	// Partial store A: first 3 of Figure2's 8 units, then one torn in place.
	dirA := t.TempDir()
	if killed := runBin(t, "-run", "Figure2", "-scale", "quick",
		"-checkpoint-dir", dirA, "-fault-plan", "kill-after-puts=3"); killed.code != faultinject.KillExitCode {
		t.Fatalf("partial run A exited %d:\n%s", killed.code, killed.stderr)
	}
	filesA := ckpts(t, dirA)
	if len(filesA) != 3 {
		t.Fatalf("partial store A holds %d checkpoints, want 3", len(filesA))
	}
	if err := os.Truncate(filesA[0], 10); err != nil {
		t.Fatal(err)
	}

	// Partial store B: first 6 units — overlapping A.
	dirB := t.TempDir()
	if killed := runBin(t, "-run", "Figure2", "-scale", "quick",
		"-checkpoint-dir", dirB, "-fault-plan", "kill-after-puts=6"); killed.code != faultinject.KillExitCode {
		t.Fatalf("partial run B exited %d:\n%s", killed.code, killed.stderr)
	}

	dst := t.TempDir()
	joined := runBin(t, "-run", "Figure2", "-scale", "quick",
		"-checkpoint-dir", dst, "-join", dirA+","+dirB)
	if joined.code != 0 {
		t.Fatalf("joined run exited %d:\n%s", joined.code, joined.stderr)
	}
	if joined.stdout != clean.stdout {
		t.Errorf("joined stdout differs from single-process run\n--- joined ---\n%s--- clean ---\n%s",
			joined.stdout, clean.stdout)
	}
	if !strings.Contains(joined.stderr, "torn skipped") {
		t.Errorf("join report missing from stderr:\n%s", joined.stderr)
	}
	if n := len(ckpts(t, dst)); n != 8 {
		t.Errorf("joined store holds %d checkpoints, want all 8", n)
	}
}

// TestFabricJoinResolvesFabricRoot: -join accepts a fabric directory and
// resolves its ckpt/ subdirectory automatically.
func TestFabricJoinResolvesFabricRoot(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fabric runs")
	}
	clean := runBin(t, "-run", "Figure2", "-scale", "quick", "-workers", "1")
	if clean.code != 0 {
		t.Fatalf("clean run exited %d:\n%s", clean.code, clean.stderr)
	}
	dir := t.TempDir()
	res := runBin(t, append(coordArgs(dir, "Figure2"), "-fabric-spawn", "2")...)
	if res.code != 0 {
		t.Fatalf("fabric run exited %d:\n%s", res.code, res.stderr)
	}
	if _, err := os.Stat(filepath.Join(dir, "ckpt")); err != nil {
		t.Fatalf("fabric run left no ckpt/ dir: %v", err)
	}

	dst := t.TempDir()
	joined := runBin(t, "-run", "Figure2", "-scale", "quick",
		"-checkpoint-dir", dst, "-join", dir)
	if joined.code != 0 {
		t.Fatalf("joined run exited %d:\n%s", joined.code, joined.stderr)
	}
	if joined.stdout != clean.stdout {
		t.Error("join-from-fabric-root stdout differs from single-process run")
	}
}

// TestFabricUsageErrors pins exit code 2 for the new flag combinations.
func TestFabricUsageErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess runs")
	}
	for _, args := range [][]string{
		{"-role", "worker"},                                          // no -fabric-dir
		{"-role", "conductor", "-fabric-dir", t.TempDir()},           // unknown role
		{"-role", "worker", "-fabric-dir", t.TempDir()},              // -run all is not resumable
		{"-role", "worker", "-fabric-dir", t.TempDir(), "-run", "Figure5"}, // non-resumable experiment
		{"-role", "coordinator", "-fabric-dir", t.TempDir(), "-run", "Figure2",
			"-checkpoint-dir", t.TempDir()}, // role owns its store
		{"-join", t.TempDir()}, // -join needs a destination
	} {
		if res := runBin(t, args...); res.code != 2 {
			t.Errorf("%v exited %d, want 2", args, res.code)
		}
	}
}
