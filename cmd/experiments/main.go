// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run NAME|all] [-scale quick|full] [flags]
//
// Each experiment prints the rows the corresponding table or figure in the
// paper reports. See DESIGN.md for the experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured results.
//
// Long runs are crash-safe: with -checkpoint-dir every completed work unit
// of the resumable experiments (Figure2, Table3, MissQueueSecurity) is
// flushed to disk the moment it finishes, and -resume loads those units
// instead of re-running them — the resumed output is byte-identical to an
// uninterrupted run at any -workers value. The first SIGINT or SIGTERM
// cancels cooperatively (in-flight units finish and flush); a second exits
// immediately, leaving best-effort aborted markers so a resuming
// coordinator prioritizes the units that were in flight.
//
// Multi-process runs distribute one resumable experiment's work units
// across worker processes over a shared fabric directory (internal/fabric;
// no network — the filesystem is the bus):
//
//	experiments -role coordinator -fabric-dir F -run PolicyMatrix -fabric-spawn 4
//	experiments -role worker      -fabric-dir F -run PolicyMatrix   # more, any time
//
// The coordinator hands units out through lease files, re-dispatches
// expired leases with exponential backoff, and renders the final table from
// the checkpoint store — byte-identical to a single-process run no matter
// how many workers ran, died, or were re-dispatched. -join merges the
// checkpoint stores of partial runs into -checkpoint-dir and renders from
// the merged store, with the same byte-identity guarantee.
//
// Exit codes: 0 success; 1 experiment failure; 2 usage error; 3 interrupted
// by a signal (completed units were flushed if -checkpoint-dir was set);
// 4 -timeout deadline exceeded (same flush guarantee); 5 fabric coordinator
// refused — another live coordinator holds the fabric directory; 130 hard
// exit on a second signal; 137 fault-injected kill (-fault-plan, crash
// tests only).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"randfill/internal/checkpoint"
	"randfill/internal/experiments"
	"randfill/internal/fabric"
	"randfill/internal/faultinject"
	"randfill/internal/profiling"
)

func main() { os.Exit(run()) }

// usage prints a flag error and returns the usage exit code.
func usage(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	return 2
}

func run() int {
	runFlag := flag.String("run", "all", "experiment to run (Figure2, Table3, Figure5..Figure10, Traffic, Prefetch) or 'all'")
	scale := flag.String("scale", "quick", "budget scale: quick or full")
	seed := flag.Uint64("seed", 0, "override the random seed (0 = scale default)")
	attackCap := flag.Int("attack-cap", 0, "override the Table3 measurements-to-success cap")
	mcTrials := flag.Int("mc-trials", 0, "override the Table3 Monte Carlo trial count")
	workers := flag.Int("workers", 0, "parallel workers per experiment (0 = GOMAXPROCS); output is byte-identical for any value")
	list := flag.Bool("list", false, "list available experiments and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	ckptDir := flag.String("checkpoint-dir", "", "flush each completed work unit of the resumable experiments to this directory")
	resume := flag.Bool("resume", false, "load completed units from -checkpoint-dir instead of re-running them")
	timeout := flag.Duration("timeout", 0, "overall deadline for the run (0 = none); on expiry completed units are already flushed")
	faultPlan := flag.String("fault-plan", "", "fault-injection plan for crash testing, e.g. 'kill-after-puts=3' (see internal/faultinject)")
	role := flag.String("role", "", "fabric role: coordinator or worker (requires -fabric-dir and a single resumable -run)")
	fabricDir := flag.String("fabric-dir", "", "shared fabric directory for multi-process runs (see internal/fabric)")
	workerID := flag.String("worker-id", "", "this worker's id (default worker-<pid>)")
	fabricSpawn := flag.Int("fabric-spawn", 0, "coordinator convenience: spawn this many worker subprocesses of this binary")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "fabric lease duration; a worker silent this long is presumed dead")
	fabricPoll := flag.Duration("fabric-poll", 200*time.Millisecond, "fabric scan/claim interval")
	idleExit := flag.Duration("worker-idle-exit", time.Minute, "worker exits cleanly after this long with no work and no done marker (0 = wait forever)")
	joinSrcs := flag.String("join", "", "comma-separated checkpoint or fabric dirs to merge into -checkpoint-dir, then render from the merged store")
	flag.Parse()

	stop, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer stop()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.Name, e.Description)
		}
		return 0
	}

	var sc experiments.Scale
	switch strings.ToLower(*scale) {
	case "quick":
		sc = experiments.QuickScale()
	case "full":
		sc = experiments.FullScale()
	default:
		return usage("unknown scale %q (want quick or full)", *scale)
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *attackCap != 0 {
		sc.AttackMaxSamples = *attackCap
	}
	if *mcTrials != 0 {
		sc.MonteCarloTrials = *mcTrials
	}
	sc.Workers = *workers

	var plan *faultinject.Plan
	if *faultPlan != "" {
		p, err := faultinject.Parse(*faultPlan)
		if err != nil {
			return usage("%v", err)
		}
		plan = p
	}

	// Resolve the run mode up front so the signal handler knows where
	// best-effort aborted markers belong.
	if *role != "" && *role != "coordinator" && *role != "worker" {
		return usage("unknown -role %q (want coordinator or worker)", *role)
	}
	if *role != "" {
		if *fabricDir == "" {
			return usage("-role %s requires -fabric-dir", *role)
		}
		if *ckptDir != "" || *resume || *joinSrcs != "" {
			return usage("-role uses <fabric-dir>/ckpt as its store; -checkpoint-dir, -resume, and -join do not combine with it")
		}
		if _, ok := experiments.PlanFor(*runFlag, sc); !ok {
			return usage("-role requires a single resumable -run experiment (Figure2, Table3, MissQueueSecurity, OccupancyMatrix, PolicyMatrix); got %q", *runFlag)
		}
	}
	if *ckptDir == "" {
		if *resume {
			return usage("-resume requires -checkpoint-dir")
		}
		if *joinSrcs != "" {
			return usage("-join requires -checkpoint-dir (the destination store)")
		}
		if *faultPlan != "" && *role == "" {
			return usage("-fault-plan requires -checkpoint-dir (it injects faults at checkpoint writes)")
		}
	} else {
		store, err := checkpoint.Open(*ckptDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 2
		}
		if plan != nil {
			store.Hooks = plan
		}
		sc.Checkpoint = store
		sc.Resume = *resume
	}

	procID := *workerID
	if procID == "" {
		procID = fmt.Sprintf("%s-%d", orSolo(*role), os.Getpid())
	}
	// abortStoreDir is where the hard-kill path leaves aborted markers: the
	// fabric's shared store for fabric roles, -checkpoint-dir otherwise.
	abortStoreDir := *ckptDir
	if *role != "" {
		abortStoreDir = fabric.Layout{Root: *fabricDir}.CheckpointDir()
	}
	tracker := fabric.NewInFlight(procID)
	if sc.Checkpoint != nil {
		sc.Track = tracker.Observe
	}

	var todo []experiments.Experiment
	if strings.EqualFold(*runFlag, "all") {
		todo = experiments.All()
	} else {
		e, ok := experiments.ByName(*runFlag)
		if !ok {
			return usage("unknown experiment %q; -list shows the registry", *runFlag)
		}
		todo = []experiments.Experiment{e}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if *timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, *timeout)
		defer tcancel()
	}

	// First signal: cancel cooperatively — workers stop claiming new units,
	// units already running finish and flush their checkpoints, and the run
	// exits 3. Second signal: exit immediately, leaving best-effort aborted
	// markers for the units in flight so a resuming coordinator runs them
	// first.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "experiments: received %v; finishing in-flight work and flushing checkpoints (signal again to exit immediately)\n", s)
		cancel()
		<-sigc
		fmt.Fprintln(os.Stderr, "experiments: second signal, exiting immediately")
		tracker.WriteAborted(abortStoreDir)
		os.Exit(130)
	}()

	switch *role {
	case "worker":
		return runFabricWorker(ctx, sc, *runFlag, *fabricDir, procID,
			*leaseTTL, *fabricPoll, *idleExit, plan, tracker)
	case "coordinator":
		var spawnArgs []string
		if *fabricSpawn > 0 {
			spawnArgs = []string{
				"-role", "worker", "-fabric-dir", *fabricDir, "-run", *runFlag,
				"-scale", *scale,
				"-seed", fmt.Sprint(sc.Seed),
				"-attack-cap", fmt.Sprint(*attackCap),
				"-mc-trials", fmt.Sprint(*mcTrials),
				"-workers", fmt.Sprint(*workers),
				"-lease-ttl", leaseTTL.String(),
				"-fabric-poll", fabricPoll.String(),
				"-worker-idle-exit", idleExit.String(),
			}
		}
		return runFabricCoordinator(ctx, sc, *runFlag, *fabricDir, procID,
			*leaseTTL, *fabricPoll, plan, *fabricSpawn, spawnArgs)
	}

	if *joinSrcs != "" {
		rep, err := fabric.Join(sc.Checkpoint, strings.Split(*joinSrcs, ","))
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "experiments: join: %d adopted, %d already present, %d torn skipped\n",
			rep.Adopted, rep.AlreadyPresent, rep.TornSkipped)
		// Render from the merged store: with every unit present this
		// restores rather than recomputes, and the output is byte-identical
		// to an uninterrupted single-process run.
		sc.Resume = true
	}

	return runSolo(ctx, sc, todo)
}

// runSolo is the original single-process flow: run each requested
// experiment and print its table.
func runSolo(ctx context.Context, sc experiments.Scale, todo []experiments.Experiment) int {
	note := ""
	if sc.Checkpoint != nil {
		note = "; completed units are flushed to " + sc.Checkpoint.Dir() + " — rerun with -resume to continue"
	}
	for _, e := range todo {
		//lint:ignore detrand wall-clock progress display only; never feeds simulator or experiment state
		start := time.Now()
		t, err := e.Run(ctx, sc)
		if err != nil {
			switch {
			case errors.Is(err, context.DeadlineExceeded):
				fmt.Fprintf(os.Stderr, "experiments: %s: deadline exceeded, results are partial%s\n", e.Name, note)
				return 4
			case errors.Is(err, context.Canceled):
				fmt.Fprintf(os.Stderr, "experiments: %s: interrupted, results are partial%s\n", e.Name, note)
				return 3
			default:
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.Name, err)
				return 1
			}
		}
		fmt.Println(t)
		// The timing footer goes to stderr so stdout carries exactly the
		// tables: resume tests byte-compare stdout across runs.
		//lint:ignore detrand wall-clock progress display only; never feeds simulator or experiment state
		fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
	return 0
}

// orSolo names the process for in-flight tracking: the fabric role when
// set, "solo" otherwise.
func orSolo(role string) string {
	if role == "" {
		return "solo"
	}
	return role
}

// fabricPlan adapts an experiment's exported work-unit plan to the fabric's
// type-erased form and opens the fabric's shared checkpoint store.
func fabricPlan(name string, sc experiments.Scale, dir string) (fabric.Plan, *checkpoint.Store, error) {
	layout := fabric.Layout{Root: dir}
	if err := layout.Prepare(); err != nil {
		return fabric.Plan{}, nil, err
	}
	store, err := checkpoint.Open(layout.CheckpointDir())
	if err != nil {
		return fabric.Plan{}, nil, err
	}
	wp, ok := experiments.PlanFor(name, sc)
	if !ok {
		return fabric.Plan{}, nil, fmt.Errorf("no work-unit plan for %q", name)
	}
	return fabric.Plan{Name: wp.Name, Units: wp.Units, Meta: wp.Meta, RunUnit: wp.RunUnit}, store, nil
}

// runFabricWorker claims and executes leased units until the coordinator
// publishes the done marker (or the worker idles out). It writes nothing to
// stdout: the coordinator owns the rendered table.
func runFabricWorker(ctx context.Context, sc experiments.Scale, name, dir, id string,
	ttl, poll, idle time.Duration, plan *faultinject.Plan, tracker *fabric.InFlight) int {
	fp, store, err := fabricPlan(name, sc, dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: worker %s: %v\n", id, err)
		return 1
	}
	cfg := fabric.WorkerConfig{
		Dir: dir, ID: id, Plan: fp, Store: store,
		TTL: ttl, Poll: poll, IdleExit: idle,
		Track: tracker, Log: os.Stderr,
	}
	if plan != nil {
		store.Hooks = plan
		cfg.BeforeUnit = plan.StallBeforeUnit
		cfg.AfterUnit = plan.KillAfterUnit
		cfg.AfterLeaseWrite = plan.AfterLeaseWrite
		if plan.ClockSkew != 0 {
			cfg.Clock = fabric.SkewedClock(plan.ClockSkew)
		}
	}
	res, err := fabric.RunWorker(ctx, cfg)
	switch {
	case err == nil:
		fmt.Fprintf(os.Stderr, "experiments: worker %s: %d units completed, %d fenced, %d skipped\n",
			id, res.Completed, res.Fenced, res.Skipped)
		return 0
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintf(os.Stderr, "experiments: worker %s: deadline exceeded\n", id)
		return 4
	case errors.Is(err, context.Canceled):
		fmt.Fprintf(os.Stderr, "experiments: worker %s: interrupted\n", id)
		return 3
	default:
		fmt.Fprintf(os.Stderr, "experiments: worker %s: %v\n", id, err)
		return 1
	}
}

// runFabricCoordinator dispatches the experiment's units over the fabric
// directory, optionally spawning worker subprocesses of this same binary,
// and renders the final table from the shared store once every unit is
// checkpointed — byte-identical to a single-process run.
func runFabricCoordinator(ctx context.Context, sc experiments.Scale, name, dir, id string,
	ttl, poll time.Duration, plan *faultinject.Plan, spawn int, spawnArgs []string) int {
	fp, store, err := fabricPlan(name, sc, dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: coordinator %s: %v\n", id, err)
		return 1
	}
	cfg := fabric.CoordinatorConfig{
		Dir: dir, ID: id, Plan: fp, Store: store,
		TTL: ttl, Poll: poll, Log: os.Stderr,
	}
	if plan != nil {
		cfg.AfterLeaseWrite = plan.AfterLeaseWrite
		if plan.ClockSkew != 0 {
			cfg.Clock = fabric.SkewedClock(plan.ClockSkew)
		}
	}

	var kids []*exec.Cmd
	if spawn > 0 {
		bin, err := os.Executable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: coordinator %s: %v\n", id, err)
			return 1
		}
		for i := 0; i < spawn; i++ {
			args := append([]string{}, spawnArgs...)
			args = append(args, "-worker-id", fmt.Sprintf("%s-w%d", id, i))
			kid := exec.CommandContext(ctx, bin, args...)
			kid.Stderr = os.Stderr
			if err := kid.Start(); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: coordinator %s: spawn worker %d: %v\n", id, i, err)
				return 1
			}
			kids = append(kids, kid)
		}
	}
	reap := func() {
		for _, kid := range kids {
			if err := kid.Wait(); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: coordinator %s: worker %d: %v\n",
					id, kid.Process.Pid, err)
			}
		}
	}

	res, err := fabric.RunCoordinator(ctx, cfg)
	switch {
	case err == nil:
		// done marker is published; workers will see it and exit.
	case errors.Is(err, fabric.ErrCoordinatorHeld):
		fmt.Fprintf(os.Stderr, "experiments: coordinator %s: %v\n", id, err)
		reap()
		return 5
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintf(os.Stderr, "experiments: coordinator %s: deadline exceeded; completed units are flushed in %s\n", id, store.Dir())
		reap()
		return 4
	case errors.Is(err, context.Canceled):
		fmt.Fprintf(os.Stderr, "experiments: coordinator %s: interrupted; completed units are flushed in %s\n", id, store.Dir())
		reap()
		return 3
	default:
		fmt.Fprintf(os.Stderr, "experiments: coordinator %s: %v\n", id, err)
		reap()
		return 1
	}
	fmt.Fprintf(os.Stderr, "experiments: coordinator %s: epoch %d, %d dispatched (%d re-dispatched, %d aborted-first)\n",
		id, res.Epoch, res.Dispatched, res.Redispatched, res.AbortedFirst)
	reap()

	// Every unit is checkpointed: render by restoring from the shared store.
	e, ok := experiments.ByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: coordinator %s: unknown experiment %q\n", id, name)
		return 1
	}
	scR := sc
	scR.Checkpoint = store
	scR.Resume = true
	scR.Track = nil
	t, err := e.Run(ctx, scR)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: coordinator %s: render: %v\n", id, err)
		return 1
	}
	fmt.Println(t)
	return 0
}
