// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run NAME|all] [-scale quick|full] [flags]
//
// Each experiment prints the rows the corresponding table or figure in the
// paper reports. See DESIGN.md for the experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured results.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"randfill/internal/experiments"
	"randfill/internal/profiling"
)

func main() {
	run := flag.String("run", "all", "experiment to run (Figure2, Table3, Figure5..Figure10, Traffic, Prefetch) or 'all'")
	scale := flag.String("scale", "quick", "budget scale: quick or full")
	seed := flag.Uint64("seed", 0, "override the random seed (0 = scale default)")
	attackCap := flag.Int("attack-cap", 0, "override the Table3 measurements-to-success cap")
	mcTrials := flag.Int("mc-trials", 0, "override the Table3 Monte Carlo trial count")
	workers := flag.Int("workers", 0, "parallel workers per experiment (0 = GOMAXPROCS); output is byte-identical for any value")
	list := flag.Bool("list", false, "list available experiments and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()

	stop, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stop()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.Name, e.Description)
		}
		return
	}

	var sc experiments.Scale
	switch strings.ToLower(*scale) {
	case "quick":
		sc = experiments.QuickScale()
	case "full":
		sc = experiments.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or full)\n", *scale)
		os.Exit(2)
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *attackCap != 0 {
		sc.AttackMaxSamples = *attackCap
	}
	if *mcTrials != 0 {
		sc.MonteCarloTrials = *mcTrials
	}
	sc.Workers = *workers

	var todo []experiments.Experiment
	if strings.EqualFold(*run, "all") {
		todo = experiments.All()
	} else {
		e, ok := experiments.ByName(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; -list shows the registry\n", *run)
			os.Exit(2)
		}
		todo = []experiments.Experiment{e}
	}

	for _, e := range todo {
		//lint:ignore detrand wall-clock progress display only; never feeds simulator or experiment state
		start := time.Now()
		fmt.Println(e.Run(sc))
		//lint:ignore detrand wall-clock progress display only; never feeds simulator or experiment state
		fmt.Printf("[%s completed in %v]\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
}
