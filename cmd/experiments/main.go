// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run NAME|all] [-scale quick|full] [flags]
//
// Each experiment prints the rows the corresponding table or figure in the
// paper reports. See DESIGN.md for the experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured results.
//
// Long runs are crash-safe: with -checkpoint-dir every completed work unit
// of the resumable experiments (Figure2, Table3, MissQueueSecurity) is
// flushed to disk the moment it finishes, and -resume loads those units
// instead of re-running them — the resumed output is byte-identical to an
// uninterrupted run at any -workers value. The first SIGINT or SIGTERM
// cancels cooperatively (in-flight units finish and flush); a second exits
// immediately.
//
// Exit codes: 0 success; 1 experiment failure; 2 usage error; 3 interrupted
// by a signal (completed units were flushed if -checkpoint-dir was set);
// 4 -timeout deadline exceeded (same flush guarantee); 130 hard exit on a
// second signal; 137 fault-injected kill (-fault-plan, crash tests only).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"randfill/internal/checkpoint"
	"randfill/internal/experiments"
	"randfill/internal/faultinject"
	"randfill/internal/profiling"
)

func main() { os.Exit(run()) }

// usage prints a flag error and returns the usage exit code.
func usage(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	return 2
}

func run() int {
	runFlag := flag.String("run", "all", "experiment to run (Figure2, Table3, Figure5..Figure10, Traffic, Prefetch) or 'all'")
	scale := flag.String("scale", "quick", "budget scale: quick or full")
	seed := flag.Uint64("seed", 0, "override the random seed (0 = scale default)")
	attackCap := flag.Int("attack-cap", 0, "override the Table3 measurements-to-success cap")
	mcTrials := flag.Int("mc-trials", 0, "override the Table3 Monte Carlo trial count")
	workers := flag.Int("workers", 0, "parallel workers per experiment (0 = GOMAXPROCS); output is byte-identical for any value")
	list := flag.Bool("list", false, "list available experiments and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	ckptDir := flag.String("checkpoint-dir", "", "flush each completed work unit of the resumable experiments to this directory")
	resume := flag.Bool("resume", false, "load completed units from -checkpoint-dir instead of re-running them")
	timeout := flag.Duration("timeout", 0, "overall deadline for the run (0 = none); on expiry completed units are already flushed")
	faultPlan := flag.String("fault-plan", "", "fault-injection plan for crash testing, e.g. 'kill-after-puts=3' (see internal/faultinject)")
	flag.Parse()

	stop, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer stop()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.Name, e.Description)
		}
		return 0
	}

	var sc experiments.Scale
	switch strings.ToLower(*scale) {
	case "quick":
		sc = experiments.QuickScale()
	case "full":
		sc = experiments.FullScale()
	default:
		return usage("unknown scale %q (want quick or full)", *scale)
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *attackCap != 0 {
		sc.AttackMaxSamples = *attackCap
	}
	if *mcTrials != 0 {
		sc.MonteCarloTrials = *mcTrials
	}
	sc.Workers = *workers

	if *ckptDir == "" {
		if *resume {
			return usage("-resume requires -checkpoint-dir")
		}
		if *faultPlan != "" {
			return usage("-fault-plan requires -checkpoint-dir (it injects faults at checkpoint writes)")
		}
	} else {
		store, err := checkpoint.Open(*ckptDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 2
		}
		if *faultPlan != "" {
			plan, err := faultinject.Parse(*faultPlan)
			if err != nil {
				return usage("%v", err)
			}
			if plan != nil {
				store.Hooks = plan
			}
		}
		sc.Checkpoint = store
		sc.Resume = *resume
	}

	var todo []experiments.Experiment
	if strings.EqualFold(*runFlag, "all") {
		todo = experiments.All()
	} else {
		e, ok := experiments.ByName(*runFlag)
		if !ok {
			return usage("unknown experiment %q; -list shows the registry", *runFlag)
		}
		todo = []experiments.Experiment{e}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if *timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, *timeout)
		defer tcancel()
	}

	// First signal: cancel cooperatively — workers stop claiming new units,
	// units already running finish and flush their checkpoints, and the run
	// exits 3. Second signal: exit immediately.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "experiments: received %v; finishing in-flight work and flushing checkpoints (signal again to exit immediately)\n", s)
		cancel()
		<-sigc
		fmt.Fprintln(os.Stderr, "experiments: second signal, exiting immediately")
		os.Exit(130)
	}()

	note := ""
	if sc.Checkpoint != nil {
		note = "; completed units are flushed to " + sc.Checkpoint.Dir() + " — rerun with -resume to continue"
	}
	for _, e := range todo {
		//lint:ignore detrand wall-clock progress display only; never feeds simulator or experiment state
		start := time.Now()
		t, err := e.Run(ctx, sc)
		if err != nil {
			switch {
			case errors.Is(err, context.DeadlineExceeded):
				fmt.Fprintf(os.Stderr, "experiments: %s: deadline exceeded, results are partial%s\n", e.Name, note)
				return 4
			case errors.Is(err, context.Canceled):
				fmt.Fprintf(os.Stderr, "experiments: %s: interrupted, results are partial%s\n", e.Name, note)
				return 3
			default:
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.Name, err)
				return 1
			}
		}
		fmt.Println(t)
		// The timing footer goes to stderr so stdout carries exactly the
		// tables: resume tests byte-compare stdout across runs.
		//lint:ignore detrand wall-clock progress display only; never feeds simulator or experiment state
		fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
