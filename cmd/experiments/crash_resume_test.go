package main

// The crash-resume suite runs the real experiments binary as a subprocess,
// kills it mid-run with the deterministic fault harness (or a signal), and
// asserts the acceptance contract: a resumed run's stdout is byte-identical
// to an uninterrupted run's, at any worker count, even when the crash left
// torn checkpoints behind. On failure, checkpoint directories are copied to
// $CRASH_RESUME_ARTIFACT_DIR (when set) so CI can upload them.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"randfill/internal/checkpoint"
	"randfill/internal/faultinject"
)

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

// binary builds cmd/experiments once per test process and returns its path.
func binary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "experiments-bin-")
		if err != nil {
			buildErr = err
			return
		}
		bin := filepath.Join(dir, "experiments")
		out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("building experiments binary: %v\n%s", err, out)
			return
		}
		binPath = bin
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binPath
}

type runResult struct {
	stdout, stderr string
	code           int
}

// runBin runs the experiments binary and returns its streams and exit code;
// only start failures (not non-zero exits) fail the test.
func runBin(t *testing.T, args ...string) runResult {
	t.Helper()
	cmd := exec.Command(binary(t), args...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	code := 0
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("running %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return runResult{out.String(), errb.String(), code}
}

// saveArtifacts copies the checkpoint dir to $CRASH_RESUME_ARTIFACT_DIR if
// the test failed, so CI uploads the evidence.
func saveArtifacts(t *testing.T, ckptDir string) {
	t.Cleanup(func() {
		dest := os.Getenv("CRASH_RESUME_ARTIFACT_DIR")
		if dest == "" || !t.Failed() {
			return
		}
		target := filepath.Join(dest, t.Name())
		if err := os.MkdirAll(target, 0o755); err != nil {
			t.Logf("saving artifacts: %v", err)
			return
		}
		entries, err := os.ReadDir(ckptDir)
		if err != nil {
			t.Logf("saving artifacts: %v", err)
			return
		}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(ckptDir, e.Name()))
			if err != nil {
				continue
			}
			if err := os.WriteFile(filepath.Join(target, e.Name()), data, 0o644); err != nil {
				t.Logf("saving artifacts: %v", err)
			}
		}
		t.Logf("checkpoint dir copied to %s", target)
	})
}

// ckpts lists every checkpoint file (complete or torn) through the store's
// own Scan, so the tests and the production inventory agree on what counts
// as a checkpoint file.
func ckpts(t *testing.T, dir string) []string {
	t.Helper()
	st, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := st.Scan()
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Path)
	}
	return names
}

// copyDir clones a checkpoint dir so several resume scenarios can start
// from the same crash state.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestCrashResumeKillAndResume is the headline acceptance test: kill a real
// run after 3 of Figure2's 8 shard checkpoints, then resume at workers 1,
// 2, and 8 — every resumed stdout must equal the uninterrupted run's bytes.
func TestCrashResumeKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill-and-resume runs")
	}
	clean := runBin(t, "-run", "Figure2", "-scale", "quick", "-workers", "1")
	if clean.code != 0 {
		t.Fatalf("clean run exited %d:\n%s", clean.code, clean.stderr)
	}

	crashDir := t.TempDir()
	saveArtifacts(t, crashDir)
	killed := runBin(t, "-run", "Figure2", "-scale", "quick",
		"-checkpoint-dir", crashDir, "-fault-plan", "kill-after-puts=3")
	if killed.code != faultinject.KillExitCode {
		t.Fatalf("killed run exited %d, want %d:\n%s", killed.code, faultinject.KillExitCode, killed.stderr)
	}
	if n := len(ckpts(t, crashDir)); n != 3 {
		t.Fatalf("killed run left %d checkpoints, want 3", n)
	}

	for _, workers := range []string{"1", "2", "8"} {
		dir := copyDir(t, crashDir)
		saveArtifacts(t, dir)
		resumed := runBin(t, "-run", "Figure2", "-scale", "quick",
			"-checkpoint-dir", dir, "-resume", "-workers", workers)
		if resumed.code != 0 {
			t.Fatalf("workers=%s: resume exited %d:\n%s", workers, resumed.code, resumed.stderr)
		}
		if resumed.stdout != clean.stdout {
			t.Errorf("workers=%s: resumed stdout differs from uninterrupted run\n--- resumed ---\n%s--- clean ---\n%s",
				workers, resumed.stdout, clean.stdout)
		}
		if n := len(ckpts(t, dir)); n != 8 {
			t.Errorf("workers=%s: resumed run holds %d checkpoints, want all 8", workers, n)
		}
	}
}

// TestCrashResumeOccupancyMatrix: the design-matrix experiment honors the
// same contract — kill a run after 3 of its 7 per-design checkpoints, then
// resume at every worker count to the uninterrupted run's exact bytes.
func TestCrashResumeOccupancyMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill-and-resume runs")
	}
	clean := runBin(t, "-run", "OccupancyMatrix", "-scale", "quick", "-workers", "1")
	if clean.code != 0 {
		t.Fatalf("clean run exited %d:\n%s", clean.code, clean.stderr)
	}

	crashDir := t.TempDir()
	saveArtifacts(t, crashDir)
	killed := runBin(t, "-run", "OccupancyMatrix", "-scale", "quick",
		"-checkpoint-dir", crashDir, "-fault-plan", "kill-after-puts=3")
	if killed.code != faultinject.KillExitCode {
		t.Fatalf("killed run exited %d, want %d:\n%s", killed.code, faultinject.KillExitCode, killed.stderr)
	}
	if n := len(ckpts(t, crashDir)); n != 3 {
		t.Fatalf("killed run left %d checkpoints, want 3", n)
	}

	for _, workers := range []string{"1", "2", "8"} {
		dir := copyDir(t, crashDir)
		saveArtifacts(t, dir)
		resumed := runBin(t, "-run", "OccupancyMatrix", "-scale", "quick",
			"-checkpoint-dir", dir, "-resume", "-workers", workers)
		if resumed.code != 0 {
			t.Fatalf("workers=%s: resume exited %d:\n%s", workers, resumed.code, resumed.stderr)
		}
		if resumed.stdout != clean.stdout {
			t.Errorf("workers=%s: resumed stdout differs from uninterrupted run\n--- resumed ---\n%s--- clean ---\n%s",
				workers, resumed.stdout, clean.stdout)
		}
		if n := len(ckpts(t, dir)); n != 7 {
			t.Errorf("workers=%s: resumed run holds %d checkpoints, want all 7 (one per design)", workers, n)
		}
	}
}

// TestCrashResumePolicyMatrix: the policy x design sweep honors the same
// contract over its 42 per-cell checkpoints — kill a run after 10, then
// resume at every worker count to the uninterrupted run's exact bytes.
func TestCrashResumePolicyMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill-and-resume runs")
	}
	clean := runBin(t, "-run", "PolicyMatrix", "-scale", "quick", "-workers", "1")
	if clean.code != 0 {
		t.Fatalf("clean run exited %d:\n%s", clean.code, clean.stderr)
	}

	crashDir := t.TempDir()
	saveArtifacts(t, crashDir)
	killed := runBin(t, "-run", "PolicyMatrix", "-scale", "quick",
		"-checkpoint-dir", crashDir, "-fault-plan", "kill-after-puts=10")
	if killed.code != faultinject.KillExitCode {
		t.Fatalf("killed run exited %d, want %d:\n%s", killed.code, faultinject.KillExitCode, killed.stderr)
	}
	if n := len(ckpts(t, crashDir)); n != 10 {
		t.Fatalf("killed run left %d checkpoints, want 10", n)
	}

	for _, workers := range []string{"1", "2", "8"} {
		dir := copyDir(t, crashDir)
		saveArtifacts(t, dir)
		resumed := runBin(t, "-run", "PolicyMatrix", "-scale", "quick",
			"-checkpoint-dir", dir, "-resume", "-workers", workers)
		if resumed.code != 0 {
			t.Fatalf("workers=%s: resume exited %d:\n%s", workers, resumed.code, resumed.stderr)
		}
		if resumed.stdout != clean.stdout {
			t.Errorf("workers=%s: resumed stdout differs from uninterrupted run\n--- resumed ---\n%s--- clean ---\n%s",
				workers, resumed.stdout, clean.stdout)
		}
		if n := len(ckpts(t, dir)); n != 42 {
			t.Errorf("workers=%s: resumed run holds %d checkpoints, want all 42 (one per cell)", workers, n)
		}
	}
}

// TestCrashResumeTornCheckpoint: a checkpoint torn by the crash (or injected
// torn mid-write) is detected by the CRC frame, silently re-run, and the
// resumed output still matches the clean run byte for byte.
func TestCrashResumeTornCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill-and-resume runs")
	}
	clean := runBin(t, "-run", "Figure2", "-scale", "quick", "-workers", "1")
	if clean.code != 0 {
		t.Fatalf("clean run exited %d:\n%s", clean.code, clean.stderr)
	}

	dir := t.TempDir()
	saveArtifacts(t, dir)
	// torn-put=2 tears the 2nd checkpoint in place; the kill then leaves a
	// dir with 2 good files and 1 torn one — the write-burst crash shape.
	killed := runBin(t, "-run", "Figure2", "-scale", "quick",
		"-checkpoint-dir", dir, "-fault-plan", "torn-put=2,kill-after-puts=3")
	if killed.code != faultinject.KillExitCode {
		t.Fatalf("killed run exited %d, want %d:\n%s", killed.code, faultinject.KillExitCode, killed.stderr)
	}
	resumed := runBin(t, "-run", "Figure2", "-scale", "quick",
		"-checkpoint-dir", dir, "-resume", "-workers", "2")
	if resumed.code != 0 {
		t.Fatalf("resume exited %d:\n%s", resumed.code, resumed.stderr)
	}
	if resumed.stdout != clean.stdout {
		t.Errorf("resume after torn checkpoint differs from clean run\n--- resumed ---\n%s--- clean ---\n%s",
			resumed.stdout, clean.stdout)
	}
}

// TestCrashResumeCorruptCheckpoint: a bit-flipped checkpoint fails its CRC,
// re-runs, and resume still reproduces the clean bytes.
func TestCrashResumeCorruptCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill-and-resume runs")
	}
	clean := runBin(t, "-run", "Figure2", "-scale", "quick", "-workers", "1")
	if clean.code != 0 {
		t.Fatalf("clean run exited %d:\n%s", clean.code, clean.stderr)
	}
	dir := t.TempDir()
	saveArtifacts(t, dir)
	killed := runBin(t, "-run", "Figure2", "-scale", "quick",
		"-checkpoint-dir", dir, "-fault-plan", "corrupt-put=1,kill-after-puts=4,seed=9")
	if killed.code != faultinject.KillExitCode {
		t.Fatalf("killed run exited %d, want %d:\n%s", killed.code, faultinject.KillExitCode, killed.stderr)
	}
	resumed := runBin(t, "-run", "Figure2", "-scale", "quick",
		"-checkpoint-dir", dir, "-resume")
	if resumed.code != 0 {
		t.Fatalf("resume exited %d:\n%s", resumed.code, resumed.stderr)
	}
	if resumed.stdout != clean.stdout {
		t.Error("resume after corrupt checkpoint differs from clean run")
	}
}

// TestCrashResumeFailedWrite: an injected checkpoint-write failure surfaces
// as an experiment error (exit 1), and a later resume over the surviving
// checkpoints completes to the clean bytes.
func TestCrashResumeFailedWrite(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill-and-resume runs")
	}
	clean := runBin(t, "-run", "Figure2", "-scale", "quick", "-workers", "1")
	if clean.code != 0 {
		t.Fatalf("clean run exited %d:\n%s", clean.code, clean.stderr)
	}
	dir := t.TempDir()
	saveArtifacts(t, dir)
	failed := runBin(t, "-run", "Figure2", "-scale", "quick",
		"-checkpoint-dir", dir, "-fault-plan", "fail-put=2")
	if failed.code != 1 {
		t.Fatalf("failed-write run exited %d, want 1:\n%s", failed.code, failed.stderr)
	}
	if !strings.Contains(failed.stderr, "injected write failure") {
		t.Errorf("stderr does not attribute the injected failure:\n%s", failed.stderr)
	}
	resumed := runBin(t, "-run", "Figure2", "-scale", "quick",
		"-checkpoint-dir", dir, "-resume")
	if resumed.code != 0 {
		t.Fatalf("resume exited %d:\n%s", resumed.code, resumed.stderr)
	}
	if resumed.stdout != clean.stdout {
		t.Error("resume after failed write differs from clean run")
	}
}

// TestDeadlineExit: -timeout expiry is exit code 4 with a partial-results
// note pointing at -resume.
func TestDeadlineExit(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess runs")
	}
	dir := t.TempDir()
	res := runBin(t, "-run", "Table3", "-scale", "quick",
		"-checkpoint-dir", dir, "-timeout", "50ms")
	if res.code != 4 {
		t.Fatalf("deadline run exited %d, want 4:\n%s", res.code, res.stderr)
	}
	if !strings.Contains(res.stderr, "deadline exceeded") || !strings.Contains(res.stderr, "-resume") {
		t.Errorf("stderr lacks the deadline note:\n%s", res.stderr)
	}
}

// TestInterruptExit: the first SIGINT cancels cooperatively and the process
// exits 3 with a partial-results note.
func TestInterruptExit(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess signal runs")
	}
	dir := t.TempDir()
	saveArtifacts(t, dir)
	// Full scale so the search cannot finish before the signal arrives;
	// cancellation is checked between search rounds, so the exit is prompt.
	cmd := exec.Command(binary(t), "-run", "MissQueueSecurity", "-scale", "full",
		"-checkpoint-dir", dir)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("interrupted run did not exit with an error: %v", err)
	}
	if code := ee.ExitCode(); code != 3 {
		t.Fatalf("interrupted run exited %d, want 3:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "interrupted, results are partial") {
		t.Errorf("stderr lacks the interrupt note:\n%s", errb.String())
	}
}

// TestUsageErrors pins the usage exit code for the new flag combinations.
func TestUsageErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess runs")
	}
	for _, args := range [][]string{
		{"-resume"},
		{"-fault-plan", "kill-after-puts=1"},
		{"-checkpoint-dir", t.TempDir(), "-fault-plan", "bogus"},
		{"-run", "NoSuchExperiment"},
	} {
		if res := runBin(t, args...); res.code != 2 {
			t.Errorf("%v exited %d, want 2", args, res.code)
		}
	}
}
