package main

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"randfill/internal/atomicio"
	"randfill/internal/experiments"
)

var update = flag.Bool("update", false, "rewrite the golden files from the current output")

// testQuickGolden pins the exact bytes `experiments -run <name> -scale
// quick` prints for the table (the timing footer is wall-clock and is not
// part of the contract). The golden files are the regression fence for the
// whole stack under each experiment: AES tracing, the cache model, the fill
// engine, the RNG stream layout, and the parallel engine's shard plan. Each
// is rendered at -workers 8 and must equal a -workers 1 rendering first — a
// golden that depended on the worker count would be pinning scheduler
// noise.
//
// Regenerate with `go test ./cmd/experiments -run Golden -update` after an
// intentional change, and say why in the commit.
func testQuickGolden(t *testing.T, name, file string) {
	e, ok := experiments.ByName(name)
	if !ok {
		t.Fatalf("%s not registered", name)
	}
	render := func(workers int) string {
		sc := experiments.QuickScale()
		sc.Workers = workers
		tbl, err := e.Run(context.Background(), sc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return tbl.String()
	}
	serial := render(1)
	got := render(8)
	if got != serial {
		t.Fatalf("%s differs between workers=1 and workers=8:\n%s\nvs\n%s", name, serial, got)
	}

	golden := filepath.Join("testdata", file)
	if *update {
		if err := atomicio.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s quick output drifted from golden:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestEquation4QuickGolden(t *testing.T) {
	testQuickGolden(t, "Equation4", "equation4_quick.golden")
}

// Figure5 is the security-side golden: the storage-channel capacity table
// is a pure function of the window/region geometry, so any drift means the
// capacity math changed.
func TestFigure5QuickGolden(t *testing.T) {
	testQuickGolden(t, "Figure5", "figure5_quick.golden")
}

// Figure7 is the performance-side golden: IPC of the AES-CBC workload
// across random fill window sizes exercises the timing simulator's miss
// queue, fill queue and prefetch-free demand path end to end.
func TestFigure7QuickGolden(t *testing.T) {
	testQuickGolden(t, "Figure7", "figure7_quick.golden")
}
