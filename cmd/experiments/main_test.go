package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"randfill/internal/experiments"
)

var update = flag.Bool("update", false, "rewrite the golden file from the current output")

// TestEquation4QuickGolden pins the exact bytes `experiments -run equation4
// -scale quick` prints for the table (the timing footer is wall-clock and is
// not part of the contract). The golden file is the regression fence for the
// whole stack under the experiment: AES tracing, the cache model, the fill
// engine, the RNG stream layout, and the parallel engine's shard plan. It is
// rendered at -workers 8 and must equal a -workers 1 rendering first — a
// golden that depended on the worker count would be pinning scheduler noise.
//
// Regenerate with `go test ./cmd/experiments -run Golden -update` after an
// intentional change, and say why in the commit.
func TestEquation4QuickGolden(t *testing.T) {
	e, ok := experiments.ByName("Equation4")
	if !ok {
		t.Fatal("Equation4 not registered")
	}
	sc := experiments.QuickScale()
	sc.Workers = 1
	serial := e.Run(sc).String()
	sc.Workers = 8
	got := e.Run(sc).String()
	if got != serial {
		t.Fatalf("Equation4 differs between workers=1 and workers=8:\n%s\nvs\n%s", serial, got)
	}

	golden := filepath.Join("testdata", "equation4_quick.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("Equation4 quick output drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
