// Command rfattack mounts cache side channel attacks against the simulated
// cache architectures, demonstrating both the vulnerability of demand fetch
// and the random fill defense.
//
// Examples:
//
//	rfattack -attack collision -samples 250000          # break demand fetch
//	rfattack -attack collision -window 16,15            # attack the defense
//	rfattack -attack flushreload -window 16,15
//	rfattack -attack primeprobe -l1kind newcache
//	rfattack -attack evicttime
//
// Exit codes: 0 success; 1 error; 3 interrupted by SIGINT/SIGTERM — the
// collision attacks stop at the next batch boundary and report the partial
// result first; the other attacks exit without results. A second signal
// exits immediately (130).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/big"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"randfill/internal/attacks"
	"randfill/internal/cache"
	"randfill/internal/mem"
	"randfill/internal/modexp"
	"randfill/internal/newcache"
	"randfill/internal/profiling"
	"randfill/internal/rng"
	"randfill/internal/sim"
)

func main() {
	attack := flag.String("attack", "collision", "collision, collision-first, flushreload, primeprobe, evicttime, modexp")
	window := flag.String("window", "0,0", "victim's random fill window as 'a,b'")
	l1kind := flag.String("l1kind", "sa", "L1 architecture: sa, newcache")
	samples := flag.Int("samples", 100000, "measurement budget")
	batch := flag.Int("batch", 4000, "collision attack success-check interval")
	seed := flag.Uint64("seed", 42, "random seed")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()

	stop, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stop()

	w, err := parseWindow(*window)
	if err != nil {
		fatal(err)
	}

	// The collision search checks its ctx at every batch boundary, so the
	// first signal lets it stop and report the partial result; the other
	// attacks run in one piece, so for them the first signal exits at once.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	cooperative := *attack == "collision" || *attack == "collision-first"
	go func() {
		s := <-sigc
		if !cooperative {
			fmt.Fprintf(os.Stderr, "rfattack: received %v; this attack is not interruptible mid-run, exiting without results\n", s)
			os.Exit(3)
		}
		fmt.Fprintf(os.Stderr, "rfattack: received %v; stopping at the next batch boundary to report partial results (signal again to exit immediately)\n", s)
		cancel()
		<-sigc
		fmt.Fprintln(os.Stderr, "rfattack: second signal, exiting immediately")
		os.Exit(130)
	}()

	switch *attack {
	case "collision", "collision-first":
		runCollision(ctx, *attack, w, sim.CacheKind(*l1kind), *samples, *batch, *seed)
	case "flushreload":
		runFlushReload(w, *l1kind, *samples, *seed)
	case "primeprobe":
		runPrimeProbe(w, *l1kind, *samples, *seed)
	case "evicttime":
		runEvictTime(w, *l1kind, *samples, *seed)
	case "modexp":
		runModexpSpy(w, *l1kind, *seed)
	default:
		fatal(fmt.Errorf("unknown attack %q", *attack))
	}
}

func runCollision(ctx context.Context, kind string, w rng.Window, l1 sim.CacheKind, samples, batch int, seed uint64) {
	cfg := attacks.CollisionConfig{Sim: sim.DefaultConfig(), Seed: seed}
	cfg.Sim.MissQueue = 2 // attacker-favoring (see DESIGN.md)
	cfg.Sim.L1Kind = l1
	if kind == "collision-first" {
		cfg.Round = attacks.FirstRound
	}
	if !w.Zero() {
		cfg.Victim = sim.ThreadConfig{Mode: sim.ModeRandomFill, Window: w}
	}
	fmt.Printf("cache collision attack (%s round) vs %s, victim window %v\n",
		map[bool]string{true: "first", false: "final"}[kind == "collision-first"], l1, w)
	res, err := attacks.MeasurementsToSuccessCtx(ctx, cfg, batch, samples)
	if res.Success {
		fmt.Printf("SUCCESS: full key XOR relations recovered after %d measurements\n", res.Measurements)
	} else {
		fmt.Printf("no success after %d measurements (best: %d pairs correct)\n",
			res.Measurements, res.CorrectPairs)
	}
	fmt.Printf("sigma_T = %.1f cycles\n", res.SigmaT)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfattack: interrupted — the results above are partial (the search did not reach its sample budget)")
		os.Exit(3)
	}
}

func mkCache(l1kind string) func(src *rng.Source) cache.Cache {
	switch l1kind {
	case "sa":
		return func(src *rng.Source) cache.Cache {
			return cache.NewSetAssoc(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}, cache.LRU{})
		}
	case "newcache":
		return func(src *rng.Source) cache.Cache { return newcache.New(32*1024, 4, src) }
	default:
		fatal(fmt.Errorf("unknown l1kind %q", l1kind))
		return nil
	}
}

func table() mem.Region { return mem.Region{Base: 0x11000, Size: 1024} }

func runFlushReload(w rng.Window, l1kind string, trials int, seed uint64) {
	res := attacks.FlushReload(attacks.FlushReloadConfig{
		NewCache: mkCache(l1kind),
		Window:   w,
		Region:   table(),
		Trials:   trials,
		Seed:     seed,
	})
	fmt.Printf("flush-reload vs %s, victim window %v, %d trials\n", l1kind, w, trials)
	fmt.Printf("victim line observed: %.1f%% of trials\n", 100*res.Accuracy)
	fmt.Printf("empirical channel: %.3f bits per access (demand fetch carries 4 bits)\n", res.MutualInfo)
}

func runPrimeProbe(w rng.Window, l1kind string, trials int, seed uint64) {
	res := attacks.PrimeProbe(attacks.PrimeProbeConfig{
		NewCache:     mkCache(l1kind),
		Sets:         128,
		Ways:         4,
		Window:       w,
		VictimRegion: table(),
		AttackerBase: 0x100000,
		Trials:       trials,
		Seed:         seed,
	})
	fmt.Printf("prime-probe vs %s, victim window %v, %d trials\n", l1kind, w, trials)
	fmt.Printf("exact set inferred:    %.1f%%\n", 100*res.ExactAccuracy)
	fmt.Printf("within window of set:  %.1f%%\n", 100*res.WindowAccuracy)
}

func runEvictTime(w rng.Window, l1kind string, trials int, seed uint64) {
	res := attacks.EvictTime(attacks.EvictTimeConfig{
		NewCache:     mkCache(l1kind),
		Sets:         128,
		Ways:         4,
		TargetSet:    int(table().FirstLine()) & 127,
		Window:       w,
		VictimRegion: table(),
		AttackerBase: 0x100000,
		Trials:       trials,
		Seed:         seed,
	})
	fmt.Printf("evict-time vs %s, victim window %v, %d trials\n", l1kind, w, trials)
	fmt.Printf("mean time, victim used evicted set: %.2f\n", res.MeanTimeTarget)
	fmt.Printf("mean time, otherwise:               %.2f\n", res.MeanTimeOther)
	fmt.Printf("signal: %.2f\n", res.Signal)
}

func runModexpSpy(w rng.Window, l1kind string, seed uint64) {
	mod, _ := new(big.Int).SetString("340282366920938463463374607431768211507", 10)
	e, err := modexp.New(big.NewInt(7), mod, 4)
	if err != nil {
		fatal(err)
	}
	secret := randBigInt(rng.New(seed).Split(0x5ec7e7), mod)
	res := modexp.Spy(e, secret, modexp.DefaultLayout(), mkCache(l1kind), w, seed)
	fmt.Printf("percival spy vs %s, victim window %v\n", l1kind, w)
	fmt.Printf("secret exponent:    %X\n", secret)
	fmt.Printf("recovered exponent: %X\n", res.Recovered)
	fmt.Printf("windows recovered:  %d/%d\n", res.CorrectWindows, res.Windows)
	if res.Recovered.Cmp(secret) == 0 {
		fmt.Println("FULL SECRET EXPONENT RECOVERED")
	}
}

// randBigInt returns a uniform value in [0, max) drawn from the seeded
// source through its io.Reader face, by rejection sampling on max.BitLen()
// bits. This keeps the attack CLI bit-reproducible from -seed, where the
// old math/rand adapter tied the secret to a second, unseeded-looking
// stream.
func randBigInt(src *rng.Source, max *big.Int) *big.Int {
	bits := max.BitLen()
	if bits == 0 {
		return new(big.Int)
	}
	buf := make([]byte, (bits+7)/8)
	mask := byte(0xff >> (8*len(buf) - bits))
	for {
		if _, err := io.ReadFull(src, buf); err != nil {
			fatal(err) // unreachable: Source.Read never fails
		}
		buf[0] &= mask
		if v := new(big.Int).SetBytes(buf); v.Cmp(max) < 0 {
			return v
		}
	}
}

func parseWindow(s string) (rng.Window, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return rng.Window{}, fmt.Errorf("window %q: want 'a,b'", s)
	}
	a, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
	b, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err1 != nil || err2 != nil {
		return rng.Window{}, fmt.Errorf("window %q: bad integers", s)
	}
	if a < 0 {
		a = -a
	}
	return rng.Window{A: a, B: b}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rfattack:", err)
	os.Exit(1)
}
