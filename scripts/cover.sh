#!/bin/sh
# Statement-coverage gate for the hierarchy/simulator core and the secure
# cache designs (make cover, and CI's coverage job). The packages under the
# gate are the ones whose miss-path and fill-policy semantics every
# experiment number depends on: a refactor that silently un-tests them
# invalidates the goldens' meaning even while the goldens still pass. The
# design packages added for the occupancy matrix (scattercache, mirage) and
# the conformance suite that pins every design's contract sit under the same
# gate for the same reason.
set -eu

THRESHOLD=80
PKGS="randfill/internal/cache randfill/internal/hierarchy randfill/internal/sim randfill/internal/core randfill/internal/trace randfill/internal/scattercache randfill/internal/mirage randfill/internal/securecache/conformance"

fail=0
for pkg in $PKGS; do
    line=$(go test -cover "$pkg" | tail -n 1)
    pct=$(printf '%s\n' "$line" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
    if [ -z "$pct" ]; then
        echo "cover: no coverage figure for $pkg: $line" >&2
        fail=1
        continue
    fi
    ok=$(awk -v p="$pct" -v t="$THRESHOLD" 'BEGIN { print (p >= t) ? 1 : 0 }')
    if [ "$ok" = 1 ]; then
        echo "ok   $pkg ${pct}% (>= ${THRESHOLD}%)"
    else
        echo "FAIL $pkg ${pct}% (< ${THRESHOLD}%)" >&2
        fail=1
    fi
done

# The lint stack (framework + taint engine + checkers) is gated as a
# group with -coverpkg: the checkers package has no test files of its own
# — it is exercised through the corpus harness in internal/analysis — so
# per-package figures would read 0% while the group is in fact covered.
# An unsound checker silently waves broken code through CI, which is why
# it sits under the same gate as the simulator core.
ANALYSIS="randfill/internal/analysis/..."
profile=$(mktemp)
trap 'rm -f "$profile"' EXIT
if ! go test -coverpkg="$ANALYSIS" -coverprofile="$profile" "$ANALYSIS" >/dev/null; then
    echo "cover: go test $ANALYSIS failed" >&2
    fail=1
else
    pct=$(go tool cover -func="$profile" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
    ok=$(awk -v p="$pct" -v t="$THRESHOLD" 'BEGIN { print (p >= t) ? 1 : 0 }')
    if [ "$ok" = 1 ]; then
        echo "ok   $ANALYSIS ${pct}% (>= ${THRESHOLD}%)"
    else
        echo "FAIL $ANALYSIS ${pct}% (< ${THRESHOLD}%)" >&2
        fail=1
    fi
fi
exit $fail
