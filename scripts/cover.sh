#!/bin/sh
# Statement-coverage gate for the hierarchy/simulator core (make cover, and
# CI's coverage job). The three packages under the gate are the ones whose
# miss-path and fill-policy semantics every experiment number depends on:
# a refactor that silently un-tests them invalidates the goldens' meaning
# even while the goldens still pass.
set -eu

THRESHOLD=80
PKGS="randfill/internal/hierarchy randfill/internal/sim randfill/internal/core"

fail=0
for pkg in $PKGS; do
    line=$(go test -cover "$pkg" | tail -n 1)
    pct=$(printf '%s\n' "$line" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
    if [ -z "$pct" ]; then
        echo "cover: no coverage figure for $pkg: $line" >&2
        fail=1
        continue
    fi
    ok=$(awk -v p="$pct" -v t="$THRESHOLD" 'BEGIN { print (p >= t) ? 1 : 0 }')
    if [ "$ok" = 1 ]; then
        echo "ok   $pkg ${pct}% (>= ${THRESHOLD}%)"
    else
        echo "FAIL $pkg ${pct}% (< ${THRESHOLD}%)" >&2
        fail=1
    fi
done
exit $fail
