// Hierarchy: compose a three-level cache stack where each level picks its
// own fill policy, then watch where a secret-dependent demand miss actually
// leaves footprints. The paper's Section VI evaluates random fill at the L1
// and at the L2; internal/hierarchy generalizes the composition to any
// depth with one uniform miss path (nofill forwarding, background random
// fills, dirty-victim write-back between adjacent levels).
package main

import (
	"fmt"

	"randfill/internal/cache"
	"randfill/internal/core"
	"randfill/internal/hierarchy"
	"randfill/internal/mem"
	"randfill/internal/rng"
)

func newSA(kb, ways int) cache.Cache {
	return cache.NewSetAssoc(cache.Geometry{SizeBytes: kb * 1024, Ways: ways}, cache.LRU{})
}

func main() {
	root := rng.New(2026)

	// L1 and L2 run the random fill policy (window [-8,+7], the paper's
	// crypto window); the 2 MB L3 demand-fills — its capacity tolerates
	// pollution, so randomizing it buys little (Section VI's argument).
	l1c, l2c, l3c := newSA(32, 4), newSA(256, 8), newSA(2048, 16)
	l1e := core.NewEngine(l1c, root.Split(1))
	l1e.SetRR(8, 7)
	l2e := core.NewEngine(l2c, root.Split(2))
	l2e.SetRR(8, 7)

	h := hierarchy.New(160,
		hierarchy.NewLevel(l1c, 1).WithEngine(l1e),
		hierarchy.NewLevel(l2c, 12).WithEngine(l2e),
		hierarchy.NewLevel(l3c, 40),
	)
	fmt.Println(h)

	secret := mem.Line(0x400) // a security-critical table line
	hit, lat := h.Access(secret, false)
	fmt.Printf("\ndemand miss on line %#x: hit=%v, latency=%d cycles (1+12+40+160)\n",
		uint64(secret), hit, lat)
	fmt.Printf("footprint: L1=%v L2=%v L3=%v\n",
		l1c.Probe(secret), l2c.Probe(secret), l3c.Probe(secret))
	fmt.Println("(the random-fill L1/L2 hold it only if the window draw landed on" +
		" offset 0; the demand-fill L3 always does)")

	// Sweep a small region: the random-fill levels fill random neighbors of
	// the demanded lines; the L3 faithfully records the demand stream.
	for i := 0; i < 64; i++ {
		h.Access(secret+mem.Line(i), false)
	}
	inL1, inL2, inL3 := 0, 0, 0
	for i := 0; i < 64; i++ {
		l := secret + mem.Line(i)
		if l1c.Probe(l) {
			inL1++
		}
		if l2c.Probe(l) {
			inL2++
		}
		if l3c.Probe(l) {
			inL3++
		}
	}
	fmt.Printf("\nafter touching 64 lines: %d/64 in L1, %d/64 in L2, %d/64 in L3\n", inL1, inL2, inL3)

	for k := 0; k < h.Depth(); k++ {
		lvl := h.Level(k)
		s := lvl.Stats()
		fmt.Printf("L%d: %d accesses, %d misses", k+1, s.Accesses, s.Misses)
		if fs := lvl.FillStats(); fs != nil {
			fmt.Printf(", nofills %d, random fills issued/dropped/clamped %d/%d/%d",
				fs.NoFills, fs.RandomIssued, fs.RandomDropped, fs.RandomClamped)
		}
		fmt.Println()
	}
	fmt.Printf("memory: %d fetches, %d write-backs\n", h.MemAccesses(), h.MemWritebacks())
}
