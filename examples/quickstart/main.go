// Quickstart: build a random fill cache, program its window through the
// set_RR system interface, and watch the core security property — a demand
// miss no longer deterministically fills the cache with the missing line;
// a random neighbor within the window is fetched instead.
package main

import (
	"fmt"

	"randfill/internal/cache"
	"randfill/internal/core"
	"randfill/internal/mem"
	"randfill/internal/rng"
)

func main() {
	// A conventional 32 KB 4-way set-associative L1 with LRU replacement
	// (the paper's Table IV baseline) ...
	l1 := cache.NewSetAssoc(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}, cache.LRU{})

	// ... wrapped by the random fill engine (Figure 3). The window
	// defaults to [0,0]: pure demand fetch.
	eng := core.NewEngine(l1, rng.New(2026))

	secret := mem.Line(0x400) // a security-critical table line

	fmt.Println("-- demand fetch (window [0,0]) --")
	eng.Access(secret, false)
	fmt.Printf("after a miss on line %#x: cached=%v  <- the reuse channel\n",
		uint64(secret), l1.Probe(secret))

	// Enable random fill within [i-16, i+15], the window that covers a
	// whole 1 KB AES table (set_RR(16, 15) in Table II).
	l1.Flush()
	eng.SetRR(16, 15)
	fmt.Printf("\n-- random fill (window %v) --\n", eng.Window())
	for trial := 1; trial <= 4; trial++ {
		l1.Flush()
		eng.Access(secret, false)
		filled := l1.Contents()
		fmt.Printf("trial %d: demand line cached=%v, filled instead: ", trial, l1.Probe(secret))
		for _, l := range filled {
			fmt.Printf("%#x (offset %+d) ", uint64(l), int64(l)-int64(secret))
		}
		fmt.Println()
	}

	fmt.Println("\nThe fill is de-correlated from the access: an attacker who later")
	fmt.Println("observes the cache state learns almost nothing about which line the")
	fmt.Println("victim touched (see examples/capacity for exactly how little).")

	st := eng.Stats()
	fmt.Printf("\nengine stats: %d demand fills, %d nofills, %d random fills issued, %d dropped\n",
		st.NormalFills, st.NoFills, st.RandomIssued, st.RandomDropped)
}
