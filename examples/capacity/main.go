// The storage-channel view of the defense (Section V.B): how many bits per
// access can a Flush-Reload attacker extract through the cache state? The
// closed-form capacity of Equation 8 is computed alongside an empirical
// mutual-information measurement from actually mounting the attack against
// the functional cache model — the two must agree.
package main

import (
	"fmt"

	"randfill/internal/attacks"
	"randfill/internal/cache"
	"randfill/internal/infotheory"
	"randfill/internal/mem"
	"randfill/internal/rng"
)

func main() {
	// The victim's secret-indexed table: 1 KB = 16 cache lines (M = 16),
	// the paper's AES case study.
	region := mem.Region{Base: 0x11000, Size: 1024}
	m := region.NumLines()

	fmt.Printf("security-critical region: %d lines; demand fetch leaks log2(%d) = %.0f bits/access\n\n",
		m, m, infotheory.Capacity(m, 0, 0))

	fmt.Printf("%-14s %12s %14s %14s\n", "window", "Eq.8 (bits)", "measured (bits)", "victim seen")
	for _, size := range []int{1, 2, 4, 8, 16, 32, 64} {
		w := rng.Symmetric(size)
		analytic := infotheory.Capacity(m, w.A, w.B)
		res := attacks.FlushReload(attacks.FlushReloadConfig{
			NewCache: func(src *rng.Source) cache.Cache {
				return cache.NewSetAssoc(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}, cache.LRU{})
			},
			Window: w,
			Region: region,
			Trials: 30000,
			Seed:   9,
		})
		fmt.Printf("%-14v %12.3f %14.3f %13.1f%%\n",
			w, analytic, res.MutualInfo, 100*res.Accuracy)
	}

	fmt.Println("\nThe channel never fully closes (the boundary effect keeps a trickle")
	fmt.Println("of information flowing), but a window twice the region size already")
	fmt.Println("cuts the capacity by more than an order of magnitude — Figure 5.")
}
