// Section VII's performance surprise: a security mechanism that speeds
// programs up. The libquantum-style irregular streaming workload is
// latency-bound under demand fetch; the random fill window acts as a
// variable-distance prefetcher and beats a classic tagged next-line
// prefetcher, because its fill candidates reach up to 15 lines ahead.
package main

import (
	"fmt"

	"randfill/internal/prefetch"
	"randfill/internal/rng"
	"randfill/internal/sim"
	"randfill/internal/workloads"
)

func main() {
	bench, _ := workloads.ByName("libquantum")
	trace := bench.Gen(300000, 1)
	fmt.Printf("workload: %s — %s\n\n", bench.Name, bench.Class)

	type variant struct {
		name string
		run  func() sim.Result
	}
	var baseIPC float64
	variants := []variant{
		{"demand fetch", func() sim.Result {
			return sim.New(sim.Config{Seed: 1}).RunTraceSteady(sim.ThreadConfig{}, trace)
		}},
		{"tagged next-line prefetcher", func() sim.Result {
			m := sim.New(sim.Config{Seed: 1})
			m.Prefetcher = prefetch.NewTagged()
			return m.RunTraceSteady(sim.ThreadConfig{}, trace)
		}},
		{"random fill, forward window [0,15]", func() sim.Result {
			return sim.New(sim.Config{Seed: 1}).RunTraceSteady(sim.ThreadConfig{
				Mode: sim.ModeRandomFill, Window: rng.Window{A: 0, B: 15},
			}, trace)
		}},
		{"random fill, bidirectional [-16,+15]", func() sim.Result {
			return sim.New(sim.Config{Seed: 1}).RunTraceSteady(sim.ThreadConfig{
				Mode: sim.ModeRandomFill, Window: rng.Window{A: 16, B: 15},
			}, trace)
		}},
	}

	fmt.Printf("%-40s %8s %8s %10s\n", "configuration", "IPC", "MPKI", "vs demand")
	for i, v := range variants {
		res := v.run()
		if i == 0 {
			baseIPC = res.IPC()
		}
		fmt.Printf("%-40s %8.3f %8.1f %+9.1f%%\n",
			v.name, res.IPC(), res.MPKI(), 100*(res.IPC()/baseIPC-1))
	}

	fmt.Println("\nThe forward window wins: the streaming access pattern only moves")
	fmt.Println("forward, so backward fill candidates are wasted — which is also why")
	fmt.Println("the paper's security analysis uses bidirectional windows (crypto")
	fmt.Println("table lookups have no preferred direction) but its streaming")
	fmt.Println("results use forward ones.")
}
