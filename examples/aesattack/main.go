// The paper's case study, end to end: a final-round cache collision attack
// against table-based AES-128 (Bonneau & Mironov style). The attacker
// triggers block encryptions of random plaintexts from a clean L1, measures
// each encryption's latency on the timing simulator, aggregates by XORed
// ciphertext bytes, and reads last-round-key XOR relations off the minima
// of the timing characteristic chart (Figure 2).
//
// The same attack is then repeated against a random fill cache with a
// window covering the table: the timing signal vanishes.
package main

import (
	"fmt"

	"randfill/internal/attacks"
	"randfill/internal/rng"
	"randfill/internal/sim"
)

func main() {
	base := sim.DefaultConfig()
	base.MissQueue = 2 // the attacker-favoring security configuration

	fmt.Println("== phase 1: demand-fetch cache (conventional) ==")
	demand := attacks.NewCollision(attacks.CollisionConfig{Sim: base, Seed: 7})
	const budget = 220000
	demand.Collect(budget)
	report(demand)

	fmt.Println("\n== phase 2: random fill cache, window [-16,+15] ==")
	rf := attacks.NewCollision(attacks.CollisionConfig{
		Sim:    base,
		Victim: sim.ThreadConfig{Mode: sim.ModeRandomFill, Window: rng.Window{A: 16, B: 15}},
		Seed:   7,
	})
	rf.Collect(budget)
	report(rf)

	fmt.Println("\nWith the window covering the whole table, P1 - P2 = 0 for every")
	fmt.Println("lookup pair (Section V.A): the minimum of the timing chart no longer")
	fmt.Println("marks the key, no matter how many measurements the attacker takes.")
}

func report(a *attacks.Collision) {
	fmt.Printf("measurements: %d, sigma_T = %.1f cycles\n", a.Samples(), a.SigmaT())
	correct := a.CorrectPairs()
	fmt.Printf("recovered XOR relations: %d of %d\n", correct, a.Pairs())

	// A slice of the Figure 2 chart for the pair (c0, c1).
	chart := a.TimingChart(0)
	truth := a.TrueXor(0)
	rank := 0
	for _, v := range chart {
		if v < chart[truth] {
			rank++
		}
	}
	fmt.Printf("pair (0,1): true k10_0^k10_1 = %d, recovered = %d\n", truth, a.RecoveredXor(0))
	fmt.Printf("  mean-time deviation at the true value: %+.2f cycles (rank %d of 256)\n",
		chart[truth], rank)
	if correct == a.Pairs() {
		fmt.Println("  FULL LAST-ROUND KEY RECOVERED (up to one guessed byte)")
	}
}
