// The paper's closing performance idea, implemented: "Further performance
// improvements with the random fill cache may be possible by getting
// spatial locality profiles for different phases of the program, and
// setting the appropriate window size for each phase" (Section VII).
//
// A workload alternating a streaming phase with a video-encoding phase runs
// under each static window and under the online adaptive controller, which
// reprograms the window through the same set_RR system call the paper
// defines.
package main

import (
	"fmt"

	"randfill/internal/adaptive"
	"randfill/internal/mem"
	"randfill/internal/rng"
	"randfill/internal/sim"
	"randfill/internal/workloads"
)

func main() {
	const phase = 100000
	lq, _ := workloads.ByName("libquantum")
	h264, _ := workloads.ByName("h264ref")
	var trace mem.Trace
	for p := 0; p < 2; p++ {
		trace = append(trace, lq.Gen(phase, uint64(p+1))...)
		trace = append(trace, h264.Gen(2*phase, uint64(p+1))...)
	}
	fmt.Printf("workload: %d accesses alternating libquantum and h264ref phases\n\n", len(trace))

	static := func(name string, w rng.Window) float64 {
		m := sim.New(sim.Config{Seed: 1})
		tc := sim.ThreadConfig{}
		if !w.Zero() {
			tc = sim.ThreadConfig{Mode: sim.ModeRandomFill, Window: w}
		}
		ipc := m.RunTrace(tc, trace).IPC()
		fmt.Printf("%-32s IPC %.3f\n", name, ipc)
		return ipc
	}
	static("static demand fetch", rng.Window{})
	best := static("static forward [0,15]", rng.Window{A: 0, B: 15})
	static("static bidirectional [-8,+7]", rng.Window{A: 8, B: 7})

	m := sim.New(sim.Config{Seed: 1})
	th := m.NewThread(sim.ThreadConfig{Mode: sim.ModeRandomFill, Window: rng.Window{A: 0, B: 1}})
	ctl := adaptive.New(th, adaptive.Config{Epoch: phase / 10, ExploitEpochs: 6})
	ipc := ctl.Run(trace).IPC()
	fmt.Printf("%-32s IPC %.3f (%d set_RR calls, %.1f%% of the oracle static)\n",
		"adaptive controller", ipc, ctl.Switches, 100*ipc/best)

	fmt.Println("\nThe controller explores {demand, [0,3], [0,15], [-8,+7]} for an")
	fmt.Println("epoch each, exploits the winner, and re-explores to track phase")
	fmt.Println("changes — no workload knowledge, no recompilation, and the security")
	fmt.Println("floor for secret-handling threads is a one-line constraint on the")
	fmt.Println("candidate set (adaptive.Config.MinSize).")
}
