// Percival-style attack on public-key code: fixed-window modular
// exponentiation reads a multiplier table entry per window of the secret
// exponent. A Flush-Reload attacker who sees which entry became cached
// reads the exponent off the cache — unless the fill is de-correlated from
// the access.
//
// This is the paper's "multipliers table in the public-key algorithms
// (e.g., RSA)" example, taken end to end: full exponent recovery against
// demand fetch, chance-level recovery against a random fill cache.
package main

import (
	"fmt"
	"math/big"

	"randfill/internal/cache"
	"randfill/internal/modexp"
	"randfill/internal/rng"
)

func main() {
	mod, _ := new(big.Int).SetString("340282366920938463463374607431768211507", 10)
	e, err := modexp.New(big.NewInt(7), mod, 4)
	if err != nil {
		panic(err)
	}
	secret, _ := new(big.Int).SetString("C0FFEE0DDEADBEEF1337CAFEF00DFACE", 16)
	fmt.Printf("victim's secret exponent: %X\n", secret)
	fmt.Printf("multiplier table: %d entries x 128 bytes = %d cache lines\n\n",
		e.TableSize(), modexp.DefaultLayout().TableRegion(e.TableSize()).NumLines())

	sa := func(src *rng.Source) cache.Cache {
		return cache.NewSetAssoc(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}, cache.LRU{})
	}

	fmt.Println("-- demand fetch --")
	res := modexp.Spy(e, secret, modexp.DefaultLayout(), sa, rng.Window{}, 1)
	fmt.Printf("windows recovered: %d/%d\n", res.CorrectWindows, res.Windows)
	fmt.Printf("recovered exponent: %X\n", res.Recovered)
	if res.Recovered.Cmp(secret) == 0 {
		fmt.Println("FULL SECRET EXPONENT RECOVERED from one traced exponentiation")
	}

	fmt.Println("\n-- random fill, window [-32,+31] (covers the table) --")
	res = modexp.Spy(e, secret, modexp.DefaultLayout(), sa, rng.Window{A: 32, B: 31}, 2)
	fmt.Printf("windows recovered: %d/%d (chance level: %d)\n",
		res.CorrectWindows, res.Windows, res.Windows/16)
	fmt.Printf("recovered exponent: %X (wrong)\n", res.Recovered)
	fmt.Println("\nThe observation channel is the same one the AES attack uses — and")
	fmt.Println("the same window parameter closes it, with no change to the victim's code")
	fmt.Println("beyond the set_RR call at the start of the operation.")
}
