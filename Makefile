# Convenience targets for the randfill reproduction.

GO ?= go

.PHONY: all build test test-short vet bench experiments fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every table and figure at quick scale.
experiments: build
	$(GO) run ./cmd/experiments -run all

# Regenerate the security tables at (near) paper scale. Slow.
experiments-full: build
	$(GO) run ./cmd/experiments -run Table3 -scale full
	$(GO) run ./cmd/experiments -run Figure2 -scale full

fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/traceio/
	$(GO) test -fuzz=FuzzEncryptMatchesStdlib -fuzztime=30s ./internal/aes/

clean:
	$(GO) clean ./...
