# Convenience targets for the randfill reproduction.

GO ?= go

.PHONY: all build test test-short vet lint lint-fast ci cover bench bench-json bench-compare profile experiments fuzz fuzz-smoke conformance crash-resume fabric-fault clean

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Domain-aware static analysis: determinism, RNG hygiene, simulator
# invariants, and interprocedural taint against the leak manifest (see
# DESIGN.md "Determinism & lint policy" and "Taint analysis & the leak
# manifest").
lint: vet
	$(GO) run ./cmd/rflint ./...

# Incremental lint for the edit loop: the whole module is still loaded and
# analyzed (cross-package taint needs it), but findings are only reported
# for packages with files changed since $(SINCE). Changing the lint rules
# themselves falls back to a full lint.
SINCE ?= HEAD
lint-fast:
	$(GO) run ./cmd/rflint -since $(SINCE)

# What CI runs (.github/workflows/ci.yml).
ci: build lint
	$(GO) test -race -short ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Statement-coverage gate (>= 80%) for the packages whose miss-path
# semantics every experiment depends on: internal/hierarchy, internal/sim,
# internal/core. CI runs the same script in its coverage job.
cover:
	sh scripts/cover.sh

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate the committed perf baseline. The baseline uses the -short
# kernel budgets because that is what CI's bench-smoke job re-measures;
# ns/op is only comparable at identical budgets.
bench-json:
	$(GO) run ./cmd/rfbench -short -out BENCH.json -commit $$(git rev-parse HEAD)

# Re-measure and diff against the committed baseline; exits nonzero on a
# >20% ns/op regression (see ci.yml bench-smoke).
bench-compare:
	$(GO) run ./cmd/rfbench -short -compare BENCH.json -out /dev/null

# Capture CPU and heap profiles of one Table III cell (the repo's primary
# hot path); inspect with `go tool pprof cpu.prof`.
profile:
	$(GO) test -run '^$$' -bench 'Table3CellWorkers/1$$' -benchtime 1x \
		-cpuprofile cpu.prof -memprofile mem.prof .

# Regenerate every table and figure at quick scale.
experiments: build
	$(GO) run ./cmd/experiments -run all

# Regenerate the security tables at (near) paper scale. Slow.
experiments-full: build
	$(GO) run ./cmd/experiments -run Table3 -scale full
	$(GO) run ./cmd/experiments -run Figure2 -scale full

# Crash-safety suite: kill the real experiments binary mid-run with
# injected faults and prove -resume reproduces the uninterrupted output
# byte-for-byte (see ci.yml crash-resume).
crash-resume:
	$(GO) test -race -run 'CrashResume|DeadlineExit|InterruptExit|UsageErrors' ./cmd/experiments

# Distributed-fabric fault suite: multi-process coordinator/worker runs of
# the real binary with whole-worker kills, stalls, torn leases, and clock
# skew; every topology must print the single-process bytes (see ci.yml
# fabric-fault).
fabric-fault:
	$(GO) test -race -run 'Fabric' -timeout 15m ./cmd/experiments
	$(GO) test -race ./internal/fabric/

fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/traceio/
	$(GO) test -fuzz=FuzzEncryptMatchesStdlib -fuzztime=30s ./internal/aes/
	$(GO) test -fuzz=FuzzScatterIndex -fuzztime=30s ./internal/scattercache/
	$(GO) test -fuzz=FuzzMirageEvict -fuzztime=30s ./internal/mirage/
	$(GO) test -fuzz=FuzzTraceCompile -fuzztime=30s ./internal/trace/

# CI's bounded fuzz budget for the design invariants (see ci.yml
# fuzz-smoke): the committed seed corpora always run; the live fuzz loop
# gets a fixed time slice so the job's wall-clock is deterministic.
fuzz-smoke:
	$(GO) test -fuzz=FuzzScatterIndex -fuzztime=20s ./internal/scattercache/
	$(GO) test -fuzz=FuzzMirageEvict -fuzztime=20s ./internal/mirage/
	$(GO) test -fuzz=FuzzTraceCompile -fuzztime=20s ./internal/trace/

# Design-conformance suite: every registered SecureCache design against the
# shared contract, under the race detector (see ci.yml design-conformance).
conformance:
	$(GO) test -race -run 'Conformance' ./internal/securecache/... \
		./internal/core/ ./internal/newcache/ ./internal/plcache/ \
		./internal/rpcache/ ./internal/nomo/ ./internal/scattercache/ \
		./internal/mirage/

clean:
	$(GO) clean ./...
