# Convenience targets for the randfill reproduction.

GO ?= go

.PHONY: all build test test-short vet lint ci bench experiments fuzz clean

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Domain-aware static analysis: determinism, RNG hygiene, and simulator
# invariants (see DESIGN.md "Determinism & lint policy").
lint: vet
	$(GO) run ./cmd/rflint ./...

# What CI runs (.github/workflows/ci.yml).
ci: build lint
	$(GO) test -race -short ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every table and figure at quick scale.
experiments: build
	$(GO) run ./cmd/experiments -run all

# Regenerate the security tables at (near) paper scale. Slow.
experiments-full: build
	$(GO) run ./cmd/experiments -run Table3 -scale full
	$(GO) run ./cmd/experiments -run Figure2 -scale full

fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/traceio/
	$(GO) test -fuzz=FuzzEncryptMatchesStdlib -fuzztime=30s ./internal/aes/

clean:
	$(GO) clean ./...
