// Package randfill's top-level benchmarks regenerate every table and figure
// of the paper's evaluation (one benchmark per experiment, at QuickScale),
// plus micro-benchmarks of the substrates. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks report the headline measured value of each
// experiment as a custom metric so `go test -bench` output doubles as a
// compact reproduction record; cmd/experiments prints the full tables.
package randfill_test

import (
	"bytes"
	"math/big"
	"strconv"
	"strings"
	"testing"

	"randfill/internal/aes"
	"randfill/internal/attacks"
	"randfill/internal/blowfish"
	"randfill/internal/cache"
	"randfill/internal/core"
	"randfill/internal/experiments"
	"randfill/internal/infotheory"
	"randfill/internal/mem"
	"randfill/internal/modexp"
	"randfill/internal/newcache"
	"randfill/internal/nomo"
	"randfill/internal/rng"
	"randfill/internal/rpcache"
	"randfill/internal/sim"
	"randfill/internal/traceio"
	"randfill/internal/workloads"
)

// benchScale trims the quick scale a little further so the full -bench=.
// sweep stays in the minutes range.
func benchScale() experiments.Scale {
	sc := experiments.QuickScale()
	sc.Figure2Samples = 1 << 13
	sc.AttackMaxSamples = 1 << 13
	sc.AttackBatch = 1 << 12
	sc.MonteCarloTrials = 10000
	sc.SpecAccesses = 100000
	return sc
}

func pctCell(b *testing.B, cell string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		b.Fatalf("bad cell %q", cell)
	}
	return v
}

// BenchmarkFigure2 regenerates the final-round collision attack timing
// characteristic chart.
func BenchmarkFigure2(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tb := experiments.Figure2(sc)
		if len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable3 regenerates the P1-P2 / measurements-to-success table.
func BenchmarkTable3(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tb := experiments.Table3(sc)
		// Report the demand-fetch signal (paper: 0.652) and the
		// window-32 signal (paper: 0.006) on the SA cache.
		first, _ := strconv.ParseFloat(tb.Rows[0][2], 64)
		last, _ := strconv.ParseFloat(tb.Rows[5][2], 64)
		b.ReportMetric(first, "P1-P2/size1")
		b.ReportMetric(last, "P1-P2/size32")
	}
}

// BenchmarkTable3CellWorkers measures one full-scale-representative Table 3
// cell (the window-2 SA cell: Monte Carlo P1-P2 plus the sharded
// measurements-to-success search) at 1, 2, 4 and 8 workers. Because the
// shard plan is fixed, every worker count computes identical results — the
// sub-benchmarks differ only in wall clock, which is the point: this is the
// recorded evidence for the engine's speedup (see DESIGN.md for numbers;
// on a single-core runner all counts tie, by design).
func BenchmarkTable3CellWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(strconv.Itoa(workers), func(b *testing.B) {
			sc := experiments.QuickScale()
			sc.Workers = workers
			for i := 0; i < b.N; i++ {
				tb := experiments.Table3Cell(sc, 2)
				if len(tb.Rows) != 1 {
					b.Fatal("bad cell table")
				}
			}
		})
	}
}

// BenchmarkFigure5 regenerates the channel-capacity chart.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := experiments.Figure5()
		// M=16 at window 2M (paper: >10x reduction).
		v, _ := strconv.ParseFloat(tb.Rows[3][2], 64)
		b.ReportMetric(v, "normcap/M16-w2M")
	}
}

// BenchmarkFigure6 regenerates the AES-CBC defense comparison.
func BenchmarkFigure6(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tb := experiments.Figure6(sc)
		// Random fill on 32KB 4-way (paper: ~100%).
		b.ReportMetric(pctCell(b, tb.Rows[8][4]), "rf-ipc-%/32KB-4way")
		// Disable cache (paper: ~55%).
		b.ReportMetric(pctCell(b, tb.Rows[8][3]), "disable-ipc-%")
	}
}

// BenchmarkFigure7 regenerates the window-size sensitivity sweep.
func BenchmarkFigure7(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tb := experiments.Figure7(sc)
		// 8KB Newcache at window 32 (paper: max degradation, -9%).
		b.ReportMetric(pctCell(b, tb.Rows[5][3]), "ipc-%/8KB-newcache-w32")
	}
}

// BenchmarkFigure8 regenerates the SMT co-run throughput comparison.
func BenchmarkFigure8(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tb := experiments.Figure8(sc)
		// Average random-fill impact at 16KB DM (paper: ~100%).
		b.ReportMetric(pctCell(b, tb.Rows[8][4]), "rf-avg-%/16KB")
		// Average PLcache+preload impact at 16KB DM (paper: 68%).
		b.ReportMetric(pctCell(b, tb.Rows[8][3]), "preload-avg-%/16KB")
	}
}

// BenchmarkFigure9 regenerates the spatial-locality profiles.
func BenchmarkFigure9(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tb := experiments.Figure9(sc)
		if len(tb.Rows) != 8 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFigure10 regenerates the MPKI/IPC window sweep.
func BenchmarkFigure10(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tb := experiments.Figure10(sc)
		// libquantum IPC at [0,15] (paper: +57%).
		for _, row := range tb.Rows {
			if row[0] == "libquantum" && row[1] == "IPC" {
				b.ReportMetric(pctCell(b, row[6]), "libquantum-ipc-%/fwd15")
			}
		}
	}
}

// BenchmarkTraffic regenerates the L2/memory traffic comparison.
func BenchmarkTraffic(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if tb := experiments.Traffic(sc); len(tb.Rows) != 2 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkPrefetcherComparison regenerates the Section VII tagged-
// prefetcher-vs-random-fill comparison.
func BenchmarkPrefetcherComparison(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tb := experiments.PrefetchComparison(sc)
		b.ReportMetric(pctCell(b, tb.Rows[1][3]), "libquantum-rf-%")
		b.ReportMetric(pctCell(b, tb.Rows[1][2]), "libquantum-tagged-%")
	}
}

// BenchmarkDefenseMatrix regenerates the Section VIII defense-vs-attack
// comparison matrix.
func BenchmarkDefenseMatrix(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if tb := experiments.DefenseMatrix(sc); len(tb.Rows) != 7 {
			b.Fatal("bad table")
		}
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkCacheLookupHit measures the hot lookup path of the SA cache.
func BenchmarkCacheLookupHit(b *testing.B) {
	c := cache.NewSetAssoc(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}, cache.LRU{})
	c.Fill(1, cache.FillOpts{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(1, false)
	}
}

// BenchmarkCacheFillEvict measures the fill+evict path under set pressure.
func BenchmarkCacheFillEvict(b *testing.B) {
	c := cache.NewSetAssoc(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}, cache.LRU{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fill(mem.Line(i), cache.FillOpts{})
	}
}

// BenchmarkNewcacheFill measures the Newcache remap+fill path.
func BenchmarkNewcacheFill(b *testing.B) {
	c := newcache.New(32*1024, 4, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fill(mem.Line(i), cache.FillOpts{})
	}
}

// BenchmarkRandomFillEngine measures a full engine access (miss + window
// draw + fill decision).
func BenchmarkRandomFillEngine(b *testing.B) {
	c := cache.NewSetAssoc(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}, cache.LRU{})
	e := core.NewEngine(c, rng.New(1))
	e.SetRR(16, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Access(mem.Line(i), false)
	}
}

// BenchmarkAESBlock measures the software cipher (no tracing).
func BenchmarkAESBlock(b *testing.B) {
	c, err := aes.New(make([]byte, 16))
	if err != nil {
		b.Fatal(err)
	}
	var in, out [16]byte
	b.SetBytes(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Encrypt(out[:], in[:], nil)
	}
}

// BenchmarkAESBlockTraced measures traced encryption (trace construction
// included), the attack inner loop's first half.
func BenchmarkAESBlockTraced(b *testing.B) {
	c, err := aes.New(make([]byte, 16))
	if err != nil {
		b.Fatal(err)
	}
	tr := &aes.Tracer{Cipher: c, Layout: aes.DefaultLayout()}
	var in [16]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, trace := tr.EncryptBlock(in[:], 0)
		if len(trace) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkSimStep measures the timing simulator's per-access cost on a
// mixed workload.
func BenchmarkSimStep(b *testing.B) {
	g, _ := workloads.ByName("bzip2")
	trace := g.Gen(100000, 1)
	m := sim.New(sim.Config{Seed: 1})
	th := m.NewThread(sim.ThreadConfig{Mode: sim.ModeRandomFill, Window: rng.Window{A: 4, B: 3}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Step(trace[i%len(trace)])
	}
}

// BenchmarkMonteCarloP1P2 measures the Table III Monte Carlo inner loop.
func BenchmarkMonteCarloP1P2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := infotheory.MonteCarloP1P2(infotheory.P1P2Config{
			NewCache: func(src *rng.Source) cache.Cache {
				return cache.NewSetAssoc(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}, cache.LRU{})
			},
			Window: rng.Symmetric(8),
			Trials: 2000,
			Region: mem.Region{Base: 0x11000, Size: 1024},
			Seed:   uint64(i + 1),
		})
		b.ReportMetric(res.Diff(), "P1-P2")
	}
}

// BenchmarkCollisionMeasurement measures one attack measurement (clean
// cache + traced encryption + timing) — the unit the Table III search
// multiplies by millions.
func BenchmarkCollisionMeasurement(b *testing.B) {
	cfg := attacks.CollisionConfig{Sim: sim.DefaultConfig(), Seed: 1}
	cfg.Sim.MissQueue = 2
	a := attacks.NewCollision(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Collect(1)
	}
}

// BenchmarkConstantTime regenerates the constant-time defense comparison.
func BenchmarkConstantTime(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tb := experiments.ConstantTime(sc)
		b.ReportMetric(pctCell(b, tb.Rows[1][1]), "informing-ipc-%")
		b.ReportMetric(pctCell(b, tb.Rows[3][1]), "randomfill-ipc-%")
	}
}

// BenchmarkAdaptiveWindow regenerates the phase-adaptive window experiment
// (the paper's Section VII future work, implemented).
func BenchmarkAdaptiveWindow(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tb := experiments.AdaptiveWindow(sc)
		b.ReportMetric(pctCell(b, tb.Rows[3][2]), "adaptive-vs-best-static-%")
	}
}

// BenchmarkEquation4 regenerates the analytical-vs-simulated timing model
// validation.
func BenchmarkEquation4(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if tb := experiments.Equation4(sc); len(tb.Rows) != 6 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkAblations regenerates the five design-choice ablations.
func BenchmarkAblations(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		for _, run := range []func(experiments.Scale) *experiments.Table{
			experiments.AblationWindowShape,
			experiments.AblationFillQueue,
			experiments.AblationMissQueue,
			experiments.AblationDropOnHit,
			experiments.AblationL2RandomFill,
		} {
			if tb := run(sc); len(tb.Rows) == 0 {
				b.Fatal("empty ablation table")
			}
		}
	}
}

// BenchmarkRPcacheFill measures the RPcache fill path including the
// deflected-eviction protocol.
func BenchmarkRPcacheFill(b *testing.B) {
	c := rpcache.New(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SetActiveDomain(i & 1)
		c.Fill(mem.Line(i), cache.FillOpts{Owner: i & 1})
	}
}

// BenchmarkNoMoFill measures the NoMo reservation-aware fill path.
func BenchmarkNoMoFill(b *testing.B) {
	c := nomo.New(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}, 2, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fill(mem.Line(i), cache.FillOpts{Owner: i & 1})
	}
}

// BenchmarkBlowfishBlock measures the second table-based cipher.
func BenchmarkBlowfishBlock(b *testing.B) {
	c, err := blowfish.New([]byte("benchmark key"))
	if err != nil {
		b.Fatal(err)
	}
	var in, out [8]byte
	b.SetBytes(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Encrypt(out[:], in[:], nil)
	}
}

// BenchmarkModexpSpy measures one full Percival attack (flush+reload per
// exponent window) against a 128-bit exponent.
func BenchmarkModexpSpy(b *testing.B) {
	mod, _ := new(big.Int).SetString("340282366920938463463374607431768211507", 10)
	e, err := modexp.New(big.NewInt(7), mod, 4)
	if err != nil {
		b.Fatal(err)
	}
	secret, _ := new(big.Int).SetString("DEADBEEFCAFEBABE0123456789ABCDEF", 16)
	mk := func(src *rng.Source) cache.Cache {
		return cache.NewSetAssoc(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}, cache.LRU{})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := modexp.Spy(e, secret, modexp.DefaultLayout(), mk, rng.Window{}, uint64(i+1))
		if res.CorrectWindows != res.Windows {
			b.Fatal("attack failed")
		}
	}
}

// BenchmarkTraceRoundTrip measures trace serialization + deserialization.
func BenchmarkTraceRoundTrip(b *testing.B) {
	g, _ := workloads.ByName("lbm")
	trace := g.Gen(50000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := traceio.Write(&buf, trace); err != nil {
			b.Fatal(err)
		}
		got, err := traceio.Read(&buf)
		if err != nil || len(got) != len(trace) {
			b.Fatal("round trip failed")
		}
	}
}

// BenchmarkWindowGenerator measures the Figure 4 datapath model.
func BenchmarkWindowGenerator(b *testing.B) {
	g := rng.NewWindowGenerator(rng.New(1))
	g.SetWindow(rng.Window{A: 16, B: 15})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Offset()
	}
}

// BenchmarkCapacity measures the Equation 8 closed form at M=128.
func BenchmarkCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = infotheory.Capacity(128, 128, 127)
	}
}
