module randfill

go 1.22
