package scattercache_test

import (
	"testing"

	"randfill/internal/cache"
	"randfill/internal/mem"
	"randfill/internal/rng"
	"randfill/internal/scattercache"
)

func small(seed uint64) *scattercache.ScatterCache {
	return scattercache.New(cache.Geometry{SizeBytes: 4 * 1024, Ways: 4}, rng.New(seed))
}

func TestBasicOperations(t *testing.T) {
	c := small(1)
	if c.NumLines() != 64 {
		t.Fatalf("NumLines = %d, want 64", c.NumLines())
	}
	if c.Lookup(5, false) {
		t.Fatal("cold lookup hit")
	}
	if v := c.Fill(5, cache.FillOpts{}); v.Valid {
		t.Fatalf("fill into empty cache displaced %+v", v)
	}
	if !c.Probe(5) || !c.Lookup(5, true) {
		t.Fatal("line absent after fill")
	}
	if c.Occupancy() != 1 {
		t.Fatalf("occupancy = %d, want 1", c.Occupancy())
	}
	// Refreshing a present line displaces nothing and keeps one copy.
	if v := c.Fill(5, cache.FillOpts{}); v.Valid {
		t.Fatal("refresh displaced a line")
	}
	if c.Occupancy() != 1 {
		t.Fatalf("occupancy = %d after refresh, want 1", c.Occupancy())
	}
	if !c.Invalidate(5) {
		t.Fatal("invalidate missed a present line")
	}
	if c.Probe(5) || c.Occupancy() != 0 {
		t.Fatal("line survived invalidate")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Fills != 1 || st.Invalidates != 1 || st.Evictions != 1 {
		t.Fatalf("stats %+v", *st)
	}
	if st.Writebacks != 1 {
		t.Fatalf("dirty victim not counted as writeback: %+v", *st)
	}
}

// TestSkewsDifferPerWay: the per-way keys are distinct draws, and a line's
// candidate slots genuinely scatter (not all ways agree on one index).
func TestSkewsDifferPerWay(t *testing.T) {
	c := small(2)
	skews := c.Skews()
	for i := 0; i < len(skews); i++ {
		for j := i + 1; j < len(skews); j++ {
			if skews[i] == skews[j] {
				t.Fatalf("ways %d and %d share skew %#x", i, j, skews[i])
			}
		}
	}
	scattered := false
	for l := mem.Line(0); l < 64 && !scattered; l++ {
		idx := scattercache.Indexes(skews, l, 16)
		for _, v := range idx[1:] {
			if v != idx[0] {
				scattered = true
			}
		}
	}
	if !scattered {
		t.Fatal("every line maps to the same index in all ways: indexes are not skewed")
	}
}

// TestKeyedPlacementDiffersAcrossInstances: two instances with different
// keys place the same working set differently — the property that breaks
// address-based eviction-set construction.
func TestKeyedPlacementDiffersAcrossInstances(t *testing.T) {
	a, b := small(3), small(4)
	differs := false
	for l := mem.Line(0); l < 64; l++ {
		ia := scattercache.Indexes(a.Skews(), l, 16)
		ib := scattercache.Indexes(b.Skews(), l, 16)
		for w := range ia {
			if ia[w] != ib[w] {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("different keys produced identical placements for 64 lines")
	}
}

// TestEvictionOnConflict: overfilling the cache evicts valid resident
// lines, each reported exactly once, and capacity is never exceeded.
func TestEvictionOnConflict(t *testing.T) {
	c := small(5)
	evicted := 0
	c.SetEvictionObserver(func(v cache.Victim) {
		if !v.Valid {
			t.Fatal("observer got an invalid victim")
		}
		evicted++
	})
	for l := mem.Line(0); l < 256; l++ {
		c.Fill(l, cache.FillOpts{})
	}
	if c.Occupancy() > c.NumLines() {
		t.Fatalf("occupancy %d exceeds capacity %d", c.Occupancy(), c.NumLines())
	}
	if evicted == 0 {
		t.Fatal("4x overfill evicted nothing")
	}
	if uint64(evicted) != c.Stats().Evictions {
		t.Fatalf("%d callbacks for %d counted evictions", evicted, c.Stats().Evictions)
	}
}

// TestDeterministicReplay: same seed, same behaviour, including the random
// replacement way choices.
func TestDeterministicReplay(t *testing.T) {
	a, b := small(6), small(6)
	src := rng.New(9)
	for i := 0; i < 2048; i++ {
		l := mem.Line(src.Intn(256))
		if a.Lookup(l, false) != b.Lookup(l, false) {
			t.Fatalf("op %d: lookups diverged", i)
		}
		va, vb := a.Fill(l, cache.FillOpts{}), b.Fill(l, cache.FillOpts{})
		if va != vb {
			t.Fatalf("op %d: victims diverged: %+v vs %+v", i, va, vb)
		}
	}
}

// FuzzScatterIndex pins the index derivation's algebraic properties: it is
// a pure function of (skew, line, sets); results stay in range; and
// changing the key set moves at least one way's index for some line in any
// 64-line probe window (a degenerate hash that ignores its key fails this).
func FuzzScatterIndex(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint64(0), uint64(4))
	f.Add(uint64(0), uint64(1<<63), uint64(0xffffffffffffffff), uint64(1))
	f.Add(uint64(0x9e3779b97f4a7c15), uint64(0x9e3779b97f4a7c16), uint64(42), uint64(10))
	f.Fuzz(func(t *testing.T, skew1, skew2, line, setsExp uint64) {
		sets := 1 << (1 + setsExp%10) // 2..1024, power of two
		l := mem.Line(line)

		// Determinism and range, per way.
		skewsA := deriveSkews(skew1)
		idx := scattercache.Indexes(skewsA, l, sets)
		again := scattercache.Indexes(skewsA, l, sets)
		for w := range idx {
			if idx[w] != again[w] {
				t.Fatalf("way %d: index not deterministic (%d vs %d)", w, idx[w], again[w])
			}
			if idx[w] < 0 || idx[w] >= sets {
				t.Fatalf("way %d: index %d outside [0,%d)", w, idx[w], sets)
			}
		}

		// Key sensitivity: a different key set must move >= 1 way index
		// somewhere in a 64-line window. rng.New remaps seed 0 to a fixed
		// constant, so canonicalize before deciding the keys differ.
		const zeroSeed = 0x9e3779b97f4a7c15
		if skew1 == 0 {
			skew1 = zeroSeed
		}
		if skew2 == 0 {
			skew2 = zeroSeed
		}
		if skew1 == skew2 {
			return
		}
		skewsB := deriveSkews(skew2)
		for probe := uint64(0); probe < 64; probe++ {
			pa := scattercache.Indexes(skewsA, l+mem.Line(probe), sets)
			pb := scattercache.Indexes(skewsB, l+mem.Line(probe), sets)
			for w := range pa {
				if pa[w] != pb[w] {
					return
				}
			}
		}
		t.Fatalf("key change %#x -> %#x moved no way index over a 64-line window", skew1, skew2)
	})
}

// deriveSkews expands one key into per-way keys the same way New draws
// them: consecutive outputs of a source seeded with the key.
func deriveSkews(key uint64) []uint64 {
	src := rng.New(key)
	skews := make([]uint64, 8)
	for w := range skews {
		skews[w] = src.Uint64()
	}
	return skews
}

func TestIndexPanicsOnBadSets(t *testing.T) {
	// Index panics on non-power-of-two set counts rather than silently
	// folding; the cache constructor enforces the same invariant.
	defer func() {
		if recover() == nil {
			t.Fatal("Index accepted sets=3")
		}
	}()
	scattercache.Index(1, 2, 3)
}

// TestPolicyParameterizedReplacement drives the stateful-policy path: with a
// non-random policy the victim way comes from the policy over the line's
// gathered candidate stamps (mutations scattered back), hits and fills feed
// the policy, and equal-seeded instances still replay identically.
func TestPolicyParameterizedReplacement(t *testing.T) {
	geom := cache.Geometry{SizeBytes: 4 * 1024, Ways: 4}
	for _, pol := range []cache.Policy{cache.LRU{}, cache.SRRIP{}, cache.PLRU{}} {
		a := scattercache.NewWithPolicy(geom, rng.New(9), pol)
		b := scattercache.NewWithPolicy(geom, rng.New(9), pol)
		src := rng.New(31)
		for i := 0; i < 2048; i++ {
			l := mem.Line(src.Intn(4 * a.NumLines()))
			if a.Lookup(l, false) != b.Lookup(l, false) {
				t.Fatalf("%s: op %d diverged between equal-seeded instances", pol, i)
			}
			if !a.Probe(l) {
				va, vb := a.Fill(l, cache.FillOpts{}), b.Fill(l, cache.FillOpts{})
				if va != vb {
					t.Fatalf("%s: op %d victims diverged: %+v vs %+v", pol, i, va, vb)
				}
			}
		}
		st := a.Stats()
		if *st != *b.Stats() {
			t.Fatalf("%s: stats diverged: %+v vs %+v", pol, *st, *b.Stats())
		}
		if st.Evictions == 0 {
			t.Fatalf("%s: eviction path never ran (fills %d)", pol, st.Fills)
		}
		if g := a.Geometry(); g != geom {
			t.Fatalf("Geometry() = %+v, want %+v", g, geom)
		}
	}
}

// TestPolicyLRUPrefersColdCandidate: under the LRU policy, a line whose
// candidate slots were all just touched by other lines evicts the
// least-recently-touched candidate — observable as the hot line surviving a
// conflict fill that the cold one loses.
func TestPolicyLRUPrefersColdCandidate(t *testing.T) {
	geom := cache.Geometry{SizeBytes: 1024, Ways: 2}
	c := scattercache.NewWithPolicy(geom, rng.New(3), cache.LRU{})
	span := 8 * c.NumLines()
	// Warm the cache well past capacity, re-touching a small hot set often.
	src := rng.New(5)
	hot := []mem.Line{1, 2, 3}
	for i := 0; i < 4096; i++ {
		l := mem.Line(src.Intn(span))
		if i%4 == 0 {
			l = hot[i%3]
		}
		if !c.Lookup(l, false) {
			c.Fill(l, cache.FillOpts{})
		}
	}
	// The frequently re-touched lines should still be resident far more often
	// than chance occupancy of a 16-line cache over a 128-line span implies.
	resident := 0
	for _, l := range hot {
		if c.Probe(l) {
			resident++
		}
	}
	if resident == 0 {
		t.Fatal("no hot line resident under the LRU policy")
	}
}
