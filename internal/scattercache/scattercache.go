// Package scattercache implements a skewed-randomized cache in the style of
// ScatterCache (Werner et al., USENIX Security 2019): each way is a
// direct-mapped slice indexed by its own keyed hash of the line address, so
// a line's candidate slot set {(w, H(skew_w, line)) : w} is different for
// every key and congruent line groups cannot be built from the address
// alone. Replacement picks a uniformly random way among the candidates, the
// other half of the design's eviction-randomization argument.
//
// The occupancy channel is untouched by either mechanism: the attacker's
// own miss count after a victim run still reflects how many lines the
// victim displaced, regardless of where they were scattered — which is what
// the OccupancyMatrix experiment demonstrates.
package scattercache

import (
	"fmt"

	"randfill/internal/cache"
	"randfill/internal/mem"
	"randfill/internal/rng"
)

// scLine is one slot of the scattered store.
type scLine struct {
	tag        mem.Line
	valid      bool
	dirty      bool
	referenced bool
	owner      int
	offset     int8
}

// ScatterCache is the skewed-randomized cache. Way w owns the slot range
// lines[w*sets : (w+1)*sets] and indexes it with skews[w].
type ScatterCache struct {
	geom  cache.Geometry
	sets  int
	ways  int
	lines []scLine
	skews []uint64 // per-way index-derivation keys
	// stamps is the replacement-policy state, one word per slot. A line's
	// policy "set" is its ways-long candidate slot vector, which is not
	// contiguous (each way hashes to its own slot), so the policy operates
	// on scratch, a gathered copy written back after mutation.
	stamps  []uint64
	scratch []uint64
	policy  cache.Policy
	// noState devirtualizes the uniform-random default: Random keeps no
	// per-access state, so the gather/scatter and policy dispatch are
	// skipped and the hot paths stay as lean as before parameterization.
	// rndSrc is the Random policy's source, drawn directly (no interface
	// dispatch) when noState is set.
	noState bool
	rndSrc  *rng.Source
	tick    uint64
	src     *rng.Source
	stats   cache.Stats
	onEv    cache.EvictionObserver
}

var _ cache.Cache = (*ScatterCache)(nil)

// New builds a ScatterCache with the given geometry, drawing the per-way
// index keys and all replacement randomness from src. It panics on invalid
// geometry, mirroring a hardware configuration error.
func New(geom cache.Geometry, src *rng.Source) *ScatterCache {
	return NewWithPolicy(geom, src, nil)
}

// NewWithPolicy builds a ScatterCache whose full-candidate-set victim way
// follows pol over the line's gathered candidate slots (nil selects the
// historical uniform-random default). The skewed indexing is untouched by
// the policy; only which way's candidate slot is evicted changes.
func NewWithPolicy(geom cache.Geometry, src *rng.Source, pol cache.Policy) *ScatterCache {
	lines := geom.SizeBytes / mem.LineSize
	if geom.SizeBytes <= 0 || geom.SizeBytes%mem.LineSize != 0 {
		panic(fmt.Sprintf("scattercache: size %d not a positive multiple of line size", geom.SizeBytes))
	}
	if geom.Ways <= 0 || lines%geom.Ways != 0 {
		panic(fmt.Sprintf("scattercache: %d lines not divisible into %d ways", lines, geom.Ways))
	}
	sets := lines / geom.Ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("scattercache: set count %d not a power of two", sets))
	}
	if pol == nil {
		pol = cache.Random{Src: src}
	}
	if err := cache.PolicyValid(pol); err != nil {
		panic(err)
	}
	c := &ScatterCache{
		geom:    geom,
		sets:    sets,
		ways:    geom.Ways,
		lines:   make([]scLine, lines),
		skews:   make([]uint64, geom.Ways),
		stamps:  make([]uint64, lines),
		scratch: make([]uint64, geom.Ways),
		policy:  pol,
		src:     src,
	}
	if r, ok := pol.(cache.Random); ok {
		c.noState, c.rndSrc = true, r.Src
	}
	for w := range c.skews {
		c.skews[w] = src.Uint64()
	}
	return c
}

// touch gathers line l's candidate stamps, applies the policy's hit or fill
// event to way w, and scatters the (possibly mutated) stamps back. Callers
// gate on !noState so the default random policy pays neither the call nor
// the way division at the call site.
func (c *ScatterCache) touch(l mem.Line, w int, fill bool) {
	for i := 0; i < c.ways; i++ {
		c.scratch[i] = c.stamps[c.slot(i, l)]
	}
	if fill {
		c.policy.OnFill(c.scratch, w, c.tick)
	} else {
		c.policy.OnHit(c.scratch, w, c.tick)
	}
	for i := 0; i < c.ways; i++ {
		c.stamps[c.slot(i, l)] = c.scratch[i]
	}
}

// Index returns way-local set index of line l under the given skew key:
// a splitmix64 finalizer over l XOR skew, masked to the power-of-two set
// count. Exported so the fuzz harness can pin its algebraic properties
// (determinism, range, key sensitivity) without a cache instance.
func Index(skew uint64, l mem.Line, sets int) int {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("scattercache: set count %d not a positive power of two", sets))
	}
	z := uint64(l) ^ skew
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int(z & uint64(sets-1))
}

// Indexes returns the per-way set indexes of line l under the key set.
func Indexes(skews []uint64, l mem.Line, sets int) []int {
	out := make([]int, len(skews))
	for w, skew := range skews {
		out[w] = Index(skew, l, sets)
	}
	return out
}

// Geometry returns the cache's size and associativity.
func (c *ScatterCache) Geometry() cache.Geometry { return c.geom }

// NumLines returns the total line capacity.
func (c *ScatterCache) NumLines() int { return len(c.lines) }

// Stats returns the live statistics counters.
func (c *ScatterCache) Stats() *cache.Stats { return &c.stats }

// SetEvictionObserver registers fn to receive every displaced valid line.
func (c *ScatterCache) SetEvictionObserver(fn cache.EvictionObserver) { c.onEv = fn }

// Skews returns a copy of the per-way index keys, for tests.
func (c *ScatterCache) Skews() []uint64 { return append([]uint64(nil), c.skews...) }

// slot returns the flat index of line l's candidate slot in way w.
func (c *ScatterCache) slot(w int, l mem.Line) int {
	return w*c.sets + Index(c.skews[w], l, c.sets)
}

// find returns the flat slot index holding line l, or -1. A line can only
// live at one of its ways' keyed indexes, so the scan is ways-long.
func (c *ScatterCache) find(l mem.Line) int {
	for w := 0; w < c.ways; w++ {
		p := c.slot(w, l)
		if c.lines[p].valid && c.lines[p].tag == l {
			return p
		}
	}
	return -1
}

// Lookup implements cache.Cache.
func (c *ScatterCache) Lookup(l mem.Line, write bool) bool {
	p := c.find(l)
	if p < 0 {
		c.stats.Misses++
		return false
	}
	c.stats.Hits++
	c.tick++
	c.lines[p].referenced = true
	if !c.noState {
		c.touch(l, p/c.sets, false)
	}
	if write {
		c.lines[p].dirty = true
	}
	return true
}

// Probe implements cache.Cache.
func (c *ScatterCache) Probe(l mem.Line) bool { return c.find(l) >= 0 }

// Fill implements cache.Cache: install at an invalid candidate slot if one
// exists, else at a uniformly random way's candidate slot, evicting its
// occupant. The random way draw is the design's replacement randomization —
// no recency state exists for an attacker to steer.
func (c *ScatterCache) Fill(l mem.Line, opts cache.FillOpts) cache.Victim {
	c.tick++
	if p := c.find(l); p >= 0 {
		c.lines[p].dirty = c.lines[p].dirty || opts.Dirty
		if !c.noState {
			c.touch(l, p/c.sets, true)
		}
		return cache.Victim{}
	}
	c.stats.Fills++
	p := -1
	for w := 0; w < c.ways; w++ {
		if q := c.slot(w, l); !c.lines[q].valid {
			p = q
			break
		}
	}
	var v cache.Victim
	if p < 0 {
		p = c.slot(c.victimWay(l), l)
		v = c.evict(p)
	}
	c.lines[p] = scLine{
		tag:    l,
		valid:  true,
		dirty:  opts.Dirty,
		owner:  opts.Owner,
		offset: opts.Offset,
	}
	if !c.noState {
		c.touch(l, p/c.sets, true)
	}
	return v
}

// victimWay picks the way whose candidate slot is evicted when every
// candidate is valid. The uniform-random default draws a way directly (the
// candidate stamps carry no information for it — scratch is passed
// ungathered); stateful policies see the gathered candidate stamps and any
// mutation (RRIP aging) is scattered back.
func (c *ScatterCache) victimWay(l mem.Line) int {
	if c.noState {
		return c.rndSrc.Intn(c.ways) // == Random.Victim over the candidate vector
	}
	for i := 0; i < c.ways; i++ {
		c.scratch[i] = c.stamps[c.slot(i, l)]
	}
	w := c.policy.Victim(c.scratch)
	for i := 0; i < c.ways; i++ {
		c.stamps[c.slot(i, l)] = c.scratch[i]
	}
	return w
}

// evict clears slot p and returns its victim record, after notifying the
// eviction observer and bumping counters.
func (c *ScatterCache) evict(p int) cache.Victim {
	v := cache.Victim{
		Valid:      true,
		Line:       c.lines[p].tag,
		Dirty:      c.lines[p].dirty,
		Referenced: c.lines[p].referenced,
		Offset:     c.lines[p].offset,
	}
	c.stats.Evictions++
	if v.Dirty {
		c.stats.Writebacks++
	}
	if c.onEv != nil {
		c.onEv(v)
	}
	c.lines[p].valid = false
	return v
}

// Invalidate implements cache.Cache.
func (c *ScatterCache) Invalidate(l mem.Line) bool {
	p := c.find(l)
	if p < 0 {
		return false
	}
	c.stats.Invalidates++
	c.evict(p)
	return true
}

// Flush implements cache.Cache.
func (c *ScatterCache) Flush() {
	for p := range c.lines {
		if c.lines[p].valid {
			c.stats.Invalidates++
			c.evict(p)
		}
	}
}

// Occupancy returns the number of valid lines. It is a pure observer used
// by the occupancy-channel attacks as footprint ground truth.
func (c *ScatterCache) Occupancy() int {
	n := 0
	for p := range c.lines {
		if c.lines[p].valid {
			n++
		}
	}
	return n
}

// Contents returns the line numbers of all valid lines, for tests.
func (c *ScatterCache) Contents() []mem.Line {
	var out []mem.Line
	for p := range c.lines {
		if c.lines[p].valid {
			out = append(out, c.lines[p].tag)
		}
	}
	return out
}

func (c *ScatterCache) String() string {
	return fmt.Sprintf("ScatterCache(%v)", c.geom)
}
