package newcache

import (
	"testing"
	"testing/quick"

	"randfill/internal/cache"
	"randfill/internal/mem"
	"randfill/internal/rng"
)

func nc() *Newcache { return New(512, 2, rng.New(1)) } // 8 physical lines, 32 logical

func TestMissFillHit(t *testing.T) {
	c := nc()
	if c.Lookup(3, false) {
		t.Fatal("empty cache hit")
	}
	c.Fill(3, cache.FillOpts{})
	if !c.Lookup(3, false) {
		t.Fatal("miss after fill")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Fills != 1 {
		t.Errorf("stats %+v", *s)
	}
}

func TestProbeNoSideEffects(t *testing.T) {
	c := nc()
	c.Fill(3, cache.FillOpts{})
	before := *c.Stats()
	if !c.Probe(3) || c.Probe(4) {
		t.Error("probe results wrong")
	}
	if *c.Stats() != before {
		t.Error("probe changed stats")
	}
}

func TestLogicalIndexWidth(t *testing.T) {
	c := nc() // 8 phys lines, k=2 → 32 logical indices
	if c.LogicalIndex(0) != 0 || c.LogicalIndex(31) != 31 || c.LogicalIndex(32) != 0 {
		t.Error("logical index mask wrong")
	}
}

func TestTagConflictReplacesMappedLine(t *testing.T) {
	// Two lines sharing a logical index (32 apart here) conflict
	// deterministically in the logical direct-mapped cache.
	c := nc()
	c.Fill(5, cache.FillOpts{})
	v := c.Fill(5+32, cache.FillOpts{})
	if !v.Valid || v.Line != 5 {
		t.Fatalf("tag conflict victim %+v, want line 5", v)
	}
	if c.Probe(5) || !c.Probe(5+32) {
		t.Error("conflict replacement contents wrong")
	}
}

func TestIndexMissUsesRandomVictim(t *testing.T) {
	// Fill beyond capacity with distinct logical indices: victims must
	// be spread over many physical lines (random replacement), not a
	// single deterministic slot.
	c := New(512, 2, rng.New(7)) // 8 physical lines
	victims := make(map[mem.Line]bool)
	for i := 0; i < 200; i++ {
		v := c.Fill(mem.Line(i), cache.FillOpts{})
		if v.Valid {
			victims[v.Line] = true
		}
	}
	if len(victims) < 8 {
		t.Errorf("victims covered only %d distinct lines", len(victims))
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	f := func(lines []uint16) bool {
		c := New(512, 4, rng.New(3))
		for _, l := range lines {
			c.Fill(mem.Line(l), cache.FillOpts{})
		}
		return len(c.Contents()) <= c.NumLines()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFillRefreshDisplacesNothing(t *testing.T) {
	c := nc()
	c.Fill(3, cache.FillOpts{})
	if v := c.Fill(3, cache.FillOpts{Dirty: true}); v.Valid {
		t.Errorf("refresh displaced %+v", v)
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	c := nc()
	c.Fill(1, cache.FillOpts{})
	c.Fill(2, cache.FillOpts{})
	if !c.Invalidate(1) || c.Invalidate(1) {
		t.Error("invalidate semantics wrong")
	}
	c.Flush()
	if len(c.Contents()) != 0 {
		t.Error("flush left lines behind")
	}
	if c.Probe(2) {
		t.Error("line survived flush")
	}
}

func TestEvictionObserverAndWriteback(t *testing.T) {
	c := nc()
	var victims []cache.Victim
	c.SetEvictionObserver(func(v cache.Victim) { victims = append(victims, v) })
	c.Fill(5, cache.FillOpts{Dirty: true})
	c.Lookup(5, false)
	c.Fill(5+32, cache.FillOpts{}) // deterministic tag conflict
	if len(victims) != 1 || victims[0].Line != 5 || !victims[0].Dirty || !victims[0].Referenced {
		t.Errorf("victims = %+v", victims)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestRemapConsistency(t *testing.T) {
	// Property: after any fill sequence, every valid physical line is
	// reachable through the remap table under its own logical index.
	f := func(lines []uint16) bool {
		c := New(1024, 3, rng.New(11))
		for _, l := range lines {
			c.Fill(mem.Line(l), cache.FillOpts{})
		}
		for _, l := range c.Contents() {
			if !c.Probe(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHarderToClean(t *testing.T) {
	// The paper notes completely cleaning Newcache is harder than
	// cleaning an SA cache because of random replacement: filling with
	// exactly capacity-many fresh lines rarely evicts everything.
	c := New(512, 2, rng.New(5)) // 8 lines
	c.Fill(1000, cache.FillOpts{})
	for i := 0; i < 8; i++ {
		c.Fill(mem.Line(2000+i), cache.FillOpts{})
	}
	// With random replacement the probability the single victim line
	// survived is (7/8)^8 ≈ 0.34, so across seeds survival must occur;
	// with this seed just assert the documented possibility holds for
	// at least one of several target lines.
	survived := 0
	for trial := 0; trial < 50; trial++ {
		c2 := New(512, 2, rng.New(uint64(trial)))
		c2.Fill(1000, cache.FillOpts{})
		for i := 0; i < 8; i++ {
			c2.Fill(mem.Line(2000+i), cache.FillOpts{})
		}
		if c2.Probe(1000) {
			survived++
		}
	}
	if survived == 0 {
		t.Error("line never survived an exact-capacity cleaning pass; replacement does not look random")
	}
	if survived == 50 {
		t.Error("line always survived; replacement never evicts it")
	}
}

func TestNewValidation(t *testing.T) {
	bad := []func(){
		func() { New(0, 2, rng.New(1)) },
		func() { New(100, 2, rng.New(1)) },
		func() { New(64*3, 2, rng.New(1)) },
		func() { New(512, -1, rng.New(1)) },
		func() { New(512, 2, nil) },
	}
	for i, f := range bad {
		func() {
			defer func() { recover() }()
			f()
			t.Errorf("case %d did not panic", i)
		}()
	}
}
