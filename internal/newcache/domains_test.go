package newcache

import (
	"testing"

	"randfill/internal/cache"
	"randfill/internal/mem"
	"randfill/internal/rng"
)

func TestDomainsHaveSeparateTables(t *testing.T) {
	c := New(1024, 2, rng.New(1)) // 16 physical lines
	c.SetActiveDomain(0)
	c.Fill(5, cache.FillOpts{})
	if !c.Probe(5) {
		t.Fatal("domain 0 cannot see its own line")
	}
	// Domain 1's table has no mapping for the same address.
	c.SetActiveDomain(1)
	if c.Probe(5) {
		t.Fatal("protected domain 1 sees domain 0's mapping")
	}
	// Domain 1 can cache the same address independently.
	c.Fill(5, cache.FillOpts{})
	if !c.Probe(5) {
		t.Fatal("domain 1 cannot fill its own mapping")
	}
	c.SetActiveDomain(0)
	if !c.Probe(5) {
		t.Fatal("domain 0 lost its mapping after domain 1 filled")
	}
}

func TestDomainClamping(t *testing.T) {
	c := New(1024, 2, rng.New(2))
	c.SetActiveDomain(-1)
	if c.ActiveDomain() != 0 {
		t.Errorf("negative domain → %d", c.ActiveDomain())
	}
	c.SetActiveDomain(MaxDomains + 2)
	if d := c.ActiveDomain(); d < 0 || d >= MaxDomains {
		t.Errorf("overflow domain → %d", d)
	}
}

func TestInvalidateIsTagScan(t *testing.T) {
	// clflush semantics: an invalidation from another domain still
	// removes the line (it matches by address, not through the issuing
	// domain's table).
	c := New(1024, 2, rng.New(3))
	c.SetActiveDomain(1)
	c.Fill(7, cache.FillOpts{})
	c.SetActiveDomain(0)
	if !c.Invalidate(7) {
		t.Fatal("cross-domain clflush missed the line")
	}
	c.SetActiveDomain(1)
	if c.Probe(7) {
		t.Fatal("line survived cross-domain clflush")
	}
}

func TestCrossDomainEvictionTearsDownOwnerMapping(t *testing.T) {
	// When a domain-1 line is randomly evicted by domain-0 pressure, the
	// domain-1 mapping must be torn down (no stale mapping to an
	// overwritten physical line).
	c := New(512, 2, rng.New(4)) // 8 physical lines
	c.SetActiveDomain(1)
	c.Fill(100, cache.FillOpts{})
	c.SetActiveDomain(0)
	for i := 0; i < 200; i++ {
		c.Fill(mem.Line(i), cache.FillOpts{})
	}
	c.SetActiveDomain(1)
	// Either the line survived (improbable after 200 random evictions)
	// or probing it must miss cleanly; a stale mapping would make Probe
	// return true for an overwritten physical line.
	if c.Probe(100) {
		// Verify it is genuinely line 100 by invalidating and
		// re-probing.
		c.Invalidate(100)
		if c.Probe(100) {
			t.Fatal("stale mapping: probe hits after invalidation")
		}
	}
	// Consistency sweep: every line a domain can probe must be in
	// Contents.
	valid := make(map[mem.Line]bool)
	for _, l := range c.Contents() {
		valid[l] = true
	}
	for d := 0; d < MaxDomains; d++ {
		c.SetActiveDomain(d)
		for l := mem.Line(0); l < 300; l++ {
			if c.Probe(l) && !valid[l] {
				t.Fatalf("domain %d probes line %d not in contents", d, l)
			}
		}
	}
}
