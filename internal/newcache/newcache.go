// Package newcache implements Newcache (Wang & Lee, MICRO 2008; Liu & Lee,
// HASP 2013): a randomization-based secure cache organized as a logical
// direct-mapped (LDM) cache whose index space is larger than the physical
// cache (extra index bits k), with a remapping table providing the
// logical-to-physical indirection and randomized replacement de-correlating
// cache contention from memory addresses.
//
// The model implements the two miss classes of the LDM design:
//
//   - index miss: the logical index has no valid mapping. The incoming line
//     is placed in a uniformly random physical line (the SecRAND behaviour),
//     whose previous logical mapping is torn down.
//   - tag miss: the logical index maps to a physical line holding a
//     different tag. The conflicting physical line itself is replaced
//     (direct-mapped semantics within the logical cache).
//
// Because the logical index space is 2^k times larger than the physical
// cache, index misses dominate and replacement is effectively random, which
// is the property the paper relies on ("completely cleaning Newcache is
// harder than cleaning the SA cache, due to Newcache's random replacement
// algorithm", Section V.A). The random-fill engine in internal/core layers
// on top of this type exactly as it does on the SA cache.
package newcache

import (
	"fmt"

	"randfill/internal/cache"
	"randfill/internal/mem"
	"randfill/internal/rng"
)

type ncLine struct {
	tag        mem.Line
	lidx       int // logical index currently mapped to this physical line
	domain     int // trust domain whose table maps this line
	valid      bool
	dirty      bool
	referenced bool
	offset     int8
}

// MaxDomains bounds the number of protected trust domains with private
// remapping tables (Wang & Lee: "Protected processes have different
// remapping tables, while all unprotected processes share the same
// remapping table"). Domain 0 is the shared unprotected table.
const MaxDomains = 4

// Newcache is a logical direct-mapped secure cache with a remapping table.
type Newcache struct {
	physLines  int
	extraBits  int
	logicalCap int
	lidxMask   uint64
	// remaps[d] is trust domain d's remapping table: logical index ->
	// physical line, or -1.
	remaps [MaxDomains][]int32
	active int
	lines  []ncLine
	// stamps is the replacement-policy state, one word per physical line;
	// the policy treats the whole store as a single physLines-way set
	// (the LDM store has no set structure of its own).
	stamps []uint64
	policy cache.Policy
	// noState devirtualizes the uniform-random default: Random keeps no
	// per-access state, so OnHit/OnFill dispatch is skipped entirely and
	// the hit path stays as lean as before policy parameterization.
	noState bool
	tick    uint64
	src     *rng.Source
	stats   cache.Stats
	onEv    cache.EvictionObserver
}

var _ cache.Cache = (*Newcache)(nil)

// DefaultExtraBits is the number of extra index bits k. The Newcache paper
// finds k=4 sufficient to make conflict misses rare.
const DefaultExtraBits = 4

// New builds a Newcache with sizeBytes capacity and k extra index bits,
// drawing replacement randomness from src.
func New(sizeBytes, extraBits int, src *rng.Source) *Newcache {
	return NewWithPolicy(sizeBytes, extraBits, src, nil)
}

// NewWithPolicy builds a Newcache whose index-miss victim selection follows
// pol over the whole physical store (nil selects the historical SecRAND
// default, a uniform draw from src). Tag misses keep the logical
// direct-mapped semantics regardless of policy — only the index-miss
// placement is the replacement decision the Peters et al. axis varies.
func NewWithPolicy(sizeBytes, extraBits int, src *rng.Source, pol cache.Policy) *Newcache {
	if sizeBytes <= 0 || sizeBytes%mem.LineSize != 0 {
		panic(fmt.Sprintf("newcache: bad size %d", sizeBytes))
	}
	phys := sizeBytes / mem.LineSize
	if phys&(phys-1) != 0 {
		panic(fmt.Sprintf("newcache: line count %d not a power of two", phys))
	}
	if extraBits < 0 || extraBits > 16 {
		panic(fmt.Sprintf("newcache: bad extra bits %d", extraBits))
	}
	if src == nil {
		panic("newcache: nil rng source")
	}
	if pol == nil {
		pol = cache.Random{Src: src}
	}
	if err := cache.PolicyValid(pol); err != nil {
		panic(err)
	}
	logical := phys << extraBits
	c := &Newcache{
		physLines:  phys,
		extraBits:  extraBits,
		logicalCap: logical,
		lidxMask:   uint64(logical - 1),
		lines:      make([]ncLine, phys),
		stamps:     make([]uint64, phys),
		policy:     pol,
		src:        src,
	}
	_, c.noState = pol.(cache.Random)
	for d := range c.remaps {
		c.remaps[d] = make([]int32, logical)
		for i := range c.remaps[d] {
			c.remaps[d][i] = -1
		}
	}
	return c
}

// SetActiveDomain selects the trust domain whose remapping table maps
// subsequent accesses. Out-of-range domains are clamped into
// [0, MaxDomains).
func (c *Newcache) SetActiveDomain(d int) {
	if d < 0 {
		d = 0
	}
	c.active = d % MaxDomains
}

// ActiveDomain returns the currently selected trust domain.
func (c *Newcache) ActiveDomain() int { return c.active }

// LogicalIndex returns the logical (extended) index of line l.
func (c *Newcache) LogicalIndex(l mem.Line) int { return int(uint64(l) & c.lidxMask) }

// NumLines returns the physical line capacity.
func (c *Newcache) NumLines() int { return c.physLines }

// Stats returns the live statistics counters.
func (c *Newcache) Stats() *cache.Stats { return &c.stats }

// SetEvictionObserver registers fn to receive every displaced valid line.
func (c *Newcache) SetEvictionObserver(fn cache.EvictionObserver) { c.onEv = fn }

// locate returns the physical line holding l under the active domain's
// remapping table, or -1.
func (c *Newcache) locate(l mem.Line) int {
	p := c.remaps[c.active][c.LogicalIndex(l)]
	if p >= 0 && c.lines[p].valid && c.lines[p].tag == l {
		return int(p)
	}
	return -1
}

// Lookup implements cache.Cache.
func (c *Newcache) Lookup(l mem.Line, write bool) bool {
	p := c.locate(l)
	if p < 0 {
		c.stats.Misses++
		return false
	}
	c.stats.Hits++
	c.tick++
	c.lines[p].referenced = true
	if !c.noState {
		c.policy.OnHit(c.stamps, p, c.tick)
	}
	if write {
		c.lines[p].dirty = true
	}
	return true
}

// Probe implements cache.Cache.
func (c *Newcache) Probe(l mem.Line) bool { return c.locate(l) >= 0 }

// Fill implements cache.Cache.
func (c *Newcache) Fill(l mem.Line, opts cache.FillOpts) cache.Victim {
	lidx := c.LogicalIndex(l)
	c.tick++
	if p := c.locate(l); p >= 0 {
		c.lines[p].dirty = c.lines[p].dirty || opts.Dirty
		if !c.noState {
			c.policy.OnFill(c.stamps, p, c.tick)
		}
		return cache.Victim{}
	}
	c.stats.Fills++

	var p int
	if mapped := c.remaps[c.active][lidx]; mapped >= 0 && c.lines[mapped].valid {
		// Tag miss: replace the conflicting line (LDM semantics).
		p = int(mapped)
	} else {
		// Index miss: replacement-policy pick over the whole store
		// (SecRAND under the default uniform-random policy).
		p = c.policy.Victim(c.stamps)
	}

	var v cache.Victim
	if c.lines[p].valid {
		v = c.evict(p)
	}
	c.lines[p] = ncLine{
		tag:    l,
		lidx:   lidx,
		domain: c.active,
		valid:  true,
		dirty:  opts.Dirty,
		offset: opts.Offset,
	}
	if !c.noState {
		c.policy.OnFill(c.stamps, p, c.tick)
	}
	c.remaps[c.active][lidx] = int32(p)
	return v
}

// evict clears physical line p, tears down its mapping, and reports the
// victim.
func (c *Newcache) evict(p int) cache.Victim {
	ln := &c.lines[p]
	v := cache.Victim{
		Valid:      true,
		Line:       ln.tag,
		Dirty:      ln.dirty,
		Referenced: ln.referenced,
		Offset:     ln.offset,
	}
	c.stats.Evictions++
	if v.Dirty {
		c.stats.Writebacks++
	}
	if c.onEv != nil {
		c.onEv(v)
	}
	if c.remaps[ln.domain][ln.lidx] == int32(p) {
		c.remaps[ln.domain][ln.lidx] = -1
	}
	ln.valid = false
	return v
}

// Invalidate implements cache.Cache. Unlike Lookup, invalidation matches
// by tag across all physical lines (a clflush snoops by address, not
// through the issuing process's remapping table).
func (c *Newcache) Invalidate(l mem.Line) bool {
	for p := range c.lines {
		if c.lines[p].valid && c.lines[p].tag == l {
			c.stats.Invalidates++
			c.evict(p)
			return true
		}
	}
	return false
}

// Flush implements cache.Cache.
func (c *Newcache) Flush() {
	for p := range c.lines {
		if c.lines[p].valid {
			c.stats.Invalidates++
			c.evict(p)
		}
	}
}

// DrainValid reports every still-valid line to the eviction observer
// without invalidating it (end-of-run profiler accounting).
func (c *Newcache) DrainValid() {
	if c.onEv == nil {
		return
	}
	for p := range c.lines {
		if c.lines[p].valid {
			ln := &c.lines[p]
			c.onEv(cache.Victim{
				Valid:      true,
				Line:       ln.tag,
				Dirty:      ln.dirty,
				Referenced: ln.referenced,
				Offset:     ln.offset,
			})
		}
	}
}

// Contents returns the line numbers of all valid lines.
func (c *Newcache) Contents() []mem.Line {
	var out []mem.Line
	for p := range c.lines {
		if c.lines[p].valid {
			out = append(out, c.lines[p].tag)
		}
	}
	return out
}

func (c *Newcache) String() string {
	return fmt.Sprintf("Newcache(%dKB, k=%d)", c.physLines*mem.LineSize/1024, c.extraBits)
}

// Occupancy returns the number of valid physical lines. It is a pure
// observer used by the occupancy-channel attacks as footprint ground truth.
func (c *Newcache) Occupancy() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}
