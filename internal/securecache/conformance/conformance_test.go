package conformance_test

import (
	"testing"

	"randfill/internal/cache"
	"randfill/internal/rng"
	"randfill/internal/securecache"
	"randfill/internal/securecache/conformance"
)

// TestConformanceAllDesigns runs the suite against every registered design,
// so registering a design that breaks the contract fails here even before
// its own package adopts the per-package test.
func TestConformanceAllDesigns(t *testing.T) {
	if len(securecache.All()) < 7 {
		t.Fatalf("registry has %d designs, want >= 7", len(securecache.All()))
	}
	for _, d := range securecache.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			conformance.RunConformance(t, func(src *rng.Source) securecache.SecureCache {
				return d.New(conformance.SmallConfig(), src)
			})
		})
	}
}

// TestPolicyConformanceAllDesigns sweeps the full policy x design grid
// through the same contract: every replacement policy must leave every
// design deterministic, counter-consistent, flushable, and exactly-once on
// evictions. This is the conformance gate for the PolicyMatrix experiment's
// cells — a (policy, design) pair that breaks the contract fails here before
// any matrix run depends on it.
func TestPolicyConformanceAllDesigns(t *testing.T) {
	for _, pol := range cache.PolicyNames() {
		for _, d := range securecache.All() {
			pol, d := pol, d
			t.Run(pol+"/"+d.Name, func(t *testing.T) {
				conformance.RunConformance(t, func(src *rng.Source) securecache.SecureCache {
					cfg := conformance.SmallConfig()
					cfg.Policy = pol
					return d.New(cfg, src)
				})
			})
		}
	}
}
