package conformance_test

import (
	"testing"

	"randfill/internal/rng"
	"randfill/internal/securecache"
	"randfill/internal/securecache/conformance"
)

// TestConformanceAllDesigns runs the suite against every registered design,
// so registering a design that breaks the contract fails here even before
// its own package adopts the per-package test.
func TestConformanceAllDesigns(t *testing.T) {
	if len(securecache.All()) < 7 {
		t.Fatalf("registry has %d designs, want >= 7", len(securecache.All()))
	}
	for _, d := range securecache.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			conformance.RunConformance(t, func(src *rng.Source) securecache.SecureCache {
				return d.New(conformance.SmallConfig(), src)
			})
		})
	}
}
