// Package conformance is the executable SecureCache contract: one exported
// suite, RunConformance, that every design package's tests run against its
// own registry entry. A new design added to the registry gets the whole
// suite for free by adding one test function; a design that violates the
// contract (hidden nondeterminism, double-counted accesses, leaky flush,
// lost or duplicated eviction callbacks) fails here before any experiment
// ever sees it.
package conformance

import (
	"testing"

	"randfill/internal/cache"
	"randfill/internal/mem"
	"randfill/internal/rng"
	"randfill/internal/securecache"
)

// Factory builds a fresh design instance whose randomness derives entirely
// from src: two instances built from equal-seeded sources must behave
// identically.
type Factory func(src *rng.Source) securecache.SecureCache

// SmallConfig is the geometry the design packages drive the suite at: 64
// lines, small enough that the op script overflows the capacity many times
// and every eviction path runs.
func SmallConfig() securecache.Config {
	return securecache.Config{Geom: cache.Geometry{SizeBytes: 4 * 1024, Ways: 4}}
}

// driveOps is the length of the conformance op script. It is sized to
// overflow a 64-line instance several times over, so every design exercises
// its eviction path, not just cold fills.
const driveOps = 4096

// factorySeed seeds the design instance; opSeed seeds the op script. They
// are distinct on purpose: the script must not be correlated with the
// design's internal randomness.
const (
	factorySeed = 0xc0f0
	opSeed      = 0x5c21
)

// step is one scripted operation's observable outcome.
type step struct {
	op  byte
	hit bool
	occ int
}

// drive runs the fixed op script against c and returns the per-op
// observable trace. The script mixes reads, writes, invalidates, probes,
// party switches and periodic occupancy reads over an address range about
// four times the typical instance capacity.
func drive(c securecache.SecureCache, ops int) ([]step, int) {
	src := rng.New(opSeed)
	span := 4 * c.NumLines()
	trace := make([]step, 0, ops)
	accesses := 0
	for i := 0; i < ops; i++ {
		l := mem.Line(src.Intn(span))
		var s step
		switch op := src.Intn(16); {
		case op < 10: // demand read
			s = step{op: 'r', hit: c.Access(l, false)}
			accesses++
		case op < 12: // demand write
			s = step{op: 'w', hit: c.Access(l, true)}
			accesses++
		case op < 13: // clflush
			s = step{op: 'i', hit: c.Invalidate(l)}
		case op < 15: // side-effect-free probe
			s = step{op: 'p', hit: c.Probe(l)}
		default: // switch the accessing party
			c.SetParty(src.Intn(2))
			s = step{op: 's'}
		}
		if i%64 == 0 {
			s.occ = c.Occupancy()
		}
		trace = append(trace, s)
	}
	return trace, accesses
}

// RunConformance asserts the SecureCache contract for the design f builds.
func RunConformance(t *testing.T, f Factory) {
	t.Run("DeterministicReplay", func(t *testing.T) {
		a := f(rng.New(factorySeed))
		b := f(rng.New(factorySeed))
		ta, _ := drive(a, driveOps)
		tb, _ := drive(b, driveOps)
		for i := range ta {
			if ta[i] != tb[i] {
				t.Fatalf("op %d diverged between equal-seeded instances: %+v vs %+v", i, ta[i], tb[i])
			}
		}
		if *a.Stats() != *b.Stats() {
			t.Fatalf("equal-seeded instances ended with different stats: %+v vs %+v", *a.Stats(), *b.Stats())
		}
		// A different seed must be allowed to behave differently (the
		// randomized designs must actually consume the source) — but the
		// contract only requires it to still satisfy the counters below,
		// so no assertion on divergence here.
	})

	t.Run("CounterConsistency", func(t *testing.T) {
		c := f(rng.New(factorySeed))
		_, accesses := drive(c, driveOps)
		st := c.Stats()
		if got := st.Hits + st.Misses; got != uint64(accesses) {
			t.Fatalf("hits+misses = %d, want the %d Access calls (hits %d, misses %d)",
				got, accesses, st.Hits, st.Misses)
		}
		if occ := c.Occupancy(); occ < 0 || occ > c.NumLines() {
			t.Fatalf("occupancy %d outside [0, %d]", occ, c.NumLines())
		}
		if st.Fills < st.Evictions {
			t.Fatalf("more evictions (%d) than fills (%d)", st.Evictions, st.Fills)
		}
	})

	t.Run("FlushEmpties", func(t *testing.T) {
		c := f(rng.New(factorySeed))
		drive(c, driveOps)
		c.Flush()
		if occ := c.Occupancy(); occ != 0 {
			t.Fatalf("occupancy %d after Flush, want 0", occ)
		}
		for l := 0; l < 4*c.NumLines(); l++ {
			if c.Probe(mem.Line(l)) {
				t.Fatalf("line %d still probes present after Flush", l)
			}
		}
		// A flushed instance must keep working: the next access to any
		// line is a miss, not a stale hit.
		pre := c.Stats().Misses
		if c.Access(0, false) {
			t.Fatal("access after Flush reported a hit")
		}
		if c.Stats().Misses != pre+1 {
			t.Fatal("access after Flush did not count a miss")
		}
	})

	t.Run("EvictionExactlyOnce", func(t *testing.T) {
		c := f(rng.New(factorySeed))
		var observed []cache.Victim
		c.SetEvictionObserver(func(v cache.Victim) { observed = append(observed, v) })
		drive(c, driveOps)
		occ := c.Occupancy()
		before := len(observed)
		c.Flush()
		if flushed := len(observed) - before; flushed != occ {
			t.Fatalf("Flush of %d resident lines produced %d eviction callbacks", occ, flushed)
		}
		if got, want := uint64(len(observed)), c.Stats().Evictions; got != want {
			t.Fatalf("%d eviction callbacks for %d counted evictions", got, want)
		}
		for i, v := range observed {
			if !v.Valid {
				t.Fatalf("callback %d delivered an invalid victim: %+v", i, v)
			}
		}
	})
}
