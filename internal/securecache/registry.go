package securecache

import (
	"fmt"

	"randfill/internal/cache"
	"randfill/internal/core"
	"randfill/internal/mirage"
	"randfill/internal/newcache"
	"randfill/internal/nomo"
	"randfill/internal/plcache"
	"randfill/internal/rng"
	"randfill/internal/rpcache"
	"randfill/internal/scattercache"
)

// Config sizes a design instance. The zero value selects the Table IV
// defaults, scaled per field by withDefaults; designs ignore the fields
// that do not apply to them.
type Config struct {
	// Geom is the cache geometry (default 32 KB, 4 ways). Mirage uses
	// only its capacity.
	Geom cache.Geometry
	// Window is the random fill window (randfill only; default the
	// paper's [-16,15]).
	Window rng.Window
	// ExtraBits is Newcache's number of extra index bits k (default 4).
	ExtraBits int
	// Threads and Reserved configure NoMo's way reservation (defaults:
	// 2 threads, 1 reserved way each).
	Threads  int
	Reserved int
	// Policy names the replacement policy (see cache.PolicyNames). ""
	// selects each design's historical default — LRU for randfill,
	// plcache, rpcache and nomo; uniform random for newcache,
	// scattercache and mirage — and is guaranteed byte-identical to the
	// pre-policy registry. Any explicit name overrides the design's
	// victim selection: the Peters et al. policy × design axis.
	Policy string
}

func (c Config) withDefaults() Config {
	if c.Geom.SizeBytes == 0 {
		c.Geom = cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}
	}
	if c.Geom.Ways == 0 {
		c.Geom.Ways = 4
	}
	if c.Window.Zero() {
		c.Window = rng.Symmetric(32) // the paper's [-16,+15] evaluation window
	}
	if c.ExtraBits == 0 {
		c.ExtraBits = 4
	}
	if c.Threads == 0 {
		c.Threads = 2
	}
	if c.Reserved == 0 {
		c.Reserved = 1
	}
	return c
}

// Design is one registry entry: a named, documented SecureCache factory.
type Design struct {
	// Name is the registry key, also accepted by `rfsim -design`.
	Name string
	// Description is a one-line summary of the protection mechanism.
	Description string
	// New builds a fresh instance. All randomness (index keys,
	// permutations, replacement, fill windows) derives from src: same
	// seed, same behaviour.
	New func(cfg Config, src *rng.Source) SecureCache
}

// All returns the design registry in evaluation order: the paper's design
// first, then the prior work it compares against, then the later
// randomization families. The order is part of the OccupancyMatrix
// experiment's byte-identity contract — do not reorder casually.
func All() []Design {
	return []Design{
		{"randfill", "random fill: demand misses fill a random neighbor from the window, never the missing line", buildRandfill},
		{"newcache", "Newcache: dynamically remapped logical direct-mapped cache with random replacement", buildNewcache},
		{"plcache", "PLcache: per-line lock bits; locked lines are never evicted by other processes", buildPLcache},
		{"rpcache", "RPcache: per-domain set permutation with deflected cross-domain evictions", buildRPcache},
		{"nomo", "NoMo: static per-thread way reservation on an SMT core", buildNoMo},
		{"scattercache", "ScatterCache-style: per-way keyed skewed indexing, random-way replacement", buildScatterCache},
		{"mirage", "MIRAGE-style: fully-associative store with uniform global random eviction", buildMirage},
	}
}

// Names returns the registered design names in registry order.
func Names() []string {
	ds := All()
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Name
	}
	return out
}

// ByName finds a registered design.
func ByName(name string) (Design, bool) {
	for _, d := range All() {
		if d.Name == name {
			return d, true
		}
	}
	return Design{}, false
}

// New builds a named design, or errors with the known names. A bad
// cfg.Policy errors too (listing the valid policy names), so CLI paths get
// a diagnostic instead of a factory panic.
func New(name string, cfg Config, src *rng.Source) (SecureCache, error) {
	d, ok := ByName(name)
	if !ok {
		return nil, fmt.Errorf("securecache: unknown design %q (have %v)", name, Names())
	}
	if !cache.KnownPolicy(cfg.Policy) {
		return nil, fmt.Errorf("securecache: unknown replacement policy %q (have %v)",
			cfg.Policy, cache.PolicyNames())
	}
	return d.New(cfg, src), nil
}

// The factories below are the only places the registry constructs concrete
// designs; the rflint simlayer checker enforces that (build* functions in
// this package and internal/sim are the allowed construction sites). The
// RNG split discipline matches the attacks' historical layout: cache
// structure draws from src.Split(1), the random fill engine from
// src.Split(2) — so a design built here behaves identically to one built
// by hand with those splits. A non-default RNG-backed replacement policy
// (random, brrip) additionally consumes src.Split(3), which no historical
// configuration touches; ""/draw-free policies split nothing, keeping every
// default draw sequence byte-identical.

// policyFor resolves cfg.Policy into a policy instance, or nil for "" (the
// design's default). New already validated the name, so an error here is a
// registry bug and panics.
func policyFor(cfg Config, src *rng.Source) cache.Policy {
	if cfg.Policy == "" {
		return nil
	}
	var psrc *rng.Source
	if cache.PolicyNeedsRNG(cfg.Policy) {
		psrc = src.Split(3)
	}
	pol, err := cache.PolicyByName(cfg.Policy, psrc)
	if err != nil {
		panic(err)
	}
	return pol
}

func buildRandfill(cfg Config, src *rng.Source) SecureCache {
	cfg = cfg.withDefaults()
	pol := policyFor(cfg, src)
	if pol == nil {
		pol = cache.LRU{}
	}
	c := cache.NewSetAssoc(cfg.Geom, pol)
	eng := core.NewEngine(c, src.Split(2))
	eng.SetRR(cfg.Window.A, cfg.Window.B)
	return &randfill{design: c, eng: eng}
}

func buildNewcache(cfg Config, src *rng.Source) SecureCache {
	cfg = cfg.withDefaults()
	pol := policyFor(cfg, src)
	return &demand{design: newcache.NewWithPolicy(cfg.Geom.SizeBytes, cfg.ExtraBits, src.Split(1), pol)}
}

func buildPLcache(cfg Config, src *rng.Source) SecureCache {
	cfg = cfg.withDefaults()
	return &demand{design: plcache.NewWithPolicy(cfg.Geom, policyFor(cfg, src))}
}

func buildRPcache(cfg Config, src *rng.Source) SecureCache {
	cfg = cfg.withDefaults()
	pol := policyFor(cfg, src)
	return &demand{design: rpcache.NewWithPolicy(cfg.Geom, src.Split(1), pol)}
}

func buildNoMo(cfg Config, src *rng.Source) SecureCache {
	cfg = cfg.withDefaults()
	return &demand{design: nomo.NewWithPolicy(cfg.Geom, cfg.Threads, cfg.Reserved, policyFor(cfg, src))}
}

func buildScatterCache(cfg Config, src *rng.Source) SecureCache {
	cfg = cfg.withDefaults()
	pol := policyFor(cfg, src)
	return &demand{design: scattercache.NewWithPolicy(cfg.Geom, src.Split(1), pol)}
}

func buildMirage(cfg Config, src *rng.Source) SecureCache {
	cfg = cfg.withDefaults()
	pol := policyFor(cfg, src)
	return &demand{design: mirage.NewWithPolicy(cfg.Geom, src.Split(1), pol)}
}
