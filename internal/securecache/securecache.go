// Package securecache unifies every secure-cache design in this repository
// behind one interface and one registry, so attacks and experiments can be
// written once and run against the whole design zoo: the paper's random
// fill architecture (internal/cache + internal/core), the four prior-work
// designs it compares against (Newcache, PLcache, RPcache, NoMo), and the
// two later randomization families the occupancy evaluation adds
// (ScatterCache-style skewed indexing, MIRAGE-style global random
// eviction). See DESIGN.md §11.
//
// The port is purely additive: each registered design wraps the existing
// implementation in a thin adapter that supplies the design's own demand
// access path, and consumes no RNG draws beyond what direct construction
// did — which is what keeps the pre-refactor goldens byte-identical.
package securecache

import (
	"randfill/internal/cache"
	"randfill/internal/core"
	"randfill/internal/mem"
)

// SecureCache is the design-zoo contract: the line-granular cache.Cache
// operations plus the design's own demand-access path (which applies its
// fill policy on a miss), an eviction observer hook, and an occupancy
// observer — the two observables the conformance suite and the occupancy
// battery are built on.
type SecureCache interface {
	cache.Cache

	// Access performs one demand access under the design's fill policy:
	// a Lookup, plus — on a miss — whatever fills the design performs
	// (a demand fill for the structural designs, a no-fill plus random
	// neighbor fills for random fill). Returns whether the access hit.
	// Exactly one hit or miss is counted per call.
	Access(l mem.Line, write bool) bool

	// SetEvictionObserver registers fn to receive every displaced valid
	// line exactly once (fills, invalidates and flushes alike).
	SetEvictionObserver(fn cache.EvictionObserver)

	// Occupancy returns the number of resident lines without perturbing
	// any state — the ground truth behind the occupancy channel.
	Occupancy() int

	// SetParty switches the identity (trust domain, fill owner) under
	// which subsequent Access calls run, for designs that distinguish
	// one: Newcache/RPcache domains, NoMo way reservations, the random
	// fill engine's owner tag. A no-op for identity-blind designs.
	SetParty(id int)
}

// design is the method set every concrete implementation already provides;
// the adapters add Access and SetParty on top of it.
type design interface {
	cache.Cache
	SetEvictionObserver(fn cache.EvictionObserver)
	Occupancy() int
}

// domainAware is implemented by designs with per-domain state (Newcache,
// RPcache).
type domainAware interface {
	SetActiveDomain(int)
}

// demand adapts a structural design (randomization or partitioning in the
// lookup/replacement path, conventional demand fetch) to SecureCache:
// Access is Lookup plus fill-on-miss under the current party's owner id.
type demand struct {
	design
	owner int
}

func (d *demand) Access(l mem.Line, write bool) bool {
	if d.design.Lookup(l, write) {
		return true
	}
	d.design.Fill(l, cache.FillOpts{Dirty: write, Owner: d.owner})
	return false
}

func (d *demand) SetParty(id int) {
	d.owner = id
	if dc, ok := d.design.(domainAware); ok {
		dc.SetActiveDomain(id)
	}
}

// randfill adapts the paper's architecture: a conventional set-associative
// cache whose fill policy is the random fill engine, so Access routes
// through core.Engine (no-fill on miss, random neighbor fills from the
// window).
type randfill struct {
	design
	eng *core.Engine
}

func (r *randfill) Access(l mem.Line, write bool) bool { return r.eng.Access(l, write) }

func (r *randfill) SetParty(id int) { r.eng.SetOwner(id) }

// FillStats exposes the random fill engine's counters, for tests.
func (r *randfill) FillStats() *core.Stats { return r.eng.Stats() }
