package securecache_test

import (
	"testing"

	"randfill/internal/cache"
	"randfill/internal/core"
	"randfill/internal/mem"
	"randfill/internal/mirage"
	"randfill/internal/newcache"
	"randfill/internal/rng"
	"randfill/internal/rpcache"
	"randfill/internal/scattercache"
	"randfill/internal/securecache"
)

func smallCfg() securecache.Config {
	return securecache.Config{Geom: cache.Geometry{SizeBytes: 4 * 1024, Ways: 4}}
}

func TestRegistry(t *testing.T) {
	want := []string{"randfill", "newcache", "plcache", "rpcache", "nomo", "scattercache", "mirage"}
	names := securecache.Names()
	if len(names) != len(want) {
		t.Fatalf("registry has %d designs, want %d", len(names), len(want))
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("design %d is %q, want %q (registry order is part of the matrix contract)", i, names[i], n)
		}
	}
	for _, d := range securecache.All() {
		if d.Description == "" || d.New == nil {
			t.Errorf("design %q missing description or factory", d.Name)
		}
		if _, ok := securecache.ByName(d.Name); !ok {
			t.Errorf("ByName(%q) did not find the design", d.Name)
		}
	}
	if _, err := securecache.New("nonesuch", securecache.Config{}, rng.New(1)); err == nil {
		t.Error("unknown design name accepted")
	}
	if c, err := securecache.New("mirage", smallCfg(), rng.New(1)); err != nil || c == nil {
		t.Errorf("New(mirage) = %v, %v", c, err)
	}
}

// TestDemandAdapterFillsOnMiss: the structural designs' Access is lookup
// plus demand fill — a missed line is resident afterwards.
func TestDemandAdapterFillsOnMiss(t *testing.T) {
	for _, name := range []string{"newcache", "plcache", "rpcache", "nomo", "scattercache", "mirage"} {
		c, err := securecache.New(name, smallCfg(), rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		if c.Access(7, false) {
			t.Errorf("%s: cold access hit", name)
		}
		if !c.Probe(7) {
			t.Errorf("%s: line not resident after demand miss", name)
		}
		if !c.Access(7, false) {
			t.Errorf("%s: re-access missed", name)
		}
		if occ := c.Occupancy(); occ < 1 {
			t.Errorf("%s: occupancy %d after a fill", name, occ)
		}
	}
}

// TestRandfillAdapterNoFill: the randfill design's Access routes through
// the engine — the missing line itself is NOT installed (no-fill), which is
// the property the whole paper rests on.
func TestRandfillAdapterNoFill(t *testing.T) {
	c, err := securecache.New("randfill", smallCfg(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(7, false) {
		t.Fatal("cold access hit")
	}
	if c.Probe(7) {
		t.Fatal("randfill installed the missing line itself")
	}
	if c.Occupancy() == 0 {
		t.Fatal("random fill installed nothing from the window")
	}
	fs, ok := c.(interface{ FillStats() *core.Stats })
	if !ok {
		t.Fatal("randfill design does not expose FillStats")
	}
	if fs.FillStats().NoFills != 1 {
		t.Fatalf("NoFills = %d, want 1", fs.FillStats().NoFills)
	}
}

// access replays the demand adapter's exact sequence against a hand-built
// cache: Lookup, then Fill on miss with owner 0.
func access(c cache.Cache, l mem.Line) bool {
	if c.Lookup(l, false) {
		return true
	}
	c.Fill(l, cache.FillOpts{Owner: 0})
	return false
}

// TestPortIdentity proves the port consumed no extra RNG draws: a design
// built through the registry behaves bit-identically to the same
// architecture built by hand with the historical split discipline
// (structure from Split(1), fill engine from Split(2)).
func TestPortIdentity(t *testing.T) {
	const seed = 11
	geom := smallCfg().Geom
	span := 4 * geom.SizeBytes / mem.LineSize

	replay := func(t *testing.T, ported securecache.SecureCache, direct func(mem.Line) bool, stats *cache.Stats) {
		t.Helper()
		src := rng.New(99)
		for i := 0; i < 4096; i++ {
			l := mem.Line(src.Intn(span))
			if got, want := ported.Access(l, false), direct(l); got != want {
				t.Fatalf("op %d (line %d): registry says hit=%v, direct construction says %v", i, l, got, want)
			}
		}
		if *ported.Stats() != *stats {
			t.Fatalf("stats diverged: registry %+v, direct %+v", *ported.Stats(), *stats)
		}
	}

	t.Run("randfill", func(t *testing.T) {
		ported, _ := securecache.New("randfill", smallCfg(), rng.New(seed))
		src := rng.New(seed)
		c := cache.NewSetAssoc(geom, cache.LRU{})
		eng := core.NewEngine(c, src.Split(2))
		eng.SetRR(16, 15)
		replay(t, ported, func(l mem.Line) bool { return eng.Access(l, false) }, c.Stats())
	})
	t.Run("newcache", func(t *testing.T) {
		ported, _ := securecache.New("newcache", smallCfg(), rng.New(seed))
		c := newcache.New(geom.SizeBytes, 4, rng.New(seed).Split(1))
		replay(t, ported, func(l mem.Line) bool { return access(c, l) }, c.Stats())
	})
	t.Run("rpcache", func(t *testing.T) {
		ported, _ := securecache.New("rpcache", smallCfg(), rng.New(seed))
		c := rpcache.New(geom, rng.New(seed).Split(1))
		replay(t, ported, func(l mem.Line) bool { return access(c, l) }, c.Stats())
	})
	t.Run("scattercache", func(t *testing.T) {
		ported, _ := securecache.New("scattercache", smallCfg(), rng.New(seed))
		c := scattercache.New(geom, rng.New(seed).Split(1))
		replay(t, ported, func(l mem.Line) bool { return access(c, l) }, c.Stats())
	})
	t.Run("mirage", func(t *testing.T) {
		ported, _ := securecache.New("mirage", smallCfg(), rng.New(seed))
		c := mirage.New(geom, rng.New(seed).Split(1))
		replay(t, ported, func(l mem.Line) bool { return access(c, l) }, c.Stats())
	})
}

// TestDefaultPolicyIdentity pins the registry's byte-identity guarantee for
// the Policy knob itself: naming a design's own default policy explicitly
// ("lru" on the LRU designs) replays bit-identically to the empty default.
// The RNG-default designs (newcache, scattercache, mirage) are deliberately
// absent — an explicit "random" draws from the dedicated policy stream
// (Split(3)) rather than the structural one, so only "" promises identity
// there; TestPortIdentity covers that case. A bad policy name must error on
// the New path, not panic in a factory.
func TestDefaultPolicyIdentity(t *testing.T) {
	for _, name := range []string{"randfill", "plcache", "rpcache", "nomo"} {
		t.Run(name, func(t *testing.T) {
			def, err := securecache.New(name, smallCfg(), rng.New(17))
			if err != nil {
				t.Fatal(err)
			}
			cfg := smallCfg()
			cfg.Policy = "lru"
			exp, err := securecache.New(name, cfg, rng.New(17))
			if err != nil {
				t.Fatal(err)
			}
			src := rng.New(88)
			for i := 0; i < 4096; i++ {
				l := mem.Line(src.Intn(256))
				if got, want := exp.Access(l, false), def.Access(l, false); got != want {
					t.Fatalf("op %d (line %d): explicit lru hit=%v, default hit=%v", i, l, got, want)
				}
			}
			if *exp.Stats() != *def.Stats() {
				t.Fatalf("stats diverged: explicit %+v, default %+v", *exp.Stats(), *def.Stats())
			}
		})
	}

	bad := smallCfg()
	bad.Policy = "clock"
	if _, err := securecache.New("randfill", bad, rng.New(1)); err == nil {
		t.Fatal("unknown policy name accepted by securecache.New")
	}
}

// TestSetPartyForwarding: the adapter forwards the party id both as the
// fill owner and — for domain-aware designs — as the active trust domain.
func TestSetPartyForwarding(t *testing.T) {
	ported, _ := securecache.New("rpcache", smallCfg(), rng.New(5))
	direct := rpcache.New(smallCfg().Geom, rng.New(5).Split(1))
	src := rng.New(77)
	for i := 0; i < 2048; i++ {
		p := src.Intn(2)
		ported.SetParty(p)
		direct.SetActiveDomain(p)
		l := mem.Line(src.Intn(256))
		if got, want := ported.Access(l, false), access(direct, l); got != want {
			t.Fatalf("op %d: domain forwarding diverged (hit=%v vs %v)", i, got, want)
		}
	}
	if *ported.Stats() != *direct.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", *ported.Stats(), *direct.Stats())
	}
}
