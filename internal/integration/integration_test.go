// Package integration holds cross-module end-to-end tests: every victim
// program (AES, Blowfish, modular exponentiation) against every relevant
// defense, plus serialization/replay equivalence between the trace tooling
// and the simulator.
package integration

import (
	"bytes"
	"math/big"
	"testing"

	"randfill/internal/aes"
	"randfill/internal/attacks"
	"randfill/internal/blowfish"
	"randfill/internal/cache"
	"randfill/internal/mem"
	"randfill/internal/modexp"
	"randfill/internal/newcache"
	"randfill/internal/rng"
	"randfill/internal/rpcache"
	"randfill/internal/sim"
	"randfill/internal/traceio"
)

func sa32k(src *rng.Source) cache.Cache {
	return cache.NewSetAssoc(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}, cache.LRU{})
}

// TestFlushReloadMatrixAcrossVictims runs the reuse based storage-channel
// attack against the security-critical region of each victim program, on
// demand fetch (broken) and with a covering random fill window (defended).
func TestFlushReloadMatrixAcrossVictims(t *testing.T) {
	victims := []struct {
		name   string
		region mem.Region
	}{
		{"aes-T4", aes.DefaultLayout().TableRegion(aes.TableTe4)},
		{"blowfish-S0", blowfish.DefaultLayout().SBoxRegion(0)},
		{"modexp-table", modexp.DefaultLayout().TableRegion(16)},
	}
	for _, v := range victims {
		m := v.region.NumLines()
		broken := attacks.FlushReload(attacks.FlushReloadConfig{
			NewCache: sa32k,
			Window:   rng.Window{},
			Region:   v.region,
			Trials:   1500,
			Seed:     1,
		})
		if broken.Accuracy != 1 {
			t.Errorf("%s: demand fetch accuracy %v, want 1", v.name, broken.Accuracy)
		}
		defended := attacks.FlushReload(attacks.FlushReloadConfig{
			NewCache: sa32k,
			Window:   rng.Symmetric(2 * m),
			Region:   v.region,
			Trials:   4000,
			Seed:     2,
		})
		if defended.Accuracy > 2.5/float64(2*m) {
			t.Errorf("%s: defended accuracy %v, want ≈ 1/%d", v.name, defended.Accuracy, 2*m)
		}
		if defended.MutualInfo > broken.MutualInfo/4 {
			t.Errorf("%s: MI only fell from %v to %v bits", v.name,
				broken.MutualInfo, defended.MutualInfo)
		}
	}
}

// TestTraceSerializeReplayEquivalence checks that a serialized+replayed
// trace produces bit-identical simulator results.
func TestTraceSerializeReplayEquivalence(t *testing.T) {
	src := rng.New(5)
	var key, iv [16]byte
	src.Bytes(key[:])
	src.Bytes(iv[:])
	pt := make([]byte, 2048)
	src.Bytes(pt)
	c, err := aes.New(key[:])
	if err != nil {
		t.Fatal(err)
	}
	tracer := &aes.Tracer{Cipher: c, Layout: aes.DefaultLayout()}
	_, trace, err := tracer.EncryptCBC(pt, iv[:])
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := traceio.Write(&buf, trace); err != nil {
		t.Fatal(err)
	}
	replayed, err := traceio.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	run := func(tr mem.Trace) sim.Result {
		cfg := sim.DefaultConfig()
		cfg.Seed = 9
		return sim.New(cfg).RunTrace(sim.ThreadConfig{
			Mode: sim.ModeRandomFill, Window: rng.Window{A: 16, B: 15},
		}, tr)
	}
	a, b := run(trace), run(replayed)
	if a != b {
		t.Errorf("replayed trace diverged:\n%+v\n%+v", a, b)
	}
}

// TestDefenseCompositionEndToEnd verifies the paper's final claim on a
// single shared configuration: random fill over Newcache (with per-domain
// remapping) resists both the reuse channel and the contention channel at
// once, for the AES table region.
func TestDefenseCompositionEndToEnd(t *testing.T) {
	region := aes.DefaultLayout().TableRegion(aes.TableTe4)
	mkNC := func(src *rng.Source) cache.Cache { return newcache.New(32*1024, 4, src) }
	mkRP := func(src *rng.Source) cache.Cache {
		return rpcache.New(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}, src)
	}
	for _, tc := range []struct {
		name string
		mk   func(src *rng.Source) cache.Cache
	}{
		{"rf+newcache", mkNC},
		{"rf+rpcache", mkRP},
	} {
		name, mk := tc.name, tc.mk
		fr := attacks.FlushReload(attacks.FlushReloadConfig{
			NewCache: mk,
			Window:   rng.Symmetric(32),
			Region:   region,
			Trials:   4000,
			Seed:     3,
		})
		if fr.Accuracy > 0.1 {
			t.Errorf("%s: reuse channel open (accuracy %v)", name, fr.Accuracy)
		}
		pp := attacks.PrimeProbe(attacks.PrimeProbeConfig{
			NewCache:     mk,
			Sets:         128,
			Ways:         4,
			Window:       rng.Symmetric(32),
			VictimRegion: region,
			AttackerBase: 0x100000,
			Trials:       300,
			Seed:         4,
		})
		if pp.ExactAccuracy > 0.2 {
			t.Errorf("%s: contention channel open (accuracy %v)", name, pp.ExactAccuracy)
		}
	}
}

// TestModexpSpyAcrossCaches runs the Percival attack against each cache
// architecture under demand fetch: the reuse channel is architecture-
// independent, exactly the paper's point about prior secure caches.
func TestModexpSpyAcrossCaches(t *testing.T) {
	mod, _ := new(big.Int).SetString("340282366920938463463374607431768211507", 10)
	e, err := modexp.New(big.NewInt(7), mod, 4)
	if err != nil {
		t.Fatal(err)
	}
	secret, _ := new(big.Int).SetString("0123456789ABCDEF0123456789ABCDEF", 16)
	caches := []struct {
		name string
		mk   func(src *rng.Source) cache.Cache
	}{
		{"sa", sa32k},
		{"newcache", func(src *rng.Source) cache.Cache { return newcache.New(32*1024, 4, src) }},
		{"rpcache", func(src *rng.Source) cache.Cache {
			return rpcache.New(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}, src)
		}},
	}
	for _, tc := range caches {
		name, mk := tc.name, tc.mk
		res := modexp.Spy(e, secret, modexp.DefaultLayout(), mk, rng.Window{}, 1)
		if res.Recovered.Cmp(secret) != 0 {
			t.Errorf("%s: reuse attack failed to recover the exponent (%d/%d windows) — demand fetch should leak on every architecture",
				name, res.CorrectWindows, res.Windows)
		}
	}
}

// TestSystemCallMidRunReconfiguration models the paper's usage pattern: the
// window is enabled before the cryptographic routine and disabled after,
// via set_RR, on a live thread.
func TestSystemCallMidRunReconfiguration(t *testing.T) {
	m := sim.New(sim.Config{Seed: 1})
	th := m.NewThread(sim.ThreadConfig{})

	// Phase 1: ordinary demand-fetch execution.
	th.Step(mem.Access{Addr: 0x5000})
	th.Drain()
	if !m.L1().Probe(mem.LineOf(0x5000)) {
		t.Fatal("demand phase did not fill")
	}

	// set_RR(16, 15): enter the cryptographic routine.
	th.Engine().SetRR(16, 15)
	th.Step(mem.Access{Addr: 0x90000, Secret: true})
	th.Drain()
	if m.L1().Probe(mem.LineOf(0x90000)) {
		// Possible only by the 1/32 self-fill draw; retry with
		// different lines to confirm the policy switched.
		misses := 0
		for i := 1; i <= 8; i++ {
			a := mem.Addr(0x90000 + i*0x1000)
			th.Step(mem.Access{Addr: a, Secret: true})
			th.Drain()
			if !m.L1().Probe(mem.LineOf(a)) {
				misses++
			}
		}
		if misses < 6 {
			t.Fatal("window did not take effect mid-run")
		}
	}

	// set_RR(0, 0): leave the routine; demand fetch resumes.
	th.Engine().SetRR(0, 0)
	th.Step(mem.Access{Addr: 0xA0000})
	th.Drain()
	if !m.L1().Probe(mem.LineOf(0xA0000)) {
		t.Fatal("demand fetch did not resume after set_RR(0,0)")
	}
}
