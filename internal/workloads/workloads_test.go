package workloads

import (
	"sort"
	"testing"

	"randfill/internal/cache"
	"randfill/internal/mem"
)

func TestAllGeneratorsProduceRequestedLength(t *testing.T) {
	for _, g := range All() {
		tr := g.Gen(5000, 1)
		if len(tr) != 5000 {
			t.Errorf("%s: len = %d", g.Name, len(tr))
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, g := range All() {
		a := g.Gen(2000, 42)
		b := g.Gen(2000, 42)
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: trace differs at %d with same seed", g.Name, i)
				break
			}
		}
	}
}

func TestGeneratorsSeedSensitive(t *testing.T) {
	for _, g := range All() {
		if g.Name == "milc" || g.Name == "h264ref" {
			continue // purely structural generators ignore the seed
		}
		a := g.Gen(2000, 1)
		b := g.Gen(2000, 2)
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: identical traces for different seeds", g.Name)
		}
	}
}

func TestFootprintsDisjoint(t *testing.T) {
	// Benchmarks must not share cache lines with each other (or they
	// would warm each other's data in SMT runs).
	owner := make(map[mem.Line]string)
	for _, g := range All() {
		tr := g.Gen(20000, 3)
		var lines []mem.Line
		for l := range tr.Lines() {
			lines = append(lines, l)
		}
		sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
		for _, l := range lines {
			if prev, ok := owner[l]; ok && prev != g.Name {
				t.Fatalf("line %d shared by %s and %s", l, prev, g.Name)
			}
			owner[l] = g.Name
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("lbm"); !ok {
		t.Error("lbm not found")
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("unknown benchmark found")
	}
	if len(Names()) != 8 {
		t.Errorf("Names() = %v", Names())
	}
}

func TestStreamingClassification(t *testing.T) {
	if !Streaming("lbm") || !Streaming("libquantum") {
		t.Error("lbm/libquantum must be classified streaming")
	}
	if Streaming("astar") || Streaming("hmmer") {
		t.Error("astar/hmmer wrongly classified streaming")
	}
}

func geom32k() cache.Geometry { return cache.Geometry{SizeBytes: 32 * 1024, Ways: 4} }

func TestSpatialProfileBounds(t *testing.T) {
	g, _ := ByName("lbm")
	p := SpatialProfile(g.Gen(40000, 1), geom32k(), 16, 1)
	for _, d := range p.Offsets() {
		f := p.Fetched[d]
		if d < -16 || d > 16 {
			t.Errorf("offset %d outside ±16", d)
		}
		if p.Referenced[d] > f {
			t.Errorf("offset %d: referenced %d > fetched %d", d, p.Referenced[d], f)
		}
		if e := p.Eff(d); e < 0 || e > 1 {
			t.Errorf("Eff(%d) = %v", d, e)
		}
	}
	if len(p.Offsets()) == 0 {
		t.Fatal("no offsets sampled")
	}
}

func TestSpatialLocalityClasses(t *testing.T) {
	// The Figure 9 property the whole Section VII story rests on: the
	// streaming workloads (lbm, libquantum) have useful locality many
	// lines ahead; pointer-chasing / hashing workloads (astar, sjeng) do
	// not. (hmmer's tiny hot working set makes every nearby fill useful
	// despite almost never missing, and bzip2/h264ref/milc are mixed, so
	// those carry no strict assertion.)
	wide := map[string]bool{"lbm": true, "libquantum": true}
	narrow := map[string]bool{"astar": true, "sjeng": true}
	for _, g := range All() {
		p := SpatialProfile(g.Gen(60000, 1), geom32k(), 16, 1)
		switch {
		case wide[g.Name]:
			if !p.WideForward(0.5) {
				t.Errorf("%s: expected wide forward locality; Eff(2..8) = %v",
					g.Name, sampleEff(p))
			}
		case narrow[g.Name]:
			if p.WideForward(0.4) {
				t.Errorf("%s: unexpectedly wide forward locality; Eff(2..8) = %v",
					g.Name, sampleEff(p))
			}
		}
	}
}

func sampleEff(p Profile) []float64 {
	out := make([]float64, 0, 7)
	for d := 2; d <= 8; d++ {
		out = append(out, p.Eff(d))
	}
	return out
}

func TestHmmerMostlyHits(t *testing.T) {
	// hmmer's working set fits the cache: after warm-up the miss rate
	// must be tiny under demand fetch.
	g, _ := ByName("hmmer")
	tr := g.Gen(50000, 1)
	c := cache.NewSetAssoc(cache.Geometry{SizeBytes: 128 * 1024, Ways: 4}, cache.LRU{})
	misses := 0
	for _, a := range tr {
		if !c.Lookup(a.Line(), false) {
			misses++
			c.Fill(a.Line(), cache.FillOpts{})
		}
	}
	if rate := float64(misses) / float64(len(tr)); rate > 0.05 {
		t.Errorf("hmmer miss rate %v, want < 0.05", rate)
	}
}

func TestEffZeroWhenUnsampled(t *testing.T) {
	p := Profile{Referenced: map[int]uint64{}, Fetched: map[int]uint64{}}
	if p.Eff(3) != 0 {
		t.Error("Eff of unsampled offset must be 0")
	}
}

func TestBaselineMissRatesLocked(t *testing.T) {
	// Lock each generator's demand-fetch L1 miss-rate band on the
	// default geometry: the Figure 8-10 reproductions depend on these
	// staying in their locality class.
	bands := map[string][2]float64{
		"sjeng":      {0.2, 0.6},   // skewed random probes
		"lbm":        {0.25, 0.45}, // one miss per 3-access line group
		"libquantum": {0.35, 0.65}, // one miss per 2-access line
		"h264ref":    {0.5, 0.8},   // one miss per cluster line
		"astar":      {0.15, 0.5},  // skewed pointer chasing
		"milc":       {0.9, 1.0},   // every site line is cold at L1
		"bzip2":      {0.2, 0.45},  // mixed scan + work buffer
		"hmmer":      {0.0, 0.05},  // L1-resident tables
	}
	for _, g := range All() {
		tr := g.Gen(60000, 1)
		c := cache.NewSetAssoc(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}, cache.LRU{})
		misses := 0
		// Second pass measured (steady state).
		for pass := 0; pass < 2; pass++ {
			misses = 0
			for _, a := range tr {
				if !c.Lookup(a.Line(), false) {
					misses++
					c.Fill(a.Line(), cache.FillOpts{})
				}
			}
		}
		rate := float64(misses) / float64(len(tr))
		band := bands[g.Name]
		if rate < band[0] || rate > band[1] {
			t.Errorf("%s: steady miss rate %.3f outside locked band [%.2f, %.2f]",
				g.Name, rate, band[0], band[1])
		}
	}
}
