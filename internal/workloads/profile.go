package workloads

import (
	"sort"

	"randfill/internal/cache"
	"randfill/internal/core"
	"randfill/internal/mem"
	"randfill/internal/rng"
)

// Profile holds the spatial-locality sampling of Figure 9: for each fill
// offset d (distance in lines between a randomly filled line and the demand
// miss that triggered it), how many lines were fetched and how many of
// those were referenced before being evicted.
type Profile struct {
	Referenced map[int]uint64
	Fetched    map[int]uint64
}

// Eff returns the reference ratio Eff(d) = N_referenced(d) / N_fetched(d)
// (Equation 9), or 0 if no fills with offset d were observed.
func (p Profile) Eff(d int) float64 {
	f := p.Fetched[d]
	if f == 0 {
		return 0
	}
	return float64(p.Referenced[d]) / float64(f)
}

// Offsets returns the sampled offsets that have data, in ascending order
// so that iteration over a profile is deterministic.
func (p Profile) Offsets() []int {
	var out []int
	for d := range p.Fetched {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// WideForward reports whether the profile shows useful spatial locality
// well beyond the next line in the forward direction: the mean Eff over
// d in [2, 8] compared against a threshold.
func (p Profile) WideForward(threshold float64) bool {
	var sum float64
	n := 0
	for d := 2; d <= 8; d++ {
		if p.Fetched[d] > 0 {
			sum += p.Eff(d)
			n++
		}
	}
	return n > 0 && sum/float64(n) >= threshold
}

// SpatialProfile runs the trace through a random-fill cache of the given
// geometry with a symmetric window of ±maxD lines, tagging every fill with
// its offset and accounting referenced-before-evicted ratios per offset —
// the profiling methodology of Section VII / Figure 9. Lines still resident
// at the end of the run are drained into the counts.
func SpatialProfile(trace mem.Trace, geom cache.Geometry, maxD int, seed uint64) Profile {
	p := Profile{
		Referenced: make(map[int]uint64),
		Fetched:    make(map[int]uint64),
	}
	c := cache.NewSetAssoc(geom, cache.LRU{})
	c.SetEvictionObserver(func(v cache.Victim) {
		d := int(v.Offset)
		p.Fetched[d]++
		if v.Referenced {
			p.Referenced[d]++
		}
	})
	eng := core.NewEngine(c, rng.New(seed))
	eng.SetRR(maxD, maxD)
	for _, a := range trace {
		eng.Access(a.Line(), a.Kind == mem.Write)
	}
	c.DrainValid()
	return p
}
