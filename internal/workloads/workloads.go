// Package workloads provides the synthetic stand-ins for the eight SPEC
// CPU2006 benchmarks the paper evaluates (astar, bzip2, h264ref, sjeng,
// milc, hmmer, lbm, libquantum), plus the spatial-locality profiler of
// Figure 9.
//
// SPEC binaries and reference inputs cannot be run here, so each generator
// synthesizes a memory access trace whose *qualitative spatial-locality
// profile* matches the class the paper reports for that benchmark in
// Figure 9: most workloads have locality confined to a few neighboring
// lines; lbm and libquantum have irregular streaming patterns with wide
// forward spatial locality — the workloads random fill helps. Absolute
// MPKI/IPC values are not comparable to SPEC; the per-benchmark trends
// across fill windows are what the Figure 8-10 reproductions rely on.
package workloads

import (
	"fmt"
	"sort"

	"randfill/internal/mem"
	"randfill/internal/rng"
)

// Generator produces a deterministic synthetic trace for one benchmark.
type Generator struct {
	// Name is the SPEC benchmark name this generator stands in for.
	Name string
	// Class is a one-line description of the locality class synthesized.
	Class string
	// Gen produces n memory accesses from the given seed.
	Gen func(n int, seed uint64) mem.Trace
}

// base addresses keep benchmark footprints disjoint from the AES layout
// and from each other.
const (
	baseSjeng      mem.Addr = 0x0100_0000
	baseLbm        mem.Addr = 0x0200_0000
	baseLibquantum mem.Addr = 0x0400_0000
	baseH264       mem.Addr = 0x0600_0000
	baseAstar      mem.Addr = 0x0700_0000
	baseMilc       mem.Addr = 0x0900_0000
	baseBzip2      mem.Addr = 0x0B00_0000
	baseHmmer      mem.Addr = 0x0C00_0000
)

// All returns the eight benchmark generators in the paper's Figure 8 order.
func All() []Generator {
	return []Generator{
		{"sjeng", "random hash-table probes, narrow locality", genSjeng},
		{"lbm", "regular grid streaming with neighbor access, wide forward locality", genLbm},
		{"libquantum", "irregular streaming over a large array, wide forward locality", genLibquantum},
		{"h264ref", "2D macroblock sweeps with neighborhood reuse", genH264},
		{"astar", "dependent pointer chasing over a graph", genAstar},
		{"milc", "strided numerical sweeps over a lattice", genMilc},
		{"bzip2", "sequential scan mixed with random work-buffer accesses", genBzip2},
		{"hmmer", "hot loops over small score tables, high reuse", genHmmer},
	}
}

// Names returns the benchmark names in order.
func Names() []string {
	gs := All()
	out := make([]string, len(gs))
	for i, g := range gs {
		out[i] = g.Name
	}
	return out
}

// ByName returns the generator for a benchmark name.
func ByName(name string) (Generator, bool) {
	for _, g := range All() {
		if g.Name == name {
			return g, true
		}
	}
	return Generator{}, false
}

// Streaming reports whether the benchmark is one of the two irregular
// streaming workloads random fill helps (Section VII).
func Streaming(name string) bool { return name == "lbm" || name == "libquantum" }

// genSjeng: chess tree search — dependent probes into a transposition
// table with a skewed distribution: most probes hit a hot head region that
// the L1 retains, the rest scatter over a cold tail. Random fills displace
// hot entries with cold neighbors, so the miss rate rises with the window.
func genSjeng(n int, seed uint64) mem.Trace {
	src := rng.New(seed ^ 0x516a)
	const hotLines = 1 << 8   // 16 KB hot head
	const coldLines = 1 << 13 // 512 KB tail
	tr := make(mem.Trace, 0, n)
	for len(tr) < n {
		var line mem.Line
		if src.Bool(0.8) {
			line = mem.LineOf(baseSjeng) + mem.Line(src.Intn(hotLines))
		} else {
			line = mem.LineOf(baseSjeng) + mem.Line(hotLines+src.Intn(coldLines))
		}
		tr = append(tr, mem.Access{
			Addr:      mem.AddrOf(line) + mem.Addr(src.Intn(8)*8),
			NonMem:    14,
			Dependent: true,
		})
		if len(tr) < n && src.Bool(0.5) {
			// Hash entries span two lines: the second half is read in
			// the same probe, so the immediate neighbor has utility.
			tr = append(tr, mem.Access{Addr: mem.AddrOf(line + 1), NonMem: 2})
		}
	}
	return tr[:n]
}

// genLbm: lattice-Boltzmann — streaming sweeps over an 8 MB grid, reading
// the current cell and its ±1-row neighborhood and writing the cell back.
// Advances nearly sequentially with occasional small jumps at row ends, so
// the forward spatial locality extends well beyond one line.
func genLbm(n int, seed uint64) mem.Trace {
	src := rng.New(seed ^ 0x1b3)
	const gridLines = 1 << 17 // 8 MB
	tr := make(mem.Trace, 0, n)
	line := 0
	group := 0
	for len(tr) < n {
		l := mem.LineOf(baseLbm) + mem.Line(line)
		// Cell read, neighbor read, cell write: three accesses per
		// line position, spread within the line. Every second cell's
		// leading read feeds the collision computation directly, so it
		// is marked dependent — the stream is partially latency-bound,
		// which is what a prefetching fill policy can recover.
		tr = append(tr,
			mem.Access{Addr: mem.AddrOf(l), NonMem: 3, Dependent: group%2 == 0},
			mem.Access{Addr: mem.AddrOf(l) + 24, NonMem: 2},
			mem.Access{Addr: mem.AddrOf(l) + 48, Kind: mem.Write, NonMem: 2},
		)
		group++
		// Irregular advance: usually the next line, sometimes a short
		// forward skip (collision-propagation reordering).
		if src.Bool(0.2) {
			line += 1 + src.Intn(4)
		} else {
			line++
		}
		if line >= gridLines {
			line = 0
		}
	}
	return tr[:n]
}

// genLibquantum: quantum register simulation — a latency-bound irregular
// stream: gate application walks the amplitude array two lines at a time,
// each step gated on the previous amplitude read (the dependence chain
// leaves memory-level parallelism on the table, which a prefetching fill
// policy recovers). Short skips and pair reorderings break strict
// sequentiality, hurting a next-line prefetcher, while lines within a
// ~16-line forward window remain useful.
func genLibquantum(n int, seed uint64) mem.Trace {
	src := rng.New(seed ^ 0x11b9)
	const regLines = 1 << 16 // 4 MB
	tr := make(mem.Trace, 0, n)
	line := 0
	for len(tr) < n {
		a, b := 0, 1
		if src.Bool(0.3) {
			a, b = 1, 0 // process the pair out of order
		}
		for _, o := range [2]int{a, b} {
			if len(tr) >= n {
				break
			}
			l := mem.LineOf(baseLibquantum) + mem.Line((line+o)%regLines)
			tr = append(tr,
				mem.Access{Addr: mem.AddrOf(l), NonMem: 3, Dependent: o == a},
				mem.Access{Addr: mem.AddrOf(l) + 16, Kind: mem.Write, NonMem: 2},
			)
		}
		line += 2
		if src.Bool(0.1) {
			line += src.Intn(3) // irregular skip
		}
		if line >= regLines {
			line = 0
		}
	}
	return tr[:n]
}

// genH264: video encoding — macroblock processing: each macroblock touches
// a short cluster of 3 consecutive lines several times (current block +
// reference block), then jumps a full frame-row stride away. Locality spans
// roughly ±3 lines; the jump target is far outside any fill window.
func genH264(n int, seed uint64) mem.Trace {
	src := rng.New(seed ^ 0x264)
	const rowStride = 128      // lines between vertically adjacent blocks
	const frameLines = 1 << 14 // 1 MB frame (fits the L2)
	tr := make(mem.Trace, 0, n)
	pos := 0
	for len(tr) < n {
		for i := 0; i < 3 && len(tr) < n; i++ {
			l := mem.LineOf(baseH264) + mem.Line((pos+i)%frameLines)
			// The encoder is compute-heavy: SAD/transform work
			// between pixel accesses dilutes memory time.
			tr = append(tr, mem.Access{Addr: mem.AddrOf(l), NonMem: 20})
			if src.Bool(0.5) {
				tr = append(tr, mem.Access{Addr: mem.AddrOf(l) + 32, Kind: mem.Write, NonMem: 12})
			}
		}
		// Next block: vertical neighbor a frame row away.
		pos += rowStride
		if src.Bool(0.05) {
			pos += 3 // move to the next block column
		}
	}
	return tr[:n]
}

// genAstar: path-finding — dependent pointer chasing with a skewed node
// distribution (the search frontier re-expands nearby nodes) plus a hot
// open-list region. Random fills trade hot frontier lines for arbitrary
// pool neighbors.
func genAstar(n int, seed uint64) mem.Trace {
	src := rng.New(seed ^ 0xa57a)
	const hotLines = 1 << 8   // 16 KB frontier
	const poolLines = 1 << 14 // 1 MB node pool
	tr := make(mem.Trace, 0, n)
	for len(tr) < n {
		var node mem.Line
		if src.Bool(0.7) {
			node = mem.LineOf(baseAstar) + mem.Line(src.Intn(hotLines))
		} else {
			node = mem.LineOf(baseAstar) + mem.Line(hotLines+src.Intn(poolLines))
		}
		tr = append(tr, mem.Access{Addr: mem.AddrOf(node), NonMem: 12, Dependent: true})
		if len(tr) < n && src.Bool(0.5) {
			// Node records span two lines.
			tr = append(tr, mem.Access{Addr: mem.AddrOf(node + 1), NonMem: 2})
		}
		// Hot open-list access (always cached).
		if len(tr) < n {
			hot := mem.LineOf(baseAstar+0x400000) + mem.Line(src.Intn(8))
			tr = append(tr, mem.Access{Addr: mem.AddrOf(hot), NonMem: 3})
		}
	}
	return tr[:n]
}

// genMilc: lattice QCD — strided sweeps over a lattice whose sites span a
// pair of adjacent lines, with a two-line gap between sites (interleaved
// field storage). The immediate neighbor of a miss is useful; farther fill
// targets mostly land in the gaps.
func genMilc(n int, seed uint64) mem.Trace {
	const latticeLines = 1 << 14 // 1 MB working slice (fits the L2)
	tr := make(mem.Trace, 0, n)
	line := 0
	for len(tr) < n {
		l := mem.LineOf(baseMilc) + mem.Line(line)
		tr = append(tr,
			mem.Access{Addr: mem.AddrOf(l), NonMem: 12},
			mem.Access{Addr: mem.AddrOf(l + 1), NonMem: 12},
		)
		line += 4
		if line >= latticeLines {
			line = (line + 1) % 4 // rotate parity each sweep
		}
	}
	return tr[:n]
}

// genBzip2: compression — a sequential input scan interleaved with sparser
// random accesses into 512 KB sorting work buffers (reads with occasional
// pointer-update writes).
func genBzip2(n int, seed uint64) mem.Trace {
	src := rng.New(seed ^ 0xb21b)
	const workLines = 1 << 13  // 512 KB
	const inputLines = 1 << 16 // streamed input
	tr := make(mem.Trace, 0, n)
	in := 0
	for len(tr) < n {
		// Input bytes: several accesses per line before advancing.
		l := mem.LineOf(baseBzip2) + mem.Line(in%inputLines)
		tr = append(tr, mem.Access{Addr: mem.AddrOf(l) + mem.Addr(src.Intn(8)*8), NonMem: 3})
		if src.Bool(0.25) {
			in++
		}
		// Work-buffer access on every third input access.
		if len(tr) < n && src.Bool(0.33) {
			w := mem.LineOf(baseBzip2+0x800000) + mem.Line(src.Intn(workLines))
			kind := mem.Write
			if src.Bool(0.3) {
				kind = mem.Read
			}
			tr = append(tr, mem.Access{Addr: mem.AddrOf(w), Kind: kind, NonMem: 4})
		}
	}
	return tr[:n]
}

// genHmmer: profile HMM scoring — tight loops over score tables that fit
// the L1, interleaved with reads of the (cold, streamed) sequence database.
// The sequence misses trigger random fills whose victims are hot table
// lines, so pollution grows with the window.
func genHmmer(n int, seed uint64) mem.Trace {
	src := rng.New(seed ^ 0x4a3e)
	const tableLines = 320   // 20 KB hot score tables
	const seqLines = 1 << 14 // streamed sequence data
	tr := make(mem.Trace, 0, n)
	pos, seq := 0, 0
	for len(tr) < n {
		l := mem.LineOf(baseHmmer) + mem.Line(pos%tableLines)
		tr = append(tr,
			mem.Access{Addr: mem.AddrOf(l), NonMem: 3},
			mem.Access{Addr: mem.AddrOf(l) + 16, NonMem: 2},
			mem.Access{Addr: mem.AddrOf(l) + 32, Kind: mem.Write, NonMem: 3},
		)
		pos++
		// Every few table iterations, the next sequence residue is
		// read from the cold stream.
		if len(tr) < n && pos%4 == 0 {
			sl := mem.LineOf(baseHmmer+0x800000) + mem.Line(seq%seqLines)
			tr = append(tr, mem.Access{Addr: mem.AddrOf(sl), NonMem: 2})
			if src.Bool(0.25) {
				seq++
			}
		}
		if src.Bool(0.01) {
			pos = src.Intn(tableLines)
		}
	}
	return tr[:n]
}

// String lists the benchmark names, for diagnostics.
func String() string {
	names := Names()
	sort.Strings(names)
	return fmt.Sprint(names)
}
