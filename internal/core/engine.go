// Package core implements the paper's primary contribution: the random fill
// cache architecture (Section IV). It layers a random fill engine over any
// cache.Cache (conventional set-associative, Newcache, PLcache), replacing
// the demand fetch policy with a security-aware fill strategy:
//
//   - On a cache miss, the demand-requested line is forwarded to the
//     processor WITHOUT filling the cache (a "nofill" request, using the
//     critical-word-first path).
//   - Instead, the random fill engine generates a "random fill" request for
//     a uniformly random line within the neighborhood window [i-a, i+b] of
//     the missing line i. The request enters a FIFO random fill queue, is
//     dropped if it already hits in the tag array, and otherwise fills the
//     cache (without sending data to the processor).
//   - With the window at [0,0] the engine is disabled and the cache behaves
//     exactly like a conventional demand-fetch cache.
//
// The window is programmed through the set_RR / set_window system interface
// (Table II), modelled here by SetRR and SetWindow; the range registers are
// per-process context, so an SMT simulation instantiates one Engine per
// hardware thread over a shared cache.
package core

import (
	"fmt"

	"randfill/internal/cache"
	"randfill/internal/mem"
	"randfill/internal/rng"
)

// RequestType classifies miss-queue entries (Section IV.B.1).
type RequestType uint8

const (
	// Normal is a demand fetch that fills the cache and forwards data to
	// the processor (conventional demand fill).
	Normal RequestType = iota
	// NoFill is a demand fetch that forwards data to the processor
	// without filling the cache.
	NoFill
	// RandomFill fills the cache without sending data to the processor.
	RandomFill
)

func (t RequestType) String() string {
	switch t {
	case Normal:
		return "normal"
	case NoFill:
		return "nofill"
	case RandomFill:
		return "randomfill"
	default:
		return fmt.Sprintf("RequestType(%d)", uint8(t))
	}
}

// Request is one entry of the (modelled) miss queue / random fill queue.
type Request struct {
	Type RequestType
	Line mem.Line
	// Offset is the line distance from the triggering demand miss
	// (0 for Normal/NoFill); recorded into the filled line's metadata for
	// the spatial-locality profiler.
	Offset int8
}

// Requests is the fixed-capacity request list a demand miss produces: one
// demand entry (Normal or NoFill) plus at most one RandomFill. It is
// returned by value so the miss path performs no heap allocation — OnMiss
// runs millions of times per experiment cell.
type Requests struct {
	reqs [2]Request
	n    int
}

// Len returns the number of requests (1 or 2).
func (r Requests) Len() int { return r.n }

// At returns request i in miss-queue arrival order (the demand request
// first).
func (r Requests) At(i int) Request {
	if i >= r.n {
		panic("core: Requests index out of range")
	}
	return r.reqs[i]
}

func (r *Requests) push(q Request) {
	r.reqs[r.n] = q
	r.n++
}

// Stats counts the engine's externally visible decisions.
type Stats struct {
	NormalFills   uint64 // demand fills issued (window [0,0])
	NoFills       uint64 // demand misses forwarded without fill
	RandomIssued  uint64 // random fill requests that filled the cache
	RandomDropped uint64 // random fill requests dropped on a tag hit
	RandomClamped uint64 // random fill requests discarded for address underflow
}

// Engine is the random fill engine of Figure 3(b): range registers, a
// bounded random number generator, and a random fill queue, attached to one
// hardware thread's view of a cache.
type Engine struct {
	cache cache.Cache
	gen   *rng.WindowGenerator
	owner int
	stats Stats
	// noDrop disables the tag-array check that drops random fill
	// requests whose target is already cached (an ablation knob; the
	// hardware design always drops).
	noDrop bool
}

// NewEngine attaches a random fill engine to c, drawing randomness from src.
// The window starts at [0,0] (disabled), the architectural default.
func NewEngine(c cache.Cache, src *rng.Source) *Engine {
	return &Engine{
		cache: c,
		gen:   rng.NewWindowGenerator(src),
		owner: cache.NoOwner,
	}
}

// SetOwner sets the process id recorded on lines this engine fills.
func (e *Engine) SetOwner(owner int) { e.owner = owner }

// SetDropOnHit controls whether random fill requests that hit in the tag
// array are dropped (the default, per Section IV.B.2). Disabling it is an
// ablation: redundant fills are issued and refresh already-present lines.
func (e *Engine) SetDropOnHit(drop bool) { e.noDrop = !drop }

// Cache returns the underlying cache.
func (e *Engine) Cache() cache.Cache { return e.cache }

// Stats returns the engine's live decision counters.
func (e *Engine) Stats() *Stats { return &e.stats }

// SetRR models the set_RR(a, b) system call: program the range registers so
// the random fill window is [i-a, i+b]. SetRR(0, 0) disables random fill.
func (e *Engine) SetRR(a, b int) { e.gen.SetWindow(rng.Window{A: a, B: b}) }

// SetWindow models the set_window(lowerBound, n) system call: the window's
// lower bound is lowerBound (≤ 0, stored as -a) and its size is 2^n.
func (e *Engine) SetWindow(lowerBound, n int) {
	if lowerBound > 0 {
		panic("core: set_window lower bound must be <= 0")
	}
	size := 1 << n
	a := -lowerBound
	e.gen.SetWindow(rng.Window{A: a, B: size - 1 - a})
}

// Window returns the currently programmed window.
func (e *Engine) Window() rng.Window { return e.gen.Window() }

// Enabled reports whether random fill is active (window not [0,0]).
func (e *Engine) Enabled() bool { return !e.gen.Window().Zero() }

// OnMiss decides how to handle a demand miss to line i, returning the
// requests the miss queue would receive. With the window at [0,0] it
// returns a single Normal request. Otherwise it returns a NoFill request
// for i plus, if the randomly chosen neighbor misses the tag array and does
// not underflow the address space, a RandomFill request for the neighbor.
//
// OnMiss only decides; it does not touch the cache. Use Access for the
// combined functional behaviour.
func (e *Engine) OnMiss(i mem.Line) Requests {
	var reqs Requests
	if !e.Enabled() {
		e.stats.NormalFills++
		reqs.push(Request{Type: Normal, Line: i})
		return reqs
	}
	e.stats.NoFills++
	reqs.push(Request{Type: NoFill, Line: i})

	off := e.gen.Offset()
	if off < 0 && uint64(-off) > uint64(i) {
		// The window extends below address zero; the request is
		// discarded (there is no memory there to fetch).
		e.stats.RandomClamped++
		return reqs
	}
	j := mem.Line(int64(i) + int64(off))
	if !e.noDrop && e.cache.Probe(j) {
		// Random fill requests that hit in the tag array are dropped
		// (Section IV.B.2).
		e.stats.RandomDropped++
		return reqs
	}
	e.stats.RandomIssued++
	reqs.push(Request{Type: RandomFill, Line: j, Offset: clampOffset(off)})
	return reqs
}

func clampOffset(off int) int8 {
	if off > 127 {
		return 127
	}
	if off < -128 {
		return -128
	}
	return int8(off)
}

// Access performs one demand access functionally: lookup, and on a miss,
// apply the engine's fill policy to the cache immediately. It returns true
// on a cache hit. This is the path used by the security analyses and
// attacks, where only hit/miss behaviour matters; the timing simulator in
// internal/sim drives OnMiss itself so it can model miss-queue occupancy.
func (e *Engine) Access(line mem.Line, write bool) bool {
	if e.cache.Lookup(line, write) {
		return true
	}
	reqs := e.OnMiss(line)
	for k := 0; k < reqs.Len(); k++ {
		r := reqs.At(k)
		switch r.Type {
		case Normal:
			e.cache.Fill(r.Line, cache.FillOpts{Dirty: write, Owner: e.owner})
		case NoFill:
			// Data forwarded to the processor; no cache change.
			// A write miss under nofill writes through to memory.
		case RandomFill:
			e.cache.Fill(r.Line, cache.FillOpts{Owner: e.owner, Offset: r.Offset})
		}
	}
	return false
}

func (e *Engine) String() string {
	return fmt.Sprintf("RandomFill(window=%v over %v)", e.Window(), e.cache)
}
