package core

import (
	"testing"

	"randfill/internal/cache"
	"randfill/internal/mem"
	"randfill/internal/rng"
)

func newSA() *cache.SetAssoc {
	return cache.NewSetAssoc(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}, cache.LRU{})
}

func TestDisabledWindowIsDemandFetch(t *testing.T) {
	c := newSA()
	e := NewEngine(c, rng.New(1))
	if e.Enabled() {
		t.Fatal("engine enabled by default")
	}
	if e.Access(100, false) {
		t.Fatal("cold access hit")
	}
	if !c.Probe(100) {
		t.Fatal("demand miss did not fill the cache with window [0,0]")
	}
	if !e.Access(100, false) {
		t.Fatal("second access missed")
	}
	if e.Stats().NormalFills != 1 || e.Stats().NoFills != 0 {
		t.Errorf("stats %+v", *e.Stats())
	}
}

// TestNoDemandFill checks the core security property: with random fill
// enabled, a demand miss is de-correlated from the fill — the demanded line
// itself ends up cached only with probability 1/W (when the uniform draw
// happens to pick offset 0), not deterministically as under demand fetch.
func TestNoDemandFill(t *testing.T) {
	c := newSA()
	e := NewEngine(c, rng.New(2))
	e.SetRR(16, 15) // W = 32
	const trials = 4000
	selfFilled := 0
	for i := 0; i < trials; i++ {
		line := mem.Line(10000 + i*64) // far apart so windows never overlap
		if e.Access(line, false) {
			t.Fatal("cold access hit")
		}
		if c.Probe(line) {
			selfFilled++
		}
	}
	if e.Stats().NoFills != trials {
		t.Errorf("NoFills = %d", e.Stats().NoFills)
	}
	// Expected self-fill rate is 1/32 ≈ 3.1%; demand fetch would be 100%.
	frac := float64(selfFilled) / trials
	if frac > 0.06 {
		t.Errorf("demanded line cached %.1f%% of the time; fill not de-correlated", 100*frac)
	}
	if selfFilled == 0 {
		t.Error("offset 0 never drawn; window sampling looks broken")
	}
}

func TestRandomFillWithinWindow(t *testing.T) {
	c := newSA()
	e := NewEngine(c, rng.New(3))
	e.SetRR(4, 3)
	base := mem.Line(100000)
	seen := make(map[int]bool)
	for i := 0; i < 2000; i++ {
		c.Flush()
		e.Access(base, false)
		got := c.Contents()
		if len(got) > 1 {
			t.Fatalf("more than one line filled: %v", got)
		}
		for _, l := range got {
			d := int(int64(l) - int64(base))
			if d < -4 || d > 3 {
				t.Fatalf("filled line offset %d outside window [-4,+3]", d)
			}
			seen[d] = true
		}
	}
	if len(seen) != 8 {
		t.Errorf("only %d of 8 window offsets ever filled", len(seen))
	}
}

func TestRandomFillDropsOnTagHit(t *testing.T) {
	c := newSA()
	e := NewEngine(c, rng.New(4))
	e.SetRR(0, 0) // demand mode to seed
	// Pre-fill the entire window around base so every random fill hits.
	base := mem.Line(5000)
	for d := -2; d <= 1; d++ {
		c.Fill(base+mem.Line(d), cache.FillOpts{})
	}
	e.SetRR(2, 1)
	c.Invalidate(base) // make the demand line itself miss
	e.Access(base, false)
	if e.Stats().RandomDropped != 0 {
		// base is invalid so a draw of 0 would be issued; re-check both
		// counters are consistent instead of asserting an exact split.
	}
	total := e.Stats().RandomDropped + e.Stats().RandomIssued
	if total != 1 {
		t.Fatalf("one miss must produce exactly one random fill decision, got %d", total)
	}
}

func TestRandomFillAlwaysDroppedWhenWindowCached(t *testing.T) {
	c := newSA()
	e := NewEngine(c, rng.New(5))
	base := mem.Line(7000)
	for d := -2; d <= 1; d++ {
		if d != 0 {
			c.Fill(base+mem.Line(d), cache.FillOpts{})
		}
	}
	e.SetRR(2, 1)
	dropped := uint64(0)
	for i := 0; i < 100; i++ {
		e.Access(base, false)
		// base itself never gets cached (nofill), so only draws of 0
		// can be "issued"; all other draws must be dropped.
		if e.Stats().RandomIssued > 0 {
			if !c.Probe(base) {
				t.Fatal("issued fill did not land")
			}
			c.Invalidate(base)
			e.Stats().RandomIssued = 0
		}
		dropped = e.Stats().RandomDropped
	}
	if dropped == 0 {
		t.Error("no random fills were dropped despite a cached window")
	}
}

func TestUnderflowClamped(t *testing.T) {
	c := newSA()
	e := NewEngine(c, rng.New(6))
	e.SetRR(16, 15)
	for i := 0; i < 200; i++ {
		e.Access(0, false) // window extends below line 0
	}
	st := e.Stats()
	if st.RandomClamped == 0 {
		t.Error("no underflowing request was clamped")
	}
	if st.RandomClamped+st.RandomIssued+st.RandomDropped != st.NoFills {
		t.Errorf("decision counters inconsistent: %+v", *st)
	}
}

func TestSetWindowSyscallForms(t *testing.T) {
	e := NewEngine(newSA(), rng.New(7))
	e.SetWindow(-16, 5) // lower bound -16, size 32
	if w := e.Window(); w.A != 16 || w.B != 15 {
		t.Errorf("SetWindow(-16,5) → %v, want [-16,+15]", w)
	}
	e.SetWindow(0, 4) // forward window of 16
	if w := e.Window(); w.A != 0 || w.B != 15 {
		t.Errorf("SetWindow(0,4) → %v, want [0,+15]", w)
	}
	e.SetRR(0, 0)
	if e.Enabled() {
		t.Error("SetRR(0,0) must disable the engine")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("positive lower bound did not panic")
			}
		}()
		e.SetWindow(1, 3)
	}()
}

func TestOnMissRequestShapes(t *testing.T) {
	e := NewEngine(newSA(), rng.New(8))
	reqs := e.OnMiss(42)
	if reqs.Len() != 1 || reqs.At(0).Type != Normal || reqs.At(0).Line != 42 {
		t.Fatalf("demand mode OnMiss = %+v", reqs)
	}
	e.SetRR(8, 7)
	reqs = e.OnMiss(1000)
	if reqs.At(0).Type != NoFill || reqs.At(0).Line != 1000 {
		t.Fatalf("random mode first request = %+v", reqs.At(0))
	}
	if reqs.Len() == 2 {
		r := reqs.At(1)
		if r.Type != RandomFill {
			t.Fatalf("second request type %v", r.Type)
		}
		d := int(int64(r.Line) - 1000)
		if d < -8 || d > 7 || int(r.Offset) != d {
			t.Fatalf("random fill %+v offset mismatch d=%d", r, d)
		}
	}
}

func TestRequestsAtPanicsOutOfRange(t *testing.T) {
	e := NewEngine(newSA(), rng.New(8))
	reqs := e.OnMiss(42)
	defer func() {
		if recover() == nil {
			t.Error("At(Len()) did not panic")
		}
	}()
	reqs.At(reqs.Len())
}

// TestMissPathAllocFree pins the demand-miss kernel at zero heap
// allocations: OnMiss, the full Access miss path, and the Access hit path
// may not allocate, in any fill mode. These paths run millions of times per
// Table III cell; a single alloc/op here is a measurable regression (see
// DESIGN.md §7).
func TestMissPathAllocFree(t *testing.T) {
	c := newSA()
	e := NewEngine(c, rng.New(8))
	e.SetRR(8, 7)
	var line mem.Line
	if got := testing.AllocsPerRun(1000, func() {
		line += 97 // stride through sets so hits and misses both occur
		e.OnMiss(line)
	}); got != 0 {
		t.Errorf("OnMiss: %v allocs/op, want 0", got)
	}
	if got := testing.AllocsPerRun(1000, func() {
		line += 131
		e.Access(line, false)
	}); got != 0 {
		t.Errorf("Access (random fill, mixed hit/miss): %v allocs/op, want 0", got)
	}
	e.SetRR(0, 0)
	if got := testing.AllocsPerRun(1000, func() {
		line += 113
		e.Access(line, false)
	}); got != 0 {
		t.Errorf("Access (demand fetch, miss path): %v allocs/op, want 0", got)
	}
	e.Access(7, false)
	e.Access(7, false)
	if got := testing.AllocsPerRun(1000, func() {
		e.Access(7, false)
	}); got != 0 {
		t.Errorf("Access (hit path): %v allocs/op, want 0", got)
	}
}

func TestAccessWorksOnNewcacheStyleCache(t *testing.T) {
	// The engine must layer over any cache.Cache; use a random-policy SA
	// cache as the stand-in to catch interface misuse.
	c := cache.NewSetAssoc(cache.Geometry{SizeBytes: 1024, Ways: 4}, cache.Random{Src: rng.New(9)})
	e := NewEngine(c, rng.New(10))
	e.SetRR(2, 1)
	for i := 0; i < 500; i++ {
		e.Access(mem.Line(i%40), false)
	}
	if c.Stats().Accesses() != 500 {
		t.Errorf("accesses = %d", c.Stats().Accesses())
	}
}

func TestRequestTypeStrings(t *testing.T) {
	if Normal.String() != "normal" || NoFill.String() != "nofill" || RandomFill.String() != "randomfill" {
		t.Error("request type strings wrong")
	}
}
