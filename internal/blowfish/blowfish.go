// Package blowfish implements the Blowfish block cipher (Schneier, 1993),
// the second table-based cipher the paper names among the targets of cache
// side channel attacks ("the substitution box (S-box) in the block ciphers
// (e.g., DES, AES, Blowfish)"). Its four 1 KB S-boxes have exactly the
// shape of the AES T-tables, so the same collision and Flush-Reload
// channels exist — and the same random fill window closes them.
//
// The initial P-array and S-boxes are the hexadecimal digits of pi; rather
// than embedding ~4 KB of constants, they are computed at initialization
// from Machin's formula with big.Int arithmetic and validated against the
// published Blowfish test vectors by the test suite.
package blowfish

import (
	"encoding/binary"
	"fmt"
	"math/big"
)

// BlockSize is the Blowfish block size in bytes.
const BlockSize = 8

const rounds = 16

// piWords holds the first 18 + 4*256 32-bit words of the fractional part
// of pi, filled by init.
var piWords [18 + 4*256]uint32

func init() {
	computePiWords()
}

// computePiWords computes the binary expansion of pi's fractional part via
// Machin's formula, pi = 16*atan(1/5) - 4*atan(1/239), in fixed-point
// big.Int arithmetic with guard bits.
func computePiWords() {
	const bits = (18 + 4*256) * 32
	const guard = 64
	one := new(big.Int).Lsh(big.NewInt(1), bits+guard)

	pi := new(big.Int).Mul(atanInv(5, one), big.NewInt(16))
	pi.Sub(pi, new(big.Int).Mul(atanInv(239, one), big.NewInt(4)))

	// Drop the integer part (3) and the guard bits.
	frac := new(big.Int).Mod(pi, one)
	frac.Rsh(frac, guard)
	// frac now holds the fractional bits, most significant first when
	// read from the top: extract 32-bit words from the high end.
	for i := range piWords {
		shift := uint(bits - 32*(i+1))
		w := new(big.Int).Rsh(frac, shift)
		piWords[i] = uint32(w.Uint64() & 0xffffffff)
	}
}

// atanInv returns atan(1/x) in fixed point with denominator `scale`, by the
// alternating series atan(1/x) = sum (-1)^k / ((2k+1) x^(2k+1)).
func atanInv(x int64, scale *big.Int) *big.Int {
	sum := new(big.Int)
	term := new(big.Int).Div(scale, big.NewInt(x))
	xsq := big.NewInt(x * x)
	tmp := new(big.Int)
	for k := int64(0); term.Sign() != 0; k++ {
		tmp.Div(term, big.NewInt(2*k+1))
		if k%2 == 0 {
			sum.Add(sum, tmp)
		} else {
			sum.Sub(sum, tmp)
		}
		term.Div(term, xsq)
	}
	return sum
}

// Cipher holds an expanded Blowfish key schedule.
type Cipher struct {
	p [18]uint32
	s [4][256]uint32
}

// New expands the variable-length key (1 to 56 bytes) into a Cipher.
func New(key []byte) (*Cipher, error) {
	if len(key) < 1 || len(key) > 56 {
		return nil, fmt.Errorf("blowfish: invalid key size %d (want 1..56)", len(key))
	}
	c := &Cipher{}
	copy(c.p[:], piWords[:18])
	for i := 0; i < 4; i++ {
		copy(c.s[i][:], piWords[18+i*256:18+(i+1)*256])
	}
	// XOR the key cyclically into the P-array.
	j := 0
	for i := range c.p {
		var w uint32
		for k := 0; k < 4; k++ {
			w = w<<8 | uint32(key[j])
			j++
			if j == len(key) {
				j = 0
			}
		}
		c.p[i] ^= w
	}
	// Replace P and S entries by repeatedly encrypting the zero block.
	var l, r uint32
	for i := 0; i < 18; i += 2 {
		l, r = c.encryptWords(l, r, nil)
		c.p[i], c.p[i+1] = l, r
	}
	for b := 0; b < 4; b++ {
		for i := 0; i < 256; i += 2 {
			l, r = c.encryptWords(l, r, nil)
			c.s[b][i], c.s[b][i+1] = l, r
		}
	}
	return c, nil
}

// Recorder observes the key-dependent S-box lookups of a traced block
// operation: box is 0..3, index the byte index into the 256-entry box,
// round 1..16, and first marks the first lookup of a round.
type Recorder interface {
	Lookup(box int, index byte, round int, first bool)
}

// f is the Blowfish round function with optional lookup recording.
func (c *Cipher) f(x uint32, round int, rec Recorder) uint32 {
	a := byte(x >> 24)
	b := byte(x >> 16)
	d := byte(x >> 8)
	e := byte(x)
	if rec != nil {
		rec.Lookup(0, a, round, true)
		rec.Lookup(1, b, round, false)
		rec.Lookup(2, d, round, false)
		rec.Lookup(3, e, round, false)
	}
	return ((c.s[0][a] + c.s[1][b]) ^ c.s[2][d]) + c.s[3][e]
}

func (c *Cipher) encryptWords(l, r uint32, rec Recorder) (uint32, uint32) {
	for i := 0; i < rounds; i += 2 {
		l ^= c.p[i]
		r ^= c.f(l, i+1, rec)
		r ^= c.p[i+1]
		l ^= c.f(r, i+2, rec)
	}
	l ^= c.p[16]
	r ^= c.p[17]
	return r, l
}

func (c *Cipher) decryptWords(l, r uint32, rec Recorder) (uint32, uint32) {
	for i := 17; i > 1; i -= 2 {
		l ^= c.p[i]
		r ^= c.f(l, 18-i, rec)
		r ^= c.p[i-1]
		l ^= c.f(r, 19-i, rec)
	}
	l ^= c.p[1]
	r ^= c.p[0]
	return r, l
}

// Encrypt encrypts one 8-byte block from src into dst (may alias),
// reporting S-box lookups to rec if non-nil.
func (c *Cipher) Encrypt(dst, src []byte, rec Recorder) {
	l := binary.BigEndian.Uint32(src[0:])
	r := binary.BigEndian.Uint32(src[4:])
	l, r = c.encryptWords(l, r, rec)
	binary.BigEndian.PutUint32(dst[0:], l)
	binary.BigEndian.PutUint32(dst[4:], r)
}

// Decrypt decrypts one 8-byte block from src into dst (may alias).
func (c *Cipher) Decrypt(dst, src []byte, rec Recorder) {
	l := binary.BigEndian.Uint32(src[0:])
	r := binary.BigEndian.Uint32(src[4:])
	l, r = c.decryptWords(l, r, rec)
	binary.BigEndian.PutUint32(dst[0:], l)
	binary.BigEndian.PutUint32(dst[4:], r)
}

// PiWord exposes the i-th computed pi word for validation (the first is
// 0x243F6A88, the well-known leading fractional word of pi).
func PiWord(i int) uint32 { return piWords[i] }
