package blowfish

import "randfill/internal/mem"

// Layout places the cipher's tables in the simulated address space: four
// 1 KB S-boxes (the security-critical data, 16 cache lines each) plus the
// 72-byte P-array, input/output buffers and a hot stack region.
type Layout struct {
	SBoxes [4]mem.Addr
	PArray mem.Addr
	Stack  mem.Addr
	Input  mem.Addr
	Output mem.Addr
}

// SBoxSize is the byte size of one S-box (256 4-byte entries).
const SBoxSize = 1024

// DefaultLayout places the Blowfish data away from the AES layout, with
// de-aliased line offsets (see aes.DefaultLayout).
func DefaultLayout() Layout {
	var l Layout
	for i := range l.SBoxes {
		l.SBoxes[i] = mem.Addr(0x200000 + i*SBoxSize)
	}
	l.PArray = 0x210000 + 41*mem.LineSize
	l.Stack = 0x220000 + 97*mem.LineSize
	l.Input = 0x230000 + 223*mem.LineSize
	l.Output = 0x260000 + 307*mem.LineSize
	return l
}

// SBoxRegion returns the memory region of S-box b.
func (l Layout) SBoxRegion(b int) mem.Region {
	return mem.Region{Base: l.SBoxes[b], Size: SBoxSize}
}

// SBoxRegions returns all four S-box regions (the security-critical data).
func (l Layout) SBoxRegions() []mem.Region {
	out := make([]mem.Region, 4)
	for i := range out {
		out[i] = l.SBoxRegion(i)
	}
	return out
}

// LookupAddr returns the byte address of entry index in S-box b.
func (l Layout) LookupAddr(b int, index byte) mem.Addr {
	return l.SBoxes[b] + mem.Addr(index)*4
}

// Tracer generates memory access traces for Blowfish executions, in the
// same shape as the AES tracer: S-box lookups marked Secret, with P-array,
// stack and buffer traffic interleaved.
type Tracer struct {
	Cipher *Cipher
	Layout Layout
}

type traceRec struct {
	lay   Layout
	trace mem.Trace
	stack int
	pWord int
}

const stackLines = 4

func (r *traceRec) stackAccess(kind mem.Kind) {
	addr := r.lay.Stack + mem.Addr((r.stack%stackLines)*mem.LineSize) + mem.Addr(r.stack*8%mem.LineSize)
	r.stack++
	r.trace = append(r.trace, mem.Access{Addr: addr, Kind: kind, NonMem: 2})
}

// Lookup implements Recorder.
func (r *traceRec) Lookup(box int, index byte, round int, first bool) {
	if first {
		// Round boundary: the two P-array words are read.
		for k := 0; k < 2; k++ {
			addr := r.lay.PArray + mem.Addr((r.pWord%18)*4)
			r.pWord++
			r.trace = append(r.trace, mem.Access{Addr: addr, Kind: mem.Read, NonMem: 2})
		}
	}
	r.stackAccess(mem.Read)
	r.trace = append(r.trace, mem.Access{
		Addr:      r.lay.LookupAddr(box, index),
		Kind:      mem.Read,
		NonMem:    2,
		Dependent: first,
		Secret:    true,
	})
}

// EncryptBlock encrypts one block at buffer offset off and returns the
// ciphertext and the block's memory access trace.
func (t *Tracer) EncryptBlock(src []byte, off int) ([BlockSize]byte, mem.Trace) {
	rec := &traceRec{lay: t.Layout}
	for i := 0; i < 2; i++ {
		rec.trace = append(rec.trace, mem.Access{
			Addr: t.Layout.Input + mem.Addr(off+i*4), Kind: mem.Read, NonMem: 2,
		})
	}
	var dst [BlockSize]byte
	t.Cipher.Encrypt(dst[:], src, rec)
	for i := 0; i < 2; i++ {
		rec.trace = append(rec.trace, mem.Access{
			Addr: t.Layout.Output + mem.Addr(off+i*4), Kind: mem.Write, NonMem: 2,
		})
	}
	return dst, rec.trace
}
