package blowfish

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func TestPiGeneration(t *testing.T) {
	// The leading 32-bit fractional words of pi, which every Blowfish
	// implementation embeds as the initial P-array.
	want := []uint32{0x243F6A88, 0x85A308D3, 0x13198A2E, 0x03707344,
		0xA4093822, 0x299F31D0, 0x082EFA98, 0xEC4E6C89}
	for i, w := range want {
		if PiWord(i) != w {
			t.Fatalf("pi word %d = %#08x, want %#08x", i, PiWord(i), w)
		}
	}
}

// vectors are from the canonical Blowfish test vector set (Eric Young).
var vectors = []struct{ key, plain, cipher string }{
	{"0000000000000000", "0000000000000000", "4EF997456198DD78"},
	{"FFFFFFFFFFFFFFFF", "FFFFFFFFFFFFFFFF", "51866FD5B85ECB8A"},
	{"3000000000000000", "1000000000000001", "7D856F9A613063F2"},
	{"1111111111111111", "1111111111111111", "2466DD878B963C9D"},
	{"0123456789ABCDEF", "1111111111111111", "61F9C3802281B096"},
	{"FEDCBA9876543210", "0123456789ABCDEF", "0ACEAB0FC6A0A28D"},
	{"7CA110454A1A6E57", "01A1D6D039776742", "59C68245EB05282B"},
}

func TestKnownVectors(t *testing.T) {
	for _, v := range vectors {
		key, _ := hex.DecodeString(v.key)
		plain, _ := hex.DecodeString(v.plain)
		want, _ := hex.DecodeString(v.cipher)
		c, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 8)
		c.Encrypt(got, plain, nil)
		if !bytes.Equal(got, want) {
			t.Errorf("key %s plain %s: got %X, want %s", v.key, v.plain, got, v.cipher)
		}
		back := make([]byte, 8)
		c.Decrypt(back, got, nil)
		if !bytes.Equal(back, plain) {
			t.Errorf("key %s: decrypt round trip failed", v.key)
		}
	}
}

func TestVariableKeyLengths(t *testing.T) {
	for _, n := range []int{1, 5, 16, 56} {
		key := make([]byte, n)
		for i := range key {
			key[i] = byte(i + 1)
		}
		c, err := New(key)
		if err != nil {
			t.Fatalf("key length %d rejected: %v", n, err)
		}
		pt := []byte{1, 2, 3, 4, 5, 6, 7, 8}
		ct := make([]byte, 8)
		rt := make([]byte, 8)
		c.Encrypt(ct, pt, nil)
		c.Decrypt(rt, ct, nil)
		if !bytes.Equal(rt, pt) {
			t.Errorf("key length %d: round trip failed", n)
		}
	}
	if _, err := New(nil); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := New(make([]byte, 57)); err == nil {
		t.Error("57-byte key accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(key [16]byte, pt [8]byte) bool {
		c, err := New(key[:])
		if err != nil {
			return false
		}
		var ct, rt [8]byte
		c.Encrypt(ct[:], pt[:], nil)
		c.Decrypt(rt[:], ct[:], nil)
		return rt == pt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

type countRec struct {
	counts [4]int
	firsts int
	rounds map[int]bool
}

func (r *countRec) Lookup(box int, index byte, round int, first bool) {
	r.counts[box]++
	if first {
		r.firsts++
	}
	if r.rounds == nil {
		r.rounds = make(map[int]bool)
	}
	r.rounds[round] = true
}

func TestLookupCounts(t *testing.T) {
	// 16 rounds x 1 F-evaluation x 4 S-box lookups.
	c, _ := New([]byte("test key"))
	rec := &countRec{}
	var out [8]byte
	c.Encrypt(out[:], make([]byte, 8), rec)
	for b := 0; b < 4; b++ {
		if rec.counts[b] != 16 {
			t.Errorf("S-box %d lookups = %d, want 16", b, rec.counts[b])
		}
	}
	if rec.firsts != 16 {
		t.Errorf("round-first callbacks = %d, want 16", rec.firsts)
	}
	if len(rec.rounds) != 16 {
		t.Errorf("rounds seen = %d, want 16", len(rec.rounds))
	}
}

func TestTracedMatchesUntraced(t *testing.T) {
	c, _ := New([]byte("another key"))
	pt := []byte{9, 8, 7, 6, 5, 4, 3, 2}
	a := make([]byte, 8)
	b := make([]byte, 8)
	c.Encrypt(a, pt, nil)
	c.Encrypt(b, pt, &countRec{})
	if !bytes.Equal(a, b) {
		t.Error("tracing changed the ciphertext")
	}
}

func TestKeySensitivity(t *testing.T) {
	c1, _ := New([]byte("key A"))
	c2, _ := New([]byte("key B"))
	pt := make([]byte, 8)
	a := make([]byte, 8)
	b := make([]byte, 8)
	c1.Encrypt(a, pt, nil)
	c2.Encrypt(b, pt, nil)
	if bytes.Equal(a, b) {
		t.Error("different keys produced identical ciphertexts")
	}
}
