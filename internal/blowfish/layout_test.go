package blowfish

import (
	"testing"

	"randfill/internal/cache"
	"randfill/internal/core"
	"randfill/internal/mem"
	"randfill/internal/rng"
)

func TestLayoutRegions(t *testing.T) {
	lay := DefaultLayout()
	if len(lay.SBoxRegions()) != 4 {
		t.Fatal("want 4 S-box regions")
	}
	for b := 0; b < 4; b++ {
		r := lay.SBoxRegion(b)
		if r.NumLines() != 16 {
			t.Errorf("S-box %d spans %d lines, want 16", b, r.NumLines())
		}
		for i := 0; i < 256; i++ {
			if !r.Contains(lay.LookupAddr(b, byte(i))) {
				t.Fatalf("lookup %d of box %d outside region", i, b)
			}
		}
	}
}

func TestTracerBlock(t *testing.T) {
	c, _ := New([]byte("trace key"))
	tr := &Tracer{Cipher: c, Layout: DefaultLayout()}
	pt := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	ct, trace := tr.EncryptBlock(pt, 0)

	var want [8]byte
	c.Encrypt(want[:], pt, nil)
	if ct != want {
		t.Fatal("traced ciphertext differs")
	}
	secret := 0
	lay := DefaultLayout()
	for _, a := range trace {
		if a.Secret {
			secret++
			in := false
			for b := 0; b < 4; b++ {
				if lay.SBoxRegion(b).Contains(a.Addr) {
					in = true
				}
			}
			if !in {
				t.Fatalf("secret access %#x outside S-boxes", uint64(a.Addr))
			}
		}
	}
	if secret != 64 { // 16 rounds x 4 lookups
		t.Errorf("secret accesses = %d, want 64", secret)
	}
}

// TestRandomFillProtectsBlowfish demonstrates the generality claim: the
// same random fill window that protects the AES tables protects Blowfish's
// S-boxes against a reuse based (Flush-Reload style) observation.
func TestRandomFillProtectsBlowfish(t *testing.T) {
	c, _ := New([]byte("victim key"))

	observe := func(window rng.Window, trials int) float64 {
		l1 := cache.NewSetAssoc(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}, cache.LRU{})
		eng := core.NewEngine(l1, rng.New(11))
		eng.SetRR(window.A, window.B)
		src := rng.New(12)
		hits := 0
		var pt [8]byte
		rec := &lookupCapture{}
		for trial := 0; trial < trials; trial++ {
			l1.Flush()
			src.Bytes(pt[:])
			rec.lines = rec.lines[:0]
			var ct [8]byte
			c.Encrypt(ct[:], pt[:], rec)
			// Victim performs its S-box accesses through the engine.
			for _, a := range rec.lines {
				eng.Access(a, false)
			}
			// Attacker reloads: did it observe the victim's first
			// lookup line cached?
			if len(rec.lines) > 0 && l1.Probe(rec.lines[0]) {
				hits++
			}
		}
		return float64(hits) / float64(trials)
	}

	demand := observe(rng.Window{}, 300)
	defended := observe(rng.Symmetric(32), 1000)
	if demand < 0.95 {
		t.Errorf("demand fetch: first-lookup line observed %.2f, want ≈ 1", demand)
	}
	// The defended rate converges near 0.43 (Blowfish makes enough lookups
	// per block that stray random fills re-cache the first line fairly
	// often); the bound leaves Monte Carlo headroom while still separating
	// it decisively from demand fetch's ≈ 1.
	if defended > 0.5 {
		t.Errorf("random fill: first-lookup line observed %.2f, want far below demand", defended)
	}
}

type lookupCapture struct {
	lines []mem.Line
}

func (r *lookupCapture) Lookup(box int, index byte, round int, first bool) {
	lay := DefaultLayout()
	r.lines = append(r.lines, mem.LineOf(lay.LookupAddr(box, index)))
}
