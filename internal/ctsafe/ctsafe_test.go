package ctsafe

import "testing"

func TestEqMask8(t *testing.T) {
	for a := 0; a < 256; a++ {
		for _, b := range []int{0, 1, a, a ^ 1, 127, 128, 255} {
			want := byte(0)
			if a == b {
				want = 0xff
			}
			if got := EqMask8(byte(a), byte(b)); got != want {
				t.Fatalf("EqMask8(%#x, %#x) = %#x, want %#x", a, b, got, want)
			}
		}
	}
}

func TestSelect8(t *testing.T) {
	if got := Select8(0xff, 0xab, 0xcd); got != 0xab {
		t.Fatalf("Select8(0xff) = %#x, want 0xab", got)
	}
	if got := Select8(0x00, 0xab, 0xcd); got != 0xcd {
		t.Fatalf("Select8(0x00) = %#x, want 0xcd", got)
	}
}

func TestLookupByte(t *testing.T) {
	var table [256]byte
	for i := range table {
		table[i] = byte(i*7 + 3)
	}
	for i := 0; i < 256; i++ {
		if got := LookupByte(&table, byte(i)); got != table[i] {
			t.Fatalf("LookupByte(%d) = %#x, want %#x", i, got, table[i])
		}
	}
}

func TestLookupU32(t *testing.T) {
	var table [256]uint32
	for i := range table {
		table[i] = uint32(i) * 0x01010101
	}
	for i := 0; i < 256; i++ {
		if got := LookupU32(&table, byte(i)); got != table[i] {
			t.Fatalf("LookupU32(%d) = %#x, want %#x", i, got, table[i])
		}
	}
}

func TestXtime(t *testing.T) {
	branchy := func(b byte) byte {
		v := b << 1
		if b&0x80 != 0 {
			v ^= 0x1b
		}
		return v
	}
	for i := 0; i < 256; i++ {
		if got, want := Xtime(byte(i)), branchy(byte(i)); got != want {
			t.Fatalf("Xtime(%#x) = %#x, want %#x", i, got, want)
		}
	}
}
