// Package ctsafe provides branchless constant-time primitives: masked
// full-table lookups and selects whose memory access pattern and control
// flow are independent of their secret operands. They are the defense-side
// counterpart of the victim ciphers — an implementation built from these
// helpers leaves no secret-dependent index, branch, or div/mod for a cache
// attacker (or the ctflow checker) to find, at a uniform-scan cost of
// touching every table entry per lookup.
//
// The ctflow taint engine needs no special knowledge of this package: the
// helpers are clean by construction (loop counters index the tables, masks
// replace branches), so the checker proves their callers clean rather than
// taking it on trust. The //ctflow:sanitizer directive exists for genuine
// declassification points (e.g. a MAC comparison verdict) and is
// deliberately not used here — lookup results are still secret data.
package ctsafe

// EqMask8 returns 0xff when a == b and 0x00 otherwise, without branching:
// a^b is zero only on equality, and (x-1)>>8 borrows into the high bits
// only when x is zero.
func EqMask8(a, b byte) byte {
	x := uint32(a ^ b)
	return byte((x - 1) >> 8)
}

// Select8 returns a when mask is 0xff and b when mask is 0x00. Any other
// mask value mixes the operands bitwise; callers must pass a proper mask.
func Select8(mask, a, b byte) byte {
	return b ^ (mask & (a ^ b))
}

// LookupByte returns table[idx] with a uniform access pattern: every entry
// is read and all but the matching one are masked away, so the trace of
// cache lines touched is the whole table regardless of idx.
func LookupByte(table *[256]byte, idx byte) byte {
	var out byte
	for i := 0; i < 256; i++ {
		out |= table[i] & EqMask8(byte(i), idx)
	}
	return out
}

// LookupU32 is LookupByte for 256-entry word tables.
func LookupU32(table *[256]uint32, idx byte) uint32 {
	var out uint32
	for i := 0; i < 256; i++ {
		m := uint32(EqMask8(byte(i), idx))
		m |= m<<8 | m<<16 | m<<24
		out |= table[i] & m
	}
	return out
}

// Xtime doubles b in GF(2^8) with the AES polynomial, replacing the
// high-bit reduction branch with an arithmetic mask: -(b>>7) is 0xff
// exactly when the high bit is set.
func Xtime(b byte) byte {
	return b<<1 ^ (0x1b & -(b >> 7))
}
