package atomicio

// In-package tests for the directory-fsync discipline: a rename is atomic
// but only the parent-directory fsync makes it durable across power loss,
// so Commit must open the destination's directory, Sync the handle, and
// Close it — exactly once per publish.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// recordingDir wraps the real directory handle and records the sequence of
// operations applied to it.
type recordingDir struct {
	real   *os.File
	events *[]string
	fail   error // returned from Sync when non-nil
}

func (d *recordingDir) Sync() error {
	*d.events = append(*d.events, "sync "+filepath.Base(d.real.Name()))
	if d.fail != nil {
		//lint:ignore errcheck-io test cleanup of a wrapped handle on injected failure
		d.real.Close()
		return d.fail
	}
	return d.real.Sync()
}

func (d *recordingDir) Close() error {
	*d.events = append(*d.events, "close "+filepath.Base(d.real.Name()))
	return d.real.Close()
}

// record swaps the openDir seam for one that logs open/sync/close events on
// the given slice, restoring the real one on test cleanup.
func record(t *testing.T, events *[]string, fail error) {
	t.Helper()
	orig := openDir
	openDir = func(dir string) (dirHandle, error) {
		*events = append(*events, "open "+filepath.Base(dir))
		f, err := os.Open(dir)
		if err != nil {
			return nil, err
		}
		return &recordingDir{real: f, events: events, fail: fail}, nil
	}
	t.Cleanup(func() { openDir = orig })
}

// TestCommitSyncsParentDirectory asserts the durability discipline: after
// the rename, Commit opens the destination's parent directory, fsyncs the
// handle, and closes it — once.
func TestCommitSyncsParentDirectory(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Base(dir)
	var events []string
	record(t, &events, nil)

	f, err := Create(filepath.Join(dir, "out.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("directory touched before Commit: %v", events)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	want := []string{"open " + base, "sync " + base, "close " + base}
	if len(events) != len(want) {
		t.Fatalf("dir events %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("dir events %v, want %v", events, want)
		}
	}
}

// TestWriteFileSyncsParentDirectory: the WriteFile convenience path runs
// the same open/sync/close sequence as an explicit Create+Commit.
func TestWriteFileSyncsParentDirectory(t *testing.T) {
	dir := t.TempDir()
	var events []string
	record(t, &events, nil)

	if err := WriteFile(filepath.Join(dir, "a.json"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 || events[0] != "open "+filepath.Base(dir) {
		t.Fatalf("dir events %v, want open/sync/close of %s", events, filepath.Base(dir))
	}
}

// TestCommitReportsDirSyncFailure: a failed directory fsync is surfaced as
// an error (the publish is visible but not yet crash-durable) while the
// data file itself stays complete.
func TestCommitReportsDirSyncFailure(t *testing.T) {
	dir := t.TempDir()
	var events []string
	injected := errors.New("injected dir-sync failure")
	record(t, &events, injected)

	dest := filepath.Join(dir, "out.bin")
	err := WriteFile(dest, []byte("payload"), 0o644)
	if err == nil || !errors.Is(err, injected) {
		t.Fatalf("WriteFile error = %v, want injected dir-sync failure", err)
	}
	got, rerr := os.ReadFile(dest)
	if rerr != nil || string(got) != "payload" {
		t.Fatalf("data file after dir-sync failure: %q, %v", got, rerr)
	}
}
