// Package atomicio writes result artifacts atomically: data lands in a
// temporary file in the destination directory, is fsynced, and is renamed
// over the destination in one step. A crash — SIGKILL, OOM, power loss —
// therefore leaves either the complete old file or the complete new file,
// never a truncated hybrid. Every result file the repository emits
// (BENCH.json, golden files, rftrace output, checkpoint shards) must go
// through this package; the rflint atomicwrite checker enforces it.
//
// The temp file is created in the destination's directory, not os.TempDir,
// because rename is only atomic within a filesystem.
//
// Durability note: rename alone is atomic but not durable — after a power
// loss the directory entry may still point at the old file even though the
// new data blocks were fsynced. Commit therefore fsyncs the destination's
// parent directory after the rename, which is what persists the directory
// entry itself. Only after that fsync returns is the publish crash-durable;
// a failure there is reported as an error even though the new file is
// already visible to readers.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"
)

// File is an in-progress atomic write: an *os.File open on a temporary
// path next to the destination. Write the content, then Commit to publish
// it or Abort to discard it. Exactly one of Commit or Abort must be called;
// Abort after a successful Commit is a no-op.
type File struct {
	*os.File
	dest      string
	committed bool
}

// Create starts an atomic write of dest. The returned File's Write methods
// go to a temporary file in dest's directory.
func Create(dest string) (*File, error) {
	dir := filepath.Dir(dest)
	f, err := os.CreateTemp(dir, "."+filepath.Base(dest)+".tmp*")
	if err != nil {
		return nil, fmt.Errorf("atomicio: %w", err)
	}
	return &File{File: f, dest: dest}, nil
}

// Commit fsyncs the temporary file, closes it, and renames it over the
// destination. On any error the temporary file is removed and the
// destination is untouched.
func (f *File) Commit() error {
	if f.committed {
		return fmt.Errorf("atomicio: %s committed twice", f.dest)
	}
	if err := f.Sync(); err != nil {
		f.Abort()
		return fmt.Errorf("atomicio: sync %s: %w", f.dest, err)
	}
	if err := f.Close(); err != nil {
		f.Abort()
		return fmt.Errorf("atomicio: close %s: %w", f.dest, err)
	}
	if err := os.Rename(f.Name(), f.dest); err != nil {
		f.Abort()
		return fmt.Errorf("atomicio: publish %s: %w", f.dest, err)
	}
	f.committed = true
	// Fsync the directory so the rename itself survives a crash. A failure
	// here is reported but the data file is already complete and visible.
	if err := syncDir(filepath.Dir(f.dest)); err != nil {
		return fmt.Errorf("atomicio: sync dir of %s: %w", f.dest, err)
	}
	return nil
}

// Abort discards the temporary file. Safe to call after a failed Commit and
// a no-op after a successful one, so `defer f.Abort()` is the idiomatic
// cleanup.
func (f *File) Abort() {
	if f.committed {
		return
	}
	// Close/remove errors are unactionable during cleanup: the temp file is
	// dead either way and the destination was never touched.
	//lint:ignore errcheck-io abort of a temp file; destination is untouched either way
	f.Close()
	//lint:ignore errcheck-io abort of a temp file; destination is untouched either way
	os.Remove(f.Name())
}

// WriteFile atomically replaces dest with data, with perm applied to the
// published file. It is the drop-in replacement for os.WriteFile on result
// artifacts.
func WriteFile(dest string, data []byte, perm os.FileMode) error {
	f, err := Create(dest)
	if err != nil {
		return err
	}
	defer f.Abort()
	if _, err := f.Write(data); err != nil {
		return fmt.Errorf("atomicio: write %s: %w", dest, err)
	}
	if err := f.Chmod(perm); err != nil {
		return fmt.Errorf("atomicio: chmod %s: %w", dest, err)
	}
	return f.Commit()
}

// dirHandle is the slice of *os.File syncDir needs; tests swap openDir to
// assert the open/sync/close discipline on the parent directory.
type dirHandle interface {
	Sync() error
	Close() error
}

// openDir opens a directory for fsync. It is a seam so tests can observe
// (and fail) the directory sync without a power-loss rig.
var openDir = func(dir string) (dirHandle, error) { return os.Open(dir) }

// syncDir fsyncs a directory to persist a rename within it: open the dir,
// fsync the handle, close it. Without this, the rename is atomic but not
// durable (see the package doc).
func syncDir(dir string) error {
	d, err := openDir(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
