package atomicio_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"randfill/internal/atomicio"
)

func TestWriteFileRoundTrip(t *testing.T) {
	dest := filepath.Join(t.TempDir(), "out.json")
	want := []byte("{\"ok\":true}\n")
	if err := atomicio.WriteFile(dest, want, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(dest)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("read back %q, want %q", got, want)
	}
}

func TestWriteFileReplacesExisting(t *testing.T) {
	dest := filepath.Join(t.TempDir(), "out.json")
	if err := atomicio.WriteFile(dest, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := atomicio.WriteFile(dest, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(dest)
	if string(got) != "new" {
		t.Fatalf("got %q, want %q", got, "new")
	}
}

func TestAbortLeavesDestinationUntouched(t *testing.T) {
	dir := t.TempDir()
	dest := filepath.Join(dir, "out.bin")
	if err := atomicio.WriteFile(dest, []byte("committed"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := atomicio.Create(dest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("half-writ")); err != nil {
		t.Fatal(err)
	}
	f.Abort()
	got, err := os.ReadFile(dest)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "committed" {
		t.Fatalf("abort clobbered destination: %q", got)
	}
	leftOver(t, dir, "out.bin")
}

func TestAbortAfterCommitIsNoOp(t *testing.T) {
	dir := t.TempDir()
	dest := filepath.Join(dir, "x")
	f, err := atomicio.Create(dest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	f.Abort()
	got, err := os.ReadFile(dest)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "data" {
		t.Fatalf("abort after commit damaged file: %q", got)
	}
}

func TestCommitTwiceErrors(t *testing.T) {
	f, err := atomicio.Create(filepath.Join(t.TempDir(), "x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err == nil {
		t.Fatal("second Commit succeeded")
	}
}

func TestNoTempFilesAfterCommit(t *testing.T) {
	dir := t.TempDir()
	if err := atomicio.WriteFile(filepath.Join(dir, "a.json"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	leftOver(t, dir, "a.json")
}

// leftOver fails the test if dir contains anything besides keep.
func leftOver(t *testing.T, dir, keep string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != keep {
			t.Errorf("stray file %q left behind", e.Name())
		}
		if strings.HasPrefix(e.Name(), ".") {
			t.Errorf("temp file %q survived", e.Name())
		}
	}
}
