package nomo

import (
	"testing"
	"testing/quick"

	"randfill/internal/cache"
	"randfill/internal/mem"
)

// nm builds a 4-way cache with 1 way reserved per each of 2 threads
// (NoMo-1, 2 ways shared).
func nm() *NoMo { return New(cache.Geometry{SizeBytes: 1024, Ways: 4}, 2, 1) }

func TestBasicHitMiss(t *testing.T) {
	c := nm()
	if c.Lookup(0, false) {
		t.Fatal("empty cache hit")
	}
	c.Fill(0, cache.FillOpts{Owner: 0})
	if !c.Lookup(0, false) {
		t.Fatal("miss after fill")
	}
}

func TestReservedWayProtected(t *testing.T) {
	c := nm() // 4 sets x 4 ways; way 0 reserved for thread 0, way 1 for thread 1
	// Thread 0 fills its reserved way in set 0.
	c.Fill(0, cache.FillOpts{Owner: 0})
	// Thread 1 streams conflicting lines through set 0; thread 0's line
	// must survive (thread 1 can use way 1 and the shared ways 2-3).
	for i := 1; i < 40; i++ {
		c.Fill(mem.Line(i*4), cache.FillOpts{Owner: 1})
	}
	if !c.Probe(0) {
		t.Fatal("thread 0's reserved line was evicted by thread 1")
	}
}

func TestOwnReservationEvictable(t *testing.T) {
	c := nm()
	c.Fill(0, cache.FillOpts{Owner: 0})
	// Thread 0 itself can churn through its reservation + shared pool.
	for i := 1; i < 40; i++ {
		c.Fill(mem.Line(i*4), cache.FillOpts{Owner: 0})
	}
	// The original line is evictable by its own thread (some later fill
	// displaced it).
	if c.Probe(0) {
		// Not necessarily wrong — it could have been LRU-protected —
		// but with 40 conflicting fills over 3 eligible ways it must
		// be long gone.
		t.Fatal("thread 0 could not evict its own old line")
	}
}

func TestSharedPoolContention(t *testing.T) {
	// Both threads can use the shared ways: filling 3 lines from thread
	// 0 uses way 0 plus the two shared ways.
	c := nm()
	c.Fill(0, cache.FillOpts{Owner: 0})
	c.Fill(4, cache.FillOpts{Owner: 0})
	c.Fill(8, cache.FillOpts{Owner: 0})
	if !c.Probe(0) || !c.Probe(4) || !c.Probe(8) {
		t.Fatal("thread 0 could not use the shared pool")
	}
	// A 4th fill from thread 0 must not touch thread 1's reserved way
	// (which is invalid, so the fill must evict an eligible way instead
	// of using the reserved invalid one).
	c.Fill(12, cache.FillOpts{Owner: 0})
	present := 0
	for _, l := range []mem.Line{0, 4, 8, 12} {
		if c.Probe(l) {
			present++
		}
	}
	if present != 3 {
		t.Fatalf("%d of thread 0's lines present, want 3 (one evicted)", present)
	}
}

func TestUnknownThreadUsesSharedOnly(t *testing.T) {
	c := nm()
	// Owner 7 (out of range) can only fill the 2 shared ways per set.
	c.Fill(0, cache.FillOpts{Owner: 7})
	c.Fill(4, cache.FillOpts{Owner: 7})
	c.Fill(8, cache.FillOpts{Owner: 7}) // evicts one of the previous two
	present := 0
	for _, l := range []mem.Line{0, 4, 8} {
		if c.Probe(l) {
			present++
		}
	}
	if present != 2 {
		t.Fatalf("%d lines present for shared-only thread, want 2", present)
	}
}

func TestFullReservationRefusal(t *testing.T) {
	// 2 threads x 2 reserved ways = the whole 4-way set: an unknown
	// thread has no shared pool and its fills are refused.
	c := New(cache.Geometry{SizeBytes: 1024, Ways: 4}, 2, 2)
	v := c.Fill(0, cache.FillOpts{Owner: 5})
	if !v.Refused {
		t.Fatalf("fill by shared-only thread returned %+v, want refusal", v)
	}
	if c.Stats().FillRefused != 1 {
		t.Errorf("FillRefused = %d", c.Stats().FillRefused)
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("over-reservation did not panic")
		}
	}()
	New(cache.Geometry{SizeBytes: 1024, Ways: 4}, 2, 3)
}

func TestCapacityInvariant(t *testing.T) {
	f := func(lines []uint16, owners []uint8) bool {
		c := nm()
		for i, l := range lines {
			owner := 0
			if len(owners) > 0 {
				owner = int(owners[i%len(owners)]) % 2
			}
			c.Fill(mem.Line(l), cache.FillOpts{Owner: owner})
		}
		n := 0
		for l := mem.Line(0); l < 1<<16; l += 1 {
			if c.Probe(l) {
				n++
				if n > c.NumLines() {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestIsolationProperty(t *testing.T) {
	// Property: no fill sequence by thread 1 can evict a line thread 0
	// holds in its reserved way, as long as thread 0 keeps it MRU among
	// its eligible ways.
	f := func(lines []uint16) bool {
		c := nm()
		c.Fill(0, cache.FillOpts{Owner: 0})
		for _, l := range lines {
			c.Fill(mem.Line(l)*4, cache.FillOpts{Owner: 1}) // all in set 0
			c.Lookup(0, false)                              // thread 0 keeps touching its line
		}
		return c.Probe(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFlushDrainObserver(t *testing.T) {
	c := nm()
	n := 0
	c.SetEvictionObserver(func(v cache.Victim) { n++ })
	c.Fill(0, cache.FillOpts{Owner: 0})
	c.Fill(1, cache.FillOpts{Owner: 1})
	c.DrainValid()
	if n != 2 {
		t.Errorf("drain reported %d", n)
	}
	c.Flush()
	if n != 4 {
		t.Errorf("flush reported %d total", n)
	}
	if c.Probe(0) || c.Probe(1) {
		t.Error("lines survived flush")
	}
}
