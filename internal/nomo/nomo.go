// Package nomo implements the NoMo cache (Domnitser et al., TACO 2012): a
// partition-based secure cache for SMT processors that statically reserves
// a number of ways per set for each hardware thread. A thread's fills may
// only evict lines from its own reserved ways or from the unreserved pool,
// so a co-running attacker cannot monopolize a set and observe the victim's
// evictions deterministically.
//
// As the paper notes (Section III.A), NoMo "only works for the case when
// the victim and the attacker processes are executing simultaneously in an
// SMT processor" — it partitions contention, not reuse, and so defeats
// neither Flush-Reload nor collision attacks.
package nomo

import (
	"fmt"

	"randfill/internal/cache"
	"randfill/internal/mem"
)

type nmLine struct {
	tag        mem.Line
	valid      bool
	dirty      bool
	referenced bool
	owner      int
	offset     int8
}

// NoMo is a set-associative cache with per-thread way reservation.
type NoMo struct {
	geom cache.Geometry
	sets int
	ways int
	// reserved is the number of ways reserved per hardware thread; the
	// first Threads*reserved ways of each set are partitioned, the rest
	// are shared.
	reserved int
	threads  int
	lines    []nmLine
	// stamps is the replacement-policy state, parallel to lines, operated
	// on as per-set subslices (same layout as cache.SetAssoc).
	stamps []uint64
	policy cache.Policy
	tick   uint64
	stats  cache.Stats
	onEv   cache.EvictionObserver
}

var _ cache.Cache = (*NoMo)(nil)

// New builds a NoMo cache reserving `reserved` ways of each set for each of
// `threads` hardware threads. It panics if the reservation exceeds the
// associativity (a hardware configuration error).
func New(geom cache.Geometry, threads, reserved int) *NoMo {
	return NewWithPolicy(geom, threads, reserved, nil)
}

// NewWithPolicy builds a NoMo cache whose victim selection among a thread's
// eligible ways follows pol (nil selects the historical LRU default). Way
// reservation is enforced through the policy's masked victim path, so the
// associativity must not exceed 64 ways.
func NewWithPolicy(geom cache.Geometry, threads, reserved int, pol cache.Policy) *NoMo {
	cache.ValidateGeometry(geom)
	if threads < 1 || reserved < 0 || threads*reserved > geom.Ways {
		panic(fmt.Sprintf("nomo: %d threads x %d reserved ways exceed %d-way sets",
			threads, reserved, geom.Ways))
	}
	if pol == nil {
		pol = cache.LRU{}
	}
	if err := cache.PolicyValid(pol); err != nil {
		panic(err)
	}
	if geom.Ways > 64 {
		panic(fmt.Sprintf("nomo: masked victim selection requires <= 64 ways, have %d", geom.Ways))
	}
	return &NoMo{
		geom:     geom,
		sets:     geom.Sets(),
		ways:     geom.Ways,
		reserved: reserved,
		threads:  threads,
		lines:    make([]nmLine, geom.Sets()*geom.Ways),
		stamps:   make([]uint64, geom.Sets()*geom.Ways),
		policy:   pol,
	}
}

// NumLines returns the total line capacity.
func (c *NoMo) NumLines() int { return len(c.lines) }

// Stats returns the live statistics counters.
func (c *NoMo) Stats() *cache.Stats { return &c.stats }

// SetEvictionObserver registers fn to receive every displaced valid line.
func (c *NoMo) SetEvictionObserver(fn cache.EvictionObserver) { c.onEv = fn }

func (c *NoMo) setIndex(l mem.Line) int { return int(uint64(l) & uint64(c.sets-1)) }

func (c *NoMo) set(idx int) []nmLine { return c.lines[idx*c.ways : (idx+1)*c.ways] }

// setStamps returns set idx's replacement-state words.
func (c *NoMo) setStamps(idx int) []uint64 { return c.stamps[idx*c.ways : (idx+1)*c.ways] }

func find(s []nmLine, l mem.Line) int {
	for w := range s {
		if s[w].valid && s[w].tag == l {
			return w
		}
	}
	return -1
}

// Lookup implements cache.Cache. Hits are served from any way regardless of
// reservation (the partition constrains replacement, not lookup).
func (c *NoMo) Lookup(l mem.Line, write bool) bool {
	idx := c.setIndex(l)
	s := c.set(idx)
	w := find(s, l)
	if w < 0 {
		c.stats.Misses++
		return false
	}
	c.stats.Hits++
	c.tick++
	s[w].referenced = true
	c.policy.OnHit(c.setStamps(idx), w, c.tick)
	if write {
		s[w].dirty = true
	}
	return true
}

// Probe implements cache.Cache.
func (c *NoMo) Probe(l mem.Line) bool {
	return find(c.set(c.setIndex(l)), l) >= 0
}

// eligible reports whether thread `owner` may fill into way w: its own
// reserved ways plus the shared pool.
func (c *NoMo) eligible(owner, w int) bool {
	if owner < 0 || owner >= c.threads {
		// Unknown threads only use the shared pool.
		return w >= c.threads*c.reserved
	}
	if w >= c.threads*c.reserved {
		return true
	}
	return w/c.reserved == owner
}

// Fill implements cache.Cache. opts.Owner identifies the filling hardware
// thread.
func (c *NoMo) Fill(l mem.Line, opts cache.FillOpts) cache.Victim {
	idx := c.setIndex(l)
	s := c.set(idx)
	stamps := c.setStamps(idx)
	c.tick++
	if w := find(s, l); w >= 0 {
		s[w].dirty = s[w].dirty || opts.Dirty
		c.policy.OnFill(stamps, w, c.tick)
		return cache.Victim{}
	}
	c.stats.Fills++
	// Invalid eligible way first, else the policy's pick among eligible
	// ways.
	victim := -1
	eligible := uint64(0)
	for w := range s {
		if !c.eligible(opts.Owner, w) {
			continue
		}
		eligible |= 1 << uint(w)
		if victim < 0 && !s[w].valid {
			victim = w
		}
	}
	if victim < 0 {
		victim = c.policy.VictimMasked(stamps, eligible)
	}
	if victim < 0 {
		// No eligible way at all (shared pool empty and no
		// reservation): the fill is refused.
		c.stats.FillRefused++
		return cache.Victim{Refused: true}
	}
	var v cache.Victim
	if s[victim].valid {
		v = c.evict(s, victim)
	}
	s[victim] = nmLine{
		tag:    l,
		valid:  true,
		dirty:  opts.Dirty,
		owner:  opts.Owner,
		offset: opts.Offset,
	}
	c.policy.OnFill(stamps, victim, c.tick)
	return v
}

func (c *NoMo) evict(s []nmLine, w int) cache.Victim {
	v := cache.Victim{
		Valid:      true,
		Line:       s[w].tag,
		Dirty:      s[w].dirty,
		Referenced: s[w].referenced,
		Offset:     s[w].offset,
	}
	c.stats.Evictions++
	if v.Dirty {
		c.stats.Writebacks++
	}
	if c.onEv != nil {
		c.onEv(v)
	}
	s[w].valid = false
	return v
}

// Invalidate implements cache.Cache.
func (c *NoMo) Invalidate(l mem.Line) bool {
	s := c.set(c.setIndex(l))
	w := find(s, l)
	if w < 0 {
		return false
	}
	c.stats.Invalidates++
	c.evict(s, w)
	return true
}

// Flush implements cache.Cache.
func (c *NoMo) Flush() {
	for i := range c.lines {
		if c.lines[i].valid {
			c.stats.Invalidates++
			set := c.lines[i/c.ways*c.ways : i/c.ways*c.ways+c.ways]
			c.evict(set, i%c.ways)
		}
	}
}

// DrainValid reports every still-valid line to the eviction observer
// without invalidating it.
func (c *NoMo) DrainValid() {
	if c.onEv == nil {
		return
	}
	for i := range c.lines {
		if c.lines[i].valid {
			ln := &c.lines[i]
			c.onEv(cache.Victim{
				Valid:      true,
				Line:       ln.tag,
				Dirty:      ln.dirty,
				Referenced: ln.referenced,
				Offset:     ln.offset,
			})
		}
	}
}

func (c *NoMo) String() string {
	return fmt.Sprintf("NoMo(%v, %dx%d reserved)", c.geom, c.threads, c.reserved)
}

// Occupancy returns the number of valid lines. It is a pure observer used
// by the occupancy-channel attacks as footprint ground truth.
func (c *NoMo) Occupancy() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}
