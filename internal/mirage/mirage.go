// Package mirage implements a fully-associative randomized cache in the
// style of MIRAGE (Saileshwar & Qureshi, USENIX Security 2021): the data
// store has no set structure visible to the attacker, and when it is full
// the replacement victim is drawn uniformly from the *entire* store — the
// "global random eviction" that removes set-conflict evictions entirely, so
// an eviction carries no information about which address caused it.
//
// The model keeps MIRAGE's security-relevant behaviour (full associativity,
// global random eviction, random free-slot placement) and drops the
// tag-to-data indirection machinery that exists only to make the hardware
// realizable. As the occupancy battery shows, the total-footprint channel
// survives even this idealized form: eviction randomization hides *which*
// line was displaced, never *how many*.
package mirage

import (
	"fmt"

	"randfill/internal/cache"
	"randfill/internal/mem"
	"randfill/internal/rng"
)

// mgLine is one slot of the fully-associative store.
type mgLine struct {
	tag        mem.Line
	valid      bool
	dirty      bool
	referenced bool
	owner      int
	offset     int8
}

// Mirage is the fully-associative random-global-eviction cache.
type Mirage struct {
	lines []mgLine
	// index maps resident tags to slots; it is only ever looked up by
	// key (never iterated), so map order cannot influence behaviour.
	index map[mem.Line]int32
	// free lists the invalid slots; placement draws uniformly from it
	// with swap-remove, so free-slot choice is address-independent too.
	free []int32
	// stamps is the replacement-policy state, one word per slot; the
	// policy treats the whole store as one fully-associative set.
	stamps []uint64
	policy cache.Policy
	// noState devirtualizes the uniform-random default: Random keeps no
	// per-access state, so OnHit/OnFill dispatch is skipped entirely.
	noState bool
	tick    uint64
	src     *rng.Source
	stats   cache.Stats
	onEv    cache.EvictionObserver
}

var _ cache.Cache = (*Mirage)(nil)

// New builds a Mirage cache with geom's line capacity (the Ways field is
// ignored: the store is fully associative), drawing all placement and
// eviction randomness from src.
func New(geom cache.Geometry, src *rng.Source) *Mirage {
	return NewWithPolicy(geom, src, nil)
}

// NewWithPolicy builds a Mirage cache whose full-store eviction victim
// follows pol over all slots (nil selects the historical global-random
// default). Free-slot placement stays a uniform draw regardless of policy —
// placement randomization is the design's security mechanism, the victim
// pick is the replacement decision the Peters et al. axis varies.
func NewWithPolicy(geom cache.Geometry, src *rng.Source, pol cache.Policy) *Mirage {
	n := geom.SizeBytes / mem.LineSize
	if geom.SizeBytes <= 0 || geom.SizeBytes%mem.LineSize != 0 || n < 1 {
		panic(fmt.Sprintf("mirage: size %d not a positive multiple of line size", geom.SizeBytes))
	}
	if src == nil {
		panic("mirage: nil rng source")
	}
	if pol == nil {
		pol = cache.Random{Src: src}
	}
	if err := cache.PolicyValid(pol); err != nil {
		panic(err)
	}
	c := &Mirage{
		lines:  make([]mgLine, n),
		index:  make(map[mem.Line]int32, n),
		free:   make([]int32, n),
		stamps: make([]uint64, n),
		policy: pol,
		src:    src,
	}
	_, c.noState = pol.(cache.Random)
	for i := range c.free {
		c.free[i] = int32(i)
	}
	return c
}

// NumLines returns the total line capacity.
func (c *Mirage) NumLines() int { return len(c.lines) }

// Stats returns the live statistics counters.
func (c *Mirage) Stats() *cache.Stats { return &c.stats }

// SetEvictionObserver registers fn to receive every displaced valid line.
func (c *Mirage) SetEvictionObserver(fn cache.EvictionObserver) { c.onEv = fn }

// Lookup implements cache.Cache.
func (c *Mirage) Lookup(l mem.Line, write bool) bool {
	p, ok := c.index[l]
	if !ok {
		c.stats.Misses++
		return false
	}
	c.stats.Hits++
	c.tick++
	c.lines[p].referenced = true
	if !c.noState {
		c.policy.OnHit(c.stamps, int(p), c.tick)
	}
	if write {
		c.lines[p].dirty = true
	}
	return true
}

// Probe implements cache.Cache.
func (c *Mirage) Probe(l mem.Line) bool {
	_, ok := c.index[l]
	return ok
}

// Fill implements cache.Cache: place into a uniformly random free slot, or
// — when the store is full — evict a victim drawn uniformly from all
// resident lines. The victim can therefore never be the line being
// installed (it is not resident), and is always a valid line.
func (c *Mirage) Fill(l mem.Line, opts cache.FillOpts) cache.Victim {
	c.tick++
	if p, ok := c.index[l]; ok {
		c.lines[p].dirty = c.lines[p].dirty || opts.Dirty
		if !c.noState {
			c.policy.OnFill(c.stamps, int(p), c.tick)
		}
		return cache.Victim{}
	}
	c.stats.Fills++
	var v cache.Victim
	var p int32
	if len(c.free) > 0 {
		j := c.src.Intn(len(c.free))
		p = c.free[j]
		c.free[j] = c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
	} else {
		p = int32(c.policy.Victim(c.stamps))
		v = c.evict(p)
	}
	c.lines[p] = mgLine{
		tag:    l,
		valid:  true,
		dirty:  opts.Dirty,
		owner:  opts.Owner,
		offset: opts.Offset,
	}
	if !c.noState {
		c.policy.OnFill(c.stamps, int(p), c.tick)
	}
	c.index[l] = p
	return v
}

// evict clears slot p and returns its victim record, after notifying the
// eviction observer and bumping counters. The slot is NOT returned to the
// free list: callers that leave it empty (Invalidate, Flush) do that.
func (c *Mirage) evict(p int32) cache.Victim {
	v := cache.Victim{
		Valid:      true,
		Line:       c.lines[p].tag,
		Dirty:      c.lines[p].dirty,
		Referenced: c.lines[p].referenced,
		Offset:     c.lines[p].offset,
	}
	c.stats.Evictions++
	if v.Dirty {
		c.stats.Writebacks++
	}
	if c.onEv != nil {
		c.onEv(v)
	}
	delete(c.index, c.lines[p].tag)
	c.lines[p].valid = false
	return v
}

// Invalidate implements cache.Cache.
func (c *Mirage) Invalidate(l mem.Line) bool {
	p, ok := c.index[l]
	if !ok {
		return false
	}
	c.stats.Invalidates++
	c.evict(p)
	c.free = append(c.free, p)
	return true
}

// Flush implements cache.Cache.
func (c *Mirage) Flush() {
	for p := range c.lines {
		if c.lines[p].valid {
			c.stats.Invalidates++
			c.evict(int32(p))
			c.free = append(c.free, int32(p))
		}
	}
}

// Occupancy returns the number of resident lines. It is a pure observer
// used by the occupancy-channel attacks as footprint ground truth.
func (c *Mirage) Occupancy() int { return len(c.index) }

// Contents returns the line numbers of all valid lines, for tests.
func (c *Mirage) Contents() []mem.Line {
	var out []mem.Line
	for p := range c.lines {
		if c.lines[p].valid {
			out = append(out, c.lines[p].tag)
		}
	}
	return out
}

func (c *Mirage) String() string {
	return fmt.Sprintf("Mirage(%d lines, fully associative)", len(c.lines))
}
