package mirage_test

import (
	"testing"

	"randfill/internal/cache"
	"randfill/internal/mem"
	"randfill/internal/mirage"
	"randfill/internal/rng"
)

func small(seed uint64) *mirage.Mirage {
	return mirage.New(cache.Geometry{SizeBytes: 1024, Ways: 4}, rng.New(seed)) // 16 lines
}

func TestBasicOperations(t *testing.T) {
	c := small(1)
	if c.NumLines() != 16 {
		t.Fatalf("NumLines = %d, want 16", c.NumLines())
	}
	if c.Lookup(5, false) {
		t.Fatal("cold lookup hit")
	}
	if v := c.Fill(5, cache.FillOpts{Dirty: true}); v.Valid {
		t.Fatalf("fill into empty cache displaced %+v", v)
	}
	if !c.Probe(5) || !c.Lookup(5, false) {
		t.Fatal("line absent after fill")
	}
	if c.Occupancy() != 1 {
		t.Fatalf("occupancy = %d, want 1", c.Occupancy())
	}
	if v := c.Fill(5, cache.FillOpts{}); v.Valid {
		t.Fatal("refresh displaced a line")
	}
	if !c.Invalidate(5) || c.Probe(5) || c.Occupancy() != 0 {
		t.Fatal("invalidate did not remove the line")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Fills != 1 || st.Evictions != 1 || st.Writebacks != 1 {
		t.Fatalf("stats %+v", *st)
	}
}

// TestFullAssociativity: any N distinct lines fit a capacity-N store, no
// matter how their addresses relate — the property no set-indexed cache
// has.
func TestFullAssociativity(t *testing.T) {
	c := small(2)
	// 16 lines all congruent mod anything: addresses 0, 1<<20, 2<<20, ...
	for i := 0; i < 16; i++ {
		if v := c.Fill(mem.Line(i)<<20, cache.FillOpts{}); v.Valid {
			t.Fatalf("fill %d evicted %+v below capacity", i, v)
		}
	}
	if c.Occupancy() != 16 {
		t.Fatalf("occupancy = %d, want 16", c.Occupancy())
	}
	for i := 0; i < 16; i++ {
		if !c.Probe(mem.Line(i) << 20) {
			t.Fatalf("line %d not resident at full occupancy", i)
		}
	}
}

// TestGlobalRandomEviction: once full, the victim distribution covers the
// whole store, not one set — over many fills every resident line is at
// some point chosen.
func TestGlobalRandomEviction(t *testing.T) {
	c := small(3)
	for i := 0; i < 16; i++ {
		c.Fill(mem.Line(i), cache.FillOpts{})
	}
	victims := make(map[mem.Line]bool)
	next := mem.Line(1000)
	for i := 0; i < 512; i++ {
		v := c.Fill(next, cache.FillOpts{})
		next++
		if !v.Valid {
			t.Fatalf("fill %d into a full store displaced nothing", i)
		}
		victims[v.Line] = true
	}
	// Every original line is eventually evicted (each fill picks uniformly
	// among 16 residents, so after 512 draws the survival chance of any
	// fixed line is ~4e-15; the seed pins the outcome regardless).
	for i := 0; i < 16; i++ {
		if !victims[mem.Line(i)] {
			t.Errorf("original line %d never chosen by global random eviction", i)
		}
	}
}

// TestDeterministicReplay: same seed, same placement and eviction choices.
func TestDeterministicReplay(t *testing.T) {
	a, b := small(4), small(4)
	src := rng.New(9)
	for i := 0; i < 2048; i++ {
		l := mem.Line(src.Intn(64))
		va, vb := a.Fill(l, cache.FillOpts{}), b.Fill(l, cache.FillOpts{})
		if va != vb {
			t.Fatalf("op %d: victims diverged: %+v vs %+v", i, va, vb)
		}
		if src.Intn(4) == 0 {
			if a.Invalidate(l) != b.Invalidate(l) {
				t.Fatalf("op %d: invalidates diverged", i)
			}
		}
	}
}

// FuzzMirageEvict drives an arbitrary fill/invalidate script and pins the
// eviction contract: a victim is always a (formerly) valid resident line,
// never the line just filled; a fill into a full store always evicts; and
// occupancy never exceeds capacity.
func FuzzMirageEvict(f *testing.F) {
	f.Add(uint64(1), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17})
	f.Add(uint64(7), []byte("\x80\x01\x81\x02\x82\x03"))
	f.Add(uint64(42), []byte{255, 254, 253, 0, 0, 0, 128, 64, 32})
	f.Fuzz(func(t *testing.T, seed uint64, ops []byte) {
		c := small(seed)
		for i, b := range ops {
			l := mem.Line(b & 0x3f) // 64 distinct lines vs 16 slots
			if b&0x80 != 0 {
				present := c.Probe(l)
				if c.Invalidate(l) != present {
					t.Fatalf("op %d: Invalidate(%d) disagreed with Probe", i, l)
				}
				continue
			}
			present := c.Probe(l)
			full := c.Occupancy() == c.NumLines()
			v := c.Fill(l, cache.FillOpts{Dirty: b&0x40 != 0})
			switch {
			case present && v.Valid:
				t.Fatalf("op %d: refresh of %d evicted %+v", i, l, v)
			case !present && full && !v.Valid:
				t.Fatalf("op %d: fill of %d into a full store evicted nothing", i, l)
			}
			if v.Valid {
				if v.Line == l {
					t.Fatalf("op %d: evicted the just-filled line %d", i, l)
				}
				if c.Probe(v.Line) {
					t.Fatalf("op %d: victim %d still resident", i, v.Line)
				}
			}
			if !c.Probe(l) {
				t.Fatalf("op %d: line %d absent after fill", i, l)
			}
			if occ := c.Occupancy(); occ > c.NumLines() {
				t.Fatalf("op %d: occupancy %d exceeds capacity", i, occ)
			}
		}
	})
}
