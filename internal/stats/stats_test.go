package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRunningMeanVariance(t *testing.T) {
	var r Running
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Errorf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", r.Mean())
	}
	if math.Abs(r.Variance()-4) > 1e-12 {
		t.Errorf("Variance = %v, want 4", r.Variance())
	}
	if math.Abs(r.StdDev()-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", r.StdDev())
	}
	if math.Abs(r.SampleVariance()-32.0/7) > 1e-12 {
		t.Errorf("SampleVariance = %v, want %v", r.SampleVariance(), 32.0/7)
	}
}

func TestRunningEmptyAndSingle(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 {
		t.Error("empty Running must report zeros")
	}
	r.Add(3)
	if r.Mean() != 3 || r.Variance() != 0 {
		t.Errorf("single sample: mean %v var %v", r.Mean(), r.Variance())
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e10 {
				return true // skip pathological inputs
			}
		}
		var whole Running
		for _, x := range xs {
			whole.Add(x)
		}
		k := 0
		if len(xs) > 0 {
			k = int(split) % (len(xs) + 1)
		}
		var a, b Running
		for _, x := range xs[:k] {
			a.Add(x)
		}
		for _, x := range xs[k:] {
			b.Add(x)
		}
		a.Merge(b)
		if a.N() != whole.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		scale := 1 + math.Abs(whole.Mean())
		return math.Abs(a.Mean()-whole.Mean()) < 1e-9*scale &&
			math.Abs(a.Variance()-whole.Variance()) < 1e-6*(1+whole.Variance())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGroupedArgMin(t *testing.T) {
	g := NewGrouped(256)
	for k := 0; k < 256; k++ {
		base := 100.0
		if k == 160 {
			base = 90 // the collision value has lower mean time
		}
		for i := 0; i < 10; i++ {
			g.Add(k, base+float64(i%3))
		}
	}
	if got := g.ArgMin(); got != 160 {
		t.Errorf("ArgMin = %d, want 160", got)
	}
	if got := g.ArgMax(); got == 160 {
		t.Error("ArgMax picked the minimum group")
	}
	if g.Count(160) != 10 {
		t.Errorf("Count(160) = %d", g.Count(160))
	}
}

func TestGroupedArgMinIgnoresEmpty(t *testing.T) {
	g := NewGrouped(4)
	g.Add(2, 5)
	g.Add(3, 7)
	if got := g.ArgMin(); got != 2 {
		t.Errorf("ArgMin = %d, want 2", got)
	}
	empty := NewGrouped(4)
	if got := empty.ArgMin(); got != -1 {
		t.Errorf("ArgMin on empty = %d, want -1", got)
	}
}

func TestGroupedGrandMean(t *testing.T) {
	g := NewGrouped(2)
	g.Add(0, 1)
	g.Add(0, 3)
	g.Add(1, 5)
	if got := g.GrandMean(); math.Abs(got-3) > 1e-12 {
		t.Errorf("GrandMean = %v, want 3", got)
	}
	means := g.Means()
	if means[0] != 2 || means[1] != 5 {
		t.Errorf("Means = %v", means)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.975, 1.959964},
		{0.99, 2.326348},
		{0.9999, 3.719016},
		{0.025, -1.959964},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileSymmetry(t *testing.T) {
	for _, p := range []float64{0.6, 0.9, 0.99, 0.999} {
		if d := NormalQuantile(p) + NormalQuantile(1-p); math.Abs(d) > 1e-6 {
			t.Errorf("quantile asymmetry at p=%v: %v", p, d)
		}
	}
}

func TestNormalQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%v) did not panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("P50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("P25 = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil) not NaN")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}
