package stats

import (
	"encoding/binary"
	"errors"
	"math"
)

// Binary encoding for the mergeable accumulators, used by the checkpoint
// layer to persist completed shards. Floats are encoded as their IEEE-754
// bit patterns, so decode(encode(x)) reproduces x exactly — the property
// that makes a resumed run's merge byte-identical to an uninterrupted one.

// runningSize is the encoded size of a Running: n, mean bits, m2 bits.
const runningSize = 24

// MarshalBinary implements encoding.BinaryMarshaler. The encoding is
// exact: all three Welford terms round-trip bit-for-bit.
func (r Running) MarshalBinary() ([]byte, error) {
	out := make([]byte, runningSize)
	r.appendTo(out[:0])
	return out, nil
}

// appendTo appends r's exact encoding to dst.
func (r Running) appendTo(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, r.n)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.mean))
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.m2))
}

// ErrCorrupt reports an accumulator encoding that does not frame
// correctly. The checkpoint layer treats it like a torn file: the shard
// re-runs.
var ErrCorrupt = errors.New("stats: corrupt accumulator encoding")

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (r *Running) UnmarshalBinary(data []byte) error {
	if len(data) != runningSize {
		return ErrCorrupt
	}
	_, err := r.decodeFrom(data)
	return err
}

// decodeFrom decodes one Running from the front of data and returns the
// remainder.
func (r *Running) decodeFrom(data []byte) ([]byte, error) {
	if len(data) < runningSize {
		return nil, ErrCorrupt
	}
	r.n = binary.LittleEndian.Uint64(data[0:8])
	r.mean = math.Float64frombits(binary.LittleEndian.Uint64(data[8:16]))
	r.m2 = math.Float64frombits(binary.LittleEndian.Uint64(data[16:24]))
	return data[runningSize:], nil
}

// MarshalBinary implements encoding.BinaryMarshaler: a group count
// followed by each group's exact Running encoding.
func (g *Grouped) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 4+len(g.groups)*runningSize)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(g.groups)))
	for _, grp := range g.groups {
		out = grp.appendTo(out)
	}
	return out, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (g *Grouped) UnmarshalBinary(data []byte) error {
	rest, err := g.decodeFrom(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return ErrCorrupt
	}
	return nil
}

// AppendBinary appends g's encoding to dst; the counterpart of DecodeFrom
// for callers embedding several accumulators in one payload.
func (g *Grouped) AppendBinary(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(g.groups)))
	for _, grp := range g.groups {
		dst = grp.appendTo(dst)
	}
	return dst
}

// DecodeFrom decodes one Grouped from the front of data and returns the
// remainder.
func (g *Grouped) DecodeFrom(data []byte) ([]byte, error) {
	return g.decodeFrom(data)
}

func (g *Grouped) decodeFrom(data []byte) ([]byte, error) {
	if len(data) < 4 {
		return nil, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(data[:4]))
	data = data[4:]
	if n < 0 || len(data) < n*runningSize {
		return nil, ErrCorrupt
	}
	g.groups = make([]Running, n)
	var err error
	for i := range g.groups {
		if data, err = g.groups[i].decodeFrom(data); err != nil {
			return nil, err
		}
	}
	return data, nil
}

// AppendRunning appends r's exact binary encoding to dst; exported for
// payload builders that embed a Running among other fields.
func AppendRunning(dst []byte, r Running) []byte { return r.appendTo(dst) }

// DecodeRunning decodes one Running from the front of data and returns the
// remainder.
func DecodeRunning(data []byte) (Running, []byte, error) {
	var r Running
	rest, err := r.decodeFrom(data)
	return r, rest, err
}
