// Package stats provides the small statistical toolkit the experiments need:
// streaming mean/variance, histograms keyed by small integers, the standard
// normal quantile used by the paper's Equation 5, and helpers for locating
// timing-chart minima (Figure 2).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates a stream of float64 samples and reports mean, variance
// and standard deviation using Welford's algorithm (numerically stable for
// the long timing series the attacks collect).
type Running struct {
	n    uint64
	mean float64
	m2   float64
}

// Add incorporates one sample.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of samples seen.
func (r *Running) N() uint64 { return r.n }

// Mean returns the sample mean (0 if empty).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the population variance (0 if fewer than 2 samples).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// SampleVariance returns the unbiased sample variance (0 if < 2 samples).
func (r *Running) SampleVariance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Merge folds other into r, as if all of other's samples had been Added.
// Merging is commutative and associative up to floating-point rounding:
// merge-of-shards equals sequential Add only to within a relative tolerance
// (~1e-9 for the sample counts used here), because Welford updates and the
// pairwise merge formula round differently. Anything that must be
// byte-reproducible therefore fixes the merge ORDER (shard 0, 1, 2, ...),
// which makes the result exact for a given shard plan.
func (r *Running) Merge(other Running) {
	if other.n == 0 {
		return
	}
	if r.n == 0 {
		*r = other
		return
	}
	n := r.n + other.n
	d := other.mean - r.mean
	mean := r.mean + d*float64(other.n)/float64(n)
	m2 := r.m2 + other.m2 + d*d*float64(r.n)*float64(other.n)/float64(n)
	r.n, r.mean, r.m2 = n, mean, m2
}

// Grouped accumulates samples grouped by a small integer key (e.g. the XORed
// ciphertext byte value in Figure 2's timing characteristic chart).
type Grouped struct {
	groups []Running
}

// NewGrouped returns a Grouped with n groups, keyed 0..n-1.
func NewGrouped(n int) *Grouped { return &Grouped{groups: make([]Running, n)} }

// Add adds sample x to group k.
func (g *Grouped) Add(k int, x float64) { g.groups[k].Add(x) }

// Merge folds other into g group by group, as if every sample of other had
// been Added to g. It panics if the group counts differ (merging two
// accumulators keyed by different alphabets is a bug, not data).
func (g *Grouped) Merge(other *Grouped) {
	if len(g.groups) != len(other.groups) {
		panic(fmt.Sprintf("stats: merging Grouped with %d groups into %d groups",
			len(other.groups), len(g.groups)))
	}
	for k := range g.groups {
		g.groups[k].Merge(other.groups[k])
	}
}

// Clone returns an independent deep copy of g. Shard merges use this to
// build an aggregate without disturbing the per-shard accumulators.
func (g *Grouped) Clone() *Grouped {
	return &Grouped{groups: append([]Running(nil), g.groups...)}
}

// Len returns the number of groups.
func (g *Grouped) Len() int { return len(g.groups) }

// Mean returns the mean of group k.
func (g *Grouped) Mean(k int) float64 { return g.groups[k].Mean() }

// Count returns the sample count of group k.
func (g *Grouped) Count(k int) uint64 { return g.groups[k].N() }

// Means returns a copy of all group means.
func (g *Grouped) Means() []float64 {
	out := make([]float64, len(g.groups))
	for i := range g.groups {
		out[i] = g.groups[i].Mean()
	}
	return out
}

// GrandMean returns the mean over all samples in all groups.
func (g *Grouped) GrandMean() float64 {
	var all Running
	for _, grp := range g.groups {
		all.Merge(grp)
	}
	return all.Mean()
}

// ArgMin returns the key whose group mean is smallest, ignoring empty
// groups. The collision attacks use this to read the secret off the timing
// characteristic chart. Returns -1 if every group is empty.
func (g *Grouped) ArgMin() int {
	best, bestMean := -1, math.Inf(1)
	for k := range g.groups {
		if g.groups[k].N() == 0 {
			continue
		}
		if m := g.groups[k].Mean(); m < bestMean {
			best, bestMean = k, m
		}
	}
	return best
}

// ArgMax is the complement of ArgMin.
func (g *Grouped) ArgMax() int {
	best, bestMean := -1, math.Inf(-1)
	for k := range g.groups {
		if g.groups[k].N() == 0 {
			continue
		}
		if m := g.groups[k].Mean(); m > bestMean {
			best, bestMean = k, m
		}
	}
	return best
}

// Mean returns the mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// NormalQuantile returns z_alpha, the quantile of the standard normal
// distribution for probability alpha (the Z_alpha of Equation 5). It uses
// the Acklam rational approximation, accurate to ~1e-9 over (0,1).
func NormalQuantile(alpha float64) float64 {
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("stats: NormalQuantile alpha %v out of (0,1)", alpha))
	}
	// Coefficients for the Acklam inverse-normal approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const pLow = 0.02425
	switch {
	case alpha < pLow:
		q := math.Sqrt(-2 * math.Log(alpha))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case alpha <= 1-pLow:
		q := alpha - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-alpha))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation. It copies and sorts the input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
