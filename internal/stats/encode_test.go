package stats

import (
	"math"
	"testing"

	"randfill/internal/rng"
)

// fill feeds r a stream of awkward values: tiny magnitudes, huge
// magnitudes (kept below sqrt(MaxFloat64) so the Welford m2 stays finite
// and comparable), and ordinary noise, so round-trip exactness is tested
// where float formatting would lose bits.
func fill(r *Running, seed uint64, n int) {
	src := rng.New(seed)
	for i := 0; i < n; i++ {
		v := src.Float64()*2e9 - 1e9
		switch i % 7 {
		case 3:
			v *= 1e-120
		case 5:
			v *= 1e120
		}
		r.Add(v)
	}
}

func TestRunningRoundTripExact(t *testing.T) {
	var r Running
	fill(&r, 42, 1000)
	data, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Running
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("round trip not exact:\n got %+v\nwant %+v", got, r)
	}
	if math.Float64bits(got.Mean()) != math.Float64bits(r.Mean()) {
		t.Fatal("mean bits differ after round trip")
	}
}

// TestRunningRoundTripMergeExact is the property the checkpoint layer
// depends on: merging a decoded accumulator gives bit-identical results to
// merging the live one it was saved from.
func TestRunningRoundTripMergeExact(t *testing.T) {
	var a, b Running
	fill(&a, 1, 500)
	fill(&b, 2, 700)

	live := a
	live.Merge(b)

	data, _ := b.MarshalBinary()
	var restored Running
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	viaDisk := a
	viaDisk.Merge(restored)
	if live != viaDisk {
		t.Fatalf("merge with restored shard diverged:\n got %+v\nwant %+v", viaDisk, live)
	}
}

func TestRunningUnmarshalRejectsBadSize(t *testing.T) {
	var r Running
	for _, n := range []int{0, 23, 25} {
		if err := r.UnmarshalBinary(make([]byte, n)); err == nil {
			t.Fatalf("len %d: want error", n)
		}
	}
}

func TestGroupedRoundTripExact(t *testing.T) {
	g := NewGrouped(9)
	src := rng.New(7)
	for i := 0; i < 2000; i++ {
		g.Add(int(src.Uint64()%9), src.Float64()*100)
	}
	data, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got := &Grouped{}
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if len(got.groups) != len(g.groups) {
		t.Fatalf("group count %d, want %d", len(got.groups), len(g.groups))
	}
	for i := range g.groups {
		if got.groups[i] != g.groups[i] {
			t.Fatalf("group %d diverged:\n got %+v\nwant %+v", i, got.groups[i], g.groups[i])
		}
	}
}

func TestGroupedUnmarshalRejectsCorrupt(t *testing.T) {
	g := NewGrouped(4)
	g.Add(2, 1.5)
	data, _ := g.MarshalBinary()
	got := &Grouped{}
	if err := got.UnmarshalBinary(data[:len(data)-3]); err == nil {
		t.Fatal("truncated payload: want error")
	}
	if err := got.UnmarshalBinary(append(data, 0)); err == nil {
		t.Fatal("trailing garbage: want error")
	}
	if err := got.UnmarshalBinary([]byte{1, 2}); err == nil {
		t.Fatal("short header: want error")
	}
}

func TestAppendDecodeRunningStream(t *testing.T) {
	var a, b Running
	fill(&a, 11, 40)
	fill(&b, 12, 60)
	buf := AppendRunning(nil, a)
	buf = AppendRunning(buf, b)
	gotA, rest, err := DecodeRunning(buf)
	if err != nil {
		t.Fatal(err)
	}
	gotB, rest, err := DecodeRunning(rest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}
	if gotA != a || gotB != b {
		t.Fatal("streamed round trip diverged")
	}
}
