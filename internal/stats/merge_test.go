package stats

import (
	"math"
	"testing"
)

// relTol is the documented merge tolerance: Welford Add and the pairwise
// merge formula round differently, so merge-of-shards matches sequential Add
// only to a relative ~1e-9 at these sample counts (see Running.Merge).
const relTol = 1e-9

func relClose(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= relTol*math.Max(scale, 1)
}

// stream generates a deterministic but irregular sample stream.
func stream(seed uint64, n int) []float64 {
	out := make([]float64, n)
	x := seed
	for i := range out {
		x = x*6364136223846793005 + 1442695040888963407
		// Mix magnitudes so rounding differences would actually show up.
		out[i] = float64(x%10000)/7 + float64(x>>60)*1e3
	}
	return out
}

func TestRunningMergeOfShardsMatchesSequentialAdd(t *testing.T) {
	samples := stream(3, 9001)
	var seq Running
	for _, x := range samples {
		seq.Add(x)
	}
	for _, shards := range []int{2, 3, 8, 16} {
		parts := make([]Running, shards)
		for i, x := range samples {
			parts[i%shards].Add(x)
		}
		var merged Running
		for i := range parts {
			merged.Merge(parts[i])
		}
		if merged.N() != seq.N() {
			t.Fatalf("shards=%d: N %d != %d", shards, merged.N(), seq.N())
		}
		if !relClose(merged.Mean(), seq.Mean()) {
			t.Errorf("shards=%d: mean %v vs sequential %v", shards, merged.Mean(), seq.Mean())
		}
		if !relClose(merged.Variance(), seq.Variance()) {
			t.Errorf("shards=%d: variance %v vs sequential %v", shards, merged.Variance(), seq.Variance())
		}
	}
}

func TestRunningMergeOrderInvariance(t *testing.T) {
	// Merging A,B,C in any order agrees within the documented tolerance.
	mk := func(seed uint64, n int) *Running {
		var r Running
		for _, x := range stream(seed, n) {
			r.Add(x)
		}
		return &r
	}
	orders := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}, {2, 0, 1}}
	var results []Running
	for _, ord := range orders {
		parts := []*Running{mk(7, 1000), mk(11, 313), mk(13, 4999)}
		var acc Running
		for _, i := range ord {
			acc.Merge(*parts[i])
		}
		results = append(results, acc)
	}
	for i, r := range results[1:] {
		if r.N() != results[0].N() {
			t.Fatalf("order %d: N %d != %d", i+1, r.N(), results[0].N())
		}
		if !relClose(r.Mean(), results[0].Mean()) || !relClose(r.Variance(), results[0].Variance()) {
			t.Errorf("order %v: mean/var (%v, %v) vs (%v, %v)", orders[i+1],
				r.Mean(), r.Variance(), results[0].Mean(), results[0].Variance())
		}
	}
}

func TestRunningMergeEmptyIsIdentity(t *testing.T) {
	var full Running
	for _, x := range stream(5, 100) {
		full.Add(x)
	}
	want := full
	var empty Running
	full.Merge(empty)
	if full != want {
		t.Errorf("merging an empty Running changed the receiver: %+v vs %+v", full, want)
	}
	var acc Running
	acc.Merge(want)
	if acc != want {
		// Merging INTO an empty receiver must copy the argument exactly —
		// this is what lets shard 0's clone seed an aggregate.
		t.Errorf("merge into empty receiver: %+v vs %+v", acc, want)
	}
}

func TestGroupedMergeMatchesSequentialAdd(t *testing.T) {
	const groups = 16
	samples := stream(17, 5000)
	seq := NewGrouped(groups)
	for i, x := range samples {
		seq.Add(i%groups, x)
	}
	parts := []*Grouped{NewGrouped(groups), NewGrouped(groups), NewGrouped(groups)}
	for i, x := range samples {
		parts[i%len(parts)].Add(i%groups, x)
	}
	merged := parts[0].Clone()
	merged.Merge(parts[1])
	merged.Merge(parts[2])
	for k := 0; k < groups; k++ {
		if merged.Count(k) != seq.Count(k) {
			t.Fatalf("group %d: count %d != %d", k, merged.Count(k), seq.Count(k))
		}
		if !relClose(merged.Mean(k), seq.Mean(k)) {
			t.Errorf("group %d: mean %v vs sequential %v", k, merged.Mean(k), seq.Mean(k))
		}
	}
	if !relClose(merged.GrandMean(), seq.GrandMean()) {
		t.Errorf("grand mean %v vs sequential %v", merged.GrandMean(), seq.GrandMean())
	}
}

func TestGroupedCloneIsIndependent(t *testing.T) {
	g := NewGrouped(4)
	g.Add(1, 10)
	c := g.Clone()
	c.Add(1, 99)
	c.Add(2, 5)
	if g.Count(1) != 1 || g.Count(2) != 0 {
		t.Errorf("mutating the clone changed the original: %v", g.Means())
	}
	if c.Count(1) != 2 {
		t.Errorf("clone did not keep the original's samples")
	}
}

func TestGroupedMergePanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging differently sized Grouped did not panic")
		}
	}()
	NewGrouped(4).Merge(NewGrouped(5))
}
