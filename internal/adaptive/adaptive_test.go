package adaptive

import (
	"testing"

	"randfill/internal/mem"
	"randfill/internal/rng"
	"randfill/internal/sim"
	"randfill/internal/workloads"
)

// phasedTrace alternates a streaming phase (libquantum-like, wants a wide
// forward window) with a pointer-chasing phase (sjeng-like, wants demand
// fetch), n accesses each, `phases` times.
func phasedTrace(n, phases int) mem.Trace {
	lq, _ := workloads.ByName("libquantum")
	sj, _ := workloads.ByName("sjeng")
	var out mem.Trace
	for p := 0; p < phases; p++ {
		out = append(out, lq.Gen(n, uint64(p+1))...)
		out = append(out, sj.Gen(n, uint64(p+1))...)
	}
	return out
}

func newThread() (*sim.Machine, *sim.Thread) {
	m := sim.New(sim.Config{Seed: 1})
	// The thread starts in random fill mode with a placeholder window;
	// the controller reprograms it immediately.
	th := m.NewThread(sim.ThreadConfig{Mode: sim.ModeRandomFill, Window: rng.Window{A: 0, B: 1}})
	return m, th
}

func TestDefaultsApplied(t *testing.T) {
	_, th := newThread()
	c := New(th, Config{})
	if len(c.cfg.Candidates) != 4 || c.cfg.Epoch != 20000 || c.cfg.ExploitEpochs != 8 {
		t.Fatalf("defaults wrong: %+v", c.cfg)
	}
	if !c.Exploring() {
		t.Fatal("controller must start exploring")
	}
}

func TestSecurityFloorFiltersCandidates(t *testing.T) {
	_, th := newThread()
	c := New(th, Config{MinSize: 16})
	for _, w := range c.cfg.Candidates {
		if w.Size() < 16 {
			t.Fatalf("candidate %v below the security floor", w)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty candidate set did not panic")
			}
		}()
		_, th2 := newThread()
		New(th2, Config{MinSize: 1024})
	}()
}

func TestExplorationCyclesThroughCandidates(t *testing.T) {
	_, th := newThread()
	c := New(th, Config{Epoch: 100, ExploitEpochs: 2})
	seen := map[rng.Window]bool{}
	tr := phasedTrace(2000, 1)
	for i := 0; i < len(tr) && i < 100*len(c.cfg.Candidates)+50; i++ {
		seen[c.Window()] = true
		c.Step(tr[i])
	}
	if len(seen) != len(c.cfg.Candidates) {
		t.Errorf("exploration visited %d of %d candidates", len(seen), len(c.cfg.Candidates))
	}
}

func TestSwitchCountAdvances(t *testing.T) {
	_, th := newThread()
	c := New(th, Config{Epoch: 100, ExploitEpochs: 1})
	c.Run(phasedTrace(3000, 1))
	if c.Switches < 2*len(c.cfg.Candidates) {
		t.Errorf("only %d window switches across re-explorations", c.Switches)
	}
}

func TestAdaptiveBeatsWorstStaticOnPhasedWorkload(t *testing.T) {
	// The headline property (the paper's future-work hypothesis): on a
	// workload with alternating phases, the adaptive controller's IPC is
	// (a) at least close to the better static choice and (b) clearly
	// better than the worse static choice.
	const n = 40000
	trace := phasedTrace(n, 2)

	static := func(w rng.Window) float64 {
		m := sim.New(sim.Config{Seed: 1})
		tc := sim.ThreadConfig{}
		if !w.Zero() {
			tc = sim.ThreadConfig{Mode: sim.ModeRandomFill, Window: w}
		}
		return m.RunTrace(tc, trace).IPC()
	}
	demand := static(rng.Window{})
	fwd := static(rng.Window{A: 0, B: 15})

	_, th := newThread()
	c := New(th, Config{Epoch: 5000, ExploitEpochs: 4})
	adaptiveIPC := c.Run(trace).IPC()

	worst, best := demand, fwd
	if worst > best {
		worst, best = best, worst
	}
	if adaptiveIPC < worst {
		t.Errorf("adaptive IPC %.3f below the worst static (%.3f)", adaptiveIPC, worst)
	}
	// Exploration overhead is bounded: within 15%% of the best static.
	if adaptiveIPC < 0.85*best {
		t.Errorf("adaptive IPC %.3f far below the best static (%.3f)", adaptiveIPC, best)
	}
	if c.Switches == 0 {
		t.Error("controller never adapted")
	}
}

func TestAdaptiveTracksPhase(t *testing.T) {
	// During a long streaming phase the controller should settle on a
	// non-demand window; during a long pointer phase, on demand fetch.
	lq, _ := workloads.ByName("libquantum")
	sj, _ := workloads.ByName("sjeng")

	settle := func(tr mem.Trace) rng.Window {
		_, th := newThread()
		// Several explore/exploit rounds so the decisive rounds run in
		// the steady state (the L2 keeps warming for the first rounds).
		c := New(th, Config{Epoch: 8000, ExploitEpochs: 3})
		for i := range tr {
			c.Step(tr[i])
		}
		w, ok := c.Winner()
		if !ok {
			t.Fatal("no exploration round completed")
		}
		return w
	}
	if w := settle(lq.Gen(250000, 1)); w.Zero() {
		t.Errorf("streaming phase settled on %v, want a real window", w)
	}
	if w := settle(sj.Gen(250000, 1)); w.Size() > 8 {
		t.Errorf("pointer-chasing phase settled on %v, want a small window", w)
	}
}
