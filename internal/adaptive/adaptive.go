// Package adaptive implements the paper's stated future work: "Further
// performance improvements with the random fill cache may be possible by
// getting spatial locality profiles for different phases of the program,
// and setting the appropriate window size for each phase" (Section VII).
//
// The Controller tunes a thread's random fill window online: it
// periodically explores a candidate window set for one epoch each, measures
// end-to-end progress (cycles per instruction), locks in the best candidate
// for an exploitation period, and re-explores to track phase changes. The
// reconfiguration uses the same set_RR system interface a compiler or
// runtime would.
//
// Security composes cleanly: a thread handling secret data constrains the
// candidate set to windows no smaller than its secure minimum (the window
// covering its largest table), so adaptation only ever tunes performance
// above the security floor.
package adaptive

import (
	"fmt"

	"randfill/internal/mem"
	"randfill/internal/rng"
	"randfill/internal/sim"
)

// DefaultCandidates is a reasonable exploration set: demand fetch, a short
// and a long forward window, and a bidirectional window.
func DefaultCandidates() []rng.Window {
	return []rng.Window{
		{A: 0, B: 0},
		{A: 0, B: 3},
		{A: 0, B: 15},
		{A: 8, B: 7},
	}
}

// Config tunes the controller.
type Config struct {
	// Candidates are the windows explored (default DefaultCandidates).
	Candidates []rng.Window
	// Epoch is the number of accesses per measurement epoch (default
	// 20000).
	Epoch int
	// ExploitEpochs is how many epochs the winning window is kept before
	// re-exploring (default 8).
	ExploitEpochs int
	// MinSize, when positive, drops candidates whose window size is
	// below it — the security floor for secret-handling threads.
	MinSize int
}

func (c Config) withDefaults() Config {
	if len(c.Candidates) == 0 {
		c.Candidates = DefaultCandidates()
	}
	if c.Epoch == 0 {
		c.Epoch = 20000
	}
	if c.ExploitEpochs == 0 {
		c.ExploitEpochs = 8
	}
	if c.MinSize > 1 {
		kept := c.Candidates[:0:0]
		for _, w := range c.Candidates {
			if w.Size() >= c.MinSize {
				kept = append(kept, w)
			}
		}
		c.Candidates = kept
	}
	return c
}

// Controller drives one thread, adapting its window at epoch boundaries.
type Controller struct {
	cfg    Config
	thread *sim.Thread

	phase        int // exploration progress; -1 = exploiting
	rotation     int // exploration start offset, rotated per round
	warmed       bool
	current      int // candidate currently programmed
	best         int
	bestCPI      float64
	epochAccess  int
	exploitLeft  int
	lastSnapshot sim.Result

	winner int // last exploitation choice, -1 before the first round

	// Switches counts window reconfigurations (set_RR invocations).
	Switches int
}

// New attaches a controller to th. It panics if the candidate set is empty
// after applying the security floor (a configuration error).
func New(th *sim.Thread, cfg Config) *Controller {
	cfg = cfg.withDefaults()
	if len(cfg.Candidates) == 0 {
		panic("adaptive: no candidate windows survive the security floor")
	}
	c := &Controller{cfg: cfg, thread: th, phase: 0, best: -1, winner: -1}
	c.program(c.exploreIdx(0))
	c.lastSnapshot = th.Result()
	return c
}

// Window returns the currently programmed window.
func (c *Controller) Window() rng.Window { return c.cfg.Candidates[c.current] }

// Winner returns the window chosen by the most recent completed
// exploration round, and whether a round has completed yet. Unlike Window,
// it is stable while a new exploration is in progress.
func (c *Controller) Winner() (rng.Window, bool) {
	if c.winner < 0 {
		return rng.Window{}, false
	}
	return c.cfg.Candidates[c.winner], true
}

// Exploring reports whether the controller is in an exploration phase.
func (c *Controller) Exploring() bool { return c.phase >= 0 }

// exploreIdx maps exploration progress to a candidate index. The start
// offset rotates every round so slow drifts in cache warm-up do not
// systematically favor the last-explored candidate.
func (c *Controller) exploreIdx(phase int) int {
	return (phase + c.rotation) % len(c.cfg.Candidates)
}

func (c *Controller) program(idx int) {
	w := c.cfg.Candidates[idx]
	c.thread.Engine().SetRR(w.A, w.B)
	c.current = idx
	c.Switches++
}

// epochCPI returns the cycles-per-instruction of the epoch that just ended
// and rolls the snapshot forward.
func (c *Controller) epochCPI() float64 {
	now := c.thread.Result()
	delta := now.Sub(c.lastSnapshot)
	c.lastSnapshot = now
	if delta.Instructions == 0 {
		return 0
	}
	return delta.Cycles / float64(delta.Instructions)
}

// Step processes one access through the thread and handles epoch
// boundaries.
func (c *Controller) Step(a mem.Access) {
	c.thread.Step(a)
	c.epochAccess++
	if c.epochAccess < c.cfg.Epoch {
		return
	}
	c.epochAccess = 0
	cpi := c.epochCPI()

	if !c.warmed {
		// The first epoch is cache warm-up: its CPI is dominated by
		// cold misses and would bias the first-explored candidate, so
		// it is discarded and exploration starts fresh.
		c.warmed = true
		return
	}

	if c.phase >= 0 {
		// Exploration: record this candidate's CPI, move on.
		if c.best < 0 || cpi < c.bestCPI {
			c.best = c.current
			c.bestCPI = cpi
		}
		c.phase++
		if c.phase < len(c.cfg.Candidates) {
			c.program(c.exploreIdx(c.phase))
			return
		}
		// Exploration over: exploit the winner.
		c.phase = -1
		c.winner = c.best
		c.exploitLeft = c.cfg.ExploitEpochs
		if c.current != c.best {
			c.program(c.best)
		}
		return
	}

	// Exploitation: count down, then re-explore (phase change tracking).
	c.exploitLeft--
	if c.exploitLeft <= 0 {
		c.phase = 0
		c.best = -1
		c.rotation++
		c.program(c.exploreIdx(0))
	}
}

// Run drives a whole trace through the thread with adaptation and returns
// the thread's result.
func (c *Controller) Run(trace mem.Trace) sim.Result {
	for i := range trace {
		c.Step(trace[i])
	}
	c.thread.Drain()
	return c.thread.Result()
}

func (c *Controller) String() string {
	state := "exploit"
	if c.Exploring() {
		state = fmt.Sprintf("explore %d/%d", c.phase+1, len(c.cfg.Candidates))
	}
	return fmt.Sprintf("adaptive(%v, %s, %d switches)", c.Window(), state, c.Switches)
}
