package aes

import (
	"bytes"
	stdaes "crypto/aes"
	"crypto/cipher"
	"testing"
	"testing/quick"

	"randfill/internal/mem"
	"randfill/internal/rng"
)

func TestSboxProperties(t *testing.T) {
	// FIPS-197 anchor values.
	if Sbox(0x00) != 0x63 || Sbox(0x01) != 0x7c || Sbox(0x53) != 0xed || Sbox(0xff) != 0x16 {
		t.Fatalf("S-box anchors wrong: %x %x %x %x", Sbox(0), Sbox(1), Sbox(0x53), Sbox(0xff))
	}
	// Bijectivity and inverse consistency.
	seen := make(map[byte]bool)
	for i := 0; i < 256; i++ {
		s := Sbox(byte(i))
		if seen[s] {
			t.Fatalf("S-box not a permutation: duplicate %#x", s)
		}
		seen[s] = true
		if InvSbox(s) != byte(i) {
			t.Fatalf("InvSbox(Sbox(%#x)) = %#x", i, InvSbox(s))
		}
	}
}

func TestEncryptMatchesStdlib(t *testing.T) {
	src := rng.New(1)
	for trial := 0; trial < 200; trial++ {
		var key, pt [16]byte
		src.Bytes(key[:])
		src.Bytes(pt[:])
		c, err := New(key[:])
		if err != nil {
			t.Fatal(err)
		}
		ref, err := stdaes.NewCipher(key[:])
		if err != nil {
			t.Fatal(err)
		}
		var got, want [16]byte
		c.Encrypt(got[:], pt[:], nil)
		ref.Encrypt(want[:], pt[:])
		if got != want {
			t.Fatalf("trial %d: encrypt mismatch\nkey %x\npt  %x\ngot %x\nwant %x",
				trial, key, pt, got, want)
		}
	}
}

func TestDecryptMatchesStdlib(t *testing.T) {
	src := rng.New(2)
	for trial := 0; trial < 200; trial++ {
		var key, ct [16]byte
		src.Bytes(key[:])
		src.Bytes(ct[:])
		c, err := New(key[:])
		if err != nil {
			t.Fatal(err)
		}
		ref, err := stdaes.NewCipher(key[:])
		if err != nil {
			t.Fatal(err)
		}
		var got, want [16]byte
		c.Decrypt(got[:], ct[:], nil)
		ref.Decrypt(want[:], ct[:])
		if got != want {
			t.Fatalf("trial %d: decrypt mismatch", trial)
		}
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	f := func(key, pt [16]byte) bool {
		c, err := New(key[:])
		if err != nil {
			return false
		}
		var ct, rt [16]byte
		c.Encrypt(ct[:], pt[:], nil)
		c.Decrypt(rt[:], ct[:], nil)
		return rt == pt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeySizes(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil key accepted")
	}
	if _, err := New(make([]byte, 17)); err == nil {
		t.Error("17-byte key accepted")
	}
	// AES-192 and AES-256 validate against the standard library too.
	src := rng.New(8)
	for _, n := range []int{24, 32} {
		for trial := 0; trial < 50; trial++ {
			key := make([]byte, n)
			src.Bytes(key)
			var pt [16]byte
			src.Bytes(pt[:])
			c, err := New(key)
			if err != nil {
				t.Fatal(err)
			}
			wantRounds := map[int]int{24: 12, 32: 14}[n]
			if c.Rounds() != wantRounds {
				t.Fatalf("AES-%d rounds = %d, want %d", n*8, c.Rounds(), wantRounds)
			}
			ref, err := stdaes.NewCipher(key)
			if err != nil {
				t.Fatal(err)
			}
			var got, want, rt [16]byte
			c.Encrypt(got[:], pt[:], nil)
			ref.Encrypt(want[:], pt[:])
			if got != want {
				t.Fatalf("AES-%d encrypt mismatch", n*8)
			}
			c.Decrypt(rt[:], got[:], nil)
			if rt != pt {
				t.Fatalf("AES-%d round trip failed", n*8)
			}
		}
	}
}

func TestCBCMatchesStdlib(t *testing.T) {
	src := rng.New(3)
	var key, iv [16]byte
	src.Bytes(key[:])
	src.Bytes(iv[:])
	pt := make([]byte, 512)
	src.Bytes(pt)

	c, _ := New(key[:])
	got := make([]byte, len(pt))
	if err := c.EncryptCBC(got, pt, iv[:], nil); err != nil {
		t.Fatal(err)
	}

	ref, _ := stdaes.NewCipher(key[:])
	want := make([]byte, len(pt))
	cipher.NewCBCEncrypter(ref, iv[:]).CryptBlocks(want, pt)
	if !bytes.Equal(got, want) {
		t.Fatal("CBC encrypt mismatch vs crypto/cipher")
	}

	rt := make([]byte, len(pt))
	if err := c.DecryptCBC(rt, got, iv[:], nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rt, pt) {
		t.Fatal("CBC round trip failed")
	}
}

func TestCBCErrors(t *testing.T) {
	c, _ := New(make([]byte, 16))
	if err := c.EncryptCBC(make([]byte, 15), make([]byte, 15), make([]byte, 16), nil); err == nil {
		t.Error("partial block accepted")
	}
	if err := c.EncryptCBC(make([]byte, 8), make([]byte, 16), make([]byte, 16), nil); err == nil {
		t.Error("short dst accepted")
	}
	if err := c.EncryptCBC(make([]byte, 16), make([]byte, 16), make([]byte, 8), nil); err == nil {
		t.Error("short iv accepted")
	}
}

// countingRec counts lookups per table and validates callback invariants.
type countingRec struct {
	t      *testing.T
	counts [NumTables]int
	firsts int
	rounds map[int]bool
}

func (r *countingRec) Lookup(table int, index byte, round int, first bool) {
	if table < 0 || table >= NumTables {
		r.t.Fatalf("table id %d out of range", table)
	}
	if round < 1 || round > Rounds {
		r.t.Fatalf("round %d out of range", round)
	}
	r.counts[table]++
	if first {
		r.firsts++
	}
	if r.rounds == nil {
		r.rounds = make(map[int]bool)
	}
	r.rounds[round] = true
}

func TestEncryptLookupCounts(t *testing.T) {
	// Per block: rounds 1..9 use Te0..Te3 (4 lookups each per table),
	// the final round uses Te4 16 times — the paper's "16 table lookups
	// to T4 for each block encryption".
	c, _ := New(make([]byte, 16))
	rec := &countingRec{t: t}
	var out [16]byte
	c.Encrypt(out[:], make([]byte, 16), rec)
	for tab := TableTe0; tab <= TableTe3; tab++ {
		if rec.counts[tab] != 36 {
			t.Errorf("table %d lookups = %d, want 36", tab, rec.counts[tab])
		}
	}
	if rec.counts[TableTe4] != 16 {
		t.Errorf("Te4 lookups = %d, want 16", rec.counts[TableTe4])
	}
	if rec.firsts != Rounds {
		t.Errorf("first-of-round callbacks = %d, want %d", rec.firsts, Rounds)
	}
	if len(rec.rounds) != Rounds {
		t.Errorf("rounds seen = %d", len(rec.rounds))
	}
	for tab := TableTd0; tab <= TableTd4; tab++ {
		if rec.counts[tab] != 0 {
			t.Errorf("encryption touched decryption table %d", tab)
		}
	}
}

func TestDecryptLookupCounts(t *testing.T) {
	c, _ := New(make([]byte, 16))
	rec := &countingRec{t: t}
	var out [16]byte
	c.Decrypt(out[:], make([]byte, 16), rec)
	for tab := TableTd0; tab <= TableTd3; tab++ {
		if rec.counts[tab] != 36 {
			t.Errorf("table %d lookups = %d, want 36", tab, rec.counts[tab])
		}
	}
	if rec.counts[TableTd4] != 16 {
		t.Errorf("Td4 lookups = %d, want 16", rec.counts[TableTd4])
	}
}

// lastRoundRec captures the final-round (Te4) lookup indices in order.
type lastRoundRec struct{ idx []byte }

func (r *lastRoundRec) Lookup(table int, index byte, round int, first bool) {
	if table == TableTe4 {
		r.idx = append(r.idx, index)
	}
}

func TestFinalRoundRelation(t *testing.T) {
	// The final-round attack premise: ciphertext byte c_i = S[x] ^ k10_i
	// where x is the corresponding final-round lookup index. Verify the
	// relation the attack inverts: for every ciphertext byte there is a
	// final-round index x with S[x] = c_i ^ k10_i.
	src := rng.New(4)
	var key, pt [16]byte
	src.Bytes(key[:])
	src.Bytes(pt[:])
	c, _ := New(key[:])
	rec := &lastRoundRec{}
	var ct [16]byte
	c.Encrypt(ct[:], pt[:], rec)
	if len(rec.idx) != 16 {
		t.Fatalf("captured %d final-round lookups", len(rec.idx))
	}
	k10 := c.LastRoundKey()
	// The i-th emitted Te4 lookup feeds output byte position out[i]
	// (column-major emission order in Encrypt matches output bytes
	// 0,1,2,3 of each word u0..u3).
	for i := 0; i < 16; i++ {
		if Sbox(rec.idx[i])^k10[i] != ct[i] {
			t.Fatalf("byte %d: S[x]^k10 = %#x, ct = %#x", i,
				Sbox(rec.idx[i])^k10[i], ct[i])
		}
	}
}

func TestLayoutAddresses(t *testing.T) {
	lay := DefaultLayout()
	for tab := 0; tab < NumTables; tab++ {
		r := lay.TableRegion(tab)
		if r.NumLines() != TableLines {
			t.Errorf("table %d spans %d lines", tab, r.NumLines())
		}
		for idx := 0; idx < 256; idx++ {
			a := lay.LookupAddr(tab, byte(idx))
			if !r.Contains(a) {
				t.Fatalf("lookup addr %#x outside table %d region", uint64(a), tab)
			}
		}
		// 16 entries per line: indices 0..15 share a line, 16 starts
		// the next.
		if lay.LookupLine(tab, 0) != lay.LookupLine(tab, 15) {
			t.Error("indices 0 and 15 on different lines")
		}
		if lay.LookupLine(tab, 15) == lay.LookupLine(tab, 16) {
			t.Error("indices 15 and 16 share a line")
		}
	}
	if len(lay.EncTableRegions()) != 5 || len(lay.AllTableRegions()) != 10 {
		t.Error("region group sizes wrong")
	}
}

func TestTracerBlockTrace(t *testing.T) {
	c, _ := New(make([]byte, 16))
	tr := &Tracer{Cipher: c, Layout: DefaultLayout()}
	ct, trace := tr.EncryptBlock(make([]byte, 16), 0)

	// Ciphertext must match an untraced encryption.
	var want [16]byte
	c.Encrypt(want[:], make([]byte, 16), nil)
	if ct != want {
		t.Fatal("traced encryption produced different ciphertext")
	}

	secret := 0
	lay := DefaultLayout()
	for _, a := range trace {
		if a.Secret {
			secret++
			in := false
			for tab := 0; tab < NumTables; tab++ {
				if lay.TableRegion(tab).Contains(a.Addr) {
					in = true
				}
			}
			if !in {
				t.Fatalf("secret access %#x outside all tables", uint64(a.Addr))
			}
		}
	}
	if secret != 160 {
		t.Errorf("secret accesses = %d, want 160", secret)
	}
	// The paper: security-critical accesses ≈ 24% of data accesses.
	frac := float64(secret) / float64(len(trace))
	if frac < 0.20 || frac > 0.30 {
		t.Errorf("secret fraction = %.3f, want ≈ 0.24", frac)
	}
}

func TestTracerCBCTraceAndResult(t *testing.T) {
	src := rng.New(5)
	var key, iv [16]byte
	src.Bytes(key[:])
	src.Bytes(iv[:])
	pt := make([]byte, 1024)
	src.Bytes(pt)

	c, _ := New(key[:])
	tr := &Tracer{Cipher: c, Layout: DefaultLayout()}
	ct, trace, err := tr.EncryptCBC(pt, iv[:])
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, len(pt))
	if err := c.EncryptCBC(want, pt, iv[:], nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ct, want) {
		t.Fatal("traced CBC ciphertext mismatch")
	}
	blocks := len(pt) / 16
	if secret := countSecret(trace); secret != 160*blocks {
		t.Errorf("secret accesses = %d, want %d", secret, 160*blocks)
	}

	rt, dtrace, err := tr.DecryptCBC(ct, iv[:])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rt, pt) {
		t.Fatal("traced CBC decrypt round trip failed")
	}
	if secret := countSecret(dtrace); secret != 160*blocks {
		t.Errorf("decrypt secret accesses = %d", secret)
	}
}

func countSecret(tr mem.Trace) int {
	n := 0
	for _, a := range tr {
		if a.Secret {
			n++
		}
	}
	return n
}

func TestLastRoundKeyMatchesSchedule(t *testing.T) {
	// Round-trip check through stdlib: encrypting the zero block and
	// XORing out the last-round key must equal the S-box of the
	// final-round state — indirectly validated by TestFinalRoundRelation;
	// here just check determinism and length.
	c, _ := New([]byte("0123456789abcdef"))
	k1 := c.LastRoundKey()
	k2 := c.LastRoundKey()
	if k1 != k2 {
		t.Error("LastRoundKey not deterministic")
	}
}
