package aes

import (
	"encoding/binary"
	"fmt"

	"randfill/internal/ctsafe"
)

// This file is the constant-time defense path: the same cipher as
// Encrypt/Decrypt but built from internal/ctsafe primitives, so no memory
// access, branch, or variable-latency instruction depends on the key. It
// is the software analogue of the paper's hardware defenses — where the
// random fill cache de-correlates the leaky implementation's footprint,
// this implementation removes the footprint altogether, at the cost of a
// full S-box scan per byte. The ctflow checker proves the property: these
// functions contribute zero entries to LEAKS.json.

// NewCT expands a key into a Cipher using the uniform-access key schedule.
// The resulting schedule is bit-identical to New's; only the expansion's
// access pattern differs.
func NewCT(key []byte) (*Cipher, error) {
	c := &Cipher{}
	if err := c.SetKeyCT(key); err != nil {
		return nil, err
	}
	return c, nil
}

// SetKeyCT re-keys the cipher in place like SetKey, with uniform-access
// S-box lookups in the expansion.
func (c *Cipher) SetKeyCT(key []byte) error {
	switch len(key) {
	case 16:
		c.rounds = 10
	case 24:
		c.rounds = 12
	case 32:
		c.rounds = 14
	default:
		return fmt.Errorf("aes: invalid key size %d (want 16, 24 or 32)", len(key))
	}
	c.decValid = false
	c.expandKeyCT(key)
	return nil
}

// subWordCT is subWord with masked full-table S-box scans.
func subWordCT(w uint32) uint32 {
	return uint32(ctsafe.LookupByte(&sbox, byte(w>>24)))<<24 |
		uint32(ctsafe.LookupByte(&sbox, byte(w>>16)))<<16 |
		uint32(ctsafe.LookupByte(&sbox, byte(w>>8)))<<8 |
		uint32(ctsafe.LookupByte(&sbox, byte(w)))
}

func (c *Cipher) expandKeyCT(key []byte) {
	nk := len(key) / 4
	n := 4 * (c.rounds + 1)
	if cap(c.enc) < n {
		c.enc = make([]uint32, n)
	}
	c.enc = c.enc[:n]
	for i := 0; i < nk; i++ {
		c.enc[i] = binary.BigEndian.Uint32(key[4*i:])
	}
	for i := nk; i < n; i++ {
		t := c.enc[i-1]
		switch {
		case i%nk == 0:
			t = subWordCT(rotWord(t)) ^ uint32(rcon[i/nk-1])<<24
		case nk > 6 && i%nk == 4:
			t = subWordCT(t)
		}
		c.enc[i] = c.enc[i-nk] ^ t
	}
}

// EncryptCT encrypts one 16-byte block from src into dst (which may
// alias) with a key-independent access pattern: byte-wise SubBytes via
// masked S-box scans and arithmetic-mask MixColumns instead of the Te
// tables. There is no Recorder parameter — a uniform trace would record
// nothing an attacker could use, and the experiments use this path as the
// leak-free control.
func (c *Cipher) EncryptCT(dst, src []byte) {
	_ = src[15]
	_ = dst[15]

	// Round keys as bytes, column-major like the state.
	var rk [240]byte
	n := 4 * (c.rounds + 1)
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint32(rk[4*i:], c.enc[i])
	}

	// State bytes in FIPS-197 column-major order: s[4*col+row].
	var s [16]byte
	for i := 0; i < 16; i++ {
		s[i] = src[i] ^ rk[i]
	}

	for r := 1; r < c.rounds; r++ {
		subShiftCT(&s)
		for col := 0; col < 4; col++ {
			a0, a1, a2, a3 := s[4*col], s[4*col+1], s[4*col+2], s[4*col+3]
			s[4*col] = ctsafe.Xtime(a0) ^ ctsafe.Xtime(a1) ^ a1 ^ a2 ^ a3
			s[4*col+1] = a0 ^ ctsafe.Xtime(a1) ^ ctsafe.Xtime(a2) ^ a2 ^ a3
			s[4*col+2] = a0 ^ a1 ^ ctsafe.Xtime(a2) ^ ctsafe.Xtime(a3) ^ a3
			s[4*col+3] = ctsafe.Xtime(a0) ^ a0 ^ a1 ^ a2 ^ ctsafe.Xtime(a3)
		}
		for i := 0; i < 16; i++ {
			s[i] ^= rk[16*r+i]
		}
	}

	subShiftCT(&s)
	for i := 0; i < 16; i++ {
		dst[i] = s[i] ^ rk[16*c.rounds+i]
	}
}

// subShiftCT applies SubBytes (masked scans) and ShiftRows (a fixed
// permutation) in place.
func subShiftCT(s *[16]byte) {
	var t [16]byte
	for row := 0; row < 4; row++ {
		for col := 0; col < 4; col++ {
			t[4*col+row] = ctsafe.LookupByte(&sbox, s[4*((col+row)%4)+row])
		}
	}
	*s = t
}
