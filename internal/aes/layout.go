package aes

import (
	"randfill/internal/mem"
)

// Layout places the cipher's data structures in the simulated address
// space. Each lookup table is 1 KB (256 four-byte entries, 16 cache lines);
// the ten tables are contiguous, as they would be in a shared library's
// read-only data segment.
type Layout struct {
	Tables    [NumTables]mem.Addr
	RoundKeys mem.Addr // 176 bytes (11 round keys)
	Stack     mem.Addr // hot stack frame region
	Input     mem.Addr // plaintext buffer
	Output    mem.Addr // ciphertext buffer
}

// TableSize is the byte size of one lookup table.
const TableSize = 1024

// TableLines is the number of cache lines per table (M = 16 in the paper's
// case study: 1 KB table, 64-byte lines).
const TableLines = TableSize / mem.LineSize

// EntriesPerLine is the number of 4-byte table entries per cache line.
const EntriesPerLine = mem.LineSize / 4

// DefaultLayout returns the address-space placement used by all experiments.
// The regions carry distinct line offsets so they do not all alias to the
// same cache sets in small direct-mapped configurations (as a real process
// layout, with tables in .rodata, round keys and buffers on the heap and
// locals on the stack, would not).
func DefaultLayout() Layout {
	var l Layout
	for i := 0; i < NumTables; i++ {
		l.Tables[i] = mem.Addr(0x10000 + i*TableSize)
	}
	l.RoundKeys = 0x20000 + 37*mem.LineSize
	l.Stack = 0x30000 + 101*mem.LineSize
	l.Input = 0x40000 + 211*mem.LineSize
	l.Output = 0x80000 + 331*mem.LineSize
	return l
}

// TableRegion returns the memory region of table t (0..NumTables-1).
func (l Layout) TableRegion(t int) mem.Region {
	return mem.Region{Base: l.Tables[t], Size: TableSize}
}

// EncTableRegions returns the five encryption-table regions (the
// security-critical data to protect for an encryption-only workload).
func (l Layout) EncTableRegions() []mem.Region {
	out := make([]mem.Region, 5)
	for i := 0; i < 5; i++ {
		out[i] = l.TableRegion(TableTe0 + i)
	}
	return out
}

// AllTableRegions returns all ten table regions (encryption + decryption).
func (l Layout) AllTableRegions() []mem.Region {
	out := make([]mem.Region, NumTables)
	for i := range out {
		out[i] = l.TableRegion(i)
	}
	return out
}

// LookupAddr returns the byte address of entry index in table t.
func (l Layout) LookupAddr(t int, index byte) mem.Addr {
	return l.Tables[t] + mem.Addr(index)*4
}

// LookupLine returns the cache line of entry index in table t; within a
// table, lines are numbered 0..TableLines-1 by index >> 4.
func (l Layout) LookupLine(t int, index byte) mem.Line {
	return mem.LineOf(l.LookupAddr(t, index))
}

// TraceOpts tunes the instruction mix of generated traces. The defaults
// reproduce the paper's observation that security-critical accesses are
// about 24% of all data-cache accesses in the AES workload.
type TraceOpts struct {
	// StackPerLookup is the number of hot stack-region accesses emitted
	// around each table lookup (default 3 → 160 lookups / ~662 accesses
	// ≈ 24% security-critical).
	StackPerLookup int
	// NonMem is the number of non-memory instructions preceding each
	// memory access (default 2).
	NonMem uint32
}

func (o TraceOpts) withDefaults() TraceOpts {
	if o.StackPerLookup == 0 {
		o.StackPerLookup = 3
	}
	if o.NonMem == 0 {
		o.NonMem = 2
	}
	return o
}

// stackLines is the number of cache lines in the hot stack region.
const stackLines = 4

// traceRec builds a mem.Trace from the cipher's lookup callbacks,
// interleaving the non-table accesses (round keys, stack traffic) a real
// execution performs.
type traceRec struct {
	lay    Layout
	opts   TraceOpts
	trace  mem.Trace
	stack  int // rotating stack-line cursor
	rkWord int // rotating round-key word cursor
}

func (r *traceRec) add(a mem.Access) { r.trace = append(r.trace, a) }

func (r *traceRec) stackAccess(kind mem.Kind) {
	addr := r.lay.Stack + mem.Addr((r.stack%stackLines)*mem.LineSize) + mem.Addr(r.stack*8%mem.LineSize)
	r.stack++
	r.add(mem.Access{Addr: addr, Kind: kind, NonMem: r.opts.NonMem})
}

func (r *traceRec) roundKeyReads(n int) {
	for i := 0; i < n; i++ {
		addr := r.lay.RoundKeys + mem.Addr((r.rkWord%44)*4)
		r.rkWord++
		r.add(mem.Access{Addr: addr, Kind: mem.Read, NonMem: r.opts.NonMem})
	}
}

// Lookup implements Recorder.
func (r *traceRec) Lookup(table int, index byte, round int, first bool) {
	if first {
		// Round boundary: the four round-key words are read.
		r.roundKeyReads(4)
	}
	for i := 0; i < r.opts.StackPerLookup; i++ {
		kind := mem.Read
		if i == r.opts.StackPerLookup-1 {
			kind = mem.Write
		}
		r.stackAccess(kind)
	}
	r.add(mem.Access{
		Addr:      r.lay.LookupAddr(table, index),
		Kind:      mem.Read,
		NonMem:    r.opts.NonMem,
		Dependent: first,
		Secret:    true,
	})
}

func (r *traceRec) bufferIO(base mem.Addr, off int, kind mem.Kind) {
	for i := 0; i < 4; i++ {
		r.add(mem.Access{Addr: base + mem.Addr(off+i*4), Kind: kind, NonMem: r.opts.NonMem})
	}
}

// Tracer generates memory access traces for cipher executions under a given
// layout. Use it by pointer: EncryptBlockInto keeps a persistent recorder
// (a per-call recorder would escape through the Recorder interface).
type Tracer struct {
	Cipher *Cipher
	Layout Layout
	Opts   TraceOpts

	rec traceRec
}

// EncryptBlock encrypts one block at buffer offset off and returns the
// ciphertext together with the block's memory access trace. The trace is
// freshly allocated; measurement loops should use EncryptBlockInto with a
// reused buffer instead.
func (t *Tracer) EncryptBlock(src []byte, off int) ([BlockSize]byte, mem.Trace) {
	return t.EncryptBlockInto(nil, src, off)
}

// EncryptBlockInto is the allocation-free form of EncryptBlock: the block's
// accesses are appended to buf (pass a recycled slice truncated to
// length 0) and the grown slice is returned. The per-sample attack loops
// call this once per encryption.
func (t *Tracer) EncryptBlockInto(buf mem.Trace, src []byte, off int) ([BlockSize]byte, mem.Trace) {
	rec := &t.rec
	rec.lay = t.Layout
	rec.opts = t.Opts.withDefaults()
	rec.trace = buf
	rec.stack = 0
	rec.rkWord = 0
	rec.bufferIO(t.Layout.Input, off, mem.Read)
	rec.roundKeyReads(4) // initial AddRoundKey
	var dst [BlockSize]byte
	t.Cipher.Encrypt(dst[:], src, rec)
	rec.bufferIO(t.Layout.Output, off, mem.Write)
	out := rec.trace
	rec.trace = nil
	return dst, out
}

// EncryptCBC encrypts src in CBC mode and returns the ciphertext and the
// whole run's access trace.
func (t *Tracer) EncryptCBC(src, iv []byte) ([]byte, mem.Trace, error) {
	rec := &traceRec{lay: t.Layout, opts: t.Opts.withDefaults()}
	dst := make([]byte, len(src))
	// CBC processes block by block; buffer traffic is interleaved by
	// encrypting per block through the low-level API so buffer reads and
	// writes land at the right positions in the trace.
	var chain [BlockSize]byte
	copy(chain[:], iv)
	var x [BlockSize]byte
	for off := 0; off < len(src); off += BlockSize {
		rec.bufferIO(t.Layout.Input, off, mem.Read)
		rec.roundKeyReads(4)
		for i := 0; i < BlockSize; i++ {
			x[i] = src[off+i] ^ chain[i]
		}
		t.Cipher.Encrypt(dst[off:off+BlockSize], x[:], rec)
		rec.bufferIO(t.Layout.Output, off, mem.Write)
		copy(chain[:], dst[off:off+BlockSize])
	}
	return dst, rec.trace, nil
}

// DecryptCBC decrypts src in CBC mode and returns the plaintext and trace.
func (t *Tracer) DecryptCBC(src, iv []byte) ([]byte, mem.Trace, error) {
	rec := &traceRec{lay: t.Layout, opts: t.Opts.withDefaults()}
	dst := make([]byte, len(src))
	var chain, next [BlockSize]byte
	copy(chain[:], iv)
	for off := 0; off < len(src); off += BlockSize {
		rec.bufferIO(t.Layout.Input, off, mem.Read)
		rec.roundKeyReads(4)
		copy(next[:], src[off:off+BlockSize])
		t.Cipher.Decrypt(dst[off:off+BlockSize], src[off:off+BlockSize], rec)
		for i := 0; i < BlockSize; i++ {
			dst[off+i] ^= chain[i]
		}
		rec.bufferIO(t.Layout.Output, off, mem.Write)
		chain = next
	}
	return dst, rec.trace, nil
}
