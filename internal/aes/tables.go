// Package aes implements a table-based AES-128 cipher with the same lookup
// table structure as OpenSSL's C implementation: four 1 KB tables Te0..Te3
// for the main encryption rounds plus a 1 KB table Te4 for the final round,
// and the corresponding Td0..Td4 for decryption — ten 1 KB tables in total,
// exactly the security-critical data set of the paper's case study
// (Section II.C).
//
// The package provides both a plain software cipher (validated against
// crypto/aes in tests) and traced encryption/decryption that reports every
// key-dependent table lookup to a recorder, from which memory access traces
// for the cache simulator are built.
package aes

// The tables are generated at package initialization from GF(2^8)
// arithmetic rather than embedded as literals, and are validated against
// crypto/aes by the test suite.

var (
	sbox    [256]byte
	invSbox [256]byte

	te0, te1, te2, te3, te4 [256]uint32
	td0, td1, td2, td3, td4 [256]uint32

	rcon [10]byte
)

// xtime multiplies by x (i.e. 2) in GF(2^8) with the AES polynomial.
func xtime(b byte) byte {
	v := b << 1
	if b&0x80 != 0 {
		v ^= 0x1b
	}
	return v
}

// gmul multiplies a and b in GF(2^8).
func gmul(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		a = xtime(a)
		b >>= 1
	}
	return p
}

func rotl8(b byte, n uint) byte { return b<<n | b>>(8-n) }

func init() {
	// S-box: multiplicative inverse followed by the affine transform.
	// Inverses are generated from log/antilog tables over generator 3.
	var alog [256]byte
	var log [256]byte
	p := byte(1)
	for i := 0; i < 255; i++ {
		alog[i] = p
		log[p] = byte(i)
		p = gmul(p, 3)
	}
	inv := func(b byte) byte {
		if b == 0 {
			return 0
		}
		return alog[(255-int(log[b]))%255]
	}
	for i := 0; i < 256; i++ {
		v := inv(byte(i))
		s := v ^ rotl8(v, 1) ^ rotl8(v, 2) ^ rotl8(v, 3) ^ rotl8(v, 4) ^ 0x63
		sbox[i] = s
		invSbox[s] = byte(i)
	}

	// Round constants.
	c := byte(1)
	for i := range rcon {
		rcon[i] = c
		c = xtime(c)
	}

	// Encryption T-tables: Te0[x] = word(2s, s, s, 3s) with rotations.
	for i := 0; i < 256; i++ {
		s := sbox[i]
		w := uint32(gmul(s, 2))<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(gmul(s, 3))
		te0[i] = w
		te1[i] = w>>8 | w<<24
		te2[i] = w>>16 | w<<16
		te3[i] = w>>24 | w<<8
		// Te4: the S-box byte replicated into all four byte lanes,
		// as in OpenSSL's final-round table.
		te4[i] = uint32(s) * 0x01010101
	}

	// Decryption T-tables: Td0[x] = word(0e·is, 09·is, 0d·is, 0b·is)
	// where is = InvSbox[x].
	for i := 0; i < 256; i++ {
		s := invSbox[i]
		w := uint32(gmul(s, 0x0e))<<24 | uint32(gmul(s, 0x09))<<16 |
			uint32(gmul(s, 0x0d))<<8 | uint32(gmul(s, 0x0b))
		td0[i] = w
		td1[i] = w>>8 | w<<24
		td2[i] = w>>16 | w<<16
		td3[i] = w>>24 | w<<8
		td4[i] = uint32(s) * 0x01010101
	}
}

// Sbox returns S-box entry i (exported for tests and attack tooling).
func Sbox(i byte) byte { return sbox[i] }

// InvSbox returns the inverse S-box entry i.
func InvSbox(i byte) byte { return invSbox[i] }
