package aes

import (
	"encoding/binary"
	"fmt"
)

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// KeySize is the key size in bytes of the paper's case study (AES-128);
// 24- and 32-byte keys (AES-192/-256) are also supported, as the paper's
// background section notes ("three possible key sizes: 128, 192, 256
// bits ... 10, 12 or 14 rounds").
const KeySize = 16

// Rounds is the round count for AES-128 keys (Cipher.Rounds reports the
// actual count for longer keys).
const Rounds = 10

// Cipher holds the expanded encryption and decryption key schedules.
type Cipher struct {
	enc []uint32
	// dec is the equivalent inverse cipher schedule, built lazily on first
	// Decrypt: its InvMixColumns expansion costs ~40 gmul field
	// multiplications per round key, which encryption-only workloads (the
	// Monte Carlo analyses re-key per trial) should never pay.
	dec      []uint32
	decValid bool
	rounds   int
}

// New expands a 16-, 24- or 32-byte key into a Cipher (AES-128/-192/-256).
func New(key []byte) (*Cipher, error) {
	c := &Cipher{}
	if err := c.SetKey(key); err != nil {
		return nil, err
	}
	return c, nil
}

// SetKey re-keys the cipher in place, reusing the schedule storage, so
// per-trial re-keying loops do not allocate. It accepts the same key sizes
// as New.
func (c *Cipher) SetKey(key []byte) error {
	switch len(key) {
	case 16:
		c.rounds = 10
	case 24:
		c.rounds = 12
	case 32:
		c.rounds = 14
	default:
		return fmt.Errorf("aes: invalid key size %d (want 16, 24 or 32)", len(key))
	}
	c.decValid = false
	c.expandKey(key)
	return nil
}

// Rounds returns the cipher's round count (10, 12 or 14).
func (c *Cipher) Rounds() int { return c.rounds }

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[w>>16&0xff])<<16 |
		uint32(sbox[w>>8&0xff])<<8 | uint32(sbox[w&0xff])
}

func rotWord(w uint32) uint32 { return w<<8 | w>>24 }

// imcWord applies InvMixColumns to one column word.
func imcWord(w uint32) uint32 {
	b0, b1, b2, b3 := byte(w>>24), byte(w>>16), byte(w>>8), byte(w)
	return uint32(gmul(b0, 0x0e)^gmul(b1, 0x0b)^gmul(b2, 0x0d)^gmul(b3, 0x09))<<24 |
		uint32(gmul(b0, 0x09)^gmul(b1, 0x0e)^gmul(b2, 0x0b)^gmul(b3, 0x0d))<<16 |
		uint32(gmul(b0, 0x0d)^gmul(b1, 0x09)^gmul(b2, 0x0e)^gmul(b3, 0x0b))<<8 |
		uint32(gmul(b0, 0x0b)^gmul(b1, 0x0d)^gmul(b2, 0x09)^gmul(b3, 0x0e))
}

func (c *Cipher) expandKey(key []byte) {
	nk := len(key) / 4
	n := 4 * (c.rounds + 1)
	if cap(c.enc) < n {
		c.enc = make([]uint32, n)
	}
	c.enc = c.enc[:n]
	for i := 0; i < nk; i++ {
		c.enc[i] = binary.BigEndian.Uint32(key[4*i:])
	}
	for i := nk; i < n; i++ {
		t := c.enc[i-1]
		switch {
		case i%nk == 0:
			t = subWord(rotWord(t)) ^ uint32(rcon[i/nk-1])<<24
		case nk > 6 && i%nk == 4:
			t = subWord(t)
		}
		c.enc[i] = c.enc[i-nk] ^ t
	}
}

// decSchedule builds the equivalent inverse cipher key schedule on first
// use: reverse round order and apply InvMixColumns to the inner round keys.
func (c *Cipher) decSchedule() {
	if c.decValid {
		return
	}
	n := 4 * (c.rounds + 1)
	if cap(c.dec) < n {
		c.dec = make([]uint32, n)
	}
	c.dec = c.dec[:n]
	for i := 0; i < n; i += 4 {
		for j := 0; j < 4; j++ {
			w := c.enc[n-4-i+j]
			if i > 0 && i < n-4 {
				w = imcWord(w)
			}
			c.dec[i+j] = w
		}
	}
	c.decValid = true
}

// LastRoundKey returns the final round key as 16 bytes; the final-round
// collision attack recovers XOR relations between its bytes.
func (c *Cipher) LastRoundKey() [16]byte {
	var out [16]byte
	for i := 0; i < 4; i++ {
		binary.BigEndian.PutUint32(out[4*i:], c.enc[4*c.rounds+i])
	}
	return out
}

// Recorder observes the key-dependent table lookups of a traced encryption
// or decryption. Table ids are 0..4 for Te0..Te4 and 5..9 for Td0..Td4;
// index is the byte index into the 256-entry table; round is 1..Rounds();
// first reports whether this is the first lookup of its round (used by the
// timing model to approximate the round-to-round data dependence).
type Recorder interface {
	Lookup(table int, index byte, round int, first bool)
}

// Table ids passed to Recorder.Lookup.
const (
	TableTe0 = iota
	TableTe1
	TableTe2
	TableTe3
	TableTe4
	TableTd0
	TableTd1
	TableTd2
	TableTd3
	TableTd4
	NumTables
)

// Encrypt encrypts one 16-byte block from src into dst (which may alias).
// If rec is non-nil every table lookup is reported to it.
func (c *Cipher) Encrypt(dst, src []byte, rec Recorder) {
	_ = src[15]
	_ = dst[15]
	s0 := binary.BigEndian.Uint32(src[0:]) ^ c.enc[0]
	s1 := binary.BigEndian.Uint32(src[4:]) ^ c.enc[1]
	s2 := binary.BigEndian.Uint32(src[8:]) ^ c.enc[2]
	s3 := binary.BigEndian.Uint32(src[12:]) ^ c.enc[3]

	var t0, t1, t2, t3 uint32
	k := 4
	for r := 1; r < c.rounds; r++ {
		if rec != nil {
			rec.Lookup(TableTe0, byte(s0>>24), r, true)
			rec.Lookup(TableTe1, byte(s1>>16), r, false)
			rec.Lookup(TableTe2, byte(s2>>8), r, false)
			rec.Lookup(TableTe3, byte(s3), r, false)
			rec.Lookup(TableTe0, byte(s1>>24), r, false)
			rec.Lookup(TableTe1, byte(s2>>16), r, false)
			rec.Lookup(TableTe2, byte(s3>>8), r, false)
			rec.Lookup(TableTe3, byte(s0), r, false)
			rec.Lookup(TableTe0, byte(s2>>24), r, false)
			rec.Lookup(TableTe1, byte(s3>>16), r, false)
			rec.Lookup(TableTe2, byte(s0>>8), r, false)
			rec.Lookup(TableTe3, byte(s1), r, false)
			rec.Lookup(TableTe0, byte(s3>>24), r, false)
			rec.Lookup(TableTe1, byte(s0>>16), r, false)
			rec.Lookup(TableTe2, byte(s1>>8), r, false)
			rec.Lookup(TableTe3, byte(s2), r, false)
		}
		t0 = te0[s0>>24] ^ te1[s1>>16&0xff] ^ te2[s2>>8&0xff] ^ te3[s3&0xff] ^ c.enc[k]
		t1 = te0[s1>>24] ^ te1[s2>>16&0xff] ^ te2[s3>>8&0xff] ^ te3[s0&0xff] ^ c.enc[k+1]
		t2 = te0[s2>>24] ^ te1[s3>>16&0xff] ^ te2[s0>>8&0xff] ^ te3[s1&0xff] ^ c.enc[k+2]
		t3 = te0[s3>>24] ^ te1[s0>>16&0xff] ^ te2[s1>>8&0xff] ^ te3[s2&0xff] ^ c.enc[k+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}

	// Final round: Te4 (replicated S-box), no MixColumns.
	if rec != nil {
		rec.Lookup(TableTe4, byte(s0>>24), c.rounds, true)
		rec.Lookup(TableTe4, byte(s1>>16), c.rounds, false)
		rec.Lookup(TableTe4, byte(s2>>8), c.rounds, false)
		rec.Lookup(TableTe4, byte(s3), c.rounds, false)
		rec.Lookup(TableTe4, byte(s1>>24), c.rounds, false)
		rec.Lookup(TableTe4, byte(s2>>16), c.rounds, false)
		rec.Lookup(TableTe4, byte(s3>>8), c.rounds, false)
		rec.Lookup(TableTe4, byte(s0), c.rounds, false)
		rec.Lookup(TableTe4, byte(s2>>24), c.rounds, false)
		rec.Lookup(TableTe4, byte(s3>>16), c.rounds, false)
		rec.Lookup(TableTe4, byte(s0>>8), c.rounds, false)
		rec.Lookup(TableTe4, byte(s1), c.rounds, false)
		rec.Lookup(TableTe4, byte(s3>>24), c.rounds, false)
		rec.Lookup(TableTe4, byte(s0>>16), c.rounds, false)
		rec.Lookup(TableTe4, byte(s1>>8), c.rounds, false)
		rec.Lookup(TableTe4, byte(s2), c.rounds, false)
	}
	u0 := te4[s0>>24]&0xff000000 ^ te4[s1>>16&0xff]&0x00ff0000 ^
		te4[s2>>8&0xff]&0x0000ff00 ^ te4[s3&0xff]&0x000000ff ^ c.enc[k]
	u1 := te4[s1>>24]&0xff000000 ^ te4[s2>>16&0xff]&0x00ff0000 ^
		te4[s3>>8&0xff]&0x0000ff00 ^ te4[s0&0xff]&0x000000ff ^ c.enc[k+1]
	u2 := te4[s2>>24]&0xff000000 ^ te4[s3>>16&0xff]&0x00ff0000 ^
		te4[s0>>8&0xff]&0x0000ff00 ^ te4[s1&0xff]&0x000000ff ^ c.enc[k+2]
	u3 := te4[s3>>24]&0xff000000 ^ te4[s0>>16&0xff]&0x00ff0000 ^
		te4[s1>>8&0xff]&0x0000ff00 ^ te4[s2&0xff]&0x000000ff ^ c.enc[k+3]

	binary.BigEndian.PutUint32(dst[0:], u0)
	binary.BigEndian.PutUint32(dst[4:], u1)
	binary.BigEndian.PutUint32(dst[8:], u2)
	binary.BigEndian.PutUint32(dst[12:], u3)
}

// Decrypt decrypts one 16-byte block from src into dst (which may alias).
// If rec is non-nil every table lookup is reported to it.
func (c *Cipher) Decrypt(dst, src []byte, rec Recorder) {
	_ = src[15]
	_ = dst[15]
	c.decSchedule()
	s0 := binary.BigEndian.Uint32(src[0:]) ^ c.dec[0]
	s1 := binary.BigEndian.Uint32(src[4:]) ^ c.dec[1]
	s2 := binary.BigEndian.Uint32(src[8:]) ^ c.dec[2]
	s3 := binary.BigEndian.Uint32(src[12:]) ^ c.dec[3]

	var t0, t1, t2, t3 uint32
	k := 4
	for r := 1; r < c.rounds; r++ {
		if rec != nil {
			rec.Lookup(TableTd0, byte(s0>>24), r, true)
			rec.Lookup(TableTd1, byte(s3>>16), r, false)
			rec.Lookup(TableTd2, byte(s2>>8), r, false)
			rec.Lookup(TableTd3, byte(s1), r, false)
			rec.Lookup(TableTd0, byte(s1>>24), r, false)
			rec.Lookup(TableTd1, byte(s0>>16), r, false)
			rec.Lookup(TableTd2, byte(s3>>8), r, false)
			rec.Lookup(TableTd3, byte(s2), r, false)
			rec.Lookup(TableTd0, byte(s2>>24), r, false)
			rec.Lookup(TableTd1, byte(s1>>16), r, false)
			rec.Lookup(TableTd2, byte(s0>>8), r, false)
			rec.Lookup(TableTd3, byte(s3), r, false)
			rec.Lookup(TableTd0, byte(s3>>24), r, false)
			rec.Lookup(TableTd1, byte(s2>>16), r, false)
			rec.Lookup(TableTd2, byte(s1>>8), r, false)
			rec.Lookup(TableTd3, byte(s0), r, false)
		}
		t0 = td0[s0>>24] ^ td1[s3>>16&0xff] ^ td2[s2>>8&0xff] ^ td3[s1&0xff] ^ c.dec[k]
		t1 = td0[s1>>24] ^ td1[s0>>16&0xff] ^ td2[s3>>8&0xff] ^ td3[s2&0xff] ^ c.dec[k+1]
		t2 = td0[s2>>24] ^ td1[s1>>16&0xff] ^ td2[s0>>8&0xff] ^ td3[s3&0xff] ^ c.dec[k+2]
		t3 = td0[s3>>24] ^ td1[s2>>16&0xff] ^ td2[s1>>8&0xff] ^ td3[s0&0xff] ^ c.dec[k+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}

	if rec != nil {
		rec.Lookup(TableTd4, byte(s0>>24), c.rounds, true)
		rec.Lookup(TableTd4, byte(s3>>16), c.rounds, false)
		rec.Lookup(TableTd4, byte(s2>>8), c.rounds, false)
		rec.Lookup(TableTd4, byte(s1), c.rounds, false)
		rec.Lookup(TableTd4, byte(s1>>24), c.rounds, false)
		rec.Lookup(TableTd4, byte(s0>>16), c.rounds, false)
		rec.Lookup(TableTd4, byte(s3>>8), c.rounds, false)
		rec.Lookup(TableTd4, byte(s2), c.rounds, false)
		rec.Lookup(TableTd4, byte(s2>>24), c.rounds, false)
		rec.Lookup(TableTd4, byte(s1>>16), c.rounds, false)
		rec.Lookup(TableTd4, byte(s0>>8), c.rounds, false)
		rec.Lookup(TableTd4, byte(s3), c.rounds, false)
		rec.Lookup(TableTd4, byte(s3>>24), c.rounds, false)
		rec.Lookup(TableTd4, byte(s2>>16), c.rounds, false)
		rec.Lookup(TableTd4, byte(s1>>8), c.rounds, false)
		rec.Lookup(TableTd4, byte(s0), c.rounds, false)
	}
	u0 := td4[s0>>24]&0xff000000 ^ td4[s3>>16&0xff]&0x00ff0000 ^
		td4[s2>>8&0xff]&0x0000ff00 ^ td4[s1&0xff]&0x000000ff ^ c.dec[k]
	u1 := td4[s1>>24]&0xff000000 ^ td4[s0>>16&0xff]&0x00ff0000 ^
		td4[s3>>8&0xff]&0x0000ff00 ^ td4[s2&0xff]&0x000000ff ^ c.dec[k+1]
	u2 := td4[s2>>24]&0xff000000 ^ td4[s1>>16&0xff]&0x00ff0000 ^
		td4[s0>>8&0xff]&0x0000ff00 ^ td4[s3&0xff]&0x000000ff ^ c.dec[k+2]
	u3 := td4[s3>>24]&0xff000000 ^ td4[s2>>16&0xff]&0x00ff0000 ^
		td4[s1>>8&0xff]&0x0000ff00 ^ td4[s0&0xff]&0x000000ff ^ c.dec[k+3]

	binary.BigEndian.PutUint32(dst[0:], u0)
	binary.BigEndian.PutUint32(dst[4:], u1)
	binary.BigEndian.PutUint32(dst[8:], u2)
	binary.BigEndian.PutUint32(dst[12:], u3)
}

// EncryptCBC encrypts src (a multiple of BlockSize) into dst using CBC mode
// with iv, reporting lookups to rec if non-nil. This is the paper's
// performance workload: "OpenSSL's AES encryption that takes a 32 KB random
// input and does a cipher block chaining (CBC) mode of encryption."
func (c *Cipher) EncryptCBC(dst, src, iv []byte, rec Recorder) error {
	if len(src)%BlockSize != 0 {
		return fmt.Errorf("aes: CBC input length %d not a multiple of %d", len(src), BlockSize)
	}
	if len(dst) < len(src) {
		return fmt.Errorf("aes: CBC output too short: %d < %d", len(dst), len(src))
	}
	if len(iv) != BlockSize {
		return fmt.Errorf("aes: CBC iv length %d (want %d)", len(iv), BlockSize)
	}
	var chain [BlockSize]byte
	copy(chain[:], iv)
	var x [BlockSize]byte
	for off := 0; off < len(src); off += BlockSize {
		for i := 0; i < BlockSize; i++ {
			x[i] = src[off+i] ^ chain[i]
		}
		c.Encrypt(dst[off:off+BlockSize], x[:], rec)
		copy(chain[:], dst[off:off+BlockSize])
	}
	return nil
}

// DecryptCBC decrypts src into dst using CBC mode with iv.
func (c *Cipher) DecryptCBC(dst, src, iv []byte, rec Recorder) error {
	if len(src)%BlockSize != 0 {
		return fmt.Errorf("aes: CBC input length %d not a multiple of %d", len(src), BlockSize)
	}
	if len(dst) < len(src) {
		return fmt.Errorf("aes: CBC output too short: %d < %d", len(dst), len(src))
	}
	if len(iv) != BlockSize {
		return fmt.Errorf("aes: CBC iv length %d (want %d)", len(iv), BlockSize)
	}
	var chain, next [BlockSize]byte
	copy(chain[:], iv)
	for off := 0; off < len(src); off += BlockSize {
		copy(next[:], src[off:off+BlockSize])
		c.Decrypt(dst[off:off+BlockSize], src[off:off+BlockSize], rec)
		for i := 0; i < BlockSize; i++ {
			dst[off+i] ^= chain[i]
		}
		chain = next
	}
	return nil
}
