package aes

import (
	"testing"

	"randfill/internal/rng"
)

// TestEncryptCTMatchesEncrypt proves the constant-time path computes the
// same cipher: same schedule from SetKeyCT, same blocks from EncryptCT,
// across all three key sizes.
func TestEncryptCTMatchesEncrypt(t *testing.T) {
	src := rng.New(0xC7AE5)
	for _, keyLen := range []int{16, 24, 32} {
		for trial := 0; trial < 25; trial++ {
			key := make([]byte, keyLen)
			for i := range key {
				key[i] = byte(src.Uint64())
			}
			ref, err := New(key)
			if err != nil {
				t.Fatal(err)
			}
			ct, err := NewCT(key)
			if err != nil {
				t.Fatal(err)
			}
			if ref.LastRoundKey() != ct.LastRoundKey() {
				t.Fatalf("key %d trial %d: SetKeyCT schedule diverges from SetKey", keyLen, trial)
			}

			var pt, want, got [16]byte
			for i := range pt {
				pt[i] = byte(src.Uint64())
			}
			ref.Encrypt(want[:], pt[:], nil)
			ct.EncryptCT(got[:], pt[:])
			if want != got {
				t.Fatalf("key %d trial %d: EncryptCT = %x, Encrypt = %x", keyLen, trial, got, want)
			}
		}
	}
}

func TestEncryptCTAliasing(t *testing.T) {
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(i * 11)
	}
	c, err := NewCT(key)
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte("sixteen byte blk")
	var want [16]byte
	c.Encrypt(want[:], buf, nil)
	c.EncryptCT(buf, buf)
	if string(buf) != string(want[:]) {
		t.Fatalf("in-place EncryptCT = %x, want %x", buf, want)
	}
}

func TestSetKeyCTRejectsBadSizes(t *testing.T) {
	c := &Cipher{}
	for _, n := range []int{0, 15, 17, 31, 33} {
		if err := c.SetKeyCT(make([]byte, n)); err == nil {
			t.Fatalf("SetKeyCT accepted %d-byte key", n)
		}
	}
}
