package aes

import (
	stdaes "crypto/aes"
	"testing"
)

// FuzzEncryptMatchesStdlib differentially fuzzes the T-table implementation
// against crypto/aes for arbitrary keys and blocks.
func FuzzEncryptMatchesStdlib(f *testing.F) {
	f.Add(make([]byte, 16), make([]byte, 16))
	f.Add([]byte("0123456789abcdef"), []byte("fedcba9876543210"))
	f.Fuzz(func(t *testing.T, key, pt []byte) {
		if len(key) != 16 || len(pt) != 16 {
			return
		}
		c, err := New(key)
		if err != nil {
			t.Fatalf("16-byte key rejected: %v", err)
		}
		ref, err := stdaes.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		var got, want, rt [16]byte
		c.Encrypt(got[:], pt, nil)
		ref.Encrypt(want[:], pt)
		if got != want {
			t.Fatalf("encrypt mismatch: key %x pt %x: %x vs %x", key, pt, got, want)
		}
		c.Decrypt(rt[:], got[:], nil)
		for i := range rt {
			if rt[i] != pt[i] {
				t.Fatalf("round trip mismatch at byte %d", i)
			}
		}
	})
}
