// Package prefetch implements the tagged next-line prefetcher the paper
// compares against in Section VII (Vanderwiel & Lilja's taxonomy): a 1-bit
// tag per cache line detects the first reference to a demand-fetched or
// prefetched line and triggers a fetch of the next sequential line.
package prefetch

import "randfill/internal/mem"

// Prefetcher observes L1 demand traffic and proposes background fills.
//
// The slices OnHit and OnMiss return are only valid until the next call on
// the same Prefetcher: implementations may reuse one scratch buffer so the
// per-access simulator path does not allocate. Callers must consume (or
// copy) the lines before calling again.
type Prefetcher interface {
	// OnFill is called when a line is installed in the L1, with
	// byPrefetch true for prefetcher-initiated fills.
	OnFill(line mem.Line, byPrefetch bool)
	// OnHit is called on every demand hit; it returns lines to prefetch.
	OnHit(line mem.Line) []mem.Line
	// OnMiss is called on every demand miss; it returns lines to
	// prefetch.
	OnMiss(line mem.Line) []mem.Line
}

// Tagged is the classic tagged sequential prefetcher: a prefetch of line
// i+1 is issued when line i is demand-fetched (miss) and when a prefetched
// line is referenced for the first time (tagged hit).
type Tagged struct {
	// Degree is how many sequential lines to prefetch per trigger
	// (default 1).
	Degree int

	tags map[mem.Line]bool
	// buf is the scratch slice returned by next; see the Prefetcher
	// interface comment for the reuse contract.
	buf []mem.Line
}

// NewTagged returns a degree-1 tagged prefetcher.
func NewTagged() *Tagged {
	return &Tagged{Degree: 1, tags: make(map[mem.Line]bool)}
}

func (t *Tagged) next(line mem.Line) []mem.Line {
	d := t.Degree
	if d <= 0 {
		d = 1
	}
	out := t.buf[:0]
	for i := 0; i < d; i++ {
		out = append(out, line+mem.Line(i)+1)
	}
	t.buf = out
	return out
}

// OnFill implements Prefetcher: prefetched lines are tagged so their first
// reference can re-trigger the prefetcher.
func (t *Tagged) OnFill(line mem.Line, byPrefetch bool) {
	if byPrefetch {
		t.tags[line] = true
	} else {
		delete(t.tags, line)
	}
}

// OnHit implements Prefetcher: the first hit on a tagged (prefetched) line
// clears its tag and prefetches the next line(s).
func (t *Tagged) OnHit(line mem.Line) []mem.Line {
	if !t.tags[line] {
		return nil
	}
	delete(t.tags, line)
	return t.next(line)
}

// OnMiss implements Prefetcher: a demand miss prefetches the next line(s).
func (t *Tagged) OnMiss(line mem.Line) []mem.Line {
	return t.next(line)
}
