package prefetch

import (
	"testing"

	"randfill/internal/mem"
)

func TestMissTriggersNextLine(t *testing.T) {
	p := NewTagged()
	got := p.OnMiss(10)
	if len(got) != 1 || got[0] != 11 {
		t.Fatalf("OnMiss(10) = %v, want [11]", got)
	}
}

func TestTaggedHitRetriggers(t *testing.T) {
	p := NewTagged()
	p.OnFill(11, true) // prefetched line lands, tagged
	got := p.OnHit(11) // first reference clears the tag and prefetches
	if len(got) != 1 || got[0] != 12 {
		t.Fatalf("OnHit(11) = %v, want [12]", got)
	}
	if got := p.OnHit(11); got != nil {
		t.Fatalf("second hit retriggered: %v", got)
	}
}

func TestDemandFillClearsTag(t *testing.T) {
	p := NewTagged()
	p.OnFill(20, true)
	p.OnFill(20, false) // demand fill overwrites the prefetch tag
	if got := p.OnHit(20); got != nil {
		t.Fatalf("hit on demand-filled line prefetched: %v", got)
	}
}

func TestUntaggedHitIsQuiet(t *testing.T) {
	p := NewTagged()
	if got := p.OnHit(5); got != nil {
		t.Fatalf("hit on never-filled line prefetched: %v", got)
	}
}

func TestDegree(t *testing.T) {
	p := NewTagged()
	p.Degree = 3
	got := p.OnMiss(100)
	want := []mem.Line{101, 102, 103}
	if len(got) != 3 {
		t.Fatalf("degree-3 OnMiss = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("degree-3 OnMiss = %v, want %v", got, want)
		}
	}
	// A non-positive degree falls back to 1.
	p.Degree = 0
	if got := p.OnMiss(1); len(got) != 1 {
		t.Fatalf("degree-0 OnMiss = %v", got)
	}
}

func TestSequentialStreamChain(t *testing.T) {
	// A pure stream: each miss and each first-reference of a prefetched
	// line keeps the chain going one line ahead.
	p := NewTagged()
	issued := map[mem.Line]bool{}
	for l := mem.Line(0); l < 50; l++ {
		var reqs []mem.Line
		if issued[l] {
			p.OnFill(l, true)
			reqs = p.OnHit(l)
		} else {
			reqs = p.OnMiss(l)
		}
		for _, r := range reqs {
			issued[r] = true
		}
	}
	// After warm-up every line should have been prefetched ahead of use.
	missCount := 0
	for l := mem.Line(1); l < 50; l++ {
		if !issued[l] {
			missCount++
		}
	}
	if missCount != 0 {
		t.Errorf("%d lines were never prefetched in a pure stream", missCount)
	}
}
