package plcache

import (
	"testing"

	"randfill/internal/cache"
	"randfill/internal/mem"
)

func pl() *PLcache { return New(cache.Geometry{SizeBytes: 512, Ways: 2}) } // 4 sets x 2 ways

func TestBasicHitMiss(t *testing.T) {
	c := pl()
	if c.Lookup(0, false) {
		t.Fatal("empty cache hit")
	}
	c.Fill(0, cache.FillOpts{})
	if !c.Lookup(0, false) {
		t.Fatal("miss after fill")
	}
}

func TestLockedLineNeverEvicted(t *testing.T) {
	c := pl()
	c.Fill(0, cache.FillOpts{Lock: true, Owner: 1}) // set 0
	c.Fill(4, cache.FillOpts{})                     // set 0, unlocked
	// Stream conflicting lines through set 0; line 0 must survive.
	for i := 2; i < 30; i++ {
		c.Fill(mem.Line(i*4), cache.FillOpts{})
	}
	if !c.Probe(0) {
		t.Fatal("locked line was evicted")
	}
	if !c.IsLocked(0) {
		t.Fatal("lock bit lost")
	}
}

func TestAllWaysLockedRefusesFill(t *testing.T) {
	c := pl()
	c.Fill(0, cache.FillOpts{Lock: true, Owner: 1})
	c.Fill(4, cache.FillOpts{Lock: true, Owner: 1})
	v := c.Fill(8, cache.FillOpts{})
	if !v.Refused {
		t.Fatalf("fill into fully locked set returned %+v, want refusal", v)
	}
	if c.Probe(8) {
		t.Fatal("refused line was cached anyway")
	}
	if c.Stats().FillRefused != 1 {
		t.Errorf("FillRefused = %d", c.Stats().FillRefused)
	}
}

func TestLRUAmongUnlocked(t *testing.T) {
	c := New(cache.Geometry{SizeBytes: 1024, Ways: 4}) // 4 sets x 4 ways
	c.Fill(0, cache.FillOpts{Lock: true, Owner: 1})
	c.Fill(4, cache.FillOpts{})
	c.Fill(8, cache.FillOpts{})
	c.Fill(12, cache.FillOpts{})
	c.Lookup(4, false) // 8 becomes LRU among unlocked
	v := c.Fill(16, cache.FillOpts{})
	if !v.Valid || v.Line != 8 {
		t.Fatalf("victim %+v, want line 8", v)
	}
}

func TestPreloadLocksRegion(t *testing.T) {
	c := New(cache.Geometry{SizeBytes: 8 * 1024, Ways: 4})
	region := mem.Region{Base: 0x10000, Size: 1024} // 16 lines
	if failed := c.Preload(1, region); failed != 0 {
		t.Fatalf("preload failed to lock %d lines", failed)
	}
	if c.LockedLines() != 16 {
		t.Errorf("LockedLines = %d, want 16", c.LockedLines())
	}
	for _, l := range region.Lines() {
		if !c.Probe(l) || !c.IsLocked(l) {
			t.Errorf("line %d not locked in cache", l)
		}
	}
}

func TestPreloadOverflowReported(t *testing.T) {
	// A tiny 2-way cache cannot lock a region with >2 lines per set.
	c := pl()                                    // 4 sets x 2 ways = 8 lines
	region := mem.Region{Base: 0, Size: 3 * 512} // 24 lines over 4 sets → 6 per set
	failed := c.Preload(1, region)
	if failed != 24-8 {
		t.Errorf("failed = %d, want 16", failed)
	}
	if c.LockedLines() != 8 {
		t.Errorf("LockedLines = %d, want 8", c.LockedLines())
	}
}

func TestUnlock(t *testing.T) {
	c := pl()
	c.Fill(0, cache.FillOpts{Lock: true, Owner: 1})
	c.Fill(1, cache.FillOpts{Lock: true, Owner: 2})
	c.Unlock(1)
	if c.IsLocked(0) {
		t.Error("owner 1's line still locked after Unlock(1)")
	}
	if !c.IsLocked(1) {
		t.Error("owner 2's line was unlocked by Unlock(1)")
	}
}

func TestLockOnRefresh(t *testing.T) {
	// Re-filling a present line with a locking load sets the lock bit,
	// modelling the special load hitting in the cache.
	c := pl()
	c.Fill(0, cache.FillOpts{})
	if c.IsLocked(0) {
		t.Fatal("unlocked fill set lock bit")
	}
	c.Fill(0, cache.FillOpts{Lock: true, Owner: 3})
	if !c.IsLocked(0) {
		t.Fatal("locking refresh did not set lock bit")
	}
}

func TestInvalidateRemovesLockedLine(t *testing.T) {
	c := pl()
	c.Fill(0, cache.FillOpts{Lock: true, Owner: 1})
	if !c.Invalidate(0) {
		t.Fatal("invalidate failed")
	}
	if c.Probe(0) {
		t.Fatal("locked line survived explicit invalidation")
	}
}

func TestFlushAndDrain(t *testing.T) {
	c := pl()
	n := 0
	c.SetEvictionObserver(func(v cache.Victim) { n++ })
	c.Fill(0, cache.FillOpts{})
	c.Fill(1, cache.FillOpts{Lock: true, Owner: 1})
	c.DrainValid()
	if n != 2 {
		t.Errorf("DrainValid reported %d", n)
	}
	c.Flush()
	if n != 4 {
		t.Errorf("flush observer count %d", n)
	}
	if len(contents(c)) != 0 {
		t.Error("flush left lines")
	}
}

func contents(c *PLcache) []mem.Line {
	var out []mem.Line
	for l := mem.Line(0); l < 1000; l++ {
		if c.Probe(l) {
			out = append(out, l)
		}
	}
	return out
}

func TestDemandFillStillWorksAroundLocks(t *testing.T) {
	// With one way locked, the other way of the set still serves normal
	// traffic with LRU behaviour.
	c := pl()
	c.Fill(0, cache.FillOpts{Lock: true, Owner: 1})
	c.Fill(4, cache.FillOpts{})
	v := c.Fill(8, cache.FillOpts{})
	if !v.Valid || v.Line != 4 {
		t.Fatalf("victim %+v, want 4", v)
	}
	if !c.Probe(0) || !c.Probe(8) {
		t.Error("contents wrong")
	}
}
