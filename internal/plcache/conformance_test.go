package plcache_test

import (
	"testing"

	"randfill/internal/rng"
	"randfill/internal/securecache"
	"randfill/internal/securecache/conformance"
)

// TestDesignConformance runs the shared SecureCache conformance suite
// against this package's registry entry ("plcache"), so a contract break
// is caught next to the implementation that introduced it.
func TestDesignConformance(t *testing.T) {
	d, ok := securecache.ByName("plcache")
	if !ok {
		t.Fatal("plcache is not registered")
	}
	conformance.RunConformance(t, func(src *rng.Source) securecache.SecureCache {
		return d.New(conformance.SmallConfig(), src)
	})
}
