// Package plcache implements PLcache (Wang & Lee, ISCA 2007): a
// partition-based secure cache that performs fine-grained dynamic
// partitioning by locking protected cache lines in place. Each line carries
// a process id and a locking status bit; special load/store instructions set
// or clear the lock bit on the lines they touch.
//
// Replacement semantics (the part that matters for both security and the
// paper's performance comparison):
//
//   - a locked line is never chosen as a replacement victim;
//   - if every way of the target set is locked, the incoming line is not
//     cached at all — the data is forwarded to the processor uncached and
//     the fill is "refused" (cache.Victim.Refused).
//
// The paper's "PLcache+preload" baseline (Kong et al., HPCA 2009) preloads
// all security-critical tables with locking loads at the start of the
// computation (and on every context switch); Preload implements that
// routine.
package plcache

import (
	"fmt"

	"randfill/internal/cache"
	"randfill/internal/mem"
)

type plLine struct {
	tag        mem.Line
	valid      bool
	dirty      bool
	referenced bool
	locked     bool
	owner      int
	offset     int8
}

// PLcache is a set-associative cache with per-line locking.
type PLcache struct {
	geom  cache.Geometry
	sets  int
	ways  int
	lines []plLine
	// stamps is the replacement-policy state, parallel to lines; the
	// policy operates on it as a contiguous per-set subslice (same layout
	// as cache.SetAssoc).
	stamps []uint64
	policy cache.Policy
	tick   uint64
	stats  cache.Stats
	onEv   cache.EvictionObserver
}

var _ cache.Cache = (*PLcache)(nil)

// New builds a PLcache with the given geometry and LRU replacement among
// unlocked ways.
func New(geom cache.Geometry) *PLcache {
	return NewWithPolicy(geom, nil)
}

// NewWithPolicy builds a PLcache whose victim selection among unlocked
// ways follows pol (nil selects the historical LRU default). Locking is
// enforced through the policy's masked victim path, so the associativity
// must not exceed 64 ways.
func NewWithPolicy(geom cache.Geometry, pol cache.Policy) *PLcache {
	cache.ValidateGeometry(geom)
	if pol == nil {
		pol = cache.LRU{}
	}
	if err := cache.PolicyValid(pol); err != nil {
		panic(err)
	}
	if geom.Ways > 64 {
		panic(fmt.Sprintf("plcache: masked victim selection requires <= 64 ways, have %d", geom.Ways))
	}
	sets := geom.Sets()
	return &PLcache{
		geom:   geom,
		sets:   sets,
		ways:   geom.Ways,
		lines:  make([]plLine, sets*geom.Ways),
		stamps: make([]uint64, sets*geom.Ways),
		policy: pol,
	}
}

// Geometry returns the cache's size and associativity.
func (c *PLcache) Geometry() cache.Geometry { return c.geom }

// NumLines returns the total line capacity.
func (c *PLcache) NumLines() int { return len(c.lines) }

// Stats returns the live statistics counters.
func (c *PLcache) Stats() *cache.Stats { return &c.stats }

// SetEvictionObserver registers fn to receive every displaced valid line.
func (c *PLcache) SetEvictionObserver(fn cache.EvictionObserver) { c.onEv = fn }

func (c *PLcache) setIndex(l mem.Line) int { return int(uint64(l) & uint64(c.sets-1)) }

func (c *PLcache) set(idx int) []plLine { return c.lines[idx*c.ways : (idx+1)*c.ways] }

// setStamps returns set idx's replacement-state words.
func (c *PLcache) setStamps(idx int) []uint64 { return c.stamps[idx*c.ways : (idx+1)*c.ways] }

func find(s []plLine, l mem.Line) int {
	for w := range s {
		if s[w].valid && s[w].tag == l {
			return w
		}
	}
	return -1
}

// Lookup implements cache.Cache.
func (c *PLcache) Lookup(l mem.Line, write bool) bool {
	idx := c.setIndex(l)
	s := c.set(idx)
	w := find(s, l)
	if w < 0 {
		c.stats.Misses++
		return false
	}
	c.stats.Hits++
	c.tick++
	s[w].referenced = true
	c.policy.OnHit(c.setStamps(idx), w, c.tick)
	if write {
		s[w].dirty = true
	}
	return true
}

// Probe implements cache.Cache.
func (c *PLcache) Probe(l mem.Line) bool {
	return find(c.set(c.setIndex(l)), l) >= 0
}

// Fill implements cache.Cache. With opts.Lock set it models the special
// locking load: the line is installed (or refreshed) with its lock bit set
// and owned by opts.Owner.
func (c *PLcache) Fill(l mem.Line, opts cache.FillOpts) cache.Victim {
	idx := c.setIndex(l)
	s := c.set(idx)
	stamps := c.setStamps(idx)
	c.tick++
	if w := find(s, l); w >= 0 {
		s[w].dirty = s[w].dirty || opts.Dirty
		if opts.Lock {
			s[w].locked = true
			s[w].owner = opts.Owner
		}
		c.policy.OnFill(stamps, w, c.tick)
		return cache.Victim{}
	}

	// Choose a victim: an invalid way first, else the policy's pick among
	// unlocked ways.
	w := -1
	for i := range s {
		if !s[i].valid {
			w = i
			break
		}
	}
	var v cache.Victim
	if w < 0 {
		unlocked := uint64(0)
		for i := range s {
			if !s[i].locked {
				unlocked |= 1 << uint(i)
			}
		}
		w = c.policy.VictimMasked(stamps, unlocked)
		if w < 0 {
			// Every way is locked: the fill is refused and the data
			// is forwarded to the processor uncached.
			c.stats.FillRefused++
			return cache.Victim{Refused: true}
		}
		v = c.evict(s, w)
	}
	c.stats.Fills++
	s[w] = plLine{
		tag:    l,
		valid:  true,
		dirty:  opts.Dirty,
		locked: opts.Lock,
		owner:  opts.Owner,
		offset: opts.Offset,
	}
	c.policy.OnFill(stamps, w, c.tick)
	return v
}

func (c *PLcache) evict(s []plLine, w int) cache.Victim {
	v := cache.Victim{
		Valid:      true,
		Line:       s[w].tag,
		Dirty:      s[w].dirty,
		Referenced: s[w].referenced,
		Offset:     s[w].offset,
	}
	c.stats.Evictions++
	if v.Dirty {
		c.stats.Writebacks++
	}
	if c.onEv != nil {
		c.onEv(v)
	}
	s[w].valid = false
	return v
}

// Invalidate implements cache.Cache. Locked lines can be invalidated (the
// lock protects against replacement, not explicit invalidation by a flush
// instruction from the owning process).
func (c *PLcache) Invalidate(l mem.Line) bool {
	s := c.set(c.setIndex(l))
	w := find(s, l)
	if w < 0 {
		return false
	}
	c.stats.Invalidates++
	c.evict(s, w)
	return true
}

// Flush implements cache.Cache.
func (c *PLcache) Flush() {
	for i := range c.lines {
		if c.lines[i].valid {
			c.stats.Invalidates++
			set := c.set(i / c.ways)
			c.evict(set, i%c.ways)
		}
	}
}

// Unlock clears the lock bit of every line owned by owner (the unlock
// half of the special load/store pair, applied en masse at the end of the
// security-critical region).
func (c *PLcache) Unlock(owner int) {
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].locked && c.lines[i].owner == owner {
			c.lines[i].locked = false
		}
	}
}

// Preload installs and locks every cache line of each region on behalf of
// owner, modelling the PLcache+preload routine run before the cryptographic
// computation and on context switches. It returns the number of lines that
// could not be locked because their sets were exhausted (all ways already
// locked) — with many tables and a small cache the preload itself can fail
// to pin everything, the scalability problem the paper highlights.
func (c *PLcache) Preload(owner int, regions ...mem.Region) (unlockable int) {
	for _, r := range regions {
		for _, l := range r.Lines() {
			v := c.Fill(l, cache.FillOpts{Lock: true, Owner: owner})
			if v.Refused {
				unlockable++
			}
		}
	}
	return unlockable
}

// LockedLines returns the number of currently locked lines.
func (c *PLcache) LockedLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].locked {
			n++
		}
	}
	return n
}

// IsLocked reports whether line l is present and locked.
func (c *PLcache) IsLocked(l mem.Line) bool {
	s := c.set(c.setIndex(l))
	w := find(s, l)
	return w >= 0 && s[w].locked
}

// DrainValid reports every still-valid line to the eviction observer
// without invalidating it.
func (c *PLcache) DrainValid() {
	if c.onEv == nil {
		return
	}
	for i := range c.lines {
		if c.lines[i].valid {
			ln := &c.lines[i]
			c.onEv(cache.Victim{
				Valid:      true,
				Line:       ln.tag,
				Dirty:      ln.dirty,
				Referenced: ln.referenced,
				Offset:     ln.offset,
			})
		}
	}
}

func (c *PLcache) String() string { return fmt.Sprintf("PLcache(%v)", c.geom) }

// Occupancy returns the number of valid lines. It is a pure observer used
// by the occupancy-channel attacks as footprint ground truth.
func (c *PLcache) Occupancy() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}
