package analysis

import (
	"go/token"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file     string
	line     int // line the directive ends on
	checkers map[string]bool
	reason   string
}

const ignorePrefix = "//lint:ignore"

// parseDirectives extracts every //lint:ignore directive from the loaded
// packages. Malformed directives (no checker list or no reason) are
// reported as lint diagnostics themselves so that suppressions stay
// auditable.
func parseDirectives(fset *token.FileSet, pkgs []*Package) (dirs []ignoreDirective, malformed []Diagnostic) {
	seen := make(map[string]bool) // file:line, dedup across test/non-test loads
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					pos := fset.Position(c.End())
					key := pos.Filename + ":" + itoa(pos.Line)
					if seen[key] {
						continue
					}
					seen[key] = true
					rest := strings.TrimPrefix(c.Text, ignorePrefix)
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						malformed = append(malformed, Diagnostic{
							File: pos.Filename, Line: pos.Line, Col: fset.Position(c.Pos()).Column,
							Checker: "lint", Severity: SeverityError,
							Message: "malformed //lint:ignore: want \"//lint:ignore <checker>[,<checker>] <reason>\"",
						})
						continue
					}
					checkers := make(map[string]bool)
					for _, name := range strings.Split(fields[0], ",") {
						if name != "" {
							checkers[name] = true
						}
					}
					dirs = append(dirs, ignoreDirective{
						file:     pos.Filename,
						line:     pos.Line,
						checkers: checkers,
						reason:   strings.Join(fields[1:], " "),
					})
				}
			}
		}
	}
	return dirs, malformed
}

// suppress filters diags through the directives: a diagnostic is dropped
// when a directive naming its checker sits on the same line or the line
// directly above. Directives that suppress nothing are reported, so stale
// suppressions cannot hide future regressions — except when the directive
// names a checker that is not enabled this run (e.g. under -checkers).
func suppress(diags []Diagnostic, dirs []ignoreDirective, enabled map[string]bool) []Diagnostic {
	type key struct {
		file string
		line int
	}
	index := make(map[key][]*ignoreDirective)
	used := make(map[*ignoreDirective]bool)
	for i := range dirs {
		d := &dirs[i]
		index[key{d.file, d.line}] = append(index[key{d.file, d.line}], d)
	}

	var kept []Diagnostic
	for _, diag := range diags {
		matched := false
		for _, line := range []int{diag.Line, diag.Line - 1} {
			for _, d := range index[key{diag.File, line}] {
				if d.checkers[diag.Checker] {
					matched = true
					used[d] = true
				}
			}
		}
		if !matched {
			kept = append(kept, diag)
		}
	}

	for i := range dirs {
		d := &dirs[i]
		allEnabled := true
		for name := range d.checkers {
			if !enabled[name] {
				allEnabled = false
			}
		}
		if allEnabled && !used[d] {
			kept = append(kept, Diagnostic{
				File: d.file, Line: d.line, Col: 1,
				Checker: "lint", Severity: SeverityWarning,
				Message: "//lint:ignore directive suppresses nothing; delete it",
			})
		}
	}
	return kept
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
