// Package analysis is a small, stdlib-only static-analysis framework for
// this repository. It exists because every security number the simulator
// produces (Table 3, Figure 2, the mutual-information bounds) is only
// trustworthy if the simulator is bit-reproducible: all randomness must flow
// through the seeded internal/rng streams, map iteration must never order
// observable output, and experiment I/O must never silently truncate.
//
// The framework loads every package in the module (including tests), type
// checks it with go/types, runs a set of pluggable Analyzers over each
// package, and reports structured Diagnostics. Findings can be suppressed
// inline with a justified directive:
//
//	//lint:ignore <checker>[,<checker>...] <reason>
//
// placed on the offending line or the line directly above it. A directive
// without a reason is itself a diagnostic: suppressions must be auditable.
//
// The cmd/rflint driver wires this package to the command line.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
)

// Severity classifies how a Diagnostic affects the trustworthiness of
// experiment output.
type Severity int

const (
	// SeverityWarning marks findings that are suspicious but may be
	// intentional (e.g. secret-derived indexing in a package that models a
	// leaky victim on purpose).
	SeverityWarning Severity = iota
	// SeverityError marks findings that break reproducibility or silently
	// corrupt experiment output.
	SeverityError
)

func (s Severity) String() string {
	switch s {
	case SeverityWarning:
		return "warning"
	case SeverityError:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// ParseSeverity converts the string form used by command-line flags.
func ParseSeverity(s string) (Severity, error) {
	switch s {
	case "warning":
		return SeverityWarning, nil
	case "error":
		return SeverityError, nil
	default:
		return 0, fmt.Errorf("unknown severity %q (want warning or error)", s)
	}
}

// MarshalJSON emits the severity as its string form.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Diagnostic is one finding from one checker at one source position.
type Diagnostic struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Checker  string   `json:"checker"`
	Severity Severity `json:"severity"`
	Message  string   `json:"message"`
	// Trace, when present, is the source→hop→sink witness path behind the
	// finding (interprocedural checkers only). rflint -trace prints it.
	Trace []TraceStep `json:"trace,omitempty"`
}

// TraceStep is one hop of a Diagnostic's witness path.
type TraceStep struct {
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`
	Desc string `json:"desc"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s: %s", d.File, d.Line, d.Col, d.Checker, d.Severity, d.Message)
}

// Analyzer is one pluggable checker. Implementations must be stateless
// across packages: Run is called once per loaded package.
type Analyzer interface {
	// Name is the stable identifier used by -checkers and //lint:ignore.
	Name() string
	// Doc is a one-paragraph description of what the checker enforces.
	Doc() string
	// Run inspects one type-checked package and reports findings on pass.
	Run(pass *Pass) error
}

// ModuleAnalyzer is an Analyzer that needs the whole module at once —
// interprocedural analyses whose verdict about one package depends on code
// in another. RunModule is called exactly once per analysis run with every
// loaded package; the per-package Run is still invoked and is typically a
// no-op for implementations of this interface.
type ModuleAnalyzer interface {
	Analyzer
	RunModule(pass *ModulePass) error
}

// ModulePass carries the whole module through one ModuleAnalyzer.
type ModulePass struct {
	Analyzer Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package

	diags *[]Diagnostic
}

// Report records a finding at pos with an optional witness trace.
func (p *ModulePass) Report(pos token.Pos, sev Severity, msg string, trace []TraceStep) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Checker:  p.Analyzer.Name(),
		Severity: sev,
		Message:  msg,
		Trace:    trace,
	})
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, sev Severity, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Checker:  p.Analyzer.Name(),
		Severity: sev,
		Message:  fmt.Sprintf(format, args...),
	})
}
