// Package errcheckio seeds violations for the errcheck-io checker:
// dropped error returns on the I/O paths that carry experiment output.
package errcheckio

import (
	"io"
	"os"

	"randfill/internal/mem"
	"randfill/internal/traceio"
)

func dropsWriteErrors(f *os.File, w io.Writer, trace mem.Trace) {
	f.Close()                  // want "error from os.Close is dropped"
	w.Write([]byte("results")) // want "error from io.Write is dropped"
	traceio.Write(w, trace)    // want "error from traceio.Write is dropped"
}

func dropsByDefer(f *os.File) {
	defer f.Close()       // want "dropped by defer"
	f.WriteString("tail") // want "error from os.WriteString is dropped"
}

func checksProperly(f *os.File, w io.Writer, trace mem.Trace) error {
	if err := traceio.Write(w, trace); err != nil {
		return err
	}
	if _, err := f.WriteString("ok"); err != nil {
		return err
	}
	return f.Close()
}

func explicitDropIsADecision(f *os.File) {
	// Assigning to blank is a visible, reviewable choice; only silent
	// statement-position drops are flagged.
	_ = f.Close()
}
