// Package maporder seeds violations for the maporder checker: map ranges
// whose bodies make iteration order observable, plus the approved
// collect-and-sort pattern that must stay clean.
package maporder

import (
	"fmt"
	"sort"
)

func printsInMapOrder(m map[string]int) {
	for k, v := range m { // want "map iteration order is nondeterministic"
		fmt.Println(k, v)
	}
}

func appendsWithoutSort(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration order is nondeterministic"
		out = append(out, k)
	}
	return out // never sorted: caller observes map order
}

func sortedKeyCollection(m map[string]int) {
	var keys []string
	for k := range m { // approved pattern: keys are sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

func commutativeReduction(m map[string]int) int {
	total := 0
	for _, v := range m { // effect-free body: order cannot be observed
		total += v
	}
	return total
}
