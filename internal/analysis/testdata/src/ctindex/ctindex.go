// Package ctindex seeds violations for the ctindex checker:
// secret-derived array indexing outside the designated victim packages.
package ctindex

var sbox [256]byte

func leakyLookup(secretKey byte, round int) byte {
	leaked := sbox[secretKey]           // want "secret-looking"
	masked := sbox[int(secretKey)&0x0f] // want "secret-looking"
	public := sbox[round&0xff]
	return leaked ^ masked ^ public
}

func mapsAreAddressFree(privExponent string, m map[string]int) int {
	// Map lookups hash the key; the cache-line address is not a linear
	// function of the secret, so only array/slice indexing is flagged.
	return m[privExponent]
}

func publicIndexing(counts []int, bucket int) int {
	return counts[bucket]
}
