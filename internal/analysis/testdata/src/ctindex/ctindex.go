// Package ctindex seeds violations for the ctindex checker:
// secret-derived array indexing outside the designated victim packages.
package ctindex

var sbox [256]byte

func leakyLookup(secretKey byte, round int) byte {
	leaked := sbox[secretKey]           // want "secret-looking"
	masked := sbox[int(secretKey)&0x0f] // want "secret-looking"
	public := sbox[round&0xff]
	return leaked ^ masked ^ public
}

func mapsAreAddressFree(privExponent string, m map[string]int) int {
	// Map lookups hash the key; the cache-line address is not a linear
	// function of the secret, so only array/slice indexing is flagged.
	return m[privExponent]
}

func publicIndexing(counts []int, bucket int) int {
	return counts[bucket]
}

func keyHash(i int) int       { return i * 2654435761 }
func keyHash2(key []byte) int { return int(key[0]) * 31 }

func hashedIndex(key []byte, i int) byte {
	// A callee whose *name* matches the secret pattern is a function, not
	// an index value: keyHash(i) indexes by a hash of a public counter and
	// must not fire. Hashing an actual secret still fires, via the
	// argument identifier.
	ok := sbox[keyHash(i)&0xff]
	bad := sbox[keyHash2(key)&0xff] // want "secret-looking"
	return ok ^ bad
}

// Generic victims: a type-parameter value constrained to arrays is still
// addressable memory, and instantiation syntax around a callee must not
// confuse the identifier scan.
func lookupG[T ~[256]byte](t T, secretIdx byte) byte {
	return t[secretIdx] // want "secret-looking"
}

func keyedHash[T ~int](i T) int        { return int(i) * 3 }
func keyMix[A ~int, B ~int](a A, b B) int { return int(a) ^ int(b) }

func genericCallees(i, j int) byte {
	// The instantiated callees' names match the pattern but are skipped
	// (IndexExpr and IndexListExpr instantiation respectively).
	g := sbox[keyedHash[int](i)&0xff]
	g2 := sbox[keyMix[int, int](i, j)&0xff]
	return g ^ g2
}

// Instantiation used as a value parses as an IndexExpr whose index is a
// type; it is not a memory access.
var lookupBytes = lookupG[[256]byte]
