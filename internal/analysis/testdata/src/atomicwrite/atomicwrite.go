// Package atomicwrite seeds violations for the atomicwrite checker:
// result artifacts written with raw os primitives instead of
// internal/atomicio, where a crash could publish a torn file.
package atomicwrite

import (
	"os"

	"randfill/internal/atomicio"
)

func rawWrites(results []byte) error {
	f, err := os.Create("results.json") // want "non-atomically (os.Create)"
	if err != nil {
		return err
	}
	if _, err := f.Write(results); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.WriteFile("table.txt", results, 0o644) // want "non-atomically (os.WriteFile)"
}

func atomicWrites(results []byte) error {
	// The approved path: stage in a temp file, fsync, rename.
	if err := atomicio.WriteFile("results.json", results, 0o644); err != nil {
		return err
	}
	f, err := atomicio.Create("table.txt")
	if err != nil {
		return err
	}
	if _, err := f.Write(results); err != nil {
		f.Abort()
		return err
	}
	return f.Commit()
}

func rawLeaseWrites(frame []byte) error {
	// Fabric lease files are coordination state read by other live
	// processes: a torn lease flaps ownership, so they must publish
	// atomically like any result artifact.
	if err := os.WriteFile("leases/Figure2-0003.lease", frame, 0o644); err != nil { // want "non-atomically (os.WriteFile)"
		return err
	}
	f, err := os.Create("coordinator.lease") // want "non-atomically (os.Create)"
	if err != nil {
		return err
	}
	if _, err := f.Write(frame); err != nil {
		return err
	}
	return f.Close()
}

func atomicLeaseWrites(frame []byte) error {
	return atomicio.WriteFile("leases/Figure2-0003.lease", frame, 0o644)
}

func readingAndScratchAreFine() error {
	// Reads and explicit scratch files are not result artifacts.
	f, err := os.Open("input.trace")
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	tmp, err := os.CreateTemp("", "scratch-*")
	if err != nil {
		return err
	}
	return tmp.Close()
}
