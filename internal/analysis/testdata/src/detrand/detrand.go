// Package detrand seeds every violation the detrand checker must catch:
// banned RNG imports and wall-clock reads.
package detrand

import (
	"crypto/rand"     // want "import of crypto/rand breaks reproducibility"
	mrand "math/rand" // want "import of math/rand breaks reproducibility"
	"time"
)

func drawEverywhere() int {
	v := mrand.Int()
	buf := make([]byte, 8)
	if _, err := rand.Read(buf); err != nil {
		return 0
	}
	return v + int(buf[0])
}

func clockReads() time.Duration {
	start := time.Now()          // want "time.Now reads the wall clock"
	elapsed := time.Since(start) // want "time.Since reads the wall clock"
	return elapsed
}

func durationsAreFine() time.Duration {
	// Using time.Duration as a unit type is allowed; only clock reads leak.
	return 5 * time.Millisecond
}
