// Package rngshare seeds violations for the rngshare checker: ambient
// package-level sources and one stream shared by two subsystems, plus the
// Split and mutually-exclusive-branch patterns that must stay clean.
package rngshare

import "randfill/internal/rng"

var ambient = rng.New(1) // want "package-level *rng.Source"

func subsystemA(src *rng.Source) uint64 { return src.Uint64() }

func subsystemB(src *rng.Source) uint64 { return src.Uint64() }

func sharesOneStream(src *rng.Source) uint64 {
	a := subsystemA(src)
	b := subsystemB(src) // want "passed to multiple subsystems"
	return a + b
}

func splitsProperly(src *rng.Source) uint64 {
	a := subsystemA(src.Split(1))
	b := subsystemB(src.Split(2))
	return a + b
}

func exclusiveBranches(src *rng.Source, kind int) uint64 {
	switch kind {
	case 0:
		return subsystemA(src)
	default:
		return subsystemB(src) // only one branch runs: no sharing
	}
}

func exclusiveIfElse(src *rng.Source, fast bool) uint64 {
	if fast {
		return subsystemA(src)
	} else {
		return subsystemB(src) // only one branch runs: no sharing
	}
}

func capturesInGoroutine(src *rng.Source, done chan uint64) {
	go func() {
		done <- subsystemA(src) // want "captured by a goroutine closure"
	}()
}

func passesToGoroutine(src *rng.Source) {
	go subsystemA(src) // want "passed to a goroutine"
}

func splitsPerGoroutine(src *rng.Source, done chan uint64) {
	for i := 0; i < 4; i++ {
		go func(s *rng.Source) { // derived stream: the sanctioned shape
			done <- subsystemA(s)
		}(src.Split(uint64(i)))
	}
}

func constructsInsideGoroutine(seed uint64, done chan uint64) {
	go func() {
		s := rng.New(seed) // goroutine-local stream: no capture
		done <- subsystemA(s)
	}()
}
