// Package sim seeds violations for the simlayer checker: the directory is
// named "sim" so the synthetic corpus path testpkg/sim matches the
// checker's package scope, standing in for randfill/internal/sim. Concrete
// cache constructors are only allowed inside functions named build*.
package sim

import (
	"randfill/internal/cache"
	"randfill/internal/mirage"
	"randfill/internal/newcache"
	"randfill/internal/nomo"
	"randfill/internal/plcache"
	"randfill/internal/rng"
	"randfill/internal/rpcache"
	"randfill/internal/scattercache"
)

// Level builders may construct any concrete architecture.
func buildSA(geom cache.Geometry) cache.Cache {
	return cache.NewSetAssoc(geom, cache.LRU{})
}

func buildSecureStack(geom cache.Geometry, src *rng.Source) []cache.Cache {
	return []cache.Cache{
		newcache.New(geom.SizeBytes, 4, src),
		plcache.New(geom),
		rpcache.New(geom, src),
		nomo.New(geom, 2, 1),
		scattercache.New(geom, src),
		mirage.New(geom, src),
	}
}

// Policy-parameterized construction is equally builder-only.
func buildPolicyStack(geom cache.Geometry, src *rng.Source, pol cache.Policy) []cache.Cache {
	return []cache.Cache{
		newcache.NewWithPolicy(geom.SizeBytes, 4, src, pol),
		plcache.NewWithPolicy(geom, pol),
		rpcache.NewWithPolicy(geom, src, pol),
		nomo.NewWithPolicy(geom, 2, 1, pol),
		scattercache.NewWithPolicy(geom, src, pol),
		mirage.NewWithPolicy(geom, src, pol),
	}
}

// Wiring code must go through the builders instead.
func wireMachine(geom cache.Geometry, src *rng.Source) cache.Cache {
	l2 := cache.NewSetAssoc(geom, cache.LRU{}) // want "outside a level builder"
	_ = newcache.New(geom.SizeBytes, 4, src)   // want "outside a level builder"
	_ = plcache.New(geom)                      // want "outside a level builder"
	_ = rpcache.New(geom, src)                 // want "outside a level builder"
	_ = nomo.New(geom, 2, 1)                   // want "outside a level builder"
	_ = scattercache.New(geom, src)            // want "outside a level builder"
	_ = mirage.New(geom, src)                  // want "outside a level builder"
	return l2
}

// The NewWithPolicy constructors are constructors like any other: wiring
// code may not call them inline either.
func wirePolicyMachine(geom cache.Geometry, src *rng.Source, pol cache.Policy) cache.Cache {
	l1 := newcache.NewWithPolicy(geom.SizeBytes, 4, src, pol) // want "outside a level builder"
	_ = plcache.NewWithPolicy(geom, pol)                      // want "outside a level builder"
	_ = rpcache.NewWithPolicy(geom, src, pol)                 // want "outside a level builder"
	_ = nomo.NewWithPolicy(geom, 2, 1, pol)                   // want "outside a level builder"
	_ = scattercache.NewWithPolicy(geom, src, pol)            // want "outside a level builder"
	_ = mirage.NewWithPolicy(geom, src, pol)                  // want "outside a level builder"
	return l1
}

// Non-constructor calls into the cache packages stay legal anywhere.
func probeAll(c cache.Cache) bool {
	return c.Probe(1) && c.Lookup(2, false)
}

// Same-name functions from unrelated packages are not constructors.
func newUnrelated() int { return localNew() }

func localNew() int { return 1 }

// Batch replay entry points (PR 8) are wiring code, not builders: the
// devirtualizing level-0 type assertion and the TryHit fast probe are fine
// anywhere, but a replay path may not construct its own cache inline — it
// must replay whatever the configuration-driven builders assembled.
func ReplayBatch(cs []cache.Cache) int {
	hits := 0
	for _, c := range cs {
		if sa, ok := c.(*cache.SetAssoc); ok && sa.TryHit(1, false) {
			hits++
		}
	}
	return hits
}

func ReplayWindows(geom cache.Geometry, windows int) []cache.Cache {
	out := make([]cache.Cache, windows)
	for i := range out {
		out[i] = cache.NewSetAssoc(geom, cache.LRU{}) // want "outside a level builder"
	}
	return out
}
