// Package suppress proves the //lint:ignore mechanism: the violation below
// must be reported by RunUnsuppressed and silenced by Run.
package suppress

import "time"

func wallClock() int64 {
	//lint:ignore detrand deliberate violation proving the suppression mechanism
	return time.Now().Unix()
}
