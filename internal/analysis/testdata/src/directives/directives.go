// Package directives seeds broken //lint:ignore usage: a directive with no
// checker/reason, and a stale directive that suppresses nothing. Both must
// be reported by the framework itself.
package directives

//lint:ignore
func malformed() {}

//lint:ignore detrand stale directive with nothing left to suppress
func stale() {}
