// Package ctflow seeds violations for the interprocedural taint checker:
// secret parameters (by name, in this seed package) reaching memory
// indices, branch conditions, and integer div/mod — directly, across
// function calls, and through struct fields — plus the clean patterns
// (sanitizers, lengths, public data) that must not fire.
package ctflow

var table [256]byte
var counts [16]int

// Direct sinks in the seeded function itself.
func direct(secretKey byte) byte {
	v := table[secretKey] // want "secret-dependent index"
	if secretKey > 128 { // want "secret-dependent branch"
		v++
	}
	bucket := int(secretKey) % len(counts) // want "secret-dependent div/mod"
	return v ^ byte(bucket)
}

// mix launders the secret through arithmetic in a helper whose own
// parameter names are innocent; lookup then sinks it. The finding lands at
// the sink inside lookup, reached only via the call chain.
func mix(a, b byte) byte { return a ^ b }

func lookup(t *[256]byte, i byte) byte {
	return t[i] // want "secret-dependent index"
}

func crossFunction(keyByte byte) byte {
	d := mix(keyByte, 0x5a)
	return lookup(&table, d)
}

// windows loops a secret-derived number of times: the loop condition is a
// branch on the secret (the modexp victim's window-count pattern).
func windows(exponentBits int) int {
	total := 0
	for i := 0; i < exponentBits; i++ { // want "secret-dependent branch"
		total += i
	}
	return total
}

// ctEq is a designated constant-time comparator: its result is
// declassified, so indexing by it is clean.
//
//ctflow:sanitizer
func ctEq(a, b byte) int {
	d := int(a^b) - 1
	return (d >> 8) & 1
}

func sanitized(secretKey byte) byte {
	m := ctEq(secretKey, 0x42)
	return table[m&0xff] // clean: sanitizer output is public
}

// lookupG sinks through a type-parameter value whose constraint only
// admits arrays: generic code is still a memory access.
func lookupG[T ~[256]byte](t T, i byte) byte {
	return t[i] // want "secret-dependent index"
}

func generic(privKey byte) byte {
	return lookupG[[256]byte](table, privKey)
}

// pick is instantiated with two explicit type arguments, so the call's
// callee is an *ast.IndexListExpr; the engine must still resolve it.
func pick[T any, U ~[]T](s U, i int) T {
	return s[i] // want "secret-dependent index"
}

func genericTwo(secretIdx int, data []byte) byte {
	return pick[byte, []byte](data, secretIdx)
}

// Field taint: a secret stored into a struct field taints every read of
// that field, in any function.
type state struct {
	k byte
}

func fill(s *state, secretSeed byte) {
	s.k = secretSeed
}

func useField(s *state) byte {
	return table[s.k] // want "secret-dependent index"
}

// Clean patterns that must not fire: lengths are public, error checks are
// public, and public parameters index freely.
func clean(data []byte, secretKey byte) byte {
	if len(data) == 0 {
		return 0
	}
	return data[0] ^ secretKey
}
