// Package securecache seeds violations for the simlayer checker's registry
// scope: the directory is named "securecache" so the synthetic corpus path
// testpkg/securecache matches the checker's package scope, standing in for
// randfill/internal/securecache. Concrete designs may only be constructed
// inside the registry's build* factories.
package securecache

import (
	"randfill/internal/cache"
	"randfill/internal/mirage"
	"randfill/internal/rng"
	"randfill/internal/scattercache"
)

// Registry factories are named build* and may construct any design.
func buildScatterCache(geom cache.Geometry, src *rng.Source) cache.Cache {
	return scattercache.New(geom, src)
}

func buildMirage(geom cache.Geometry, src *rng.Source) cache.Cache {
	return mirage.New(geom, src)
}

func buildRandfill(geom cache.Geometry) cache.Cache {
	return cache.NewSetAssoc(geom, cache.LRU{})
}

// Helper code must go through the factories instead of constructing designs
// inline — an inline construction bypasses the registry's seed-split
// discipline and cannot be retargeted by design name.
func newAdHocDesign(geom cache.Geometry, src *rng.Source) cache.Cache {
	c := scattercache.New(geom, src)                   // want "outside a level builder"
	_ = mirage.New(geom, src)                          // want "outside a level builder"
	_ = cache.NewSetAssoc(geom, nil)                   // want "outside a level builder"
	_ = scattercache.NewWithPolicy(geom, src, nil)     // want "outside a level builder"
	_ = mirage.NewWithPolicy(geom, src, cache.SRRIP{}) // want "outside a level builder"
	return c
}

// Interface plumbing that only uses constructed caches stays legal.
func occupancyOf(c cache.Cache) int { return c.NumLines() }
