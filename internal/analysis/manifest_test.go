package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"randfill/internal/analysis"
)

func ctflowDiag(modRoot, rel string, line int, kind, expr string) analysis.Diagnostic {
	var prefix string
	switch kind {
	case "index":
		prefix = "secret-dependent index:"
	case "branch":
		prefix = "secret-dependent branch:"
	case "divmod":
		prefix = "secret-dependent div/mod:"
	}
	return analysis.Diagnostic{
		File:     filepath.Join(modRoot, filepath.FromSlash(rel)),
		Line:     line,
		Checker:  "ctflow",
		Severity: analysis.SeverityWarning,
		Message:  prefix + " " + expr + " (secret: parameter key of F)",
	}
}

func TestManifestRoundTrip(t *testing.T) {
	modRoot := t.TempDir()
	diags := []analysis.Diagnostic{
		ctflowDiag(modRoot, "internal/aes/cipher.go", 190, "index", "te0[s0>>24]"),
		ctflowDiag(modRoot, "internal/aes/cipher.go", 190, "index", "te1[s1>>16&0xff]"), // same line: one entry
		ctflowDiag(modRoot, "internal/modexp/modexp.go", 58, "divmod", "bits / w"),
	}
	old := &analysis.Manifest{Leaks: []analysis.Leak{
		{File: "internal/aes/cipher.go", Line: 190, Kind: "index", Note: "round tables"},
	}}
	m := analysis.BuildManifest(diags, modRoot, old)
	if len(m.Leaks) != 2 {
		t.Fatalf("BuildManifest produced %d entries, want 2: %+v", len(m.Leaks), m.Leaks)
	}
	if m.Leaks[0].Note != "round tables" {
		t.Errorf("surviving entry lost its note: %+v", m.Leaks[0])
	}

	path := filepath.Join(modRoot, analysis.ManifestName)
	if err := m.WriteManifest(path); err != nil {
		t.Fatal(err)
	}
	got, err := analysis.LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Leaks) != len(m.Leaks) {
		t.Fatalf("round trip mismatch: wrote %+v, read %+v", m, got)
	}
	for i := range m.Leaks {
		if got.Leaks[i] != m.Leaks[i] {
			t.Fatalf("round trip entry %d: wrote %+v, read %+v", i, m.Leaks[i], got.Leaks[i])
		}
	}
}

func TestManifestApply(t *testing.T) {
	modRoot := t.TempDir()
	m := &analysis.Manifest{Leaks: []analysis.Leak{
		{File: "internal/aes/cipher.go", Line: 190, Kind: "index"},
		{File: "internal/blowfish/blowfish.go", Line: 138, Kind: "index", Note: "S-box"},
	}}

	expected := ctflowDiag(modRoot, "internal/aes/cipher.go", 190, "index", "te0[s0>>24]")
	novel := ctflowDiag(modRoot, "internal/attacks/prime.go", 10, "branch", "bit != 0")
	other := analysis.Diagnostic{
		File: filepath.Join(modRoot, "internal/sim/sim.go"), Line: 3,
		Checker: "detrand", Severity: analysis.SeverityError, Message: "time.Now",
	}

	out := m.Apply([]analysis.Diagnostic{expected, novel, other}, modRoot, nil)

	var sawNovel, sawOther, sawMissing bool
	for _, d := range out {
		switch {
		case d.File == expected.File && d.Line == expected.Line:
			t.Errorf("manifest-matched finding not removed: %s", d)
		case d.File == novel.File:
			sawNovel = true
		case d.Checker == "detrand":
			sawOther = true
		case strings.Contains(d.Message, "not reproduced"):
			sawMissing = true
			if d.Severity != analysis.SeverityError {
				t.Errorf("missing-entry diagnostic severity = %v, want error", d.Severity)
			}
			if !strings.Contains(d.Message, "S-box") {
				t.Errorf("missing-entry diagnostic lost the note: %s", d.Message)
			}
		}
	}
	if !sawNovel {
		t.Error("novel leak (not in manifest) was swallowed")
	}
	if !sawOther {
		t.Error("non-ctflow diagnostic did not pass through")
	}
	if !sawMissing {
		t.Error("missing manifest entry not reported")
	}
}

func TestManifestApplyScoped(t *testing.T) {
	modRoot := t.TempDir()
	m := &analysis.Manifest{Leaks: []analysis.Leak{
		{File: "internal/blowfish/blowfish.go", Line: 138, Kind: "index"},
	}}
	// A scoped run that never analyzed blowfish must not call its entry missing.
	out := m.Apply(nil, modRoot, func(rel string) bool {
		return strings.HasPrefix(rel, "internal/aes/")
	})
	if len(out) != 0 {
		t.Fatalf("out-of-scope manifest entry reported: %v", out)
	}
	out = m.Apply(nil, modRoot, nil)
	if len(out) != 1 || !strings.Contains(out[0].Message, "not reproduced") {
		t.Fatalf("unscoped run should report the missing entry, got %v", out)
	}
}

func TestLoadManifestRejectsBadKind(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, analysis.ManifestName)
	m := &analysis.Manifest{Leaks: []analysis.Leak{{File: "a.go", Line: 1, Kind: "timing"}}}
	if err := m.WriteManifest(path); err != nil {
		t.Fatal(err)
	}
	if _, err := analysis.LoadManifest(path); err == nil {
		t.Fatal("manifest with unknown kind loaded without error")
	}
}
