package analysis_test

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"randfill/internal/analysis"
	"randfill/internal/analysis/checkers"
)

// wantRe matches the corpus expectation syntax: // want "substring"
var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

type expectation struct {
	file   string
	line   int
	substr string
}

func loadCorpus(t *testing.T, dir string) (*token.FileSet, []*analysis.Package) {
	t.Helper()
	fset, pkgs, err := analysis.LoadDir(analysis.LoadConfig{
		Dir: filepath.Join("testdata", "src", dir),
	})
	if err != nil {
		t.Fatalf("loading corpus %s: %v", dir, err)
	}
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			t.Fatalf("corpus %s must type check, got: %v", dir, e)
		}
	}
	return fset, pkgs
}

func parseExpectations(fset *token.FileSet, pkgs []*analysis.Package) []expectation {
	var wants []expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					wants = append(wants, expectation{file: pos.Filename, line: pos.Line, substr: m[1]})
				}
			}
		}
	}
	return wants
}

func analyzerByName(t *testing.T, name string) analysis.Analyzer {
	t.Helper()
	for _, az := range checkers.All() {
		if az.Name() == name {
			return az
		}
	}
	t.Fatalf("no checker named %q", name)
	return nil
}

// TestCheckerCorpus runs each checker over its seeded-violation corpus and
// requires an exact match: every // want is detected, and nothing else is
// reported (no false positives on the approved patterns in the same file).
func TestCheckerCorpus(t *testing.T) {
	cases := []struct{ dir, checker string }{
		{"detrand", "detrand"},
		{"maporder", "maporder"},
		{"rngshare", "rngshare"},
		{"errcheckio", "errcheck-io"},
		{"ctindex", "ctindex"},
		{"ctflow", "ctflow"},
		{"sim", "simlayer"},
		{"securecache", "simlayer"},
		{"atomicwrite", "atomicwrite"},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			fset, pkgs := loadCorpus(t, tc.dir)
			az := analyzerByName(t, tc.checker)
			diags, err := analysis.RunUnsuppressed(fset, pkgs, []analysis.Analyzer{az})
			if err != nil {
				t.Fatal(err)
			}
			wants := parseExpectations(fset, pkgs)
			if len(wants) == 0 {
				t.Fatal("corpus has no // want expectations")
			}

			matchedDiag := make([]bool, len(diags))
			for _, w := range wants {
				found := false
				for i, d := range diags {
					if d.File == w.file && d.Line == w.line && strings.Contains(d.Message, w.substr) {
						matchedDiag[i] = true
						found = true
					}
				}
				if !found {
					t.Errorf("%s:%d: want diagnostic containing %q, got none", w.file, w.line, w.substr)
				}
			}
			for i, d := range diags {
				if !matchedDiag[i] {
					t.Errorf("unexpected diagnostic (false positive in corpus): %s", d)
				}
			}
		})
	}
}

// TestSuppression proves //lint:ignore silences a finding that the raw run
// detects.
func TestSuppression(t *testing.T) {
	fset, pkgs := loadCorpus(t, "suppress")
	az := analyzerByName(t, "detrand")

	raw, err := analysis.RunUnsuppressed(fset, pkgs, []analysis.Analyzer{az})
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 1 || !strings.Contains(raw[0].Message, "time.Now") {
		t.Fatalf("unsuppressed run: want exactly the seeded time.Now finding, got %v", raw)
	}

	filtered, err := analysis.Run(fset, pkgs, []analysis.Analyzer{az})
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered) != 0 {
		t.Fatalf("//lint:ignore did not suppress: %v", filtered)
	}
}

// TestDirectiveHygiene: a malformed directive and a stale (unused)
// directive are both reported by the framework itself.
func TestDirectiveHygiene(t *testing.T) {
	fset, pkgs := loadCorpus(t, "directives")
	diags, err := analysis.Run(fset, pkgs, []analysis.Analyzer{analyzerByName(t, "detrand")})
	if err != nil {
		t.Fatal(err)
	}
	var sawMalformed, sawStale bool
	for _, d := range diags {
		if d.Checker != "lint" {
			t.Errorf("unexpected checker %q in directive corpus: %s", d.Checker, d)
		}
		if strings.Contains(d.Message, "malformed") {
			sawMalformed = true
		}
		if strings.Contains(d.Message, "suppresses nothing") {
			sawStale = true
		}
	}
	if !sawMalformed {
		t.Error("malformed //lint:ignore not reported")
	}
	if !sawStale {
		t.Error("stale //lint:ignore not reported")
	}
}

// TestStaleDirectiveNotReportedForDisabledChecker: when the named checker
// is not part of the run, an unused directive is not called stale.
func TestStaleDirectiveNotReportedForDisabledChecker(t *testing.T) {
	fset, pkgs := loadCorpus(t, "suppress")
	diags, err := analysis.Run(fset, pkgs, []analysis.Analyzer{analyzerByName(t, "maporder")})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "suppresses nothing") {
			t.Errorf("detrand directive wrongly reported stale when detrand is disabled: %s", d)
		}
	}
}

// TestWholeModuleIsClean is the acceptance criterion as a test: the repo
// itself must stay lint-clean (fixed or explicitly suppressed), with the
// ctflow findings reconciled against the committed leak manifest — the
// victims must leak at exactly the inventoried sites, nowhere else.
func TestWholeModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type checks the whole module")
	}
	modRoot, _, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	fset, pkgs, err := analysis.Load(analysis.LoadConfig{Dir: ".", Tests: true})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(fset, pkgs, checkers.All())
	if err != nil {
		t.Fatal(err)
	}
	m, err := analysis.LoadManifest(filepath.Join(modRoot, analysis.ManifestName))
	if err != nil {
		t.Fatalf("loading leak manifest: %v", err)
	}
	if len(m.Leaks) == 0 {
		t.Fatal("leak manifest is empty: the victims should leak somewhere")
	}
	diags = m.Apply(diags, modRoot, nil)
	for _, d := range diags {
		t.Errorf("repository not lint-clean: %s", d)
	}
}

func TestCheckerRegistry(t *testing.T) {
	if got := len(checkers.All()); got < 5 {
		t.Fatalf("registry has %d checkers, want >= 5", got)
	}
	azs, err := checkers.ByName("detrand, errcheck-io")
	if err != nil || len(azs) != 2 {
		t.Fatalf("ByName: %v %v", azs, err)
	}
	if _, err := checkers.ByName("nonesuch"); err == nil {
		t.Error("unknown checker name accepted")
	}
	for _, az := range checkers.All() {
		if az.Name() == "" || az.Doc() == "" {
			t.Errorf("checker %T missing name or doc", az)
		}
	}
}
