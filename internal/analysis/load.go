package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package plus its syntax trees.
type Package struct {
	// Path is the import path ("randfill/internal/cache"); external test
	// packages get a "_test" suffix ("randfill/internal/cache_test").
	Path string
	// Dir is the absolute directory holding the sources.
	Dir string
	// Files holds the parsed syntax, in file-name order.
	Files []*ast.File
	// Types and Info are the go/types results. Info is always non-nil and
	// populated as far as type checking succeeded; checkers must tolerate
	// missing entries (TypeOf returning nil) for code that failed to check.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-check problems (best effort: analysis
	// continues past them).
	TypeErrors []error
}

// LoadConfig controls module loading.
type LoadConfig struct {
	// Dir is any directory inside the module; the loader walks up to the
	// enclosing go.mod. Defaults to ".".
	Dir string
	// Tests includes _test.go files (in-package test files join their
	// package; external foo_test packages load separately).
	Tests bool
}

// Load walks the module containing cfg.Dir and returns every package in it,
// type checked against a shared file set. Directories named testdata or
// vendor, and directories starting with "." or "_", are skipped.
func Load(cfg LoadConfig) (*token.FileSet, []*Package, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, nil, err
	}

	fset := token.NewFileSet()
	imp := newModuleImporter(fset, modPath, root)

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		loaded, err := loadDir(fset, imp, path, d, cfg.Tests)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", d, err)
		}
		pkgs = append(pkgs, loaded...)
	}
	return fset, pkgs, nil
}

// LoadDir loads the single package (plus its external test package, if
// Tests is set) rooted at cfg.Dir without walking the whole module. Used by
// the analyzer test harness on testdata directories.
func LoadDir(cfg LoadConfig) (*token.FileSet, []*Package, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, nil, err
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	imp := newModuleImporter(fset, modPath, root)
	pkgs, err := loadDir(fset, imp, "testpkg/"+filepath.Base(abs), abs, cfg.Tests)
	if err != nil {
		return nil, nil, err
	}
	return fset, pkgs, nil
}

// loadDir parses and type checks the package in dir. It returns one Package
// for the primary package (including in-package test files when tests is
// set) and, when present, one more for the external _test package.
func loadDir(fset *token.FileSet, imp *moduleImporter, path, dir string, tests bool) ([]*Package, error) {
	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	var prim, ext []*ast.File
	var primName, extName string
	for _, name := range names {
		isTest := strings.HasSuffix(name, "_test.go")
		if isTest && !tests {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if isTest && strings.HasSuffix(f.Name.Name, "_test") {
			ext = append(ext, f)
			extName = f.Name.Name
		} else {
			prim = append(prim, f)
			primName = f.Name.Name
		}
	}

	var out []*Package
	if len(prim) > 0 {
		out = append(out, checkPackage(fset, imp, path, dir, primName, prim))
	}
	if len(ext) > 0 {
		out = append(out, checkPackage(fset, imp, path+"_test", dir, extName, ext))
	}
	return out, nil
}

// checkPackage runs go/types over files, collecting rather than failing on
// type errors so that analysis degrades gracefully.
func checkPackage(fset *token.FileSet, imp *moduleImporter, path, dir, name string, files []*ast.File) *Package {
	pkg := &Package{Path: path, Dir: dir, Files: files}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(path, fset, files, pkg.Info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	_ = name
	return pkg
}

// moduleImporter resolves imports during type checking: paths inside the
// module are type checked from source (module-aware, which the stdlib
// source importer is not), everything else (the standard library) is
// delegated to go/importer's source importer.
type moduleImporter struct {
	fset    *token.FileSet
	modPath string
	root    string
	std     types.ImporterFrom
	cache   map[string]*types.Package
}

func newModuleImporter(fset *token.FileSet, modPath, root string) *moduleImporter {
	return &moduleImporter{
		fset:    fset,
		modPath: modPath,
		root:    root,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache:   make(map[string]*types.Package),
	}
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, m.root, 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := m.cache[path]; ok {
		return pkg, nil
	}
	if path != m.modPath && !strings.HasPrefix(path, m.modPath+"/") {
		pkg, err := m.std.ImportFrom(path, dir, mode)
		if err != nil {
			return nil, err
		}
		m.cache[path] = pkg
		return pkg, nil
	}

	rel := strings.TrimPrefix(strings.TrimPrefix(path, m.modPath), "/")
	pdir := filepath.Join(m.root, filepath.FromSlash(rel))
	names, err := goFileNames(pdir)
	if err != nil {
		return nil, fmt.Errorf("import %q: %w", path, err)
	}
	var files []*ast.File
	for _, name := range names {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(m.fset, filepath.Join(pdir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("import %q: no Go files in %s", path, pdir)
	}
	conf := types.Config{Importer: m}
	pkg, err := conf.Check(path, m.fset, files, nil)
	if err != nil {
		return nil, err
	}
	m.cache[path] = pkg
	return pkg, nil
}

// FindModuleRoot walks up from dir to the enclosing go.mod and returns the
// module root directory and module path. cmd/rflint uses it to locate the
// leak manifest and to resolve -since changed paths.
func FindModuleRoot(dir string) (root, modPath string, err error) {
	return findModule(dir)
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			path := parseModulePath(string(data))
			if path == "" {
				return "", "", fmt.Errorf("no module directive in %s/go.mod", d)
			}
			return d, path, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}

func parseModulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

func hasGoFiles(dir string) bool {
	names, err := goFileNames(dir)
	return err == nil && len(names) > 0
}

func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
