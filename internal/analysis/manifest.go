package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"randfill/internal/atomicio"
)

// ManifestName is the leak manifest's file name at the module root.
const ManifestName = "LEAKS.json"

// Manifest is the committed leak inventory: the golden list of
// secret-dependent sinks the victim packages are REQUIRED to have. The
// attacks only work because internal/aes, internal/blowfish, and
// internal/modexp leak at these exact sites, so the manifest is checked in
// both directions — a finding outside the manifest is a new leak, and a
// manifest entry with no finding means a victim silently stopped leaking
// (and every experiment built on it measures nothing).
type Manifest struct {
	Leaks []Leak `json:"leaks"`
}

// Leak is one expected secret-dependent sink.
type Leak struct {
	// File is the module-relative slash-separated path.
	File string `json:"file"`
	Line int    `json:"line"`
	// Kind is "index", "branch", or "divmod".
	Kind string `json:"kind"`
	// Note says which victim behavior this site implements.
	Note string `json:"note,omitempty"`
}

func (l Leak) key() string { return fmt.Sprintf("%s:%d:%s", l.File, l.Line, l.Kind) }

// LoadManifest reads a manifest file.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	for _, l := range m.Leaks {
		switch l.Kind {
		case "index", "branch", "divmod":
		default:
			return nil, fmt.Errorf("%s: entry %s has unknown kind %q", path, l.key(), l.Kind)
		}
	}
	return &m, nil
}

// diagKindFromMessage recovers a ctflow diagnostic's sink kind from its
// stable message prefix.
func diagKindFromMessage(d Diagnostic) string {
	if d.Checker != "ctflow" {
		return ""
	}
	switch {
	case strings.HasPrefix(d.Message, "secret-dependent index:"):
		return "index"
	case strings.HasPrefix(d.Message, "secret-dependent branch:"):
		return "branch"
	case strings.HasPrefix(d.Message, "secret-dependent div/mod:"):
		return "divmod"
	}
	return ""
}

// relFile converts a diagnostic's file to module-relative slash form.
func relFile(modRoot, file string) string {
	if rel, err := filepath.Rel(modRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

// Apply reconciles ctflow diagnostics against the manifest: findings
// matching an entry by (file, line, kind) are expected and removed;
// entries with no finding become SeverityError diagnostics (a victim
// stopped leaking). inScope, when non-nil, limits the missing-entry check
// to manifest files the current run actually analyzed, so scoped runs
// (directory argument, -since) don't report every out-of-scope entry as
// missing. Non-ctflow diagnostics pass through untouched.
func (m *Manifest) Apply(diags []Diagnostic, modRoot string, inScope func(relFile string) bool) []Diagnostic {
	expected := make(map[string]Leak, len(m.Leaks))
	for _, l := range m.Leaks {
		expected[l.key()] = l
	}
	seen := map[string]bool{}
	var out []Diagnostic
	for _, d := range diags {
		kind := diagKindFromMessage(d)
		if kind == "" {
			out = append(out, d)
			continue
		}
		key := Leak{File: relFile(modRoot, d.File), Line: d.Line, Kind: kind}.key()
		if _, ok := expected[key]; ok {
			seen[key] = true
			continue
		}
		out = append(out, d)
	}
	var missing []Leak
	reported := map[string]bool{}
	for _, l := range m.Leaks {
		if seen[l.key()] || reported[l.key()] {
			continue
		}
		if inScope != nil && !inScope(l.File) {
			continue
		}
		reported[l.key()] = true
		missing = append(missing, l)
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i].key() < missing[j].key() })
	for _, l := range missing {
		note := ""
		if l.Note != "" {
			note = " (" + l.Note + ")"
		}
		out = append(out, Diagnostic{
			File:     filepath.Join(modRoot, filepath.FromSlash(l.File)),
			Line:     l.Line,
			Checker:  "ctflow",
			Severity: SeverityError,
			Message: fmt.Sprintf("leak manifest entry not reproduced: expected a secret-dependent %s here%s — "+
				"the victim stopped leaking, so the attacks and experiments built on it measure nothing; "+
				"fix the regression or update %s", l.Kind, note, ManifestName),
		})
	}
	return out
}

// BuildManifest turns the current ctflow findings into a manifest,
// preserving the notes of entries that survive from old (matched by
// file+line+kind). The result is sorted for a stable diff.
func BuildManifest(diags []Diagnostic, modRoot string, old *Manifest) *Manifest {
	notes := map[string]string{}
	if old != nil {
		for _, l := range old.Leaks {
			notes[l.key()] = l.Note
		}
	}
	seen := map[string]bool{}
	m := &Manifest{Leaks: []Leak{}}
	for _, d := range diags {
		kind := diagKindFromMessage(d)
		if kind == "" {
			continue
		}
		l := Leak{File: relFile(modRoot, d.File), Line: d.Line, Kind: kind}
		if seen[l.key()] {
			continue
		}
		seen[l.key()] = true
		l.Note = notes[l.key()]
		m.Leaks = append(m.Leaks, l)
	}
	sort.Slice(m.Leaks, func(i, j int) bool { return m.Leaks[i].key() < m.Leaks[j].key() })
	return m
}

// WriteManifest writes the manifest atomically (it is a result artifact:
// a torn write would make every subsequent lint run lie).
func (m *Manifest) WriteManifest(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, append(data, '\n'), 0o644)
}
