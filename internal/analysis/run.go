package analysis

import (
	"go/token"
	"sort"
)

// Run executes every analyzer over every package, applies //lint:ignore
// suppression, and returns the surviving diagnostics sorted by position.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	enabled := make(map[string]bool, len(analyzers))
	for _, az := range analyzers {
		enabled[az.Name()] = true
	}
	if err := runAll(fset, pkgs, analyzers, &diags); err != nil {
		return nil, err
	}

	dirs, malformed := parseDirectives(fset, pkgs)
	diags = suppress(diags, dirs, enabled)
	diags = append(diags, malformed...)

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Checker < b.Checker
	})
	return diags, nil
}

// runAll drives per-package analyzers over every package, and module
// analyzers once over the whole package set.
func runAll(fset *token.FileSet, pkgs []*Package, analyzers []Analyzer, diags *[]Diagnostic) error {
	for _, pkg := range pkgs {
		for _, az := range analyzers {
			pass := &Pass{Analyzer: az, Fset: fset, Pkg: pkg, diags: diags}
			if err := az.Run(pass); err != nil {
				return err
			}
		}
	}
	for _, az := range analyzers {
		ma, ok := az.(ModuleAnalyzer)
		if !ok {
			continue
		}
		mp := &ModulePass{Analyzer: az, Fset: fset, Pkgs: pkgs, diags: diags}
		if err := ma.RunModule(mp); err != nil {
			return err
		}
	}
	return nil
}

// RunUnsuppressed is Run without the //lint:ignore filter; the analyzer
// test harness uses it to assert that seeded violations are detected even
// when the corpus also tests suppression.
func RunUnsuppressed(fset *token.FileSet, pkgs []*Package, analyzers []Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	if err := runAll(fset, pkgs, analyzers, &diags); err != nil {
		return nil, err
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return diags, nil
}
