package checkers

import (
	"go/ast"
	"go/types"
	"regexp"

	"randfill/internal/analysis"
)

// ctindex flags array/slice indexing whose index expression is derived
// from a secret-looking parameter (secret, key, priv, exponent,
// plaintext). Secret-dependent table lookups are exactly the leak this
// repository studies — so they are only allowed in the packages that
// intentionally model leaky victims. Everywhere else (attack harnesses,
// experiment drivers, statistics) an index named after a secret is either
// a mislabelled variable or an accidental new victim, and both deserve a
// look.
type ctindex struct{}

func (ctindex) Name() string { return "ctindex" }

func (ctindex) Doc() string {
	return "flags secret-derived array indexing outside the designated victim packages (internal/aes, internal/blowfish, internal/modexp)"
}

// ctindexVictims are the packages that model leaky table lookups on
// purpose; the paper's attacks need them to leak.
var ctindexVictims = []string{
	"internal/aes",
	"internal/blowfish",
	"internal/modexp",
}

var secretName = regexp.MustCompile(`(?i)^(secret|key|priv|exponent|plaintext)`)

func (ctindex) Run(pass *analysis.Pass) error {
	for _, suffix := range ctindexVictims {
		if pathHasSuffix(pass.Pkg.Path, suffix) {
			return nil
		}
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			idx, ok := n.(*ast.IndexExpr)
			if !ok {
				return true
			}
			t := info.TypeOf(idx.X)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Array, *types.Slice:
			case *types.Pointer:
				ptr := t.Underlying().(*types.Pointer)
				if _, isArr := ptr.Elem().Underlying().(*types.Array); !isArr {
					return true
				}
			default:
				return true
			}
			if id := secretIdent(idx.Index); id != nil {
				pass.Reportf(idx.Index.Pos(), analysis.SeverityWarning,
					"index derived from %q addresses memory with a secret-looking value; only the designated victim packages (%s) may model leaky lookups — rename the variable or move the model", id.Name, "internal/aes, internal/blowfish, internal/modexp")
			}
			return true
		})
	}
	return nil
}

// secretIdent returns the first identifier inside expr whose name looks
// like a secret, ignoring identifiers that are function names of calls
// (hashKey(i) indexes by a hash, not by the key itself... but the hash of
// a secret is still flagged via its arguments).
func secretIdent(expr ast.Expr) *ast.Ident {
	var found *ast.Ident
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && secretName.MatchString(id.Name) {
			found = id
			return false
		}
		return true
	})
	return found
}
