package checkers

import (
	"go/ast"
	"regexp"

	"randfill/internal/analysis"
	"randfill/internal/analysis/flow"
)

// ctindex flags array/slice indexing whose index expression is derived
// from a secret-looking parameter (secret, key, priv, exponent,
// plaintext). Secret-dependent table lookups are exactly the leak this
// repository studies — so they are only allowed in the packages that
// intentionally model leaky victims. Everywhere else (attack harnesses,
// experiment drivers, statistics) an index named after a secret is either
// a mislabelled variable or an accidental new victim, and both deserve a
// look.
type ctindex struct{}

func (ctindex) Name() string { return "ctindex" }

func (ctindex) Doc() string {
	return "flags secret-derived array indexing outside the designated victim packages (internal/aes, internal/blowfish, internal/modexp)"
}

// ctindexVictims are the packages that model leaky table lookups on
// purpose; the paper's attacks need them to leak.
var ctindexVictims = []string{
	"internal/aes",
	"internal/blowfish",
	"internal/modexp",
}

var secretName = regexp.MustCompile(`(?i)^(secret|key|priv|exponent|plaintext)`)

func (ctindex) Run(pass *analysis.Pass) error {
	for _, suffix := range ctindexVictims {
		if pathHasSuffix(pass.Pkg.Path, suffix) {
			return nil
		}
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// *ast.IndexListExpr is always generic instantiation (multiple
			// type arguments) — never a memory access — and a single-arg
			// instantiation parses as an IndexExpr whose index is a type;
			// both are skipped. Conversely, indexing a type-parameter value
			// whose constraint only admits arrays/slices IS a memory access
			// (flow.IndexableMemory walks the constraint), so generic code
			// cannot dodge the check.
			idx, ok := n.(*ast.IndexExpr)
			if !ok {
				return true
			}
			if tv, ok := info.Types[idx.Index]; ok && tv.IsType() {
				return true
			}
			if !flow.IndexableMemory(info.TypeOf(idx.X)) {
				return true
			}
			if id := secretIdent(idx.Index); id != nil {
				pass.Reportf(idx.Index.Pos(), analysis.SeverityWarning,
					"index derived from %q addresses memory with a secret-looking value; only the designated victim packages (%s) may model leaky lookups — rename the variable or move the model", id.Name, "internal/aes, internal/blowfish, internal/modexp")
			}
			return true
		})
	}
	return nil
}

// secretIdent returns the first identifier inside expr whose name looks
// like a secret, ignoring identifiers that are function names of calls
// (keyHash(i) indexes by a hash, not by the key itself... but the hash of
// a secret is still flagged via its arguments). ast.Inspect visits a
// CallExpr before its children, so the callee identifier — including one
// buried under generic instantiation — is marked skipped before the walk
// reaches it; receivers and arguments are still visited.
func secretIdent(expr ast.Expr) *ast.Ident {
	var found *ast.Ident
	skip := map[*ast.Ident]bool{}
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			fun := ast.Unparen(n.Fun)
			for {
				switch f := fun.(type) {
				case *ast.IndexExpr:
					fun = ast.Unparen(f.X)
					continue
				case *ast.IndexListExpr:
					fun = ast.Unparen(f.X)
					continue
				}
				break
			}
			switch f := fun.(type) {
			case *ast.Ident:
				skip[f] = true
			case *ast.SelectorExpr:
				skip[f.Sel] = true
			}
		case *ast.Ident:
			if !skip[n] && secretName.MatchString(n.Name) {
				found = n
				return false
			}
		}
		return true
	})
	return found
}
