package checkers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"randfill/internal/analysis"
)

// rngshare enforces stream hygiene for internal/rng sources. Three rules:
//
//  1. No package-level *rng.Source. An ambient shared stream couples the
//     draw sequences of every subsystem that touches it, so adding one
//     draw anywhere reorders randomness everywhere — the classic way a
//     refactor silently changes Table 3.
//
//  2. Within one function, the same *rng.Source must not be passed as an
//     argument to two different calls. Two subsystems sharing one stream
//     interleave their draws; derive independent streams with Split
//     (src.Split(id)) so each subsystem's sequence is a pure function of
//     the root seed.
//
//  3. A *rng.Source must not cross a goroutine boundary: neither captured
//     free by a closure launched with `go` nor passed as a bare argument in
//     a go statement. Concurrent draws race on the stream state, and even
//     under a lock the interleaving (hence every downstream number) would
//     depend on the scheduler. The sanctioned shapes construct the stream
//     inside the goroutine or hand over a derived one:
//
//     go func(s *rng.Source) { ... }(src.Split(id))
type rngshare struct{}

func (rngshare) Name() string { return "rngshare" }

func (rngshare) Doc() string {
	return "flags package-level *rng.Source vars and one source passed to multiple subsystems without an interposed Split"
}

func (rngshare) Run(pass *analysis.Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		// Rule 1: package-level sources.
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj := info.Defs[name]
					if obj != nil && isRNGSourcePtr(obj.Type()) {
						pass.Reportf(name.Pos(), analysis.SeverityError,
							"package-level *rng.Source %q is an ambient shared stream; thread a Source through constructors and derive per-subsystem streams with Split", name.Name)
					}
				}
			}
		}

		// Rule 2: one source, many subsystems.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSharedArgs(pass, fd.Body)
		}

		// Rule 3: sources crossing a goroutine boundary.
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				checkGoStmt(pass, g)
			}
			return true
		})
	}
	return nil
}

// checkGoStmt reports *rng.Source values that escape into a goroutine: bare
// source arguments of the go call, and sources captured free by a launched
// func literal. Sources constructed inside the closure, closure parameters,
// and Split-derived arguments (call expressions, not bare idents) all pass.
func checkGoStmt(pass *analysis.Pass, g *ast.GoStmt) {
	info := pass.Pkg.Info
	for _, arg := range g.Call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			continue
		}
		if obj := info.Uses[id]; obj != nil && isRNGSourcePtr(obj.Type()) {
			pass.Reportf(id.Pos(), analysis.SeverityError,
				"rng source %q passed to a goroutine; concurrent draws race on the stream — pass %s.Split(id) instead", id.Name, id.Name)
		}
	}
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	reported := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || reported[obj] || !isRNGSourcePtr(obj.Type()) {
			return true
		}
		// Only free variables count: anything declared within the literal
		// (parameters, locals, nested-closure state) belongs to the
		// goroutine already.
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true
		}
		reported[obj] = true
		pass.Reportf(id.Pos(), analysis.SeverityError,
			"rng source %q captured by a goroutine closure; concurrent draws race on the stream — construct the source inside the goroutine or pass %s.Split(id) as an argument", id.Name, id.Name)
		return true
	})
}

// useSite is one argument-position use of a source, annotated with the
// branch (switch case, if/else arm, select clause) it sits in so that
// mutually exclusive uses are not treated as sharing.
type useSite struct {
	pos      token.Pos
	branches map[ast.Node]ast.Node // controlling stmt -> arm containing the use
}

// checkSharedArgs reports each *rng.Source identifier that appears in
// argument position of more than one call that can execute in the same
// run of body. Receiver uses (src.Split, src.Intn, ...) do not count:
// methods on the source are how a stream is meant to be consumed, and
// Split is the sanctioned way to hand derived streams to multiple
// subsystems. Uses in different arms of one switch/if/select are
// exclusive and do not conflict.
func checkSharedArgs(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	uses := make(map[*ast.Ident]bool) // idents already consumed as args
	sites := make(map[types.Object][]useSite)
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok || uses[id] {
				continue
			}
			obj := info.Uses[id]
			if obj == nil || !isRNGSourcePtr(obj.Type()) {
				continue
			}
			uses[id] = true
			sites[obj] = append(sites[obj], useSite{pos: id.Pos(), branches: branchesOf(stack)})
		}
		return true
	})
	for _, list := range sites {
		sort.Slice(list, func(i, j int) bool { return list[i].pos < list[j].pos })
		for i, s := range list {
			for j := 0; j < i; j++ {
				if conflicting(list[j], s) {
					pass.Reportf(s.pos, analysis.SeverityWarning,
						"rng source passed to multiple subsystems in this function; their draws will interleave — derive independent streams with src.Split(id)")
					break
				}
			}
		}
	}
}

// branchesOf maps each branching statement on the ancestor path to the arm
// the use lives in.
func branchesOf(stack []ast.Node) map[ast.Node]ast.Node {
	m := make(map[ast.Node]ast.Node)
	for i := 1; i < len(stack); i++ {
		node := stack[i]
		switch node.(type) {
		case *ast.CaseClause, *ast.CommClause:
			// The clause hangs off the switch's BlockStmt; find the
			// nearest enclosing switch/select statement.
			for j := i - 1; j >= 0; j-- {
				switch stack[j].(type) {
				case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
					m[stack[j]] = node
				default:
					continue
				}
				break
			}
		}
		if p, ok := stack[i-1].(*ast.IfStmt); ok {
			if node == p.Body || node == p.Else {
				m[stack[i-1]] = node
			}
		}
	}
	return m
}

// conflicting reports whether two uses can both execute in one run: they
// do, unless some common branching statement places them in different arms.
func conflicting(a, b useSite) bool {
	for stmt, arm := range a.branches {
		if other, ok := b.branches[stmt]; ok && other != arm {
			return false
		}
	}
	return true
}
