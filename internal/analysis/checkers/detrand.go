package checkers

import (
	"go/ast"
	"strconv"

	"randfill/internal/analysis"
)

// detrand enforces the repository's determinism contract: every stochastic
// choice and every timestamp that can influence simulator state must come
// from the seeded internal/rng streams. Peters et al. and Chakraborty et
// al. both show that RNG plumbing details silently change the security
// conclusions of randomized-cache evaluations; an unseeded math/rand or a
// wall-clock read makes the paper's tables unreproducible.
type detrand struct{}

// bannedImports may not be imported anywhere in the module outside the
// allowlist: math/rand draws from an ambient, possibly unseeded stream,
// and crypto/rand is nondeterministic by design.
var bannedImports = map[string]string{
	"math/rand":    "ambient PRNG; draw from a seeded internal/rng stream instead",
	"math/rand/v2": "ambient PRNG; draw from a seeded internal/rng stream instead",
	"crypto/rand":  "nondeterministic by design; draw from a seeded internal/rng stream instead",
}

// bannedTimeFuncs are time-package entry points that read the wall clock
// or real timers. Simulated time lives in internal/sim's cycle counters.
var bannedTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
	"Tick":  true,
	"After": true,
}

// detrandAllowlist names package-path suffixes exempt from the rule.
// It is intentionally empty: internal/rng itself uses no banned imports,
// and individual justified exceptions (e.g. wall-clock progress reporting
// in a CLI) must carry an inline //lint:ignore with a reason instead of a
// blanket exemption.
var detrandAllowlist = []string{}

func (detrand) Name() string { return "detrand" }

func (detrand) Doc() string {
	return "forbids math/rand, crypto/rand, and wall-clock time reads; all randomness must flow through seeded internal/rng streams"
}

func (detrand) Run(pass *analysis.Pass) error {
	for _, suffix := range detrandAllowlist {
		if pathHasSuffix(pass.Pkg.Path, suffix) {
			return nil
		}
	}
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, banned := bannedImports[path]; banned {
				pass.Reportf(imp.Pos(), analysis.SeverityError,
					"import of %s breaks reproducibility: %s", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !bannedTimeFuncs[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg := pkgNameOf(pass.Pkg.Info, id)
			// Fall back to the syntactic package name when type info is
			// incomplete, so a broken build still lints.
			if pkg != nil && pkg.Path() == "time" || pkg == nil && id.Name == "time" {
				pass.Reportf(call.Pos(), analysis.SeverityError,
					"time.%s reads the wall clock and breaks reproducibility; model time with simulator cycles (internal/sim) or a seeded internal/rng stream", sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
