package checkers

import (
	"go/ast"
	"strings"

	"randfill/internal/analysis"
)

// atomicwrite enforces the crash-safety contract for result artifacts:
// anything the repo writes as an output — golden files, BENCH.json, traces,
// checkpoints — must go through internal/atomicio (temp file in the target
// directory, fsync, rename), so a crash or interrupt can never publish a
// torn file that a later run would read as a result. Direct os.Create /
// os.WriteFile calls in non-test code are flagged; internal/atomicio itself
// is exempt (it is the one place allowed to touch the raw primitives), and
// test files are exempt (tests construct broken files on purpose). The rare
// legitimate direct write — a streaming pprof profile, deliberate fault
// injection — carries a //lint:ignore atomicwrite directive stating why.
type atomicwrite struct{}

func (atomicwrite) Name() string { return "atomicwrite" }

func (atomicwrite) Doc() string {
	return "forbids direct os.Create/os.WriteFile outside internal/atomicio; result artifacts must be written atomically"
}

// atomicwriteBanned lists the raw write entry points, in stable order.
var atomicwriteBanned = []string{"Create", "WriteFile"}

func (atomicwrite) Run(pass *analysis.Pass) error {
	if pathHasSuffix(pass.Pkg.Path, "internal/atomicio") || pathHasSuffix(pass.Pkg.Path, "atomicio") {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
				return true
			}
			for _, banned := range atomicwriteBanned {
				if fn.Name() == banned {
					pass.Reportf(call.Pos(), analysis.SeverityError,
						"result artifact written non-atomically (os.%s); use internal/atomicio (Create/Commit or WriteFile) so a crash cannot publish a torn file",
						fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
