// Package checkers holds the domain-specific analyzers that enforce this
// repository's determinism and security-modelling policy:
//
//   - detrand:     all randomness and time must come from internal/rng
//   - maporder:    no observable output may depend on map iteration order
//   - rngshare:    rng streams are threaded, never ambiently shared
//   - errcheck-io: experiment I/O errors must not be dropped
//   - ctindex:     only designated victim packages may index by secrets
//   - ctflow:      interprocedural taint: secrets reach memory indices,
//     branches, and div/mod only at manifest-inventoried victim sites
//   - simlayer:    internal/sim constructs caches only in level builders
//   - atomicwrite: result artifacts are written via internal/atomicio
//
// See each checker's Doc for the precise rule and its rationale.
package checkers

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"randfill/internal/analysis"
)

// All returns every registered checker, in stable order.
func All() []analysis.Analyzer {
	return []analysis.Analyzer{
		detrand{},
		maporder{},
		rngshare{},
		errcheckIO{},
		ctindex{},
		ctflow{},
		simlayer{},
		atomicwrite{},
	}
}

// ByName resolves a comma-separated -checkers list.
func ByName(names string) ([]analysis.Analyzer, error) {
	byName := make(map[string]analysis.Analyzer)
	for _, az := range All() {
		byName[az.Name()] = az
	}
	var out []analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		az, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown checker %q", name)
		}
		out = append(out, az)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty checker list %q", names)
	}
	return out, nil
}

// calleeFunc resolves the *types.Func a call invokes (package function,
// method, or interface method), or nil when it cannot be resolved (builtin,
// function-typed variable, or missing type info). Generic instantiation
// (f[T](...) parses the callee as an IndexExpr or IndexListExpr) is
// unwrapped, so generic calls resolve like plain ones.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	for {
		switch f := fun.(type) {
		case *ast.IndexExpr:
			fun = ast.Unparen(f.X)
			continue
		case *ast.IndexListExpr:
			fun = ast.Unparen(f.X)
			continue
		}
		break
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// pkgNameOf returns the imported package an identifier refers to, when the
// identifier is a package name in a selector (e.g. the "time" in
// time.Now()). Falls back to nil when type info is missing.
func pkgNameOf(info *types.Info, id *ast.Ident) *types.Package {
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported()
	}
	return nil
}

// isRNGSourcePtr reports whether t is *rng.Source from internal/rng.
func isRNGSourcePtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Source" &&
		strings.HasSuffix(named.Obj().Pkg().Path(), "internal/rng")
}

// pathHasSuffix reports whether pkgPath is exactly suffix or ends in
// "/"+suffix, so policy lists survive module renames and the test harness's
// synthetic package paths.
func pathHasSuffix(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}
