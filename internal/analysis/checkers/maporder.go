package checkers

import (
	"go/ast"
	"go/types"

	"randfill/internal/analysis"
)

// maporder flags range statements over maps whose body produces observable
// effects: appending to a slice, writing output, or calling test/benchmark
// hooks. Go randomizes map iteration order, so any output, subtest order,
// or shared-rng draw sequence inside such a loop differs run to run —
// exactly the nonreproducibility the simulator's security tables cannot
// tolerate.
//
// The canonical fix — collect the keys, sort them, iterate the sorted
// slice — is recognized and exempted: a loop whose body only appends the
// range key to a slice that is later passed to sort.* / slices.Sort* in
// the same function does not fire.
type maporder struct{}

func (maporder) Name() string { return "maporder" }

func (maporder) Doc() string {
	return "flags map iteration whose body appends, writes output, or drives tests; map order is nondeterministic — sort the keys first"
}

// effectCalls are method/function names whose invocation inside a map
// range makes iteration order observable.
var effectCalls = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Write": true, "WriteString": true, "WriteByte": true,
	"Error": true, "Errorf": true, "Fatal": true, "Fatalf": true,
	"Log": true, "Logf": true, "Skip": true, "Skipf": true,
	"Run": true,
}

func (maporder) Run(pass *analysis.Pass) error {
	for _, f := range pass.Pkg.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Pkg.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			effect := firstEffect(rs.Body)
			if effect == "" {
				return true
			}
			if isSortedKeyCollection(rs, stack) {
				return true
			}
			pass.Reportf(rs.For, analysis.SeverityError,
				"map iteration order is nondeterministic but this loop %s; collect the keys, sort them, and range over the sorted slice (or use an ordered slice of named cases)", effect)
			return true
		})
	}
	return nil
}

// firstEffect describes the first order-observable effect in body, or ""
// when the loop body is effect-free.
func firstEffect(body *ast.BlockStmt) string {
	effect := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if effect != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			effect = "sends on a channel"
			return false
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "append" {
					effect = "appends to a slice"
					return false
				}
			case *ast.SelectorExpr:
				if effectCalls[fun.Sel.Name] {
					effect = "calls " + fun.Sel.Name
					return false
				}
			}
		}
		return true
	})
	return effect
}

// isSortedKeyCollection recognizes the approved pattern:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Slice/sort.Ints/slices.Sort...(keys)
//
// i.e. a single-statement body appending the range key to a slice that is
// sorted later in the same enclosing function.
func isSortedKeyCollection(rs *ast.RangeStmt, stack []ast.Node) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	target, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}

	// Find the nearest enclosing function body and look for a later
	// sort.* / slices.Sort* call on the same identifier.
	var fnBody *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			fnBody = fn.Body
		case *ast.FuncLit:
			fnBody = fn.Body
		}
		if fnBody != nil {
			break
		}
	}
	if fnBody == nil {
		return false
	}
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && id.Name == target.Name {
				sorted = true
				return false
			}
			// sort.Slice(keys, func(...)...) style: first arg only.
			break
		}
		return true
	})
	return sorted
}
