package checkers

import (
	"go/token"
	"strings"

	"randfill/internal/analysis"
	"randfill/internal/analysis/flow"
)

// ctflow is the interprocedural secret-taint checker: it proves, rather
// than pattern-matches, where secrets reach memory indices, branch
// conditions, or variable-latency operations. ctindex remains as the
// cheap per-package name heuristic; ctflow follows the actual dataflow —
// through assignments, struct fields, and call chains — and carries a
// source→hop→sink witness on every finding (rflint -trace prints it).
//
// The committed leak manifest (LEAKS.json at the module root) is the
// golden inventory of expected findings: the victim packages MUST leak at
// exactly their known sites (the attacks depend on it) and everything
// else must be clean. rflint reconciles the two; a new finding or a
// missing one both fail the build.
type ctflow struct{}

func (ctflow) Name() string { return "ctflow" }

func (ctflow) Doc() string {
	return "interprocedural taint analysis: secrets must not reach array indices, branches, or div/mod outside the manifest-inventoried victim sites"
}

// Run is a no-op: ctflow needs the whole module at once (RunModule).
func (ctflow) Run(pass *analysis.Pass) error { return nil }

// ctflowSeedPkgs are the packages where a secret-looking parameter name
// alone seeds taint: the designated victims, plus the checker's own test
// corpus. Everywhere else seeding requires an explicit //ctflow:secret
// annotation, so a harness variable named "key" does not flood the module
// with findings.
var ctflowSeedPkgs = append([]string{"testpkg/ctflow"}, ctindexVictims...)

func (ctflow) RunModule(mp *analysis.ModulePass) error {
	var pkgs []*flow.PackageInfo
	for _, p := range mp.Pkgs {
		if p.Types == nil || strings.HasSuffix(p.Path, "_test") {
			// External test packages exercise the victims with secrets the
			// test itself chose; the leak model covers the victims' code.
			continue
		}
		pkgs = append(pkgs, &flow.PackageInfo{
			Path:  p.Path,
			Files: p.Files,
			Types: p.Types,
			Info:  p.Info,
		})
	}
	findings := flow.Analyze(flow.Config{
		Fset: mp.Fset,
		Pkgs: pkgs,
		SeedPackage: func(path string) bool {
			for _, suffix := range ctflowSeedPkgs {
				if pathHasSuffix(path, suffix) {
					return true
				}
			}
			return false
		},
		SkipSinkFile: func(filename string) bool {
			return strings.HasSuffix(filename, "_test.go")
		},
		// Soundness warnings (today: the 64-parameter summary cap) become
		// ordinary diagnostics, so an untrackable signature fails lint
		// instead of silently dropping taint. The message deliberately
		// matches no manifest kind prefix, so reconciliation passes it
		// through.
		Warn: func(pos token.Pos, msg string) {
			mp.Report(pos, analysis.SeverityWarning, msg, nil)
		},
	})
	for _, f := range findings {
		var trace []analysis.TraceStep
		for _, s := range f.Steps {
			ts := analysis.TraceStep{Desc: s.Desc}
			if s.Pos.IsValid() {
				pos := mp.Fset.Position(s.Pos)
				ts.File, ts.Line = pos.Filename, pos.Line
			}
			trace = append(trace, ts)
		}
		mp.Report(f.Pos, analysis.SeverityWarning,
			CtflowKindPrefix(f.Kind.String())+" "+f.Expr+" (secret: "+f.Source+")", trace)
	}
	return nil
}

// CtflowKindPrefix returns the message prefix ctflow uses for a sink kind.
// The manifest reconciliation recovers the kind from this prefix, so the
// mapping is part of the checker's stable output format.
func CtflowKindPrefix(kind string) string {
	switch kind {
	case "index":
		return "secret-dependent index:"
	case "branch":
		return "secret-dependent branch:"
	case "divmod":
		return "secret-dependent div/mod:"
	}
	return "secret-dependent " + kind + ":"
}

// CtflowDiagKind recovers the sink kind from a ctflow diagnostic message,
// or "" for non-ctflow messages.
func CtflowDiagKind(d analysis.Diagnostic) string {
	if d.Checker != "ctflow" {
		return ""
	}
	for _, kind := range []string{"index", "branch", "divmod"} {
		if strings.HasPrefix(d.Message, CtflowKindPrefix(kind)) {
			return kind
		}
	}
	return ""
}
