package checkers

import (
	"go/ast"
	"strings"

	"randfill/internal/analysis"
)

// simlayer enforces the simulator's layering contract: internal/sim and
// internal/securecache are composition layers over cache.Cache,
// hierarchy.Level and securecache.SecureCache, so concrete cache
// architectures may only be constructed inside the designated builders
// (functions named build* — the level builders in sim/levels.go and the
// registry factories in securecache/registry.go). A constructor call
// anywhere else re-hardwires a level the way the pre-hierarchy machine
// hardwired its L2 — the exact coupling the refactor removed: code that
// constructs a concrete cache inline cannot be retargeted to a different
// architecture, level count, or registry entry by configuration.
// Test files are exempt (tests pin concrete behaviour on purpose).
type simlayer struct{}

func (simlayer) Name() string { return "simlayer" }

func (simlayer) Doc() string {
	return "forbids concrete cache construction in internal/sim and internal/securecache outside the build* builders"
}

// simlayerConstructors lists the cache-architecture constructors, as
// (package path suffix, function name) pairs in stable order.
var simlayerConstructors = []struct{ pkgSuffix, fn string }{
	{"internal/cache", "NewSetAssoc"},
	{"internal/newcache", "New"},
	{"internal/newcache", "NewWithPolicy"},
	{"internal/plcache", "New"},
	{"internal/plcache", "NewWithPolicy"},
	{"internal/rpcache", "New"},
	{"internal/rpcache", "NewWithPolicy"},
	{"internal/nomo", "New"},
	{"internal/nomo", "NewWithPolicy"},
	{"internal/scattercache", "New"},
	{"internal/scattercache", "NewWithPolicy"},
	{"internal/mirage", "New"},
	{"internal/mirage", "NewWithPolicy"},
}

func (simlayer) Run(pass *analysis.Pass) error {
	if !pathHasSuffix(pass.Pkg.Path, "sim") && !pathHasSuffix(pass.Pkg.Path, "securecache") {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasPrefix(fd.Name.Name, "build") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				for _, c := range simlayerConstructors {
					if fn.Name() == c.fn && pathHasSuffix(fn.Pkg().Path(), c.pkgSuffix) {
						pass.Reportf(call.Pos(), analysis.SeverityError,
							"concrete cache constructed outside a level builder (%s.%s in %q); construct caches only in build* functions so every level stays configuration-driven",
							fn.Pkg().Name(), fn.Name(), fd.Name.Name)
					}
				}
				return true
			})
		}
	}
	return nil
}
