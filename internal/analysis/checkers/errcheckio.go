package checkers

import (
	"go/ast"
	"go/types"

	"randfill/internal/analysis"
)

// errcheckIO flags dropped error returns from the I/O paths that carry
// experiment output: internal/traceio, os, io, and bufio. A Write or Flush
// whose error is discarded can silently truncate a trace file or a results
// table — the experiment then "succeeds" with corrupt data. Both plain
// statement calls and defers are flagged; a deferred Close on a file that
// was written is the classic silent-truncation bug (close flushes the last
// buffered data). Deliberate drops on read-only paths must carry an inline
// //lint:ignore errcheck-io with the reason.
type errcheckIO struct{}

func (errcheckIO) Name() string { return "errcheck-io" }

func (errcheckIO) Doc() string {
	return "flags dropped error returns from traceio/os/io/bufio calls, which can silently truncate experiment output"
}

var ioPackages = map[string]bool{"os": true, "io": true, "bufio": true}

func (errcheckIO) Run(pass *analysis.Pass) error {
	info := pass.Pkg.Info
	report := func(call *ast.CallExpr, deferred bool) {
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		path := fn.Pkg().Path()
		if !ioPackages[path] && !pathHasSuffix(path, "internal/traceio") {
			return
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return
		}
		res := sig.Results()
		if res.Len() == 0 {
			return
		}
		last := res.At(res.Len() - 1).Type()
		named, ok := last.(*types.Named)
		if !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
			return
		}
		how := "is dropped"
		if deferred {
			how = "is dropped by defer"
		}
		pass.Reportf(call.Pos(), analysis.SeverityError,
			"error from %s.%s %s; a failed write/close silently truncates experiment output — check it or //lint:ignore with a reason", shortPkg(path), fn.Name(), how)
	}

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					report(call, false)
				}
			case *ast.DeferStmt:
				report(n.Call, true)
			case *ast.GoStmt:
				report(n.Call, false)
			}
			return true
		})
	}
	return nil
}

func shortPkg(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
