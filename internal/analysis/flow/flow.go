// Package flow is a stdlib-only interprocedural taint-dataflow engine for
// the repository's secret-leak model. It answers, with a full
// source→hop→sink trace, the question every security number in this repo
// rests on: where can a secret value reach a memory address, a branch
// decision, or a variable-latency operation?
//
// The model follows the paper's leak taxonomy:
//
//   - Sources are secret values declared structurally: function parameters
//     annotated "//ctflow:secret a,b" in the declaration's doc comment,
//     struct fields annotated the same way, parameters whose name matches
//     the legacy ctindex heuristic (secret/key/priv/exponent/plaintext —
//     demoted here to a seed), and — derived during analysis — any struct
//     field or package variable assigned a secret-tainted value.
//
//   - Taint propagates through assignments, arithmetic, composites,
//     conversions, range statements, and interprocedural calls via function
//     summaries over a module-local call graph. The element read through a
//     tainted index is itself tainted (which entry was read reveals the
//     index). Summaries record param→result taint, param→sink reachability,
//     param→field writes and writes through slice/pointer parameters, so
//     taint survives arbitrarily deep call chains.
//
//   - Sinks are array/slice indexing by a tainted value (including slice
//     bounds and type-parameter operands whose core type is an array or
//     slice), branch/switch/loop conditions on tainted values (including
//     ranging over a tainted integer), and integer division or modulus —
//     the variable-latency ops — with a tainted operand.
//
//   - Sanitization is structural: a function annotated "//ctflow:sanitizer"
//     declassifies — its results are public no matter what flows in (for
//     designated constant-time helpers and for outputs the attack model
//     already grants the attacker, like ciphertext). Everything else goes
//     through "//lint:ignore ctflow <reason>".
//
// Deliberate policy choices, documented here because they bound what the
// engine can prove: lengths are public (len/cap results are never tainted),
// error values are public, type-switch dispatch is public, and calls to
// functions outside the module (or through interfaces) taint only their
// results — writes such calls perform through pointer arguments are not
// modeled. Function literals are analyzed with a snapshot of their
// enclosing state, so sinks in closures over tainted variables are found,
// but taint entering a closure through its own parameters is not tracked.
// Parameter-contingent summaries track the first 64 parameters of a
// function (receiver included) as a bitmask; taint flowing through a
// parameter at position 64 or later is dropped. So the gap is never
// silent, the engine reports every function that exceeds the cap through
// Config.Warn (the ctflow checker turns that into a lint warning).
package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// SecretName is the seed heuristic inherited from the ctindex checker: an
// identifier with one of these prefixes names a secret.
var SecretName = regexp.MustCompile(`(?i)^(secret|key|priv|exponent|plaintext)`)

// SinkKind classifies how a secret-dependent value becomes observable.
type SinkKind int

const (
	// SinkIndex is a memory address formed from a secret: array/slice
	// indexing or slice bounds.
	SinkIndex SinkKind = iota
	// SinkBranch is control flow deciding on a secret: if/for/switch
	// conditions, case expressions, ranging over a secret integer.
	SinkBranch
	// SinkDivMod is a variable-latency integer division or modulus with a
	// secret operand.
	SinkDivMod
)

func (k SinkKind) String() string {
	switch k {
	case SinkIndex:
		return "index"
	case SinkBranch:
		return "branch"
	case SinkDivMod:
		return "divmod"
	}
	return "unknown"
}

// Step is one hop of a source→sink trace.
type Step struct {
	Pos  token.Pos
	Desc string
}

// Finding is one secret-dependent sink with the witness path that reaches
// it.
type Finding struct {
	Pos    token.Pos
	Kind   SinkKind
	Expr   string // source text of the sink expression
	Source string // description of the root secret
	Steps  []Step // source first, sink last
}

// PackageInfo is one loaded, type-checked package handed to the engine.
type PackageInfo struct {
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Config configures one whole-module analysis.
type Config struct {
	Fset *token.FileSet
	Pkgs []*PackageInfo
	// SecretParam overrides the seed heuristic (default SecretName).
	SecretParam *regexp.Regexp
	// SeedPackage, when non-nil, restricts the name heuristic to packages
	// it approves (the victim packages). //ctflow:secret annotations seed
	// everywhere regardless — declaring a secret is always meaningful.
	SeedPackage func(pkgPath string) bool
	// SkipSinkFile, when non-nil, drops findings whose sink lies in a
	// matching file (the ctflow checker skips _test.go: tests branching on
	// the secrets they themselves construct are harness behavior).
	SkipSinkFile func(filename string) bool
	// MaxSteps caps trace length, truncation marker included (default 16;
	// longer chains keep the source end and the sink end with a marker
	// between them).
	MaxSteps int
	// Warn, when non-nil, receives soundness warnings the engine cannot
	// express as findings — today only the 64-parameter summary cap (see
	// the package comment).
	Warn func(pos token.Pos, msg string)
}

// IndexableMemory reports whether indexing a value of type t addresses
// memory as a linear function of the index: arrays, slices, pointers to
// arrays, and type parameters all of whose terms are such types. Maps are
// excluded — the cache-line address of a map lookup is not a linear
// function of the key. Shared with the ctindex checker.
func IndexableMemory(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Array, *types.Slice:
		return true
	case *types.Pointer:
		_, isArr := u.Elem().Underlying().(*types.Array)
		return isArr
	case *types.Interface:
		// A type parameter's underlying type is its constraint interface:
		// indexable when every term of the constraint is indexable (so
		// generic code cannot dodge the checkers).
		if _, isParam := t.(*types.TypeParam); !isParam {
			return false
		}
		terms := constraintTerms(u)
		if len(terms) == 0 {
			return false
		}
		for _, term := range terms {
			if _, isParam := term.(*types.TypeParam); isParam {
				continue // e.g. ~[]E with E a type parameter
			}
			if !IndexableMemory(term) {
				return false
			}
		}
		return true
	}
	return false
}

// constraintTerms flattens a constraint interface's embedded unions into
// the list of term types.
func constraintTerms(iface *types.Interface) []types.Type {
	var out []types.Type
	for i := 0; i < iface.NumEmbeddeds(); i++ {
		switch emb := iface.EmbeddedType(i).(type) {
		case *types.Union:
			for j := 0; j < emb.Len(); j++ {
				out = append(out, emb.Term(j).Type())
			}
		default:
			out = append(out, emb)
		}
	}
	return out
}

// Analyze runs the whole-module taint analysis and returns the findings
// sorted by position. See the package comment for the model.
func Analyze(cfg Config) []Finding {
	a := newAnalysis(cfg)
	a.setup()
	a.solve()
	return a.report()
}

// ---- annotations ----

const (
	secretDirective    = "//ctflow:secret"
	sanitizerDirective = "//ctflow:sanitizer"
)

// parseSecretNames extracts the names listed by //ctflow:secret directives
// in a comment group.
func parseSecretNames(doc *ast.CommentGroup) map[string]bool {
	if doc == nil {
		return nil
	}
	var names map[string]bool
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, secretDirective)
		if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
			continue
		}
		for _, field := range strings.Fields(rest) {
			for _, name := range strings.Split(field, ",") {
				if name != "" {
					if names == nil {
						names = map[string]bool{}
					}
					names[name] = true
				}
			}
		}
	}
	return names
}

func hasSanitizerDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == sanitizerDirective || strings.HasPrefix(c.Text, sanitizerDirective+" ") {
			return true
		}
	}
	return false
}

// ---- setup: function table, seeds, call graph ----

// funcInfo is the engine's per-function record.
type funcInfo struct {
	idx       int // deterministic order index
	obj       *types.Func
	decl      *ast.FuncDecl
	pkg       *PackageInfo
	graph     *CFG
	params    []*types.Var // receiver first for methods
	seeds     map[int]int  // param index → root id
	sanitizer bool
	sum       *summary
	callers   map[*types.Func]bool
}

func newAnalysis(cfg Config) *analysis {
	if cfg.SecretParam == nil {
		cfg.SecretParam = SecretName
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 16
	}
	return &analysis{
		cfg:       cfg,
		fset:      cfg.Fset,
		funcs:     map[*types.Func]*funcInfo{},
		fieldRoot: map[*types.Var]int{},
		findings:  map[token.Pos]map[SinkKind]*Finding{},
	}
}

// setup builds the function table in deterministic (file position) order,
// registers annotation and name-heuristic seeds, and records the
// module-local call graph for worklist requeuing.
func (a *analysis) setup() {
	for _, pkg := range a.cfg.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					a.addFunc(pkg, d)
				case *ast.GenDecl:
					a.addFieldSeeds(pkg, d)
				}
			}
		}
	}
	sort.Slice(a.order, func(i, j int) bool {
		return a.order[i].decl.Pos() < a.order[j].decl.Pos()
	})
	for i, fi := range a.order {
		fi.idx = i
	}
	// Seeds are registered in deterministic order only now, so root ids do
	// not depend on file-walk order.
	for _, fi := range a.order {
		a.seedParams(fi)
	}
	for _, fi := range a.order {
		a.recordCalls(fi)
	}
}

func (a *analysis) addFunc(pkg *PackageInfo, d *ast.FuncDecl) {
	if d.Body == nil {
		return
	}
	obj, _ := pkg.Info.Defs[d.Name].(*types.Func)
	if obj == nil {
		return
	}
	fi := &funcInfo{
		obj:       obj,
		decl:      d,
		pkg:       pkg,
		sanitizer: hasSanitizerDirective(d.Doc),
		sum:       &summary{},
		callers:   map[*types.Func]bool{},
	}
	sig := obj.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		fi.params = append(fi.params, recv)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		fi.params = append(fi.params, sig.Params().At(i))
	}
	if len(fi.params) > 64 && a.cfg.Warn != nil {
		a.cfg.Warn(d.Name.Pos(), fmt.Sprintf(
			"%s has %d parameters (receiver included) but interprocedural taint is tracked only through the first 64; "+
				"taint flowing through the later parameters is NOT followed — shrink the signature or pass them through a struct",
			obj.Name(), len(fi.params)))
	}
	a.funcs[obj] = fi
	a.order = append(a.order, fi)
}

// seedParams turns annotated and secret-named parameters into roots.
func (a *analysis) seedParams(fi *funcInfo) {
	annotated := parseSecretNames(fi.decl.Doc)
	heuristic := a.cfg.SeedPackage == nil || a.cfg.SeedPackage(fi.pkg.Path)
	for i, p := range fi.params {
		name := p.Name()
		if name == "" || name == "_" {
			continue
		}
		if annotated[name] || (heuristic && a.cfg.SecretParam.MatchString(name)) {
			if fi.seeds == nil {
				fi.seeds = map[int]int{}
			}
			fi.seeds[i] = a.newRoot(
				"parameter "+name+" of "+fi.obj.Name(),
				&step{pos: p.Pos(), desc: "parameter " + name + " of " + fi.obj.Name() + " (declared secret)"})
		}
	}
}

// addFieldSeeds registers //ctflow:secret-annotated struct fields as roots.
func (a *analysis) addFieldSeeds(pkg *PackageInfo, d *ast.GenDecl) {
	if d.Tok != token.TYPE {
		return
	}
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			names := parseSecretNames(field.Doc)
			for n := range parseSecretNames(field.Comment) {
				if names == nil {
					names = map[string]bool{}
				}
				names[n] = true
			}
			if names == nil {
				continue
			}
			for _, id := range field.Names {
				if !names[id.Name] {
					continue
				}
				if obj, ok := pkg.Info.Defs[id].(*types.Var); ok {
					a.rootForField(obj,
						"field "+id.Name+" of "+ts.Name.Name,
						&step{pos: id.Pos(), desc: "field " + id.Name + " of " + ts.Name.Name + " (declared secret)"})
				}
			}
		}
	}
}

// recordCalls registers fi as a caller of every module-local function its
// body mentions, so summary changes requeue the right functions.
func (a *analysis) recordCalls(fi *funcInfo) {
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := a.resolveCallee(fi.pkg.Info, call); callee != nil {
			callee.callers[fi.obj] = true
		}
		return true
	})
}

// resolveCallee resolves a call to its module-local funcInfo, unwrapping
// parens and generic instantiation (f[T](...) parses the callee as an
// IndexExpr or IndexListExpr — without unwrapping, generic code would
// silently drop out of the summary graph).
func (a *analysis) resolveCallee(info *types.Info, call *ast.CallExpr) *funcInfo {
	fun := ast.Unparen(call.Fun)
	for {
		switch f := fun.(type) {
		case *ast.IndexExpr:
			fun = ast.Unparen(f.X)
			continue
		case *ast.IndexListExpr:
			fun = ast.Unparen(f.X)
			continue
		}
		break
	}
	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[f]
	case *ast.SelectorExpr:
		obj = info.Uses[f.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	// Instantiated generics resolve to the instance; summaries live on the
	// generic origin.
	if orig := fn.Origin(); orig != nil {
		fn = orig
	}
	return a.funcs[fn]
}
