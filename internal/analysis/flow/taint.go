package flow

import (
	"go/token"
	"go/types"
	"sort"
)

// ---- the lattice ----

// bits is a variable-length bitset of global root ids. Operations are
// copy-on-write so taint values can be shared between states.
type bits []uint64

func (b bits) has(i int) bool {
	w := i / 64
	return w < len(b) && b[w]&(1<<(i%64)) != 0
}

func (b bits) with(i int) bits {
	w := i / 64
	if b.has(i) {
		return b
	}
	n := make(bits, max(len(b), w+1))
	copy(n, b)
	n[w] |= 1 << (i % 64)
	return n
}

func (b bits) or(o bits) bits {
	if len(o) == 0 {
		return b
	}
	if len(b) == 0 {
		return o
	}
	grew := false
	for w, v := range o {
		if w >= len(b) || b[w]&v != v {
			grew = true
			break
		}
	}
	if !grew {
		return b
	}
	n := make(bits, max(len(b), len(o)))
	copy(n, b)
	for w, v := range o {
		n[w] |= v
	}
	return n
}

func (b bits) any() bool {
	for _, v := range b {
		if v != 0 {
			return true
		}
	}
	return false
}

func (b bits) equal(o bits) bool {
	long, short := b, o
	if len(o) > len(b) {
		long, short = o, b
	}
	for w, v := range long {
		var sv uint64
		if w < len(short) {
			sv = short[w]
		}
		if v != sv {
			return false
		}
	}
	return true
}

// lowest returns the smallest set root id, or -1.
func (b bits) lowest() int {
	for w, v := range b {
		if v != 0 {
			for i := 0; i < 64; i++ {
				if v&(1<<i) != 0 {
					return w*64 + i
				}
			}
		}
	}
	return -1
}

// step is one node of a witness chain, newest-first. Chains are shared
// tails, so extending a chain is O(1).
type step struct {
	pos  token.Pos
	desc string
	prev *step
}

// taint is the lattice value: which of the current function's parameters
// (bitmask, receiver first) and which global roots may have flowed into a
// value, plus one witness chain. The masks drive the fixpoint; the chain is
// carried opportunistically (first witness wins) and never compared, so it
// cannot affect termination.
type taint struct {
	params uint64
	roots  bits
	tr     *step
}

func (t taint) empty() bool { return t.params == 0 && !t.roots.any() }

func (t taint) sameMask(o taint) bool {
	return t.params == o.params && t.roots.equal(o.roots)
}

// join unions two taints, keeping the existing witness when there is one.
func join(a, b taint) taint {
	out := taint{params: a.params | b.params, roots: a.roots.or(b.roots), tr: a.tr}
	if out.tr == nil {
		out.tr = b.tr
	}
	return out
}

// hop extends t's witness chain by one step. No-op on empty taint.
func (t taint) hop(pos token.Pos, desc string) taint {
	if t.empty() {
		return t
	}
	t.tr = &step{pos: pos, desc: desc, prev: t.tr}
	return t
}

// ---- global roots ----

// rootInfo is one global taint origin: a declared-secret parameter or
// field, or a field/global derived secret by assignment.
type rootInfo struct {
	desc string
	tr   *step
}

func (a *analysis) newRoot(desc string, tr *step) int {
	a.roots = append(a.roots, rootInfo{desc: desc, tr: tr})
	return len(a.roots) - 1
}

// rootForField promotes a struct field or package variable to a global
// root (field-sensitive, instance-insensitive). Idempotent; a first-time
// promotion invalidates every computed summary, since any function may
// read the field.
func (a *analysis) rootForField(obj *types.Var, desc string, tr *step) int {
	if id, ok := a.fieldRoot[obj]; ok {
		return id
	}
	id := a.newRoot(desc, tr)
	a.fieldRoot[obj] = id
	a.rootsChanged = true
	return id
}

// ---- summaries ----

// sumSink is a sink inside a function (or somewhere below it in the call
// graph) reachable from the function's own parameters.
type sumSink struct {
	pos    token.Pos
	kind   SinkKind
	expr   string
	params uint64 // which params reach it
	tr     *step  // witness from the param placeholder to the sink
}

// sumWrite is taint the function stores through one of its parameters
// (slice element, pointer target) or into a struct field / package
// variable, expressed over its own parameters.
type sumWrite struct {
	target int        // param index, or -1 when field is set
	field  *types.Var // field/global written, when target < 0
	params uint64     // source param mask
	tr     *step
}

// summary is a function's interprocedural abstract: how taint entering via
// parameters leaves again. Root-borne taint needs no summary — roots are
// global, so the function's own analysis records those effects directly.
type summary struct {
	results []taint
	sinks   []sumSink
	writes  []sumWrite
}

// fingerprint captures everything a caller can observe of a summary, so
// solve can tell whether callers must be requeued.
func (s *summary) fingerprint() []uint64 {
	fp := []uint64{uint64(len(s.results)), uint64(len(s.sinks)), uint64(len(s.writes))}
	for _, r := range s.results {
		fp = append(fp, r.params)
		for _, w := range r.roots {
			fp = append(fp, w)
		}
	}
	for _, sk := range s.sinks {
		fp = append(fp, uint64(sk.pos), uint64(sk.kind), sk.params)
	}
	for _, w := range s.writes {
		fp = append(fp, uint64(int64(w.target)), w.params)
	}
	return fp
}

func fpEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// addSink merges a sink into the summary, deduplicating by position and
// kind.
func (s *summary) addSink(pos token.Pos, kind SinkKind, expr string, params uint64, tr *step) {
	for i := range s.sinks {
		if s.sinks[i].pos == pos && s.sinks[i].kind == kind {
			s.sinks[i].params |= params
			return
		}
	}
	s.sinks = append(s.sinks, sumSink{pos: pos, kind: kind, expr: expr, params: params, tr: tr})
}

// addWrite merges a parameter/field write into the summary.
func (s *summary) addWrite(target int, field *types.Var, params uint64, tr *step) {
	for i := range s.writes {
		if s.writes[i].target == target && s.writes[i].field == field {
			s.writes[i].params |= params
			return
		}
	}
	s.writes = append(s.writes, sumWrite{target: target, field: field, params: params, tr: tr})
}

// ---- the solver ----

type analysis struct {
	cfg   Config
	fset  *token.FileSet
	funcs map[*types.Func]*funcInfo
	order []*funcInfo

	roots        []rootInfo
	fieldRoot    map[*types.Var]int
	rootsChanged bool

	findings map[token.Pos]map[SinkKind]*Finding
	queued   map[*funcInfo]bool
	queue    []*funcInfo
}

// solve runs the two-phase analysis: a summary fixpoint over the
// call-graph worklist, then one deterministic recording pass that turns
// root-bearing sink taint into findings.
func (a *analysis) solve() {
	a.queued = map[*funcInfo]bool{}
	for _, fi := range a.order {
		a.enqueue(fi)
	}
	for len(a.queue) > 0 {
		fi := a.queue[0]
		a.queue = a.queue[1:]
		a.queued[fi] = false

		before := fi.sum.fingerprint()
		a.rootsChanged = false
		a.analyzeFunc(fi, false)
		if a.rootsChanged {
			// A field or package variable became a root: any function can
			// read it, so everything is stale.
			for _, other := range a.order {
				a.enqueue(other)
			}
			continue
		}
		if !fpEqual(before, fi.sum.fingerprint()) {
			for _, caller := range a.sortedCallers(fi) {
				a.enqueue(caller)
			}
		}
	}
	for _, fi := range a.order {
		a.analyzeFunc(fi, true)
	}
}

func (a *analysis) enqueue(fi *funcInfo) {
	if fi == nil || a.queued[fi] {
		return
	}
	a.queued[fi] = true
	a.queue = append(a.queue, fi)
}

// recordFinding turns a root-bearing sink into a Finding. First witness
// wins per (position, kind); the deterministic phase-2 order makes the
// choice stable.
func (a *analysis) recordFinding(pos token.Pos, kind SinkKind, expr string, t taint) {
	if !t.roots.any() {
		return
	}
	if a.cfg.SkipSinkFile != nil && a.cfg.SkipSinkFile(a.fset.Position(pos).Filename) {
		return
	}
	byKind := a.findings[pos]
	if byKind == nil {
		byKind = map[SinkKind]*Finding{}
		a.findings[pos] = byKind
	}
	if byKind[kind] != nil {
		return
	}
	root := a.roots[t.roots.lowest()]
	chain := &step{pos: pos, desc: kind.String() + " sink: " + expr, prev: t.tr}
	byKind[kind] = &Finding{
		Pos:    pos,
		Kind:   kind,
		Expr:   expr,
		Source: root.desc,
		Steps:  a.flatten(chain, root.tr),
	}
}

// flatten renders a newest-first witness chain (with the root's own
// declaration step appended at the source end) as oldest-first Steps,
// capped at MaxSteps keeping both ends; the truncation marker counts
// toward the cap. When the chain already ends at the root's declaration
// step (taint seeded directly from the root carries its tr), the root
// chain is not appended again.
func (a *analysis) flatten(chain, rootTr *step) []Step {
	var rev []Step
	for s := chain; s != nil; s = s.prev {
		rev = append(rev, Step{Pos: s.pos, Desc: s.desc})
	}
	var rootRev []Step
	for s := rootTr; s != nil; s = s.prev {
		rootRev = append(rootRev, Step{Pos: s.pos, Desc: s.desc})
	}
	// Taint seeded directly from the root carries the root's declaration
	// chain already; only append it when the witness does not end there.
	if !stepsHaveSuffix(rev, rootRev) {
		rev = append(rev, rootRev...)
	}
	out := make([]Step, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	if cap := a.cfg.MaxSteps; len(out) > cap {
		// The marker occupies one of the cap slots, so the result is exactly
		// cap steps: head real steps, the marker, tail real steps.
		head := (cap - 1) / 2
		tail := cap - 1 - head
		trimmed := make([]Step, 0, cap)
		trimmed = append(trimmed, out[:head]...)
		trimmed = append(trimmed, Step{Pos: token.NoPos, Desc: "... (trace truncated)"})
		trimmed = append(trimmed, out[len(out)-tail:]...)
		out = trimmed
	}
	return out
}

// stepsHaveSuffix reports whether rev (newest-first) ends, at its oldest
// end, with the whole suffix sequence.
func stepsHaveSuffix(rev, suffix []Step) bool {
	if len(suffix) == 0 || len(rev) < len(suffix) {
		return len(suffix) == 0
	}
	off := len(rev) - len(suffix)
	for i, s := range suffix {
		if rev[off+i] != s {
			return false
		}
	}
	return true
}

func (a *analysis) report() []Finding {
	positions := make([]token.Pos, 0, len(a.findings))
	for pos := range a.findings {
		positions = append(positions, pos)
	}
	sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
	var out []Finding
	for _, pos := range positions {
		byKind := a.findings[pos]
		for _, kind := range []SinkKind{SinkIndex, SinkBranch, SinkDivMod} {
			if f := byKind[kind]; f != nil {
				out = append(out, *f)
			}
		}
	}
	return out
}
