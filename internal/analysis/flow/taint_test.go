package flow

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// analyzeSrc type-checks one import-free snippet and runs the engine.
func analyzeSrc(t *testing.T, src string) []Finding {
	t.Helper()
	return analyzeSrcCfg(t, src, nil)
}

// analyzeSrcCfg is analyzeSrc with a Config hook applied before Analyze.
func analyzeSrcCfg(t *testing.T, src string, mod func(*Config)) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{}
	pkg, err := conf.Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	cfg := Config{
		Fset: fset,
		Pkgs: []*PackageInfo{{Path: "p", Files: []*ast.File{file}, Types: pkg, Info: info}},
	}
	if mod != nil {
		mod(&cfg)
	}
	return Analyze(cfg)
}

var sinkMarker = regexp.MustCompile(`sink:(index|branch|divmod)`)

// checkFindings compares the engine's findings against the `// sink:kind`
// markers in src, exactly — extra findings fail the test too.
func checkFindings(t *testing.T, src string, got []Finding) {
	t.Helper()
	want := map[string]bool{}
	for i, line := range strings.Split(src, "\n") {
		for _, m := range sinkMarker.FindAllStringSubmatch(line, -1) {
			want[fmt.Sprintf("%s:%d", m[1], i+1)] = true
		}
	}
	have := map[string]bool{}
	fset := token.NewFileSet()
	_ = fset
	for _, f := range got {
		have[fmt.Sprintf("%s:%d", f.Kind, lineOf(t, src, f))] = true
	}
	if len(want) != len(have) || !sameKeys(want, have) {
		t.Errorf("findings mismatch:\n want %v\n have %v\n findings: %+v",
			keys(want), keys(have), describe(got))
	}
}

// lineOf recovers a finding's line: Analyze used its own FileSet, but the
// findings were produced from a single file whose positions are 1-based
// offsets into src — recompute via a fresh parse.
func lineOf(t *testing.T, src string, f Finding) int {
	t.Helper()
	fset := token.NewFileSet()
	tf := fset.AddFile("p.go", 1, len(src))
	tf.SetLinesForContent([]byte(src))
	return tf.Line(token.Pos(int(f.Pos)))
}

func sameKeys(a, b map[string]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func describe(fs []Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, fmt.Sprintf("%s %q from %s", f.Kind, f.Expr, f.Source))
	}
	return out
}

func run(t *testing.T, src string) {
	t.Helper()
	checkFindings(t, src, analyzeSrc(t, src))
}

func TestDirectIndexSink(t *testing.T) {
	run(t, `package p
func lookup(key []byte, table [256]byte) byte {
	return table[key[0]] // sink:index
}
`)
}

func TestBranchAndDivModSinks(t *testing.T) {
	run(t, `package p
func f(secret int, n int) int {
	if secret > 0 { // sink:branch
		n++
	}
	return n / secret // sink:divmod
}
`)
}

func TestAssignmentKillsTaint(t *testing.T) {
	run(t, `package p
func g(key int, table [16]int) int {
	x := key
	x = 0
	return table[x]
}
`)
}

func TestInterproceduralSink(t *testing.T) {
	src := `package p
func lookup(t [256]int, i int) int {
	return t[i] // sink:index
}
func use(key int, t [256]int) int {
	return lookup(t, key)
}
`
	got := analyzeSrc(t, src)
	checkFindings(t, src, got)
	if len(got) == 1 {
		if !strings.Contains(got[0].Source, "key") {
			t.Errorf("source should name the secret parameter, got %q", got[0].Source)
		}
		if len(got[0].Steps) < 3 {
			t.Errorf("interprocedural trace too short: %+v", got[0].Steps)
		}
	}
}

func TestReturnPropagatesTaint(t *testing.T) {
	run(t, `package p
func derive(key int) int {
	return key * 7
}
func use(key int, t [256]int) int {
	v := derive(key)
	return t[v] // sink:index
}
`)
}

func TestSanitizerDeclassifies(t *testing.T) {
	run(t, `package p

//ctflow:sanitizer
func ctSelect(v int) int { return v & 1 }

func h(key int, t [16]int) int {
	i := ctSelect(key)
	return t[i]
}
`)
}

func TestSecretAnnotation(t *testing.T) {
	run(t, `package p

//ctflow:secret x
func exp(x int, t [16]int) int {
	return t[x] // sink:index
}

func unannotated(x int, t [16]int) int {
	return t[x]
}
`)
}

func TestFieldPromotion(t *testing.T) {
	run(t, `package p
type c struct {
	p [16]int
	k int
}
func news(key int) *c {
	v := &c{}
	v.k = key
	return v
}
func (v *c) get(i int) int {
	if v.k > i { // sink:branch
		return v.p[v.k%4] // sink:index sink:divmod
	}
	return 0
}
`)
}

func TestFieldAnnotation(t *testing.T) {
	run(t, `package p
type s struct {
	exp int //ctflow:secret exp
}
func (v *s) get(t [16]int) int {
	return t[v.exp] // sink:index
}
`)
}

func TestGenericIndexSink(t *testing.T) {
	run(t, `package p
func get[T any](s []T, i int) T {
	return s[i] // sink:index
}
func useInferred(key int, s []int) int {
	return get(s, key)
}
func useExplicit(key int, s []int) int {
	return get[int](s, key)
}
`)
}

func TestIndexListExprInstantiation(t *testing.T) {
	run(t, `package p
func pick[K comparable, V any](s []V, i int, _ K) V {
	return s[i] // sink:index
}
func use(key int, s []int) int {
	return pick[string, int](s, key, "x")
}
`)
}

func TestRangeOverIntIsBranchSink(t *testing.T) {
	run(t, `package p
func r(key int) int {
	n := 0
	for range key { // sink:branch
		n++
	}
	return n
}
`)
}

func TestLoopCarriedTaint(t *testing.T) {
	run(t, `package p
func lc(key []byte, t [256]int) int {
	x := 0
	for i := 0; i < len(key); i++ {
		x = int(key[i])
	}
	return t[x] // sink:index
}
`)
}

func TestErrorValuesArePublic(t *testing.T) {
	run(t, `package p
func mk(key int) (int, error) {
	if key > 0 { // sink:branch
		return key, nil
	}
	return 0, nil
}
func use(key int, t [4]int) int {
	v, err := mk(key)
	if err != nil {
		return -1
	}
	return t[v] // sink:index
}
`)
}

func TestLenIsPublic(t *testing.T) {
	run(t, `package p
func f(key []byte, t [64]int) int {
	if len(key) > 16 {
		return 0
	}
	return t[len(key)]
}
`)
}

func TestPackageVarPromotion(t *testing.T) {
	run(t, `package p
var state int
func set(key int) { state = key }
func use(t [8]int) int {
	return t[state] // sink:index
}
`)
}

func TestWriteThroughSliceParam(t *testing.T) {
	run(t, `package p
func fill(dst []int, key int) {
	dst[0] = key
}
func use(key int, t [16]int) int {
	buf := make([]int, 4)
	fill(buf, key)
	return t[buf[2]] // sink:index
}
`)
}

func TestCopyBuiltin(t *testing.T) {
	run(t, `package p
func cb(key []byte, t [256]int) int {
	buf := make([]byte, 16)
	copy(buf, key)
	return t[buf[0]] // sink:index
}
`)
}

func TestTypeSwitchTaintsImplicits(t *testing.T) {
	run(t, `package p
func ts(keyAny interface{}, t [16]int) int {
	switch v := keyAny.(type) {
	case int:
		return t[v] // sink:index
	}
	return 0
}
`)
}

func TestClosureOverSecret(t *testing.T) {
	run(t, `package p
func cl(key int, t [16]int) int {
	f := func() int { return t[key] } // sink:index
	return f()
}
`)
}

func TestSliceBoundsAreIndexSinks(t *testing.T) {
	run(t, `package p
func sb(key int, buf []byte) []byte {
	return buf[key:] // sink:index
}
`)
}

func TestCleanCodeIsClean(t *testing.T) {
	run(t, `package p
func clean(n int, t [16]int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += t[i%len(t)]
	}
	return s
}
`)
}

func TestTraceEndpoints(t *testing.T) {
	src := `package p
func lookup(t [256]int, i int) int {
	return t[i]
}
func use(key int, t [256]int) int {
	return lookup(t, key)
}
`
	got := analyzeSrc(t, src)
	if len(got) != 1 {
		t.Fatalf("want 1 finding, got %+v", describe(got))
	}
	steps := got[0].Steps
	if len(steps) < 2 {
		t.Fatalf("trace too short: %+v", steps)
	}
	if !strings.Contains(steps[0].Desc, "parameter") {
		t.Errorf("trace must start at the secret declaration, got %q", steps[0].Desc)
	}
	if !strings.Contains(steps[len(steps)-1].Desc, "sink") {
		t.Errorf("trace must end at the sink, got %q", steps[len(steps)-1].Desc)
	}
}

func TestIndexableMemoryTypeParams(t *testing.T) {
	// ~[]byte | [8]byte constraint: indexable. map constraint: not.
	src := `package p
type bytesLike interface{ ~[]byte | [8]byte }
func f[T bytesLike](v T, key int) byte {
	return v[key] // sink:index
}
func g[M ~map[int]int](m M, key int) int {
	return m[key]
}
func use(key int, b []byte, m map[int]int) {
	f(b, key)
	g(m, key)
}
`
	run(t, src)
}

// TestMaxStepsCapIncludesMarker pins the truncation contract: a too-long
// witness chain flattens to exactly MaxSteps steps — head, marker, tail —
// not MaxSteps+1, with both endpoints preserved.
func TestMaxStepsCapIncludesMarker(t *testing.T) {
	a := newAnalysis(Config{MaxSteps: 5})
	var chain *step
	for i := 1; i <= 12; i++ {
		chain = &step{pos: token.Pos(i), desc: fmt.Sprintf("hop %d", i), prev: chain}
	}
	out := a.flatten(chain, nil)
	if len(out) != 5 {
		t.Fatalf("MaxSteps=5 but flatten returned %d steps: %+v", len(out), out)
	}
	if out[0].Desc != "hop 1" {
		t.Errorf("source end lost: first step is %q", out[0].Desc)
	}
	if out[len(out)-1].Desc != "hop 12" {
		t.Errorf("sink end lost: last step is %q", out[len(out)-1].Desc)
	}
	markers := 0
	for _, s := range out {
		if strings.Contains(s.Desc, "trace truncated") {
			markers++
		}
	}
	if markers != 1 {
		t.Errorf("want exactly one truncation marker, got %d in %+v", markers, out)
	}
}

// TestParamCapWarns pins the 64-parameter soundness cap: taint through a
// parameter at index 64+ is dropped (no finding — the documented gap),
// and Config.Warn fires for the oversized function so the drop is never
// silent.
func TestParamCapWarns(t *testing.T) {
	var src strings.Builder
	src.WriteString("package p\nfunc wide(")
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&src, "p%d, ", i)
	}
	src.WriteString("last int, t [256]int) int {\n\treturn t[last]\n}\n")
	src.WriteString("func use(key int, t [256]int) int {\n\treturn wide(")
	for i := 0; i < 64; i++ {
		src.WriteString("0, ")
	}
	src.WriteString("key, t)\n}\n")

	var warns []string
	got := analyzeSrcCfg(t, src.String(), func(cfg *Config) {
		cfg.Warn = func(pos token.Pos, msg string) {
			if !pos.IsValid() {
				t.Errorf("warning carries no position: %q", msg)
			}
			warns = append(warns, msg)
		}
	})
	if len(warns) != 1 || !strings.Contains(warns[0], "wide") || !strings.Contains(warns[0], "66") {
		t.Fatalf("want one warning naming wide and its 66 params, got %q", warns)
	}
	// The gap the warning exists for: key flows into wide as the 65th
	// parameter, outside the summary mask, so the t[last] sink is missed.
	if len(got) != 0 {
		t.Fatalf("expected the over-cap flow to be (documentedly) dropped, got %+v", describe(got))
	}
}

func TestParseSecretNames(t *testing.T) {
	doc := &ast.CommentGroup{List: []*ast.Comment{
		{Text: "// normal comment"},
		{Text: "//ctflow:secret x,y z"},
	}}
	got := parseSecretNames(doc)
	for _, name := range []string{"x", "y", "z"} {
		if !got[name] {
			t.Errorf("missing %q in %v", name, got)
		}
	}
	if parseSecretNames(&ast.CommentGroup{List: []*ast.Comment{{Text: "//ctflow:secrets a"}}}) != nil {
		t.Error("ctflow:secrets (typo) must not parse as a directive")
	}
}
