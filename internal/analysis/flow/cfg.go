package flow

import (
	"go/ast"
	"go/token"
)

// CFG is an intraprocedural control-flow graph over one function body.
// Blocks hold the statements (and bare condition expressions) they execute,
// in order; edges are the possible successors. The taint engine runs a
// forward may-analysis over it: block in-states are the join (union) of all
// predecessor out-states, iterated to a fixpoint, so taint introduced on
// any path — including loop-carried taint — reaches every statement it can
// reach at runtime.
//
// Condition expressions (if/for conditions, switch tags, case expressions)
// appear in blocks as bare ast.Expr nodes; everything else appears as the
// ast.Stmt that contains it. The distinction lets the transfer function
// treat a tainted bare expression as a branch sink: control flow is about
// to depend on it.
type CFG struct {
	Entry  *Block
	Blocks []*Block
}

// Block is one straight-line run of nodes with its successor edges.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// BuildCFG constructs the CFG of one function body. It handles the full
// statement grammar: if/else, for (all three clauses), range, switch,
// type switch, select, labeled break/continue, goto (forward and
// backward), fallthrough, and return. Unreachable blocks (e.g. code after
// a return) are still present but have no incoming edges, so the dataflow
// engine never visits them.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, labels: map[string]*labelInfo{}}
	b.cfg.Entry = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	return b.cfg
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block
	ctxs   []flowCtx // enclosing loop/switch/select contexts
	fall   *Block    // fallthrough target inside a switch clause
	labels map[string]*labelInfo
}

// flowCtx is one enclosing breakable construct. cont is non-nil only for
// loops.
type flowCtx struct {
	label string
	brk   *Block
	cont  *Block
}

type labelInfo struct {
	block   *Block   // goto target once the label is reached
	pending []*Block // blocks that jumped forward before the label existed
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if to != nil {
		from.Succs = append(from.Succs, to)
	}
}

func (b *cfgBuilder) add(n ast.Node) { b.cur.Nodes = append(b.cur.Nodes, n) }

func (b *cfgBuilder) label(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{}
		b.labels[name] = li
	}
	return li
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		li := b.label(s.Label.Name)
		target := b.newBlock()
		b.edge(b.cur, target)
		b.cur = target
		li.block = target
		for _, p := range li.pending {
			b.edge(p, target)
		}
		li.pending = nil
		b.stmt(s.Stmt, s.Label.Name)
	case *ast.IfStmt:
		b.stmt(s.Init, "")
		b.add(s.Cond)
		cond := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmtList(s.Body.List)
		b.edge(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else, "")
			b.edge(b.cur, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after
	case *ast.ForStmt:
		b.stmt(s.Init, "")
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		body := b.newBlock()
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after)
		}
		b.ctxs = append(b.ctxs, flowCtx{label: label, brk: after, cont: post})
		b.cur = body
		b.stmtList(s.Body.List)
		b.ctxs = b.ctxs[:len(b.ctxs)-1]
		b.edge(b.cur, post)
		if s.Post != nil {
			b.cur = post
			b.stmt(s.Post, "")
			b.edge(b.cur, head)
		}
		b.cur = after
	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		b.add(s) // evaluates X and assigns the key/value variables
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.ctxs = append(b.ctxs, flowCtx{label: label, brk: after, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.ctxs = b.ctxs[:len(b.ctxs)-1]
		b.edge(b.cur, head)
		b.cur = after
	case *ast.SwitchStmt:
		b.stmt(s.Init, "")
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.buildSwitch(s.Body.List, label, func(cc *ast.CaseClause, blk *Block) {
			for _, e := range cc.List {
				blk.Nodes = append(blk.Nodes, e)
			}
		})
	case *ast.TypeSwitchStmt:
		b.stmt(s.Init, "")
		b.add(s) // taints the per-clause implicit variables from the operand
		b.buildSwitch(s.Body.List, label, nil)
	case *ast.SelectStmt:
		head := b.cur
		after := b.newBlock()
		b.ctxs = append(b.ctxs, flowCtx{label: label, brk: after})
		for _, cs := range s.Body.List {
			cc := cs.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			b.stmt(cc.Comm, "")
			b.stmtList(cc.Body)
			b.edge(b.cur, after)
		}
		b.ctxs = b.ctxs[:len(b.ctxs)-1]
		b.cur = after
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.cur = b.newBlock() // dead: nothing follows a return on this path
	default:
		// Assign, Decl, Expr, IncDec, Send, Go, Defer, Empty.
		if _, ok := s.(*ast.EmptyStmt); !ok {
			b.add(s)
		}
	}
}

// buildSwitch shares the clause scaffolding of value and type switches.
// addExprs, when non-nil, places the clause's case expressions into its
// block (value switches only; type-switch cases list types, not values).
func (b *cfgBuilder) buildSwitch(clauses []ast.Stmt, label string, addExprs func(*ast.CaseClause, *Block)) {
	head := b.cur
	after := b.newBlock()
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cs := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		if cc, ok := cs.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.ctxs = append(b.ctxs, flowCtx{label: label, brk: after})
	savedFall := b.fall
	for i, cs := range clauses {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.cur = blocks[i]
		if addExprs != nil {
			addExprs(cc, blocks[i])
		}
		if i+1 < len(blocks) {
			b.fall = blocks[i+1]
		} else {
			b.fall = after
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	b.fall = savedFall
	b.ctxs = b.ctxs[:len(b.ctxs)-1]
	b.cur = after
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	name := ""
	if s.Label != nil {
		name = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.ctxs) - 1; i >= 0; i-- {
			if name == "" || b.ctxs[i].label == name {
				b.edge(b.cur, b.ctxs[i].brk)
				break
			}
		}
	case token.CONTINUE:
		for i := len(b.ctxs) - 1; i >= 0; i-- {
			if b.ctxs[i].cont != nil && (name == "" || b.ctxs[i].label == name) {
				b.edge(b.cur, b.ctxs[i].cont)
				break
			}
		}
	case token.GOTO:
		li := b.label(name)
		if li.block != nil {
			b.edge(b.cur, li.block)
		} else {
			li.pending = append(li.pending, b.cur)
		}
	case token.FALLTHROUGH:
		b.edge(b.cur, b.fall)
	}
	b.cur = b.newBlock() // dead: the jump always leaves this path
}
