package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFor parses src as the body of a function and returns its CFG plus
// the fileset.
func buildFor(t *testing.T, body string) (*CFG, *token.FileSet) {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "a.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fn.Body), fset
}

// reachable returns the set of block indices reachable from the entry.
func reachable(g *CFG) map[int]bool {
	seen := map[int]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

// nodeBlock finds the reachable block containing a node whose source text
// contains substr; -1 when absent.
func nodeBlock(t *testing.T, g *CFG, fset *token.FileSet, src, substr string) int {
	t.Helper()
	lines := strings.Split(src, "\n")
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			line := fset.Position(n.Pos()).Line
			if line-1 < len(lines) && strings.Contains(lines[line-1], substr) {
				return b.Index
			}
		}
	}
	return -1
}

func TestCFGIfElse(t *testing.T) {
	g, _ := buildFor(t, `
		x := 1
		if x > 0 {
			x = 2
		} else {
			x = 3
		}
		x = 4`)
	r := reachable(g)
	if len(r) != len(g.Blocks) {
		t.Errorf("if/else: %d blocks, %d reachable", len(g.Blocks), len(r))
	}
	// The condition block must have two successors (then, else).
	var condBlk *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, isExpr := n.(ast.Expr); isExpr {
				condBlk = b
			}
		}
	}
	if condBlk == nil || len(condBlk.Succs) != 2 {
		t.Fatalf("condition block missing or wrong successors: %+v", condBlk)
	}
}

func TestCFGIfNoElseFallsThrough(t *testing.T) {
	g, _ := buildFor(t, `
		x := 1
		if x > 0 {
			x = 2
		}
		x = 4`)
	if len(reachable(g)) != len(g.Blocks) {
		t.Errorf("if without else left unreachable blocks")
	}
}

func TestCFGForLoop(t *testing.T) {
	g, _ := buildFor(t, `
		s := 0
		for i := 0; i < 10; i++ {
			s += i
		}
		_ = s`)
	r := reachable(g)
	if len(r) != len(g.Blocks) {
		t.Errorf("for: %d blocks, %d reachable", len(g.Blocks), len(r))
	}
	// Loop implies a cycle: some reachable block must be its own ancestor.
	if !hasCycle(g) {
		t.Error("for loop produced an acyclic CFG")
	}
}

func TestCFGInfiniteLoopWithBreak(t *testing.T) {
	src := `
		x := 0
		for {
			x++
			if x > 3 {
				break
			}
		}
		x = 99`
	g, fset := buildFor(t, src)
	if bi := nodeBlock(t, g, fset, "package p\nfunc f() {\n"+src+"\n}\n", "x = 99"); bi < 0 {
		t.Error("statement after break-terminated infinite loop not reachable")
	} else if !reachable(g)[bi] {
		t.Error("after-loop block unreachable despite break")
	}
}

func TestCFGRange(t *testing.T) {
	g, _ := buildFor(t, `
		s := []int{1, 2}
		t := 0
		for _, v := range s {
			t += v
		}
		_ = t`)
	if !hasCycle(g) {
		t.Error("range loop produced an acyclic CFG")
	}
	if len(reachable(g)) != len(g.Blocks) {
		t.Error("range left unreachable blocks")
	}
}

func TestCFGSwitchFallthroughAndDefault(t *testing.T) {
	src := `
		x := 1
		y := 0
		switch x {
		case 1:
			y = 1
			fallthrough
		case 2:
			y = 2
		default:
			y = 3
		}
		_ = y`
	g, fset := buildFor(t, src)
	full := "package p\nfunc f() {\n" + src + "\n}\n"
	b1 := nodeBlock(t, g, fset, full, "y = 1")
	b2 := nodeBlock(t, g, fset, full, "y = 2")
	if b1 < 0 || b2 < 0 {
		t.Fatal("case bodies not found")
	}
	// fallthrough: case-1 block must have case-2's block as a successor.
	found := false
	for _, s := range g.Blocks[b1].Succs {
		if s.Index == b2 {
			found = true
		}
	}
	if !found {
		t.Error("fallthrough edge missing")
	}
	// The fallthrough statement ends its path, leaving a dead continuation
	// block — by design present but unreachable. The after-switch statement
	// must still be reachable.
	if bi := nodeBlock(t, g, fset, full, "_ = y"); bi < 0 || !reachable(g)[bi] {
		t.Error("after-switch statement unreachable")
	}
}

func TestCFGSwitchNoDefaultSkips(t *testing.T) {
	src := `
		x := 1
		switch x {
		case 1:
			x = 2
		}
		x = 9`
	g, fset := buildFor(t, src)
	full := "package p\nfunc f() {\n" + src + "\n}\n"
	if bi := nodeBlock(t, g, fset, full, "x = 9"); bi < 0 || !reachable(g)[bi] {
		t.Error("no-default switch must reach the after block directly")
	}
}

func TestCFGDeadCodeAfterReturn(t *testing.T) {
	src := `
		x := 1
		if x > 0 {
			return
		}
		x = 2`
	g, fset := buildFor(t, src)
	full := "package p\nfunc f() {\n" + src + "\n}\n"
	bi := nodeBlock(t, g, fset, full, "x = 2")
	if bi < 0 {
		t.Fatal("x = 2 not in CFG")
	}
	if !reachable(g)[bi] {
		t.Error("x = 2 is reachable via the false branch; must not be dead")
	}
	// But a statement after an unconditional return is dead:
	src2 := `
		return
		x := 1
		_ = x`
	g2, fset2 := buildFor(t, src2)
	full2 := "package p\nfunc f() {\n" + src2 + "\n}\n"
	if bi := nodeBlock(t, g2, fset2, full2, "x := 1"); bi >= 0 && reachable(g2)[bi] {
		t.Error("statement after unconditional return must be unreachable")
	}
}

func TestCFGGotoForwardAndBackward(t *testing.T) {
	src := `
		i := 0
	loop:
		i++
		if i < 3 {
			goto loop
		}
		if i > 10 {
			goto done
		}
		i = 5
	done:
		_ = i`
	g, fset := buildFor(t, src)
	full := "package p\nfunc f() {\n" + src + "\n}\n"
	if !hasCycle(g) {
		t.Error("backward goto produced no cycle")
	}
	for _, stmt := range []string{"i = 5", "_ = i"} {
		if bi := nodeBlock(t, g, fset, full, stmt); bi < 0 || !reachable(g)[bi] {
			t.Errorf("%q unreachable", stmt)
		}
	}
}

func TestCFGLabeledBreakContinue(t *testing.T) {
	src := `
		n := 0
	outer:
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if j == 1 {
					continue outer
				}
				if i == 2 {
					break outer
				}
				n++
			}
		}
		n = 77`
	g, fset := buildFor(t, src)
	full := "package p\nfunc f() {\n" + src + "\n}\n"
	if bi := nodeBlock(t, g, fset, full, "n = 77"); bi < 0 || !reachable(g)[bi] {
		t.Error("labeled break must reach the after-loop block")
	}
	if !hasCycle(g) {
		t.Error("nested loops produced no cycle")
	}
}

func TestCFGSelect(t *testing.T) {
	src := `
		ch := make(chan int)
		done := 0
		select {
		case v := <-ch:
			done = v
		default:
			done = 1
		}
		_ = done`
	g, fset := buildFor(t, src)
	full := "package p\nfunc f() {\n" + src + "\n}\n"
	for _, stmt := range []string{"done = v", "done = 1", "_ = done"} {
		if bi := nodeBlock(t, g, fset, full, stmt); bi < 0 || !reachable(g)[bi] {
			t.Errorf("select: %q unreachable", stmt)
		}
	}
}

func TestCFGTypeSwitch(t *testing.T) {
	src := `
		var x interface{} = 1
		y := 0
		switch v := x.(type) {
		case int:
			y = v
		case string:
			y = len(v)
		}
		_ = y`
	g, fset := buildFor(t, src)
	full := "package p\nfunc f() {\n" + src + "\n}\n"
	for _, stmt := range []string{"y = v", "y = len(v)", "_ = y"} {
		if bi := nodeBlock(t, g, fset, full, stmt); bi < 0 || !reachable(g)[bi] {
			t.Errorf("type switch: %q unreachable", stmt)
		}
	}
}

// hasCycle reports whether the reachable subgraph contains a cycle.
func hasCycle(g *CFG) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(g.Blocks))
	var visit func(*Block) bool
	visit = func(b *Block) bool {
		color[b.Index] = gray
		for _, s := range b.Succs {
			switch color[s.Index] {
			case gray:
				return true
			case white:
				if visit(s) {
					return true
				}
			}
		}
		color[b.Index] = black
		return false
	}
	return visit(g.Entry)
}
