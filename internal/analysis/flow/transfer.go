package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// state maps variables to their may-taint at one program point. Absent
// means untainted.
type state map[*types.Var]taint

func cloneState(st state) state {
	n := make(state, len(st))
	for k, v := range st {
		n[k] = v
	}
	return n
}

// mergeInto joins src into *dst (union of maps, per-key taint join) and
// reports whether any mask changed. A nil *dst becomes a copy of src, so
// "visited with empty state" and "never visited" stay distinguishable.
func mergeInto(dst *state, src state) bool {
	if *dst == nil {
		*dst = cloneState(src)
		return true
	}
	changed := false
	for k, v := range src {
		old, ok := (*dst)[k]
		if !ok {
			(*dst)[k] = v
			changed = true
			continue
		}
		j := join(old, v)
		if !j.sameMask(old) {
			changed = true
		}
		(*dst)[k] = j
	}
	return changed
}

// execCtx executes one function's transfer function. sweep is true only
// during the phase-2 recording pass; summary updates happen in every mode
// (they deduplicate).
type execCtx struct {
	a     *analysis
	fi    *funcInfo
	info  *types.Info
	sweep bool
}

// analyzeFunc runs the per-function fixpoint. With record set it follows
// up with the deterministic recording sweep that emits findings.
func (a *analysis) analyzeFunc(fi *funcInfo, record bool) {
	if fi.graph == nil {
		fi.graph = BuildCFG(fi.decl.Body)
	}
	init := state{}
	for i, p := range fi.params {
		var t taint
		// Parameters beyond the 64-bit mask get no param-contingent taint;
		// the cap is documented in the package comment and addFunc warns
		// (Config.Warn) on every function that exceeds it.
		if i < 64 {
			t.params = 1 << uint(i)
		}
		if id, ok := fi.seeds[i]; ok {
			t.roots = t.roots.with(id)
			t.tr = a.roots[id].tr
		}
		init[p] = t
	}
	ex := &execCtx{a: a, fi: fi, info: fi.pkg.Info, sweep: record}
	ex.run(fi.graph, init)
}

// run iterates the CFG to a fixpoint, then (when sweeping) replays every
// reachable block once, in index order, against its final in-state.
func (ex *execCtx) run(g *CFG, init state) {
	doSweep := ex.sweep
	ex.sweep = false
	ins := make([]state, len(g.Blocks))
	ins[g.Entry.Index] = init
	inWork := make([]bool, len(g.Blocks))
	work := []int{g.Entry.Index}
	inWork[g.Entry.Index] = true
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		inWork[bi] = false
		blk := g.Blocks[bi]
		st := cloneState(ins[bi])
		for _, n := range blk.Nodes {
			ex.node(st, n)
		}
		for _, succ := range blk.Succs {
			if mergeInto(&ins[succ.Index], st) && !inWork[succ.Index] {
				inWork[succ.Index] = true
				work = append(work, succ.Index)
			}
		}
	}
	if doSweep {
		ex.sweep = true
		for _, blk := range g.Blocks {
			if ins[blk.Index] == nil {
				continue // unreachable
			}
			st := cloneState(ins[blk.Index])
			for _, n := range blk.Nodes {
				ex.node(st, n)
			}
		}
	}
	ex.sweep = doSweep
}

// node is the transfer function for one CFG node.
func (ex *execCtx) node(st state, n ast.Node) {
	switch n := n.(type) {
	case ast.Stmt:
		ex.stmt(st, n)
	case ast.Expr:
		// A bare expression in a block is a condition (if/for cond, switch
		// tag, case expression): control flow is about to depend on it.
		t := ex.eval(st, n)
		ex.sink(st, SinkBranch, n.Pos(), ex.text(n), t)
	}
}

func (ex *execCtx) stmt(st state, s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		ex.assignStmt(st, s)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			ex.assignN(st, identExprs(vs.Names), vs.Values)
		}
	case *ast.ExprStmt:
		ex.eval(st, s.X)
	case *ast.SendStmt:
		v := ex.eval(st, s.Value)
		ex.eval(st, s.Chan)
		ex.baseWrite(st, s.Chan, v.hop(s.Arrow, "sent on "+ex.text(s.Chan)))
	case *ast.GoStmt:
		ex.eval(st, s.Call)
	case *ast.DeferStmt:
		ex.eval(st, s.Call)
	case *ast.ReturnStmt:
		ex.returnStmt(st, s)
	case *ast.RangeStmt:
		ex.rangeStmt(st, s)
	case *ast.TypeSwitchStmt:
		ex.typeSwitch(st, s)
	case *ast.IncDecStmt:
		// x++ preserves x's taint; nothing changes.
	}
}

func identExprs(ids []*ast.Ident) []ast.Expr {
	out := make([]ast.Expr, len(ids))
	for i, id := range ids {
		out[i] = id
	}
	return out
}

func (ex *execCtx) assignStmt(st state, s *ast.AssignStmt) {
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		// Compound assignment: x op= y reads and writes x.
		lt := ex.eval(st, s.Lhs[0])
		rt := ex.eval(st, s.Rhs[0])
		t := join(lt, rt)
		if (s.Tok == token.QUO_ASSIGN || s.Tok == token.REM_ASSIGN) && isIntExpr(ex.info, s.Lhs[0]) {
			ex.sink(st, SinkDivMod, s.TokPos, ex.text(s.Lhs[0])+" "+s.Tok.String()+" "+ex.text(s.Rhs[0]), t)
		}
		ex.assignTo(st, s.Lhs[0], t)
		return
	}
	ex.assignN(st, s.Lhs, s.Rhs)
}

// assignN handles n-to-n and tuple (n-to-1) assignment forms.
func (ex *execCtx) assignN(st state, lhs, rhs []ast.Expr) {
	var vals []taint
	switch {
	case len(rhs) == 0:
		vals = make([]taint, len(lhs)) // var x T
	case len(rhs) == 1 && len(lhs) > 1:
		vals = ex.evalMulti(st, rhs[0], len(lhs))
	default:
		vals = make([]taint, len(rhs))
		for i, r := range rhs {
			vals[i] = ex.eval(st, r)
		}
	}
	for i, l := range lhs {
		var v taint
		if i < len(vals) {
			v = vals[i]
		}
		ex.assignTo(st, l, v)
	}
}

// assignTo routes a value into an lvalue: strong update for plain
// variables (reassignment clears taint), weak update through element,
// pointer, and field targets.
func (ex *execCtx) assignTo(st state, target ast.Expr, v taint) {
	switch t := ast.Unparen(target).(type) {
	case *ast.Ident:
		if t.Name == "_" {
			return
		}
		obj := ex.objOf(t)
		if obj == nil {
			return
		}
		ex.noteEscape(st, obj, v, t.Pos())
		nv := v.hop(t.Pos(), "assigned to "+t.Name)
		if nv.empty() {
			delete(st, obj)
		} else {
			st[obj] = nv
		}
	case *ast.IndexExpr:
		it := ex.eval(st, t.Index)
		ex.eval(st, t.X)
		if IndexableMemory(ex.info.TypeOf(t.X)) {
			ex.sink(st, SinkIndex, t.Lbrack, ex.text(t), it)
		}
		ex.baseWrite(st, t.X, join(v, it).hop(t.Pos(), "stored into element of "+ex.text(t.X)))
	case *ast.StarExpr:
		ex.eval(st, t.X)
		ex.baseWrite(st, t.X, v.hop(t.Pos(), "stored through "+ex.text(t.X)))
	case *ast.SelectorExpr:
		ex.fieldWrite(st, t, v)
	}
}

// objOf resolves an identifier to its variable object.
func (ex *execCtx) objOf(id *ast.Ident) *types.Var {
	if obj, ok := ex.info.Defs[id].(*types.Var); ok {
		return obj
	}
	obj, _ := ex.info.Uses[id].(*types.Var)
	return obj
}

// noteEscape records taint leaving the function through a variable that
// outlives it: package-level variables become global roots (when
// root-tainted) or summary writes (when param-contingent).
func (ex *execCtx) noteEscape(st state, obj *types.Var, v taint, pos token.Pos) {
	if v.empty() || obj.Parent() == nil || obj.Parent() != obj.Pkg().Scope() {
		return
	}
	if v.roots.any() {
		ex.a.rootForField(obj, "package variable "+obj.Name(),
			&step{pos: pos, desc: "package variable " + obj.Name() + " assigned a secret", prev: v.tr})
	}
	if v.params != 0 {
		ex.fi.sum.addWrite(-1, obj, v.params, v.tr)
	}
}

// baseWrite joins v into the variable at the base of an expression chain
// (a[i], *p, x.f ...), and records summary writes when that base is a
// parameter, a field, or a package variable.
func (ex *execCtx) baseWrite(st state, e ast.Expr, v taint) {
	if v.empty() {
		return
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := ex.objOf(e)
		if obj == nil {
			return
		}
		ex.noteEscape(st, obj, v, e.Pos())
		if idx := ex.fi.paramIndex(obj); idx >= 0 && v.params != 0 {
			ex.fi.sum.addWrite(idx, nil, v.params, v.tr)
		}
		st[obj] = join(st[obj], v)
	case *ast.IndexExpr:
		ex.baseWrite(st, e.X, v)
	case *ast.StarExpr:
		ex.baseWrite(st, e.X, v)
	case *ast.SelectorExpr:
		ex.fieldWrite(st, e, v)
	}
}

// fieldWrite handles stores into x.f: root-tainted values promote the
// field to a global root; param-contingent values become summary field
// writes. The enclosing struct variable is deliberately NOT tainted —
// taint is field-sensitive. Conflating container with contents would mark
// every *Cipher as secret the moment its key schedule is filled in, and
// from there every public property read through it (round counts, nil
// checks on sibling fields) drowns the real leaks. The field root is
// instance-insensitive, so reads through any instance still see the
// taint; what is lost is only flows that smuggle a whole struct through
// code that never touches the secret fields.
func (ex *execCtx) fieldWrite(st state, sel *ast.SelectorExpr, v taint) {
	if v.empty() {
		return
	}
	field := ex.fieldOf(sel)
	if field == nil {
		return
	}
	if v.roots.any() {
		ex.a.rootForField(field, "field "+field.Name()+" of "+ownerName(field),
			&step{pos: sel.Sel.Pos(), desc: "field " + field.Name() + " assigned a secret", prev: v.tr})
	}
	if v.params != 0 {
		ex.fi.sum.addWrite(-1, field, v.params, v.tr)
	}
}

// fieldOf resolves x.f to the field's variable object (or a qualified
// package variable pkg.V).
func (ex *execCtx) fieldOf(sel *ast.SelectorExpr) *types.Var {
	if s, ok := ex.info.Selections[sel]; ok {
		if f, ok := s.Obj().(*types.Var); ok && f.IsField() {
			return f
		}
		return nil
	}
	// Qualified identifier: pkg.Var.
	if v, ok := ex.info.Uses[sel.Sel].(*types.Var); ok && !v.IsField() {
		return v
	}
	return nil
}

func ownerName(field *types.Var) string {
	if field.Pkg() != nil {
		return field.Pkg().Name() + " struct"
	}
	return "struct"
}

// paramIndex returns obj's position in the receiver-first parameter list,
// or -1.
func (fi *funcInfo) paramIndex(obj *types.Var) int {
	for i, p := range fi.params {
		if p == obj {
			return i
		}
	}
	return -1
}

func (ex *execCtx) returnStmt(st state, s *ast.ReturnStmt) {
	sig := ex.fi.obj.Type().(*types.Signature)
	nres := sig.Results().Len()
	if nres == 0 {
		for _, r := range s.Results {
			ex.eval(st, r)
		}
		return
	}
	vals := make([]taint, nres)
	switch {
	case len(s.Results) == 0:
		// Naked return: named results carry their current taint.
		for i := 0; i < nres; i++ {
			if v := sig.Results().At(i); v.Name() != "" {
				vals[i] = st[v]
			}
		}
	case len(s.Results) == 1 && nres > 1:
		vals = ex.evalMulti(st, s.Results[0], nres)
	default:
		for i, r := range s.Results {
			if i < nres {
				vals[i] = ex.eval(st, r)
			}
		}
	}
	sum := ex.fi.sum
	for len(sum.results) < nres {
		sum.results = append(sum.results, taint{})
	}
	for i, v := range vals {
		sum.results[i] = join(sum.results[i], v.hop(s.Pos(), "returned from "+ex.fi.obj.Name()))
	}
}

func (ex *execCtx) rangeStmt(st state, s *ast.RangeStmt) {
	xt := ex.eval(st, s.X)
	var keyT, valT taint
	switch u := ex.info.TypeOf(s.X).Underlying().(type) {
	case *types.Basic:
		if u.Info()&types.IsInteger != 0 {
			// for i := range n — the trip count IS the value.
			ex.sink(st, SinkBranch, s.X.Pos(), "range over "+ex.text(s.X), xt)
			keyT = xt
		} else {
			valT = xt // string: byte positions are public, runes are not
		}
	case *types.Map:
		keyT, valT = xt, xt
	case *types.Chan:
		keyT = xt
	case *types.Signature:
		keyT, valT = xt, xt // range-over-func: yielded values come from X
	default:
		valT = xt // array/slice: positions public, elements tainted
	}
	if s.Key != nil {
		ex.assignTo(st, s.Key, keyT)
	}
	if s.Value != nil {
		ex.assignTo(st, s.Value, valT)
	}
}

// typeSwitch taints the per-clause implicit variables from the switched
// operand. Which dynamic type a value has is public by policy (types are
// not data), so the dispatch itself is not a branch sink.
func (ex *execCtx) typeSwitch(st state, s *ast.TypeSwitchStmt) {
	var x ast.Expr
	switch as := s.Assign.(type) {
	case *ast.ExprStmt:
		x = as.X.(*ast.TypeAssertExpr).X
	case *ast.AssignStmt:
		x = as.Rhs[0].(*ast.TypeAssertExpr).X
	}
	t := ex.eval(st, x)
	if t.empty() {
		return
	}
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if obj, ok := ex.info.Implicits[cc].(*types.Var); ok {
			st[obj] = t
		}
	}
}

// sortedCallers returns fi's callers in deterministic order, so the
// worklist (and hence which witness a summary carries) never depends on
// map iteration.
func (a *analysis) sortedCallers(fi *funcInfo) []*funcInfo {
	objs := make([]*types.Func, 0, len(fi.callers))
	for obj := range fi.callers {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return a.callerIdx(objs[i]) < a.callerIdx(objs[j]) })
	out := make([]*funcInfo, 0, len(objs))
	for _, obj := range objs {
		if c := a.funcs[obj]; c != nil {
			out = append(out, c)
		}
	}
	return out
}

func (a *analysis) callerIdx(obj *types.Func) int {
	if c := a.funcs[obj]; c != nil {
		return c.idx
	}
	return -1
}
