package flow

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

var errorType = types.Universe.Lookup("error").Type()

func isErrorExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	return t != nil && types.Identical(t, errorType)
}

// isNil reports whether e is the predeclared nil (possibly parenthesized).
func (ex *execCtx) isNil(e ast.Expr) bool {
	tv, ok := ex.info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

func isIntExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// sink reports one secret-dependent sink: param-contingent taint goes into
// the function summary (realized at call sites), root-bearing taint
// becomes a finding during the recording sweep.
func (ex *execCtx) sink(st state, kind SinkKind, pos token.Pos, expr string, t taint) {
	if t.empty() {
		return
	}
	if t.params != 0 {
		ex.fi.sum.addSink(pos, kind, expr, t.params, t.tr)
	}
	if ex.sweep && t.roots.any() {
		ex.a.recordFinding(pos, kind, expr, t)
	}
}

// eval computes an expression's taint, performing side effects (call
// summaries, sinks) along the way. Error values are public by policy:
// which error occurred is control-plane data the leak model does not
// track, and exempting it keeps `if err != nil` after a call with secret
// arguments from drowning the real branch sinks.
func (ex *execCtx) eval(st state, e ast.Expr) taint {
	t := ex.evalInner(st, e)
	if isErrorExpr(ex.info, e) {
		return taint{}
	}
	return t
}

func (ex *execCtx) evalInner(st state, e ast.Expr) taint {
	switch e := e.(type) {
	case *ast.Ident:
		obj := ex.objOf(e)
		if obj == nil {
			return taint{}
		}
		if id, ok := ex.a.fieldRoot[obj]; ok {
			return taint{roots: bits{}.with(id), tr: ex.a.roots[id].tr}
		}
		return st[obj]
	case *ast.ParenExpr:
		return ex.evalInner(st, e.X)
	case *ast.SelectorExpr:
		xt := ex.eval(st, e.X)
		if field := ex.fieldOf(e); field != nil {
			if id, ok := ex.a.fieldRoot[field]; ok {
				rt := taint{roots: bits{}.with(id), tr: ex.a.roots[id].tr}
				return join(rt, xt)
			}
		}
		return xt
	case *ast.BasicLit:
		return taint{}
	case *ast.BinaryExpr:
		t := join(ex.eval(st, e.X), ex.eval(st, e.Y))
		if (e.Op == token.EQL || e.Op == token.NEQ) && (ex.isNil(e.X) || ex.isNil(e.Y)) {
			// Pointer/interface identity against nil is public by policy:
			// whether a recorder or buffer is wired up is program structure,
			// not secret content, and `if rec != nil` guards around every
			// victim's instrumentation would otherwise drown real branches.
			return taint{}
		}
		if (e.Op == token.QUO || e.Op == token.REM) && isIntExpr(ex.info, e.X) {
			// Integer division latency varies with operand magnitude on
			// real hardware — the variable-latency sink class.
			ex.sink(st, SinkDivMod, e.OpPos, ex.text(e), t)
		}
		return t
	case *ast.UnaryExpr:
		return ex.eval(st, e.X)
	case *ast.StarExpr:
		return ex.eval(st, e.X)
	case *ast.CallExpr:
		res := ex.call(st, e)
		if len(res) == 1 {
			return res[0]
		}
		var t taint
		for _, r := range res {
			t = join(t, r)
		}
		return t
	case *ast.IndexExpr:
		if tv, ok := ex.info.Types[e.Index]; ok && tv.IsType() {
			return taint{} // generic instantiation used as a value
		}
		xt := ex.eval(st, e.X)
		it := ex.eval(st, e.Index)
		if IndexableMemory(ex.info.TypeOf(e.X)) {
			ex.sink(st, SinkIndex, e.Lbrack, ex.text(e), it)
		}
		// Which element was read is a function of the index, so a tainted
		// index taints the element.
		return join(xt, it)
	case *ast.IndexListExpr:
		return taint{} // generic instantiation (multiple type args)
	case *ast.SliceExpr:
		xt := ex.eval(st, e.X)
		var bt taint
		for _, b := range []ast.Expr{e.Low, e.High, e.Max} {
			if b != nil {
				bt = join(bt, ex.eval(st, b))
			}
		}
		if IndexableMemory(ex.info.TypeOf(e.X)) {
			// Slice bounds address memory exactly like an index does.
			ex.sink(st, SinkIndex, e.Lbrack, ex.text(e), bt)
		}
		return join(xt, bt)
	case *ast.CompositeLit:
		var t taint
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				t = join(t, ex.eval(st, kv.Key))
				t = join(t, ex.eval(st, kv.Value))
				continue
			}
			t = join(t, ex.eval(st, el))
		}
		return t
	case *ast.TypeAssertExpr:
		return ex.eval(st, e.X)
	case *ast.FuncLit:
		ex.funcLit(st, e)
		return taint{}
	case *ast.KeyValueExpr:
		return ex.eval(st, e.Value)
	}
	return taint{}
}

// evalMulti evaluates a single expression expected to produce n values
// (call, type assertion, map index, channel receive in tuple form).
func (ex *execCtx) evalMulti(st state, e ast.Expr, n int) []taint {
	out := make([]taint, n)
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		res := ex.call(st, e)
		copy(out, res)
	default:
		// v, ok := x.(T) / m[k] / <-ch: the value carries the operand's
		// taint; the ok/bool is public (presence, not content).
		out[0] = ex.eval(st, e)
		if n > 1 {
			out[1] = taint{}
		}
	}
	for i := range out {
		if sig, ok := ex.info.TypeOf(e).(*types.Tuple); ok && i < sig.Len() {
			if types.Identical(sig.At(i).Type(), errorType) {
				out[i] = taint{}
			}
		}
	}
	return out
}

// funcLit analyzes a function literal against a snapshot of the current
// state: sinks inside closures over tainted variables are found (and feed
// the enclosing function's summary), but taint entering through the
// literal's own parameters is not tracked — a documented engine limit.
func (ex *execCtx) funcLit(st state, e *ast.FuncLit) {
	init := cloneState(st)
	for _, field := range e.Type.Params.List {
		for _, name := range field.Names {
			if obj, ok := ex.info.Defs[name].(*types.Var); ok {
				delete(init, obj)
			}
		}
	}
	ex.run(BuildCFG(e.Body), init)
}

// ---- calls ----

// call evaluates a call expression: builtins and conversions inline,
// module-local callees through their summaries, everything else through
// the unknown-call policy (results tainted by arguments; writes through
// pointer arguments not modeled — interfaces like the victims' Recorder
// thereby act as declassification boundaries, which is exactly the
// measurement boundary of the attack model).
func (ex *execCtx) call(st state, call *ast.CallExpr) []taint {
	if res, ok := ex.builtinCall(st, call); ok {
		return res
	}
	if tv, ok := ex.info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: T(x) is x.
		if len(call.Args) == 1 {
			return []taint{ex.eval(st, call.Args[0])}
		}
		return nil
	}

	callee := ex.a.resolveCallee(ex.info, call)

	// Evaluate the receiver (if any) and arguments in source order.
	var recvExpr ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := ex.info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			recvExpr = sel.X
		}
	}
	var recvT taint
	if recvExpr != nil {
		recvT = ex.eval(st, recvExpr)
	} else {
		ex.evalInner(st, call.Fun) // func-typed expression, closures etc.
	}
	argT := make([]taint, len(call.Args))
	for i, arg := range call.Args {
		argT[i] = ex.eval(st, arg)
	}

	if callee == nil {
		return ex.unknownCall(st, call, recvT, argT)
	}
	if callee.sanitizer {
		// Designated constant-time helper / declassifier: arguments still
		// flow in (sinks inside it are its own business), results are
		// public.
		n := resultCount(ex.info, call)
		return make([]taint, n)
	}

	// Align arguments to the callee's receiver-first parameter list. For a
	// method expression T.f(recv, ...) the receiver is already the first
	// call argument, so the lists line up without prepending.
	vals := argT
	argExprs := append([]ast.Expr(nil), call.Args...)
	if recvOf(callee) != nil && recvExpr != nil {
		vals = append([]taint{recvT}, vals...)
		argExprs = append([]ast.Expr{recvExpr}, argExprs...)
	}
	params := make([]taint, len(callee.params))
	exprs := make([]ast.Expr, len(callee.params))
	for i, v := range vals {
		if i >= len(params) {
			// Variadic overflow joins into the last parameter.
			if len(params) > 0 {
				params[len(params)-1] = join(params[len(params)-1], v)
			}
			continue
		}
		params[i], exprs[i] = v, argExprs[i]
	}

	name := callee.obj.Name()
	sum := callee.sum

	// Realize the callee's summary against these arguments.
	for _, sk := range sum.sinks {
		src := realize(taint{params: sk.params}, params, call.Lparen, name, nil)
		if src.empty() {
			continue
		}
		chain := appendChain(sk.tr, src.tr)
		if src.params != 0 {
			ex.fi.sum.addSink(sk.pos, sk.kind, sk.expr, src.params, chain)
		}
		if ex.sweep && src.roots.any() {
			ex.a.recordFinding(sk.pos, sk.kind, sk.expr, taint{roots: src.roots, tr: chain})
		}
	}
	for _, w := range sum.writes {
		src := realize(taint{params: w.params}, params, call.Lparen, name, nil)
		if src.empty() {
			continue
		}
		src.tr = appendChain(w.tr, src.tr)
		if w.target >= 0 {
			if w.target < len(exprs) && exprs[w.target] != nil {
				ex.baseWrite(st, exprs[w.target],
					src.hop(call.Lparen, "written by "+name+" through its argument"))
			}
		} else {
			if src.roots.any() {
				ex.a.rootForField(w.field, "field "+w.field.Name()+" of "+ownerName(w.field),
					&step{pos: call.Lparen, desc: "field " + w.field.Name() + " assigned a secret via " + name, prev: src.tr})
			}
			if src.params != 0 {
				ex.fi.sum.addWrite(-1, w.field, src.params, src.tr)
			}
		}
	}
	out := make([]taint, len(sum.results))
	for i, r := range sum.results {
		out[i] = realize(r, params, call.Lparen, name, r.tr)
	}
	return out
}

func recvOf(fi *funcInfo) *types.Var {
	return fi.obj.Type().(*types.Signature).Recv()
}

func resultCount(info *types.Info, call *ast.CallExpr) int {
	switch t := info.TypeOf(call).(type) {
	case *types.Tuple:
		return t.Len()
	case nil:
		return 0
	default:
		return 1
	}
}

// realize maps a summary taint (over callee parameters) into the caller's
// domain given the argument taints. calleeTr, when non-nil, is the
// callee-side witness to stitch onto the argument-side witness.
func realize(t taint, args []taint, callPos token.Pos, name string, calleeTr *step) taint {
	out := taint{roots: t.roots, tr: calleeTr}
	var argWitness *step
	contributed := false
	for j := range args {
		if j >= 64 || t.params&(1<<uint(j)) == 0 || args[j].empty() {
			continue
		}
		out.params |= args[j].params
		out.roots = out.roots.or(args[j].roots)
		if !contributed {
			argWitness = args[j].tr
			contributed = true
		}
	}
	if contributed {
		out.tr = appendChain(calleeTr,
			&step{pos: callPos, desc: "argument to " + name, prev: argWitness})
	}
	return out
}

// unknownCall applies the out-of-module policy: every result is tainted by
// the join of receiver and arguments (minus error results), and no writes
// through arguments are assumed.
func (ex *execCtx) unknownCall(st state, call *ast.CallExpr, recvT taint, argT []taint) []taint {
	t := recvT
	for _, at := range argT {
		t = join(t, at)
	}
	n := resultCount(ex.info, call)
	out := make([]taint, n)
	if t.empty() {
		return out
	}
	t = t.hop(call.Lparen, "result of "+ex.text(call.Fun))
	for i := range out {
		out[i] = t
	}
	// Strip error results (public by policy).
	if tup, ok := ex.info.TypeOf(call).(*types.Tuple); ok {
		for i := 0; i < tup.Len() && i < n; i++ {
			if types.Identical(tup.At(i).Type(), errorType) {
				out[i] = taint{}
			}
		}
	}
	return out
}

// builtinCall handles the builtins with taint-relevant semantics. Lengths
// and capacities are public by policy: the leak model tracks values, and
// sizes are structural facts the attacker already has.
func (ex *execCtx) builtinCall(st state, call *ast.CallExpr) ([]taint, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil, false
	}
	if _, ok := ex.info.Uses[id].(*types.Builtin); !ok {
		return nil, false
	}
	switch id.Name {
	case "len", "cap":
		for _, a := range call.Args {
			ex.eval(st, a)
		}
		return []taint{{}}, true
	case "copy":
		srcT := taint{}
		if len(call.Args) == 2 {
			srcT = ex.eval(st, call.Args[1])
			ex.eval(st, call.Args[0])
			ex.baseWrite(st, call.Args[0], srcT.hop(call.Lparen, "copied into "+ex.text(call.Args[0])))
		}
		return []taint{{}}, true // copy's count result is a length
	case "append":
		var t taint
		for _, a := range call.Args {
			t = join(t, ex.eval(st, a))
		}
		return []taint{t}, true
	case "make", "new", "clear", "close", "recover", "print", "println":
		for _, a := range call.Args {
			ex.eval(st, a)
		}
		return []taint{{}}, true
	case "delete", "panic":
		for _, a := range call.Args {
			ex.eval(st, a)
		}
		return nil, true
	case "min", "max":
		var t taint
		for _, a := range call.Args {
			t = join(t, ex.eval(st, a))
		}
		return []taint{t}, true
	}
	return nil, false
}

// appendChain copies the head chain and splices tail after its oldest
// step, so shared summary chains are never mutated.
func appendChain(head, tail *step) *step {
	if head == nil {
		return tail
	}
	var nodes []*step
	for s := head; s != nil; s = s.prev {
		nodes = append(nodes, s)
	}
	cur := tail
	for i := len(nodes) - 1; i >= 0; i-- {
		cur = &step{pos: nodes[i].pos, desc: nodes[i].desc, prev: cur}
	}
	return cur
}

// text renders an expression's source, truncated for diagnostics.
func (ex *execCtx) text(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, ex.a.fset, e); err != nil {
		return "?"
	}
	s := buf.String()
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}
