package cache

import (
	"fmt"

	"randfill/internal/mem"
)

// Per-way metadata bits (see the SetAssoc field comments). Valid is not a
// bit: a way is valid iff its tag is not invalidTag.
const (
	metaDirty uint8 = 1 << iota
	metaReferenced
	metaLocked
)

// invalidTag marks an empty way in the tags array. Real line numbers are
// byte addresses shifted right by mem.LineShift, so the all-ones value can
// never collide with a reachable line; using a sentinel instead of a valid
// bit lets the hot probe compare tags alone, with no second flag load and no
// way for a stale tag to alias a probed line (see DESIGN.md §12).
const invalidTag = ^mem.Line(0)

// SetAssoc is a conventional set-associative cache with a pluggable
// replacement policy. It also serves direct-mapped (Ways=1) and fully
// associative (Sets=1) shapes.
//
// Per-way state is struct-of-arrays: the tags array is the only state the
// hit fast path touches (one contiguous cache line per 8 ways), the meta
// array carries the dirty/referenced/locked bits, and replacement-policy
// state lives in stamps, a parallel array the policy operates on as a
// contiguous per-set subslice (the stamp double-copy used to dominate the
// Lookup profile; see DESIGN.md §7, §12).
type SetAssoc struct {
	geom    Geometry
	sets    int
	ways    int
	tags    []mem.Line // sets*ways, row-major by set; invalidTag = empty way
	meta    []uint8    // dirty/referenced/locked bits, parallel to tags
	owners  []int      // owning process ids, parallel to tags
	offsets []int8     // fill-offset tags, parallel to tags
	stamps  []uint64   // replacement-policy state, parallel to tags
	policy  Policy
	tick    uint64
	stats   Stats
	onEv    EvictionObserver

	// isLRU devirtualizes the by-far-most-common policy on the touch and
	// victim hot paths (identical results, no interface call).
	isLRU bool
}

var _ Cache = (*SetAssoc)(nil)

// NewSetAssoc builds a cache with the given geometry and replacement
// policy. It panics on invalid geometry (sizes must be line-multiple,
// power-of-two set counts), mirroring a hardware configuration error.
func NewSetAssoc(geom Geometry, policy Policy) *SetAssoc {
	geom.check()
	if policy == nil {
		policy = LRU{}
	}
	if err := PolicyValid(policy); err != nil {
		panic(err)
	}
	sets := geom.Sets()
	_, isLRU := policy.(LRU)
	n := sets * geom.Ways
	tags := make([]mem.Line, n)
	for i := range tags {
		tags[i] = invalidTag
	}
	return &SetAssoc{
		geom:    geom,
		sets:    sets,
		ways:    geom.Ways,
		tags:    tags,
		meta:    make([]uint8, n),
		owners:  make([]int, n),
		offsets: make([]int8, n),
		stamps:  make([]uint64, n),
		policy:  policy,
		isLRU:   isLRU,
	}
}

// Geometry returns the cache's size and associativity.
func (c *SetAssoc) Geometry() Geometry { return c.geom }

// NumLines returns the total line capacity.
func (c *SetAssoc) NumLines() int { return len(c.tags) }

// Sets returns the number of sets.
func (c *SetAssoc) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *SetAssoc) Ways() int { return c.ways }

// Stats returns the live statistics counters.
func (c *SetAssoc) Stats() *Stats { return &c.stats }

// SetEvictionObserver registers fn to receive every displaced valid line.
func (c *SetAssoc) SetEvictionObserver(fn EvictionObserver) { c.onEv = fn }

// SetIndex returns the set index the line maps to.
func (c *SetAssoc) SetIndex(l mem.Line) int { return int(uint64(l) & uint64(c.sets-1)) }

// base returns the index of set idx's first way in the parallel arrays.
func (c *SetAssoc) base(idx int) int { return idx * c.ways }

// find returns the way holding line l in the set starting at base, or -1.
// Only the tags array is consulted: empty ways hold invalidTag, which no
// reachable line number can equal.
func (c *SetAssoc) find(base int, l mem.Line) int {
	tags := c.tags[base : base+c.ways]
	for w := range tags {
		if tags[w] == l {
			return w
		}
	}
	return -1
}

// TryHit performs Lookup's hit path iff line l is present: replacement
// state, reference/dirty bits and the hit counter update exactly as Lookup's
// hit path does, and TryHit returns true. On a miss it changes nothing — not
// even the miss counter — and returns false, so batch replay loops can probe
// the common all-hits case first and fall back to the full per-access path
// (which re-runs the lookup and does the miss accounting) only when needed.
// Lookup itself is TryHit plus the miss accounting, keeping the two paths
// identical by construction.
func (c *SetAssoc) TryHit(l mem.Line, write bool) bool {
	base := int(uint64(l)&uint64(c.sets-1)) * c.ways
	tags := c.tags[base : base+c.ways]
	w := -1
	for i := range tags {
		if tags[i] == l {
			w = i
			break
		}
	}
	if w < 0 {
		return false
	}
	c.stats.Hits++
	c.tick++
	m := c.meta[base+w] | metaReferenced
	if write {
		m |= metaDirty
	}
	c.meta[base+w] = m
	c.touch(base, w, false)
	return true
}

// Lookup implements Cache.
func (c *SetAssoc) Lookup(l mem.Line, write bool) bool {
	if c.TryHit(l, write) {
		return true
	}
	c.stats.Misses++
	return false
}

// Probe implements Cache.
func (c *SetAssoc) Probe(l mem.Line) bool {
	return c.find(c.base(c.SetIndex(l)), l) >= 0
}

// touch updates the replacement stamps of the set starting at base after an
// access to way w. The policy operates on the stamps array directly; hits
// and fills are distinct policy events (RRIP inserts distant but promotes
// on hit, FIFO stamps only fills).
func (c *SetAssoc) touch(base, w int, fill bool) {
	if c.isLRU {
		c.stamps[base+w] = c.tick
		return
	}
	if fill {
		c.policy.OnFill(c.stamps[base:base+c.ways], w, c.tick)
	} else {
		c.policy.OnHit(c.stamps[base:base+c.ways], w, c.tick)
	}
}

// victim selects the way to evict from the full set starting at base.
func (c *SetAssoc) victim(base int) int {
	stamps := c.stamps[base : base+c.ways]
	if c.isLRU {
		best := 0
		for w := 1; w < len(stamps); w++ {
			if stamps[w] < stamps[best] {
				best = w
			}
		}
		return best
	}
	return c.policy.Victim(stamps)
}

// Fill implements Cache.
func (c *SetAssoc) Fill(l mem.Line, opts FillOpts) Victim {
	base := c.base(c.SetIndex(l))
	c.tick++
	if w := c.find(base, l); w >= 0 {
		// Refreshing an already-present line: update metadata only.
		if opts.Dirty {
			c.meta[base+w] |= metaDirty
		}
		if opts.Lock {
			c.meta[base+w] |= metaLocked
			c.owners[base+w] = opts.Owner
		}
		c.touch(base, w, true)
		return Victim{}
	}
	c.stats.Fills++
	// Prefer an invalid way.
	w := -1
	for i := 0; i < c.ways; i++ {
		if c.tags[base+i] == invalidTag {
			w = i
			break
		}
	}
	var v Victim
	if w < 0 {
		w = c.victim(base)
		v = c.evict(base, w)
	}
	i := base + w
	c.tags[i] = l
	m := uint8(0)
	if opts.Dirty {
		m |= metaDirty
	}
	if opts.Lock {
		m |= metaLocked
	}
	c.meta[i] = m
	c.owners[i] = opts.Owner
	c.offsets[i] = opts.Offset
	// The way's stamp word is deliberately NOT cleared here: the fill event
	// below rewrites whatever the policy needs, and for PLRU the per-set
	// stamp words hold shared tree bits that must survive installs.
	c.touch(base, w, true)
	return v
}

// evict clears way w of the set starting at base and returns its victim
// record, after notifying the eviction observer and bumping counters.
func (c *SetAssoc) evict(base, w int) Victim {
	i := base + w
	v := Victim{
		Valid:      true,
		Line:       c.tags[i],
		Dirty:      c.meta[i]&metaDirty != 0,
		Referenced: c.meta[i]&metaReferenced != 0,
		Offset:     c.offsets[i],
	}
	c.stats.Evictions++
	if v.Dirty {
		c.stats.Writebacks++
	}
	if c.onEv != nil {
		c.onEv(v)
	}
	c.tags[i] = invalidTag
	return v
}

// Invalidate implements Cache.
func (c *SetAssoc) Invalidate(l mem.Line) bool {
	base := c.base(c.SetIndex(l))
	w := c.find(base, l)
	if w < 0 {
		return false
	}
	c.stats.Invalidates++
	c.evict(base, w)
	return true
}

// Flush implements Cache.
func (c *SetAssoc) Flush() {
	for i := range c.tags {
		if c.tags[i] != invalidTag {
			c.stats.Invalidates++
			c.evict(i/c.ways*c.ways, i%c.ways)
		}
	}
}

// Occupancy returns the number of valid lines. It is a pure observer (no
// replacement-state or counter updates): the occupancy-channel attacks read
// it as ground truth for the victim footprint an attacker estimates.
func (c *SetAssoc) Occupancy() int {
	n := 0
	for i := range c.tags {
		if c.tags[i] != invalidTag {
			n++
		}
	}
	return n
}

// Contents returns the line numbers of all valid lines, for tests and for
// end-of-run profiler accounting.
func (c *SetAssoc) Contents() []mem.Line {
	var out []mem.Line
	for i := range c.tags {
		if c.tags[i] != invalidTag {
			out = append(out, c.tags[i])
		}
	}
	return out
}

// DrainValid reports every still-valid line to the eviction observer without
// invalidating it. The spatial-locality profiler calls it at end of run so
// never-evicted lines are counted in the Eff(d) denominator.
func (c *SetAssoc) DrainValid() {
	if c.onEv == nil {
		return
	}
	for i := range c.tags {
		if c.tags[i] != invalidTag {
			c.onEv(Victim{
				Valid:      true,
				Line:       c.tags[i],
				Dirty:      c.meta[i]&metaDirty != 0,
				Referenced: c.meta[i]&metaReferenced != 0,
				Offset:     c.offsets[i],
			})
		}
	}
}

// IsLocked reports whether line l is present and locked.
func (c *SetAssoc) IsLocked(l mem.Line) bool {
	base := c.base(c.SetIndex(l))
	w := c.find(base, l)
	return w >= 0 && c.meta[base+w]&metaLocked != 0
}

// Owner returns the owner id of line l, or NoOwner if absent or unowned.
func (c *SetAssoc) Owner(l mem.Line) int {
	base := c.base(c.SetIndex(l))
	if w := c.find(base, l); w >= 0 {
		return c.owners[base+w]
	}
	return NoOwner
}

func (c *SetAssoc) String() string {
	return fmt.Sprintf("SA(%v, %v)", c.geom, c.policy)
}
