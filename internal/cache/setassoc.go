package cache

import (
	"fmt"

	"randfill/internal/mem"
)

// line is the per-way state of the set-associative cache. Replacement-policy
// state lives in SetAssoc.stamps, a parallel array, so the policy can operate
// on a contiguous per-set stamp slice without any copying (the stamp
// double-copy used to dominate the Lookup profile; see DESIGN.md §7).
type line struct {
	tag        mem.Line // full line number (tag comparison uses the whole value)
	valid      bool
	dirty      bool
	referenced bool
	locked     bool
	owner      int
	offset     int8
}

// SetAssoc is a conventional set-associative cache with a pluggable
// replacement policy. It also serves direct-mapped (Ways=1) and fully
// associative (Sets=1) shapes.
type SetAssoc struct {
	geom   Geometry
	sets   int
	ways   int
	lines  []line   // sets*ways, row-major by set
	stamps []uint64 // replacement-policy state, parallel to lines
	policy Policy
	tick   uint64
	stats  Stats
	onEv   EvictionObserver

	// isLRU devirtualizes the by-far-most-common policy on the touch and
	// victim hot paths (identical results, no interface call).
	isLRU bool
}

var _ Cache = (*SetAssoc)(nil)

// NewSetAssoc builds a cache with the given geometry and replacement
// policy. It panics on invalid geometry (sizes must be line-multiple,
// power-of-two set counts), mirroring a hardware configuration error.
func NewSetAssoc(geom Geometry, policy Policy) *SetAssoc {
	geom.check()
	if policy == nil {
		policy = LRU{}
	}
	sets := geom.Sets()
	_, isLRU := policy.(LRU)
	return &SetAssoc{
		geom:   geom,
		sets:   sets,
		ways:   geom.Ways,
		lines:  make([]line, sets*geom.Ways),
		stamps: make([]uint64, sets*geom.Ways),
		policy: policy,
		isLRU:  isLRU,
	}
}

// Geometry returns the cache's size and associativity.
func (c *SetAssoc) Geometry() Geometry { return c.geom }

// NumLines returns the total line capacity.
func (c *SetAssoc) NumLines() int { return len(c.lines) }

// Sets returns the number of sets.
func (c *SetAssoc) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *SetAssoc) Ways() int { return c.ways }

// Stats returns the live statistics counters.
func (c *SetAssoc) Stats() *Stats { return &c.stats }

// SetEvictionObserver registers fn to receive every displaced valid line.
func (c *SetAssoc) SetEvictionObserver(fn EvictionObserver) { c.onEv = fn }

// SetIndex returns the set index the line maps to.
func (c *SetAssoc) SetIndex(l mem.Line) int { return int(uint64(l) & uint64(c.sets-1)) }

// base returns the index of set idx's first way in the lines/stamps arrays.
func (c *SetAssoc) base(idx int) int { return idx * c.ways }

func (c *SetAssoc) set(idx int) []line { return c.lines[idx*c.ways : (idx+1)*c.ways] }

// find returns the way holding line l in set s, or -1. The tag compares
// first: on the hot path most ways mismatch, and the tag test alone rejects
// them without loading the valid flag.
func (c *SetAssoc) find(s []line, l mem.Line) int {
	for w := range s {
		if s[w].tag == l && s[w].valid {
			return w
		}
	}
	return -1
}

// Lookup implements Cache.
func (c *SetAssoc) Lookup(l mem.Line, write bool) bool {
	base := c.base(c.SetIndex(l))
	s := c.lines[base : base+c.ways]
	w := c.find(s, l)
	if w < 0 {
		c.stats.Misses++
		return false
	}
	c.stats.Hits++
	c.tick++
	s[w].referenced = true
	if write {
		s[w].dirty = true
	}
	c.touch(base, w, false)
	return true
}

// Probe implements Cache.
func (c *SetAssoc) Probe(l mem.Line) bool {
	return c.find(c.set(c.SetIndex(l)), l) >= 0
}

// touch updates the replacement stamps of the set starting at base after an
// access to way w. The policy operates on the stamps array directly.
func (c *SetAssoc) touch(base, w int, fill bool) {
	if c.isLRU {
		c.stamps[base+w] = c.tick
		return
	}
	c.policy.Touch(c.stamps[base:base+c.ways], w, c.tick, fill)
}

// victim selects the way to evict from the full set starting at base.
func (c *SetAssoc) victim(base int) int {
	stamps := c.stamps[base : base+c.ways]
	if c.isLRU {
		best := 0
		for w := 1; w < len(stamps); w++ {
			if stamps[w] < stamps[best] {
				best = w
			}
		}
		return best
	}
	return c.policy.Victim(stamps)
}

// Fill implements Cache.
func (c *SetAssoc) Fill(l mem.Line, opts FillOpts) Victim {
	base := c.base(c.SetIndex(l))
	s := c.lines[base : base+c.ways]
	c.tick++
	if w := c.find(s, l); w >= 0 {
		// Refreshing an already-present line: update metadata only.
		s[w].dirty = s[w].dirty || opts.Dirty
		if opts.Lock {
			s[w].locked = true
			s[w].owner = opts.Owner
		}
		c.touch(base, w, true)
		return Victim{}
	}
	c.stats.Fills++
	// Prefer an invalid way.
	w := -1
	for i := range s {
		if !s[i].valid {
			w = i
			break
		}
	}
	var v Victim
	if w < 0 {
		w = c.victim(base)
		v = c.evict(s, w)
	}
	s[w] = line{
		tag:    l,
		valid:  true,
		dirty:  opts.Dirty,
		locked: opts.Lock,
		owner:  opts.Owner,
		offset: opts.Offset,
	}
	c.stamps[base+w] = 0
	c.touch(base, w, true)
	return v
}

// evict clears way w of set s and returns its victim record, after
// notifying the eviction observer and bumping counters.
func (c *SetAssoc) evict(s []line, w int) Victim {
	v := Victim{
		Valid:      true,
		Line:       s[w].tag,
		Dirty:      s[w].dirty,
		Referenced: s[w].referenced,
		Offset:     s[w].offset,
	}
	c.stats.Evictions++
	if v.Dirty {
		c.stats.Writebacks++
	}
	if c.onEv != nil {
		c.onEv(v)
	}
	s[w].valid = false
	return v
}

// Invalidate implements Cache.
func (c *SetAssoc) Invalidate(l mem.Line) bool {
	s := c.set(c.SetIndex(l))
	w := c.find(s, l)
	if w < 0 {
		return false
	}
	c.stats.Invalidates++
	c.evict(s, w)
	return true
}

// Flush implements Cache.
func (c *SetAssoc) Flush() {
	for i := range c.lines {
		if c.lines[i].valid {
			c.stats.Invalidates++
			set := c.lines[i/c.ways*c.ways : i/c.ways*c.ways+c.ways]
			c.evict(set, i%c.ways)
		}
	}
}

// Occupancy returns the number of valid lines. It is a pure observer (no
// replacement-state or counter updates): the occupancy-channel attacks read
// it as ground truth for the victim footprint an attacker estimates.
func (c *SetAssoc) Occupancy() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}

// Contents returns the line numbers of all valid lines, for tests and for
// end-of-run profiler accounting.
func (c *SetAssoc) Contents() []mem.Line {
	var out []mem.Line
	for i := range c.lines {
		if c.lines[i].valid {
			out = append(out, c.lines[i].tag)
		}
	}
	return out
}

// DrainValid reports every still-valid line to the eviction observer without
// invalidating it. The spatial-locality profiler calls it at end of run so
// never-evicted lines are counted in the Eff(d) denominator.
func (c *SetAssoc) DrainValid() {
	if c.onEv == nil {
		return
	}
	for i := range c.lines {
		if c.lines[i].valid {
			c.onEv(Victim{
				Valid:      true,
				Line:       c.lines[i].tag,
				Dirty:      c.lines[i].dirty,
				Referenced: c.lines[i].referenced,
				Offset:     c.lines[i].offset,
			})
		}
	}
}

// IsLocked reports whether line l is present and locked.
func (c *SetAssoc) IsLocked(l mem.Line) bool {
	s := c.set(c.SetIndex(l))
	w := c.find(s, l)
	return w >= 0 && s[w].locked
}

// Owner returns the owner id of line l, or NoOwner if absent or unowned.
func (c *SetAssoc) Owner(l mem.Line) int {
	s := c.set(c.SetIndex(l))
	if w := c.find(s, l); w >= 0 {
		return s[w].owner
	}
	return NoOwner
}

func (c *SetAssoc) String() string {
	return fmt.Sprintf("SA(%v, %v)", c.geom, c.policy)
}
