package cache

import (
	"strings"
	"testing"

	"randfill/internal/rng"
)

// namedPolicy pairs a policy instance with its configuration name.
type namedPolicy struct {
	name string
	p    Policy
}

// policiesUnderTest builds each shipped policy with its own RNG stream, in
// PolicyNames order, for property tests that only need a valid instance.
func policiesUnderTest(seed uint64) []namedPolicy {
	var out []namedPolicy
	for _, name := range PolicyNames() {
		var src *rng.Source
		if PolicyNeedsRNG(name) {
			src = rng.New(seed)
		}
		p, err := PolicyByName(name, src)
		if err != nil {
			panic(err)
		}
		out = append(out, namedPolicy{name, p})
	}
	return out
}

// TestPolicyVictimAlwaysValid drives every policy through random event
// sequences at several associativities (ragged PLRU trees included) and
// checks the one law every policy must obey: Victim returns a way index in
// range, whatever state the events left behind.
func TestPolicyVictimAlwaysValid(t *testing.T) {
	for _, np := range policiesUnderTest(11) {
		p := np.p
		t.Run(np.name, func(t *testing.T) {
			for _, ways := range []int{1, 2, 3, 4, 5, 8, 13, 16, 64} {
				stamps := make([]uint64, ways)
				src := rng.New(uint64(ways) + 5)
				for i := 0; i < 500; i++ {
					switch src.Intn(3) {
					case 0:
						p.OnHit(stamps, src.Intn(ways), uint64(i))
					case 1:
						p.OnFill(stamps, src.Intn(ways), uint64(i))
					default:
						if w := p.Victim(stamps); w < 0 || w >= ways {
							t.Fatalf("ways=%d step %d: Victim returned %d", ways, i, w)
						}
					}
				}
			}
		})
	}
}

// TestPolicyVictimMaskedRespectsMask: for every policy and random mask,
// VictimMasked returns -1 exactly when the mask allows no way, and an
// allowed way otherwise.
func TestPolicyVictimMaskedRespectsMask(t *testing.T) {
	for _, np := range policiesUnderTest(13) {
		p := np.p
		t.Run(np.name, func(t *testing.T) {
			for _, ways := range []int{1, 3, 4, 8, 16, 64} {
				stamps := make([]uint64, ways)
				src := rng.New(uint64(ways))
				for i := 0; i < 300; i++ {
					if src.Bool(0.5) {
						p.OnFill(stamps, src.Intn(ways), uint64(i))
					}
					mask := src.Uint64()
					if src.Bool(0.1) {
						mask = 0
					}
					w := p.VictimMasked(stamps, mask)
					allowed := mask
					if ways < 64 {
						allowed &= 1<<uint(ways) - 1
					}
					if allowed == 0 {
						if w != -1 {
							t.Fatalf("ways=%d: empty mask returned way %d, want -1", ways, w)
						}
						continue
					}
					if w < 0 || w >= ways || allowed&(1<<uint(w)) == 0 {
						t.Fatalf("ways=%d mask %#x: VictimMasked returned %d", ways, mask, w)
					}
				}
			}
		})
	}
}

// TestLRUOrderingLaw pins LRU to a reference model: after any sequence of
// hits and fills, the victim is the way whose most recent touch is oldest
// (first such way on ties).
func TestLRUOrderingLaw(t *testing.T) {
	const ways = 8
	p := LRU{}
	stamps := make([]uint64, ways)
	last := make([]uint64, ways)
	src := rng.New(21)
	for i := 1; i <= 2000; i++ {
		w, tick := src.Intn(ways), uint64(i)
		if src.Bool(0.5) {
			p.OnHit(stamps, w, tick)
		} else {
			p.OnFill(stamps, w, tick)
		}
		last[w] = tick
		want := 0
		for v := 1; v < ways; v++ {
			if last[v] < last[want] {
				want = v
			}
		}
		if got := p.Victim(stamps); got != want {
			t.Fatalf("step %d: victim %d, want %d (last=%v)", i, got, want, last)
		}
	}
}

// TestFIFOOrderingLaw pins FIFO to its model: the victim is the way with the
// oldest fill, and hits never move a way back in the queue.
func TestFIFOOrderingLaw(t *testing.T) {
	const ways = 8
	p := FIFO{}
	stamps := make([]uint64, ways)
	filled := make([]uint64, ways)
	src := rng.New(22)
	for i := 1; i <= 2000; i++ {
		w, tick := src.Intn(ways), uint64(i)
		if src.Bool(0.4) {
			p.OnFill(stamps, w, tick)
			filled[w] = tick
		} else {
			p.OnHit(stamps, w, tick) // must not affect the queue
		}
		want := 0
		for v := 1; v < ways; v++ {
			if filled[v] < filled[want] {
				want = v
			}
		}
		if got := p.Victim(stamps); got != want {
			t.Fatalf("step %d: victim %d, want %d (filled=%v)", i, got, want, filled)
		}
	}
}

// TestSRRIPAgingTerminates: from any reachable RRPV state — including the
// all-zero state a burst of hits leaves — Victim terminates with a way whose
// RRPV reached the distant value, and never ages a way past it by more than
// the scan requires.
func TestSRRIPAgingTerminates(t *testing.T) {
	p := SRRIP{}
	for _, ways := range []int{1, 2, 4, 16} {
		stamps := make([]uint64, ways) // all near-immediate: worst case for aging
		w := p.Victim(stamps)
		if w < 0 || w >= ways {
			t.Fatalf("ways=%d: victim %d", ways, w)
		}
		if stamps[w] < rripMax {
			t.Fatalf("ways=%d: victim RRPV %d, want >= %d after aging", ways, stamps[w], rripMax)
		}
		for v := range stamps {
			if stamps[v] > rripMax {
				t.Fatalf("ways=%d: way %d aged past the distant value to %d", ways, v, stamps[v])
			}
		}
	}
	// Mixed state: hits and fills interleaved, then victim, repeatedly.
	src := rng.New(31)
	stamps := make([]uint64, 4)
	for i := 0; i < 1000; i++ {
		switch src.Intn(3) {
		case 0:
			p.OnHit(stamps, src.Intn(4), 0)
		case 1:
			p.OnFill(stamps, src.Intn(4), 0)
		default:
			if w := p.Victim(stamps); stamps[w] < rripMax {
				t.Fatalf("step %d: victim %d at RRPV %d", i, w, stamps[w])
			}
		}
	}
}

// TestBRRIPDrawCount pins BRRIP's RNG contract: every OnFill consumes
// exactly one Intn(brripEpsilon) draw — no more, no fewer, hit or age
// events none — so a BRRIP cache's draw sequence is a pure function of its
// fill count.
func TestBRRIPDrawCount(t *testing.T) {
	b := BRRIP{Src: rng.New(7)}
	ref := rng.New(7)
	stamps := make([]uint64, 4)
	for i := 0; i < 100; i++ {
		b.OnHit(stamps, i%4, 0)  // draw-free
		b.Victim(stamps)         // draw-free (aging only)
		b.OnFill(stamps, i%4, 0) // exactly one draw
		ref.Intn(brripEpsilon)
	}
	if got, want := b.Src.Uint64(), ref.Uint64(); got != want {
		t.Fatalf("BRRIP stream diverged after 100 fills: next draw %d, want %d", got, want)
	}
}

// TestBRRIPInsertionSplit: the bimodal insertion inserts at the distant RRPV
// except for ~1/brripEpsilon of fills at the long one, and both values
// actually occur over a long fill sequence.
func TestBRRIPInsertionSplit(t *testing.T) {
	b := BRRIP{Src: rng.New(9)}
	stamps := make([]uint64, 1)
	long, distant := 0, 0
	const n = 32 * 200
	for i := 0; i < n; i++ {
		b.OnFill(stamps, 0, 0)
		switch stamps[0] {
		case rripMax - 1:
			long++
		case rripMax:
			distant++
		default:
			t.Fatalf("fill %d inserted at RRPV %d", i, stamps[0])
		}
	}
	if long == 0 || distant == 0 {
		t.Fatalf("insertion split long=%d distant=%d, want both present", long, distant)
	}
	if long > n/8 {
		t.Fatalf("long insertions %d of %d, want about 1/%d", long, n, brripEpsilon)
	}
}

// TestPLRUNeverEvictsMostRecent is tree-PLRU's defining guarantee: the way
// just touched is never the next victim (ways > 1), at every associativity
// including ragged trees.
func TestPLRUNeverEvictsMostRecent(t *testing.T) {
	p := PLRU{}
	for _, ways := range []int{2, 3, 4, 5, 6, 7, 8, 16, 64} {
		stamps := make([]uint64, ways)
		src := rng.New(uint64(ways) * 3)
		for i := 0; i < 500; i++ {
			w := src.Intn(ways)
			if src.Bool(0.5) {
				p.OnHit(stamps, w, 0)
			} else {
				p.OnFill(stamps, w, 0)
			}
			v := p.Victim(stamps)
			if v < 0 || v >= ways {
				t.Fatalf("ways=%d: victim %d", ways, v)
			}
			if v == w {
				t.Fatalf("ways=%d step %d: victim is the just-touched way %d", ways, i, w)
			}
		}
	}
}

// TestPLRURoundRobinCoverage: touching the victim repeatedly must cycle
// through every way (tree-PLRU's fairness property) — no way is starved.
func TestPLRUVictimCoverage(t *testing.T) {
	p := PLRU{}
	for _, ways := range []int{2, 4, 8, 16} {
		stamps := make([]uint64, ways)
		seen := map[int]bool{}
		for i := 0; i < 4*ways; i++ {
			v := p.Victim(stamps)
			seen[v] = true
			p.OnFill(stamps, v, 0)
		}
		if len(seen) != ways {
			t.Fatalf("ways=%d: fill-the-victim cycle visited %d ways, want all %d", ways, len(seen), ways)
		}
	}
}

// TestPLRUMaskedDetour pins the masked walk's detour rule on a concrete
// 4-way tree: when the preferred subtree holds no allowed way, the walk
// crosses to the other subtree instead of returning a disallowed way.
func TestPLRUMaskedDetour(t *testing.T) {
	p := PLRU{}
	stamps := make([]uint64, 4)
	// Touch ways 2 then 3: the tree now prefers the left half {0,1}.
	p.OnFill(stamps, 2, 0)
	p.OnFill(stamps, 3, 0)
	if v := p.Victim(stamps); v != 0 && v != 1 {
		t.Fatalf("unmasked victim %d, want the untouched left half", v)
	}
	// Mask out the whole left half: the walk must detour right.
	if v := p.VictimMasked(stamps, 0b1100); v != 2 && v != 3 {
		t.Fatalf("masked victim %d, want a right-half way", v)
	}
	// A single-way mask always returns that way.
	for w := 0; w < 4; w++ {
		if v := p.VictimMasked(stamps, 1<<uint(w)); v != w {
			t.Fatalf("singleton mask way %d returned %d", w, v)
		}
	}
	if v := p.VictimMasked(stamps, 0); v != -1 {
		t.Fatalf("empty mask returned %d, want -1", v)
	}
}

// TestPolicyByNameContract covers the constructor-facing surface: the happy
// names (case-insensitively), the empty-name default, the RNG requirement,
// and the error text listing every valid name.
func TestPolicyByNameContract(t *testing.T) {
	for _, name := range PolicyNames() {
		var src *rng.Source
		if PolicyNeedsRNG(name) {
			src = rng.New(1)
		}
		for _, variant := range []string{name, strings.ToUpper(name)} {
			p, err := PolicyByName(variant, src)
			if err != nil || p == nil {
				t.Errorf("PolicyByName(%q): %v", variant, err)
			}
		}
		if !KnownPolicy(name) || !KnownPolicy(strings.ToUpper(name)) {
			t.Errorf("KnownPolicy(%q) = false", name)
		}
	}
	if p, err := PolicyByName("", nil); err != nil || p.String() != "LRU" {
		t.Errorf(`PolicyByName("") = %v, %v; want the LRU default`, p, err)
	}
	if !KnownPolicy("") {
		t.Error(`KnownPolicy("") = false, want true (empty selects the default)`)
	}

	_, err := PolicyByName("clock", nil)
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	for _, name := range PolicyNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list valid policy %q", err, name)
		}
	}
	if KnownPolicy("clock") {
		t.Error(`KnownPolicy("clock") = true`)
	}

	for _, name := range []string{"random", "brrip"} {
		if _, err := PolicyByName(name, nil); err == nil {
			t.Errorf("PolicyByName(%q, nil) accepted a nil source", name)
		}
	}
}

// TestPolicyValidRejectsNilSources: PolicyValid is the constructor-time
// guard — nil-source RNG policies fail, everything else passes.
func TestPolicyValidRejectsNilSources(t *testing.T) {
	for _, p := range []Policy{Random{}, BRRIP{}} {
		if PolicyValid(p) == nil {
			t.Errorf("PolicyValid(%s with nil Src) = nil, want error", p)
		}
	}
	src := rng.New(1)
	for _, p := range []Policy{LRU{}, FIFO{}, PLRU{}, SRRIP{}, Random{Src: src}, BRRIP{Src: src}} {
		if err := PolicyValid(p); err != nil {
			t.Errorf("PolicyValid(%s) = %v", p, err)
		}
	}
}

// TestNewSetAssocRejectsInvalidPolicy: the constructor refuses a policy
// PolicyValid rejects, so a misconfigured cache fails at build time.
func TestNewSetAssocRejectsInvalidPolicy(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSetAssoc accepted Random with a nil source")
		}
	}()
	NewSetAssoc(Geometry{SizeBytes: 1024, Ways: 2}, Random{})
}
