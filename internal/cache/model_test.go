package cache

import (
	"testing"
	"testing/quick"

	"randfill/internal/mem"
)

// refCache is an obviously-correct reference model of a set-associative
// LRU cache: one explicit recency-ordered slice per set. The property tests
// drive SetAssoc and refCache with identical random operation sequences and
// require identical observable behaviour.
type refCache struct {
	sets int
	ways int
	// order[s] holds the lines of set s, most recently used first.
	order [][]mem.Line
	dirty map[mem.Line]bool
}

func newRef(sets, ways int) *refCache {
	return &refCache{
		sets:  sets,
		ways:  ways,
		order: make([][]mem.Line, sets),
		dirty: make(map[mem.Line]bool),
	}
}

func (r *refCache) setOf(l mem.Line) int { return int(uint64(l) & uint64(r.sets-1)) }

func (r *refCache) indexIn(s []mem.Line, l mem.Line) int {
	for i, x := range s {
		if x == l {
			return i
		}
	}
	return -1
}

func (r *refCache) lookup(l mem.Line, write bool) bool {
	si := r.setOf(l)
	s := r.order[si]
	i := r.indexIn(s, l)
	if i < 0 {
		return false
	}
	// Move to front (MRU).
	copy(s[1:i+1], s[:i])
	s[0] = l
	if write {
		r.dirty[l] = true
	}
	return true
}

func (r *refCache) probe(l mem.Line) bool {
	return r.indexIn(r.order[r.setOf(l)], l) >= 0
}

// fill installs l and returns the evicted line, whether it was dirty, and
// whether an eviction happened at all.
func (r *refCache) fill(l mem.Line, dirty bool) (victim mem.Line, victimDirty, evicted bool) {
	si := r.setOf(l)
	s := r.order[si]
	if i := r.indexIn(s, l); i >= 0 {
		copy(s[1:i+1], s[:i])
		s[0] = l
		if dirty {
			r.dirty[l] = true
		}
		return 0, false, false
	}
	if len(s) == r.ways {
		victim = s[len(s)-1]
		victimDirty = r.dirty[victim]
		s = s[:len(s)-1]
		delete(r.dirty, victim)
		evicted = true
	}
	r.order[si] = append([]mem.Line{l}, s...)
	if dirty {
		r.dirty[l] = true
	}
	return victim, victimDirty, evicted
}

func (r *refCache) invalidate(l mem.Line) bool {
	si := r.setOf(l)
	s := r.order[si]
	i := r.indexIn(s, l)
	if i < 0 {
		return false
	}
	r.order[si] = append(s[:i], s[i+1:]...)
	delete(r.dirty, l)
	return true
}

// op encodes one random cache operation.
type op struct {
	Kind byte // lookup, fill, probe, invalidate
	Line uint16
	Bit  bool // write flag / dirty flag
}

// TestSetAssocMatchesReferenceModel drives both implementations with the
// same random operation sequence and checks every observable result:
// lookup hits, probe results, fill victims, invalidation results.
func TestSetAssocMatchesReferenceModel(t *testing.T) {
	f := func(ops []op) bool {
		// 8 sets x 2 ways.
		c := NewSetAssoc(Geometry{SizeBytes: 1024, Ways: 2}, LRU{})
		r := newRef(8, 2)
		for _, o := range ops {
			l := mem.Line(o.Line % 64)
			switch o.Kind % 4 {
			case 0:
				if c.Lookup(l, o.Bit) != r.lookup(l, o.Bit) {
					t.Logf("lookup(%d) diverged", l)
					return false
				}
			case 1:
				v := c.Fill(l, FillOpts{Dirty: o.Bit})
				rv, _, rev := r.fill(l, o.Bit)
				if v.Valid != rev {
					t.Logf("fill(%d): eviction presence diverged (%v vs %v)", l, v.Valid, rev)
					return false
				}
				if rev && v.Line != rv {
					t.Logf("fill(%d): victim diverged (%d vs %d)", l, v.Line, rv)
					return false
				}
			case 2:
				if c.Probe(l) != r.probe(l) {
					t.Logf("probe(%d) diverged", l)
					return false
				}
			case 3:
				if c.Invalidate(l) != r.invalidate(l) {
					t.Logf("invalidate(%d) diverged", l)
					return false
				}
			}
		}
		// Final contents must agree exactly.
		want := map[mem.Line]bool{}
		for _, s := range r.order {
			for _, l := range s {
				want[l] = true
			}
		}
		got := c.Contents()
		if len(got) != len(want) {
			t.Logf("contents size diverged: %d vs %d", len(got), len(want))
			return false
		}
		for _, l := range got {
			if !want[l] {
				t.Logf("contents diverged at line %d", l)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSetAssocDirtyMatchesReference checks write-back state: victims'
// dirty bits must agree with the reference across random sequences of
// lookups (with write flags) and fills.
func TestSetAssocDirtyMatchesReference(t *testing.T) {
	f := func(ops []op) bool {
		c := NewSetAssoc(Geometry{SizeBytes: 512, Ways: 2}, LRU{})
		r := newRef(4, 2)
		for _, o := range ops {
			l := mem.Line(o.Line % 32)
			switch o.Kind % 2 {
			case 0:
				if c.Lookup(l, o.Bit) != r.lookup(l, o.Bit) {
					return false
				}
			case 1:
				v := c.Fill(l, FillOpts{Dirty: o.Bit})
				rv, rdirty, rev := r.fill(l, o.Bit)
				if v.Valid != rev {
					return false
				}
				if rev && (v.Line != rv || v.Dirty != rdirty) {
					t.Logf("victim %d dirty=%v, want %d dirty=%v", v.Line, v.Dirty, rv, rdirty)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
