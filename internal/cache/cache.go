// Package cache provides the core cache model every cache architecture in
// this repository is built on: a Cache interface with line-granular lookup,
// fill, probe, invalidate and flush operations; a parameterized
// set-associative implementation with pluggable replacement policies (LRU,
// FIFO, random, tree-PLRU, SRRIP, BRRIP); per-line metadata (dirty, lock,
// owner, fill-offset tag) used
// by PLcache and by the spatial-locality profiler; and statistics counters.
//
// A deliberate property of the model is that Lookup never fills: the fill
// decision belongs to the fill policy (demand fetch, or the random fill
// engine in internal/core), which is exactly the separation the paper argues
// for — the fill strategy, not the lookup path, is what must be re-designed
// for security.
package cache

import (
	"fmt"

	"randfill/internal/mem"
)

// NoOwner is the owner id of a line not associated with any process.
const NoOwner = -1

// Stats counts the externally visible cache events. Hit/miss counters are
// driven by Lookup; fill/eviction counters by Fill and Invalidate.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Fills       uint64
	Evictions   uint64
	Writebacks  uint64
	Invalidates uint64
	// FillRefused counts fills rejected by the architecture (PLcache
	// refuses to evict a line locked by another process).
	FillRefused uint64
}

// Accesses returns Hits + Misses.
func (s *Stats) Accesses() uint64 { return s.Hits + s.Misses }

// MissRate returns Misses / Accesses, or 0 with no accesses.
func (s *Stats) MissRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.Misses) / float64(a)
	}
	return 0
}

// Reset zeroes all counters.
func (s *Stats) Reset() { *s = Stats{} }

// FillOpts carries the per-line metadata recorded when a line is installed.
type FillOpts struct {
	// Dirty marks the line as modified (installed by a write allocate).
	Dirty bool
	// Lock sets the PLcache-style lock bit.
	Lock bool
	// Owner is the process id owning the line; NoOwner if none.
	Owner int
	// Offset is the fill-offset tag d used by the spatial-locality
	// profiler (Equation 9): the distance in lines between this fill and
	// the demand miss that triggered it. 0 for demand fills.
	Offset int8
}

// Victim describes the line displaced by a Fill (or examined by eviction
// observers).
type Victim struct {
	// Valid reports whether a valid line was actually displaced. A fill
	// into an invalid way displaces nothing.
	Valid bool
	// Refused reports that the fill itself was rejected (no line was
	// installed); only PLcache produces refused fills.
	Refused bool
	Line    mem.Line
	Dirty   bool
	// Referenced reports whether the victim was referenced by at least
	// one Lookup after being filled.
	Referenced bool
	// Offset is the victim's fill-offset tag.
	Offset int8
}

// Cache is the contract shared by the conventional set-associative cache,
// Newcache and PLcache. All operations are line-granular.
type Cache interface {
	// Lookup performs a demand access to the line. On a hit it updates
	// replacement and reference state and returns true; on a miss it
	// returns false and changes nothing (no fill — fills are explicit).
	Lookup(line mem.Line, write bool) bool

	// Probe reports whether the line is present without perturbing
	// replacement state or statistics. The random fill queue uses it to
	// drop requests that already hit (paper Section IV.B.2), and the
	// attacks use it as the attacker's ground-truth oracle in tests.
	Probe(line mem.Line) bool

	// Fill installs the line, evicting a victim chosen by the
	// architecture's replacement policy if needed, and returns the
	// victim. Filling a line that is already present refreshes its
	// metadata and displaces nothing.
	Fill(line mem.Line, opts FillOpts) Victim

	// Invalidate removes the line if present (clflush). Returns whether
	// it was present. The removed line is reported to the eviction
	// observer like any other victim.
	Invalidate(line mem.Line) bool

	// Flush invalidates every line.
	Flush()

	// Stats returns the live statistics counters.
	Stats() *Stats

	// NumLines returns the total line capacity.
	NumLines() int
}

// EvictionObserver receives every displaced or invalidated valid line.
// The spatial-locality profiler (Figure 9) registers one to account
// referenced-before-evicted ratios per fill offset.
type EvictionObserver func(v Victim)

// Geometry describes a cache's size and shape.
type Geometry struct {
	SizeBytes int
	Ways      int
}

// Sets returns the number of sets implied by the geometry.
func (g Geometry) Sets() int {
	lines := g.SizeBytes / mem.LineSize
	return lines / g.Ways
}

// ValidateGeometry checks g the way NewSetAssoc does — size a positive
// line multiple, lines divisible into ways, power-of-two set count — and
// panics with the same diagnostics on violation. Design packages that
// manage their own line arrays (PLcache, RPcache, NoMo) call it instead of
// constructing a throwaway SetAssoc just to trigger the checks.
func ValidateGeometry(g Geometry) { g.check() }

func (g Geometry) check() {
	lines := g.SizeBytes / mem.LineSize
	if g.SizeBytes <= 0 || g.SizeBytes%mem.LineSize != 0 {
		panic(fmt.Sprintf("cache: size %d not a positive multiple of line size", g.SizeBytes))
	}
	if g.Ways <= 0 || lines%g.Ways != 0 {
		panic(fmt.Sprintf("cache: %d lines not divisible into %d ways", lines, g.Ways))
	}
	sets := lines / g.Ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", sets))
	}
}

func (g Geometry) String() string {
	kb := g.SizeBytes / 1024
	if g.Ways == 1 {
		return fmt.Sprintf("%dKB DM", kb)
	}
	return fmt.Sprintf("%dKB %d-way", kb, g.Ways)
}
