package cache

import (
	"fmt"

	"randfill/internal/rng"
)

// Policy selects replacement victims within a set. Implementations keep
// their state in the per-line stamp field managed by the set-associative
// cache, so a single policy instance serves all sets.
type Policy interface {
	// Touch is called on every hit (fill=false) and every fill
	// (fill=true) of way w; tick is a monotonically increasing access
	// counter.
	Touch(stamps []uint64, w int, tick uint64, fill bool)
	// Victim returns the way to evict from a full set.
	Victim(stamps []uint64) int
	String() string
}

// LRU evicts the least recently used way (the paper's baseline, Table IV).
type LRU struct{}

// Touch records the access time of way w.
func (LRU) Touch(stamps []uint64, w int, tick uint64, fill bool) { stamps[w] = tick }

// Victim returns the way with the oldest access time.
func (LRU) Victim(stamps []uint64) int {
	best := 0
	for w := 1; w < len(stamps); w++ {
		if stamps[w] < stamps[best] {
			best = w
		}
	}
	return best
}

func (LRU) String() string { return "LRU" }

// FIFO evicts the oldest-filled way; hits do not refresh a way's stamp.
type FIFO struct{}

// Touch records fill time; hits are ignored.
func (FIFO) Touch(stamps []uint64, w int, tick uint64, fill bool) {
	if fill {
		stamps[w] = tick
	}
}

// Victim returns the way with the oldest fill time.
func (FIFO) Victim(stamps []uint64) int {
	best := 0
	for w := 1; w < len(stamps); w++ {
		if stamps[w] < stamps[best] {
			best = w
		}
	}
	return best
}

func (FIFO) String() string { return "FIFO" }

// Random evicts a uniformly random way (used by Newcache-style designs and
// as an ablation for the SA cache).
type Random struct {
	Src *rng.Source
}

// Touch is a no-op for random replacement.
func (Random) Touch(stamps []uint64, w int, tick uint64, fill bool) {}

// Victim returns a uniformly random way.
func (r Random) Victim(stamps []uint64) int {
	if r.Src == nil {
		panic("cache: Random policy requires a rng.Source")
	}
	return r.Src.Intn(len(stamps))
}

func (Random) String() string { return "random" }

// PolicyByName returns a policy instance by its configuration name.
func PolicyByName(name string, src *rng.Source) Policy {
	switch name {
	case "lru", "LRU", "":
		return LRU{}
	case "fifo", "FIFO":
		return FIFO{}
	case "random":
		return Random{Src: src}
	default:
		panic(fmt.Sprintf("cache: unknown replacement policy %q", name))
	}
}
