package cache

import (
	"fmt"
	"math/bits"
	"strings"

	"randfill/internal/rng"
)

// Policy selects replacement victims within a set. Implementations keep
// their state in the per-way stamp words managed by the set-associative
// cache (one uint64 per way, handed over as a contiguous per-set subslice),
// so a single policy instance serves all sets. How a policy interprets the
// words is its own business: LRU/FIFO store per-way access times, the RRIP
// family stores per-way re-reference prediction values, and tree-PLRU packs
// its tree bits into the subslice's bit space.
//
// Fills and hits are distinct events (OnFill/OnHit): RRIP inserts at a
// distant prediction and promotes on hit, FIFO stamps only fills. Victim may
// MUTATE the stamps it scans — SRRIP/BRRIP age the whole set while searching
// — so callers must hand it the live per-set state, never a copy they throw
// away.
type Policy interface {
	// OnHit updates the set's replacement state after a demand hit of
	// way w; tick is a monotonically increasing per-cache access counter.
	OnHit(stamps []uint64, w int, tick uint64)
	// OnFill updates the set's replacement state after way w is filled
	// or refreshed (a Fill of an already-present line).
	OnFill(stamps []uint64, w int, tick uint64)
	// Victim returns the way to evict from a full set. It may mutate
	// stamps (RRIP aging).
	Victim(stamps []uint64) int
	// VictimMasked is Victim restricted to the ways whose bit is set in
	// allowed (bit w = way w, so masked callers need Ways <= 64). It
	// returns -1 when allowed selects no way — the caller's fill is
	// refused. PLcache (lock bits) and NoMo (way reservation) evict
	// through it.
	VictimMasked(stamps []uint64, allowed uint64) int
	String() string
}

// PolicyNames returns the configuration names PolicyByName accepts, in
// documentation order.
func PolicyNames() []string {
	return []string{"lru", "fifo", "random", "plru", "srrip", "brrip"}
}

// KnownPolicy reports whether name is a recognized policy configuration
// name ("" counts: it selects the caller's default).
func KnownPolicy(name string) bool {
	if name == "" {
		return true
	}
	switch strings.ToLower(name) {
	case "lru", "fifo", "random", "plru", "srrip", "brrip":
		return true
	}
	return false
}

// PolicyNeedsRNG reports whether the named policy draws replacement
// randomness (and therefore needs a non-nil rng.Source at construction).
// Callers that lazily split an RNG stream for the policy use it to keep
// draw-free policies from consuming a split — the byte-identity discipline
// for default-policy configurations.
func PolicyNeedsRNG(name string) bool {
	switch strings.ToLower(name) {
	case "random", "brrip":
		return true
	}
	return false
}

// PolicyValid reports an error if p is structurally unusable — an
// RNG-backed policy with no source. Constructors call it so a
// misconfigured policy fails at build time, not on its first eviction.
func PolicyValid(p Policy) error {
	switch q := p.(type) {
	case Random:
		if q.Src == nil {
			return fmt.Errorf("cache: Random policy requires a rng.Source")
		}
	case BRRIP:
		if q.Src == nil {
			return fmt.Errorf("cache: BRRIP policy requires a rng.Source")
		}
	}
	return nil
}

// PolicyByName returns a policy instance by its configuration name, or an
// error naming the valid choices. The empty name selects LRU (the paper's
// Table IV baseline). src feeds the RNG-backed policies (random, brrip) and
// may be nil for the rest.
func PolicyByName(name string, src *rng.Source) (Policy, error) {
	switch strings.ToLower(name) {
	case "lru", "":
		return LRU{}, nil
	case "fifo":
		return FIFO{}, nil
	case "plru":
		return PLRU{}, nil
	case "srrip":
		return SRRIP{}, nil
	case "random":
		p := Random{Src: src}
		return p, PolicyValid(p)
	case "brrip":
		p := BRRIP{Src: src}
		return p, PolicyValid(p)
	default:
		return nil, fmt.Errorf("cache: unknown replacement policy %q (have %s)",
			name, strings.Join(PolicyNames(), ", "))
	}
}

// waysMask returns the allowed mask clamped to the first min(ways, 64)
// ways; masked victim selection is defined for ways <= 64.
func waysMask(ways int, allowed uint64) uint64 {
	if ways < 64 {
		allowed &= 1<<uint(ways) - 1
	}
	return allowed
}

// LRU evicts the least recently used way (the paper's baseline, Table IV).
type LRU struct{}

// OnHit records the access time of way w.
func (LRU) OnHit(stamps []uint64, w int, tick uint64) { stamps[w] = tick }

// OnFill records the fill time of way w.
func (LRU) OnFill(stamps []uint64, w int, tick uint64) { stamps[w] = tick }

// Victim returns the way with the oldest access time.
func (LRU) Victim(stamps []uint64) int {
	best := 0
	for w := 1; w < len(stamps); w++ {
		if stamps[w] < stamps[best] {
			best = w
		}
	}
	return best
}

// VictimMasked returns the oldest allowed way (first minimum in way order —
// the scan PLcache/NoMo historically ran inline), or -1.
func (LRU) VictimMasked(stamps []uint64, allowed uint64) int {
	allowed = waysMask(len(stamps), allowed)
	best := -1
	for w := 0; w < len(stamps) && w < 64; w++ {
		if allowed&(1<<uint(w)) == 0 {
			continue
		}
		if best < 0 || stamps[w] < stamps[best] {
			best = w
		}
	}
	return best
}

func (LRU) String() string { return "LRU" }

// FIFO evicts the oldest-filled way; hits do not refresh a way's stamp.
type FIFO struct{}

// OnHit is a no-op: hits do not refresh FIFO age.
func (FIFO) OnHit(stamps []uint64, w int, tick uint64) {}

// OnFill records the fill time of way w.
func (FIFO) OnFill(stamps []uint64, w int, tick uint64) { stamps[w] = tick }

// Victim returns the way with the oldest fill time.
func (FIFO) Victim(stamps []uint64) int {
	best := 0
	for w := 1; w < len(stamps); w++ {
		if stamps[w] < stamps[best] {
			best = w
		}
	}
	return best
}

// VictimMasked returns the oldest-filled allowed way, or -1.
func (FIFO) VictimMasked(stamps []uint64, allowed uint64) int {
	return LRU{}.VictimMasked(stamps, allowed)
}

func (FIFO) String() string { return "FIFO" }

// Random evicts a uniformly random way (used by Newcache-style designs and
// as an ablation for the SA cache). Construct it with a non-nil Src:
// PolicyValid (run by every cache constructor) rejects a nil source before
// the first eviction can reach it.
type Random struct {
	Src *rng.Source
}

// OnHit is a no-op for random replacement.
func (Random) OnHit(stamps []uint64, w int, tick uint64) {}

// OnFill is a no-op for random replacement.
func (Random) OnFill(stamps []uint64, w int, tick uint64) {}

// Victim returns a uniformly random way.
func (r Random) Victim(stamps []uint64) int {
	return r.Src.Intn(len(stamps))
}

// VictimMasked returns a uniformly random allowed way, or -1.
func (r Random) VictimMasked(stamps []uint64, allowed uint64) int {
	allowed = waysMask(len(stamps), allowed)
	n := bits.OnesCount64(allowed)
	if n == 0 {
		return -1
	}
	k := r.Src.Intn(n)
	for w := 0; ; w++ {
		if allowed&(1<<uint(w)) == 0 {
			continue
		}
		if k == 0 {
			return w
		}
		k--
	}
}

func (Random) String() string { return "random" }

// rripMax is the RRIP family's distant re-reference prediction value (2-bit
// RRPV, so 3): a way at or beyond it is the next victim. SRRIP inserts at
// rripMax-1 ("long"), BRRIP mostly at rripMax itself.
const rripMax = 3

// rripVictim scans for a way at the distant RRPV, aging the whole set by one
// and rescanning until one appears. Termination is structural: every aging
// pass strictly increases all stamps, so some way reaches rripMax within
// rripMax passes of the current minimum.
func rripVictim(stamps []uint64) int {
	for {
		for w := range stamps {
			if stamps[w] >= rripMax {
				return w
			}
		}
		for w := range stamps {
			stamps[w]++
		}
	}
}

// rripVictimMasked is rripVictim restricted to allowed ways. Aging still
// applies to the whole set (hardware RRPV counters age regardless of lock or
// reservation state); only the victim scan is masked.
func rripVictimMasked(stamps []uint64, allowed uint64) int {
	allowed = waysMask(len(stamps), allowed)
	if allowed == 0 {
		return -1
	}
	for {
		for w := 0; w < len(stamps) && w < 64; w++ {
			if allowed&(1<<uint(w)) != 0 && stamps[w] >= rripMax {
				return w
			}
		}
		for w := range stamps {
			stamps[w]++
		}
	}
}

// SRRIP is static re-reference interval prediction (Jaleel et al., ISCA
// 2010) with 2-bit RRPVs: fills insert at the "long" prediction (rripMax-1),
// hits promote to 0, and victim selection ages the set until a way reaches
// the distant value.
type SRRIP struct{}

// OnHit promotes way w to the near-immediate prediction.
func (SRRIP) OnHit(stamps []uint64, w int, tick uint64) { stamps[w] = 0 }

// OnFill inserts way w at the long re-reference prediction.
func (SRRIP) OnFill(stamps []uint64, w int, tick uint64) { stamps[w] = rripMax - 1 }

// Victim returns the first way at the distant RRPV, aging the set as needed.
func (SRRIP) Victim(stamps []uint64) int { return rripVictim(stamps) }

// VictimMasked returns the first allowed way at the distant RRPV, or -1.
func (SRRIP) VictimMasked(stamps []uint64, allowed uint64) int {
	return rripVictimMasked(stamps, allowed)
}

func (SRRIP) String() string { return "SRRIP" }

// brripEpsilon is BRRIP's long-insertion probability denominator: 1 fill in
// brripEpsilon inserts at the "long" prediction, the rest at the distant
// one, which keeps a thrashing working set from erasing the whole cache.
const brripEpsilon = 32

// BRRIP is bimodal RRIP: SRRIP whose fills insert at the distant prediction
// except with probability 1/brripEpsilon. Every OnFill consumes exactly one
// draw from Src — the draw-count contract the identity tests pin — so BRRIP
// must be wired to the owning cache's Split-derived source, never a shared
// ambient one. Construct it with a non-nil Src (see PolicyValid).
type BRRIP struct {
	Src *rng.Source
}

// OnHit promotes way w to the near-immediate prediction.
func (BRRIP) OnHit(stamps []uint64, w int, tick uint64) { stamps[w] = 0 }

// OnFill inserts way w at the distant prediction, or — with probability
// 1/brripEpsilon — at the long one. One RNG draw per fill, always.
func (b BRRIP) OnFill(stamps []uint64, w int, tick uint64) {
	if b.Src.Intn(brripEpsilon) == 0 {
		stamps[w] = rripMax - 1
	} else {
		stamps[w] = rripMax
	}
}

// Victim returns the first way at the distant RRPV, aging the set as needed.
func (BRRIP) Victim(stamps []uint64) int { return rripVictim(stamps) }

// VictimMasked returns the first allowed way at the distant RRPV, or -1.
func (BRRIP) VictimMasked(stamps []uint64, allowed uint64) int {
	return rripVictimMasked(stamps, allowed)
}

func (BRRIP) String() string { return "BRRIP" }

// PLRU is tree pseudo-LRU: a binary tree over the ways whose internal nodes
// each hold one bit pointing toward the less recently used half. Touching a
// way points every node on its root path away from it; the victim walk
// follows the bits down. The tree bits pack into the per-set stamp words'
// bit space (bit j of the tree lives at stamps[j/64] bit j%64) — for any
// associativity the heap-numbered internal nodes (< 2*ways of them, ragged
// trees included) fit the 64*ways bits the stamp array provides, which is
// how PLRU rides the PR 3/8 SoA layout with no extra storage.
type PLRU struct{}

func plruBit(stamps []uint64, node int) bool {
	return stamps[node>>6]&(1<<(uint(node)&63)) != 0
}

func plruSetBit(stamps []uint64, node int, v bool) {
	if v {
		stamps[node>>6] |= 1 << (uint(node) & 63)
	} else {
		stamps[node>>6] &^= 1 << (uint(node) & 63)
	}
}

// plruTouch points every tree node on way w's root path away from w
// (bit set = victim side is the right half).
func plruTouch(stamps []uint64, w int) {
	lo, hi, node := 0, len(stamps), 0
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if w < mid {
			plruSetBit(stamps, node, true)
			hi, node = mid, 2*node+1
		} else {
			plruSetBit(stamps, node, false)
			lo, node = mid, 2*node+2
		}
	}
}

// OnHit points the tree away from way w.
func (PLRU) OnHit(stamps []uint64, w int, tick uint64) { plruTouch(stamps, w) }

// OnFill points the tree away from way w.
func (PLRU) OnFill(stamps []uint64, w int, tick uint64) { plruTouch(stamps, w) }

// Victim follows the tree bits down to the pseudo-least-recently-used way.
// The walk is read-only: the subsequent fill's OnFill repoints the path.
func (PLRU) Victim(stamps []uint64) int {
	lo, hi, node := 0, len(stamps), 0
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if plruBit(stamps, node) {
			lo, node = mid, 2*node+2
		} else {
			hi, node = mid, 2*node+1
		}
	}
	return lo
}

// plruRangeMask returns the allowed-mask bits covering ways [lo, hi).
func plruRangeMask(lo, hi int, allowed uint64) uint64 {
	if lo >= 64 {
		return 0
	}
	if hi > 64 {
		hi = 64
	}
	return allowed >> uint(lo) << uint(64-(hi-lo)) >> uint(64-hi)
}

// VictimMasked follows the tree bits, detouring to the other subtree
// whenever the preferred one contains no allowed way; -1 if none is.
func (PLRU) VictimMasked(stamps []uint64, allowed uint64) int {
	allowed = waysMask(len(stamps), allowed)
	if allowed == 0 {
		return -1
	}
	lo, hi, node := 0, len(stamps), 0
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		right := plruBit(stamps, node)
		if right && plruRangeMask(mid, hi, allowed) == 0 {
			right = false
		} else if !right && plruRangeMask(lo, mid, allowed) == 0 {
			right = true
		}
		if right {
			lo, node = mid, 2*node+2
		} else {
			hi, node = mid, 2*node+1
		}
	}
	return lo
}

func (PLRU) String() string { return "PLRU" }
