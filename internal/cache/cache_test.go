package cache

import (
	"testing"
	"testing/quick"

	"randfill/internal/mem"
	"randfill/internal/rng"
)

func small() *SetAssoc {
	// 4 sets x 2 ways, 64B lines = 512B.
	return NewSetAssoc(Geometry{SizeBytes: 512, Ways: 2}, LRU{})
}

func TestMissThenFillThenHit(t *testing.T) {
	c := small()
	l := mem.Line(5)
	if c.Lookup(l, false) {
		t.Fatal("empty cache hit")
	}
	if v := c.Fill(l, FillOpts{}); v.Valid {
		t.Fatal("fill into empty cache displaced a line")
	}
	if !c.Lookup(l, false) {
		t.Fatal("miss after fill")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Fills != 1 {
		t.Errorf("stats = %+v", *s)
	}
}

func TestProbeHasNoSideEffects(t *testing.T) {
	c := small()
	c.Fill(0, FillOpts{})
	before := *c.Stats()
	if !c.Probe(0) {
		t.Fatal("probe missed present line")
	}
	if c.Probe(1) {
		t.Fatal("probe hit absent line")
	}
	if *c.Stats() != before {
		t.Error("probe changed statistics")
	}
}

func TestSetMapping(t *testing.T) {
	c := small() // 4 sets
	// Lines 0, 4, 8 map to set 0; lines 1, 5 to set 1.
	if c.SetIndex(0) != 0 || c.SetIndex(4) != 0 || c.SetIndex(8) != 0 {
		t.Error("set mapping for set 0 wrong")
	}
	if c.SetIndex(1) != 1 || c.SetIndex(5) != 1 {
		t.Error("set mapping for set 1 wrong")
	}
}

func TestLRUEviction(t *testing.T) {
	c := small() // 2 ways
	// Fill set 0 with lines 0 and 4, touch 0, then fill 8: line 4 (LRU)
	// must be evicted.
	c.Fill(0, FillOpts{})
	c.Fill(4, FillOpts{})
	c.Lookup(0, false)
	v := c.Fill(8, FillOpts{})
	if !v.Valid || v.Line != 4 {
		t.Fatalf("evicted %+v, want line 4", v)
	}
	if !c.Probe(0) || c.Probe(4) || !c.Probe(8) {
		t.Error("wrong post-eviction contents")
	}
}

func TestFIFOEvictionIgnoresHits(t *testing.T) {
	c := NewSetAssoc(Geometry{SizeBytes: 512, Ways: 2}, FIFO{})
	c.Fill(0, FillOpts{})
	c.Fill(4, FillOpts{})
	c.Lookup(0, false) // would save line 0 under LRU
	v := c.Fill(8, FillOpts{})
	if !v.Valid || v.Line != 0 {
		t.Fatalf("FIFO evicted %+v, want line 0", v)
	}
}

func TestRandomPolicyEvictsAllWays(t *testing.T) {
	c := NewSetAssoc(Geometry{SizeBytes: 512, Ways: 4}, Random{Src: rng.New(1)})
	// Keep set 0 full and count which victim ways appear.
	seen := make(map[mem.Line]bool)
	for i := 0; i < 4; i++ {
		c.Fill(mem.Line(i*4), FillOpts{})
	}
	next := mem.Line(16)
	for i := 0; i < 400; i++ {
		v := c.Fill(next, FillOpts{})
		if !v.Valid {
			t.Fatal("full set produced no victim")
		}
		seen[v.Line] = true
		next = v.Line // refill the evicted line next round
	}
	if len(seen) < 4 {
		t.Errorf("random policy only ever evicted %d distinct lines", len(seen))
	}
}

func TestDirtyEvictionCountsWriteback(t *testing.T) {
	c := small()
	c.Fill(0, FillOpts{Dirty: true})
	c.Fill(4, FillOpts{})
	v := c.Fill(8, FillOpts{}) // evicts dirty line 0 (LRU)
	if !v.Valid || v.Line != 0 || !v.Dirty {
		t.Fatalf("victim = %+v", v)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestWriteHitSetsDirty(t *testing.T) {
	c := small()
	c.Fill(0, FillOpts{})
	c.Lookup(0, true) // write hit
	c.Fill(4, FillOpts{})
	v := c.Fill(8, FillOpts{})
	if !v.Dirty {
		t.Error("write hit did not mark line dirty")
	}
}

func TestFillExistingLineDisplacesNothing(t *testing.T) {
	c := small()
	c.Fill(0, FillOpts{})
	c.Fill(4, FillOpts{})
	v := c.Fill(0, FillOpts{Dirty: true})
	if v.Valid || v.Refused {
		t.Errorf("refresh fill displaced %+v", v)
	}
	if c.Stats().Fills != 2 {
		t.Errorf("fills = %d, want 2 (refresh not counted)", c.Stats().Fills)
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Fill(0, FillOpts{})
	if !c.Invalidate(0) {
		t.Fatal("invalidate missed present line")
	}
	if c.Invalidate(0) {
		t.Fatal("invalidate hit absent line")
	}
	if c.Probe(0) {
		t.Fatal("line survived invalidation")
	}
}

func TestFlush(t *testing.T) {
	c := small()
	for i := 0; i < 8; i++ {
		c.Fill(mem.Line(i), FillOpts{})
	}
	c.Flush()
	if got := len(c.Contents()); got != 0 {
		t.Errorf("%d lines survived flush", got)
	}
}

func TestEvictionObserver(t *testing.T) {
	c := small()
	var victims []Victim
	c.SetEvictionObserver(func(v Victim) { victims = append(victims, v) })
	c.Fill(0, FillOpts{Offset: 3})
	c.Fill(4, FillOpts{})
	c.Lookup(0, false)
	c.Fill(8, FillOpts{}) // evicts 4 (LRU after the touch of 0)
	if len(victims) != 1 {
		t.Fatalf("observer saw %d victims, want 1", len(victims))
	}
	if victims[0].Line != 4 || victims[0].Referenced {
		t.Errorf("victim = %+v", victims[0])
	}
	c.Invalidate(0)
	if len(victims) != 2 {
		t.Fatalf("observer missed invalidation")
	}
	if victims[1].Line != 0 || !victims[1].Referenced || victims[1].Offset != 3 {
		t.Errorf("invalidated victim = %+v", victims[1])
	}
}

func TestDrainValidReportsWithoutInvalidating(t *testing.T) {
	c := small()
	n := 0
	c.SetEvictionObserver(func(v Victim) { n++ })
	c.Fill(0, FillOpts{})
	c.Fill(1, FillOpts{})
	c.DrainValid()
	if n != 2 {
		t.Errorf("DrainValid reported %d lines, want 2", n)
	}
	if !c.Probe(0) || !c.Probe(1) {
		t.Error("DrainValid invalidated lines")
	}
}

func TestLockAndOwnerMetadata(t *testing.T) {
	c := small()
	c.Fill(7, FillOpts{Lock: true, Owner: 2})
	if !c.IsLocked(7) {
		t.Error("lock bit not set")
	}
	if c.Owner(7) != 2 {
		t.Errorf("owner = %d", c.Owner(7))
	}
	if c.Owner(9) != NoOwner {
		t.Error("absent line must report NoOwner")
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	f := func(lines []uint16) bool {
		c := small()
		for _, l := range lines {
			c.Fill(mem.Line(l), FillOpts{})
		}
		return len(c.Contents()) <= c.NumLines()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFillLookupAgree(t *testing.T) {
	// Property: immediately after Fill(l), Lookup(l) hits; and a line
	// reported evicted no longer Probes.
	f := func(lines []uint16) bool {
		c := small()
		for _, raw := range lines {
			l := mem.Line(raw)
			v := c.Fill(l, FillOpts{})
			if !c.Probe(l) {
				return false
			}
			if v.Valid && c.Probe(v.Line) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryValidation(t *testing.T) {
	bad := []Geometry{
		{SizeBytes: 0, Ways: 1},
		{SizeBytes: 100, Ways: 1},      // not a line multiple
		{SizeBytes: 512, Ways: 3},      // lines not divisible by ways
		{SizeBytes: 64 * 12, Ways: 2},  // 6 sets: not a power of two
		{SizeBytes: 64 * 12, Ways: 12}, // ok sets=1? 12 lines /12 ways =1 set: valid actually
	}
	for _, g := range bad[:4] {
		func() {
			defer func() { recover() }()
			NewSetAssoc(g, LRU{})
			t.Errorf("geometry %+v did not panic", g)
		}()
	}
	// Fully associative single set is legal.
	NewSetAssoc(Geometry{SizeBytes: 64 * 12, Ways: 12}, LRU{})
}

func TestGeometryString(t *testing.T) {
	if s := (Geometry{SizeBytes: 8192, Ways: 1}).String(); s != "8KB DM" {
		t.Errorf("String = %q", s)
	}
	if s := (Geometry{SizeBytes: 32768, Ways: 4}).String(); s != "32KB 4-way" {
		t.Errorf("String = %q", s)
	}
}

func TestStatsReset(t *testing.T) {
	c := small()
	c.Lookup(0, false)
	c.Fill(0, FillOpts{})
	c.Stats().Reset()
	if *c.Stats() != (Stats{}) {
		t.Error("reset did not zero stats")
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty MissRate != 0")
	}
	s.Hits, s.Misses = 3, 1
	if s.MissRate() != 0.25 {
		t.Errorf("MissRate = %v", s.MissRate())
	}
	if s.Accesses() != 4 {
		t.Errorf("Accesses = %d", s.Accesses())
	}
}

// TestLookupAllocFree pins the Lookup/Fill hot path at zero heap
// allocations for every shipped replacement policy: the simulator calls
// Lookup once per trace access (see DESIGN.md §7).
func TestLookupAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy Policy
	}{
		{"lru", LRU{}},
		{"fifo", FIFO{}},
		{"random", Random{Src: rng.New(3)}},
		{"plru", PLRU{}},
		{"srrip", SRRIP{}},
		{"brrip", BRRIP{Src: rng.New(4)}},
	} {
		c := NewSetAssoc(Geometry{SizeBytes: 4096, Ways: 4}, tc.policy)
		var l mem.Line
		if got := testing.AllocsPerRun(1000, func() {
			l += 13 // mix hits, misses, fills and evictions
			c.Lookup(l%97, false)
			c.Fill(l%97, FillOpts{})
		}); got != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, got)
		}
	}
}
