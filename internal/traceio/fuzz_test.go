package traceio

import (
	"bytes"
	"testing"

	"randfill/internal/mem"
)

// FuzzRead drives the deserializer with arbitrary bytes: it must never
// panic, and anything it accepts must round-trip back to identical bytes
// of meaning (re-serializing the parsed trace and re-parsing yields the
// same records).
func FuzzRead(f *testing.F) {
	// Seed with a real serialized trace and some mutations.
	var buf bytes.Buffer
	_ = Write(&buf, mem.Trace{
		{Addr: 0x1000, NonMem: 3},
		{Addr: 0x1040, Kind: mem.Write, Dependent: true},
		{Addr: 0x0fff, Secret: true},
	})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("RFTRACE\x01\x00"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, tr); err != nil {
			t.Fatalf("accepted trace failed to re-serialize: %v", err)
		}
		back, err := Read(&out)
		if err != nil {
			t.Fatalf("re-serialized trace failed to parse: %v", err)
		}
		if len(back) != len(tr) {
			t.Fatalf("round trip changed length: %d -> %d", len(tr), len(back))
		}
		for i := range tr {
			if back[i] != tr[i] {
				t.Fatalf("round trip changed record %d", i)
			}
		}
	})
}
