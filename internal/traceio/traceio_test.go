package traceio

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"randfill/internal/mem"
	"randfill/internal/workloads"
)

func TestRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d records", len(got))
	}
}

func TestRoundTripAllBenchmarks(t *testing.T) {
	for _, g := range workloads.All() {
		tr := g.Gen(5000, 1)
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if len(got) != len(tr) {
			t.Fatalf("%s: %d records, want %d", g.Name, len(got), len(tr))
		}
		for i := range tr {
			if got[i] != tr[i] {
				t.Fatalf("%s: record %d = %+v, want %+v", g.Name, i, got[i], tr[i])
			}
		}
		// Delta compression should beat 6 bytes/record on these traces.
		if perRec := float64(buf.Len()) / float64(len(tr)); perRec > 6 {
			t.Errorf("%s: %.1f bytes/record, compression ineffective", g.Name, perRec)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(addrs []uint32, flags []uint8) bool {
		tr := make(mem.Trace, len(addrs))
		for i, a := range addrs {
			fl := byte(0)
			if i < len(flags) {
				fl = flags[i]
			}
			tr[i] = mem.Access{
				Addr:      mem.Addr(a),
				NonMem:    uint32(fl >> 4),
				Dependent: fl&1 != 0,
				Secret:    fl&2 != 0,
			}
			if fl&4 != 0 {
				tr[i].Kind = mem.Write
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != len(tr) {
			return false
		}
		for i := range tr {
			if got[i] != tr[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Read(strings.NewReader("NOTATRACE")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestTruncatedStream(t *testing.T) {
	tr := mem.Trace{{Addr: 1}, {Addr: 2}, {Addr: 3}}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := len(raw) - 1; cut > 8; cut -= 2 {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDumpText(t *testing.T) {
	tr := mem.Trace{
		{Addr: 0x1000, NonMem: 3},
		{Addr: 0x2000, Kind: mem.Write, Dependent: true, Secret: true},
	}
	var buf bytes.Buffer
	if err := DumpText(&buf, tr, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"R 0x00001000", "W 0x00002000", "dep", "secret", "nonmem=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := DumpText(&buf, tr, 1); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "\n") != 1 {
		t.Error("limit not honored")
	}
}

func TestSummarize(t *testing.T) {
	tr := mem.Trace{
		{Addr: 0x1000, NonMem: 2},
		{Addr: 0x1008, Kind: mem.Write},
		{Addr: 0x2000, Dependent: true, Secret: true},
	}
	s := Summarize(tr)
	if s.Accesses != 3 || s.Reads != 2 || s.Writes != 1 {
		t.Errorf("counts: %+v", s)
	}
	if s.Instructions != 5 {
		t.Errorf("instructions = %d", s.Instructions)
	}
	if s.Dependent != 1 || s.Secret != 1 {
		t.Errorf("flags: %+v", s)
	}
	if s.Footprint != 2 {
		t.Errorf("footprint = %d", s.Footprint)
	}
	if s.MinAddr != 0x1000 || s.MaxAddr != 0x2000 {
		t.Errorf("range: %+v", s)
	}
	if !strings.Contains(s.String(), "footprint: 2 lines") {
		t.Error("String() missing footprint")
	}
	if empty := Summarize(nil); empty.Accesses != 0 {
		t.Error("empty summary wrong")
	}
}
