// Package traceio serializes memory access traces so workloads can be
// generated once, inspected, exchanged, and replayed on the simulator —
// the same role gem5's trace files play in the paper's methodology.
//
// The binary format is delta-compressed: most traces are dominated by
// small address strides, so each record stores a zig-zag varint address
// delta, a flags byte, and a varint NonMem count. A 150k-access benchmark
// trace serializes to a few hundred kilobytes.
package traceio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"randfill/internal/atomicio"
	"randfill/internal/mem"
)

// magic identifies a trace stream; the trailing byte is the format version.
var magic = [8]byte{'R', 'F', 'T', 'R', 'A', 'C', 'E', 1}

// Flag bits in each record's flags byte.
const (
	flagWrite = 1 << iota
	flagDependent
	flagSecret
)

// Write serializes the trace to w.
func Write(w io.Writer, t mem.Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(t)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	prev := uint64(0)
	for _, a := range t {
		delta := int64(uint64(a.Addr) - prev)
		prev = uint64(a.Addr)
		n = binary.PutVarint(buf[:], delta)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		var flags byte
		if a.Kind == mem.Write {
			flags |= flagWrite
		}
		if a.Dependent {
			flags |= flagDependent
		}
		if a.Secret {
			flags |= flagSecret
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		n = binary.PutUvarint(buf[:], uint64(a.NonMem))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a trace from r.
func Read(r io.Reader) (mem.Trace, error) {
	br := bufio.NewReader(r)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("traceio: reading header: %w", err)
	}
	if got != magic {
		return nil, fmt.Errorf("traceio: bad magic %q", got[:])
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("traceio: reading count: %w", err)
	}
	const maxCount = 1 << 30
	if count > maxCount {
		return nil, fmt.Errorf("traceio: implausible record count %d", count)
	}
	t := make(mem.Trace, 0, count)
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("traceio: record %d address: %w", i, err)
		}
		prev += uint64(delta)
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("traceio: record %d flags: %w", i, err)
		}
		nonMem, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("traceio: record %d nonmem: %w", i, err)
		}
		if nonMem > 1<<31 {
			return nil, fmt.Errorf("traceio: record %d implausible nonmem %d", i, nonMem)
		}
		a := mem.Access{
			Addr:      mem.Addr(prev),
			NonMem:    uint32(nonMem),
			Dependent: flags&flagDependent != 0,
			Secret:    flags&flagSecret != 0,
		}
		if flags&flagWrite != 0 {
			a.Kind = mem.Write
		}
		t = append(t, a)
	}
	return t, nil
}

// WriteFile serializes the trace to path atomically (temp file + rename,
// via internal/atomicio): an interrupted generation never leaves a partial
// trace where a later run would try to Read it. It returns the size of the
// published file.
func WriteFile(path string, t mem.Trace) (int64, error) {
	f, err := atomicio.Create(path)
	if err != nil {
		return 0, err
	}
	if err := Write(f, t); err != nil {
		f.Abort()
		return 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Abort()
		return 0, err
	}
	if err := f.Commit(); err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// DumpText writes the first n records (all if n <= 0) in a human-readable
// line format: "R 0x00012340 line=0x48d nonmem=3 dep secret".
func DumpText(w io.Writer, t mem.Trace, n int) error {
	if n <= 0 || n > len(t) {
		n = len(t)
	}
	bw := bufio.NewWriter(w)
	for i := 0; i < n; i++ {
		a := t[i]
		if _, err := fmt.Fprintf(bw, "%s 0x%08x line=0x%x nonmem=%d",
			a.Kind, uint64(a.Addr), uint64(a.Line()), a.NonMem); err != nil {
			return err
		}
		if a.Dependent {
			fmt.Fprint(bw, " dep")
		}
		if a.Secret {
			fmt.Fprint(bw, " secret")
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Stats summarizes a trace for inspection tooling.
type Stats struct {
	Accesses     int
	Instructions uint64
	Reads        int
	Writes       int
	Dependent    int
	Secret       int
	Footprint    int // distinct cache lines
	MinAddr      mem.Addr
	MaxAddr      mem.Addr
}

// Summarize computes trace statistics.
func Summarize(t mem.Trace) Stats {
	s := Stats{Accesses: len(t), Instructions: t.Instructions()}
	if len(t) == 0 {
		return s
	}
	s.MinAddr = t[0].Addr
	for _, a := range t {
		if a.Kind == mem.Write {
			s.Writes++
		} else {
			s.Reads++
		}
		if a.Dependent {
			s.Dependent++
		}
		if a.Secret {
			s.Secret++
		}
		if a.Addr < s.MinAddr {
			s.MinAddr = a.Addr
		}
		if a.Addr > s.MaxAddr {
			s.MaxAddr = a.Addr
		}
	}
	s.Footprint = len(t.Lines())
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf(
		"accesses: %d (%d reads, %d writes)\ninstructions: %d\ndependent: %d  secret: %d\nfootprint: %d lines (%.1f KB)\naddress range: [%#x, %#x]",
		s.Accesses, s.Reads, s.Writes, s.Instructions, s.Dependent, s.Secret,
		s.Footprint, float64(s.Footprint*mem.LineSize)/1024, uint64(s.MinAddr), uint64(s.MaxAddr))
}
