package hierarchy

import (
	"strings"
	"testing"

	"randfill/internal/cache"
	"randfill/internal/core"
	"randfill/internal/mem"
	"randfill/internal/rng"
)

// oneLine returns a 1-line direct-mapped cache: every fill of a new line
// evicts the previous one, which makes victim flows exact.
func oneLine() cache.Cache {
	return cache.NewSetAssoc(cache.Geometry{SizeBytes: 64, Ways: 1}, cache.LRU{})
}

func small(lines int) cache.Cache {
	return cache.NewSetAssoc(cache.Geometry{SizeBytes: 64 * lines, Ways: lines}, cache.LRU{})
}

func threeLevel() *Hierarchy {
	return New(100,
		NewLevel(oneLine(), 1),
		NewLevel(oneLine(), 10),
		NewLevel(oneLine(), 30),
	)
}

func TestFetchLatencyAndDemandFill(t *testing.T) {
	h := New(100, NewLevel(small(4), 1), NewLevel(small(8), 10), NewLevel(small(16), 30))
	if got := h.Fetch(1, 7, false); got != 10+30+100 {
		t.Fatalf("cold fetch latency = %d, want 140", got)
	}
	if h.MemAccesses() != 1 {
		t.Fatalf("mem accesses = %d, want 1", h.MemAccesses())
	}
	// Demand-fill levels install the line on the unwind.
	if !h.Level(1).Cache.Probe(7) || !h.Level(2).Cache.Probe(7) {
		t.Fatal("demand line not installed in L2/L3")
	}
	if got := h.Fetch(1, 7, false); got != 10 {
		t.Fatalf("warm fetch latency = %d, want 10 (L2 hit)", got)
	}
	s := h.Level(1).Stats()
	if s.Accesses != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("L2 stats = %+v", *s)
	}
	if h.MemAccesses() != 1 {
		t.Fatalf("warm hit went to memory: %d", h.MemAccesses())
	}
}

// TestWritebackCascadesThreeLevels drives a dirty victim down all three
// levels and finally to memory, covering both the write-back-miss
// (allocate) and write-back-hit (update in place) cases.
func TestWritebackCascadesThreeLevels(t *testing.T) {
	h := threeLevel()

	// A dirty in L1; displacing it must allocate in the (empty) L2.
	h.Fill(0, 1, cache.FillOpts{Dirty: true})
	h.Fill(0, 2, cache.FillOpts{})
	l2 := h.Level(1).Stats()
	if l2.WritebacksIn != 1 || l2.WritebackAllocs != 1 {
		t.Fatalf("L2 wb stats after first victim = %+v", *l2)
	}
	if !h.Level(1).Cache.Probe(1) {
		t.Fatal("dirty victim 1 not allocated in L2")
	}

	// Clean victims vanish: displacing clean line 2 writes nothing back.
	h.Fill(0, 3, cache.FillOpts{Dirty: true})
	if l2.WritebacksIn != 1 {
		t.Fatalf("clean victim was written back: %+v", *l2)
	}

	// Dirty line 3's victim cascades: L2 write-back-miss allocates line 3,
	// displacing dirty line 1 into L3 (which also misses and allocates).
	h.Fill(0, 4, cache.FillOpts{})
	l3 := h.Level(2).Stats()
	if l2.WritebacksIn != 2 || l2.WritebackAllocs != 2 {
		t.Fatalf("L2 wb stats after cascade = %+v", *l2)
	}
	if l3.WritebacksIn != 1 || l3.WritebackAllocs != 1 {
		t.Fatalf("L3 wb stats after cascade = %+v", *l3)
	}
	if !h.Level(2).Cache.Probe(1) {
		t.Fatal("cascaded victim 1 not in L3")
	}
	if h.MemWritebacks() != 0 {
		t.Fatalf("premature memory write-back: %d", h.MemWritebacks())
	}

	// One more dirty round-trip pushes the chain's tail out of L3 into
	// memory: 5 displaces dirty 4? No — 4 was filled clean; make it dirty
	// via a write lookup first, then displace.
	h.Level(0).Cache.Lookup(4, true)
	h.Fill(0, 5, cache.FillOpts{})
	// L2 write-back-miss on 4 displaces dirty 3 into L3; L3 write-back-miss
	// on 3 displaces dirty 1 to memory.
	if h.MemWritebacks() != 1 {
		t.Fatalf("mem write-backs = %d, want 1", h.MemWritebacks())
	}
}

// TestWritebackHitUpdatesInPlace checks the victim-present-in-next-level
// case: the write-back hits and must not allocate or displace anything.
func TestWritebackHitUpdatesInPlace(t *testing.T) {
	h := threeLevel()
	// Line 1 already lives in the L2.
	h.Fill(1, 1, cache.FillOpts{})
	h.Fill(0, 1, cache.FillOpts{Dirty: true})
	h.Fill(0, 2, cache.FillOpts{})
	l2 := h.Level(1).Stats()
	if l2.WritebacksIn != 1 || l2.WritebackAllocs != 0 {
		t.Fatalf("write-back hit allocated: %+v", *l2)
	}
	if h.Level(2).Stats().WritebacksIn != 0 {
		t.Fatal("write-back hit cascaded past the hitting level")
	}
}

func TestRandomFillLevelNofillAndStats(t *testing.T) {
	l2c := small(8)
	eng := core.NewEngine(l2c, rng.New(7))
	eng.SetRR(0, 3)
	h := New(100,
		NewLevel(small(4), 1),
		NewLevel(l2c, 10).WithEngine(eng),
		NewLevel(small(16), 30),
	)
	const n = 32
	for i := 0; i < n; i++ {
		lat := h.Fetch(1, mem.Line(i*64), false)
		if lat != 10+30+100 {
			t.Fatalf("fetch %d latency = %d, want 140", i, lat)
		}
		// The level below still demand-fills it.
		if !h.Level(2).Cache.Probe(mem.Line(i * 64)) {
			t.Fatalf("demand line %d missing from L3", i*64)
		}
	}
	// Nofill: demand lines enter the L2 only when their own random draw
	// happened to pick offset 0 (the window [i, i+3] includes i). With a
	// 64-line stride no other miss's window can reach them, so most of the
	// 32 demand lines must be absent.
	present := 0
	for i := 0; i < n; i++ {
		if l2c.Probe(mem.Line(i * 64)) {
			present++
		}
	}
	if present == n {
		t.Fatal("every demand line installed in random-fill L2; nofill not applied")
	}
	fs := h.Level(1).FillStats()
	if fs == nil {
		t.Fatal("FillStats nil for an engine level")
	}
	if fs.NoFills != n {
		t.Fatalf("nofills = %d, want %d", fs.NoFills, n)
	}
	if fs.RandomIssued+fs.RandomDropped+fs.RandomClamped != n {
		t.Fatalf("random decisions %d+%d+%d don't cover %d misses",
			fs.RandomIssued, fs.RandomDropped, fs.RandomClamped, n)
	}
	if fs.RandomIssued == 0 {
		t.Fatal("no random fills issued over 32 misses with window [0,3]")
	}
	// Every issued random fill fetched its data from below (a background
	// memory or L3 access) — the L2's access count must include them.
	l2 := h.Level(1).Stats()
	if l2.Accesses != n {
		t.Fatalf("L2 accesses = %d, want %d demand misses", l2.Accesses, n)
	}
	if got := h.Level(2).Stats().Accesses; got != n+fs.RandomIssued {
		t.Fatalf("L3 accesses = %d, want %d demand + %d random", got, n, fs.RandomIssued)
	}
	if fs.NormalFills != 0 {
		t.Fatalf("normal fills = %d on an enabled engine", fs.NormalFills)
	}
}

func TestFillStatsNilForDemandLevel(t *testing.T) {
	l := NewLevel(oneLine(), 1)
	if l.FillStats() != nil {
		t.Fatal("demand level reported fill stats")
	}
}

func TestAccessFunctionalPath(t *testing.T) {
	h := New(50, NewLevel(small(4), 1), NewLevel(small(8), 10))
	hit, lat := h.Access(3, false)
	if hit || lat != 1+10+50 {
		t.Fatalf("cold access: hit=%v lat=%d", hit, lat)
	}
	hit, lat = h.Access(3, false)
	if !hit || lat != 1 {
		t.Fatalf("warm access: hit=%v lat=%d", hit, lat)
	}
}

func TestAccessWithL0Engine(t *testing.T) {
	l1c := small(4)
	eng := core.NewEngine(l1c, rng.New(3))
	eng.SetRR(0, 3)
	h := New(50, NewLevel(l1c, 1).WithEngine(eng), NewLevel(small(32), 10))
	const n = 16
	hits := 0
	for i := 0; i < n; i++ {
		if hit, _ := h.Access(mem.Line(i), false); hit {
			hits++
		}
	}
	fs := h.Level(0).FillStats()
	if fs.NoFills == 0 || fs.NoFills != uint64(n-hits) {
		t.Fatalf("nofills = %d with %d hits over %d accesses", fs.NoFills, hits, n)
	}
	// Random fills land in the L1 without the demand line doing so; with a
	// forward window over a dense scan some later access must hit one.
	if fs.RandomIssued == 0 {
		t.Fatal("no random fills issued")
	}
}

func TestAccessWithDisabledL0EngineDemandFills(t *testing.T) {
	l1c := small(4)
	eng := core.NewEngine(l1c, rng.New(3)) // window [0,0]: disabled
	h := New(50, NewLevel(l1c, 1).WithEngine(eng), NewLevel(small(8), 10))
	h.Access(9, true)
	if !l1c.Probe(9) {
		t.Fatal("disabled engine did not demand-fill")
	}
	if h.Level(0).FillStats().NormalFills != 1 {
		t.Fatalf("fill stats = %+v", *h.Level(0).FillStats())
	}
}

// nextLine is a stub prefetcher: every demand miss prefetches line+1, every
// demand hit prefetches line+2.
type nextLine struct {
	fills   []mem.Line
	byPref  int
	scratch [1]mem.Line
}

func (p *nextLine) OnFill(line mem.Line, byPrefetch bool) {
	p.fills = append(p.fills, line)
	if byPrefetch {
		p.byPref++
	}
}
func (p *nextLine) OnHit(line mem.Line) []mem.Line {
	p.scratch[0] = line + 2
	return p.scratch[:]
}
func (p *nextLine) OnMiss(line mem.Line) []mem.Line {
	p.scratch[0] = line + 1
	return p.scratch[:]
}

func TestLevelPrefetcher(t *testing.T) {
	p := &nextLine{}
	l2 := NewLevel(small(8), 10)
	l2.Prefetcher = p
	h := New(50, NewLevel(small(4), 1), l2)

	h.Fetch(1, 100, false) // miss: demand-fills 100, prefetches 101
	if !l2.Cache.Probe(101) {
		t.Fatal("miss prefetch target not installed")
	}
	if l2.Stats().Prefetches != 1 {
		t.Fatalf("prefetches = %d", l2.Stats().Prefetches)
	}
	if p.byPref != 1 {
		t.Fatalf("OnFill(byPrefetch) calls = %d", p.byPref)
	}
	// The prefetch's own background fetch must not re-trigger prefetching.
	if h.MemAccesses() != 2 {
		t.Fatalf("mem accesses = %d, want demand + prefetch", h.MemAccesses())
	}

	h.Fetch(1, 100, false) // hit: prefetches 102
	if !l2.Cache.Probe(102) {
		t.Fatal("hit prefetch target not installed")
	}
	// Prefetching an already-present target is dropped.
	pre := l2.Stats().Prefetches
	h.Fetch(1, 101, false) // hit; OnHit wants 103... (101+2)
	h.Fetch(1, 101, false) // hit again; 103 now present, dropped
	if l2.Stats().Prefetches != pre+1 {
		t.Fatalf("prefetches = %d, want %d (duplicate dropped)", l2.Stats().Prefetches, pre+1)
	}
}

func TestAccessors(t *testing.T) {
	h := threeLevel()
	if h.Depth() != 3 {
		t.Fatalf("depth = %d", h.Depth())
	}
	if h.MemLat() != 100 {
		t.Fatalf("memLat = %d", h.MemLat())
	}
	if !strings.Contains(h.String(), "3 levels") {
		t.Fatalf("String() = %q", h.String())
	}
}

func TestNewPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("no levels", func() { New(10) })
	expectPanic("nil cache", func() { New(10, &Level{HitLat: 1}) })
	expectPanic("foreign engine", func() {
		c1, c2 := oneLine(), oneLine()
		New(10, &Level{Cache: c1, HitLat: 1, Engine: core.NewEngine(c2, rng.New(1))})
	})
	expectPanic("WithEngine foreign", func() {
		NewLevel(oneLine(), 1).WithEngine(core.NewEngine(oneLine(), rng.New(1)))
	})
}
