package hierarchy

import (
	"fmt"
	"testing"

	"randfill/internal/cache"
	"randfill/internal/core"
	"randfill/internal/mem"
	"randfill/internal/prefetch"
	"randfill/internal/rng"
	"randfill/internal/trace"
)

// hierState flattens every observable counter of a hierarchy plus the replay
// return values into one comparable string.
func hierState(h *Hierarchy, hits, lat uint64) string {
	s := fmt.Sprintf("hits=%d lat=%d", hits, lat)
	for k := 0; k < h.Depth(); k++ {
		s += fmt.Sprintf(" lvl%d=%+v", k, *h.Level(k).Stats())
		if fs := h.Level(k).FillStats(); fs != nil {
			s += fmt.Sprintf(" fill%d=%+v", k, *fs)
		}
	}
	return s + fmt.Sprintf(" mem=%d memwb=%d", h.MemAccesses(), h.MemWritebacks())
}

// TestReplayBatchMatchesAccess pins Hierarchy.ReplayBatch to an Access loop
// over the same trace: identical hit counts, latencies, per-level traffic,
// fill-engine decisions and memory traffic, on both the devirtualized
// SetAssoc level-0 fast path and the generic fallback, with and without a
// random-fill engine and an L0 prefetcher in the stack.
func TestReplayBatchMatchesAccess(t *testing.T) {
	src := rng.New(77)
	tr := make(mem.Trace, 3000)
	for i := range tr {
		a := mem.Access{Addr: mem.AddrOf(mem.Line(src.Intn(256)))}
		if src.Bool(0.3) {
			a.Kind = mem.Write
		}
		if src.Intn(50) == 0 {
			a.Addr = mem.Addr(src.Uint64() | 1<<60) // escape record
		}
		tr[i] = a
	}
	ct := trace.Compile(tr)

	build := func(name string, seed uint64) *Hierarchy {
		l0c := cache.NewSetAssoc(cache.Geometry{SizeBytes: 1024, Ways: 2}, cache.LRU{})
		switch name {
		case "l0-engine":
			eng := core.NewEngine(l0c, rng.New(seed))
			eng.SetRR(8, 7)
			return New(100,
				NewLevel(l0c, 1).WithEngine(eng),
				NewLevel(cache.NewSetAssoc(cache.Geometry{SizeBytes: 16 * 1024, Ways: 4}, cache.LRU{}), 20),
			)
		case "l0-prefetch":
			l0 := NewLevel(l0c, 1)
			l0.Prefetcher = prefetch.NewTagged()
			return New(100, l0,
				NewLevel(cache.NewSetAssoc(cache.Geometry{SizeBytes: 16 * 1024, Ways: 4}, cache.LRU{}), 20),
			)
		case "l0-fifo-fallback":
			// A non-LRU SetAssoc still takes the fast path; the generic
			// fallback is exercised by a non-SetAssoc level 0 below.
			return New(100,
				NewLevel(cache.NewSetAssoc(cache.Geometry{SizeBytes: 1024, Ways: 2}, cache.FIFO{}), 1),
				NewLevel(cache.NewSetAssoc(cache.Geometry{SizeBytes: 16 * 1024, Ways: 4}, cache.LRU{}), 20),
			)
		case "l0-plru", "l0-srrip", "l0-brrip", "l0-random":
			// Stateful / RNG-backed policies on the devirtualized level-0
			// fast path: victim selection may mutate per-set state (PLRU
			// tree bits, RRIP aging) and consume draws (BRRIP, random), so
			// batch and scalar replay must agree on every counter AND every
			// subsequent draw the policy makes.
			var psrc *rng.Source
			if cache.PolicyNeedsRNG(name[3:]) {
				psrc = rng.New(seed + 100)
			}
			pol, err := cache.PolicyByName(name[3:], psrc)
			if err != nil {
				t.Fatal(err)
			}
			return New(100,
				NewLevel(cache.NewSetAssoc(cache.Geometry{SizeBytes: 1024, Ways: 2}, pol), 1),
				NewLevel(cache.NewSetAssoc(cache.Geometry{SizeBytes: 16 * 1024, Ways: 4}, cache.LRU{}), 20),
			)
		default: // demand two-level
			return New(100,
				NewLevel(l0c, 1),
				NewLevel(cache.NewSetAssoc(cache.Geometry{SizeBytes: 16 * 1024, Ways: 4}, cache.LRU{}), 20),
			)
		}
	}

	for _, name := range []string{"demand", "l0-engine", "l0-prefetch", "l0-fifo-fallback",
		"l0-plru", "l0-srrip", "l0-brrip", "l0-random"} {
		t.Run(name, func(t *testing.T) {
			scalar := build(name, 5)
			var hits, lat uint64
			for i := range tr {
				hit, l := scalar.Access(tr[i].Line(), tr[i].Kind == mem.Write)
				if hit {
					hits++
				}
				lat += l
			}

			batch := build(name, 5)
			bhits, blat := batch.ReplayBatch(ct)

			got, want := hierState(batch, bhits, blat), hierState(scalar, hits, lat)
			if got != want {
				t.Errorf("batched hierarchy replay diverges from Access loop:\n batch  %s\n scalar %s", got, want)
			}
		})
	}
}

// TestReplayBatchGenericLevelZero covers the non-SetAssoc fallback with a
// wrapped cache type the fast path cannot devirtualize.
func TestReplayBatchGenericLevelZero(t *testing.T) {
	src := rng.New(78)
	tr := make(mem.Trace, 500)
	for i := range tr {
		tr[i] = mem.Access{Addr: mem.AddrOf(mem.Line(src.Intn(64)))}
	}
	ct := trace.Compile(tr)

	build := func() *Hierarchy {
		return New(100,
			NewLevel(opaque{cache.NewSetAssoc(cache.Geometry{SizeBytes: 512, Ways: 2}, cache.LRU{})}, 1),
			NewLevel(cache.NewSetAssoc(cache.Geometry{SizeBytes: 8 * 1024, Ways: 4}, cache.LRU{}), 20),
		)
	}
	scalar := build()
	var hits, lat uint64
	for i := range tr {
		hit, l := scalar.Access(tr[i].Line(), false)
		if hit {
			hits++
		}
		lat += l
	}
	batch := build()
	bhits, blat := batch.ReplayBatch(ct)
	got, want := hierState(batch, bhits, blat), hierState(scalar, hits, lat)
	if got != want {
		t.Errorf("generic level-0 replay diverges:\n batch  %s\n scalar %s", got, want)
	}
}

// opaque hides the concrete cache type from the fast-path type assertion.
type opaque struct{ cache.Cache }
