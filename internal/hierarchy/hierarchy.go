// Package hierarchy composes cache levels and per-level fill policies into
// an N-level memory hierarchy with one uniform miss path. It is the
// composition layer the paper's Section VI evaluation needs: random fill at
// the L1, at the L2, at both, or at any subset of an arbitrarily deep stack
// — each level is any cache.Cache paired with a fill policy (conventional
// demand fetch, or a real core.Engine random-fill instance with its full
// nofill/drop/clamp bookkeeping), a hit latency, and an optional prefetcher.
//
// The miss-path contract (see DESIGN.md §8):
//
//   - A demand request consults levels top-down; each traversed level charges
//     its hit latency, and a full miss charges the memory latency once.
//   - On the unwind, each missed level applies its own fill policy: a
//     demand-fill level installs the line; a random-fill level forwards it
//     upward uncached (nofill) and instead fetches a random neighbor from
//     the levels below as a zero-latency background fill (the random fill
//     engine works in the background, off the critical path).
//   - Dirty victims displaced by any fill are written back into the next
//     level down, allocating there on a write-back miss, and cascade
//     recursively; a dirty victim of the last level is written to memory.
//     Write-backs always allocate — nofill applies to demand fetches, not to
//     data being pushed down.
//   - Background fetches (random fills, prefetches) count in each level's
//     traffic statistics but never add latency to the demand access that
//     triggered them.
//
// Level 0 is special only by convention: the timing simulator's Thread owns
// the level-0 lookup (it models MSHR occupancy and per-thread fill engines),
// so it drives Fetch from level 1 and applies level-0 fills via Fill. The
// functional path (Access) walks all levels including level 0.
package hierarchy

import (
	"fmt"

	"randfill/internal/cache"
	"randfill/internal/core"
	"randfill/internal/mem"
	"randfill/internal/prefetch"
	"randfill/internal/trace"
)

// LevelStats counts the traffic one level observes. Random-fill decision
// counters (nofills, issued/dropped/clamped random fills) live in the
// level's engine Stats — see Level.FillStats.
type LevelStats struct {
	// Accesses counts fetch requests arriving at this level: demand
	// misses from above plus background (random fill, prefetch) fetches
	// that consult this level on their way down.
	Accesses uint64
	// Hits and Misses partition Accesses.
	Hits   uint64
	Misses uint64
	// WritebacksIn counts dirty victims from the level above written into
	// this level; WritebackAllocs counts those that missed and allocated.
	WritebacksIn    uint64
	WritebackAllocs uint64
	// Prefetches counts prefetcher-initiated fills installed at this level.
	Prefetches uint64
}

// Level is one cache level: a cache, a fill policy, a hit latency, and an
// optional prefetcher observing the level's demand traffic.
type Level struct {
	// Cache holds the level's contents. Any cache.Cache works: the
	// conventional set-associative cache or any of the secure-cache
	// architectures.
	Cache cache.Cache
	// Engine, when non-nil, applies the random fill policy at this level
	// (it must wrap Cache). When nil the level demand-fills.
	Engine *core.Engine
	// HitLat is the access latency charged when a request reaches this
	// level, hit or miss (the lookup itself costs the hit latency; a miss
	// additionally pays the levels below).
	HitLat uint64
	// Prefetcher, when non-nil, observes this level's demand traffic and
	// injects background prefetch fills at this level.
	Prefetcher prefetch.Prefetcher

	stats LevelStats
}

// NewLevel returns a demand-fill level over c with the given hit latency.
func NewLevel(c cache.Cache, hitLat uint64) *Level {
	return &Level{Cache: c, HitLat: hitLat}
}

// WithEngine attaches a random fill engine (which must wrap the level's
// cache) and returns the level, for construction chaining.
func (l *Level) WithEngine(e *core.Engine) *Level {
	if e != nil && e.Cache() != l.Cache {
		panic("hierarchy: fill engine must wrap the level's own cache")
	}
	l.Engine = e
	return l
}

// Stats returns the level's live traffic counters.
func (l *Level) Stats() *LevelStats { return &l.stats }

// FillStats returns the random-fill decision counters of the level's
// engine (nofills, random fills issued, dropped on tag hit, clamped for
// address underflow), or nil for a demand-fill level.
func (l *Level) FillStats() *core.Stats {
	if l.Engine == nil {
		return nil
	}
	return l.Engine.Stats()
}

// Hierarchy chains levels (index 0 nearest the processor) down to a flat
// memory latency model.
type Hierarchy struct {
	levels []*Level
	memLat uint64

	// memAccesses counts fetch requests served by memory (demand misses
	// and background fills that miss every level). Write-back traffic to
	// memory is counted separately in memWritebacks, mirroring the write
	// buffers that keep it off the fetch path.
	memAccesses   uint64
	memWritebacks uint64
}

// New builds a hierarchy over the given levels (top to bottom) and memory
// latency. At least one level is required.
func New(memLat uint64, levels ...*Level) *Hierarchy {
	if len(levels) == 0 {
		panic("hierarchy: need at least one level")
	}
	for i, l := range levels {
		if l == nil || l.Cache == nil {
			panic(fmt.Sprintf("hierarchy: level %d has no cache", i))
		}
		if l.Engine != nil && l.Engine.Cache() != l.Cache {
			panic(fmt.Sprintf("hierarchy: level %d engine does not wrap the level's cache", i))
		}
	}
	return &Hierarchy{levels: levels, memLat: memLat}
}

// Depth returns the number of cache levels.
func (h *Hierarchy) Depth() int { return len(h.levels) }

// Level returns level i (0 nearest the processor).
func (h *Hierarchy) Level(i int) *Level { return h.levels[i] }

// MemLat returns the memory latency model's added cycles.
func (h *Hierarchy) MemLat() uint64 { return h.memLat }

// MemAccesses returns the number of fetch requests served by memory.
func (h *Hierarchy) MemAccesses() uint64 { return h.memAccesses }

// MemWritebacks returns the number of dirty last-level victims written to
// memory.
func (h *Hierarchy) MemWritebacks() uint64 { return h.memWritebacks }

// Fetch services a miss raised above level from: it consults levels
// from..Depth-1 and then memory, applies each missed level's fill policy on
// the unwind, and returns the added latency. The timing simulator calls
// Fetch(1, ...) on an L1 miss.
func (h *Hierarchy) Fetch(from int, line mem.Line, write bool) uint64 {
	return h.fetch(from, line, write, false)
}

// fetch is the uniform miss path. background marks fetches that carry no
// demand data (random fills, prefetches): they still fill and count traffic
// but never trigger prefetchers of the levels they traverse.
func (h *Hierarchy) fetch(k int, line mem.Line, write, background bool) uint64 {
	if k >= len(h.levels) {
		h.memAccesses++
		return h.memLat
	}
	lvl := h.levels[k]
	lvl.stats.Accesses++
	lat := lvl.HitLat
	if lvl.Cache.Lookup(line, write) {
		lvl.stats.Hits++
		if lvl.Prefetcher != nil && !background {
			for _, pl := range lvl.Prefetcher.OnHit(line) {
				h.prefetchInto(k, line, pl)
			}
		}
		return lat
	}
	lvl.stats.Misses++
	lat += h.fetch(k+1, line, write, background)

	// Unwind: this level's fill policy decides what is installed here.
	if lvl.Engine == nil {
		h.Fill(k, line, cache.FillOpts{Dirty: write})
		if lvl.Prefetcher != nil && !background {
			lvl.Prefetcher.OnFill(line, false)
		}
	} else {
		reqs := lvl.Engine.OnMiss(line)
		for i := 0; i < reqs.Len(); i++ {
			r := reqs.At(i)
			switch r.Type {
			case core.Normal:
				h.Fill(k, r.Line, cache.FillOpts{Dirty: write})
			case core.NoFill:
				// Forwarded upward uncached; a write miss under
				// nofill writes through to the level below.
			case core.RandomFill:
				// The random neighbor's data comes from the levels
				// below as a zero-latency background fill.
				h.fetch(k+1, r.Line, false, true)
				h.Fill(k, r.Line, cache.FillOpts{Offset: r.Offset})
			}
		}
	}
	if lvl.Prefetcher != nil && !background {
		for _, pl := range lvl.Prefetcher.OnMiss(line) {
			h.prefetchInto(k, line, pl)
		}
	}
	return lat
}

// prefetchInto installs a background prefetch of pl at level k (triggered by
// demand traffic to line), fetching its data from the levels below. Already
// present targets are dropped, like random fill requests that hit the tag
// array.
func (h *Hierarchy) prefetchInto(k int, line, pl mem.Line) {
	lvl := h.levels[k]
	if lvl.Cache.Probe(pl) {
		return
	}
	h.fetch(k+1, pl, false, true)
	h.Fill(k, pl, cache.FillOpts{Offset: clampOffset(int64(pl) - int64(line))})
	lvl.stats.Prefetches++
	lvl.Prefetcher.OnFill(pl, true)
}

// Fill installs line into level k with the given metadata and writes any
// displaced dirty victim back into the next level down, cascading.
func (h *Hierarchy) Fill(k int, line mem.Line, opts cache.FillOpts) {
	h.writeback(k+1, h.levels[k].Cache.Fill(line, opts))
}

// writeback propagates a dirty victim displaced from level k-1 into level k:
// a write-back hit updates the line in place; a write-back miss allocates
// (the data must land somewhere), whose own victim cascades further down.
// Clean victims simply vanish; dirty victims of the last level are written
// to memory. Iterative, because each fill can displace at most one victim.
func (h *Hierarchy) writeback(k int, v cache.Victim) {
	for v.Valid && v.Dirty {
		if k >= len(h.levels) {
			h.memWritebacks++
			return
		}
		lvl := h.levels[k]
		lvl.stats.WritebacksIn++
		if lvl.Cache.Lookup(v.Line, true) {
			return
		}
		lvl.stats.WritebackAllocs++
		v = lvl.Cache.Fill(v.Line, cache.FillOpts{Dirty: true})
		k++
	}
}

// Access performs one full functional demand access from the top of the
// hierarchy: level-0 lookup, and on a miss the uniform miss path including
// level 0's own fill policy. It returns whether level 0 hit, plus the total
// latency (level 0's hit latency on a hit). This is the entry point for
// functional (non-MSHR-modelling) callers; the timing simulator drives
// level 0 itself.
func (h *Hierarchy) Access(line mem.Line, write bool) (hit bool, lat uint64) {
	l0 := h.levels[0]
	hitsBefore := l0.stats.Hits
	lat = h.fetch(0, line, write, false)
	return l0.stats.Hits > hitsBefore, lat
}

// ReplayBatch replays a precompiled demand trace from the top of the
// hierarchy, equivalent to calling Access once per access, and returns the
// level-0 hit count and the summed latency. When level 0 is a conventional
// set-associative cache, the all-hits common case runs through the
// devirtualized cache.SetAssoc.TryHit probe and only misses enter the
// recursive miss path — same counters, fills and RNG draws, since TryHit is
// Lookup's hit path and a failed TryHit mutates nothing before the full
// fetch re-runs the lookup. Other level-0 cache types replay through Access
// unchanged.
func (h *Hierarchy) ReplayBatch(ct *trace.Compiled) (hits, lat uint64) {
	l0 := h.levels[0]
	sa, _ := l0.Cache.(*cache.SetAssoc)
	if sa == nil {
		for i := 0; i < ct.Len(); i++ {
			a := ct.At(i)
			hit, l := h.Access(a.Line(), a.Kind == mem.Write)
			if hit {
				hits++
			}
			lat += l
		}
		return hits, lat
	}
	for i, w := range ct.Words() {
		if trace.IsEscape(w) {
			a := ct.At(i)
			hit, l := h.Access(a.Line(), a.Kind == mem.Write)
			if hit {
				hits++
			}
			lat += l
			continue
		}
		line, write := trace.Line(w), trace.Write(w)
		if sa.TryHit(line, write) {
			l0.stats.Accesses++
			l0.stats.Hits++
			lat += l0.HitLat
			hits++
			if l0.Prefetcher != nil {
				for _, pl := range l0.Prefetcher.OnHit(line) {
					h.prefetchInto(0, line, pl)
				}
			}
			continue
		}
		lat += h.fetch(0, line, write, false)
	}
	return hits, lat
}

func clampOffset(off int64) int8 {
	if off > 127 {
		return 127
	}
	if off < -128 {
		return -128
	}
	return int8(off)
}

func (h *Hierarchy) String() string {
	return fmt.Sprintf("Hierarchy(%d levels, memLat=%d)", len(h.levels), h.memLat)
}
