package attacks

import (
	"encoding/binary"
	"errors"
	"math"

	"randfill/internal/stats"
)

// Binary encodings for the attack accumulators the checkpoint layer
// persists. Exactness is the contract: floats are stored as IEEE-754 bit
// patterns, so a shard loaded from a checkpoint merges to the same bytes
// as the live shard it replaces.

// ErrCorrupt reports an attack-state encoding that does not frame
// correctly; the checkpoint layer treats the shard as missing.
var ErrCorrupt = errors.New("attacks: corrupt serialized state")

// MarshalBinary implements encoding.BinaryMarshaler. The full mergeable
// state is carried — pair set, ground truth, per-pair grouped timings,
// overall timing, sample count — so an UnmarshalBinary'd state can stand
// in for a live shard in Merge, including Merge's same-victim validation.
func (s *CollisionStats) MarshalBinary() ([]byte, error) {
	out := binary.LittleEndian.AppendUint32(nil, uint32(len(s.pairs)))
	for _, p := range s.pairs {
		lg := byte(0)
		if p.lineGranular {
			lg = 1
		}
		out = append(out, byte(p.i), byte(p.j), lg)
	}
	for _, tr := range s.truth {
		out = binary.LittleEndian.AppendUint32(out, uint32(int32(tr)))
	}
	for _, g := range s.groups {
		out = g.AppendBinary(out)
	}
	out = stats.AppendRunning(out, s.timing)
	return binary.LittleEndian.AppendUint64(out, s.n), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *CollisionStats) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return ErrCorrupt
	}
	np := int(binary.LittleEndian.Uint32(data[:4]))
	data = data[4:]
	if np < 0 || len(data) < np*3 {
		return ErrCorrupt
	}
	s.pairs = make([]bytePair, np)
	for i := range s.pairs {
		s.pairs[i] = bytePair{i: int(data[0]), j: int(data[1]), lineGranular: data[2] == 1}
		data = data[3:]
	}
	if len(data) < np*4 {
		return ErrCorrupt
	}
	s.truth = make([]int, np)
	for i := range s.truth {
		s.truth[i] = int(int32(binary.LittleEndian.Uint32(data[:4])))
		data = data[4:]
	}
	s.groups = make([]*stats.Grouped, np)
	for i := range s.groups {
		s.groups[i] = &stats.Grouped{}
		var err error
		if data, err = s.groups[i].DecodeFrom(data); err != nil {
			return ErrCorrupt
		}
	}
	var err error
	if s.timing, data, err = stats.DecodeRunning(data); err != nil {
		return ErrCorrupt
	}
	if len(data) != 8 {
		return ErrCorrupt
	}
	s.n = binary.LittleEndian.Uint64(data)
	return nil
}

// searchResultSize is the encoded size of a SearchResult.
const searchResultSize = 8 + 1 + 8 + 8

// MarshalBinary implements encoding.BinaryMarshaler.
func (r SearchResult) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, searchResultSize)
	out = binary.LittleEndian.AppendUint64(out, r.Measurements)
	b := byte(0)
	if r.Success {
		b = 1
	}
	out = append(out, b)
	out = binary.LittleEndian.AppendUint64(out, uint64(int64(r.CorrectPairs)))
	return binary.LittleEndian.AppendUint64(out, math.Float64bits(r.SigmaT)), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (r *SearchResult) UnmarshalBinary(data []byte) error {
	if len(data) != searchResultSize {
		return ErrCorrupt
	}
	r.Measurements = binary.LittleEndian.Uint64(data[0:8])
	r.Success = data[8] == 1
	r.CorrectPairs = int(int64(binary.LittleEndian.Uint64(data[9:17])))
	r.SigmaT = math.Float64frombits(binary.LittleEndian.Uint64(data[17:25]))
	return nil
}
