package attacks

import (
	"randfill/internal/cache"
	"randfill/internal/core"
	"randfill/internal/mem"
	"randfill/internal/rng"
)

// PrimeProbeConfig configures a Prime-Probe experiment (contention based,
// access-driven). The attacker fills every cache set with its own data,
// lets the victim perform one secret-dependent access, then probes its own
// data: the set containing an evicted attacker line reveals which set the
// victim's address maps to.
type PrimeProbeConfig struct {
	// NewCache builds the shared cache. The attack's set inference is
	// meaningful for set-associative architectures; against Newcache the
	// randomized mapping destroys the correlation.
	NewCache func(src *rng.Source) cache.Cache
	// Sets and Ways describe the geometry the attacker assumes when
	// laying out its prime data.
	Sets, Ways int
	// Window is the victim's random fill window.
	Window rng.Window
	// VictimRegion is the victim's table; each trial accesses one
	// uniform line of it.
	VictimRegion mem.Region
	// AttackerBase is the first line of the attacker's own data
	// (disjoint from the victim's).
	AttackerBase mem.Line
	Trials       int
	Seed         uint64
}

// PrimeProbeResult summarizes the experiment.
type PrimeProbeResult struct {
	// ExactAccuracy is the fraction of trials where the inferred set
	// equals the victim's true set.
	ExactAccuracy float64
	// WindowAccuracy is the fraction of trials where the inferred set is
	// within the random fill window of the true set (mod sets) — random
	// fill blurs but does not hide set contention, which is why it must
	// be combined with a randomization-based secure cache (Section VIII).
	WindowAccuracy float64
	Trials         int
}

// PrimeProbe mounts the attack.
func PrimeProbe(cfg PrimeProbeConfig) PrimeProbeResult {
	src := rng.New(cfg.Seed ^ 0x9413)
	c := cfg.NewCache(src.Split(1))
	eng := core.NewEngine(c, src.Split(2))
	eng.SetOwner(victimDomain)
	eng.SetRR(cfg.Window.A, cfg.Window.B)

	m := cfg.VictimRegion.NumLines()
	first := cfg.VictimRegion.FirstLine()

	exact, near := 0, 0
	for trial := 0; trial < cfg.Trials; trial++ {
		// Prime: fill every set with attacker lines. Attacker line for
		// (set s, way k) is base + s + k*Sets, which maps to set s in a
		// conventional indexed cache.
		asDomain(c, attackerDomain)
		for k := 0; k < cfg.Ways; k++ {
			for s := 0; s < cfg.Sets; s++ {
				c.Fill(cfg.AttackerBase+mem.Line(k*cfg.Sets+s), cache.FillOpts{Owner: attackerDomain})
			}
		}
		// Victim access.
		asDomain(c, victimDomain)
		secret := src.Intn(m)
		victimLine := first + mem.Line(secret)
		eng.Access(victimLine, false)

		// Probe: count evicted attacker lines per assumed set.
		asDomain(c, attackerDomain)
		evicted := make([]int, cfg.Sets)
		for k := 0; k < cfg.Ways; k++ {
			for s := 0; s < cfg.Sets; s++ {
				if !c.Probe(cfg.AttackerBase + mem.Line(k*cfg.Sets+s)) {
					evicted[s]++
				}
			}
		}
		inferred := -1
		for s, n := range evicted {
			if n > 0 && (inferred < 0 || n > evicted[inferred]) {
				inferred = s
			}
		}
		trueSet := int(uint64(victimLine) & uint64(cfg.Sets-1))
		if inferred == trueSet {
			exact++
		}
		if inferred >= 0 && withinWindowMod(inferred, trueSet, cfg.Window, cfg.Sets) {
			near++
		}
	}
	return PrimeProbeResult{
		ExactAccuracy:  float64(exact) / float64(cfg.Trials),
		WindowAccuracy: float64(near) / float64(cfg.Trials),
		Trials:         cfg.Trials,
	}
}

// withinWindowMod reports whether set s lies within [t-a, t+b] modulo sets.
func withinWindowMod(s, t int, w rng.Window, sets int) bool {
	for d := -w.A; d <= w.B; d++ {
		if (t+d%sets+sets)%sets == s {
			return true
		}
	}
	return false
}
