// Package attacks implements the four cache side channel attack classes of
// the paper's Table I against the simulated cache architectures:
//
//   - cache collision attacks (timing-driven, reuse based) — the paper's
//     main case study, both final-round and first-round AES variants;
//   - Flush-Reload attacks (access-driven, reuse based);
//   - Prime-Probe attacks (access-driven, contention based);
//   - Evict-Time attacks (timing-driven, contention based).
//
// Each attack runs against a victim whose L1 fill policy is configurable,
// so the same code demonstrates both the vulnerability of demand fetch and
// the defense provided by the random fill engine.
package attacks

import (
	"context"
	"fmt"

	"randfill/internal/aes"
	"randfill/internal/mem"
	"randfill/internal/plcache"
	"randfill/internal/rng"
	"randfill/internal/sim"
	"randfill/internal/stats"
	"randfill/internal/trace"
)

// Round selects which AES round the collision attack targets.
type Round int

const (
	// FinalRound attacks the T4 lookups: a collision between final-round
	// lookups u and w yields k10_u ^ k10_w = c_u ^ c_w.
	FinalRound Round = iota
	// FirstRound attacks the round-1 lookups x_i = p_i ^ k_i: a
	// collision yields <k_i ^ k_j> = <p_i ^ p_j> (the line-granular,
	// i.e. high-nibble, XOR of the key bytes).
	FirstRound
)

// CollisionConfig configures a cache collision attack run.
type CollisionConfig struct {
	// Sim is the machine configuration (Table IV defaults apply to zero
	// fields). The paper's security runs favor the attacker with a
	// 1-entry miss queue; the default 4 entries adds timing noise.
	Sim sim.Config
	// Victim is the victim thread's fill policy (the defense under
	// test).
	Victim sim.ThreadConfig
	// Key is the victim's 16-byte AES key; a random key is drawn from
	// Seed when nil.
	Key []byte
	// Round selects the attack variant.
	Round Round
	// Seed drives the attacker's plaintext generation.
	Seed uint64
	// TraceOpts tunes the victim's instruction mix.
	TraceOpts aes.TraceOpts
}

// CollisionStats is the mergeable measurement state of a collision attack:
// for each recovered XOR relation, the per-XOR-value grouped timing
// statistics, plus the overall timing distribution. It is everything the
// attack's verdict functions (RecoveredXor, Success, TimingChart, SigmaT)
// need, divorced from the machinery that produces measurements — which is
// what lets the parallel experiment engine shard one attack across
// goroutines and fold the shard states back together in a fixed order.
type CollisionStats struct {
	// pairs and truth describe the XOR relations under recovery and
	// their ground-truth values; all shards of one attack share them
	// (same victim key), and Merge enforces that.
	pairs []bytePair
	truth []int
	// groups[p] aggregates encryption times keyed by the XOR of byte
	// pair p. Final round: pairs (0,i), i = 1..15, keyed by c0^ci.
	// First round: pairs within each table's byte positions, keyed by
	// the line-granular plaintext XOR.
	groups []*stats.Grouped
	timing stats.Running
	n      uint64
}

// Collision is an in-progress cache collision attack: it accumulates timing
// measurements over block encryptions with random plaintexts and recovers
// key-byte XOR relations from the per-group mean encryption times.
type Collision struct {
	*CollisionStats

	cfg     CollisionConfig
	cipher  *aes.Cipher
	tracer  *aes.Tracer
	machine *sim.Machine
	thread  *sim.Thread
	src     *rng.Source
	layout  aes.Layout
	warmups int
	// trace and ct are the recycled per-encryption access trace and its
	// compiled form; Collect runs one encryption per sample, so buffer
	// reuse keeps the sample loop allocation-free.
	trace mem.Trace
	ct    trace.Compiled
}

// bytePair identifies one recovered XOR relation.
type bytePair struct {
	i, j int
	// lineGranular restricts the relation to the high nibble (the line
	// index), as in the first-round attack where only <xi> = <xj> is
	// observable.
	lineGranular bool
}

// NewCollision prepares an attack. It panics on an invalid key, mirroring
// misuse rather than runtime failure.
func NewCollision(cfg CollisionConfig) *Collision {
	src := rng.New(cfg.Seed ^ 0xc0111510)
	key := cfg.Key
	if key == nil {
		key = make([]byte, 16)
		src.Bytes(key)
	}
	cipher, err := aes.New(key)
	if err != nil {
		panic(fmt.Sprintf("attacks: %v", err))
	}
	layout := aes.DefaultLayout()
	machine := sim.New(cfg.Sim)
	a := &Collision{
		CollisionStats: &CollisionStats{},
		cfg:            cfg,
		cipher:         cipher,
		tracer:         &aes.Tracer{Cipher: cipher, Layout: layout, Opts: cfg.TraceOpts},
		machine:        machine,
		thread:         machine.NewThread(cfg.Victim),
		src:            src,
		layout:         layout,
	}
	switch cfg.Round {
	case FinalRound:
		for i := 1; i < 16; i++ {
			a.pairs = append(a.pairs, bytePair{i: 0, j: i})
		}
	case FirstRound:
		// Round-1 lookups per table: Te0 ← bytes {0,4,8,12},
		// Te1 ← {5,9,13,1}, Te2 ← {10,14,2,6}, Te3 ← {15,3,7,11}.
		tables := [4][4]int{
			{0, 4, 8, 12},
			{5, 9, 13, 1},
			{10, 14, 2, 6},
			{15, 3, 7, 11},
		}
		for _, bytes := range tables {
			for x := 0; x < 4; x++ {
				for y := x + 1; y < 4; y++ {
					a.pairs = append(a.pairs, bytePair{
						i: bytes[x], j: bytes[y], lineGranular: true,
					})
				}
			}
		}
	default:
		panic(fmt.Sprintf("attacks: unknown round %d", cfg.Round))
	}
	a.groups = make([]*stats.Grouped, len(a.pairs))
	for p := range a.groups {
		size := 256
		if a.pairs[p].lineGranular {
			size = 16
		}
		a.groups[p] = stats.NewGrouped(size)
	}
	a.truth = make([]int, len(a.pairs))
	for p := range a.pairs {
		a.truth[p] = a.computeTrueXor(p)
	}
	return a
}

// Stats returns the attack's mergeable measurement state. The returned
// value aliases the attack's live accumulators: Clone it before merging
// into an aggregate.
func (a *Collision) Stats() *CollisionStats { return a.CollisionStats }

// Pairs returns the number of XOR relations the attack recovers.
func (s *CollisionStats) Pairs() int { return len(s.pairs) }

// Samples returns the number of measurements collected so far.
func (s *CollisionStats) Samples() uint64 { return s.n }

// SigmaT returns the standard deviation of the measured encryption times,
// the sigma_T of Equation 5.
func (s *CollisionStats) SigmaT() float64 { return s.timing.StdDev() }

// MeanTime returns the mean measured encryption time in cycles.
func (s *CollisionStats) MeanTime() float64 { return s.timing.Mean() }

// Clone returns an independent deep copy of s, the seed for an aggregate
// that merges several shards' states without disturbing them.
func (s *CollisionStats) Clone() *CollisionStats {
	c := &CollisionStats{
		pairs:  s.pairs,
		truth:  s.truth,
		groups: make([]*stats.Grouped, len(s.groups)),
		timing: s.timing,
		n:      s.n,
	}
	for p := range s.groups {
		c.groups[p] = s.groups[p].Clone()
	}
	return c
}

// Merge folds other's measurements into s, as if s had collected them
// itself. Both states must come from the same attack configuration — same
// pair set and same victim key (identical ground truth); Merge panics
// otherwise, because merging measurements of different victims is a bug,
// not data. Merge order is up to the caller; the parallel engine always
// merges in shard-index order so the folded floats are reproducible.
func (s *CollisionStats) Merge(other *CollisionStats) {
	if len(s.pairs) != len(other.pairs) {
		panic(fmt.Sprintf("attacks: merging collision stats with %d pairs into %d pairs",
			len(other.pairs), len(s.pairs)))
	}
	for p := range s.truth {
		if s.truth[p] != other.truth[p] {
			panic("attacks: merging collision stats of different victim keys")
		}
	}
	for p := range s.groups {
		s.groups[p].Merge(other.groups[p])
	}
	s.timing.Merge(other.timing)
	s.n += other.n
}

// cleanCache restores the attacker's "clean cache" precondition between
// measurements: the L1 is flushed (the attacker primes/flushes the L1 data
// cache before triggering each encryption). The L2 is deliberately left
// warm — the victim's lookup tables are hot and stay resident in the 2 MB
// L2 across measurements, so every L1 miss costs the L2 hit latency and the
// timing channel is purely an L1 phenomenon, as in the paper's setup. A
// PLcache+preload victim re-runs its preload after the flush (as it would
// on the context switch back to the victim).
func (a *Collision) cleanCache() {
	a.machine.L1().Flush()
	if a.cfg.Victim.Mode == sim.ModePreload {
		pl := a.machine.L1().(*plcache.PLcache)
		for _, r := range a.cfg.Victim.SecretRegions {
			pl.Preload(a.cfg.Victim.Owner, r)
		}
	}
}

// Collect runs n one-block encryptions with random plaintexts, each from a
// clean cache, and accumulates the timing measurements. The first few
// encryptions of an attack are discarded unrecorded: they warm the L2 (the
// victim's tables become L2-resident for the rest of the attack) and their
// DRAM-latency outliers would otherwise pollute small-sample group means.
func (a *Collision) Collect(n int) {
	var pt [16]byte
	for a.warmups < 4 {
		a.warmups++
		a.src.Bytes(pt[:])
		a.cleanCache()
		_, a.trace = a.tracer.EncryptBlockInto(a.trace[:0], pt[:], 0)
		a.thread.ReplayBatch(trace.CompileInto(&a.ct, a.trace))
		a.thread.Drain()
	}
	for s := 0; s < n; s++ {
		a.src.Bytes(pt[:])
		a.cleanCache()
		start := a.thread.Cycle()
		var ct [16]byte
		ct, a.trace = a.tracer.EncryptBlockInto(a.trace[:0], pt[:], 0)
		a.thread.ReplayBatch(trace.CompileInto(&a.ct, a.trace))
		a.thread.Drain()
		elapsed := a.thread.Cycle() - start
		a.timing.Add(elapsed)
		a.n++

		for p, pair := range a.pairs {
			var key int
			if a.cfg.Round == FinalRound {
				key = int(ct[pair.i] ^ ct[pair.j])
			} else {
				key = int(pt[pair.i]^pt[pair.j]) >> 4
			}
			a.groups[p].Add(key, elapsed)
		}
	}
}

// TrueXor returns the ground-truth XOR value for pair p: for the final
// round, k10_i ^ k10_j; for the first round, the high nibble of k_i ^ k_j.
func (s *CollisionStats) TrueXor(p int) int { return s.truth[p] }

// computeTrueXor derives the ground truth for pair p from the victim's key
// schedule at construction time.
func (a *Collision) computeTrueXor(p int) int {
	pair := a.pairs[p]
	if a.cfg.Round == FinalRound {
		k10 := a.cipher.LastRoundKey()
		return int(k10[pair.i] ^ k10[pair.j])
	}
	k := a.cipherKeyBytes()
	return int(k[pair.i]^k[pair.j]) >> 4
}

// cipherKeyBytes reconstructs the first-round key bytes (the AES key
// itself) from the schedule via a known-plaintext identity: the first four
// round-key words are the key.
func (a *Collision) cipherKeyBytes() [16]byte {
	// Encrypt the zero block while recording round-1 lookup indices:
	// index = key byte for zero plaintext.
	rec := &roundOneRec{}
	var out [16]byte
	a.cipher.Encrypt(out[:], make([]byte, 16), rec)
	return rec.key
}

// roundOneRec recovers the whitened state of round 1 (= key bytes for zero
// plaintext) from the lookup callback order, which is fixed.
type roundOneRec struct {
	key [16]byte
	pos int
}

// byteOrder is the state-byte position of each of the 16 round-1 lookups in
// emission order (see aes.Cipher.Encrypt).
var byteOrder = [16]int{0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11}

// Lookup implements aes.Recorder.
func (r *roundOneRec) Lookup(table int, index byte, round int, first bool) {
	if round == 1 && r.pos < 16 {
		r.key[byteOrder[r.pos]] = index
		r.pos++
	}
}

// RecoveredXor returns the attack's current estimate for pair p: the group
// key with the minimum mean encryption time (the collision value).
func (s *CollisionStats) RecoveredXor(p int) int { return s.groups[p].ArgMin() }

// CorrectPairs returns how many of the XOR relations are currently
// recovered correctly.
func (s *CollisionStats) CorrectPairs() int {
	n := 0
	for p := range s.pairs {
		if s.RecoveredXor(p) == s.TrueXor(p) {
			n++
		}
	}
	return n
}

// Success reports whether every XOR relation is recovered (full key
// recovery up to one guessed byte, as in Section II.C).
func (s *CollisionStats) Success() bool { return s.CorrectPairs() == len(s.pairs) }

// TimingChart returns the Figure 2 series for pair p: for each XOR value,
// the mean encryption time minus the grand mean (NaN-free: empty groups
// report 0 deviation). The collision value shows the minimum.
func (s *CollisionStats) TimingChart(p int) []float64 {
	g := s.groups[p]
	grand := g.GrandMean()
	out := make([]float64, g.Len())
	for k := range out {
		if g.Count(k) == 0 {
			continue
		}
		out[k] = g.Mean(k) - grand
	}
	return out
}

// SearchResult reports a measurements-to-success search.
type SearchResult struct {
	// Measurements is the sample count at which the attack first
	// succeeded (meaningful only when Success).
	Measurements uint64
	Success      bool
	// CorrectPairs is the best pair count reached.
	CorrectPairs int
	// SigmaT is the observed timing standard deviation.
	SigmaT float64
}

// MeasurementsToSuccess collects samples in batches until the attack
// recovers every XOR relation or maxSamples is reached — the procedure
// behind Table III's "# measurements" row.
func MeasurementsToSuccess(cfg CollisionConfig, batch, maxSamples int) SearchResult {
	res, _ := MeasurementsToSuccessCtx(context.Background(), cfg, batch, maxSamples)
	return res
}

// MeasurementsToSuccessCtx is MeasurementsToSuccess with cooperative
// cancellation between batches. Unlike the sharded search, an interrupted
// serial search still returns the partial result alongside ctx's error, so
// an interactive caller (rfattack) can report how far the attack got before
// the interrupt; batches already collected are reflected in the result. The
// returned error is nil iff the search ran to completion or success.
func MeasurementsToSuccessCtx(ctx context.Context, cfg CollisionConfig, batch, maxSamples int) (SearchResult, error) {
	a := NewCollision(cfg)
	best := 0
	for a.Samples() < uint64(maxSamples) {
		if err := ctx.Err(); err != nil {
			return SearchResult{
				Measurements: a.Samples(),
				Success:      false,
				CorrectPairs: best,
				SigmaT:       a.SigmaT(),
			}, err
		}
		n := batch
		if rem := maxSamples - int(a.Samples()); n > rem {
			n = rem
		}
		a.Collect(n)
		if c := a.CorrectPairs(); c > best {
			best = c
		}
		if a.Success() {
			return SearchResult{
				Measurements: a.Samples(),
				Success:      true,
				CorrectPairs: a.Pairs(),
				SigmaT:       a.SigmaT(),
			}, nil
		}
	}
	return SearchResult{
		Measurements: a.Samples(),
		Success:      false,
		CorrectPairs: best,
		SigmaT:       a.SigmaT(),
	}, nil
}
