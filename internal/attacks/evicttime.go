package attacks

import (
	"randfill/internal/cache"
	"randfill/internal/core"
	"randfill/internal/mem"
	"randfill/internal/rng"
)

// EvictTimeConfig configures an Evict-Time experiment (contention based,
// timing-driven): the attacker evicts one cache set, triggers the victim,
// and measures the victim's execution time — statistically higher when the
// victim's secret access maps to the evicted set.
type EvictTimeConfig struct {
	NewCache func(src *rng.Source) cache.Cache
	// Sets and Ways describe the geometry the attacker targets.
	Sets, Ways int
	// TargetSet is the set the attacker repeatedly evicts.
	TargetSet int
	// Window is the victim's random fill window.
	Window rng.Window
	// VictimRegion is the victim's table.
	VictimRegion mem.Region
	// AttackerBase is the first line of the attacker's eviction data.
	AttackerBase mem.Line
	Trials       int
	Seed         uint64
}

// EvictTimeResult reports the mean victim "time" (miss count, the
// functional proxy for latency) conditioned on whether the victim's access
// mapped to the evicted set.
type EvictTimeResult struct {
	MeanTimeTarget float64 // victim used the evicted set
	MeanTimeOther  float64 // victim used another set
	// Signal is the difference; a positive signal lets the attacker
	// identify accesses to the target set.
	Signal float64
	Trials int
}

// EvictTime mounts the attack. The victim's per-trial work is: warm its
// whole table, then perform one secret-dependent access; the attacker's
// eviction happens between warm-up and the secret access, so the secret
// access misses iff it maps to the evicted set (under demand fetch).
func EvictTime(cfg EvictTimeConfig) EvictTimeResult {
	src := rng.New(cfg.Seed ^ 0xe71c)
	c := cfg.NewCache(src.Split(1))
	eng := core.NewEngine(c, src.Split(2))
	eng.SetOwner(victimDomain)

	m := cfg.VictimRegion.NumLines()
	first := cfg.VictimRegion.FirstLine()

	var sumTarget, sumOther float64
	var nTarget, nOther int

	for trial := 0; trial < cfg.Trials; trial++ {
		// Victim warm-up: demand-load the whole table (the window only
		// protects the secret access pattern; warming is public).
		asDomain(c, victimDomain)
		eng.SetRR(0, 0)
		for i := 0; i < m; i++ {
			if !c.Lookup(first+mem.Line(i), false) {
				c.Fill(first+mem.Line(i), cache.FillOpts{})
			}
		}
		// Evict: attacker fills the target set with its own lines.
		asDomain(c, attackerDomain)
		for k := 0; k < cfg.Ways; k++ {
			c.Fill(cfg.AttackerBase+mem.Line(k*cfg.Sets+cfg.TargetSet), cache.FillOpts{Owner: attackerDomain})
		}
		// Time: victim performs one secret access under its window.
		asDomain(c, victimDomain)
		eng.SetRR(cfg.Window.A, cfg.Window.B)
		secret := src.Intn(m)
		line := first + mem.Line(secret)
		time := 1.0
		if !eng.Access(line, false) {
			time += 10 // miss penalty in arbitrary units
		}
		if int(uint64(line)&uint64(cfg.Sets-1)) == cfg.TargetSet {
			sumTarget += time
			nTarget++
		} else {
			sumOther += time
			nOther++
		}
	}
	res := EvictTimeResult{Trials: cfg.Trials}
	if nTarget > 0 {
		res.MeanTimeTarget = sumTarget / float64(nTarget)
	}
	if nOther > 0 {
		res.MeanTimeOther = sumOther / float64(nOther)
	}
	res.Signal = res.MeanTimeTarget - res.MeanTimeOther
	return res
}
