package attacks

import (
	"math"
	"testing"

	"randfill/internal/cache"
	"randfill/internal/nomo"
	"randfill/internal/rng"
	"randfill/internal/rpcache"
)

func rp32k(src *rng.Source) cache.Cache {
	return rpcache.New(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}, src)
}

func nomo32k(src *rng.Source) cache.Cache {
	return nomo.New(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}, 2, 1)
}

func TestPrimeProbeDefeatedByRPcache(t *testing.T) {
	// RPcache deflects cross-domain evictions to random sets and swaps
	// the permutation, so the attacker's observed eviction set carries
	// no information about the victim's address.
	res := PrimeProbe(PrimeProbeConfig{
		NewCache:     rp32k,
		Sets:         128,
		Ways:         4,
		Window:       rng.Window{},
		VictimRegion: table(),
		AttackerBase: 0x100000,
		Trials:       400,
		Seed:         5,
	})
	if res.ExactAccuracy > 0.2 {
		t.Errorf("prime-probe accuracy %v against RPcache, want ≈ chance", res.ExactAccuracy)
	}
}

func TestPrimeProbeDefeatedByNoMo(t *testing.T) {
	// NoMo reserves ways per thread: the victim's fill lands in its own
	// reserved way instead of evicting the attacker's prime data, so the
	// probe sees nothing.
	res := PrimeProbe(PrimeProbeConfig{
		NewCache:     nomo32k,
		Sets:         128,
		Ways:         4,
		Window:       rng.Window{},
		VictimRegion: table(),
		AttackerBase: 0x100000,
		Trials:       400,
		Seed:         6,
	})
	if res.ExactAccuracy > 0.1 {
		t.Errorf("prime-probe accuracy %v against NoMo, want ≈ 0", res.ExactAccuracy)
	}
}

func TestFlushReloadStillBreaksRPcacheAndNoMo(t *testing.T) {
	// The paper's central argument: partitioning- and randomization-
	// based secure caches only target contention; a reuse based attack
	// (Flush-Reload) works against them exactly as against the SA cache,
	// because they still demand-fetch.
	for _, tc := range []struct {
		name string
		mk   func(src *rng.Source) cache.Cache
	}{
		{"rpcache", rp32k},
		{"nomo", nomo32k},
	} {
		name, mk := tc.name, tc.mk
		res := FlushReload(FlushReloadConfig{
			NewCache: mk,
			Window:   rng.Window{}, // demand fetch
			Region:   table(),
			Trials:   2000,
			Seed:     7,
		})
		if res.Accuracy != 1 {
			t.Errorf("%s: flush-reload accuracy %v, want 1 (reuse attacks unaffected)",
				name, res.Accuracy)
		}
		if res.MutualInfo < 3.9 {
			t.Errorf("%s: MI %v bits, want ≈ 4", name, res.MutualInfo)
		}
	}
}

func TestRandomFillOnRPcacheClosesBothChannels(t *testing.T) {
	// The composition the paper proposes: a randomization-based secure
	// cache for contention attacks + random fill for reuse attacks.
	pp := PrimeProbe(PrimeProbeConfig{
		NewCache:     rp32k,
		Sets:         128,
		Ways:         4,
		Window:       rng.Symmetric(32),
		VictimRegion: table(),
		AttackerBase: 0x100000,
		Trials:       300,
		Seed:         8,
	})
	if pp.ExactAccuracy > 0.2 {
		t.Errorf("prime-probe accuracy %v on RF+RPcache", pp.ExactAccuracy)
	}
	fr := FlushReload(FlushReloadConfig{
		NewCache: rp32k,
		Window:   rng.Symmetric(32),
		Region:   table(),
		Trials:   8000,
		Seed:     9,
	})
	if fr.Accuracy > 0.1 {
		t.Errorf("flush-reload accuracy %v on RF+RPcache, want ≈ 1/32", fr.Accuracy)
	}
	if fr.MutualInfo > 1.0 {
		t.Errorf("flush-reload MI %v bits on RF+RPcache", fr.MutualInfo)
	}
}

func TestEvictTimeDefeatedByRPcache(t *testing.T) {
	res := EvictTime(EvictTimeConfig{
		NewCache:     rp32k,
		Sets:         128,
		Ways:         4,
		TargetSet:    int(table().FirstLine()) & 127,
		Window:       rng.Window{},
		VictimRegion: table(),
		AttackerBase: 0x100000,
		Trials:       3000,
		Seed:         10,
	})
	if math.Abs(res.Signal) > 2.5 {
		t.Errorf("evict-time signal %v against RPcache, want ≈ 0", res.Signal)
	}
}

func TestEvictTimeDefeatedByNoMo(t *testing.T) {
	res := EvictTime(EvictTimeConfig{
		NewCache:     nomo32k,
		Sets:         128,
		Ways:         4,
		TargetSet:    int(table().FirstLine()) & 127,
		Window:       rng.Window{},
		VictimRegion: table(),
		AttackerBase: 0x100000,
		Trials:       3000,
		Seed:         11,
	})
	// The victim's table lives in its reserved + shared ways; the
	// attacker evicting the shared pool can still cause some victim
	// misses, but far weaker than on the SA cache (signal ≈ 10 there).
	if math.Abs(res.Signal) > 5 {
		t.Errorf("evict-time signal %v against NoMo", res.Signal)
	}
}
