package attacks

import "randfill/internal/cache"

// domainCache is implemented by caches whose behaviour depends on the
// accessing trust domain (RPcache). The functional attacks switch domains
// between attacker and victim operations when the cache supports it.
type domainCache interface {
	SetActiveDomain(int)
}

// asDomain sets the active trust domain if the cache is domain-aware.
func asDomain(c cache.Cache, d int) {
	if dc, ok := c.(domainCache); ok {
		dc.SetActiveDomain(d)
	}
}

// Attacker and victim trust domain ids used by the functional attacks.
const (
	attackerDomain = 0
	victimDomain   = 1
)
