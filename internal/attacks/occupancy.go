package attacks

import (
	"math"

	"randfill/internal/mem"
	"randfill/internal/rng"
	"randfill/internal/securecache"
)

// OccupancyResult summarizes a cache-occupancy experiment: how much the
// attacker learns about the victim's working-set size from its own misses.
type OccupancyResult struct {
	// Accuracy is the fraction of held-out rounds in which a maximum-
	// a-posteriori decoder trained on the other rounds recovered the
	// victim's working-set class from the attacker's probe-miss count.
	Accuracy float64
	// MutualInfo is the empirical mutual information in bits between the
	// victim's working-set class and the attacker's probe-miss count.
	MutualInfo float64
	// InputBits is log2(len(VictimSizes)) — the channel input entropy.
	InputBits float64
	// MeanProbeMisses[i] is the mean attacker probe-miss count when the
	// victim runs with working set VictimSizes[i].
	MeanProbeMisses []float64
	// Trials is the total number of prime → victim → probe rounds.
	Trials int
}

// OccupancyConfig configures the occupancy attack. Unlike Flush-Reload this
// channel needs no shared memory and no addresses in common: the attacker
// only counts its own misses, so it works (or fails) purely on how a design
// couples the two parties' capacity use.
type OccupancyConfig struct {
	// NewCache builds the shared cache under attack.
	NewCache func(src *rng.Source) securecache.SecureCache
	// Lines is the number of attacker prime lines (default: the cache's
	// full capacity, the classic whole-cache occupancy probe).
	Lines int
	// VictimSizes are the victim working-set sizes (in lines) forming the
	// channel's input alphabet. At least two distinct sizes are needed for
	// a non-trivial channel.
	VictimSizes []int
	// Passes is how many sweeps the victim makes over its working set per
	// round (default 2; the second pass re-touches lines the first pass
	// may have self-evicted).
	Passes int
	// Trials is the number of rounds per victim size class.
	Trials int
	Seed   uint64
}

// victimBase places the victim's working set far from the attacker's prime
// lines so the two parties share no addresses — the occupancy channel must
// work through capacity contention alone.
const victimBase mem.Line = 1 << 20

// Occupancy mounts the attack: the attacker primes the cache with its own
// lines, the victim sweeps a working set of secret size, and the attacker
// re-accesses its prime lines counting misses. Each evicted prime line is
// one bit of the victim's footprint; designs that randomize *placement*
// (scattercache, newcache) still leak it, while designs that *partition*
// (plcache locks, nomo reserved ways) or refuse demand fills (randfill's
// no-fill policy on the victim side still fills neighbors, so it leaks too)
// change the story. The sweep over VictimSizes recovers the response curve.
func Occupancy(cfg OccupancyConfig) OccupancyResult {
	return NewOccupancyProber(cfg).Run()
}

// occRound is one held-out measurement awaiting MAP decoding.
type occRound struct{ s, miss int }

// OccupancyProber is a reusable occupancy-attack instance: the cache and
// every histogram/scratch buffer are allocated once at construction, so each
// Run performs a full prime → victim → probe experiment without allocating
// (pinned by TestOccupancyProberZeroAlloc). The first Run of a fresh prober
// is byte-identical to Occupancy(cfg) — construction performs exactly the
// RNG draws the one-shot function performs before its round loop, and Run
// continues that stream — while later Runs continue drawing from the same
// stream (fresh rounds, same channel).
type OccupancyProber struct {
	cfg    OccupancyConfig
	src    *rng.Source
	c      securecache.SecureCache
	n      int
	passes int
	k      int
	rounds int

	joint  [][]uint64
	train  [][]uint64
	test   []occRound
	mean   []float64
	rowSum []float64
	colSum []float64
}

// NewOccupancyProber builds the cache under attack and all measurement
// scratch for repeated Runs of the configured experiment.
func NewOccupancyProber(cfg OccupancyConfig) *OccupancyProber {
	src := rng.New(cfg.Seed ^ 0x0cc0)
	c := cfg.NewCache(src.Split(1))

	n := cfg.Lines
	if n <= 0 {
		n = c.NumLines()
	}
	passes := cfg.Passes
	if passes <= 0 {
		passes = 2
	}
	k := len(cfg.VictimSizes)
	p := &OccupancyProber{
		cfg:    cfg,
		src:    src,
		c:      c,
		n:      n,
		passes: passes,
		k:      k,
		mean:   make([]float64, k),
	}
	if k == 0 || cfg.Trials <= 0 {
		return p
	}
	p.rounds = cfg.Trials * k
	// joint[s][miss] counts rounds with victim class s and miss probe
	// misses; misses range over 0..n.
	p.joint = makeHist(k, n+1)
	p.train = makeHist(k, n+1)
	p.test = make([]occRound, 0, (p.rounds+1)/2)
	p.rowSum = make([]float64, k)
	p.colSum = make([]float64, n+1)
	return p
}

// Run executes one full experiment (Trials rounds per victim class) and
// returns its result. The MeanProbeMisses slice is the prober's scratch,
// valid until the next Run; Clone it to keep across Runs.
func (p *OccupancyProber) Run() OccupancyResult {
	if p.k == 0 || p.rounds == 0 {
		return OccupancyResult{MeanProbeMisses: p.mean}
	}
	c, src := p.c, p.src
	zeroHist(p.joint)
	zeroHist(p.train)
	p.test = p.test[:0]

	for r := 0; r < p.rounds; r++ {
		s := src.Intn(p.k)
		w := p.cfg.VictimSizes[s]

		// Fresh round: empty cache, then the attacker primes its lines.
		c.Flush()
		c.SetParty(attackerDomain)
		for i := 0; i < p.n; i++ {
			c.Access(mem.Line(i), false)
		}
		// Victim: sweep a working set of secret size w.
		c.SetParty(victimDomain)
		for pass := 0; pass < p.passes; pass++ {
			for i := 0; i < w; i++ {
				c.Access(victimBase+mem.Line(i), false)
			}
		}
		// Probe: the attacker re-accesses its own lines and counts
		// misses — no victim addresses involved.
		c.SetParty(attackerDomain)
		miss := 0
		for i := 0; i < p.n; i++ {
			if !c.Access(mem.Line(i), false) {
				miss++
			}
		}

		p.joint[s][miss]++
		if r%2 == 0 {
			p.train[s][miss]++
		} else {
			p.test = append(p.test, occRound{s, miss})
		}
	}

	// Decode held-out rounds with a MAP rule over the training histogram.
	correct := 0
	for _, r := range p.test {
		best, bestCount := 0, uint64(0)
		for s := 0; s < p.k; s++ {
			if p.train[s][r.miss] > bestCount {
				best, bestCount = s, p.train[s][r.miss]
			}
		}
		if best == r.s {
			correct++
		}
	}
	acc := 0.0
	if len(p.test) > 0 {
		acc = float64(correct) / float64(len(p.test))
	}

	for s := range p.joint {
		var sum, cnt float64
		for miss, cn := range p.joint[s] {
			sum += float64(miss) * float64(cn)
			cnt += float64(cn)
		}
		p.mean[s] = 0
		if cnt > 0 {
			p.mean[s] = sum / cnt
		}
	}

	return OccupancyResult{
		Accuracy:        acc,
		MutualInfo:      mutualInfoInto(p.joint, p.rowSum, p.colSum),
		InputBits:       math.Log2(float64(p.k)),
		MeanProbeMisses: p.mean,
		Trials:          p.rounds,
	}
}

// ReuseConfig configures the design-generic reuse (flush + reload) probe.
type ReuseConfig struct {
	// NewCache builds the shared cache under attack.
	NewCache func(src *rng.Source) securecache.SecureCache
	// Region is the shared security-critical table the victim indexes
	// with its secret.
	Region mem.Region
	// Pad extends the attacker's observable range Pad lines beyond the
	// region on both sides, covering fills a windowed design may issue
	// outside the region (the paper's best case for the attacker).
	Pad int
	// Trials is the number of flush → victim-access → reload rounds.
	Trials int
	Seed   uint64
}

// Reuse mounts Flush-Reload through the SecureCache interface, so the same
// probe runs against every registered design: the victim's access follows
// whatever fill policy the design implements (demand fill for the structural
// designs, window fill for randfill). Designs that install the accessed line
// leak it on reload; randfill's no-fill policy decorrelates the reload from
// the secret.
func Reuse(cfg ReuseConfig) FlushReloadResult {
	src := rng.New(cfg.Seed ^ 0x4e5e)
	c := cfg.NewCache(src.Split(1))

	m := cfg.Region.NumLines()
	first := cfg.Region.FirstLine()

	obsLo := int64(first) - int64(cfg.Pad)
	if obsLo < 0 {
		obsLo = 0
	}
	obsHi := int64(first) + int64(m-1) + int64(cfg.Pad)
	obsCount := int(obsHi-obsLo+1) + 1
	obsNone := obsCount - 1

	joint := make([][]uint64, m)
	for i := range joint {
		joint[i] = make([]uint64, obsCount)
	}

	hits := 0
	for trial := 0; trial < cfg.Trials; trial++ {
		// Flush the observable range (clflush loop).
		c.SetParty(attackerDomain)
		for l := obsLo; l <= obsHi; l++ {
			c.Invalidate(mem.Line(l))
		}
		// Victim: one uniform secret-dependent access under the design's
		// own fill policy.
		c.SetParty(victimDomain)
		s := src.Intn(m)
		c.Access(first+mem.Line(s), false)
		// Reload: probe each observable line without disturbing state.
		obs := obsNone
		victimObserved := false
		for l := obsLo; l <= obsHi; l++ {
			if c.Probe(mem.Line(l)) {
				obs = int(l - obsLo)
				if mem.Line(l) == first+mem.Line(s) {
					victimObserved = true
				}
			}
		}
		if victimObserved {
			hits++
		}
		joint[s][obs]++
	}

	return FlushReloadResult{
		Accuracy:   float64(hits) / float64(cfg.Trials),
		MutualInfo: mutualInfo(joint),
		Trials:     cfg.Trials,
	}
}
