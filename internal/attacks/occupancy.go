package attacks

import (
	"math"

	"randfill/internal/mem"
	"randfill/internal/rng"
	"randfill/internal/securecache"
)

// OccupancyResult summarizes a cache-occupancy experiment: how much the
// attacker learns about the victim's working-set size from its own misses.
type OccupancyResult struct {
	// Accuracy is the fraction of held-out rounds in which a maximum-
	// a-posteriori decoder trained on the other rounds recovered the
	// victim's working-set class from the attacker's probe-miss count.
	Accuracy float64
	// MutualInfo is the empirical mutual information in bits between the
	// victim's working-set class and the attacker's probe-miss count.
	MutualInfo float64
	// InputBits is log2(len(VictimSizes)) — the channel input entropy.
	InputBits float64
	// MeanProbeMisses[i] is the mean attacker probe-miss count when the
	// victim runs with working set VictimSizes[i].
	MeanProbeMisses []float64
	// Trials is the total number of prime → victim → probe rounds.
	Trials int
}

// OccupancyConfig configures the occupancy attack. Unlike Flush-Reload this
// channel needs no shared memory and no addresses in common: the attacker
// only counts its own misses, so it works (or fails) purely on how a design
// couples the two parties' capacity use.
type OccupancyConfig struct {
	// NewCache builds the shared cache under attack.
	NewCache func(src *rng.Source) securecache.SecureCache
	// Lines is the number of attacker prime lines (default: the cache's
	// full capacity, the classic whole-cache occupancy probe).
	Lines int
	// VictimSizes are the victim working-set sizes (in lines) forming the
	// channel's input alphabet. At least two distinct sizes are needed for
	// a non-trivial channel.
	VictimSizes []int
	// Passes is how many sweeps the victim makes over its working set per
	// round (default 2; the second pass re-touches lines the first pass
	// may have self-evicted).
	Passes int
	// Trials is the number of rounds per victim size class.
	Trials int
	Seed   uint64
}

// victimBase places the victim's working set far from the attacker's prime
// lines so the two parties share no addresses — the occupancy channel must
// work through capacity contention alone.
const victimBase mem.Line = 1 << 20

// Occupancy mounts the attack: the attacker primes the cache with its own
// lines, the victim sweeps a working set of secret size, and the attacker
// re-accesses its prime lines counting misses. Each evicted prime line is
// one bit of the victim's footprint; designs that randomize *placement*
// (scattercache, newcache) still leak it, while designs that *partition*
// (plcache locks, nomo reserved ways) or refuse demand fills (randfill's
// no-fill policy on the victim side still fills neighbors, so it leaks too)
// change the story. The sweep over VictimSizes recovers the response curve.
func Occupancy(cfg OccupancyConfig) OccupancyResult {
	src := rng.New(cfg.Seed ^ 0x0cc0)
	c := cfg.NewCache(src.Split(1))

	n := cfg.Lines
	if n <= 0 {
		n = c.NumLines()
	}
	passes := cfg.Passes
	if passes <= 0 {
		passes = 2
	}
	k := len(cfg.VictimSizes)
	if k == 0 || cfg.Trials <= 0 {
		return OccupancyResult{MeanProbeMisses: make([]float64, k)}
	}

	// joint[s][miss] counts rounds with victim class s and miss probe
	// misses; misses range over 0..n.
	joint := make([][]uint64, k)
	for i := range joint {
		joint[i] = make([]uint64, n+1)
	}
	train := make([][]uint64, k)
	for i := range train {
		train[i] = make([]uint64, n+1)
	}
	type round struct{ s, miss int }
	var test []round

	rounds := cfg.Trials * k
	for r := 0; r < rounds; r++ {
		s := src.Intn(k)
		w := cfg.VictimSizes[s]

		// Fresh round: empty cache, then the attacker primes its lines.
		c.Flush()
		c.SetParty(attackerDomain)
		for i := 0; i < n; i++ {
			c.Access(mem.Line(i), false)
		}
		// Victim: sweep a working set of secret size w.
		c.SetParty(victimDomain)
		for p := 0; p < passes; p++ {
			for i := 0; i < w; i++ {
				c.Access(victimBase+mem.Line(i), false)
			}
		}
		// Probe: the attacker re-accesses its own lines and counts
		// misses — no victim addresses involved.
		c.SetParty(attackerDomain)
		miss := 0
		for i := 0; i < n; i++ {
			if !c.Access(mem.Line(i), false) {
				miss++
			}
		}

		joint[s][miss]++
		if r%2 == 0 {
			train[s][miss]++
		} else {
			test = append(test, round{s, miss})
		}
	}

	// Decode held-out rounds with a MAP rule over the training histogram.
	correct := 0
	for _, r := range test {
		best, bestCount := 0, uint64(0)
		for s := 0; s < k; s++ {
			if train[s][r.miss] > bestCount {
				best, bestCount = s, train[s][r.miss]
			}
		}
		if best == r.s {
			correct++
		}
	}
	acc := 0.0
	if len(test) > 0 {
		acc = float64(correct) / float64(len(test))
	}

	mean := make([]float64, k)
	for s := range joint {
		var sum, cnt float64
		for miss, cn := range joint[s] {
			sum += float64(miss) * float64(cn)
			cnt += float64(cn)
		}
		if cnt > 0 {
			mean[s] = sum / cnt
		}
	}

	return OccupancyResult{
		Accuracy:        acc,
		MutualInfo:      mutualInfo(joint),
		InputBits:       math.Log2(float64(k)),
		MeanProbeMisses: mean,
		Trials:          rounds,
	}
}

// ReuseConfig configures the design-generic reuse (flush + reload) probe.
type ReuseConfig struct {
	// NewCache builds the shared cache under attack.
	NewCache func(src *rng.Source) securecache.SecureCache
	// Region is the shared security-critical table the victim indexes
	// with its secret.
	Region mem.Region
	// Pad extends the attacker's observable range Pad lines beyond the
	// region on both sides, covering fills a windowed design may issue
	// outside the region (the paper's best case for the attacker).
	Pad int
	// Trials is the number of flush → victim-access → reload rounds.
	Trials int
	Seed   uint64
}

// Reuse mounts Flush-Reload through the SecureCache interface, so the same
// probe runs against every registered design: the victim's access follows
// whatever fill policy the design implements (demand fill for the structural
// designs, window fill for randfill). Designs that install the accessed line
// leak it on reload; randfill's no-fill policy decorrelates the reload from
// the secret.
func Reuse(cfg ReuseConfig) FlushReloadResult {
	src := rng.New(cfg.Seed ^ 0x4e5e)
	c := cfg.NewCache(src.Split(1))

	m := cfg.Region.NumLines()
	first := cfg.Region.FirstLine()

	obsLo := int64(first) - int64(cfg.Pad)
	if obsLo < 0 {
		obsLo = 0
	}
	obsHi := int64(first) + int64(m-1) + int64(cfg.Pad)
	obsCount := int(obsHi-obsLo+1) + 1
	obsNone := obsCount - 1

	joint := make([][]uint64, m)
	for i := range joint {
		joint[i] = make([]uint64, obsCount)
	}

	hits := 0
	for trial := 0; trial < cfg.Trials; trial++ {
		// Flush the observable range (clflush loop).
		c.SetParty(attackerDomain)
		for l := obsLo; l <= obsHi; l++ {
			c.Invalidate(mem.Line(l))
		}
		// Victim: one uniform secret-dependent access under the design's
		// own fill policy.
		c.SetParty(victimDomain)
		s := src.Intn(m)
		c.Access(first+mem.Line(s), false)
		// Reload: probe each observable line without disturbing state.
		obs := obsNone
		victimObserved := false
		for l := obsLo; l <= obsHi; l++ {
			if c.Probe(mem.Line(l)) {
				obs = int(l - obsLo)
				if mem.Line(l) == first+mem.Line(s) {
					victimObserved = true
				}
			}
		}
		if victimObserved {
			hits++
		}
		joint[s][obs]++
	}

	return FlushReloadResult{
		Accuracy:   float64(hits) / float64(cfg.Trials),
		MutualInfo: mutualInfo(joint),
		Trials:     cfg.Trials,
	}
}
