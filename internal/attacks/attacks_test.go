package attacks

import (
	"math"
	"testing"

	"randfill/internal/cache"
	"randfill/internal/infotheory"
	"randfill/internal/mem"
	"randfill/internal/newcache"
	"randfill/internal/rng"
	"randfill/internal/sim"
)

// attackerSim is the attacker-favoring configuration for the security
// tests: a reduced miss queue (the paper used 1 entry; we use 2 so random
// fill requests can still issue in the dense trace model — see
// experiments.attackerSim and DESIGN.md).
func attackerSim() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.MissQueue = 2
	return cfg
}

func samples(t *testing.T, full int) int {
	if testing.Short() {
		return full / 8
	}
	return full
}

func TestCollisionBreaksDemandFetch(t *testing.T) {
	// Table III "size=1": the final-round collision attack recovers the
	// full last-round key XOR relations against a demand-fetch cache.
	res := MeasurementsToSuccess(CollisionConfig{
		Sim:  attackerSim(),
		Seed: 42,
	}, 4000, samples(t, 260000))
	if testing.Short() {
		// A short run cannot finish the attack; just check progress
		// beyond the ~0.06 pairs expected by chance.
		if res.CorrectPairs < 1 {
			t.Errorf("short run recovered only %d/15 pairs", res.CorrectPairs)
		}
		return
	}
	if !res.Success {
		t.Fatalf("attack failed after %d measurements (%d/15 pairs)",
			res.Measurements, res.CorrectPairs)
	}
	// Paper: 65,000 measurements on gem5; same order of magnitude here.
	if res.Measurements > 260000 {
		t.Errorf("attack needed %d measurements", res.Measurements)
	}
}

func TestCollisionDefeatedByCoveringWindow(t *testing.T) {
	// Table III: with a window of 32 (covering the whole T4 table) the
	// attack makes no progress.
	res := MeasurementsToSuccess(CollisionConfig{
		Sim:    attackerSim(),
		Victim: sim.ThreadConfig{Mode: sim.ModeRandomFill, Window: rng.Symmetric(32)},
		Seed:   42,
	}, 10000, samples(t, 40000))
	if res.Success {
		t.Fatalf("attack succeeded against a covering window at %d measurements", res.Measurements)
	}
	if res.CorrectPairs > 3 {
		t.Errorf("attack recovered %d/15 pairs against a covering window", res.CorrectPairs)
	}
}

func TestTimingChartShowsCollisionMinimum(t *testing.T) {
	// Figure 2: the mean encryption time plotted against c0^c1 dips at
	// c0^c1 = k10_0 ^ k10_1.
	a := NewCollision(CollisionConfig{Sim: attackerSim(), Seed: 7})
	a.Collect(samples(t, 120000))
	chart := a.TimingChart(0) // pair (0,1)
	truth := a.TrueXor(0)
	if len(chart) != 256 {
		t.Fatalf("chart has %d points", len(chart))
	}
	// The collision value must show a clear dip: strictly below the
	// grand mean and among the lowest handful of the 256 group means.
	// (Recovering it as the exact minimum needs the full ~200k-sample
	// budget, which TestCollisionBreaksDemandFetch exercises.)
	if chart[truth] >= 0 {
		t.Errorf("mean time at the collision value is %v, want below the grand mean", chart[truth])
	}
	if !testing.Short() {
		rank := 0
		for _, v := range chart {
			if v < chart[truth] {
				rank++
			}
		}
		if rank > 10 {
			t.Errorf("collision value ranked %d of 256 by mean time, want a clear dip", rank)
		}
	}
	minVal := math.Inf(1)
	for _, v := range chart {
		if v < minVal {
			minVal = v
		}
	}
	if minVal >= 0 {
		t.Errorf("chart minimum %v not below the grand mean", minVal)
	}
}

func TestFirstRoundAttackSignal(t *testing.T) {
	// The first-round variant recovers line-granular key-byte XORs; with
	// a moderate budget it should recover far more of the 24 relations
	// than the 1.5 expected by chance.
	a := NewCollision(CollisionConfig{Sim: attackerSim(), Round: FirstRound, Seed: 9})
	a.Collect(samples(t, 80000))
	if a.Pairs() != 24 {
		t.Fatalf("first-round pairs = %d, want 24", a.Pairs())
	}
	correct := a.CorrectPairs()
	min := 8
	if testing.Short() {
		min = 3
	}
	if correct < min {
		t.Errorf("first-round attack recovered %d/24 pairs, want >= %d", correct, min)
	}
}

func TestPreloadDefendsButCollisionlessly(t *testing.T) {
	// PLcache+preload: all table accesses hit, so the timing carries no
	// collision signal (the constant-time defense the paper compares
	// against).
	lay := layoutRegions()
	cfg := CollisionConfig{
		Sim: func() sim.Config {
			c := attackerSim()
			c.L1Kind = sim.KindPLcache
			return c
		}(),
		Victim: sim.ThreadConfig{Mode: sim.ModePreload, SecretRegions: lay, Owner: 1},
		Seed:   11,
	}
	a := NewCollision(cfg)
	a.Collect(samples(t, 16000))
	if c := a.CorrectPairs(); c > 3 {
		t.Errorf("attack recovered %d/15 pairs against PLcache+preload", c)
	}
}

func TestDisableCacheDefendsCollision(t *testing.T) {
	a := NewCollision(CollisionConfig{
		Sim:    attackerSim(),
		Victim: sim.ThreadConfig{Mode: sim.ModeDisableSecret},
		Seed:   13,
	})
	a.Collect(samples(t, 16000))
	if c := a.CorrectPairs(); c > 3 {
		t.Errorf("attack recovered %d/15 pairs with the cache disabled", c)
	}
}

func layoutRegions() []mem.Region {
	// The five encryption tables, as the preload baseline locks them.
	out := make([]mem.Region, 5)
	for i := range out {
		out[i] = mem.Region{Base: mem.Addr(0x10000 + i*1024), Size: 1024}
	}
	return out
}

func TestCollisionSigmaTracked(t *testing.T) {
	a := NewCollision(CollisionConfig{Sim: attackerSim(), Seed: 1})
	a.Collect(500)
	if a.Samples() != 500 {
		t.Errorf("Samples = %d", a.Samples())
	}
	if a.SigmaT() <= 0 {
		t.Error("sigmaT not tracked")
	}
	if a.MeanTime() <= 0 {
		t.Error("mean time not tracked")
	}
}

func TestCollisionFixedKeyGroundTruth(t *testing.T) {
	key := []byte("sixteen byte key")
	a := NewCollision(CollisionConfig{Sim: attackerSim(), Key: key, Seed: 2})
	// Ground truth must be derived from the supplied key
	// deterministically.
	b := NewCollision(CollisionConfig{Sim: attackerSim(), Key: key, Seed: 3})
	for p := 0; p < a.Pairs(); p++ {
		if a.TrueXor(p) != b.TrueXor(p) {
			t.Fatalf("pair %d ground truth differs across instances", p)
		}
	}
}

// --- Flush-Reload ---

func sa32k(src *rng.Source) cache.Cache {
	return cache.NewSetAssoc(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}, cache.LRU{})
}

func table() mem.Region { return mem.Region{Base: 0x11000, Size: 1024} }

func TestFlushReloadBreaksDemandFetch(t *testing.T) {
	res := FlushReload(FlushReloadConfig{
		NewCache: sa32k,
		Window:   rng.Window{},
		Region:   table(),
		Trials:   4000,
		Seed:     1,
	})
	if res.Accuracy != 1 {
		t.Errorf("accuracy = %v, want 1 under demand fetch", res.Accuracy)
	}
	// The demand-fetch storage channel carries log2(16) = 4 bits.
	if res.MutualInfo < 3.9 {
		t.Errorf("mutual info = %v bits, want ≈ 4", res.MutualInfo)
	}
}

func TestFlushReloadMitigatedByRandomFill(t *testing.T) {
	w := rng.Symmetric(32)
	res := FlushReload(FlushReloadConfig{
		NewCache: sa32k,
		Window:   w,
		Region:   table(),
		Trials:   20000,
		Seed:     2,
	})
	if res.Accuracy > 0.10 {
		t.Errorf("victim line observed with probability %v, want ≈ 1/32", res.Accuracy)
	}
	cap := infotheory.Capacity(16, w.A, w.B)
	// Empirical MI estimates carry positive bias ~ (cells)/(2N ln 2);
	// allow generous slack above the analytic capacity.
	if res.MutualInfo > cap+0.2 {
		t.Errorf("empirical MI %v far above capacity %v", res.MutualInfo, cap)
	}
	if res.MutualInfo > 1.5 {
		t.Errorf("MI %v bits: channel not usefully narrowed (demand = 4 bits)", res.MutualInfo)
	}
}

func TestFlushReloadCapacityTrend(t *testing.T) {
	// MI must fall monotonically (within noise) as the window grows.
	prev := math.Inf(1)
	for _, size := range []int{1, 4, 16, 32} {
		res := FlushReload(FlushReloadConfig{
			NewCache: sa32k,
			Window:   rng.Symmetric(size),
			Region:   table(),
			Trials:   12000,
			Seed:     3,
		})
		if res.MutualInfo > prev+0.1 {
			t.Errorf("MI rose at window %d: %v > %v", size, res.MutualInfo, prev)
		}
		prev = res.MutualInfo
	}
}

// --- Prime-Probe ---

func TestPrimeProbeBreaksSACache(t *testing.T) {
	res := PrimeProbe(PrimeProbeConfig{
		NewCache:     sa32k,
		Sets:         128,
		Ways:         4,
		Window:       rng.Window{},
		VictimRegion: table(),
		AttackerBase: 0x100000,
		Trials:       500,
		Seed:         1,
	})
	if res.ExactAccuracy < 0.95 {
		t.Errorf("prime-probe exact accuracy %v on SA demand-fetch, want ≈ 1", res.ExactAccuracy)
	}
}

func TestPrimeProbeDefeatedByNewcache(t *testing.T) {
	res := PrimeProbe(PrimeProbeConfig{
		NewCache: func(src *rng.Source) cache.Cache {
			return newcache.New(32*1024, 4, src)
		},
		Sets:         128,
		Ways:         4,
		Window:       rng.Window{},
		VictimRegion: table(),
		AttackerBase: 0x100000,
		Trials:       500,
		Seed:         2,
	})
	if res.ExactAccuracy > 0.2 {
		t.Errorf("prime-probe accuracy %v against Newcache, want ≈ chance", res.ExactAccuracy)
	}
}

func TestPrimeProbeStillLeaksUnderRandomFill(t *testing.T) {
	// Random fill targets reuse based attacks only: a contention attack
	// still localizes the victim's access to within the fill window
	// (Section VIII: combine with Newcache for contention defense).
	w := rng.Symmetric(8)
	res := PrimeProbe(PrimeProbeConfig{
		NewCache:     sa32k,
		Sets:         128,
		Ways:         4,
		Window:       w,
		VictimRegion: table(),
		AttackerBase: 0x100000,
		Trials:       500,
		Seed:         3,
	})
	if res.WindowAccuracy < 0.8 {
		t.Errorf("window accuracy %v: contention leak should persist", res.WindowAccuracy)
	}
	if res.ExactAccuracy > 0.5 {
		t.Errorf("exact accuracy %v: random fill should at least blur the set", res.ExactAccuracy)
	}
}

// --- Evict-Time ---

func TestEvictTimeBreaksSACache(t *testing.T) {
	res := EvictTime(EvictTimeConfig{
		NewCache:     sa32k,
		Sets:         128,
		Ways:         4,
		TargetSet:    int(table().FirstLine()) & 127,
		Window:       rng.Window{},
		VictimRegion: table(),
		AttackerBase: 0x100000,
		Trials:       4000,
		Seed:         1,
	})
	if res.Signal < 5 {
		t.Errorf("evict-time signal %v on SA cache, want ≈ 10", res.Signal)
	}
}

func TestEvictTimeDefeatedByNewcache(t *testing.T) {
	res := EvictTime(EvictTimeConfig{
		NewCache: func(src *rng.Source) cache.Cache {
			return newcache.New(32*1024, 4, src)
		},
		Sets:         128,
		Ways:         4,
		TargetSet:    int(table().FirstLine()) & 127,
		Window:       rng.Window{},
		VictimRegion: table(),
		AttackerBase: 0x100000,
		Trials:       4000,
		Seed:         2,
	})
	if math.Abs(res.Signal) > 2 {
		t.Errorf("evict-time signal %v against Newcache, want ≈ 0", res.Signal)
	}
}

// TestCollectAllocFree pins the collision attack's per-sample measurement
// loop at zero heap allocations once its scratch buffers are warm: each
// sample reuses the tracer's recorder, the attack's trace buffer and the
// thread's fill queue (see DESIGN.md §7).
func TestCollectAllocFree(t *testing.T) {
	a := NewCollision(CollisionConfig{Sim: attackerSim(), Seed: 7})
	a.Collect(8) // warm the trace and fill-queue backing arrays
	if got := testing.AllocsPerRun(50, func() {
		a.Collect(1)
	}); got != 0 {
		t.Errorf("Collect: %v allocs/op, want 0", got)
	}
}
