package attacks

import (
	"testing"

	"randfill/internal/cache"
	"randfill/internal/mem"
	"randfill/internal/rng"
	"randfill/internal/securecache"
)

func occFactory(name string) func(src *rng.Source) securecache.SecureCache {
	return func(src *rng.Source) securecache.SecureCache {
		c, err := securecache.New(name, securecache.Config{
			Geom: cache.Geometry{SizeBytes: 4 * 1024, Ways: 4}, // 64 lines
		}, src)
		if err != nil {
			panic(err)
		}
		return c
	}
}

// TestOccupancyLeaksOnAllDesigns: the occupancy channel needs no shared
// addresses, so placement randomization does not close it — every registered
// design leaks the victim's working-set size through the attacker's own
// probe misses.
func TestOccupancyLeaksOnAllDesigns(t *testing.T) {
	for _, d := range securecache.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			// Prime 3/4 of capacity: a full-capacity prime self-thrashes
			// on way-partitioned designs (nomo grants each party only 3 of
			// 4 ways), saturating the probe at "all miss" for every victim
			// size. A calibrated attacker avoids that.
			res := Occupancy(OccupancyConfig{
				NewCache:    occFactory(d.Name),
				Lines:       48,
				VictimSizes: []int{8, 48},
				Trials:      150,
				Seed:        101,
			})
			if res.Trials != 300 {
				t.Fatalf("Trials = %d, want 300", res.Trials)
			}
			if res.InputBits != 1 {
				t.Fatalf("InputBits = %v, want 1", res.InputBits)
			}
			// Chance is 0.5; a 6x footprint gap should be clearly visible
			// on every design.
			if res.Accuracy < 0.75 {
				t.Errorf("accuracy %.3f: occupancy decoder near chance", res.Accuracy)
			}
			if res.MutualInfo < 0.2 {
				t.Errorf("mutual info %.3f bits: occupancy channel closed", res.MutualInfo)
			}
			if res.MeanProbeMisses[1] <= res.MeanProbeMisses[0] {
				t.Errorf("probe misses not increasing in footprint: %v", res.MeanProbeMisses)
			}
		})
	}
}

// TestOccupancyFootprintCurve: the attacker's mean miss count is monotone in
// the victim's working-set size — the response curve the size sweep plots.
func TestOccupancyFootprintCurve(t *testing.T) {
	res := Occupancy(OccupancyConfig{
		NewCache:    occFactory("scattercache"),
		VictimSizes: []int{4, 16, 48},
		Trials:      100,
		Seed:        7,
	})
	m := res.MeanProbeMisses
	if len(m) != 3 || !(m[0] < m[1] && m[1] < m[2]) {
		t.Fatalf("mean probe misses %v not monotone in victim size", m)
	}
}

// TestOccupancyDegenerate: empty configurations return a zero result rather
// than panicking or dividing by zero.
func TestOccupancyDegenerate(t *testing.T) {
	res := Occupancy(OccupancyConfig{NewCache: occFactory("mirage")})
	if res.Accuracy != 0 || res.MutualInfo != 0 || res.Trials != 0 {
		t.Fatalf("degenerate config produced %+v", res)
	}
	one := Occupancy(OccupancyConfig{
		NewCache:    occFactory("mirage"),
		VictimSizes: []int{16},
		Trials:      20,
		Seed:        3,
	})
	if one.MutualInfo != 0 {
		t.Fatalf("single-class channel has MI %.3f, want 0", one.MutualInfo)
	}
	if one.InputBits != 0 {
		t.Fatalf("single-class InputBits = %v, want 0", one.InputBits)
	}
}

// TestReuseSeparatesFillPolicies: the reuse probe through the SecureCache
// interface reproduces the paper's core contrast — demand-fill designs leak
// the victim's accessed line on reload, while randfill's no-fill policy
// decorrelates the reload from the secret.
func TestReuseSeparatesFillPolicies(t *testing.T) {
	region := mem.Region{Base: 0x10000 + 4*1024, Size: 1024} // 16 lines
	run := func(name string, pad int) FlushReloadResult {
		return Reuse(ReuseConfig{
			NewCache: occFactory(name),
			Region:   region,
			Pad:      pad,
			Trials:   600,
			Seed:     55,
		})
	}
	demand := run("scattercache", 0)
	if demand.Accuracy < 0.95 {
		t.Errorf("scattercache reuse accuracy %.3f: demand fill should leak nearly always", demand.Accuracy)
	}
	if demand.MutualInfo < 3 {
		t.Errorf("scattercache reuse MI %.3f bits, want near log2(16)=4", demand.MutualInfo)
	}
	// Give the attacker the paper's best case against randfill: observe the
	// whole window-extended range.
	rf := run("randfill", 16)
	if rf.Accuracy > 0.2 {
		t.Errorf("randfill reuse accuracy %.3f: no-fill should break reload", rf.Accuracy)
	}
	// The window fill still reveals the accessed line's neighborhood, so
	// residual MI is nonzero (Section V.B); with a [-16,15] window over a
	// 16-line table it stays well under half the demand-fill leak.
	if rf.MutualInfo > 1.5 {
		t.Errorf("randfill reuse MI %.3f bits: window fill leaks too much", rf.MutualInfo)
	}
	if demand.Accuracy <= rf.Accuracy || demand.MutualInfo <= rf.MutualInfo {
		t.Errorf("reuse failed to separate fill policies: demand %+v vs randfill %+v", demand, rf)
	}
}
