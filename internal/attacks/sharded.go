package attacks

import (
	"randfill/internal/parexp"
	"randfill/internal/rng"
)

// newShards builds one collision attack per shard, all against the SAME
// victim key (the shards are one attack on one victim) but each with its
// own Split-derived plaintext stream and simulator seed. The shard plan is
// a pure function of (cfg, shards): which shard draws which random values
// never depends on how many goroutines execute them.
func newShards(cfg CollisionConfig, shards int) []*Collision {
	if shards < 1 {
		shards = 1
	}
	// Mirror NewCollision's key derivation so that, for a given cfg.Seed,
	// the sharded attack targets the same victim key as the serial one.
	root := rng.New(cfg.Seed ^ 0xc0111510)
	key := cfg.Key
	if key == nil {
		key = make([]byte, 16)
		root.Bytes(key)
	}
	out := make([]*Collision, shards)
	for s := range out {
		scfg := cfg
		scfg.Key = key
		scfg.Seed = root.SplitSeed(uint64(s))
		// Give each shard's machine (random fill engine, replacement
		// randomness) its own stream too, so shards are independent
		// Monte Carlo samples of the same victim, not replicas.
		scfg.Sim.Seed = scfg.Seed ^ 0x5ead
		out[s] = NewCollision(scfg)
	}
	return out
}

// mergeShards folds the shard states together in shard-index order and
// returns the aggregate; the shards' own accumulators are left untouched.
func mergeShards(shards []*Collision) *CollisionStats {
	agg := shards[0].Stats().Clone()
	for _, a := range shards[1:] {
		agg.Merge(a.Stats())
	}
	return agg
}

// CollectSharded runs one collision attack's measurement collection across
// a fixed shard plan: total measurements are split evenly over shards, each
// shard collects its slice on eng's worker pool, and the merged statistics
// are returned. For a fixed (cfg, total, shards) the result is
// byte-identical for any worker count — the parallel counterpart of
// NewCollision + Collect(total).
func CollectSharded(eng *parexp.Engine, cfg CollisionConfig, total, shards int) *CollisionStats {
	atks := newShards(cfg, shards)
	counts := parexp.SplitCounts(total, len(atks))
	eng.ForEach(len(atks), func(s int) { atks[s].Collect(counts[s]) })
	return mergeShards(atks)
}

// MeasurementsToSuccessSharded is the parallel measurements-to-success
// search behind Table III: the sample budget is consumed in rounds of batch
// measurements, each round split over the fixed shard plan; after every
// round the shard states merge (in shard order) and the aggregate is
// checked for full key recovery, exactly like the serial search's batch
// checkpoints. Reported Measurements is the aggregate sample count at the
// first successful checkpoint.
//
// The result is a function of (cfg, batch, maxSamples, shards) only —
// worker count changes wall-clock, never the returned numbers. Note the
// numbers do differ from the serial MeasurementsToSuccess at equal budgets:
// the shards are independent measurement streams, so the grouped means they
// merge are a different (equally valid) Monte Carlo sample of the same
// attack.
func MeasurementsToSuccessSharded(eng *parexp.Engine, cfg CollisionConfig, batch, maxSamples, shards int) SearchResult {
	atks := newShards(cfg, shards)
	best := 0
	collected := 0
	agg := mergeShards(atks) // degenerate budgets report an empty aggregate
	for collected < maxSamples {
		n := batch
		if rem := maxSamples - collected; n > rem {
			n = rem
		}
		counts := parexp.SplitCounts(n, len(atks))
		eng.ForEach(len(atks), func(s int) { atks[s].Collect(counts[s]) })
		collected += n
		agg = mergeShards(atks)
		if c := agg.CorrectPairs(); c > best {
			best = c
		}
		if agg.Success() {
			return SearchResult{
				Measurements: agg.Samples(),
				Success:      true,
				CorrectPairs: agg.Pairs(),
				SigmaT:       agg.SigmaT(),
			}
		}
	}
	return SearchResult{
		Measurements: agg.Samples(),
		Success:      false,
		CorrectPairs: best,
		SigmaT:       agg.SigmaT(),
	}
}
