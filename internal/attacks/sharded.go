package attacks

import (
	"context"

	"randfill/internal/parexp"
	"randfill/internal/rng"
)

// NewShards builds one collision attack per shard, all against the SAME
// victim key (the shards are one attack on one victim) but each with its
// own Split-derived plaintext stream and simulator seed. The shard plan is
// a pure function of (cfg, shards): which shard draws which random values
// never depends on how many goroutines execute them. It is exported so the
// resumable experiment layer can run the plan shard-by-shard, persisting
// each completed shard's Stats through the checkpoint store.
func NewShards(cfg CollisionConfig, shards int) []*Collision {
	if shards < 1 {
		shards = 1
	}
	// Mirror NewCollision's key derivation so that, for a given cfg.Seed,
	// the sharded attack targets the same victim key as the serial one.
	root := rng.New(cfg.Seed ^ 0xc0111510)
	key := cfg.Key
	if key == nil {
		key = make([]byte, 16)
		root.Bytes(key)
	}
	out := make([]*Collision, shards)
	for s := range out {
		scfg := cfg
		scfg.Key = key
		scfg.Seed = root.SplitSeed(uint64(s))
		// Give each shard's machine (random fill engine, replacement
		// randomness) its own stream too, so shards are independent
		// Monte Carlo samples of the same victim, not replicas.
		scfg.Sim.Seed = scfg.Seed ^ 0x5ead
		out[s] = NewCollision(scfg)
	}
	return out
}

// ShardSeed returns the plaintext-stream seed NewShards derives for shard s
// of cfg — the identity a checkpoint of that shard is bound to.
func ShardSeed(cfg CollisionConfig, s int) uint64 {
	return rng.New(cfg.Seed ^ 0xc0111510).SplitSeed(uint64(s))
}

// MergeShardStats folds the shard states together in shard-index order and
// returns the aggregate; the shards' own accumulators are left untouched.
func MergeShardStats(shards []*Collision) *CollisionStats {
	agg := shards[0].Stats().Clone()
	for _, a := range shards[1:] {
		agg.Merge(a.Stats())
	}
	return agg
}

// MergeStats is MergeShardStats over bare accumulator states, the form the
// checkpoint layer restores: states[0] seeds the aggregate (via Clone) and
// the rest fold in, in index order. Because the serialized states
// round-trip exactly, merging restored states is byte-identical to merging
// the live shards they were saved from.
func MergeStats(states []*CollisionStats) *CollisionStats {
	agg := states[0].Clone()
	for _, s := range states[1:] {
		agg.Merge(s)
	}
	return agg
}

// CollectShardedCtx runs one collision attack's measurement collection
// across a fixed shard plan: total measurements are split evenly over
// shards, each shard collects its slice on eng's worker pool, and the
// merged statistics are returned. For a fixed (cfg, total, shards) the
// result is byte-identical for any worker count — the parallel counterpart
// of NewCollision + Collect(total). On cancellation the partial shards are
// discarded and ctx's error is returned.
func CollectShardedCtx(ctx context.Context, eng *parexp.Engine, cfg CollisionConfig, total, shards int) (*CollisionStats, error) {
	atks := NewShards(cfg, shards)
	counts := parexp.SplitCounts(total, len(atks))
	err := eng.ForEachCtx(ctx, len(atks), func(_ context.Context, s int) error {
		atks[s].Collect(counts[s])
		return nil
	})
	if err != nil {
		return nil, err
	}
	return MergeShardStats(atks), nil
}

// CollectSharded is CollectShardedCtx without cancellation. A shard panic
// is re-panicked in the caller, as with parexp.ForEach.
func CollectSharded(eng *parexp.Engine, cfg CollisionConfig, total, shards int) *CollisionStats {
	agg, err := CollectShardedCtx(context.Background(), eng, cfg, total, shards)
	if err != nil {
		panic(err)
	}
	return agg
}

// MeasurementsToSuccessShardedCtx is the parallel measurements-to-success
// search behind Table III: the sample budget is consumed in rounds of batch
// measurements, each round split over the fixed shard plan; after every
// round the shard states merge (in shard order) and the aggregate is
// checked for full key recovery, exactly like the serial search's batch
// checkpoints. Reported Measurements is the aggregate sample count at the
// first successful checkpoint.
//
// The result is a function of (cfg, batch, maxSamples, shards) only —
// worker count changes wall-clock, never the returned numbers. Note the
// numbers do differ from the serial MeasurementsToSuccess at equal budgets:
// the shards are independent measurement streams, so the grouped means they
// merge are a different (equally valid) Monte Carlo sample of the same
// attack.
//
// Cancellation is checked between rounds and between shard collections; a
// cancelled search returns ctx's error and no result. The search's
// round-by-round early exit is why it checkpoints as one unit rather than
// per shard: a shard's stopping point depends on every other shard's
// measurements at each round boundary.
func MeasurementsToSuccessShardedCtx(ctx context.Context, eng *parexp.Engine, cfg CollisionConfig, batch, maxSamples, shards int) (SearchResult, error) {
	atks := NewShards(cfg, shards)
	best := 0
	collected := 0
	agg := MergeShardStats(atks) // degenerate budgets report an empty aggregate
	for collected < maxSamples {
		n := batch
		if rem := maxSamples - collected; n > rem {
			n = rem
		}
		counts := parexp.SplitCounts(n, len(atks))
		err := eng.ForEachCtx(ctx, len(atks), func(_ context.Context, s int) error {
			atks[s].Collect(counts[s])
			return nil
		})
		if err != nil {
			return SearchResult{}, err
		}
		collected += n
		agg = MergeShardStats(atks)
		if c := agg.CorrectPairs(); c > best {
			best = c
		}
		if agg.Success() {
			return SearchResult{
				Measurements: agg.Samples(),
				Success:      true,
				CorrectPairs: agg.Pairs(),
				SigmaT:       agg.SigmaT(),
			}, nil
		}
	}
	return SearchResult{
		Measurements: agg.Samples(),
		Success:      false,
		CorrectPairs: best,
		SigmaT:       agg.SigmaT(),
	}, nil
}

// MeasurementsToSuccessSharded is MeasurementsToSuccessShardedCtx without
// cancellation.
func MeasurementsToSuccessSharded(eng *parexp.Engine, cfg CollisionConfig, batch, maxSamples, shards int) SearchResult {
	res, err := MeasurementsToSuccessShardedCtx(context.Background(), eng, cfg, batch, maxSamples, shards)
	if err != nil {
		panic(err)
	}
	return res
}
