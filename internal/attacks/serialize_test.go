package attacks

import (
	"reflect"
	"testing"

	"randfill/internal/sim"
)

func collectedStats(t *testing.T, seed uint64, n int) *CollisionStats {
	t.Helper()
	cfg := CollisionConfig{Sim: sim.DefaultConfig(), Seed: seed}
	cfg.Sim.MissQueue = 2
	a := NewCollision(cfg)
	a.Collect(n)
	return a.Stats()
}

func TestCollisionStatsRoundTripExact(t *testing.T) {
	s := collectedStats(t, 7, 200)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got := &CollisionStats{}
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatal("decoded CollisionStats differs from original")
	}
}

// TestCollisionStatsRestoredMergeExact is the resume contract: merging a
// checkpoint-restored shard into a live one must give exactly the state an
// uninterrupted run would have — down to the float bits TimingChart reads.
func TestCollisionStatsRestoredMergeExact(t *testing.T) {
	shards := NewShards(CollisionConfig{Sim: attackerCfg(), Seed: 3}, 3)
	for _, a := range shards {
		a.Collect(120)
	}
	live := MergeShardStats(shards)

	states := make([]*CollisionStats, len(shards))
	for i, a := range shards {
		data, err := a.Stats().MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		states[i] = &CollisionStats{}
		if err := states[i].UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
	}
	restored := MergeStats(states)
	if !reflect.DeepEqual(restored, live) {
		t.Fatal("merge of restored shards differs from merge of live shards")
	}
}

func attackerCfg() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.MissQueue = 2
	return cfg
}

func TestCollisionStatsUnmarshalRejectsCorrupt(t *testing.T) {
	s := collectedStats(t, 9, 50)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]byte{
		nil,
		data[:3],
		data[:len(data)/2],
		data[:len(data)-1],
		append(append([]byte{}, data...), 0xff),
	} {
		got := &CollisionStats{}
		if err := got.UnmarshalBinary(bad); err == nil {
			t.Fatalf("len %d: want error", len(bad))
		}
	}
}

func TestSearchResultRoundTrip(t *testing.T) {
	for _, r := range []SearchResult{
		{},
		{Measurements: 123456, Success: true, CorrectPairs: 120, SigmaT: 3.25},
		{Measurements: 1 << 40, Success: false, CorrectPairs: -1, SigmaT: 0.0625},
	} {
		data, err := r.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var got SearchResult
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if got != r {
			t.Fatalf("round trip: got %+v, want %+v", got, r)
		}
	}
	var got SearchResult
	if err := got.UnmarshalBinary(make([]byte, searchResultSize-1)); err == nil {
		t.Fatal("short payload: want error")
	}
}
