package attacks

import (
	"fmt"
	"testing"

	"randfill/internal/cache"
	"randfill/internal/mem"
	"randfill/internal/rng"
	"randfill/internal/securecache"
)

func benchOccupancyConfig(t testing.TB, seed uint64) OccupancyConfig {
	return OccupancyConfig{
		NewCache: func(src *rng.Source) securecache.SecureCache {
			c, err := securecache.New("scattercache", securecache.Config{
				Geom: cache.Geometry{SizeBytes: 8 * 1024, Ways: 4},
			}, src)
			if err != nil {
				t.Fatal(err)
			}
			return c
		},
		Lines:       96,
		VictimSizes: []int{16, 32, 64, 96},
		Trials:      25,
		Seed:        seed,
	}
}

func benchFlushReloadConfig(seed uint64) FlushReloadConfig {
	return FlushReloadConfig{
		NewCache: func(src *rng.Source) cache.Cache {
			return cache.NewSetAssoc(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}, cache.LRU{})
		},
		Window: rng.Symmetric(32),
		Region: mem.Region{Base: 0x11000, Size: 1024},
		Trials: 50,
		Seed:   seed,
	}
}

// TestOccupancyProberFirstRunMatchesOneShot pins the prober's construction
// contract: a fresh prober's first Run is the one-shot Occupancy call, byte
// for byte (same RNG stream consumed in the same order).
func TestOccupancyProberFirstRunMatchesOneShot(t *testing.T) {
	cfg := benchOccupancyConfig(t, 17)
	got := fmt.Sprintf("%+v", NewOccupancyProber(cfg).Run())
	want := fmt.Sprintf("%+v", Occupancy(benchOccupancyConfig(t, 17)))
	if got != want {
		t.Errorf("prober first run diverges from Occupancy():\n prober   %s\n one-shot %s", got, want)
	}
}

func TestFlushReloadProberFirstRunMatchesOneShot(t *testing.T) {
	got := NewFlushReloadProber(benchFlushReloadConfig(9)).Run()
	want := FlushReload(benchFlushReloadConfig(9))
	if got != want {
		t.Errorf("prober first run diverges from FlushReload():\n prober   %+v\n one-shot %+v", got, want)
	}
}

// TestOccupancyProberZeroAlloc pins the satellite acceptance criterion: a
// full occupancy experiment round on a constructed prober allocates nothing.
func TestOccupancyProberZeroAlloc(t *testing.T) {
	p := NewOccupancyProber(benchOccupancyConfig(t, 17))
	p.Run() // warm any lazy growth inside the cache under attack
	if allocs := testing.AllocsPerRun(3, func() { p.Run() }); allocs > 0 {
		t.Errorf("OccupancyProber.Run allocates %.1f times per run, want 0", allocs)
	}
}

func TestFlushReloadProberZeroAlloc(t *testing.T) {
	p := NewFlushReloadProber(benchFlushReloadConfig(9))
	p.Run()
	if allocs := testing.AllocsPerRun(3, func() { p.Run() }); allocs > 0 {
		t.Errorf("FlushReloadProber.Run allocates %.1f times per run, want 0", allocs)
	}
}

// TestProberRunsAreFreshTrials guards against the scratch reuse accidentally
// freezing the measurement: two Runs of one prober continue the RNG stream,
// so they are different experiments over the same channel.
func TestProberRunsAreFreshTrials(t *testing.T) {
	p := NewOccupancyProber(benchOccupancyConfig(t, 17))
	a := fmt.Sprintf("%+v", p.Run())
	b := fmt.Sprintf("%+v", p.Run())
	if a == b {
		t.Error("two occupancy prober runs returned identical results; RNG stream did not advance")
	}
	q := NewFlushReloadProber(benchFlushReloadConfig(9))
	ra, rb := q.Run(), q.Run()
	if ra == rb {
		t.Error("two flush-reload prober runs returned identical results; RNG stream did not advance")
	}
}
