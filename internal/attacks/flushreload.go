package attacks

import (
	"math"

	"randfill/internal/cache"
	"randfill/internal/core"
	"randfill/internal/mem"
	"randfill/internal/rng"
)

// FlushReloadResult summarizes a Flush-Reload experiment (the storage
// channel of Section V.B).
type FlushReloadResult struct {
	// Accuracy is the fraction of trials in which the victim's accessed
	// line was among the lines the attacker found cached on reload.
	Accuracy float64
	// MutualInfo is the empirical mutual information in bits between the
	// victim's accessed line S and the attacker's observation R (the
	// cached line, or "nothing"), estimated from the joint histogram.
	// It is upper-bounded by infotheory.Capacity for the same window.
	MutualInfo float64
	// Trials is the number of victim accesses measured.
	Trials int
}

// FlushReloadConfig configures the experiment.
type FlushReloadConfig struct {
	// NewCache builds the shared cache.
	NewCache func(src *rng.Source) cache.Cache
	// Window is the victim's random fill window ([0,0] = demand fetch).
	Window rng.Window
	// Region is the shared security-critical table.
	Region mem.Region
	// Trials is the number of flush → victim-access → reload rounds.
	Trials int
	Seed   uint64
}

// FlushReload mounts the attack: the attacker flushes the shared table from
// the cache, lets the victim perform one secret-dependent access, then
// reloads and observes which line become cached. Per the paper's best case
// for the attacker (Section V.B), the attacker can also observe lines just
// outside the region that a random fill window may touch.
func FlushReload(cfg FlushReloadConfig) FlushReloadResult {
	return NewFlushReloadProber(cfg).Run()
}

// FlushReloadProber is a reusable Flush-Reload instance: the cache, fill
// engine and joint histogram are allocated once, so each Run measures a full
// round of trials without allocating (pinned by
// TestFlushReloadProberZeroAlloc). The first Run of a fresh prober is
// byte-identical to FlushReload(cfg); later Runs continue the prober's RNG
// stream with fresh trials over the same channel.
type FlushReloadProber struct {
	cfg          FlushReloadConfig
	src          *rng.Source
	c            cache.Cache
	eng          *core.Engine
	m            int
	first        mem.Line
	obsLo, obsHi int64
	obsNone      int

	joint  [][]uint64
	rowSum []float64
	colSum []float64
}

// NewFlushReloadProber builds the shared cache, the victim's fill engine and
// the measurement scratch for repeated Runs.
func NewFlushReloadProber(cfg FlushReloadConfig) *FlushReloadProber {
	src := rng.New(cfg.Seed ^ 0xf1e5)
	c := cfg.NewCache(src.Split(1))
	eng := core.NewEngine(c, src.Split(2))
	eng.SetOwner(victimDomain)
	eng.SetRR(cfg.Window.A, cfg.Window.B)

	m := cfg.Region.NumLines()
	first := cfg.Region.FirstLine()

	// Observable lines: the region extended by the window on both sides,
	// plus the "nothing cached" symbol at index obsNone.
	obsLo := int64(first) - int64(cfg.Window.A)
	if obsLo < 0 {
		obsLo = 0
	}
	obsHi := int64(first) + int64(m-1) + int64(cfg.Window.B)
	obsCount := int(obsHi-obsLo+1) + 1

	return &FlushReloadProber{
		cfg:     cfg,
		src:     src,
		c:       c,
		eng:     eng,
		m:       m,
		first:   first,
		obsLo:   obsLo,
		obsHi:   obsHi,
		obsNone: obsCount - 1,
		joint:   makeHist(m, obsCount),
		rowSum:  make([]float64, m),
		colSum:  make([]float64, obsCount),
	}
}

// Run executes one full experiment (Trials flush → access → reload rounds)
// and returns its result.
func (p *FlushReloadProber) Run() FlushReloadResult {
	c, eng, src := p.c, p.eng, p.src
	zeroHist(p.joint)

	hits := 0
	for trial := 0; trial < p.cfg.Trials; trial++ {
		// Flush: evict the whole observable range (clflush loop).
		asDomain(c, attackerDomain)
		for l := p.obsLo; l <= p.obsHi; l++ {
			c.Invalidate(mem.Line(l))
		}
		// Victim: one uniform secret-dependent access. (The data is
		// shared, so under a domain-aware cache the victim still sees
		// its own mapping.)
		asDomain(c, victimDomain)
		s := src.Intn(p.m)
		eng.Access(p.first+mem.Line(s), false)
		// Reload: time each observable line; a fast reload means the
		// line is cached (Probe models the timing distinguisher).
		asDomain(c, victimDomain)
		obs := p.obsNone
		victimObserved := false
		for l := p.obsLo; l <= p.obsHi; l++ {
			if c.Probe(mem.Line(l)) {
				obs = int(l - p.obsLo)
				if mem.Line(l) == p.first+mem.Line(s) {
					victimObserved = true
				}
			}
		}
		if victimObserved {
			hits++
		}
		p.joint[s][obs]++
	}

	return FlushReloadResult{
		Accuracy:   float64(hits) / float64(p.cfg.Trials),
		MutualInfo: mutualInfoInto(p.joint, p.rowSum, p.colSum),
		Trials:     p.cfg.Trials,
	}
}

// makeHist allocates a rows × cols count histogram over one backing array.
func makeHist(rows, cols int) [][]uint64 {
	back := make([]uint64, rows*cols)
	out := make([][]uint64, rows)
	for i := range out {
		out[i] = back[i*cols : (i+1)*cols : (i+1)*cols]
	}
	return out
}

// zeroHist clears a histogram in place for reuse.
func zeroHist(h [][]uint64) {
	for i := range h {
		clear(h[i])
	}
}

// mutualInfo computes I(S;R) in bits from a joint count histogram.
func mutualInfo(joint [][]uint64) float64 {
	rows := len(joint)
	if rows == 0 {
		return 0
	}
	return mutualInfoInto(joint, make([]float64, rows), make([]float64, len(joint[0])))
}

// mutualInfoInto is mutualInfo with caller-provided marginal scratch (len
// rows and len cols respectively), so repeated measurements can reuse one
// pair of buffers.
func mutualInfoInto(joint [][]uint64, rowSum, colSum []float64) float64 {
	if len(joint) == 0 {
		return 0
	}
	var total float64
	clear(rowSum)
	clear(colSum)
	for i := range joint {
		for j, n := range joint[i] {
			rowSum[i] += float64(n)
			colSum[j] += float64(n)
			total += float64(n)
		}
	}
	if total == 0 {
		return 0
	}
	var mi float64
	for i := range joint {
		for j, n := range joint[i] {
			if n == 0 {
				continue
			}
			p := float64(n) / total
			mi += p * math.Log2(p*total*total/(rowSum[i]*colSum[j]))
		}
	}
	if mi < 0 {
		mi = 0
	}
	return mi
}
