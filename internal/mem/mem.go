// Package mem defines the basic memory abstractions shared by every other
// subsystem: byte addresses, cache-line numbers, memory access records,
// access traces, and descriptors for security-critical memory regions.
//
// All cache models in this repository operate on line numbers (an address
// right-shifted by the line-size log), so the conversion helpers here are the
// single source of truth for cache-line geometry.
package mem

import "fmt"

// Addr is a byte address in the simulated physical address space.
type Addr uint64

// Line is a cache-line number: a byte address divided by the line size.
// All fill and lookup operations in the cache models are line-granular.
type Line uint64

// LineSize is the cache line size in bytes used throughout the simulator.
// The paper's configuration (Table IV) uses 64-byte lines.
const LineSize = 64

// LineShift is log2(LineSize).
const LineShift = 6

// LineOf returns the cache-line number containing address a.
func LineOf(a Addr) Line { return Line(a >> LineShift) }

// AddrOf returns the first byte address of line l.
func AddrOf(l Line) Addr { return Addr(l) << LineShift }

// Offset returns the byte offset of address a within its cache line.
func Offset(a Addr) uint64 { return uint64(a) & (LineSize - 1) }

// Kind distinguishes the kinds of operations that can appear in a trace.
type Kind uint8

const (
	// Read is a data load.
	Read Kind = iota
	// Write is a data store.
	Write
)

func (k Kind) String() string {
	switch k {
	case Read:
		return "R"
	case Write:
		return "W"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Access is one memory operation in a trace, plus the scheduling metadata the
// timing model needs.
//
// NonMem is the number of non-memory instructions that execute (in program
// order) immediately before this access; it lets a trace carry full
// instruction counts without one record per instruction.
//
// Dependent marks an access whose address depends on the value loaded by the
// previous memory access (pointer chasing, table lookups chained across AES
// rounds). The timing model serializes a dependent access behind all
// outstanding misses; independent accesses may overlap in the miss queue.
type Access struct {
	Addr      Addr
	Kind      Kind
	NonMem    uint32
	Dependent bool
	// Secret marks accesses whose address is derived from secret data
	// (key-dependent table lookups). Attack and channel analyses use it;
	// the cache models themselves never look at it.
	Secret bool
}

// Line returns the cache line touched by the access.
func (a Access) Line() Line { return LineOf(a.Addr) }

// Instructions returns the total instruction count the access represents:
// its leading non-memory instructions plus the memory operation itself.
func (a Access) Instructions() uint64 { return uint64(a.NonMem) + 1 }

// Trace is an ordered sequence of memory accesses representing one thread's
// execution.
type Trace []Access

// Instructions returns the total number of instructions in the trace.
func (t Trace) Instructions() uint64 {
	var n uint64
	for _, a := range t {
		n += a.Instructions()
	}
	return n
}

// Lines returns the set of distinct cache lines touched by the trace.
func (t Trace) Lines() map[Line]struct{} {
	s := make(map[Line]struct{})
	for _, a := range t {
		s[a.Line()] = struct{}{}
	}
	return s
}

// Region describes a contiguous memory region, typically holding
// security-critical data such as an AES lookup table. The security analyses
// in internal/infotheory and the preloading logic in internal/plcache both
// operate on Regions.
type Region struct {
	Base Addr
	Size uint64
}

// Contains reports whether address a falls inside the region.
func (r Region) Contains(a Addr) bool {
	return a >= r.Base && uint64(a-r.Base) < r.Size
}

// ContainsLine reports whether any byte of line l falls inside the region.
func (r Region) ContainsLine(l Line) bool {
	first := LineOf(r.Base)
	last := LineOf(r.Base + Addr(r.Size) - 1)
	return l >= first && l <= last
}

// FirstLine returns the first cache line of the region.
func (r Region) FirstLine() Line { return LineOf(r.Base) }

// NumLines returns the number of cache lines the region spans (M in the
// paper's analysis).
func (r Region) NumLines() int {
	if r.Size == 0 {
		return 0
	}
	first := LineOf(r.Base)
	last := LineOf(r.Base + Addr(r.Size) - 1)
	return int(last-first) + 1
}

// Lines returns all cache lines spanned by the region, in order.
func (r Region) Lines() []Line {
	n := r.NumLines()
	out := make([]Line, n)
	for i := range out {
		out[i] = r.FirstLine() + Line(i)
	}
	return out
}

func (r Region) String() string {
	return fmt.Sprintf("[%#x,+%d)", uint64(r.Base), r.Size)
}
