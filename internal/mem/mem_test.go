package mem

import (
	"testing"
	"testing/quick"
)

func TestLineOfAddrOfRoundTrip(t *testing.T) {
	f := func(a Addr) bool {
		l := LineOf(a)
		base := AddrOf(l)
		return base <= a && a < base+LineSize && LineOf(base) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOffsetWithinLine(t *testing.T) {
	f := func(a Addr) bool {
		off := Offset(a)
		return off < LineSize && AddrOf(LineOf(a))+Addr(off) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLineBoundaries(t *testing.T) {
	cases := []struct {
		addr Addr
		line Line
	}{
		{0, 0},
		{63, 0},
		{64, 1},
		{65, 1},
		{127, 1},
		{128, 2},
		{0x10000, 0x400},
	}
	for _, c := range cases {
		if got := LineOf(c.addr); got != c.line {
			t.Errorf("LineOf(%#x) = %d, want %d", uint64(c.addr), got, c.line)
		}
	}
}

func TestKindString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Errorf("Kind strings: %v %v", Read, Write)
	}
	if s := Kind(9).String(); s != "Kind(9)" {
		t.Errorf("unknown kind string %q", s)
	}
}

func TestAccessInstructions(t *testing.T) {
	a := Access{NonMem: 5}
	if a.Instructions() != 6 {
		t.Errorf("Instructions() = %d, want 6", a.Instructions())
	}
}

func TestTraceInstructionsAndLines(t *testing.T) {
	tr := Trace{
		{Addr: 0, NonMem: 1},
		{Addr: 8, NonMem: 2},   // same line as 0
		{Addr: 64, NonMem: 0},  // next line
		{Addr: 200, NonMem: 3}, // line 3
	}
	if got := tr.Instructions(); got != 10 {
		t.Errorf("Instructions() = %d, want 10", got)
	}
	lines := tr.Lines()
	if len(lines) != 3 {
		t.Errorf("Lines() has %d entries, want 3", len(lines))
	}
	for _, want := range []Line{0, 1, 3} {
		if _, ok := lines[want]; !ok {
			t.Errorf("Lines() missing line %d", want)
		}
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Base: 0x100, Size: 0x80}
	for _, a := range []Addr{0x100, 0x17f, 0x140} {
		if !r.Contains(a) {
			t.Errorf("Contains(%#x) = false, want true", uint64(a))
		}
	}
	for _, a := range []Addr{0xff, 0x180, 0} {
		if r.Contains(a) {
			t.Errorf("Contains(%#x) = true, want false", uint64(a))
		}
	}
}

func TestRegionLines(t *testing.T) {
	// A 1 KB table aligned to a line boundary spans exactly 16 lines,
	// the paper's M = 16 case study.
	r := Region{Base: 0x10000, Size: 1024}
	if got := r.NumLines(); got != 16 {
		t.Errorf("NumLines() = %d, want 16", got)
	}
	lines := r.Lines()
	if len(lines) != 16 {
		t.Fatalf("Lines() length %d, want 16", len(lines))
	}
	for i, l := range lines {
		if l != r.FirstLine()+Line(i) {
			t.Errorf("Lines()[%d] = %d, want %d", i, l, r.FirstLine()+Line(i))
		}
		if !r.ContainsLine(l) {
			t.Errorf("ContainsLine(%d) = false", l)
		}
	}
	if r.ContainsLine(r.FirstLine()-1) || r.ContainsLine(r.FirstLine()+16) {
		t.Error("ContainsLine accepts out-of-region lines")
	}
}

func TestRegionUnaligned(t *testing.T) {
	// A region straddling a line boundary counts both partial lines.
	r := Region{Base: 60, Size: 8} // bytes 60..67 → lines 0 and 1
	if got := r.NumLines(); got != 2 {
		t.Errorf("NumLines() = %d, want 2", got)
	}
}

func TestRegionEmpty(t *testing.T) {
	r := Region{Base: 0x100, Size: 0}
	if r.NumLines() != 0 {
		t.Errorf("empty region NumLines() = %d", r.NumLines())
	}
	if len(r.Lines()) != 0 {
		t.Errorf("empty region Lines() = %v", r.Lines())
	}
}
