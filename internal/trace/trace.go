// Package trace precompiles memory traces for batch replay. A mem.Trace is
// a []mem.Access of 24-byte records; the per-access interpreter loops in
// internal/sim and internal/hierarchy are memory-bound on that stream — the
// three accounting lines at the top of Thread.Step dominated the replay
// profile purely because each iteration pulls a fresh 24-byte struct through
// the cache hierarchy (see DESIGN.md §12).
//
// Compile decodes a trace once into a struct-of-arrays form: one packed
// 64-bit word per access carrying the cache-line number (the tag — set
// index and tag both derive from it with single-cycle masks), the
// read/write flag, the dependence and secret flags, and the leading
// non-memory instruction count. Batch replay then streams 8 bytes per
// access instead of 24 and re-derives nothing.
//
// The compiled form is exact at the granularity the simulators consume:
// every cache model and the timing simulator operate on Line(), Kind,
// Instructions(), Dependent and Secret, and At(i) reconstructs all five
// bit-for-bit (the intra-line byte offset, which no replay path reads, is
// not kept; accesses whose fields overflow the packed layout are stored as
// verbatim escape records on the side). A batched replay and a scalar
// replay of the same trace are therefore the same access sequence by
// construction.
// The property test in this package pins that equivalence over fuzzed
// geometries, and FuzzTraceCompile keeps it pinned under arbitrary inputs.
package trace

import "randfill/internal/mem"

// Packed-word layout, least-significant bits first:
//
//	bits 0..48   cache-line number (49 bits)
//	bit  49      write
//	bit  50      dependent
//	bit  51      secret
//	bits 52..63  non-memory instruction count (12 bits)
//
// A nonmem field of escapeMark (all ones) marks an escape record: the line
// bits then hold an index into the escapes table, which stores the original
// mem.Access verbatim. Escapes are exact but slow (the batch loops hand
// them to the scalar path), which is the right trade: a 49-bit line number
// covers a 55-bit byte address space and 4094 non-memory instructions
// between accesses covers every trace generator in this repository, so
// escapes appear only in adversarial (fuzzed) inputs.
const (
	lineBits = 49
	lineMask = 1<<lineBits - 1

	flagWrite     = 1 << 49
	flagDependent = 1 << 50
	flagSecret    = 1 << 51

	nonMemShift = 52
	nonMemBits  = 12
	nonMemMax   = 1<<nonMemBits - 2 // largest packable NonMem value
	escapeMark  = 1<<nonMemBits - 1
)

// Compiled is a trace decoded for batch replay. The zero value is an empty
// trace; build one with Compile or CompileInto.
type Compiled struct {
	words   []uint64
	escapes []mem.Access
}

// Compile decodes t into its packed struct-of-arrays form.
func Compile(t mem.Trace) *Compiled {
	return CompileInto(new(Compiled), t)
}

// CompileInto decodes t into ct, reusing ct's backing arrays when they are
// large enough, and returns ct. Steady-state recompilation of same-length
// traces (the collision attack compiles one fresh single-block trace per
// measurement) allocates nothing.
func CompileInto(ct *Compiled, t mem.Trace) *Compiled {
	if cap(ct.words) < len(t) {
		ct.words = make([]uint64, len(t))
	}
	ct.words = ct.words[:len(t)]
	ct.escapes = ct.escapes[:0]
	for i, a := range t {
		line := a.Line()
		if uint64(line) > lineMask || a.NonMem > nonMemMax {
			ct.words[i] = uint64(len(ct.escapes))<<0 | escapeMark<<nonMemShift
			ct.escapes = append(ct.escapes, a)
			continue
		}
		w := uint64(line) | uint64(a.NonMem)<<nonMemShift
		if a.Kind == mem.Write {
			w |= flagWrite
		}
		if a.Dependent {
			w |= flagDependent
		}
		if a.Secret {
			w |= flagSecret
		}
		ct.words[i] = w
	}
	return ct
}

// Len returns the number of accesses in the compiled trace.
func (ct *Compiled) Len() int { return len(ct.words) }

// At reconstructs access i as a mem.Access record. For packed records the
// reconstruction is exact up to the line granularity the simulators operate
// at: the address is the first byte of the access's cache line (every cache
// model consumes Line(), never the in-line offset). Escape records are
// returned verbatim, byte offset included.
func (ct *Compiled) At(i int) mem.Access {
	w := ct.words[i]
	if w>>nonMemShift == escapeMark {
		return ct.escapes[w&lineMask]
	}
	a := mem.Access{
		Addr:      mem.AddrOf(mem.Line(w & lineMask)),
		NonMem:    uint32(w >> nonMemShift),
		Dependent: w&flagDependent != 0,
		Secret:    w&flagSecret != 0,
	}
	if w&flagWrite != 0 {
		a.Kind = mem.Write
	}
	return a
}

// Word returns the packed word of access i. Batch replay loops decode it
// with the exported helpers below; an escape record (IsEscape) must be
// resolved through At instead.
func (ct *Compiled) Word(i int) uint64 { return ct.words[i] }

// Words exposes the packed word stream for the replay hot loops. The slice
// is the compiled trace's backing array: callers must treat it as
// read-only.
func (ct *Compiled) Words() []uint64 { return ct.words }

// IsEscape reports whether packed word w is an escape record.
func IsEscape(w uint64) bool { return w>>nonMemShift == escapeMark }

// Line returns the cache-line number of packed (non-escape) word w.
func Line(w uint64) mem.Line { return mem.Line(w & lineMask) }

// Write reports the write flag of packed word w.
func Write(w uint64) bool { return w&flagWrite != 0 }

// Dependent reports the dependence flag of packed word w.
func Dependent(w uint64) bool { return w&flagDependent != 0 }

// Secret reports the secret flag of packed word w.
func Secret(w uint64) bool { return w&flagSecret != 0 }

// Instructions returns the instruction count packed word w represents: its
// leading non-memory instructions plus the memory operation itself
// (mem.Access.Instructions).
func Instructions(w uint64) uint64 { return (w >> nonMemShift) + 1 }

// Windows splits the compiled trace into n contiguous windows of
// near-equal length (the first Len()%n windows get one extra access,
// mirroring parexp.SplitCounts). The windows share the compiled backing
// arrays; the split is a pure function of (Len, n), so it is part of a
// fixed shard plan. n is clamped to [1, Len] (an empty trace yields n
// empty windows).
func (ct *Compiled) Windows(n int) []Compiled {
	if n <= 0 {
		n = 1
	}
	if n > len(ct.words) && len(ct.words) > 0 {
		n = len(ct.words)
	}
	out := make([]Compiled, n)
	base, rem := len(ct.words)/n, len(ct.words)%n
	start := 0
	for i := range out {
		size := base
		if i < rem {
			size++
		}
		out[i] = Compiled{words: ct.words[start : start+size], escapes: ct.escapes}
		start += size
	}
	return out
}

// SetTag is one access's per-geometry decode: the set index and tag for a
// particular cache shape, plus the write flag. Geometry returns the full
// precomputed stream.
type SetTag struct {
	Set   int
	Tag   mem.Line
	Write bool
}

// Geometry precomputes the (set index, tag, write) stream for a cache with
// the given power-of-two set count, the per-geometry decode the scalar path
// re-derives on every access. All cache models in this repository use the
// full line number as the tag (tag comparison over the whole value), so Tag
// is the line number and Set is its low bits. Escape records decode through
// At. The result is freshly allocated: callers that replay one trace
// against one geometry many times compute it once.
func (ct *Compiled) Geometry(sets int) []SetTag {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("trace: set count must be a positive power of two")
	}
	out := make([]SetTag, len(ct.words))
	for i, w := range ct.words {
		var line mem.Line
		var write bool
		if IsEscape(w) {
			a := ct.escapes[w&lineMask]
			line, write = a.Line(), a.Kind == mem.Write
		} else {
			line, write = Line(w), Write(w)
		}
		out[i] = SetTag{Set: int(uint64(line) & uint64(sets-1)), Tag: line, Write: write}
	}
	return out
}
