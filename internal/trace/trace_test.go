package trace

import (
	"testing"

	"randfill/internal/mem"
	"randfill/internal/rng"
)

// randTrace generates a trace that exercises every packed field plus both
// escape conditions (giant line numbers, giant NonMem counts).
func randTrace(src *rng.Source, n int) mem.Trace {
	t := make(mem.Trace, n)
	for i := range t {
		a := mem.Access{
			Addr:      mem.Addr(src.Uint64() >> (8 + src.Intn(30))),
			NonMem:    uint32(src.Intn(40)),
			Dependent: src.Bool(0.3),
			Secret:    src.Bool(0.2),
		}
		if src.Bool(0.3) {
			a.Kind = mem.Write
		}
		switch src.Intn(40) {
		case 0:
			a.Addr = mem.Addr(src.Uint64()) // likely beyond the 49-bit line space
		case 1:
			a.NonMem = uint32(src.Uint64() >> 34) // likely beyond 12 bits
		}
		t[i] = a
	}
	return t
}

// checkCompiled verifies a compiled trace against its source: the scalar
// decode of every access (set index, tag, write flag, instruction count,
// dependence and secret flags) must match what the compiled stream and the
// per-geometry view report, for every tested set count.
func checkCompiled(t *testing.T, tr mem.Trace, ct *Compiled, setCounts []int) {
	t.Helper()
	if ct.Len() != len(tr) {
		t.Fatalf("Len = %d, want %d", ct.Len(), len(tr))
	}
	for i, a := range tr {
		got := ct.At(i)
		if got.Line() != a.Line() || got.Kind != a.Kind || got.Instructions() != a.Instructions() ||
			got.Dependent != a.Dependent || got.Secret != a.Secret {
			t.Fatalf("At(%d) = %+v, want the decode of %+v", i, got, a)
		}
		w := ct.Word(i)
		if IsEscape(w) {
			continue
		}
		if Line(w) != a.Line() || Write(w) != (a.Kind == mem.Write) ||
			Dependent(w) != a.Dependent || Secret(w) != a.Secret ||
			Instructions(w) != a.Instructions() {
			t.Fatalf("word %d decodes to (%v %v %v %v %d), want scalar (%v %v %v %v %d)",
				i, Line(w), Write(w), Dependent(w), Secret(w), Instructions(w),
				a.Line(), a.Kind == mem.Write, a.Dependent, a.Secret, a.Instructions())
		}
	}
	for _, sets := range setCounts {
		view := ct.Geometry(sets)
		for i, a := range tr {
			wantSet := int(uint64(a.Line()) & uint64(sets-1))
			if view[i].Set != wantSet || view[i].Tag != a.Line() || view[i].Write != (a.Kind == mem.Write) {
				t.Fatalf("Geometry(%d)[%d] = %+v, want set=%d tag=%d write=%v",
					sets, i, view[i], wantSet, a.Line(), a.Kind == mem.Write)
			}
		}
	}
}

// TestCompileMatchesScalarDecode is the compiler's property test: for many
// random traces and fuzzed power-of-two geometries, the compiled stream
// decodes to exactly the (set, tag, write) sequence — plus instruction
// counts and scheduling flags — that the scalar path derives per access.
func TestCompileMatchesScalarDecode(t *testing.T) {
	src := rng.New(0xc0de)
	for round := 0; round < 50; round++ {
		tr := randTrace(src, 1+src.Intn(500))
		sets := []int{1 << src.Intn(12), 1 << src.Intn(12), 64}
		checkCompiled(t, tr, Compile(tr), sets)
	}
}

// TestCompileIntoReuses pins the steady-state allocation contract: once the
// backing arrays fit, recompiling same-shaped traces allocates nothing.
func TestCompileIntoReuses(t *testing.T) {
	src := rng.New(7)
	traces := make([]mem.Trace, 8)
	for i := range traces {
		traces[i] = randTrace(src, 300)
	}
	var ct Compiled
	CompileInto(&ct, traces[0])
	words := &ct.words[0]
	n := 0
	allocs := testing.AllocsPerRun(len(traces), func() {
		CompileInto(&ct, traces[n%len(traces)])
		n++
	})
	if allocs > 0 {
		t.Fatalf("CompileInto allocated %.1f times per run, want 0", allocs)
	}
	if &ct.words[0] != words {
		t.Fatal("CompileInto did not reuse the words backing array")
	}
}

func TestWindows(t *testing.T) {
	src := rng.New(11)
	tr := randTrace(src, 103)
	ct := Compile(tr)
	for _, n := range []int{1, 2, 7, 8, 103, 500} {
		wins := ct.Windows(n)
		wantWins := n
		if wantWins > len(tr) {
			wantWins = len(tr)
		}
		if len(wins) != wantWins {
			t.Fatalf("Windows(%d): got %d windows, want %d", n, len(wins), wantWins)
		}
		// Concatenated windows must be the original access sequence, and
		// sizes must follow the fixed near-even plan (first rem windows
		// one longer).
		idx := 0
		base, rem := len(tr)/wantWins, len(tr)%wantWins
		for wi := range wins {
			want := base
			if wi < rem {
				want++
			}
			if wins[wi].Len() != want {
				t.Fatalf("Windows(%d)[%d].Len = %d, want %d", n, wi, wins[wi].Len(), want)
			}
			for i := 0; i < wins[wi].Len(); i++ {
				if got, want := wins[wi].At(i), ct.At(idx); got != want {
					t.Fatalf("Windows(%d)[%d].At(%d) = %+v, want %+v", n, wi, i, got, want)
				}
				idx++
			}
		}
		if idx != len(tr) {
			t.Fatalf("Windows(%d) covers %d accesses, want %d", n, idx, len(tr))
		}
	}
	empty := (&Compiled{}).Windows(4)
	if len(empty) != 4 {
		t.Fatalf("empty Windows(4): got %d windows", len(empty))
	}
	for _, w := range empty {
		if w.Len() != 0 {
			t.Fatal("empty trace window not empty")
		}
	}
}

func TestGeometryRejectsBadSetCounts(t *testing.T) {
	ct := Compile(mem.Trace{{Addr: 0x40}})
	for _, sets := range []int{0, -1, 3, 48} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Geometry(%d) did not panic", sets)
				}
			}()
			ct.Geometry(sets)
		}()
	}
}

// decodeFuzzTrace turns an arbitrary byte string into a trace, giving the
// fuzzer full control over every field including the escape conditions.
func decodeFuzzTrace(data []byte) mem.Trace {
	var tr mem.Trace
	for len(data) >= 14 {
		addr := mem.Addr(data[0]) | mem.Addr(data[1])<<8 | mem.Addr(data[2])<<16 |
			mem.Addr(data[3])<<24 | mem.Addr(data[4])<<32 | mem.Addr(data[5])<<40 |
			mem.Addr(data[6])<<48 | mem.Addr(data[7])<<56
		nonmem := uint32(data[8]) | uint32(data[9])<<8 | uint32(data[10])<<16 | uint32(data[11])<<24
		a := mem.Access{
			Addr:      addr,
			NonMem:    nonmem,
			Dependent: data[12]&1 != 0,
			Secret:    data[12]&2 != 0,
		}
		if data[13]&1 != 0 {
			a.Kind = mem.Write
		}
		tr = append(tr, a)
		data = data[14:]
	}
	return tr
}

// FuzzTraceCompile fuzzes the compiler against the scalar decode: whatever
// the input trace, the compiled stream must decode to the same
// (set, tag, write) sequence at several geometries and At must round-trip
// every replay-visible field. Seed corpus entries cover the packed fast
// path, both escape conditions, and the all-flags case.
func FuzzTraceCompile(f *testing.F) {
	f.Add([]byte{})
	// One plain packed access.
	f.Add([]byte{0x40, 0x11, 0, 0, 0, 0, 0, 0, 3, 0, 0, 0, 1, 1})
	// Line-overflow escape (address with all top bits set).
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 2, 0, 0, 0, 0, 0})
	// NonMem-overflow escape.
	f.Add([]byte{0x00, 0x20, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 3, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := decodeFuzzTrace(data)
		checkCompiled(t, tr, Compile(tr), []int{1, 8, 1024})
	})
}
