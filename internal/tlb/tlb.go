// Package tlb extends the random fill idea to the other storage structure
// the paper's conclusion names: "reuse based attacks ... are threats
// especially relevant to storage structures (like caches and TLBs) which
// exploit the locality of data accesses". A TLB is a small fully-associative
// cache of page translations, so a victim whose secret-dependent accesses
// span multiple pages leaks page-granular information through it — and the
// same de-correlated fill strategy closes that channel.
//
// The implementation reuses the core cache machinery: translations are a
// fully-associative cache keyed by page number, and the random fill engine
// layers over it unchanged (a random neighbor *page's* translation is
// fetched instead of the demanded one).
package tlb

import (
	"fmt"

	"randfill/internal/cache"
	"randfill/internal/core"
	"randfill/internal/mem"
	"randfill/internal/rng"
)

// PageSize is the translation granularity in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Page is a virtual page number.
type Page uint64

// PageOf returns the page containing address a.
func PageOf(a mem.Addr) Page { return Page(a >> PageShift) }

// TLB is a fully-associative, LRU translation lookaside buffer with an
// optional random fill window (the window is in units of pages).
type TLB struct {
	entries *cache.SetAssoc
	engine  *core.Engine
}

// New builds a TLB with the given number of entries. A typical L1 DTLB has
// 64. It panics on a non-positive entry count.
func New(entries int, src *rng.Source) *TLB {
	if entries <= 0 {
		panic(fmt.Sprintf("tlb: invalid entry count %d", entries))
	}
	// A fully-associative cache with one set; "lines" are page numbers.
	c := cache.NewSetAssoc(cache.Geometry{SizeBytes: entries * mem.LineSize, Ways: entries}, cache.LRU{})
	return &TLB{
		entries: c,
		engine:  core.NewEngine(c, src),
	}
}

// SetWindow programs the random fill window, in pages ([0,0] = demand
// fill, the conventional TLB).
func (t *TLB) SetWindow(w rng.Window) { t.engine.SetRR(w.A, w.B) }

// Window returns the programmed window.
func (t *TLB) Window() rng.Window { return t.engine.Window() }

// Translate performs a translation for address a: a TLB hit returns true;
// a miss walks the page table (not modelled beyond the fill policy) and
// applies the fill strategy — demand fill of the missing translation, or a
// random fill within the window.
func (t *TLB) Translate(a mem.Addr) bool {
	return t.engine.Access(mem.Line(PageOf(a)), false)
}

// Cached reports whether the translation for address a is resident, without
// perturbing replacement state (the attacker's reload-timing oracle).
func (t *TLB) Cached(a mem.Addr) bool {
	return t.entries.Probe(mem.Line(PageOf(a)))
}

// FlushPage evicts the translation for the page containing a (invlpg).
func (t *TLB) FlushPage(a mem.Addr) bool {
	return t.entries.Invalidate(mem.Line(PageOf(a)))
}

// FlushAll drops every translation (a full TLB shootdown / context switch
// without PCIDs).
func (t *TLB) FlushAll() { t.entries.Flush() }

// Entries returns the TLB capacity.
func (t *TLB) Entries() int { return t.entries.NumLines() }

// Resident returns the number of currently cached translations.
func (t *TLB) Resident() int { return len(t.entries.Contents()) }

// Stats returns the underlying hit/miss counters.
func (t *TLB) Stats() *cache.Stats { return t.entries.Stats() }

func (t *TLB) String() string {
	return fmt.Sprintf("TLB(%d entries, window %v)", t.Entries(), t.Window())
}
