package tlb

import (
	"testing"
	"testing/quick"

	"randfill/internal/mem"
	"randfill/internal/rng"
)

func TestMissThenHit(t *testing.T) {
	tl := New(64, rng.New(1))
	a := mem.Addr(0x5000)
	if tl.Translate(a) {
		t.Fatal("cold TLB hit")
	}
	if !tl.Translate(a) {
		t.Fatal("miss after demand fill")
	}
	if !tl.Translate(a + PageSize - 1) {
		t.Fatal("same-page address missed")
	}
	if tl.Translate(a + PageSize) {
		t.Fatal("next page hit without translation")
	}
}

func TestLRUCapacity(t *testing.T) {
	tl := New(4, rng.New(2))
	for p := 0; p < 4; p++ {
		tl.Translate(mem.Addr(p * PageSize))
	}
	// Touch page 0 to protect it; a 5th page evicts the LRU (page 1).
	tl.Translate(0)
	tl.Translate(4 * PageSize)
	if !tl.Cached(0) {
		t.Error("MRU page evicted")
	}
	if tl.Cached(1 * PageSize) {
		t.Error("LRU page survived")
	}
	if tl.Resident() != 4 {
		t.Errorf("resident = %d", tl.Resident())
	}
}

func TestFlush(t *testing.T) {
	tl := New(8, rng.New(3))
	tl.Translate(0x1000)
	tl.Translate(0x2000)
	if !tl.FlushPage(0x1000) || tl.Cached(0x1000) {
		t.Error("invlpg failed")
	}
	tl.FlushAll()
	if tl.Resident() != 0 {
		t.Error("shootdown left translations")
	}
}

func TestRandomFillDecorrelatesTranslations(t *testing.T) {
	// The conclusion's claim applied to the TLB: with a window, a missed
	// translation is not deterministically installed.
	tl := New(64, rng.New(4))
	tl.SetWindow(rng.Symmetric(16))
	selfFilled := 0
	const trials = 600
	for i := 0; i < trials; i++ {
		a := mem.Addr((1000 + i*64) * PageSize) // far apart pages
		tl.Translate(a)
		if tl.Cached(a) {
			selfFilled++
		}
	}
	frac := float64(selfFilled) / trials
	if frac > 0.15 {
		t.Errorf("demanded translation resident %.1f%% of the time, want ≈ 1/16", 100*frac)
	}
	if selfFilled == 0 {
		t.Error("offset 0 never drawn")
	}
}

// TestPageGranularLeakAndDefense mounts a flush+reload on the TLB: a victim
// whose secret selects one page of a 16-page table leaks that page under
// demand fill and does not under a covering window.
func TestPageGranularLeakAndDefense(t *testing.T) {
	const tableBase = mem.Addr(0x100000)
	const pages = 16

	observe := func(w rng.Window, trials int, seed uint64) float64 {
		tl := New(64, rng.New(seed))
		tl.SetWindow(w)
		src := rng.New(seed + 1)
		hits := 0
		for trial := 0; trial < trials; trial++ {
			tl.FlushAll()
			secret := src.Intn(pages)
			tl.Translate(tableBase + mem.Addr(secret*PageSize))
			if tl.Cached(tableBase + mem.Addr(secret*PageSize)) {
				hits++
			}
		}
		return float64(hits) / float64(trials)
	}

	if acc := observe(rng.Window{}, 300, 1); acc != 1 {
		t.Errorf("demand-fill TLB: secret page observed %.2f, want 1", acc)
	}
	if acc := observe(rng.Symmetric(32), 600, 2); acc > 0.12 {
		t.Errorf("random-fill TLB: secret page observed %.2f, want ≈ 1/32", acc)
	}
}

func TestCapacityInvariant(t *testing.T) {
	f := func(pages []uint16) bool {
		tl := New(16, rng.New(5))
		for _, p := range pages {
			tl.Translate(mem.Addr(p) * PageSize)
		}
		return tl.Resident() <= tl.Entries()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("entries=0 did not panic")
		}
	}()
	New(0, rng.New(1))
}

func TestPageOf(t *testing.T) {
	if PageOf(0) != 0 || PageOf(PageSize-1) != 0 || PageOf(PageSize) != 1 {
		t.Error("page boundaries wrong")
	}
}
