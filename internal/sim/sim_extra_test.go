package sim

import (
	"testing"

	"randfill/internal/aes"
	"randfill/internal/cache"
	"randfill/internal/mem"
	"randfill/internal/rng"
)

func TestRPcacheKindRuns(t *testing.T) {
	cfg := tinyConfig()
	cfg.L1Kind = KindRPcache
	m := New(cfg)
	res := m.RunTrace(ThreadConfig{Owner: 1}, seqTrace(500, 1, 2))
	if res.Misses == 0 || res.Instructions == 0 {
		t.Fatalf("rpcache run produced no activity: %+v", res)
	}
}

func TestNoMoKindRuns(t *testing.T) {
	cfg := tinyConfig()
	cfg.L1Kind = KindNoMo
	cfg.NoMoThreads = 2
	cfg.NoMoReserved = 1
	m := New(cfg)
	res := m.RunTrace(ThreadConfig{Owner: 0}, seqTrace(500, 1, 2))
	if res.Misses == 0 {
		t.Fatal("nomo run produced no misses")
	}
}

func TestDomainSwitchingInSMT(t *testing.T) {
	// Two threads with different owners over an RPcache: each must keep
	// finding its own lines despite interleaving (the domain is switched
	// per access).
	cfg := tinyConfig()
	cfg.L1Kind = KindRPcache
	m := New(cfg)
	mk := func(base mem.Line) mem.Trace {
		tr := make(mem.Trace, 2000)
		for i := range tr {
			tr[i] = mem.Access{Addr: mem.AddrOf(base + mem.Line(i%4)), NonMem: 2}
		}
		return tr
	}
	res := m.RunSMT(
		ThreadConfig{Owner: 0}, mk(1<<20),
		ThreadConfig{Owner: 1}, mk(2<<20),
	)
	// A 4-line working set must hit most of the time once warm (RPcache
	// deflections invalidate some of the active domain's lines on
	// cross-domain contention, so the rate is below a plain SA cache's).
	if res.HitRate() < 0.8 {
		t.Errorf("main thread hit rate %v under RPcache SMT", res.HitRate())
	}
}

func TestInformingModeTrapsAndReloads(t *testing.T) {
	cfg := tinyConfig() // 1KB L1: the 16-line region plus traffic evicts
	m := New(cfg)
	region := mem.Region{Base: 0x10000, Size: 1024}
	th := m.NewThread(ThreadConfig{
		Mode:          ModeInforming,
		SecretRegions: []mem.Region{region},
	})
	// First secret access misses → trap → whole region reloaded.
	th.Step(mem.Access{Addr: 0x10000, Secret: true})
	th.Drain()
	res := th.Result()
	if res.InformingTraps != 1 {
		t.Fatalf("traps = %d, want 1", res.InformingTraps)
	}
	for _, l := range region.Lines() {
		if !m.L1().Probe(l) {
			t.Fatalf("line %d not reloaded by the handler", l)
		}
	}
	// Subsequent accesses to the region hit without trapping.
	for _, l := range region.Lines() {
		th.Step(mem.Access{Addr: mem.AddrOf(l), Secret: true})
	}
	th.Drain()
	if got := th.Result().InformingTraps; got != 1 {
		t.Errorf("traps after warm accesses = %d, want still 1", got)
	}
	// Non-secret misses never trap.
	th.Step(mem.Access{Addr: 0x90000})
	th.Drain()
	if got := th.Result().InformingTraps; got != 1 {
		t.Errorf("non-secret access trapped")
	}
}

func TestInformingTrapCostsCycles(t *testing.T) {
	cfg := tinyConfig()
	m := New(cfg)
	region := mem.Region{Base: 0x10000, Size: 1024}
	base := m.NewThread(ThreadConfig{})
	base.Step(mem.Access{Addr: 0x10000, Secret: true})
	base.Drain()

	m2 := New(cfg)
	inf := m2.NewThread(ThreadConfig{Mode: ModeInforming, SecretRegions: []mem.Region{region}})
	inf.Step(mem.Access{Addr: 0x10000, Secret: true})
	inf.Drain()

	if inf.Cycle() <= base.Cycle()+informingTrapCycles {
		t.Errorf("informing trap cost %v cycles vs %v baseline; reload not charged",
			inf.Cycle(), base.Cycle())
	}
}

func TestL2RandomFillDecorrelates(t *testing.T) {
	cfg := tinyConfig()
	cfg.L2Window = rng.Window{A: 8, B: 7}
	m := New(cfg)
	th := m.NewThread(ThreadConfig{})
	selfFilled := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		line := mem.Line(10000 + i*64)
		th.Step(mem.Access{Addr: mem.AddrOf(line)})
		th.Drain()
		if m.L2().Probe(line) {
			selfFilled++
		}
	}
	// With a 16-line L2 window the demanded line lands in L2 only when
	// offset 0 is drawn (~1/16).
	if frac := float64(selfFilled) / trials; frac > 0.2 {
		t.Errorf("L2 random fill: demanded line in L2 %.1f%% of the time", 100*frac)
	}
}

func TestFillQueueCapConfig(t *testing.T) {
	cfg := tinyConfig()
	cfg.FillQueueCap = 1
	m := New(cfg)
	if m.Config().FillQueueCap != 1 {
		t.Fatal("FillQueueCap not honored")
	}
	// Default applies when zero.
	if New(tinyConfig()).Config().FillQueueCap != 64 {
		t.Fatal("FillQueueCap default wrong")
	}
}

func TestWritebackTraffic(t *testing.T) {
	cfg := tinyConfig() // 16-line L1
	m := New(cfg)
	th := m.NewThread(ThreadConfig{})
	// Dirty a line, then stream conflicting lines to force its eviction.
	th.Step(mem.Access{Addr: 0, Kind: mem.Write})
	th.Drain()
	for i := 1; i < 40; i++ {
		th.Step(mem.Access{Addr: mem.AddrOf(mem.Line(i * 8))}) // same set as line 0
		th.Drain()
	}
	if m.Writebacks() == 0 {
		t.Error("dirty eviction produced no write-back")
	}
}

func TestResultSubSteadyState(t *testing.T) {
	m := New(tinyConfig())
	trace := seqTrace(2000, 1, 2)
	res := m.RunTraceSteady(ThreadConfig{}, trace)
	if res.Instructions != trace.Instructions() {
		t.Errorf("steady pass instructions %d, want %d", res.Instructions, trace.Instructions())
	}
	if res.Cycles <= 0 {
		t.Error("steady pass measured no cycles")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() Result {
		cfg := DefaultConfig()
		cfg.Seed = 77
		m := New(cfg)
		return m.RunTrace(ThreadConfig{
			Mode: ModeRandomFill, Window: rng.Window{A: 4, B: 3},
		}, seqTrace(5000, 2, 3))
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same-seed runs differ:\n%+v\n%+v", a, b)
	}
}

func TestIPCNeverExceedsIssueWidth(t *testing.T) {
	// Property: no workload can exceed the issue width.
	for _, g := range []struct {
		name  string
		trace mem.Trace
	}{
		{"hits", func() mem.Trace {
			tr := make(mem.Trace, 3000)
			for i := range tr {
				tr[i] = mem.Access{Addr: 0, NonMem: 10}
			}
			return tr
		}()},
		{"stream", seqTrace(3000, 1, 1)},
	} {
		res := New(DefaultConfig()).RunTrace(ThreadConfig{}, g.trace)
		if res.IPC() > 4.0001 {
			t.Errorf("%s: IPC %v exceeds issue width", g.name, res.IPC())
		}
	}
}

func TestAESTraceTimingSanity(t *testing.T) {
	// One AES block on the default machine lands in a plausible cycle
	// range and is dominated by table misses when cold.
	src := rng.New(3)
	var key [16]byte
	src.Bytes(key[:])
	c, _ := aes.New(key[:])
	tr := &aes.Tracer{Cipher: c, Layout: aes.DefaultLayout()}
	_, trace := tr.EncryptBlock(make([]byte, 16), 0)
	res := New(DefaultConfig()).RunTrace(ThreadConfig{}, trace)
	if res.Cycles < 500 || res.Cycles > 50000 {
		t.Errorf("cold AES block took %v cycles", res.Cycles)
	}
	if res.Misses == 0 {
		t.Error("cold AES block had no misses")
	}
}

func TestGeometryKindMatrixRuns(t *testing.T) {
	// Every cache kind runs a mixed trace without panicking and with
	// conserved accesses.
	trace := seqTrace(1000, 3, 2)
	for _, kind := range []CacheKind{KindSA, KindNewcache, KindPLcache, KindRPcache, KindNoMo} {
		cfg := DefaultConfig()
		cfg.L1 = cache.Geometry{SizeBytes: 8 * 1024, Ways: 2}
		cfg.L1Kind = kind
		res := New(cfg).RunTrace(ThreadConfig{Owner: 1}, trace)
		if res.Hits+res.Misses+res.Merged != uint64(len(trace)) {
			t.Errorf("%s: access conservation broken: %+v", kind, res)
		}
	}
}
