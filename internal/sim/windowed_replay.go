package sim

import (
	"randfill/internal/parexp"
	"randfill/internal/trace"
)

// ReplayWindows replays a compiled trace as `windows` independent windows
// across a parexp worker pool and returns the per-window results in window
// order. It is the batch-replay form of the repository's fixed-shard
// invariance contract (see internal/parexp):
//
//   - The window plan is fixed by (trace length, windows) — Compiled.Windows
//     mirrors parexp.SplitCounts — never by the worker count.
//   - Each window replays on its own freshly built Machine seeded from
//     parexp.ShardSeeds(cfg.Seed, windows)[i], so no RNG stream, cache
//     state, or counter is shared between windows; the compiled trace is
//     shared read-only.
//   - Results come back in window-index order, so any fold over them (see
//     MergeResults) accumulates floats in a fixed order.
//
// Worker count is therefore a pure speed knob: for a fixed cfg and trace,
// the returned slice is byte-identical at workers = 1, 2, 8, or GOMAXPROCS
// (TestBatchReplayWorkerInvariance pins this). Each window starts cold —
// windowed replay is a sampling strategy over trace segments (every window
// pays its own warm-up), not a bit-exact decomposition of one sequential
// replay, which is inherently order-dependent state.
func ReplayWindows(cfg Config, tc ThreadConfig, ct *trace.Compiled, windows, workers int) []Result {
	wins := ct.Windows(windows)
	seeds := parexp.ShardSeeds(cfg.Seed, len(wins))
	eng := parexp.New(workers)
	return parexp.Map(eng, len(wins), func(i int) Result {
		c := cfg
		c.Seed = seeds[i]
		t := New(c).NewThread(tc)
		t.ReplayBatch(&wins[i])
		t.Drain()
		return t.Result()
	})
}

// MergeResults folds per-window results left-to-right into one aggregate:
// counters and cycle totals sum in window-index order (fixed float
// accumulation, per the parexp merge rule). Cycles and StallCycles are the
// summed per-window totals — total simulated work, not wall-clock overlap.
func MergeResults(rs []Result) Result {
	var out Result
	for _, r := range rs {
		out.Cycles += r.Cycles
		out.Instructions += r.Instructions
		out.Hits += r.Hits
		out.Misses += r.Misses
		out.Merged += r.Merged
		out.SecretBypass += r.SecretBypass
		out.RandomFills += r.RandomFills
		out.Prefetches += r.Prefetches
		out.StallCycles += r.StallCycles
		out.InformingTraps += r.InformingTraps
	}
	return out
}
