package sim

import (
	"randfill/internal/cache"
	"randfill/internal/core"
	"randfill/internal/hierarchy"
	"randfill/internal/mirage"
	"randfill/internal/newcache"
	"randfill/internal/nomo"
	"randfill/internal/plcache"
	"randfill/internal/rng"
	"randfill/internal/rpcache"
	"randfill/internal/scattercache"
)

// This file is the only place internal/sim may construct concrete caches:
// the rflint "simlayer" checker rejects direct constructor calls outside
// functions named build*, keeping the rest of the simulator programmed
// against cache.Cache and hierarchy.Level. It also keeps the build graph
// one-way: sim depends on the cache architectures, never the reverse.

func buildNewcache(size, extraBits int, src *rng.Source) cache.Cache {
	return newcache.New(size, extraBits, src)
}

func buildPLcache(geom cache.Geometry) cache.Cache {
	return plcache.New(geom)
}

func buildRPcache(geom cache.Geometry, src *rng.Source) cache.Cache {
	return rpcache.New(geom, src)
}

func buildNoMo(geom cache.Geometry, threads, reserved int) cache.Cache {
	return nomo.New(geom, threads, reserved)
}

func buildScatterCache(geom cache.Geometry, src *rng.Source) cache.Cache {
	return scattercache.New(geom, src)
}

func buildMirage(geom cache.Geometry, src *rng.Source) cache.Cache {
	return mirage.New(geom, src)
}

// buildLevels constructs the machine's full level stack from cfg, drawing
// per-level randomness from root. Stream-compatibility rule (DESIGN.md §8):
// the L1 build always consumes root.Split(1); below-L1 level k (hierarchy
// index k, so the L2 is k=1) consumes root.Split(1+k) — but ONLY when its
// window is non-zero, in increasing k order. Demand-fill levels draw
// nothing. This reproduces the historical two-level stream layout exactly
// (L1 = Split(1), L2 window generator = Split(2) only when configured), so
// thread streams (Split(100+i)) land on the same root draws as before the
// hierarchy refactor.
func buildLevels(cfg Config, root *rng.Source) []*hierarchy.Level {
	levels := []*hierarchy.Level{
		hierarchy.NewLevel(cfg.buildL1(root.Split(1)), cfg.L1HitLat),
	}
	for k, lc := range cfg.belowL1() {
		c := cache.NewSetAssoc(lc.Geom, cache.LRU{})
		lvl := hierarchy.NewLevel(c, lc.HitLat)
		if !lc.Window.Zero() {
			e := core.NewEngine(c, root.Split(uint64(2+k)))
			e.SetRR(lc.Window.A, lc.Window.B)
			lvl.WithEngine(e)
		}
		levels = append(levels, lvl)
	}
	return levels
}
