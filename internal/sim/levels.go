package sim

import (
	"randfill/internal/cache"
	"randfill/internal/core"
	"randfill/internal/hierarchy"
	"randfill/internal/mirage"
	"randfill/internal/newcache"
	"randfill/internal/nomo"
	"randfill/internal/plcache"
	"randfill/internal/rng"
	"randfill/internal/rpcache"
	"randfill/internal/scattercache"
)

// This file is the only place internal/sim may construct concrete caches:
// the rflint "simlayer" checker rejects direct constructor calls outside
// functions named build*, keeping the rest of the simulator programmed
// against cache.Cache and hierarchy.Level. It also keeps the build graph
// one-way: sim depends on the cache architectures, never the reverse.

func buildNewcache(size, extraBits int, src *rng.Source, pol cache.Policy) cache.Cache {
	return newcache.NewWithPolicy(size, extraBits, src, pol)
}

func buildPLcache(geom cache.Geometry, pol cache.Policy) cache.Cache {
	return plcache.NewWithPolicy(geom, pol)
}

func buildRPcache(geom cache.Geometry, src *rng.Source, pol cache.Policy) cache.Cache {
	return rpcache.NewWithPolicy(geom, src, pol)
}

func buildNoMo(geom cache.Geometry, threads, reserved int, pol cache.Policy) cache.Cache {
	return nomo.NewWithPolicy(geom, threads, reserved, pol)
}

func buildScatterCache(geom cache.Geometry, src *rng.Source, pol cache.Policy) cache.Cache {
	return scattercache.NewWithPolicy(geom, src, pol)
}

func buildMirage(geom cache.Geometry, src *rng.Source, pol cache.Policy) cache.Cache {
	return mirage.NewWithPolicy(geom, src, pol)
}

// buildLevels constructs the machine's full level stack from cfg, drawing
// per-level randomness from root. Stream-compatibility rule (DESIGN.md §8):
// the L1 build always consumes root.Split(1); below-L1 level k (hierarchy
// index k, so the L2 is k=1) consumes root.Split(1+k) — but ONLY when its
// window is non-zero, in increasing k order. Demand-fill levels draw
// nothing. This reproduces the historical two-level stream layout exactly
// (L1 = Split(1), L2 window generator = Split(2) only when configured), so
// thread streams (Split(100+i)) land on the same root draws as before the
// hierarchy refactor. A below-L1 level with an RNG-backed replacement policy
// additionally consumes root.Split(32+k) — a range no historical
// configuration touches, so ""/draw-free policies leave the layout intact.
func buildLevels(cfg Config, root *rng.Source) []*hierarchy.Level {
	levels := []*hierarchy.Level{
		hierarchy.NewLevel(cfg.buildL1(root.Split(1)), cfg.L1HitLat),
	}
	for k, lc := range cfg.belowL1() {
		var pol cache.Policy = cache.LRU{}
		if lc.Policy != "" {
			var psrc *rng.Source
			if cache.PolicyNeedsRNG(lc.Policy) {
				psrc = root.Split(uint64(32 + k))
			}
			p, err := cache.PolicyByName(lc.Policy, psrc)
			if err != nil {
				panic(err)
			}
			pol = p
		}
		c := cache.NewSetAssoc(lc.Geom, pol)
		lvl := hierarchy.NewLevel(c, lc.HitLat)
		if !lc.Window.Zero() {
			e := core.NewEngine(c, root.Split(uint64(2+k)))
			e.SetRR(lc.Window.A, lc.Window.B)
			lvl.WithEngine(e)
		}
		levels = append(levels, lvl)
	}
	return levels
}
