package sim

import (
	"randfill/internal/cache"
	"randfill/internal/core"
	"randfill/internal/mem"
	"randfill/internal/rng"
	"randfill/internal/trace"
)

func coreEngine(c cache.Cache, src *rng.Source) *core.Engine {
	return core.NewEngine(c, src)
}

// mshrEntry is one miss-queue slot: an outstanding request to the L2/DRAM.
type mshrEntry struct {
	valid bool
	line  mem.Line
	done  float64
	// fillL1 applies the line to the L1 on completion (normal demand
	// fill, random fill, prefetch). NoFill demand entries have it false.
	fillL1 bool
	// background marks random-fill/prefetch entries, which produce no
	// data for the processor: dependent accesses do not wait on them.
	background bool
	dirty      bool
	offset     int8
	prefetch   bool
}

// Result summarizes a thread's execution.
type Result struct {
	Cycles       float64
	Instructions uint64
	// Hits and Misses are demand L1 accesses; Merged are demand misses
	// that merged with an outstanding miss to the same line (excluded
	// from MPKI, per the paper's MPKI definition in Section VII).
	Hits   uint64
	Misses uint64
	Merged uint64
	// SecretBypass counts accesses that bypassed the L1 entirely
	// (ModeDisableSecret).
	SecretBypass uint64
	// RandomFills and Prefetches count background fills applied to L1.
	RandomFills uint64
	Prefetches  uint64
	// StallCycles accumulates time spent waiting for a free miss-queue
	// entry or for dependence resolution.
	StallCycles float64
	// InformingTraps counts informing-load handler invocations.
	InformingTraps uint64
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / r.Cycles
}

// MPKI returns demand L1 misses (merges excluded) per kilo-instruction.
func (r Result) MPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return 1000 * float64(r.Misses) / float64(r.Instructions)
}

// Sub returns the difference r - prev of two snapshots of the same
// thread's counters, for steady-state measurement: warm the caches with one
// pass, snapshot, run the measured pass, and subtract.
func (r Result) Sub(prev Result) Result {
	return Result{
		Cycles:         r.Cycles - prev.Cycles,
		Instructions:   r.Instructions - prev.Instructions,
		Hits:           r.Hits - prev.Hits,
		Misses:         r.Misses - prev.Misses,
		Merged:         r.Merged - prev.Merged,
		SecretBypass:   r.SecretBypass - prev.SecretBypass,
		RandomFills:    r.RandomFills - prev.RandomFills,
		Prefetches:     r.Prefetches - prev.Prefetches,
		StallCycles:    r.StallCycles - prev.StallCycles,
		InformingTraps: r.InformingTraps - prev.InformingTraps,
	}
}

// HitRate returns demand hit rate over demand accesses.
func (r Result) HitRate() float64 {
	total := r.Hits + r.Misses + r.Merged
	if total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(total)
}

// informingTrapCycles is the exception-delivery overhead of one informing
// load trap (pipeline flush + handler entry/exit).
const informingTrapCycles = 50

// domainCache is implemented by caches whose behaviour depends on the
// accessing trust domain (RPcache's per-domain permutation tables).
type domainCache interface {
	SetActiveDomain(int)
}

// Thread is one hardware thread: a fill-policy engine over the shared L1,
// a private miss queue, and a cycle clock.
type Thread struct {
	machine *Machine
	cfg     ThreadConfig
	engine  *core.Engine
	// domainL1 is non-nil when the L1 is domain-aware; the thread
	// selects its trust domain before every access (part of switching
	// the hardware thread context).
	domainL1 domainCache
	cycle    float64
	// dataReady is when the most recent demand read's data becomes
	// available; a Dependent access cannot issue before it.
	dataReady float64
	mshr      []mshrEntry
	// inflight counts valid miss-queue entries, so the per-access retire
	// scan can return immediately when nothing is outstanding.
	inflight int
	// fillQueue holds random-fill/prefetch requests waiting for a free
	// miss-queue slot (the "random fill queue" of Figure 3, which waits
	// for idle cycles). It is a head-indexed ring: fillHead marks the next
	// request to issue, and the slice is reset in place once drained, so
	// steady-state enqueue/dequeue reuses one backing array instead of
	// reslicing-and-appending fresh storage per request.
	fillQueue []core.Request
	fillHead  int
	res       Result
}

// fillPending returns the number of queued background fills.
func (t *Thread) fillPending() int { return len(t.fillQueue) - t.fillHead }

// Engine returns the thread's random fill engine (to reprogram the window
// mid-run, modelling the set_RR system call).
func (t *Thread) Engine() *core.Engine { return t.engine }

// Cycle returns the thread's current cycle.
func (t *Thread) Cycle() float64 { return t.cycle }

// Result returns the thread's statistics with the clock snapshot.
func (t *Thread) Result() Result {
	r := t.res
	r.Cycles = t.cycle
	return r
}

// retire completes every miss-queue entry finished by time now, applying
// its L1 fill.
func (t *Thread) retire(now float64) {
	if t.inflight == 0 {
		return
	}
	for i := range t.mshr {
		e := &t.mshr[i]
		if !e.valid || e.done > now {
			continue
		}
		if e.fillL1 {
			t.machine.fillL1(e.line, cache.FillOpts{
				Dirty:  e.dirty,
				Owner:  t.cfg.Owner,
				Offset: e.offset,
			})
			if e.background {
				if e.prefetch {
					t.res.Prefetches++
				} else {
					t.res.RandomFills++
				}
			}
			if p := t.machine.Prefetcher; p != nil {
				p.OnFill(e.line, e.prefetch)
			}
		}
		e.valid = false
		t.inflight--
	}
}

// waitData blocks the thread until the most recent demand read's data is
// available: the model of a load-to-use dependence. An out-of-order core
// overlaps independent misses freely; a Dependent access serializes behind
// exactly the previous load, not the whole miss queue.
func (t *Thread) waitData() {
	if t.dataReady > t.cycle {
		t.res.StallCycles += t.dataReady - t.cycle
		t.cycle = t.dataReady
	}
	t.retire(t.cycle)
}

// freeSlot returns a free miss-queue slot index for a demand request,
// stalling the thread until the earliest outstanding entry completes if the
// queue is full. Arbitration is FIFO: background fill requests that arrived
// in the fill queue before this demand miss are issued into freed slots
// first — fills and demands share the miss queue in arrival order rather
// than demands always winning (which would starve the random fill engine
// whenever the miss queue is saturated).
func (t *Thread) freeSlot() int {
	for {
		t.serviceFills()
		for i := range t.mshr {
			if !t.mshr[i].valid {
				return i
			}
		}
		// Queue full: wait for the earliest completion.
		min := t.mshr[0].done
		for i := 1; i < len(t.mshr); i++ {
			if t.mshr[i].done < min {
				min = t.mshr[i].done
			}
		}
		t.res.StallCycles += min - t.cycle
		t.cycle = min
		t.retire(t.cycle)
	}
}

// trySlot returns a free slot without stalling, or -1.
func (t *Thread) trySlot() int {
	for i := range t.mshr {
		if !t.mshr[i].valid {
			return i
		}
	}
	return -1
}

// pending reports whether line has an outstanding miss-queue entry, and its
// index.
func (t *Thread) pending(line mem.Line) int {
	if t.inflight == 0 {
		return -1
	}
	for i := range t.mshr {
		if t.mshr[i].valid && t.mshr[i].line == line {
			return i
		}
	}
	return -1
}

// enqueueFill adds a background fill request to the fill queue, dropping it
// if the queue is full (the queue depth comes from Config.FillQueueCap).
func (t *Thread) enqueueFill(r core.Request) {
	if t.fillPending() >= t.machine.cfg.FillQueueCap {
		return
	}
	t.fillQueue = append(t.fillQueue, r)
}

// serviceFills issues queued background fills into free miss-queue slots.
// One slot is reserved for demand misses: background fills never occupy the
// whole miss queue, so a demand miss waits behind at most MissQueue-1
// fills (standard MSHR reservation for demand traffic).
func (t *Thread) serviceFills() {
	for t.fillPending() > 0 {
		if len(t.mshr) > 1 {
			bg := 0
			for i := range t.mshr {
				if t.mshr[i].valid && t.mshr[i].background {
					bg++
				}
			}
			if bg >= len(t.mshr)-1 {
				return
			}
		}
		slot := t.trySlot()
		if slot < 0 {
			return
		}
		r := t.fillQueue[t.fillHead]
		t.fillHead++
		// Dropped if it hits in the tag array by now, or is already in
		// flight. (The tag check is skipped under the ablation that
		// keeps redundant fills.)
		if !t.cfg.KeepRedundantFills && t.engine.Cache().Probe(r.Line) {
			continue
		}
		if t.pending(r.Line) >= 0 {
			continue
		}
		lat := t.machine.fetchBelow(r.Line, false)
		t.mshr[slot] = mshrEntry{
			valid:      true,
			line:       r.Line,
			done:       t.cycle + float64(lat),
			fillL1:     true,
			background: true,
			offset:     r.Offset,
			prefetch:   r.Type == prefetchRequest,
		}
		t.inflight++
	}
	// Drained: rewind the ring so the backing array is reused.
	t.fillQueue = t.fillQueue[:0]
	t.fillHead = 0
}

// prefetchRequest is a core.RequestType value reserved for prefetcher
// requests travelling through the same fill queue.
const prefetchRequest core.RequestType = 255

// Step executes one trace access and advances the thread's clock. It is the
// prologue (context switch, instruction accounting, retirement, dependence
// stall) plus the access itself; ReplayBatch inlines an identical prologue
// over precompiled words and shares access, so the two paths cannot drift.
func (t *Thread) Step(a mem.Access) {
	if t.domainL1 != nil {
		t.domainL1.SetActiveDomain(t.cfg.Owner)
	}
	instr := a.Instructions()
	t.res.Instructions += instr
	t.cycle += float64(instr) / float64(t.machine.cfg.IssueWidth)
	t.retire(t.cycle)

	if a.Dependent {
		t.waitData()
	}

	t.access(a.Line(), a.Kind == mem.Write, a.Secret)
}

// access performs one demand access against the L1: the mode dispatch, the
// lookup, and the full miss path. It is Step without the prologue.
func (t *Thread) access(line mem.Line, write, secret bool) {
	if t.cfg.Mode == ModeDisableSecret && secret {
		// Security-critical access with the cache disabled: straight
		// to the L2, no L1 lookup or fill. The request still needs a
		// miss-queue entry (it is a demand fetch).
		t.res.SecretBypass++
		slot := t.freeSlot()
		lat := t.machine.fetchBelow(line, write)
		t.mshr[slot] = mshrEntry{
			valid: true,
			line:  line,
			done:  t.cycle + float64(lat),
		}
		t.inflight++
		if !write {
			t.dataReady = t.mshr[slot].done
		}
		t.serviceFills()
		return
	}

	informing := t.cfg.Mode == ModeInforming && secret

	if t.engine.Cache().Lookup(line, write) {
		t.res.Hits++
		if !write {
			t.dataReady = t.cycle + float64(t.machine.cfg.L1HitLat)
		}
		if p := t.machine.Prefetcher; p != nil {
			for _, pl := range p.OnHit(line) {
				t.enqueueFill(core.Request{Type: prefetchRequest, Line: pl, Offset: 1})
			}
		}
		t.serviceFills()
		return
	}

	// Demand miss. A miss to a line already in flight merges with the
	// outstanding entry (no new request, excluded from MPKI).
	if p := t.pending(line); p >= 0 {
		t.res.Merged++
		if !write && t.mshr[p].done > t.dataReady {
			t.dataReady = t.mshr[p].done
		}
		t.serviceFills()
		return
	}

	t.res.Misses++
	if informing {
		// Informing load: the miss traps to the user-level handler,
		// which reloads the whole security-critical data set before
		// execution resumes. The trap overhead plus the reload misses
		// are fully exposed (the handler runs in program order).
		t.cycle += informingTrapCycles
		for _, reg := range t.cfg.SecretRegions {
			for _, l := range reg.Lines() {
				if t.engine.Cache().Probe(l) {
					continue
				}
				lat := t.machine.fetchBelow(l, false)
				// Handler loads overlap pairwise at best.
				t.cycle += float64(lat) / 2
				t.machine.fillL1(l, cache.FillOpts{Owner: t.cfg.Owner})
			}
		}
		t.res.InformingTraps++
		// The faulting access now hits the freshly reloaded line.
		t.engine.Cache().Lookup(line, write)
		t.serviceFills()
		return
	}
	reqs := t.engine.OnMiss(line)
	for k := 0; k < reqs.Len(); k++ {
		r := reqs.At(k)
		switch r.Type {
		case core.Normal, core.NoFill:
			slot := t.freeSlot()
			lat := t.machine.fetchBelow(line, write)
			t.mshr[slot] = mshrEntry{
				valid:  true,
				line:   line,
				done:   t.cycle + float64(lat),
				fillL1: r.Type == core.Normal,
				dirty:  write,
			}
			t.inflight++
			if !write {
				t.dataReady = t.mshr[slot].done
			}
		case core.RandomFill:
			t.enqueueFill(r)
		}
	}
	if p := t.machine.Prefetcher; p != nil {
		for _, pl := range p.OnMiss(line) {
			t.enqueueFill(core.Request{Type: prefetchRequest, Line: pl, Offset: 1})
		}
	}
	t.serviceFills()
}

// Run executes an entire trace and returns the thread's result.
func (t *Thread) Run(trace mem.Trace) Result {
	for i := range trace {
		t.Step(trace[i])
	}
	t.Drain()
	return t.Result()
}

// ReplayBatch executes a precompiled trace. It is observably identical to
// stepping the trace one access at a time — same counters, same cycle
// arithmetic (the per-access float operations are performed in the same
// order with the same operands), and exactly the same RNG draws, because the
// miss path is the shared access method and the random fill engine is only
// ever consulted there. What changes is the cost of the common case: the
// loop streams 8-byte packed words instead of 24-byte mem.Access records,
// probes a devirtualized L1 fast path (cache.SetAssoc.TryHit) before
// committing to the full access dispatch, and skips the retirement and
// fill-queue scans whenever their queues are provably empty (both scans
// no-op on empty queues, so skipping the calls is identity).
//
// Threads whose configuration the fast loop does not model — a domain-aware
// or non-SetAssoc L1 (PLcache, RPcache, scattercache, ...), or an attached
// prefetcher observing L1 hits — replay through the scalar Step path
// unchanged.
func (t *Thread) ReplayBatch(ct *trace.Compiled) {
	sa, _ := t.engine.Cache().(*cache.SetAssoc)
	if sa == nil || t.domainL1 != nil || t.machine.Prefetcher != nil {
		for i := 0; i < ct.Len(); i++ {
			t.Step(ct.At(i))
		}
		return
	}
	words := ct.Words()
	issueWidth := float64(t.machine.cfg.IssueWidth)
	hitLat := float64(t.machine.cfg.L1HitLat)
	bypassSecret := t.cfg.Mode == ModeDisableSecret
	for i, w := range words {
		if trace.IsEscape(w) {
			// Out-of-range record (never produced by this repo's trace
			// generators): replay it verbatim through the scalar path.
			t.Step(ct.At(i))
			continue
		}
		instr := trace.Instructions(w)
		t.res.Instructions += instr
		t.cycle += float64(instr) / issueWidth
		if t.inflight != 0 {
			t.retire(t.cycle)
		}
		if trace.Dependent(w) {
			if t.dataReady > t.cycle {
				t.res.StallCycles += t.dataReady - t.cycle
				t.cycle = t.dataReady
			}
			if t.inflight != 0 {
				t.retire(t.cycle)
			}
		}
		line := trace.Line(w)
		write := trace.Write(w)
		secret := trace.Secret(w)
		if secret && bypassSecret {
			t.access(line, write, true)
			continue
		}
		if sa.TryHit(line, write) {
			t.res.Hits++
			if !write {
				t.dataReady = t.cycle + hitLat
			}
			if t.fillPending() != 0 {
				t.serviceFills()
			}
			continue
		}
		// Miss (or merged miss): the full access path re-runs the lookup —
		// TryHit mutated nothing, so the re-probe misses again and Lookup
		// adds exactly the one miss count the scalar path would.
		t.access(line, write, secret)
	}
}

// RunCompiled executes an entire precompiled trace and returns the thread's
// result, like Run over the equivalent mem.Trace.
func (t *Thread) RunCompiled(ct *trace.Compiled) Result {
	t.ReplayBatch(ct)
	t.Drain()
	return t.Result()
}

// Drain waits for all outstanding requests to complete and applies their
// fills, advancing the clock to the last completion.
func (t *Thread) Drain() {
	maxDone := t.cycle
	for i := range t.mshr {
		if t.mshr[i].valid && t.mshr[i].done > maxDone {
			maxDone = t.mshr[i].done
		}
	}
	t.cycle = maxDone
	t.retire(t.cycle)
	// Issue any still-queued background fills and let them land too.
	t.serviceFills()
	for i := range t.mshr {
		if t.mshr[i].valid && t.mshr[i].done > t.cycle {
			t.cycle = t.mshr[i].done
		}
	}
	t.retire(t.cycle)
}
