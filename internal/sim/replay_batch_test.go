package sim

import (
	"fmt"
	"testing"

	"randfill/internal/cache"
	"randfill/internal/mem"
	"randfill/internal/prefetch"
	"randfill/internal/rng"
	"randfill/internal/trace"
)

// This file pins batched replay to per-access replay, byte for byte: for
// every fill mode and machine shape, ReplayBatch over a compiled trace must
// leave a machine in exactly the state a Step loop over the raw trace does —
// same fractional cycles, same counters at every layer, same RNG consumption
// (witnessed by the random-fill line choices feeding the L2/memory traffic
// counts). Together with the RunTrace goldens (which now run batched), this
// is the identity gate of the batch replay core (DESIGN.md §12).

// replayPinTrace is recordedTrace plus secret accesses confined to a small
// region, so the secret-sensitive modes (disable-secret bypass, informing
// loads) take their special paths during the pin.
func replayPinTrace() (mem.Trace, mem.Region) {
	reg := mem.Region{Base: 1 << 20, Size: 8 * 64}
	src := rng.New(43)
	tr := make(mem.Trace, 4000)
	for i := range tr {
		a := mem.Access{
			Addr:   mem.AddrOf(mem.Line(src.Intn(512))),
			NonMem: uint32(src.Intn(4)),
		}
		if src.Bool(0.1) {
			a.Addr = reg.Base + mem.Addr(src.Intn(int(reg.Size)))
			a.Secret = true
		}
		if src.Bool(0.3) {
			a.Kind = mem.Write
		}
		if src.Bool(0.15) {
			a.Dependent = true
		}
		tr[i] = a
	}
	return tr, reg
}

// machineState summarizes every observable layer of a machine after a replay:
// the thread result, the L1 cache counters, and the per-level and memory
// traffic below it.
func machineState(m *Machine, res Result) string {
	s := fmt.Sprintf("%+v l1=%+v", res, *m.L1().Stats())
	for k := 1; k < m.Hierarchy().Depth(); k++ {
		s += fmt.Sprintf(" lvl%d=%+v", k, *m.Hierarchy().Level(k).Stats())
	}
	return s + fmt.Sprintf(" mem=%d memwb=%d", m.MemAccesses(), m.Hierarchy().MemWritebacks())
}

func TestBatchReplayMatchesStep(t *testing.T) {
	tr, reg := replayPinTrace()

	tiny := DefaultConfig()
	tiny.L1 = cache.Geometry{SizeBytes: 1024, Ways: 2}
	tiny.L2 = cache.Geometry{SizeBytes: 16 * 1024, Ways: 4}
	tiny.Seed = 7
	oneMSHR := tiny
	oneMSHR.MissQueue = 1
	l2rf := tiny
	l2rf.L2Window = rng.Window{A: 4, B: 3}
	three := tiny
	three.Levels = []LevelConfig{
		{Geom: cache.Geometry{SizeBytes: 16 * 1024, Ways: 4}, HitLat: 12, Window: rng.Window{A: 8, B: 7}},
		{Geom: cache.Geometry{SizeBytes: 64 * 1024, Ways: 8}, HitLat: 40},
	}
	plKind := tiny
	plKind.L1Kind = KindPLcache
	rpKind := tiny
	rpKind.L1Kind = KindRPcache
	withPolicy := func(name string) Config {
		c := tiny
		c.L1Policy = name
		return c
	}

	rf := ThreadConfig{Mode: ModeRandomFill, Window: rng.Window{A: 8, B: 7}}

	cases := []struct {
		name     string
		cfg      Config
		tc       ThreadConfig
		prefetch bool
	}{
		{name: "demand", cfg: tiny, tc: ThreadConfig{}},
		{name: "randomfill", cfg: tiny, tc: rf},
		{name: "one-mshr", cfg: oneMSHR, tc: rf},
		{name: "l2window", cfg: l2rf, tc: rf},
		{name: "three-level", cfg: three, tc: rf},
		{name: "disable-secret", cfg: tiny, tc: ThreadConfig{Mode: ModeDisableSecret}},
		{name: "informing", cfg: tiny, tc: ThreadConfig{Mode: ModeInforming, SecretRegions: []mem.Region{reg}}},
		// Scalar-fallback shapes: a non-SetAssoc L1, a domain-aware L1,
		// and an attached prefetcher must also replay identically
		// (through Step).
		{name: "plcache-fallback", cfg: plKind, tc: ThreadConfig{Mode: ModePreload, SecretRegions: []mem.Region{reg}}},
		{name: "rpcache-fallback", cfg: rpKind, tc: rf},
		{name: "prefetch-fallback", cfg: tiny, tc: ThreadConfig{}, prefetch: true},
		// Per-policy state-diff pins: the devirtualized SetAssoc batch path
		// goes through TryHit/Lookup/Fill only, so every stateful policy
		// (tree bits, RRIP counters, BRRIP draws) must land in exactly the
		// per-set state the Step loop produces — under random fill too, so
		// the policy sees out-of-window fills the same way in both paths.
		{name: "policy-plru", cfg: withPolicy("plru"), tc: rf},
		{name: "policy-srrip", cfg: withPolicy("srrip"), tc: rf},
		{name: "policy-brrip", cfg: withPolicy("brrip"), tc: rf},
		{name: "policy-fifo", cfg: withPolicy("fifo"), tc: ThreadConfig{}},
		{name: "policy-random", cfg: withPolicy("random"), tc: ThreadConfig{}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			scalar := New(c.cfg)
			batch := New(c.cfg)
			if c.prefetch {
				scalar.Prefetcher = prefetch.NewTagged()
				batch.Prefetcher = prefetch.NewTagged()
			}

			st := scalar.NewThread(c.tc)
			for i := range tr {
				st.Step(tr[i])
			}
			st.Drain()

			bt := batch.NewThread(c.tc)
			bt.ReplayBatch(trace.Compile(tr))
			bt.Drain()

			got := machineState(batch, bt.Result())
			want := machineState(scalar, st.Result())
			if got != want {
				t.Errorf("batched replay diverges from Step loop:\n batch  %s\n scalar %s", got, want)
			}
		})
	}
}

// TestBatchReplayEscapeRecords drives ReplayBatch over a trace whose records
// overflow the packed word layout (line number beyond 49 bits, non-memory
// count beyond 12 bits): escapes must take the scalar path verbatim and
// still match the Step loop.
func TestBatchReplayEscapeRecords(t *testing.T) {
	src := rng.New(5)
	tr := make(mem.Trace, 200)
	for i := range tr {
		a := mem.Access{Addr: mem.AddrOf(mem.Line(src.Intn(64)))}
		switch src.Intn(4) {
		case 0:
			a.Addr = mem.Addr(src.Uint64() | 1<<60)
		case 1:
			a.NonMem = 1 << 20
		}
		if src.Bool(0.3) {
			a.Kind = mem.Write
		}
		tr[i] = a
	}

	cfg := DefaultConfig()
	cfg.L1 = cache.Geometry{SizeBytes: 1024, Ways: 2}
	cfg.Seed = 3
	tc := ThreadConfig{Mode: ModeRandomFill, Window: rng.Window{A: 8, B: 7}}

	scalar := New(cfg)
	st := scalar.NewThread(tc)
	for i := range tr {
		st.Step(tr[i])
	}
	st.Drain()

	batch := New(cfg)
	bt := batch.NewThread(tc)
	bt.ReplayBatch(trace.Compile(tr))
	bt.Drain()

	got, want := machineState(batch, bt.Result()), machineState(scalar, st.Result())
	if got != want {
		t.Errorf("escape-record replay diverges:\n batch  %s\n scalar %s", got, want)
	}
}

// TestRunCompiledMatchesRun pins the Run-shaped conveniences to each other.
func TestRunCompiledMatchesRun(t *testing.T) {
	tr, _ := replayPinTrace()
	cfg := DefaultConfig()
	cfg.Seed = 9
	tc := ThreadConfig{Mode: ModeRandomFill, Window: rng.Window{A: 8, B: 7}}

	a := New(cfg).NewThread(tc).Run(tr)
	b := New(cfg).NewThread(tc).RunCompiled(trace.Compile(tr))
	if ga, gb := fmt.Sprintf("%+v", a), fmt.Sprintf("%+v", b); ga != gb {
		t.Errorf("RunCompiled diverges from Run:\n compiled %s\n scalar   %s", gb, ga)
	}
}
