package sim

import (
	"testing"

	"randfill/internal/cache"
	"randfill/internal/mem"
	"randfill/internal/prefetch"
	"randfill/internal/rng"
)

func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.L1 = cache.Geometry{SizeBytes: 1024, Ways: 2}
	cfg.L2 = cache.Geometry{SizeBytes: 16 * 1024, Ways: 4}
	return cfg
}

// seqTrace builds n reads at the given line stride (in lines), NonMem
// instructions before each.
func seqTrace(n int, strideLines int, nonMem uint32) mem.Trace {
	tr := make(mem.Trace, n)
	for i := range tr {
		tr[i] = mem.Access{
			Addr:   mem.AddrOf(mem.Line(i * strideLines)),
			NonMem: nonMem,
		}
	}
	return tr
}

func TestAllHitsTiming(t *testing.T) {
	m := New(tinyConfig())
	th := m.NewThread(ThreadConfig{})
	// Warm the line and let the fill land.
	th.Step(mem.Access{Addr: 0, NonMem: 3})
	th.Drain()
	warm := th.Cycle()
	for i := 0; i < 99; i++ {
		th.Step(mem.Access{Addr: 0, NonMem: 3})
	}
	th.Drain()
	res := th.Result()
	if res.Hits != 99 || res.Misses != 1 {
		t.Fatalf("hits %d misses %d", res.Hits, res.Misses)
	}
	if res.Instructions != 400 {
		t.Fatalf("instructions %d", res.Instructions)
	}
	// 99 hit accesses x 4 instructions at width 4 = 99 cycles.
	elapsed := res.Cycles - warm
	if elapsed < 99 || elapsed > 105 {
		t.Errorf("hit phase took %v cycles, want ≈ 99", elapsed)
	}
	if res.IPC() <= 0 || res.IPC() > 4 {
		t.Errorf("IPC = %v", res.IPC())
	}
}

func TestRepeatedColdAccessesMerge(t *testing.T) {
	// Back-to-back accesses to one cold line while its miss is
	// outstanding merge instead of hitting or re-missing.
	m := New(tinyConfig())
	tr := make(mem.Trace, 10)
	for i := range tr {
		tr[i] = mem.Access{Addr: 0, NonMem: 0}
	}
	res := m.RunTrace(ThreadConfig{}, tr)
	if res.Misses != 1 || res.Merged != 9 {
		t.Fatalf("misses %d merged %d, want 1/9", res.Misses, res.Merged)
	}
}

func TestMissLatencyExposedByDependence(t *testing.T) {
	cfg := tinyConfig()
	m := New(cfg)
	// Two accesses: a cold miss, then a dependent access to another cold
	// line. The second must wait for the first's completion.
	tr := mem.Trace{
		{Addr: 0, NonMem: 0},
		{Addr: mem.AddrOf(100), NonMem: 0, Dependent: true},
	}
	res := m.RunTrace(ThreadConfig{}, tr)
	missLat := float64(cfg.L2HitLat + cfg.MemLat)
	if res.Cycles < 2*missLat {
		t.Errorf("cycles %v < two serialized miss latencies %v", res.Cycles, 2*missLat)
	}
}

func TestIndependentMissesOverlap(t *testing.T) {
	cfg := tinyConfig()
	// 4 independent cold misses with 4 MSHRs: total time ≈ one miss
	// latency, not four.
	m := New(cfg)
	tr := mem.Trace{
		{Addr: mem.AddrOf(10)},
		{Addr: mem.AddrOf(20)},
		{Addr: mem.AddrOf(30)},
		{Addr: mem.AddrOf(40)},
	}
	res := m.RunTrace(ThreadConfig{}, tr)
	missLat := float64(cfg.L2HitLat + cfg.MemLat)
	if res.Cycles > missLat+10 {
		t.Errorf("4 independent misses took %v cycles; no overlap (miss lat %v)", res.Cycles, missLat)
	}
}

func TestMSHRFullStalls(t *testing.T) {
	cfg := tinyConfig()
	cfg.MissQueue = 1
	m := New(cfg)
	tr := mem.Trace{
		{Addr: mem.AddrOf(10)},
		{Addr: mem.AddrOf(20)},
		{Addr: mem.AddrOf(30)},
		{Addr: mem.AddrOf(40)},
	}
	res := m.RunTrace(ThreadConfig{}, tr)
	missLat := float64(cfg.L2HitLat + cfg.MemLat)
	// With one MSHR, the 2nd..4th misses each wait for the previous.
	if res.Cycles < 3*missLat {
		t.Errorf("1-MSHR run took %v cycles, want ≥ %v", res.Cycles, 3*missLat)
	}
	if res.StallCycles == 0 {
		t.Error("no stall cycles recorded")
	}
}

func TestMergingMissesSameLine(t *testing.T) {
	m := New(tinyConfig())
	// Burst of accesses to the same cold line: one true miss, the rest
	// merge while it is outstanding.
	tr := mem.Trace{
		{Addr: 0}, {Addr: 8}, {Addr: 16}, {Addr: 24},
	}
	res := m.RunTrace(ThreadConfig{}, tr)
	if res.Misses != 1 {
		t.Errorf("misses = %d, want 1", res.Misses)
	}
	if res.Merged != 3 {
		t.Errorf("merged = %d, want 3", res.Merged)
	}
}

func TestL2HitFasterThanMem(t *testing.T) {
	cfg := tinyConfig()
	// Warm the L2 by touching a line once (L1 evicts it later), then
	// measure that a re-miss is served at L2 latency.
	m := New(cfg)
	tr := mem.Trace{{Addr: 0, Dependent: true}}
	m.RunTrace(ThreadConfig{}, tr)
	if m.L2Accesses() != 1 || m.MemAccesses() != 1 {
		t.Fatalf("L2 %d mem %d", m.L2Accesses(), m.MemAccesses())
	}
	// Evict line 0 from tiny L1 by filling its set, then re-access.
	t2 := m.NewThread(ThreadConfig{})
	for i := 1; i <= 4; i++ {
		t2.Step(mem.Access{Addr: mem.AddrOf(mem.Line(i * 8))})
	}
	t2.Drain()
	start := t2.Cycle()
	t2.Step(mem.Access{Addr: 0, Dependent: true})
	t2.Drain()
	elapsed := t2.Cycle() - start
	if elapsed > float64(cfg.L2HitLat)+5 {
		t.Errorf("L2 hit took %v cycles, want ≈ %d", elapsed, cfg.L2HitLat)
	}
	if m.MemAccesses() != 1+4 {
		t.Errorf("mem accesses = %d (L2 should have served the re-miss)", m.MemAccesses())
	}
}

func TestRandomFillModeNeverDemandFills(t *testing.T) {
	cfg := tinyConfig()
	m := New(cfg)
	tcfg := ThreadConfig{Mode: ModeRandomFill, Window: rng.Window{A: 16, B: 15}}
	th := m.NewThread(tcfg)
	selfFilled := 0
	const trials = 500
	for i := 0; i < trials; i++ {
		line := mem.Line(1000 + i*64)
		th.Step(mem.Access{Addr: mem.AddrOf(line)})
		th.Drain()
		if m.L1().Probe(line) {
			selfFilled++
		}
	}
	if frac := float64(selfFilled) / trials; frac > 0.10 {
		t.Errorf("demanded line present %.1f%% of the time under random fill", 100*frac)
	}
	res := th.Result()
	if res.RandomFills == 0 {
		t.Error("no random fills landed")
	}
}

func TestRandomFillLandsInL2Too(t *testing.T) {
	// Section VII: the nofill demand request and the random fill request
	// both fill the L2 on their way.
	cfg := tinyConfig()
	m := New(cfg)
	th := m.NewThread(ThreadConfig{Mode: ModeRandomFill, Window: rng.Window{A: 0, B: 7}})
	th.Step(mem.Access{Addr: mem.AddrOf(512)})
	th.Drain()
	if !m.L2().Probe(512) {
		t.Error("demand line missing from L2 after nofill forward")
	}
	if m.L2Accesses() < 2 {
		t.Errorf("L2 accesses = %d, want demand + random fill", m.L2Accesses())
	}
}

func TestDisableSecretBypassesL1(t *testing.T) {
	m := New(tinyConfig())
	th := m.NewThread(ThreadConfig{Mode: ModeDisableSecret})
	a := mem.Access{Addr: mem.AddrOf(77), Secret: true}
	for i := 0; i < 10; i++ {
		th.Step(a)
		th.Drain()
	}
	res := th.Result()
	if res.SecretBypass != 10 {
		t.Errorf("SecretBypass = %d", res.SecretBypass)
	}
	if m.L1().Probe(77) {
		t.Error("secret line cached despite disable-cache mode")
	}
	if res.Hits != 0 {
		t.Errorf("hits = %d, secret accesses must never hit", res.Hits)
	}
	// Non-secret accesses still use the cache normally.
	th.Step(mem.Access{Addr: 0})
	th.Drain()
	if !m.L1().Probe(0) {
		t.Error("non-secret access did not fill L1")
	}
}

func TestPreloadModeLocksRegions(t *testing.T) {
	cfg := tinyConfig()
	cfg.L1Kind = KindPLcache
	m := New(cfg)
	region := mem.Region{Base: 0, Size: 512} // 8 lines into a 16-line cache
	th := m.NewThread(ThreadConfig{Mode: ModePreload, SecretRegions: []mem.Region{region}, Owner: 1})
	for _, l := range region.Lines() {
		if !m.L1().Probe(l) {
			t.Fatalf("preloaded line %d missing", l)
		}
	}
	if th.Cycle() == 0 {
		t.Error("preload cost no cycles")
	}
	// Accesses to the locked region always hit.
	for _, l := range region.Lines() {
		th.Step(mem.Access{Addr: mem.AddrOf(l), Secret: true})
	}
	th.Drain()
	if res := th.Result(); res.Misses != 0 {
		t.Errorf("locked-region accesses missed %d times", res.Misses)
	}
}

func TestPreloadRequiresPLcache(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ModePreload on SA cache did not panic")
		}
	}()
	New(tinyConfig()).NewThread(ThreadConfig{Mode: ModePreload})
}

func TestSMTSharedCacheInterference(t *testing.T) {
	cfg := tinyConfig()
	// Main thread has a working set that fits L1; a streaming background
	// thread thrashes the shared cache, lowering main's throughput
	// versus running alone.
	// Disjoint address spaces: main at lines 1M+, background streaming
	// from line 0 — interference is purely via shared-cache eviction.
	mkMain := func() mem.Trace {
		tr := make(mem.Trace, 3000)
		for i := range tr {
			tr[i] = mem.Access{Addr: mem.AddrOf(mem.Line(1<<20 + i%16)), NonMem: 2}
		}
		return tr
	}
	alone := New(cfg).RunTrace(ThreadConfig{}, mkMain())
	shared := New(cfg).RunSMT(
		ThreadConfig{}, mkMain(),
		ThreadConfig{Owner: 1}, seqTrace(4096, 1, 2),
	)
	if shared.IPC() >= alone.IPC() {
		t.Errorf("SMT co-run IPC %.3f not below solo IPC %.3f", shared.IPC(), alone.IPC())
	}
}

func TestTaggedPrefetcherHelpsStream(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1 = cache.Geometry{SizeBytes: 8 * 1024, Ways: 2}
	// Pure forward stream, 4 accesses per line, large footprint.
	mk := func() mem.Trace {
		tr := make(mem.Trace, 16000)
		for i := range tr {
			tr[i] = mem.Access{Addr: mem.Addr(i * 16), NonMem: 2}
		}
		return tr
	}
	base := New(cfg).RunTrace(ThreadConfig{}, mk())
	mPf := New(cfg)
	mPf.Prefetcher = prefetch.NewTagged()
	pf := mPf.RunTrace(ThreadConfig{}, mk())
	if pf.IPC() <= base.IPC() {
		t.Errorf("tagged prefetcher IPC %.3f not above baseline %.3f", pf.IPC(), base.IPC())
	}
	if pf.Prefetches == 0 {
		t.Error("no prefetches issued")
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	r := Result{Cycles: 100, Instructions: 250, Hits: 30, Misses: 10, Merged: 10}
	if r.IPC() != 2.5 {
		t.Errorf("IPC = %v", r.IPC())
	}
	if r.MPKI() != 40 {
		t.Errorf("MPKI = %v", r.MPKI())
	}
	if r.HitRate() != 0.6 {
		t.Errorf("HitRate = %v", r.HitRate())
	}
	var zero Result
	if zero.IPC() != 0 || zero.MPKI() != 0 || zero.HitRate() != 0 {
		t.Error("zero Result derived metrics must be 0")
	}
}

func TestFillModeStrings(t *testing.T) {
	want := []struct {
		mode FillMode
		str  string
	}{
		{ModeDemand, "demand"},
		{ModeRandomFill, "randomfill"},
		{ModeDisableSecret, "disable-cache"},
		{ModePreload, "plcache+preload"},
	}
	for _, tc := range want {
		if tc.mode.String() != tc.str {
			t.Errorf("%d.String() = %q, want %q", int(tc.mode), tc.mode.String(), tc.str)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	m := New(Config{})
	cfg := m.Config()
	if cfg.L1.SizeBytes != 32*1024 || cfg.L1.Ways != 4 {
		t.Errorf("default L1 %v", cfg.L1)
	}
	if cfg.L2.SizeBytes != 2*1024*1024 || cfg.L2.Ways != 8 {
		t.Errorf("default L2 %v", cfg.L2)
	}
	if cfg.MissQueue != 4 || cfg.IssueWidth != 4 {
		t.Errorf("defaults %+v", cfg)
	}
}

func TestNewcacheL1Kind(t *testing.T) {
	cfg := tinyConfig()
	cfg.L1Kind = KindNewcache
	m := New(cfg)
	tr := seqTrace(100, 1, 1)
	res := m.RunTrace(ThreadConfig{}, tr)
	if res.Misses == 0 {
		t.Error("no misses on cold Newcache")
	}
	if res.Instructions != 200 {
		t.Errorf("instructions %d", res.Instructions)
	}
}
