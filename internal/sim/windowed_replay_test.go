package sim

import (
	"fmt"
	"testing"

	"randfill/internal/cache"
	"randfill/internal/parexp"
	"randfill/internal/rng"
	"randfill/internal/trace"
)

// TestBatchReplayWorkerInvariance is the windowed-replay acceptance check by
// name, mirroring the parexp metamorphic suite: for a fixed seed and window
// plan, the per-window results and their index-ordered merge are
// byte-identical at workers 1, 2 and 8, and a repeated run reproduces the
// exact bytes.
func TestBatchReplayWorkerInvariance(t *testing.T) {
	tr, _ := replayPinTrace()
	ct := trace.Compile(tr)

	cfg := DefaultConfig()
	cfg.L1 = cache.Geometry{SizeBytes: 1024, Ways: 2}
	cfg.Seed = 21
	tc := ThreadConfig{Mode: ModeRandomFill, Window: rng.Window{A: 8, B: 7}}

	render := func(workers int) string {
		rs := ReplayWindows(cfg, tc, ct, parexp.Shards, workers)
		s := ""
		for i, r := range rs {
			s += fmt.Sprintf("w%d %+v\n", i, r)
		}
		return s + fmt.Sprintf("merged %+v\n", MergeResults(rs))
	}

	want := render(1)
	for _, w := range []int{2, 8} {
		if got := render(w); got != want {
			t.Fatalf("workers=%d changed the windowed replay output\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
				w, want, w, got)
		}
	}
	if got := render(8); got != want {
		t.Fatalf("repeated run at workers=8 changed the output")
	}
}

// TestReplayWindowsPlanIsFixed pins the window plan itself: windows, not
// workers, decide which accesses replay under which shard seed, so changing
// the worker count must not change the plan while changing the window count
// must.
func TestReplayWindowsPlanIsFixed(t *testing.T) {
	tr, _ := replayPinTrace()
	ct := trace.Compile(tr)
	cfg := DefaultConfig()
	cfg.Seed = 4
	tc := ThreadConfig{}

	a := ReplayWindows(cfg, tc, ct, 4, 1)
	b := ReplayWindows(cfg, tc, ct, 8, 1)
	if fmt.Sprintf("%+v", a) == fmt.Sprintf("%+v", b) {
		t.Fatal("4-window and 8-window plans produced identical results; the plan is not part of the replay definition")
	}
	var an, bn uint64
	for _, r := range a {
		an += r.Instructions
	}
	for _, r := range b {
		bn += r.Instructions
	}
	if an != bn {
		t.Fatalf("window plans cover different instruction totals: %d vs %d", an, bn)
	}
}
