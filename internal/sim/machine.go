package sim

import (
	"randfill/internal/cache"
	"randfill/internal/core"
	"randfill/internal/hierarchy"
	"randfill/internal/mem"
	"randfill/internal/plcache"
	"randfill/internal/prefetch"
	"randfill/internal/rng"
	"randfill/internal/trace"
)

// Machine is one simulated core (possibly SMT) over an N-level cache
// hierarchy (by default the Table IV two-level configuration: a private L1
// data cache, a unified L2, and a DRAM latency model). Threads are created
// with NewThread and share every level. The machine owns levels 1..N-1
// through an internal/hierarchy.Hierarchy with one uniform miss path; the
// L1 (level 0) is driven by the per-thread fill engines, which model MSHR
// occupancy and the random fill queue.
type Machine struct {
	cfg     Config
	root    *rng.Source
	hier    *hierarchy.Hierarchy
	threads []*Thread

	// Prefetcher, if set, observes L1 demand traffic and injects
	// prefetch fills (Section VII's tagged-prefetcher comparison).
	Prefetcher prefetch.Prefetcher

	// ctScratch is the machine's reusable trace-compilation buffer, so
	// repeated RunTrace calls (Table III sweeps replay the same few traces
	// against many configurations) recompile without allocating.
	ctScratch trace.Compiled
}

// New builds a machine from cfg (zero fields take Table IV defaults).
func New(cfg Config) *Machine {
	cfg = cfg.withDefaults()
	root := rng.New(cfg.Seed)
	return &Machine{
		cfg:  cfg,
		root: root,
		hier: hierarchy.New(cfg.MemLat, buildLevels(cfg, root)...),
	}
}

// Config returns the machine's (defaulted) configuration.
func (m *Machine) Config() Config { return m.cfg }

// Hierarchy returns the machine's cache hierarchy, for per-level stats and
// direct level inspection.
func (m *Machine) Hierarchy() *hierarchy.Hierarchy { return m.hier }

// L1 returns the L1 data cache.
func (m *Machine) L1() cache.Cache { return m.hier.Level(0).Cache }

// L2 returns the first cache level below the L1.
func (m *Machine) L2() cache.Cache { return m.hier.Level(1).Cache }

// L2Accesses returns the number of requests that reached the L2.
func (m *Machine) L2Accesses() uint64 { return m.hier.Level(1).Stats().Accesses }

// L2FillStats returns the L2 random fill engine's decision counters
// (nofills, random fills issued/dropped/clamped), or nil when the L2
// demand-fills (Config.L2Window zero).
func (m *Machine) L2FillStats() *core.Stats { return m.hier.Level(1).FillStats() }

// MemAccesses returns the number of fetch requests that reached memory.
func (m *Machine) MemAccesses() uint64 { return m.hier.MemAccesses() }

// Writebacks returns the number of dirty L1 victims written back to the L2.
func (m *Machine) Writebacks() uint64 { return m.hier.Level(1).Stats().WritebacksIn }

// fillL1 installs a line in the L1 on behalf of a thread; the hierarchy
// cascades any dirty victim into the levels below (allocating on a
// write-back miss). Write-back traffic does not stall the processor (write
// buffers), but it is counted.
func (m *Machine) fillL1(line mem.Line, opts cache.FillOpts) {
	m.hier.Fill(0, line, opts)
}

// fetchBelow services an L1 miss (or background fill) through the levels
// below the L1, applying each level's own fill policy, and returns the
// additional latency beyond the L1 hit path.
func (m *Machine) fetchBelow(line mem.Line, write bool) uint64 {
	return m.hier.Fetch(1, line, write)
}

// NewThread creates a hardware thread with the given fill policy. For
// ModePreload the thread's SecretRegions are preloaded and locked in the
// PLcache immediately (and the preload traffic is charged to the thread as
// start-up cycles).
func (m *Machine) NewThread(tc ThreadConfig) *Thread {
	t := &Thread{
		machine: m,
		cfg:     tc,
		engine:  nil,
		mshr:    make([]mshrEntry, m.cfg.MissQueue),
	}
	t.engine = coreEngine(m.L1(), m.root.Split(uint64(100+len(m.threads))))
	t.engine.SetOwner(tc.Owner)
	t.engine.SetDropOnHit(!tc.KeepRedundantFills)
	if dc, ok := m.L1().(domainCache); ok {
		t.domainL1 = dc
	}
	if tc.Mode == ModeRandomFill {
		t.engine.SetRR(tc.Window.A, tc.Window.B)
	}
	if tc.Mode == ModePreload {
		pl, ok := m.L1().(*plcache.PLcache)
		if !ok {
			panic("sim: ModePreload requires L1Kind == KindPLcache")
		}
		for _, r := range tc.SecretRegions {
			for _, l := range r.Lines() {
				// Preload traffic goes through the L2 like any
				// other fill and costs the thread time up front.
				t.cycle += float64(m.fetchBelow(l, false))
				pl.Fill(l, cache.FillOpts{Lock: true, Owner: tc.Owner})
			}
		}
	}
	m.threads = append(m.threads, t)
	return t
}

// RunTrace is the single-thread convenience: create a demand-fetch or
// configured thread, run the trace to completion, and return its result.
// The trace is compiled once and replayed batched; every RunTrace golden in
// the test suite therefore doubles as an identity pin of batched vs.
// per-access replay (ReplayBatch documents why the two are the same
// computation).
func (m *Machine) RunTrace(tc ThreadConfig, tr mem.Trace) Result {
	t := m.NewThread(tc)
	t.ReplayBatch(trace.CompileInto(&m.ctScratch, tr))
	t.Drain()
	return t.Result()
}

// RunTraceSteady measures steady-state behaviour: the trace runs once to
// warm the caches, then runs again; the returned result covers only the
// measured second pass.
func (m *Machine) RunTraceSteady(tc ThreadConfig, tr mem.Trace) Result {
	t := m.NewThread(tc)
	ct := trace.CompileInto(&m.ctScratch, tr)
	t.RunCompiled(ct)
	warm := t.Result()
	t.RunCompiled(ct)
	return t.Result().Sub(warm)
}

// smtPass interleaves the two threads until the main thread has executed
// its whole trace once; the background thread loops over its trace,
// resuming from index bi, which is returned for the next pass.
func (m *Machine) smtPass(main, bg *Thread, mainTrace, bgTrace mem.Trace, bi int) int {
	mi := 0
	for mi < len(mainTrace) {
		// Advance whichever thread is behind in simulated time, so
		// the interleaving of shared-cache updates tracks the two
		// threads' relative progress.
		if bg.cycle <= main.cycle && len(bgTrace) > 0 {
			bg.Step(bgTrace[bi])
			bi++
			if bi == len(bgTrace) {
				bi = 0
			}
			continue
		}
		main.Step(mainTrace[mi])
		mi++
	}
	main.Drain()
	return bi
}

// RunSMT co-runs two threads: the main thread executes its trace once; the
// background thread loops over its trace until the main thread finishes
// (the paper's Figure 8 setup, where AES enc+dec runs continuously next to
// a SPEC workload). It returns the main thread's result.
func (m *Machine) RunSMT(mainCfg ThreadConfig, mainTrace mem.Trace, bgCfg ThreadConfig, bgTrace mem.Trace) Result {
	main := m.NewThread(mainCfg)
	bg := m.NewThread(bgCfg)
	m.smtPass(main, bg, mainTrace, bgTrace, 0)
	return main.Result()
}

// RunSMTSteady is RunSMT with a warm-up pass: the main trace runs once
// unmeasured (the background thread co-running throughout), then the
// measured pass runs; the result covers only the measured pass.
func (m *Machine) RunSMTSteady(mainCfg ThreadConfig, mainTrace mem.Trace, bgCfg ThreadConfig, bgTrace mem.Trace) Result {
	main := m.NewThread(mainCfg)
	bg := m.NewThread(bgCfg)
	bi := m.smtPass(main, bg, mainTrace, bgTrace, 0)
	warm := main.Result()
	m.smtPass(main, bg, mainTrace, bgTrace, bi)
	return main.Result().Sub(warm)
}
