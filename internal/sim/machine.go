package sim

import (
	"randfill/internal/cache"
	"randfill/internal/mem"
	"randfill/internal/newcache"
	"randfill/internal/nomo"
	"randfill/internal/plcache"
	"randfill/internal/prefetch"
	"randfill/internal/rng"
	"randfill/internal/rpcache"
)

// Indirection points so config.go does not import the concrete secure-cache
// packages directly (keeps the build graph one-way: sim depends on the
// cache architectures, never the reverse).
func newcacheBuild(size, extraBits int, src *rng.Source) cache.Cache {
	return newcache.New(size, extraBits, src)
}

func plcacheBuild(geom cache.Geometry) cache.Cache {
	return plcache.New(geom)
}

func rpcacheBuild(geom cache.Geometry, src *rng.Source) cache.Cache {
	return rpcache.New(geom, src)
}

func nomoBuild(geom cache.Geometry, threads, reserved int) cache.Cache {
	return nomo.New(geom, threads, reserved)
}

// Machine is one simulated core (possibly SMT) with a private L1 data
// cache, a unified L2, and a DRAM latency model. Threads are created with
// NewThread and share the L1 and L2.
type Machine struct {
	cfg     Config
	root    *rng.Source
	l1      cache.Cache
	l2      *cache.SetAssoc
	threads []*Thread

	// Prefetcher, if set, observes L1 demand traffic and injects
	// prefetch fills (Section VII's tagged-prefetcher comparison).
	Prefetcher prefetch.Prefetcher

	// l2gen, when non-nil, applies random fill at the L2 (Config.L2Window).
	l2gen *rng.WindowGenerator

	// Traffic counters, shared across threads.
	l2Accesses  uint64 // requests arriving at L2 (demand + random fill + prefetch)
	l2Misses    uint64 // of those, L2 misses (= memory accesses)
	memAccesses uint64
	writebacks  uint64 // dirty L1 victims written back to the L2
}

// New builds a machine from cfg (zero fields take Table IV defaults).
func New(cfg Config) *Machine {
	cfg = cfg.withDefaults()
	root := rng.New(cfg.Seed)
	m := &Machine{
		cfg:  cfg,
		root: root,
		l1:   cfg.buildL1(root.Split(1)),
		l2:   cache.NewSetAssoc(cfg.L2, cache.LRU{}),
	}
	if !cfg.L2Window.Zero() {
		m.l2gen = rng.NewWindowGenerator(root.Split(2))
		m.l2gen.SetWindow(cfg.L2Window)
	}
	return m
}

// Config returns the machine's (defaulted) configuration.
func (m *Machine) Config() Config { return m.cfg }

// L1 returns the L1 data cache.
func (m *Machine) L1() cache.Cache { return m.l1 }

// L2 returns the unified L2 cache.
func (m *Machine) L2() *cache.SetAssoc { return m.l2 }

// L2Accesses returns the number of requests that reached the L2.
func (m *Machine) L2Accesses() uint64 { return m.l2Accesses }

// MemAccesses returns the number of requests that reached memory.
func (m *Machine) MemAccesses() uint64 { return m.memAccesses }

// Writebacks returns the number of dirty L1 victims written back to the L2.
func (m *Machine) Writebacks() uint64 { return m.writebacks }

// fillL1 installs a line in the L1 on behalf of a thread and handles the
// write-back of a dirty victim: the victim's data is written into the L2
// (allocating there if needed — our L2 is inclusive of nothing, so a
// write-back can miss). Write-back traffic does not stall the processor
// (write buffers), but it is counted.
func (m *Machine) fillL1(line mem.Line, opts cache.FillOpts) {
	v := m.l1.Fill(line, opts)
	if v.Valid && v.Dirty {
		m.writebacks++
		if !m.l2.Lookup(v.Line, true) {
			m.l2.Fill(v.Line, cache.FillOpts{Dirty: true})
		}
	}
}

// accessL2 performs the L2 side of an L1 miss (or background fill): looks
// up the L2, fills it on a miss (the L2 always demand-fills), and returns
// the additional latency beyond the L1 hit path.
func (m *Machine) accessL2(line mem.Line, write bool) uint64 {
	m.l2Accesses++
	if m.l2.Lookup(line, write) {
		return m.cfg.L2HitLat
	}
	m.l2Misses++
	m.memAccesses++
	if m.l2gen == nil {
		m.l2.Fill(line, cache.FillOpts{Dirty: write})
	} else {
		// L2 random fill: forward the line upward uncached and install
		// a random neighbor instead (dropped if present).
		off := m.l2gen.Offset()
		if off >= 0 || uint64(-off) <= uint64(line) {
			j := mem.Line(int64(line) + int64(off))
			if !m.l2.Probe(j) {
				m.memAccesses++
				m.l2.Fill(j, cache.FillOpts{})
			}
		}
	}
	return m.cfg.L2HitLat + m.cfg.MemLat
}

// NewThread creates a hardware thread with the given fill policy. For
// ModePreload the thread's SecretRegions are preloaded and locked in the
// PLcache immediately (and the preload traffic is charged to the thread as
// start-up cycles).
func (m *Machine) NewThread(tc ThreadConfig) *Thread {
	t := &Thread{
		machine: m,
		cfg:     tc,
		engine:  nil,
		mshr:    make([]mshrEntry, m.cfg.MissQueue),
	}
	t.engine = coreEngine(m.l1, m.root.Split(uint64(100+len(m.threads))))
	t.engine.SetOwner(tc.Owner)
	t.engine.SetDropOnHit(!tc.KeepRedundantFills)
	if dc, ok := m.l1.(domainCache); ok {
		t.domainL1 = dc
	}
	if tc.Mode == ModeRandomFill {
		t.engine.SetRR(tc.Window.A, tc.Window.B)
	}
	if tc.Mode == ModePreload {
		pl, ok := m.l1.(*plcache.PLcache)
		if !ok {
			panic("sim: ModePreload requires L1Kind == KindPLcache")
		}
		for _, r := range tc.SecretRegions {
			for _, l := range r.Lines() {
				// Preload traffic goes through the L2 like any
				// other fill and costs the thread time up front.
				t.cycle += float64(m.accessL2(l, false))
				pl.Fill(l, cache.FillOpts{Lock: true, Owner: tc.Owner})
			}
		}
	}
	m.threads = append(m.threads, t)
	return t
}

// RunTrace is the single-thread convenience: create a demand-fetch or
// configured thread, run the trace to completion, and return its result.
func (m *Machine) RunTrace(tc ThreadConfig, trace mem.Trace) Result {
	t := m.NewThread(tc)
	for i := range trace {
		t.Step(trace[i])
	}
	t.Drain()
	return t.Result()
}

// RunTraceSteady measures steady-state behaviour: the trace runs once to
// warm the caches, then runs again; the returned result covers only the
// measured second pass.
func (m *Machine) RunTraceSteady(tc ThreadConfig, trace mem.Trace) Result {
	t := m.NewThread(tc)
	t.Run(trace)
	warm := t.Result()
	t.Run(trace)
	return t.Result().Sub(warm)
}

// smtPass interleaves the two threads until the main thread has executed
// its whole trace once; the background thread loops over its trace,
// resuming from index bi, which is returned for the next pass.
func (m *Machine) smtPass(main, bg *Thread, mainTrace, bgTrace mem.Trace, bi int) int {
	mi := 0
	for mi < len(mainTrace) {
		// Advance whichever thread is behind in simulated time, so
		// the interleaving of shared-cache updates tracks the two
		// threads' relative progress.
		if bg.cycle <= main.cycle && len(bgTrace) > 0 {
			bg.Step(bgTrace[bi])
			bi++
			if bi == len(bgTrace) {
				bi = 0
			}
			continue
		}
		main.Step(mainTrace[mi])
		mi++
	}
	main.Drain()
	return bi
}

// RunSMT co-runs two threads: the main thread executes its trace once; the
// background thread loops over its trace until the main thread finishes
// (the paper's Figure 8 setup, where AES enc+dec runs continuously next to
// a SPEC workload). It returns the main thread's result.
func (m *Machine) RunSMT(mainCfg ThreadConfig, mainTrace mem.Trace, bgCfg ThreadConfig, bgTrace mem.Trace) Result {
	main := m.NewThread(mainCfg)
	bg := m.NewThread(bgCfg)
	m.smtPass(main, bg, mainTrace, bgTrace, 0)
	return main.Result()
}

// RunSMTSteady is RunSMT with a warm-up pass: the main trace runs once
// unmeasured (the background thread co-running throughout), then the
// measured pass runs; the result covers only the measured pass.
func (m *Machine) RunSMTSteady(mainCfg ThreadConfig, mainTrace mem.Trace, bgCfg ThreadConfig, bgTrace mem.Trace) Result {
	main := m.NewThread(mainCfg)
	bg := m.NewThread(bgCfg)
	bi := m.smtPass(main, bg, mainTrace, bgTrace, 0)
	warm := main.Result()
	m.smtPass(main, bg, mainTrace, bgTrace, bi)
	return main.Result().Sub(warm)
}
