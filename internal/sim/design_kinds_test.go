package sim

import (
	"testing"

	"randfill/internal/cache"
	"randfill/internal/mem"
	"randfill/internal/rng"
)

// TestScatterAndMirageKinds: the two registry-backed L1 kinds run end to
// end on the simulator — deterministic per seed, demand-filling, and with
// working sets beyond one set's reach on the skewed/associative stores.
func TestScatterAndMirageKinds(t *testing.T) {
	for _, kind := range []CacheKind{KindScatter, KindMirage} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			run := func(seed uint64) Result {
				cfg := tinyConfig()
				cfg.L1Kind = kind
				cfg.Seed = seed
				m := New(cfg)
				th := m.NewThread(ThreadConfig{})
				// Two passes over 8 lines (inside the 16-line L1): pass one
				// misses, pass two hits on a demand-fill design. Drain
				// between passes so second-pass accesses hit installed
				// lines instead of merging into in-flight misses.
				for pass := 0; pass < 2; pass++ {
					for i := 0; i < 8; i++ {
						th.Step(mem.Access{Addr: mem.AddrOf(mem.Line(i)), NonMem: 1})
					}
					th.Drain()
				}
				return th.Result()
			}
			res := run(3)
			// Every first-pass access misses; second-pass hits depend on
			// placement (the skewed cache may self-collide on 8 lines), but
			// a demand-fill design must retain most of the tiny working set.
			if res.Misses+res.Hits != 16 {
				t.Fatalf("misses %d + hits %d != 16 accesses", res.Misses, res.Hits)
			}
			if res.Misses < 8 || res.Hits < 6 {
				t.Fatalf("misses %d hits %d, want >= 8 cold misses and most of pass two hitting", res.Misses, res.Hits)
			}
			if again := run(3); again != res {
				t.Errorf("same seed diverged: %+v vs %+v", res, again)
			}
		})
	}
}

// TestBuildL1NewKinds: buildL1 constructs the right concrete types and
// unknown kinds still panic.
func TestBuildL1NewKinds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1 = cache.Geometry{SizeBytes: 4 * 1024, Ways: 4}
	cfg.L1Kind = KindScatter
	if c := cfg.buildL1(rng.New(1)); c.NumLines() != 64 {
		t.Errorf("scattercache L1 has %d lines, want 64", c.NumLines())
	}
	cfg.L1Kind = KindMirage
	if c := cfg.buildL1(rng.New(1)); c.NumLines() != 64 {
		t.Errorf("mirage L1 has %d lines, want 64", c.NumLines())
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown kind did not panic")
		}
	}()
	cfg.L1Kind = "bogus"
	cfg.buildL1(rng.New(1))
}
