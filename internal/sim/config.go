// Package sim is the timing simulator the experiments run on: a trace-driven
// model of a 4-wide out-of-order processor with an N-level non-blocking
// write-back cache hierarchy (two levels in the paper's gem5 configuration,
// Table IV), reproducing the evaluation at the granularity the experiments
// need — hit/miss behaviour, miss-queue (MSHR) occupancy and merging,
// per-level fill policies, and SMT co-execution. The hierarchy itself (levels
// below the L1, the uniform miss path, cross-level write-back) is
// internal/hierarchy; this package adds the processor and thread model.
//
// The model is deliberately simple and documented in DESIGN.md: instruction
// issue costs 1/IssueWidth cycles per instruction; independent misses
// overlap up to the miss-queue capacity; an access marked Dependent waits
// for all outstanding demand misses (the load-to-use serialization the
// AES round structure produces); random-fill and prefetch requests ride the
// same miss queue in the background.
package sim

import (
	"fmt"

	"randfill/internal/cache"
	"randfill/internal/mem"
	"randfill/internal/rng"
)

// CacheKind selects the L1 data cache architecture.
type CacheKind string

const (
	// KindSA is a conventional set-associative cache (Table IV baseline).
	KindSA CacheKind = "sa"
	// KindNewcache is the Newcache secure cache.
	KindNewcache CacheKind = "newcache"
	// KindPLcache is the PLcache partition-locked cache.
	KindPLcache CacheKind = "plcache"
	// KindRPcache is the RPcache permutation-randomized cache.
	KindRPcache CacheKind = "rpcache"
	// KindNoMo is the NoMo statically way-partitioned SMT cache.
	KindNoMo CacheKind = "nomo"
	// KindScatter is the ScatterCache-style skewed-index cache.
	KindScatter CacheKind = "scattercache"
	// KindMirage is the MIRAGE-style fully-associative random-eviction
	// cache.
	KindMirage CacheKind = "mirage"
)

// Config mirrors the paper's Table IV simulator configuration.
type Config struct {
	// L1 data cache geometry and architecture.
	L1     cache.Geometry
	L1Kind CacheKind
	// L1Policy is the L1 replacement policy name (see cache.PolicyNames:
	// lru, fifo, random, plru, srrip, brrip). It applies to every L1Kind:
	// "" selects the kind's historical default (LRU for the SA cache and
	// the recency-based designs, uniform-random for the randomized ones),
	// and any explicit name overrides the design's victim selection — the
	// Peters et al. policy × design axis PolicyMatrix sweeps.
	L1Policy string
	// ExtraBits is Newcache's number of extra index bits k.
	ExtraBits int

	// L2 unified cache geometry (always set-associative LRU).
	L2 cache.Geometry

	// Latencies in cycles.
	L1HitLat uint64 // L1 hit (Table IV: 1)
	L2HitLat uint64 // L1 miss, L2 hit (Table IV: 20)
	MemLat   uint64 // additional DRAM latency on L2 miss

	// MissQueue is the number of miss-queue (MSHR) entries per thread
	// (Table IV: 4; the security evaluation also uses 1).
	MissQueue int

	// NoMoThreads and NoMoReserved configure the NoMo partitioning
	// (defaults: 2 threads, 1 reserved way each).
	NoMoThreads  int
	NoMoReserved int

	// FillQueueCap bounds the random fill queue (Figure 3's FIFO;
	// default 64). An ablation knob: a tiny queue drops fills under
	// bursts of back-to-back misses.
	FillQueueCap int

	// L2Window, when non-zero, applies the random fill policy at the L2
	// as well: an L2 miss forwards the line upward without installing it
	// and installs a random neighbor within the window instead (the
	// "both L1 and L2 are random fill caches" variant of Section VI).
	// Ignored when Levels is set.
	L2Window rng.Window

	// Levels, when non-empty, replaces the single L2 with an explicit
	// stack of cache levels below the L1 (nearest the L1 first), each a
	// set-associative LRU cache with its own hit latency and optional
	// random fill window. When empty, the classic L2/L2HitLat/L2Window
	// fields define a single below-L1 level, which keeps the historical
	// two-level RNG stream layout byte-identical.
	Levels []LevelConfig

	// IssueWidth is the processor issue width (Table IV: 4-way OoO).
	IssueWidth int

	// Seed drives all simulator randomness (replacement, fill windows).
	Seed uint64
}

// DefaultConfig returns the Table IV baseline: 32 KB 4-way L1D with LRU,
// 2 MB 8-way L2, 1/20-cycle hit latencies, DDR3-1600-class memory latency,
// 4 miss queue entries, 4-wide issue.
func DefaultConfig() Config {
	return Config{
		L1:         cache.Geometry{SizeBytes: 32 * 1024, Ways: 4},
		L1Kind:     KindSA,
		L1Policy:   "", // kind default: LRU for KindSA (Table IV)
		ExtraBits:  4,
		L2:         cache.Geometry{SizeBytes: 2 * 1024 * 1024, Ways: 8},
		L1HitLat:   1,
		L2HitLat:   20,
		MemLat:     160,
		MissQueue:  4,
		IssueWidth: 4,
		Seed:       1,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.L1.SizeBytes == 0 {
		c.L1 = d.L1
	}
	if c.L1Kind == "" {
		c.L1Kind = KindSA
	}
	if c.L2.SizeBytes == 0 {
		c.L2 = d.L2
	}
	if c.L1HitLat == 0 {
		c.L1HitLat = d.L1HitLat
	}
	if c.L2HitLat == 0 {
		c.L2HitLat = d.L2HitLat
	}
	if c.MemLat == 0 {
		c.MemLat = d.MemLat
	}
	if c.MissQueue == 0 {
		c.MissQueue = d.MissQueue
	}
	if c.IssueWidth == 0 {
		c.IssueWidth = d.IssueWidth
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.ExtraBits == 0 {
		c.ExtraBits = d.ExtraBits
	}
	if c.FillQueueCap == 0 {
		c.FillQueueCap = 64
	}
	for i := range c.Levels {
		if c.Levels[i].Geom.SizeBytes == 0 {
			c.Levels[i].Geom = d.L2
		}
		if c.Levels[i].HitLat == 0 {
			c.Levels[i].HitLat = d.L2HitLat
		}
	}
	return c
}

// LevelConfig describes one cache level below the L1 (see Config.Levels).
type LevelConfig struct {
	// Geom is the level's set-associative geometry (LRU replacement).
	Geom cache.Geometry
	// HitLat is the latency charged when a request reaches this level.
	HitLat uint64
	// Window, when non-zero, runs the random fill policy at this level
	// through a full core.Engine (nofill forwarding, drop-if-present,
	// underflow clamping, drop stats).
	Window rng.Window
	// Policy names the level's replacement policy; "" is LRU and keeps
	// the historical RNG stream layout byte-identical (an RNG-backed
	// policy opens a dedicated stream, see buildLevels).
	Policy string
}

// belowL1 returns the configured below-L1 level stack: Levels when set,
// otherwise the classic single L2.
func (c Config) belowL1() []LevelConfig {
	if len(c.Levels) > 0 {
		return c.Levels
	}
	return []LevelConfig{{Geom: c.L2, HitLat: c.L2HitLat, Window: c.L2Window}}
}

// buildL1 constructs the configured L1 cache. Stream rules: the SA cache
// keeps its historical shape (the random policy draws from src itself, no
// split); for the secure designs a non-default RNG-backed policy derives a
// dedicated stream via src.Split(9) before the design consumes src, while
// ""/draw-free policies split nothing — so every default configuration's
// draw sequence is byte-identical to the pre-policy-parameterization layout.
func (c Config) buildL1(src *rng.Source) cache.Cache {
	var pol cache.Policy
	if c.L1Kind != KindSA && c.L1Policy != "" {
		var psrc *rng.Source
		if cache.PolicyNeedsRNG(c.L1Policy) {
			psrc = src.Split(9)
		}
		p, err := cache.PolicyByName(c.L1Policy, psrc)
		if err != nil {
			panic(err)
		}
		pol = p
	}
	switch c.L1Kind {
	case KindSA:
		sp, err := cache.PolicyByName(c.L1Policy, src)
		if err != nil {
			panic(err)
		}
		return cache.NewSetAssoc(c.L1, sp)
	case KindNewcache:
		return buildNewcache(c.L1.SizeBytes, c.ExtraBits, src, pol)
	case KindPLcache:
		return buildPLcache(c.L1, pol)
	case KindRPcache:
		return buildRPcache(c.L1, src, pol)
	case KindNoMo:
		threads, reserved := c.NoMoThreads, c.NoMoReserved
		if threads == 0 {
			threads = 2
		}
		if reserved == 0 {
			reserved = 1
		}
		return buildNoMo(c.L1, threads, reserved, pol)
	case KindScatter:
		return buildScatterCache(c.L1, src, pol)
	case KindMirage:
		return buildMirage(c.L1, src, pol)
	default:
		panic(fmt.Sprintf("sim: unknown L1 cache kind %q", c.L1Kind))
	}
}

// FillMode selects a thread's cache fill policy (the axis the paper's
// evaluation sweeps).
type FillMode int

const (
	// ModeDemand is the conventional demand fetch baseline.
	ModeDemand FillMode = iota
	// ModeRandomFill is the paper's random fill policy; the window comes
	// from ThreadConfig.Window.
	ModeRandomFill
	// ModeDisableSecret disables the cache for security-critical
	// accesses (the "disable cache" constant-time baseline): accesses
	// with Secret set bypass the L1 entirely.
	ModeDisableSecret
	// ModePreload is the PLcache+preload baseline: the thread's
	// SecretRegions are preloaded and locked at thread creation
	// (requires L1Kind == KindPLcache).
	ModePreload
	// ModeInforming is the "informing loads" baseline (Kong et al.,
	// HPCA 2009): security-critical loads that miss invoke a user-level
	// exception handler that reloads every security-critical line. The
	// handler's invocation overhead plus the reload traffic is charged
	// on every secret-access miss — the approach the paper finds slower
	// than PLcache+preload and abusable for denial of service.
	ModeInforming
)

func (m FillMode) String() string {
	switch m {
	case ModeDemand:
		return "demand"
	case ModeRandomFill:
		return "randomfill"
	case ModeDisableSecret:
		return "disable-cache"
	case ModePreload:
		return "plcache+preload"
	case ModeInforming:
		return "informing-loads"
	default:
		return fmt.Sprintf("FillMode(%d)", int(m))
	}
}

// ThreadConfig describes one hardware thread's fill policy.
type ThreadConfig struct {
	Mode FillMode
	// Window is the random fill window (ModeRandomFill only).
	Window rng.Window
	// SecretRegions lists the security-critical regions, used by
	// ModePreload (what to lock) and available to ModeDisableSecret.
	SecretRegions []mem.Region
	// Owner is the process id recorded on lines this thread fills.
	Owner int
	// KeepRedundantFills disables the engine's drop-if-present tag check
	// (ablation only).
	KeepRedundantFills bool
}
