package sim

import (
	"fmt"
	"testing"

	"randfill/internal/cache"
	"randfill/internal/mem"
	"randfill/internal/rng"
)

// This file pins the hierarchy refactor to the pre-refactor machine,
// bit for bit. The expected strings below were captured by running the
// two-level machine as it existed BEFORE internal/hierarchy replaced
// accessL2/fillL1/l2gen, on the recorded trace of recordedTrace(). The
// refactored machine must reproduce every counter and the fractional cycle
// count exactly — same RNG draws in the same order, same probes, same
// memory traffic. If this test fails, the uniform miss path no longer
// matches the historical L2 semantics and every golden is suspect.

// recordedTrace is a mixed read/write trace with set conflicts, dependent
// loads, and a hot secondary region — enough to exercise MSHR merging, the
// fill queue, write-backs, and both fill engines.
func recordedTrace() mem.Trace {
	src := rng.New(42)
	tr := make(mem.Trace, 4000)
	for i := range tr {
		line := mem.Line(src.Intn(512))
		if src.Bool(0.2) {
			line = mem.Line(4096 + src.Intn(64))
		}
		a := mem.Access{Addr: mem.AddrOf(line), NonMem: uint32(src.Intn(4))}
		if src.Bool(0.3) {
			a.Kind = mem.Write
		}
		if src.Bool(0.15) {
			a.Dependent = true
		}
		tr[i] = a
	}
	return tr
}

func compatSummary(cfg Config, tc ThreadConfig) string {
	m := New(cfg)
	res := m.RunTrace(tc, recordedTrace())
	return fmt.Sprintf("cycles=%.2f instr=%d hits=%d misses=%d merged=%d rf=%d stall=%.2f l2=%d mem=%d wb=%d",
		res.Cycles, res.Instructions, res.Hits, res.Misses, res.Merged,
		res.RandomFills, res.StallCycles, m.L2Accesses(), m.MemAccesses(), m.Writebacks())
}

func TestHierarchyMatchesPreRefactorMachine(t *testing.T) {
	tiny := DefaultConfig()
	tiny.L1 = cache.Geometry{SizeBytes: 1024, Ways: 2}
	tiny.L2 = cache.Geometry{SizeBytes: 16 * 1024, Ways: 4}
	tiny.Seed = 7
	l2rf := tiny
	l2rf.L2Window = rng.Window{A: 4, B: 3}

	cases := []struct {
		name string
		cfg  Config
		tc   ThreadConfig
		want string
	}{
		{"demand", tiny, ThreadConfig{},
			"cycles=130807.50 instr=9971 hits=147 misses=3831 merged=22 rf=0 stall=128134.75 l2=3831 mem=2204 wb=1178"},
		{"randomfill", tiny, ThreadConfig{Mode: ModeRandomFill, Window: rng.Window{A: 8, B: 7}},
			"cycles=224904.25 instr=9971 hits=119 misses=3861 merged=20 rf=3575 stall=222051.50 l2=7436 mem=4228 wb=32"},
		{"l2window", l2rf, ThreadConfig{Mode: ModeRandomFill, Window: rng.Window{A: 8, B: 7}},
			"cycles=219197.50 instr=9971 hits=109 misses=3866 merged=25 rf=3560 stall=216524.75 l2=7426 mem=6644 wb=30"},
		{"default-demand", Config{Seed: 1}, ThreadConfig{},
			"cycles=33202.00 instr=9971 hits=3154 misses=830 merged=16 rf=0 stall=30689.25 l2=830 mem=575 wb=184"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := compatSummary(c.cfg, c.tc); got != c.want {
				t.Errorf("drifted from pre-refactor machine:\n got  %s\n want %s", got, c.want)
			}
		})
	}
}

// TestExplicitLevelsMatchClassicL2 pins the Levels-based configuration to
// the classic L2 fields: a one-entry Levels stack is the same machine.
func TestExplicitLevelsMatchClassicL2(t *testing.T) {
	classic := DefaultConfig()
	classic.L1 = cache.Geometry{SizeBytes: 1024, Ways: 2}
	classic.L2 = cache.Geometry{SizeBytes: 16 * 1024, Ways: 4}
	classic.L2Window = rng.Window{A: 4, B: 3}
	classic.Seed = 7

	explicit := classic
	explicit.Levels = []LevelConfig{{
		Geom:   classic.L2,
		HitLat: classic.L2HitLat,
		Window: classic.L2Window,
	}}

	tc := ThreadConfig{Mode: ModeRandomFill, Window: rng.Window{A: 8, B: 7}}
	if a, b := compatSummary(classic, tc), compatSummary(explicit, tc); a != b {
		t.Errorf("explicit Levels diverges from classic L2 config:\n classic  %s\n explicit %s", a, b)
	}
}

// TestL2RandomFillDropStats is the accounting fix: the old accessL2
// silently skipped out-of-range and already-present L2 random fills; the
// engine-backed level surfaces them. Every L2 demand miss must be accounted
// for as exactly one of issued / dropped / clamped, and the nofill count
// must equal the miss count.
func TestL2RandomFillDropStats(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1 = cache.Geometry{SizeBytes: 1024, Ways: 2}
	cfg.L2 = cache.Geometry{SizeBytes: 4 * 1024, Ways: 4}
	// A window reaching far below the trace's low lines forces clamps.
	cfg.L2Window = rng.Window{A: 600, B: 0}
	cfg.Seed = 7
	m := New(cfg)
	m.RunTrace(ThreadConfig{}, recordedTrace())

	fs := m.L2FillStats()
	if fs == nil {
		t.Fatal("L2FillStats nil with L2Window set")
	}
	l2 := m.Hierarchy().Level(1).Stats()
	if fs.NoFills != l2.Misses {
		t.Errorf("nofills = %d, want one per L2 miss (%d)", fs.NoFills, l2.Misses)
	}
	if got := fs.RandomIssued + fs.RandomDropped + fs.RandomClamped; got != l2.Misses {
		t.Errorf("issued+dropped+clamped = %d, want %d (every skip must be counted)", got, l2.Misses)
	}
	for _, c := range []struct {
		name string
		v    uint64
	}{
		{"issued", fs.RandomIssued},
		{"dropped", fs.RandomDropped},
		{"clamped", fs.RandomClamped},
	} {
		if c.v == 0 {
			t.Errorf("expected nonzero %s count, got 0 (window [-600,0] over a low-address trace)", c.name)
		}
	}
	// Issued random fills are the only way lines enter the L2, and each
	// fetched its data from below: memory fetches = L2 misses + issued.
	if m.MemAccesses() != l2.Misses+fs.RandomIssued {
		t.Errorf("mem accesses = %d, want %d misses + %d random fills",
			m.MemAccesses(), l2.Misses, fs.RandomIssued)
	}

	// A demand-fill machine surfaces no fill stats.
	if New(Config{Seed: 1}).L2FillStats() != nil {
		t.Error("L2FillStats non-nil without L2Window")
	}
}

// TestThreeLevelMachine runs the machine on a hierarchy the old code could
// not express: L1/L2/L3 with random fill in the middle level only.
func TestThreeLevelMachine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1 = cache.Geometry{SizeBytes: 1024, Ways: 2}
	cfg.Seed = 7
	cfg.Levels = []LevelConfig{
		{Geom: cache.Geometry{SizeBytes: 8 * 1024, Ways: 4}, HitLat: 12, Window: rng.Window{A: 4, B: 3}},
		{Geom: cache.Geometry{SizeBytes: 64 * 1024, Ways: 8}, HitLat: 40},
	}
	m := New(cfg)
	if m.Hierarchy().Depth() != 3 {
		t.Fatalf("depth = %d", m.Hierarchy().Depth())
	}
	res := m.RunTrace(ThreadConfig{}, recordedTrace())
	if res.Instructions == 0 || res.Misses == 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
	l2, l3 := m.Hierarchy().Level(1).Stats(), m.Hierarchy().Level(2).Stats()
	if l2.Accesses == 0 || l3.Accesses == 0 {
		t.Fatal("no traffic below L1")
	}
	// The L2 runs nofill: every L2 miss consults the L3, plus each issued
	// random fill fetches through the L3 in the background.
	fs := m.Hierarchy().Level(1).FillStats()
	if fs == nil || fs.NoFills != l2.Misses {
		t.Fatalf("L2 fill stats = %+v for %d misses", fs, l2.Misses)
	}
	if l3.Accesses != l2.Misses+fs.RandomIssued {
		t.Errorf("L3 accesses = %d, want %d + %d", l3.Accesses, l2.Misses, fs.RandomIssued)
	}
	// Dirty L1 victims write back into the L2, and its own dirty victims
	// cascade to the L3 (the trace's write share guarantees some).
	if l2.WritebacksIn == 0 || l3.WritebacksIn == 0 {
		t.Errorf("write-backs did not cascade: L2in=%d L3in=%d", l2.WritebacksIn, l3.WritebacksIn)
	}
	// Determinism across reconstruction.
	m2 := New(cfg)
	res2 := m2.RunTrace(ThreadConfig{}, recordedTrace())
	if res != res2 {
		t.Errorf("3-level machine not deterministic:\n%+v\n%+v", res, res2)
	}
}
