package parexp

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCtxCancelBeforeStart(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		ran := false
		err := New(workers).ForEachCtx(ctx, 100, func(context.Context, int) error {
			ran = true
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran {
			t.Fatalf("workers=%d: fn ran under a pre-cancelled ctx", workers)
		}
	}
}

// TestForEachCtxCancelMidRun cancels from inside item 0 while item 1 is the
// only other in-flight item (workers=2). Both in-flight items complete —
// item 1 unblocks via the derived ctx — and no further items are claimed,
// so exactly two items execute.
func TestForEachCtxCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	siblingUp := make(chan struct{})
	var executed atomic.Int64
	err := New(2).ForEachCtx(ctx, 1000, func(c context.Context, i int) error {
		executed.Add(1)
		if i == 0 {
			<-siblingUp // ensure item 1 is in flight before cancelling
			cancel()
			return nil
		}
		close(siblingUp)
		<-c.Done() // sibling: wait for the cancellation to reach us
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := executed.Load(); got != 2 {
		t.Fatalf("%d items executed after mid-run cancel, want exactly the 2 in flight", got)
	}
}

// TestForEachCtxPanicCancelsSiblings: shard 0 panics only after shard 1 is
// definitely running; shard 1 blocks until the panic's cancellation reaches
// it through the derived ctx. The pool must drain with exactly those two
// items executed and report the panic with shard attribution.
func TestForEachCtxPanicCancelsSiblings(t *testing.T) {
	siblingUp := make(chan struct{})
	var executed atomic.Int64
	err := New(2).ForEachCtx(context.Background(), 1000, func(c context.Context, i int) error {
		executed.Add(1)
		if i == 0 {
			<-siblingUp
			panic("boom")
		}
		close(siblingUp)
		<-c.Done()
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Shard != 0 || pe.Value != "boom" {
		t.Fatalf("PanicError = shard %d value %v, want shard 0 \"boom\"", pe.Shard, pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError captured no stack")
	}
	if !strings.Contains(err.Error(), "shard 0") {
		t.Errorf("error %q lacks shard attribution", err)
	}
	if got := executed.Load(); got != 2 {
		t.Fatalf("%d items executed after panic, want 2", got)
	}
}

func TestForEachCtxSerialPanicToError(t *testing.T) {
	var executed int
	err := New(1).ForEachCtx(context.Background(), 10, func(_ context.Context, i int) error {
		executed++
		if i == 3 {
			panic(fmt.Errorf("wrapped %d", i))
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Shard != 3 {
		t.Fatalf("err = %v, want PanicError for shard 3", err)
	}
	if executed != 4 {
		t.Fatalf("%d items executed, want 4 (panic stops the serial loop)", executed)
	}
}

func TestForEachCtxErrorPropagation(t *testing.T) {
	sentinel := errors.New("shard failure")
	for _, workers := range []int{1, 4} {
		err := New(workers).ForEachCtx(context.Background(), 8, func(_ context.Context, i int) error {
			if i == 5 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want wrapped sentinel", workers, err)
		}
		if !strings.Contains(err.Error(), "shard 5") {
			t.Fatalf("workers=%d: error %q lacks shard attribution", workers, err)
		}
	}
}

// TestForEachCtxDeadlineExpiry pins the watchdog behavior: items that poll
// the derived ctx return once the deadline passes and the engine reports
// DeadlineExceeded without deadlocking.
func TestForEachCtxDeadlineExpiry(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := New(4).ForEachCtx(ctx, 4, func(c context.Context, i int) error {
		<-c.Done() // a shard that outlives any deadline
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestForEachCtxZeroItems(t *testing.T) {
	if err := New(4).ForEachCtx(context.Background(), 0, nil); err != nil {
		t.Fatalf("n=0: %v", err)
	}
}

// TestMapCtxMatchesMap is the metamorphic property the resumable
// experiments rely on: with no cancellation and no errors, MapCtx is
// byte-identical to Map — same items, same per-item inputs, same order.
func TestMapCtxMatchesMap(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 13} {
		e := New(workers)
		seeds := ShardSeeds(99, 32)
		shard := func(i int) uint64 {
			s := seeds[i]
			var acc uint64
			for k := 0; k < 50; k++ {
				s = s*6364136223846793005 + 1442695040888963407
				acc ^= s
			}
			return acc
		}
		want := Map(e, 32, shard)
		got, err := MapCtx(e, context.Background(), 32, func(_ context.Context, i int) (uint64, error) {
			return shard(i), nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("workers=%d: MapCtx diverged from Map\n got %v\nwant %v", workers, got, want)
		}
	}
}

func TestMapCtxDiscardsPartialResultsOnError(t *testing.T) {
	out, err := MapCtx(New(2), context.Background(), 8, func(_ context.Context, i int) (int, error) {
		if i == 2 {
			return 0, errors.New("nope")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatalf("got (%v, %v), want (nil, error)", out, err)
	}
}
