package parexp

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a shard panic converted to an error by ForEachCtx: the
// shard index attributes the failure to one work item of the fixed shard
// plan, and Stack preserves the goroutine stack at the panic site (the
// re-panic in ForEach cannot).
type PanicError struct {
	// Shard is the work-item index whose fn panicked.
	Shard int
	// Value is the original panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured at recover time.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parexp: shard %d panicked: %v", e.Shard, e.Value)
}

// ForEachCtx is the context-aware ForEach: it runs fn(ctx, i) once for every
// i in [0, n) across the worker pool, with three additions over ForEach:
//
//   - Cooperative cancellation. Workers stop claiming new items as soon as
//     ctx is cancelled (or its deadline expires); items already executing
//     run to completion unless fn itself observes the ctx it is handed.
//     ForEachCtx then returns ctx.Err() — completed items are NOT undone,
//     which is exactly what checkpointed shard runs need: every shard that
//     finished before the cancel was already flushed.
//   - Error propagation. The first non-nil error from fn cancels the ctx
//     passed to sibling invocations and is returned, wrapped with its shard
//     index.
//   - Panic recovery. A panic in fn becomes a *PanicError carrying the
//     shard index and stack, and cancels siblings the same way.
//
// The ctx handed to fn is derived from the caller's: long-running shards
// should poll it (or pass it down) so cancellation is prompt rather than
// shard-granular. Item claiming is identical to ForEach — an atomic
// counter — so for an error-free fn and an uncancelled ctx the set of
// executed items, the per-item inputs, and therefore every result are
// byte-identical to ForEach's.
func (e *Engine) ForEachCtx(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	work := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Shard: i, Value: r, Stack: debug.Stack()}
			}
		}()
		if err := fn(cctx, i); err != nil {
			return fmt.Errorf("parexp: shard %d: %w", i, err)
		}
		return nil
	}

	w := e.workers
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if cctx.Err() != nil {
				break
			}
			if err := work(i); err != nil {
				fail(err)
				break
			}
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if cctx.Err() != nil {
						return
					}
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					if err := work(i); err != nil {
						fail(err)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// MapCtx is the context-aware Map: fn(ctx, i) for every i in [0, n), results
// in index order. On cancellation, error, or panic the partial results are
// discarded and only the error is returned; with a background ctx and an
// error-free fn it is byte-identical to Map (the property the cancellation
// test suite pins).
func MapCtx[T any](e *Engine, ctx context.Context, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := e.ForEachCtx(ctx, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
