package parexp

import (
	"reflect"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 32} {
		e := New(workers)
		const n = 1000
		var counts [n]atomic.Int64
		e.ForEach(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, got)
			}
		}
	}
}

func TestMapReturnsIndexOrderedResults(t *testing.T) {
	e := New(8)
	got := Map(e, 100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapIsWorkerCountInvariant(t *testing.T) {
	// The engine's core guarantee on a computation with per-shard streams:
	// identical output for any worker count.
	run := func(workers int) []uint64 {
		e := New(workers)
		seeds := ShardSeeds(42, 16)
		return Map(e, 16, func(i int) uint64 {
			// Simulate a shard that consumes its own derived stream.
			s := seeds[i]
			var acc uint64
			for k := 0; k < 100; k++ {
				s = s*6364136223846793005 + 1442695040888963407
				acc ^= s
			}
			return acc
		})
	}
	want := run(1)
	for _, w := range []int{2, 4, 8, 13} {
		if got := run(w); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d changed the result", w)
		}
	}
}

func TestNewClampsWorkers(t *testing.T) {
	if w := New(0).Workers(); w < 1 {
		t.Fatalf("New(0) workers = %d", w)
	}
	if w := New(-3).Workers(); w < 1 {
		t.Fatalf("New(-3) workers = %d", w)
	}
	if w := New(5).Workers(); w != 5 {
		t.Fatalf("New(5) workers = %d", w)
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	e := New(4)
	ran := false
	e.ForEach(0, func(int) { ran = true })
	e.ForEach(-5, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for empty range")
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	New(4).ForEach(100, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

func TestShardSeedsDeterministicAndDistinct(t *testing.T) {
	a := ShardSeeds(7, 16)
	b := ShardSeeds(7, 16)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("ShardSeeds not deterministic")
	}
	seen := map[uint64]bool{}
	for _, s := range a {
		if seen[s] {
			t.Fatalf("duplicate shard seed %#x", s)
		}
		seen[s] = true
	}
	if reflect.DeepEqual(a, ShardSeeds(8, 16)) {
		t.Fatal("different root seeds produced identical shard seeds")
	}
}

func TestSplitCounts(t *testing.T) {
	cases := []struct {
		total, n int
		want     []int
	}{
		{10, 4, []int{3, 3, 2, 2}},
		{8, 8, []int{1, 1, 1, 1, 1, 1, 1, 1}},
		{3, 8, []int{1, 1, 1, 0, 0, 0, 0, 0}},
		{0, 3, []int{0, 0, 0}},
		{5, 1, []int{5}},
	}
	for _, c := range cases {
		got := SplitCounts(c.total, c.n)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitCounts(%d, %d) = %v, want %v", c.total, c.n, got, c.want)
		}
		sum := 0
		for _, v := range got {
			sum += v
		}
		if sum != c.total {
			t.Errorf("SplitCounts(%d, %d) sums to %d", c.total, c.n, sum)
		}
	}
}
