// Package parexp is the deterministic parallel experiment engine: it runs
// the independent trials of a Monte Carlo experiment (Table III cells,
// Figure 2's encryption sweep, the ablation grids) across a pool of worker
// goroutines without giving up the repository's reproducibility contract.
//
// The contract is worker-count invariance: for a fixed seed, an experiment's
// emitted table is byte-identical at workers=1, workers=8, and any
// GOMAXPROCS. Parallelism is a pure speed knob, never a results knob. The
// engine guarantees this by construction, with three rules:
//
//  1. The shard plan is fixed by the experiment, not by the worker count.
//     An experiment splits its trial budget over a constant number of
//     shards (see Shards); workers only decide how many shards execute
//     concurrently.
//  2. Each shard draws from its own rng stream, derived up front from the
//     root seed via Split (ShardSeeds). No shard ever touches another
//     shard's Source, so the values a shard draws are independent of
//     scheduling.
//  3. Results are merged in shard-index order (Map returns an index-ordered
//     slice). Floating-point accumulation order is therefore fixed even
//     though execution order is not.
//
// The rflint rngshare checker enforces rule 2 statically: a *rng.Source
// captured by a go-launched closure is flagged, forcing the
// seed-per-shard-up-front pattern this package's helpers implement.
package parexp

import (
	"runtime"
	"sync"
	"sync/atomic"

	"randfill/internal/rng"
)

// Shards is the default shard count experiments split their trial budgets
// into. It is deliberately a constant rather than "number of workers": the
// shard plan is part of the experiment's definition (it determines which
// shard draws which random values), so it must not change when the machine
// does. Eight shards saturate the common desktop core counts while keeping
// per-shard sample counts large enough for the statistics to be well
// conditioned.
const Shards = 8

// Engine executes independent work items across a fixed-size pool of worker
// goroutines. The zero value is not valid; use New.
type Engine struct {
	workers int
}

// New returns an Engine with the given concurrency. workers <= 0 selects
// GOMAXPROCS, the "use the hardware" default the -workers CLI flag exposes
// as 0. workers == 1 executes inline with no goroutines at all, so a serial
// run has a serial stack.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers}
}

// Workers returns the engine's concurrency.
func (e *Engine) Workers() int { return e.workers }

// ForEach runs fn(i) once for every i in [0, n), distributing items across
// the worker pool. It returns when all items are done. Items are claimed
// from an atomic counter, so the i -> goroutine assignment is scheduling
// dependent; fn must therefore be self-contained per item (own rng stream,
// own simulator, writes only to slot i of any shared slice). A panic in fn
// is re-panicked in the caller after the pool drains.
func (e *Engine) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := e.workers
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Map runs fn(i) for every i in [0, n) across the pool and returns the
// results in index order. Because the returned slice is ordered by shard
// index, folding it left-to-right gives a deterministic merge regardless of
// which worker finished first.
func Map[T any](e *Engine, n int, fn func(i int) T) []T {
	out := make([]T, n)
	e.ForEach(n, func(i int) { out[i] = fn(i) })
	return out
}

// ShardSeeds derives n independent shard seeds from a root seed, shard i
// getting rng.New(seed).SplitSeed(i)'s stream. The seeds are computed up
// front on the caller's goroutine: each shard then constructs its own
// Source inside its work item, so no Source is shared across goroutines and
// the per-shard streams depend only on (seed, shard index).
func ShardSeeds(seed uint64, n int) []uint64 {
	root := rng.New(seed)
	out := make([]uint64, n)
	for i := range out {
		out[i] = root.SplitSeed(uint64(i))
	}
	return out
}

// SplitCounts partitions total work items over n shards as evenly as
// possible: the first total%n shards get one extra item. The partition is a
// pure function of (total, n), part of the fixed shard plan.
func SplitCounts(total, n int) []int {
	if n <= 0 {
		n = 1
	}
	out := make([]int, n)
	base, rem := total/n, total%n
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}
