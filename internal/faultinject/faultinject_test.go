package faultinject

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"randfill/internal/checkpoint"
	"randfill/internal/rng"
)

func TestParseEmpty(t *testing.T) {
	p, err := Parse("  ")
	if err != nil || p != nil {
		t.Fatalf("Parse(empty) = %v, %v; want nil, nil", p, err)
	}
}

func TestParseClauses(t *testing.T) {
	p, err := Parse("kill-after-puts=3, fail-put=1,torn-put=2,corrupt-put=4,delay-put=5:250ms,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if p.KillAfterPuts != 3 || p.FailPut != 1 || p.TornPut != 2 || p.CorruptPut != 4 {
		t.Fatalf("parsed %+v", p)
	}
	if p.DelayPut != 5 || p.Delay != 250*time.Millisecond || p.Seed != 9 {
		t.Fatalf("parsed %+v", p)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus=1", "kill-after-puts", "kill-after-puts=x", "fail-put=-1",
		"delay-put=1", "delay-put=1:xyz", "delay-put=x:1s",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded", spec)
		}
	}
}

func meta(shard int) checkpoint.Meta {
	return checkpoint.Meta{Experiment: "t", Shard: shard, ConfigHash: 1, StreamVersion: rng.StreamVersion}
}

// storeWithPlan opens a store in a temp dir with the plan hooked in.
func storeWithPlan(t *testing.T, p *Plan) *checkpoint.Store {
	t.Helper()
	st, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.Hooks = p
	return st
}

func TestFailPutFailsExactlyTheNthWrite(t *testing.T) {
	p, err := Parse("fail-put=2")
	if err != nil {
		t.Fatal(err)
	}
	st := storeWithPlan(t, p)
	if err := st.Put(meta(0), []byte("a")); err != nil {
		t.Fatalf("put 1: %v", err)
	}
	if err := st.Put(meta(1), []byte("b")); err == nil {
		t.Fatal("put 2 should have failed")
	}
	if err := st.Put(meta(2), []byte("c")); err != nil {
		t.Fatalf("put 3: %v", err)
	}
	// The failed shard left no file behind and reads as missing.
	if _, ok, _ := st.Get(meta(1)); ok {
		t.Fatal("failed put produced a readable checkpoint")
	}
	if _, ok, _ := st.Get(meta(2)); !ok {
		t.Fatal("put after the injected failure was lost")
	}
}

func TestTornPutIsDetectedOnGet(t *testing.T) {
	p, err := Parse("torn-put=1")
	if err != nil {
		t.Fatal(err)
	}
	st := storeWithPlan(t, p)
	if err := st.Put(meta(0), []byte("accumulator bytes")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Get(meta(0)); ok || err != nil {
		t.Fatalf("torn checkpoint: ok=%v err=%v, want missing", ok, err)
	}
}

func TestCorruptPutIsDetectedOnGet(t *testing.T) {
	p, err := Parse("corrupt-put=1,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	st := storeWithPlan(t, p)
	if err := st.Put(meta(0), []byte("accumulator bytes")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Get(meta(0)); ok || err != nil {
		t.Fatalf("corrupt checkpoint: ok=%v err=%v, want missing", ok, err)
	}
}

func TestKillAfterPuts(t *testing.T) {
	p, err := Parse("kill-after-puts=2")
	if err != nil {
		t.Fatal(err)
	}
	exited := -1
	p.exit = func(code int) { exited = code }
	st := storeWithPlan(t, p)
	if err := st.Put(meta(0), nil); err != nil || exited != -1 {
		t.Fatalf("put 1: err=%v exited=%d", err, exited)
	}
	if err := st.Put(meta(1), nil); err != nil {
		t.Fatal(err)
	}
	if exited != KillExitCode {
		t.Fatalf("exit code %d, want %d", exited, KillExitCode)
	}
	// Both checkpoints were durably published before the "crash".
	for s := 0; s < 2; s++ {
		if _, ok, _ := st.Get(meta(s)); !ok {
			t.Errorf("shard %d checkpoint lost in crash", s)
		}
	}
}

func TestZeroPlanInjectsNothing(t *testing.T) {
	var p Plan
	st := storeWithPlan(t, &p)
	for s := 0; s < 5; s++ {
		if err := st.Put(meta(s), []byte{byte(s)}); err != nil {
			t.Fatal(err)
		}
	}
	if p.Puts() != 5 {
		t.Fatalf("observed %d puts, want 5", p.Puts())
	}
}

func TestDamageIsBestEffortOnMissingFile(t *testing.T) {
	var p Plan
	p.corrupt("/nonexistent/file")
	p.tear("/nonexistent/file")
}

func TestParseProcessClauses(t *testing.T) {
	p, err := Parse("kill-worker-after-units=2,stall-worker=1:300ms,torn-lease=3,clock-skew=-150ms")
	if err != nil {
		t.Fatal(err)
	}
	if p.KillAfterUnits != 2 || p.StallUnit != 1 || p.Stall != 300*time.Millisecond {
		t.Fatalf("parsed %+v", p)
	}
	if p.TornLease != 3 || p.ClockSkew != -150*time.Millisecond {
		t.Fatalf("parsed %+v", p)
	}
}

func TestParseProcessClauseErrors(t *testing.T) {
	for _, spec := range []string{
		"kill-worker-after-units=x", "kill-worker-after-units=-1",
		"stall-worker=1", "stall-worker=x:1s", "stall-worker=1:zz",
		"torn-lease=x", "clock-skew=notadur",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded", spec)
		}
	}
}

func TestKillAfterUnit(t *testing.T) {
	p, err := Parse("kill-worker-after-units=2")
	if err != nil {
		t.Fatal(err)
	}
	exited := -1
	p.exit = func(code int) { exited = code }
	p.KillAfterUnit(1)
	if exited != -1 {
		t.Fatalf("killed after 1 unit, want survive until 2")
	}
	p.KillAfterUnit(2)
	if exited != KillExitCode {
		t.Fatalf("exit code %d, want %d", exited, KillExitCode)
	}
}

func TestAfterLeaseWriteTearsExactlyTheNth(t *testing.T) {
	p, err := Parse("torn-lease=2")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write := func(name string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte("0123456789abcdef"), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	p1 := write("one.lease")
	p.AfterLeaseWrite(p1)
	p2 := write("two.lease")
	p.AfterLeaseWrite(p2)
	p3 := write("three.lease")
	p.AfterLeaseWrite(p3)
	size := func(path string) int64 {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		return st.Size()
	}
	if size(p1) != 16 || size(p3) != 16 {
		t.Error("untargeted lease writes were damaged")
	}
	if size(p2) != 8 {
		t.Errorf("2nd lease write size %d, want torn to 8", size(p2))
	}
	if p.LeaseWrites() != 3 {
		t.Errorf("LeaseWrites() = %d, want 3", p.LeaseWrites())
	}
}

func TestStallBeforeUnitOnlyTargetsItsUnit(t *testing.T) {
	p, err := Parse("stall-worker=3:10ms")
	if err != nil {
		t.Fatal(err)
	}
	// Non-target units return immediately; the target sleeps (we only
	// assert it returns — the duration is the OS's business).
	p.StallBeforeUnit(1)
	p.StallBeforeUnit(2)
	p.StallBeforeUnit(3)
}
