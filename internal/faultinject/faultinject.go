// Package faultinject is the deterministic fault harness behind the
// crash-resume test suite. A Plan is parsed from a compact spec string and
// hooks into the checkpoint store (checkpoint.Hooks), firing each fault at
// an exactly reproducible point in the run — the Nth checkpoint write —
// rather than at a wall-clock instant, so a "crash mid-run" is the same
// crash on every machine:
//
//	kill-after-puts=3            exit(137) after the 3rd successful Put,
//	                             simulating SIGKILL/OOM mid-run
//	fail-put=2                   the 2nd Put returns an injected error
//	torn-put=2                   truncate the 2nd checkpoint file in place,
//	                             simulating a torn write
//	corrupt-put=2                flip one seed-chosen bit of the 2nd file
//	delay-put=2:250ms            sleep before publishing the 2nd Put, to
//	                             push a shard past a -timeout deadline
//	seed=7                       drives the corrupt-put bit choice
//
// Process-level clauses target a whole fabric worker rather than a single
// checkpoint write; cmd/experiments wires them into the fabric hooks when
// running with -role worker (or coordinator, for torn-lease/clock-skew):
//
//	kill-worker-after-units=2    exit(137) after the worker completes its
//	                             2nd work unit — a whole-worker crash with
//	                             its leases left to expire
//	stall-worker=2:300ms         sleep before executing the worker's 2nd
//	                             unit, long enough for the lease to expire
//	                             and the unit to be re-dispatched
//	torn-lease=3                 truncate the 3rd lease file this process
//	                             publishes (dispatch, renewal, or heartbeat)
//	clock-skew=150ms             run the process on a wall clock offset by
//	                             the (possibly negative) duration, so its
//	                             deadline arithmetic disagrees with peers
//
// Clauses combine with commas: "torn-put=1,kill-after-puts=2". Counters are
// 1-based and count Puts process-wide in completion order; because the
// parallel engine's shard plan is fixed, "the 3rd completed shard" is a
// meaningful, reproducible event even though which shard completes 3rd may
// vary with scheduling.
//
// cmd/experiments exposes the spec via its -fault-plan flag (testing only).
package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"randfill/internal/checkpoint"
	"randfill/internal/rng"
)

// KillExitCode is the exit status of a kill-after-puts fault, chosen to
// mimic a SIGKILL death (128+9) so the crash-resume suite can tell an
// injected crash from an ordinary failure.
const KillExitCode = 137

// Plan is a parsed fault plan. The zero value injects nothing.
type Plan struct {
	// KillAfterPuts terminates the process after that many successful
	// checkpoint writes (0 = never).
	KillAfterPuts int
	// FailPut makes the Nth Put return an error (0 = never).
	FailPut int
	// TornPut truncates the Nth checkpoint file after it is published,
	// leaving a torn frame on disk (0 = never).
	TornPut int
	// CorruptPut flips one bit of the Nth checkpoint file after it is
	// published (0 = never).
	CorruptPut int
	// DelayPut sleeps for Delay before the Nth Put publishes (0 = never).
	DelayPut int
	// Delay is the delay-put duration.
	Delay time.Duration
	// Seed drives the corrupt-put bit choice.
	Seed uint64

	// KillAfterUnits terminates a fabric worker after it completes that
	// many work units (0 = never).
	KillAfterUnits int
	// StallUnit sleeps for Stall before the worker executes its Nth unit
	// (0 = never).
	StallUnit int
	// Stall is the stall-worker duration.
	Stall time.Duration
	// TornLease truncates the Nth lease file this process publishes
	// (0 = never).
	TornLease int
	// ClockSkew offsets the process's wall clock; the fabric's deadline
	// checks then disagree with its peers' by this much.
	ClockSkew time.Duration

	puts        atomic.Int64
	leaseWrites atomic.Int64
	// exit is swapped out by tests; os.Exit in production.
	exit func(code int)
}

var _ checkpoint.Hooks = (*Plan)(nil)

// Parse builds a Plan from a spec string (see the package doc). An empty
// spec returns nil: no plan, no hooks.
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &Plan{Seed: 1, exit: os.Exit}
	for _, clause := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(clause), "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: clause %q: want key=value", clause)
		}
		switch key {
		case "kill-after-puts", "fail-put", "torn-put", "corrupt-put", "seed",
			"kill-worker-after-units", "torn-lease":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faultinject: %s=%q: want a non-negative integer", key, val)
			}
			switch key {
			case "kill-after-puts":
				p.KillAfterPuts = n
			case "fail-put":
				p.FailPut = n
			case "torn-put":
				p.TornPut = n
			case "corrupt-put":
				p.CorruptPut = n
			case "seed":
				p.Seed = uint64(n)
			case "kill-worker-after-units":
				p.KillAfterUnits = n
			case "torn-lease":
				p.TornLease = n
			}
		case "stall-worker":
			nth, durStr, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("faultinject: stall-worker=%q: want N:duration", val)
			}
			n, err := strconv.Atoi(nth)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faultinject: stall-worker=%q: bad unit index", val)
			}
			d, err := time.ParseDuration(durStr)
			if err != nil {
				return nil, fmt.Errorf("faultinject: stall-worker=%q: %v", val, err)
			}
			p.StallUnit, p.Stall = n, d
		case "clock-skew":
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("faultinject: clock-skew=%q: %v", val, err)
			}
			p.ClockSkew = d
		case "delay-put":
			nth, durStr, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("faultinject: delay-put=%q: want N:duration", val)
			}
			n, err := strconv.Atoi(nth)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faultinject: delay-put=%q: bad put index", val)
			}
			d, err := time.ParseDuration(durStr)
			if err != nil {
				return nil, fmt.Errorf("faultinject: delay-put=%q: %v", val, err)
			}
			p.DelayPut, p.Delay = n, d
		default:
			return nil, fmt.Errorf("faultinject: unknown fault %q", key)
		}
	}
	return p, nil
}

// BeforePut implements checkpoint.Hooks: the fail-put and delay-put faults.
func (p *Plan) BeforePut(m checkpoint.Meta) error {
	n := int(p.puts.Load()) + 1 // the Put now in progress
	if p.DelayPut == n && p.Delay > 0 {
		time.Sleep(p.Delay)
	}
	if p.FailPut == n {
		p.puts.Add(1) // the failed attempt still advances the counter
		return fmt.Errorf("faultinject: injected write failure at put %d (%s shard %d)",
			n, m.Experiment, m.Shard)
	}
	return nil
}

// AfterPut implements checkpoint.Hooks: the torn-put, corrupt-put, and
// kill-after-puts faults, in that order — a plan may tear a file and then
// kill the process, the exact shape of a crash during a write burst.
func (p *Plan) AfterPut(m checkpoint.Meta, path string) {
	n := int(p.puts.Add(1))
	if p.TornPut == n {
		p.tear(path)
	}
	if p.CorruptPut == n {
		p.corrupt(path)
	}
	if p.KillAfterPuts > 0 && n >= p.KillAfterPuts {
		fmt.Fprintf(os.Stderr, "faultinject: killing process after %d checkpoint puts\n", n)
		p.exit(KillExitCode)
	}
}

// Puts returns the number of Put attempts observed so far.
func (p *Plan) Puts() int { return int(p.puts.Load()) }

// StallBeforeUnit is the stall-worker fault, wired to the fabric worker's
// BeforeUnit hook: it sleeps before the worker executes its Nth claimed
// unit, with renewals not yet running — the lease ages out naturally and
// the coordinator re-dispatches the unit while this worker is asleep.
func (p *Plan) StallBeforeUnit(n int) {
	if p.StallUnit == n && p.Stall > 0 {
		fmt.Fprintf(os.Stderr, "faultinject: stalling worker for %v before unit %d\n", p.Stall, n)
		time.Sleep(p.Stall)
	}
}

// KillAfterUnit is the kill-worker-after-units fault, wired to the fabric
// worker's AfterUnit hook: the process dies with KillExitCode after
// durably completing its Nth unit, leaving its remaining leases to expire.
func (p *Plan) KillAfterUnit(n int) {
	if p.KillAfterUnits > 0 && n >= p.KillAfterUnits {
		fmt.Fprintf(os.Stderr, "faultinject: killing worker after %d completed units\n", n)
		p.exit(KillExitCode)
	}
}

// AfterLeaseWrite is the torn-lease fault, wired to the fabric's
// post-publish lease hook: the Nth lease file this process writes
// (dispatch, renewal, or heartbeat) is truncated in place. The fabric must
// read it as absent and recover by re-leasing.
func (p *Plan) AfterLeaseWrite(path string) {
	n := int(p.leaseWrites.Add(1))
	if p.TornLease == n {
		fmt.Fprintf(os.Stderr, "faultinject: tearing lease write %d (%s)\n", n, path)
		p.tear(path)
	}
}

// LeaseWrites returns the number of lease publishes observed so far.
func (p *Plan) LeaseWrites() int { return int(p.leaseWrites.Load()) }

// tear truncates the published checkpoint to half its size, the on-disk
// shape of a write interrupted between temp-file creation and completion
// on a filesystem without atomic rename (or of a buggy writer).
func (p *Plan) tear(path string) {
	st, err := os.Stat(path)
	if err != nil {
		return
	}
	//lint:ignore errcheck-io deliberate damage: the fault is best-effort by design
	os.Truncate(path, st.Size()/2)
}

// corrupt flips one bit at a Seed-chosen offset, simulating media
// corruption that leaves the file length intact.
func (p *Plan) corrupt(path string) {
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		return
	}
	src := rng.New(p.Seed ^ 0xfa017)
	data[src.Intn(len(data))] ^= 1 << src.Intn(8)
	// Deliberately a direct, non-atomic write: the point is to damage the
	// file the way a real fault would.
	//lint:ignore atomicwrite deliberate corruption injection; atomicity would defeat the fault
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return
	}
}
