// Package rpcache implements RPcache (Wang & Lee, ISCA 2007): a
// randomization-based secure cache that keeps a per-trust-domain
// permutation table in front of the set index. When a miss would evict a
// cache line belonging to a different trust domain, the eviction is
// deflected: a line in a randomly selected other set is evicted instead,
// the permutation table entries of the two sets are swapped, and the
// active domain's lines in both sets are invalidated — so an attacker
// observes evictions from sets unrelated to the victim's accessed address.
//
// The model exposes the same cache.Cache contract as the other
// architectures plus SetActiveDomain, which the simulator calls when
// switching hardware threads (the permutation table selection is part of
// the thread context, like the random fill engine's range registers).
package rpcache

import (
	"fmt"

	"randfill/internal/cache"
	"randfill/internal/mem"
	"randfill/internal/rng"
)

// MaxDomains bounds the number of trust domains with distinct permutation
// tables.
const MaxDomains = 4

type rpLine struct {
	tag        mem.Line
	valid      bool
	dirty      bool
	referenced bool
	domain     int
	offset     int8
}

// RPcache is a set-associative cache with per-domain set permutation.
type RPcache struct {
	geom  cache.Geometry
	sets  int
	ways  int
	lines []rpLine
	// stamps is the replacement-policy state, parallel to lines, operated
	// on as per-set subslices (same layout as cache.SetAssoc).
	stamps []uint64
	policy cache.Policy
	// perm[d][logical set] = physical set.
	perm   [MaxDomains][]int32
	active int
	src    *rng.Source
	tick   uint64
	stats  cache.Stats
	onEv   cache.EvictionObserver
}

var _ cache.Cache = (*RPcache)(nil)

// New builds an RPcache. All domains start with the identity permutation;
// deflected evictions randomize them over time.
func New(geom cache.Geometry, src *rng.Source) *RPcache {
	return NewWithPolicy(geom, src, nil)
}

// NewWithPolicy builds an RPcache whose within-set victim selection follows
// pol (nil selects the historical LRU default). The deflection protocol —
// random alternate set and way, permutation swap — is untouched by the
// policy; only the same-domain replacement pick changes.
func NewWithPolicy(geom cache.Geometry, src *rng.Source, pol cache.Policy) *RPcache {
	cache.ValidateGeometry(geom)
	if src == nil {
		panic("rpcache: nil rng source")
	}
	if pol == nil {
		pol = cache.LRU{}
	}
	if err := cache.PolicyValid(pol); err != nil {
		panic(err)
	}
	sets := geom.Sets()
	c := &RPcache{
		geom:   geom,
		sets:   sets,
		ways:   geom.Ways,
		lines:  make([]rpLine, sets*geom.Ways),
		stamps: make([]uint64, sets*geom.Ways),
		policy: pol,
		src:    src,
	}
	for d := 0; d < MaxDomains; d++ {
		c.perm[d] = make([]int32, sets)
		for s := range c.perm[d] {
			c.perm[d][s] = int32(s)
		}
	}
	return c
}

// SetActiveDomain selects the trust domain whose permutation table maps
// subsequent accesses. Out-of-range domains are clamped into [0,
// MaxDomains), modelling the limited number of hardware permutation tables.
func (c *RPcache) SetActiveDomain(d int) {
	if d < 0 {
		d = 0
	}
	c.active = d % MaxDomains
}

// ActiveDomain returns the currently selected trust domain.
func (c *RPcache) ActiveDomain() int { return c.active }

// NumLines returns the total line capacity.
func (c *RPcache) NumLines() int { return len(c.lines) }

// Stats returns the live statistics counters.
func (c *RPcache) Stats() *cache.Stats { return &c.stats }

// SetEvictionObserver registers fn to receive every displaced valid line.
func (c *RPcache) SetEvictionObserver(fn cache.EvictionObserver) { c.onEv = fn }

func (c *RPcache) logicalSet(l mem.Line) int { return int(uint64(l) & uint64(c.sets-1)) }

// physSet returns the physical set the active domain maps line l to.
func (c *RPcache) physSet(l mem.Line) int {
	return int(c.perm[c.active][c.logicalSet(l)])
}

func (c *RPcache) set(phys int) []rpLine {
	return c.lines[phys*c.ways : (phys+1)*c.ways]
}

// setStamps returns physical set phys's replacement-state words.
func (c *RPcache) setStamps(phys int) []uint64 {
	return c.stamps[phys*c.ways : (phys+1)*c.ways]
}

func find(s []rpLine, l mem.Line) int {
	for w := range s {
		if s[w].valid && s[w].tag == l {
			return w
		}
	}
	return -1
}

// Lookup implements cache.Cache.
func (c *RPcache) Lookup(l mem.Line, write bool) bool {
	phys := c.physSet(l)
	s := c.set(phys)
	w := find(s, l)
	if w < 0 {
		c.stats.Misses++
		return false
	}
	c.stats.Hits++
	c.tick++
	s[w].referenced = true
	c.policy.OnHit(c.setStamps(phys), w, c.tick)
	if write {
		s[w].dirty = true
	}
	return true
}

// Probe implements cache.Cache.
func (c *RPcache) Probe(l mem.Line) bool {
	return find(c.set(c.physSet(l)), l) >= 0
}

// Fill implements cache.Cache. The filled line is owned by the active
// domain; a victim from another domain triggers the deflected-eviction and
// permutation-swap protocol.
func (c *RPcache) Fill(l mem.Line, opts cache.FillOpts) cache.Victim {
	phys := c.physSet(l)
	s := c.set(phys)
	c.tick++
	if w := find(s, l); w >= 0 {
		s[w].dirty = s[w].dirty || opts.Dirty
		c.policy.OnFill(c.setStamps(phys), w, c.tick)
		return cache.Victim{}
	}
	c.stats.Fills++

	// An invalid way needs no eviction and no deflection.
	for w := range s {
		if !s[w].valid {
			c.place(s, phys, w, l, opts)
			return cache.Victim{}
		}
	}

	// Policy victim of the mapped set.
	w := c.policy.Victim(c.setStamps(phys))
	if s[w].domain == c.active {
		// Same-domain eviction: plain replacement, nothing leaks
		// across domains.
		v := c.evict(s, w)
		c.place(s, phys, w, l, opts)
		return v
	}

	// Cross-domain contention: deflect. Evict a random line in a
	// randomly selected set S', swap the permutation entries so the
	// logical index now maps to S', and invalidate the active domain's
	// lines in both sets.
	logical := c.logicalSet(l)
	altPhys := c.src.Intn(c.sets)
	alt := c.set(altPhys)
	aw := c.src.Intn(c.ways)
	var v cache.Victim
	if alt[aw].valid {
		v = c.evict(alt, aw)
	}
	// Find the logical index currently mapping to altPhys and swap.
	for idx := range c.perm[c.active] {
		if c.perm[c.active][idx] == int32(altPhys) {
			c.perm[c.active][idx] = int32(phys)
			break
		}
	}
	c.perm[c.active][logical] = int32(altPhys)
	// Invalidate the active domain's lines in both swapped sets (their
	// mapping just changed under them). The way selected for the new
	// line is exempt.
	invalidate := func(grp []rpLine, skip int) {
		for i := range grp {
			if i == skip || !grp[i].valid || grp[i].domain != c.active {
				continue
			}
			c.stats.Invalidates++
			c.evict(grp, i)
		}
	}
	if altPhys == phys {
		invalidate(s, aw)
	} else {
		invalidate(s, -1)
		invalidate(alt, aw)
	}
	c.place(alt, altPhys, aw, l, opts)
	return v
}

// place installs line l into way w of physical set phys (whose line slice
// is s) under the active domain.
func (c *RPcache) place(s []rpLine, phys, w int, l mem.Line, opts cache.FillOpts) {
	s[w] = rpLine{
		tag:    l,
		valid:  true,
		dirty:  opts.Dirty,
		domain: c.active,
		offset: opts.Offset,
	}
	c.policy.OnFill(c.setStamps(phys), w, c.tick)
}

func (c *RPcache) evict(s []rpLine, w int) cache.Victim {
	v := cache.Victim{
		Valid:      true,
		Line:       s[w].tag,
		Dirty:      s[w].dirty,
		Referenced: s[w].referenced,
		Offset:     s[w].offset,
	}
	c.stats.Evictions++
	if v.Dirty {
		c.stats.Writebacks++
	}
	if c.onEv != nil {
		c.onEv(v)
	}
	s[w].valid = false
	return v
}

// Invalidate implements cache.Cache. Invalidation matches by tag across
// all physical lines (a clflush snoops by address, not through the issuing
// domain's permutation table).
func (c *RPcache) Invalidate(l mem.Line) bool {
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].tag == l {
			c.stats.Invalidates++
			set := c.lines[i/c.ways*c.ways : i/c.ways*c.ways+c.ways]
			c.evict(set, i%c.ways)
			return true
		}
	}
	return false
}

// Flush implements cache.Cache.
func (c *RPcache) Flush() {
	for i := range c.lines {
		if c.lines[i].valid {
			c.stats.Invalidates++
			set := c.lines[i/c.ways*c.ways : i/c.ways*c.ways+c.ways]
			c.evict(set, i%c.ways)
		}
	}
}

// DrainValid reports every still-valid line to the eviction observer
// without invalidating it.
func (c *RPcache) DrainValid() {
	if c.onEv == nil {
		return
	}
	for i := range c.lines {
		if c.lines[i].valid {
			ln := &c.lines[i]
			c.onEv(cache.Victim{
				Valid:      true,
				Line:       ln.tag,
				Dirty:      ln.dirty,
				Referenced: ln.referenced,
				Offset:     ln.offset,
			})
		}
	}
}

// Contents returns the line numbers of all valid lines.
func (c *RPcache) Contents() []mem.Line {
	var out []mem.Line
	for i := range c.lines {
		if c.lines[i].valid {
			out = append(out, c.lines[i].tag)
		}
	}
	return out
}

func (c *RPcache) String() string { return fmt.Sprintf("RPcache(%v)", c.geom) }

// Occupancy returns the number of valid lines. It is a pure observer used
// by the occupancy-channel attacks as footprint ground truth.
func (c *RPcache) Occupancy() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}
