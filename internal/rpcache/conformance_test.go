package rpcache_test

import (
	"testing"

	"randfill/internal/rng"
	"randfill/internal/securecache"
	"randfill/internal/securecache/conformance"
)

// TestDesignConformance runs the shared SecureCache conformance suite
// against this package's registry entry ("rpcache"), so a contract break
// is caught next to the implementation that introduced it.
func TestDesignConformance(t *testing.T) {
	d, ok := securecache.ByName("rpcache")
	if !ok {
		t.Fatal("rpcache is not registered")
	}
	conformance.RunConformance(t, func(src *rng.Source) securecache.SecureCache {
		return d.New(conformance.SmallConfig(), src)
	})
}
