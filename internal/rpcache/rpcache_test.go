package rpcache

import (
	"testing"
	"testing/quick"

	"randfill/internal/cache"
	"randfill/internal/mem"
	"randfill/internal/rng"
)

func rp() *RPcache {
	return New(cache.Geometry{SizeBytes: 2048, Ways: 2}, rng.New(1)) // 16 sets x 2 ways
}

func TestMissFillHit(t *testing.T) {
	c := rp()
	if c.Lookup(3, false) {
		t.Fatal("empty cache hit")
	}
	c.Fill(3, cache.FillOpts{})
	if !c.Lookup(3, false) {
		t.Fatal("miss after fill")
	}
	if !c.Probe(3) {
		t.Fatal("probe missed present line")
	}
}

func TestSameDomainEvictionIsPlainLRU(t *testing.T) {
	c := rp()
	// Same domain throughout: fills behave like a conventional SA cache.
	c.Fill(0, cache.FillOpts{})
	c.Fill(16, cache.FillOpts{}) // same logical set (16 sets)
	c.Lookup(0, false)
	v := c.Fill(32, cache.FillOpts{})
	if !v.Valid || v.Line != 16 {
		t.Fatalf("victim %+v, want line 16", v)
	}
	if !c.Probe(0) || !c.Probe(32) {
		t.Error("contents wrong after same-domain eviction")
	}
}

func TestCrossDomainEvictionDeflected(t *testing.T) {
	// The attacker (domain 0) fills a set; the victim (domain 1)
	// conflicts with it. Across many trials, the attacker line actually
	// evicted must be spread over many sets, not pinned to the
	// contended one.
	evictedSets := make(map[int]bool)
	for trial := 0; trial < 200; trial++ {
		c := New(cache.Geometry{SizeBytes: 2048, Ways: 2}, rng.New(uint64(trial+1)))
		c.SetActiveDomain(0)
		// Attacker fills every set, both ways.
		for w := 0; w < 2; w++ {
			for s := 0; s < 16; s++ {
				c.Fill(mem.Line(1000+w*16+s), cache.FillOpts{Owner: 0})
			}
		}
		// Victim access conflicting with logical set 5.
		c.SetActiveDomain(1)
		c.Fill(5, cache.FillOpts{Owner: 1})
		// Which attacker lines are gone?
		c.SetActiveDomain(0)
		for w := 0; w < 2; w++ {
			for s := 0; s < 16; s++ {
				if !c.Probe(mem.Line(1000 + w*16 + s)) {
					evictedSets[s] = true
				}
			}
		}
	}
	if len(evictedSets) < 8 {
		t.Errorf("evictions confined to %d sets; deflection not randomizing (sets: %v)",
			len(evictedSets), evictedSets)
	}
}

func TestVictimStillHitsAfterDeflection(t *testing.T) {
	c := rp()
	c.SetActiveDomain(0)
	for s := 0; s < 16; s++ {
		c.Fill(mem.Line(100+s), cache.FillOpts{Owner: 0})
		c.Fill(mem.Line(200+s), cache.FillOpts{Owner: 0})
	}
	c.SetActiveDomain(1)
	c.Fill(7, cache.FillOpts{Owner: 1})
	if !c.Probe(7) {
		t.Fatal("deflected fill did not install the line")
	}
	if !c.Lookup(7, false) {
		t.Fatal("victim's line not hittable after permutation swap")
	}
}

func TestDomainsSeeOwnMappings(t *testing.T) {
	// After domain 1's permutation diverges, domain 0's view of its own
	// lines must be unaffected (beyond the one deflected eviction and
	// the invalidations of domain-1 lines).
	c := rp()
	c.SetActiveDomain(0)
	c.Fill(3, cache.FillOpts{Owner: 0})
	c.SetActiveDomain(1)
	// Force many deflections for domain 1.
	c.SetActiveDomain(0)
	for i := 0; i < 32; i++ {
		c.Fill(mem.Line(500+i), cache.FillOpts{Owner: 0})
	}
	c.SetActiveDomain(1)
	for i := 0; i < 32; i++ {
		c.Fill(mem.Line(800+i), cache.FillOpts{Owner: 1})
	}
	// Domain 1's own lines remain findable under its permutation.
	found := 0
	for i := 0; i < 32; i++ {
		if c.Probe(mem.Line(800 + i)) {
			found++
		}
	}
	if found == 0 {
		t.Error("domain 1 lost every line it filled")
	}
}

func TestCapacityInvariant(t *testing.T) {
	f := func(ops []uint16, domains []uint8) bool {
		c := New(cache.Geometry{SizeBytes: 2048, Ways: 2}, rng.New(7))
		for i, op := range ops {
			if len(domains) > 0 {
				c.SetActiveDomain(int(domains[i%len(domains)]) % 3)
			}
			c.Fill(mem.Line(op), cache.FillOpts{Owner: c.ActiveDomain()})
		}
		return len(c.Contents()) <= c.NumLines()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProbeConsistentWithFill(t *testing.T) {
	// Within a single domain, a just-filled line always probes.
	f := func(lines []uint16) bool {
		c := New(cache.Geometry{SizeBytes: 2048, Ways: 2}, rng.New(3))
		for _, l := range lines {
			c.Fill(mem.Line(l), cache.FillOpts{})
			if !c.Probe(mem.Line(l)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	c := rp()
	c.Fill(1, cache.FillOpts{})
	c.Fill(2, cache.FillOpts{})
	if !c.Invalidate(1) || c.Invalidate(1) {
		t.Error("invalidate semantics wrong")
	}
	c.Flush()
	if len(c.Contents()) != 0 {
		t.Error("flush left lines behind")
	}
}

func TestSetActiveDomainClamps(t *testing.T) {
	c := rp()
	c.SetActiveDomain(-3)
	if c.ActiveDomain() != 0 {
		t.Errorf("negative domain → %d", c.ActiveDomain())
	}
	c.SetActiveDomain(MaxDomains + 1)
	if d := c.ActiveDomain(); d < 0 || d >= MaxDomains {
		t.Errorf("overflow domain → %d", d)
	}
}

func TestEvictionObserver(t *testing.T) {
	c := rp()
	n := 0
	c.SetEvictionObserver(func(v cache.Victim) { n++ })
	c.Fill(0, cache.FillOpts{})
	c.Fill(16, cache.FillOpts{})
	c.Fill(32, cache.FillOpts{})
	if n != 1 {
		t.Errorf("observer saw %d evictions, want 1", n)
	}
	c.DrainValid()
	if n != 1+2 {
		t.Errorf("after drain observer saw %d", n)
	}
}
