package experiments

import (
	"fmt"

	"randfill/internal/cache"
	"randfill/internal/mem"
	"randfill/internal/parexp"
	"randfill/internal/prefetch"
	"randfill/internal/rng"
	"randfill/internal/sim"
	"randfill/internal/workloads"
)

// smtRun co-runs one benchmark with the continuous AES enc+dec thread and
// returns the benchmark's IPC.
func smtRun(sc Scale, g cache.Geometry, kind sim.CacheKind, cryptoCfg sim.ThreadConfig, bench workloads.Generator, crypto mem.Trace) float64 {
	cfg := sim.DefaultConfig()
	cfg.L1 = g
	cfg.L1Kind = kind
	cfg.Seed = sc.Seed
	m := sim.New(cfg)
	main := sim.ThreadConfig{Owner: 0}
	res := m.RunSMTSteady(main, bench.Gen(sc.SpecAccesses, sc.Seed), cryptoCfg, crypto)
	return res.IPC()
}

// Figure8 reproduces the SMT co-run experiment: the throughput of each
// SPEC-like program running next to a continuous AES enc+dec thread, for
// five cache configurations at 16 KB DM and 32 KB 4-way, normalized to the
// baseline (demand-fetch SA, crypto thread unprotected).
func Figure8(sc Scale) *Table {
	t := &Table{
		Title: "Figure 8: normalized throughput of programs co-running with AES (SMT)",
		Headers: []string{"L1", "benchmark", "baseline", "PLcache+preload",
			"Randomfill+SA", "Newcache", "Randomfill+Newcache"},
	}
	crypto := aesEncDecTrace(sc)
	w := rng.Symmetric(32) // bidirectional window of 32 lines (Section VI)
	geoms := []cache.Geometry{
		{SizeBytes: 16 * 1024, Ways: 1},
		{SizeBytes: 32 * 1024, Ways: 4},
	}
	benches := workloads.All()
	eng := sc.engine()
	for _, g := range geoms {
		g := g
		// One work item per benchmark: five co-runs against this geometry.
		rows := parexp.Map(eng, len(benches), func(i int) [5]float64 {
			bench := benches[i]
			base := smtRun(sc, g, sim.KindSA, sim.ThreadConfig{Owner: 1}, bench, crypto)
			return [5]float64{
				1,
				smtRun(sc, g, sim.KindPLcache, sim.ThreadConfig{
					Mode: sim.ModePreload, SecretRegions: allTables(), Owner: 1,
				}, bench, crypto) / base,
				smtRun(sc, g, sim.KindSA, sim.ThreadConfig{
					Mode: sim.ModeRandomFill, Window: w, Owner: 1,
				}, bench, crypto) / base,
				smtRun(sc, g, sim.KindNewcache, sim.ThreadConfig{Owner: 1}, bench, crypto) / base,
				smtRun(sc, g, sim.KindNewcache, sim.ThreadConfig{
					Mode: sim.ModeRandomFill, Window: w, Owner: 1,
				}, bench, crypto) / base,
			}
		})
		var sums [5]float64
		for bi, vals := range rows {
			row := []string{g.String(), benches[bi].Name}
			for i, v := range vals {
				sums[i] += v
				row = append(row, pct(v))
			}
			t.AddRow(row...)
		}
		avg := []string{g.String(), "average"}
		for _, s := range sums {
			avg = append(avg, pct(s/float64(len(benches))))
		}
		t.AddRow(avg...)
	}
	t.AddNote("paper: random fill has no impact on co-running programs; PLcache+preload degrades them 32%% on average at 16KB, 1%% at 32KB")
	return t
}

// Figure9 reproduces the spatial-locality profiles: the reference ratio
// Eff(d) per benchmark for fill offsets d within ±16 lines.
func Figure9(sc Scale) *Table {
	offsets := []int{-16, -8, -4, -2, -1, 1, 2, 4, 8, 16}
	headers := []string{"benchmark"}
	for _, d := range offsets {
		headers = append(headers, fmt.Sprintf("d=%+d", d))
	}
	t := &Table{
		Title:   "Figure 9: reference ratio Eff(d) of randomly filled lines",
		Headers: headers,
	}
	geom := cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}
	benches := workloads.All()
	rows := parexp.Map(sc.engine(), len(benches), func(i int) []string {
		p := workloads.SpatialProfile(benches[i].Gen(sc.SpecAccesses, sc.Seed), geom, 16, sc.Seed)
		row := []string{benches[i].Name}
		for _, d := range offsets {
			row = append(row, fmt.Sprintf("%.2f", p.Eff(d)))
		}
		return row
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("paper: most workloads have locality within ~4 lines; lbm and libquantum show wide forward locality")
	return t
}

// figure10Windows are the fill windows of Figure 10, forward then
// bidirectional.
func figure10Windows() []rng.Window {
	return []rng.Window{
		{A: 0, B: 0},
		{A: 0, B: 1}, {A: 0, B: 3}, {A: 0, B: 7}, {A: 0, B: 15}, {A: 0, B: 31},
		{A: 1, B: 0}, {A: 2, B: 1}, {A: 4, B: 3}, {A: 8, B: 7}, {A: 16, B: 15},
	}
}

// Figure10 reproduces the per-benchmark MPKI and IPC sweep across fill
// windows: window [0,0] is the demand-fetch baseline.
func Figure10(sc Scale) *Table {
	headers := []string{"benchmark", "metric"}
	for _, w := range figure10Windows() {
		headers = append(headers, fmt.Sprintf("[%d,%d]", -w.A, w.B))
	}
	t := &Table{
		Title:   "Figure 10: L1 MPKI and normalized IPC vs random fill window",
		Headers: headers,
	}
	benches := workloads.All()
	// One work item per benchmark: its full window sweep (the [0,0] column
	// is the in-item baseline, so items stay self-contained).
	rows := parexp.Map(sc.engine(), len(benches), func(bi int) [2][]string {
		bench := benches[bi]
		trace := bench.Gen(sc.SpecAccesses, sc.Seed)
		mpkiRow := []string{bench.Name, "MPKI"}
		ipcRow := []string{bench.Name, "IPC"}
		var baseIPC float64
		for i, w := range figure10Windows() {
			cfg := sim.DefaultConfig()
			cfg.Seed = sc.Seed
			tc := sim.ThreadConfig{}
			if !w.Zero() {
				tc = sim.ThreadConfig{Mode: sim.ModeRandomFill, Window: w}
			}
			res := sim.New(cfg).RunTraceSteady(tc, trace)
			if i == 0 {
				baseIPC = res.IPC()
			}
			mpkiRow = append(mpkiRow, fmt.Sprintf("%.1f", res.MPKI()))
			ipcRow = append(ipcRow, pct(res.IPC()/baseIPC))
		}
		return [2][]string{mpkiRow, ipcRow}
	})
	for _, pair := range rows {
		t.AddRow(pair[0]...)
		t.AddRow(pair[1]...)
	}
	t.AddNote("paper: larger windows raise MPKI and lower IPC for narrow-locality benchmarks; lbm and libquantum improve (libquantum [0,15]: MPKI -31%%, IPC +57%%)")
	return t
}

// Traffic reproduces the Section VII traffic observation: the L2 and
// memory traffic increase of random fill [0,15] over demand fetch for the
// streaming benchmarks.
func Traffic(sc Scale) *Table {
	t := &Table{
		Title:   "Section VII: traffic increase of random fill [0,15] vs demand fetch",
		Headers: []string{"benchmark", "L2 traffic", "memory traffic"},
	}
	names := []string{"lbm", "libquantum"}
	rows := parexp.Map(sc.engine(), len(names), func(i int) [2]float64 {
		bench, _ := workloads.ByName(names[i])
		trace := bench.Gen(sc.SpecAccesses, sc.Seed)

		mBase := sim.New(sim.Config{Seed: sc.Seed})
		mBase.RunTraceSteady(sim.ThreadConfig{}, trace)

		mRF := sim.New(sim.Config{Seed: sc.Seed})
		mRF.RunTraceSteady(sim.ThreadConfig{
			Mode: sim.ModeRandomFill, Window: rng.Window{A: 0, B: 15},
		}, trace)

		return [2]float64{
			float64(mRF.L2Accesses())/float64(mBase.L2Accesses()) - 1,
			float64(mRF.MemAccesses())/float64(mBase.MemAccesses()) - 1,
		}
	})
	for i, r := range rows {
		t.AddRow(names[i], fmt.Sprintf("%+.1f%%", 100*r[0]), fmt.Sprintf("%+.1f%%", 100*r[1]))
	}
	t.AddNote("paper: L2 traffic +48%%/+56%%, memory traffic +0.03%%/+22%% for lbm/libquantum")
	return t
}

// PrefetchComparison reproduces the Section VII prefetcher comparison: IPC
// of a tagged next-line prefetcher vs random fill [0,15] on the streaming
// benchmarks, normalized to demand fetch.
func PrefetchComparison(sc Scale) *Table {
	t := &Table{
		Title:   "Section VII: tagged prefetcher vs random fill on streaming benchmarks",
		Headers: []string{"benchmark", "baseline", "tagged prefetcher", "random fill [0,15]"},
	}
	names := []string{"lbm", "libquantum"}
	rows := parexp.Map(sc.engine(), len(names), func(i int) [3]float64 {
		bench, _ := workloads.ByName(names[i])
		trace := bench.Gen(sc.SpecAccesses, sc.Seed)

		base := sim.New(sim.Config{Seed: sc.Seed}).RunTraceSteady(sim.ThreadConfig{}, trace)

		mPf := sim.New(sim.Config{Seed: sc.Seed})
		mPf.Prefetcher = prefetch.NewTagged()
		pf := mPf.RunTraceSteady(sim.ThreadConfig{}, trace)

		rf := sim.New(sim.Config{Seed: sc.Seed}).RunTraceSteady(sim.ThreadConfig{
			Mode: sim.ModeRandomFill, Window: rng.Window{A: 0, B: 15},
		}, trace)

		return [3]float64{base.IPC(), pf.IPC(), rf.IPC()}
	})
	for i, r := range rows {
		t.AddRow(names[i], "100.0%", pct(r[1]/r[0]), pct(r[2]/r[0]))
	}
	t.AddNote("paper: tagged prefetcher +11%%/+26%%, random fill +17%%/+57%% for lbm/libquantum")
	return t
}
