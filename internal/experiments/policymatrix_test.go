package experiments

import (
	"os"
	"strconv"
	"testing"

	"randfill/internal/cache"
	"randfill/internal/securecache"
)

// TestPolicyMatrixShape: one row per (policy, design) pair, policy-major in
// PolicyNames order, designs in registry order, every cell numeric.
func TestPolicyMatrixShape(t *testing.T) {
	tbl := PolicyMatrix(tinyScale())
	policies := cache.PolicyNames()
	designs := securecache.All()
	if len(tbl.Rows) != len(policies)*len(designs) {
		t.Fatalf("%d rows, want %d (policies x designs)", len(tbl.Rows), len(policies)*len(designs))
	}
	for i, row := range tbl.Rows {
		if row[0] != policies[i/len(designs)] {
			t.Errorf("row %d policy %q, want %q", i, row[0], policies[i/len(designs)])
		}
		if row[1] != designs[i%len(designs)].Name {
			t.Errorf("row %d design %q, want %q (registry order)", i, row[1], designs[i%len(designs)].Name)
		}
		if len(row) != len(tbl.Headers) {
			t.Fatalf("row %d has %d cells, want %d", i, len(row), len(tbl.Headers))
		}
		for j, cell := range row[2:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("row %d col %d: %q is not numeric: %v", i, j+2, cell, err)
			}
			if v < 0 {
				t.Errorf("row %d col %d: negative %v", i, j+2, v)
			}
		}
	}
}

// TestPolicyMatrixPolicyEffect pins the matrix's reason to exist: on a
// placement-randomizing design, swapping the deterministic default victim
// selection for a draw-backed one moves the occupancy channel — the
// policy x design interaction Peters et al. style sweeps look for. LRU's
// deterministic eviction order lets the occupancy probe read the victim's
// footprint cleanly; a random victim stream adds eviction noise the probe
// cannot average away at the same budget.
func TestPolicyMatrixPolicyEffect(t *testing.T) {
	tbl := PolicyMatrix(tinyScale())
	occAcc := func(policy, design string) float64 {
		for _, row := range tbl.Rows {
			if row[0] == policy && row[1] == design {
				v, err := strconv.ParseFloat(row[4], 64)
				if err != nil {
					t.Fatalf("%s/%s: %v", policy, design, err)
				}
				return v
			}
		}
		t.Fatalf("(%s, %s) missing from the matrix", policy, design)
		return 0
	}
	if lru, rnd := occAcc("lru", "scattercache"), occAcc("random", "scattercache"); rnd >= lru {
		t.Errorf("scattercache occupancy acc: random %.3f not below lru %.3f (policy choice should move the channel)", rnd, lru)
	}
	// The headline cell: BRRIP's thrash-resistant insertion starves the
	// attacker's prime on newcache, collapsing the occupancy probe.
	if lru, br := occAcc("lru", "newcache"), occAcc("brrip", "newcache"); br >= lru {
		t.Errorf("newcache occupancy acc: brrip %.3f not below lru %.3f", br, lru)
	}
	// The randfill design's reuse channel stays closed under every policy:
	// the window hides the demand line regardless of who gets evicted.
	for _, p := range cache.PolicyNames() {
		for _, row := range tbl.Rows {
			if row[0] == p && row[1] == "randfill" {
				v, _ := strconv.ParseFloat(row[2], 64)
				if v > 0.5 {
					t.Errorf("randfill reuse acc %.3f under %s, want the channel closed under every policy", v, p)
				}
			}
		}
	}
}

// TestPolicyMatrixWorkerInvariance is the acceptance check by name: the
// rendered matrix is byte-identical at -workers 1, 2 and 8.
func TestPolicyMatrixWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("three full tiny-scale matrix runs")
	}
	e, ok := ByName("PolicyMatrix")
	if !ok {
		t.Fatal("PolicyMatrix not registered")
	}
	sc := tinyScale()
	sc.Workers = 1
	want := mustRun(t, e, sc)
	for _, w := range []int{2, 8} {
		sc.Workers = w
		if got := mustRun(t, e, sc); got != want {
			t.Fatalf("workers=%d changed the matrix\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
				w, want, w, got)
		}
	}
}

// TestPolicyMatrixResumeByteIdentical: a half-destroyed checkpoint set
// resumes to the clean bytes, re-running only the damaged cells.
func TestPolicyMatrixResumeByteIdentical(t *testing.T) {
	e, _ := ByName("PolicyMatrix")
	sc := tinyScale()
	clean := mustRun(t, e, sc)

	dir := t.TempDir()
	st, h := openStore(t, dir)
	sc.Checkpoint = st
	if got := mustRun(t, e, sc); got != clean {
		t.Fatal("checkpointing changed the output")
	}
	n := len(cache.PolicyNames()) * len(securecache.All())
	if h.count() != n {
		t.Fatalf("%d checkpoint writes, want %d (one per cell)", h.count(), n)
	}

	files := ckptFiles(t, dir)
	if len(files) != n {
		t.Fatalf("%d .ckpt files, want %d", len(files), n)
	}
	if err := os.Remove(files[0]); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(files[1], 5); err != nil {
		t.Fatal(err)
	}

	st2, h2 := openStore(t, dir)
	sc.Checkpoint = st2
	sc.Resume = true
	sc.Workers = 8
	if got := mustRun(t, e, sc); got != clean {
		t.Fatal("resumed matrix differs from clean run")
	}
	if h2.count() != 2 {
		t.Fatalf("resume re-ran %d cells, want exactly the 2 damaged ones", h2.count())
	}
}
