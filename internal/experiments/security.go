package experiments

import (
	"context"
	"fmt"
	"math"

	"randfill/internal/attacks"
	"randfill/internal/cache"
	"randfill/internal/infotheory"
	"randfill/internal/mem"
	"randfill/internal/newcache"
	"randfill/internal/parexp"
	"randfill/internal/rng"
	"randfill/internal/sim"
)

// attackerSim is the security-evaluation machine: Table IV with a reduced
// miss queue, the configuration the paper notes favors the attacker (it
// used 1 entry). We use 2 entries — one serializing demand misses plus room
// for a background fill — because in a trace-driven model a single shared
// entry is always re-claimed by the next back-to-back demand miss, starving
// the random fill queue entirely (gem5's instruction stream has pipeline
// gaps that let fills slip in; see DESIGN.md).
func attackerSim() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.MissQueue = 2
	return cfg
}

// t4Region is the final-round table T4 under the default layout (table id 4).
func t4Region() mem.Region {
	return mem.Region{Base: 0x10000 + 4*1024, Size: 1024}
}

// Figure2 reproduces the timing characteristic chart: mean encryption time
// vs c0^c1 over random-plaintext block encryptions against a demand-fetch
// cache, with the minimum at k10_0 ^ k10_1.
func Figure2(sc Scale) *Table {
	t, err := Figure2Ctx(context.Background(), sc)
	if err != nil {
		panic(err)
	}
	return t
}

// figure2Plan is Figure2's work-unit plan: the collision attack's
// parexp.Shards measurement shards — the same fixed plan
// attacks.CollectSharded runs — so each checkpoint holds one shard's full
// CollisionStats and the final merge (in shard-index order) is
// byte-identical whether the shards came from this run, a prior one, or
// another process's.
func figure2Plan(sc Scale) unitPlan[*attacks.CollisionStats] {
	cfg := attacks.CollisionConfig{
		Sim:  attackerSim(),
		Seed: sc.Seed,
	}
	counts := parexp.SplitCounts(sc.Figure2Samples, parexp.Shards)
	return unitPlan[*attacks.CollisionStats]{
		exp:  "Figure2",
		n:    parexp.Shards,
		seed: func(i int) uint64 { return attacks.ShardSeed(cfg, i) },
		run: func(_ context.Context, i int) (*attacks.CollisionStats, error) {
			// Each unit builds its own shard attacker: a unit is a pure
			// function of (sc, i) even when another process runs it alone.
			atk := attacks.NewShards(cfg, parexp.Shards)[i]
			atk.Collect(counts[i])
			return atk.Stats(), nil
		},
		marshal: func(s *attacks.CollisionStats) ([]byte, error) { return s.MarshalBinary() },
		unmarshal: func(data []byte) (*attacks.CollisionStats, error) {
			s := &attacks.CollisionStats{}
			if err := s.UnmarshalBinary(data); err != nil {
				return nil, err
			}
			return s, nil
		},
	}
}

// Figure2Ctx is the resumable Figure2; figure2Plan describes its units.
func Figure2Ctx(ctx context.Context, sc Scale) (*Table, error) {
	states, err := runShards(ctx, sc, figure2Plan(sc))
	if err != nil {
		return nil, err
	}
	a := attacks.MergeStats(states)
	chart := a.TimingChart(0)
	truth := a.TrueXor(0)

	minIdx, minVal := 0, math.Inf(1)
	rank := 0
	for k, v := range chart {
		if v < minVal {
			minIdx, minVal = k, v
		}
		if v < chart[truth] {
			rank++
		}
	}

	t := &Table{
		Title:   "Figure 2: timing characteristic chart for c0 XOR c1",
		Headers: []string{"c0^c1", "t_avg - mean (cycles)"},
	}
	// Print a sketch of the chart: every 16th point plus the minimum and
	// the ground truth.
	for k := 0; k < 256; k += 16 {
		t.AddRow(fmt.Sprintf("%d", k), fmt.Sprintf("%+.2f", chart[k]))
	}
	t.AddRow(fmt.Sprintf("%d (min)", minIdx), fmt.Sprintf("%+.2f", minVal))
	t.AddRow(fmt.Sprintf("%d (true k10_0^k10_1)", truth), fmt.Sprintf("%+.2f", chart[truth]))
	t.AddNote("samples: %d; recovered = %v (paper: minimum at the true XOR after 2^17 samples)",
		a.Samples(), minIdx == truth)
	t.AddNote("true value's timing rank: %d of 256 (0 = the minimum)", rank)
	return t, nil
}

// t3cell is one Table III cell's mergeable result — the full Monte Carlo
// counts (not just the P1-P2 ratio) plus the search outcome, so the cell
// checkpoints and restores exactly.
type t3cell struct {
	mc  infotheory.P1P2Result
	res attacks.SearchResult
}

// t3cellSplit is where the P1P2Result encoding ends and the SearchResult's
// begins inside a cell checkpoint payload.
const t3cellSplit = 32

func (c t3cell) MarshalBinary() ([]byte, error) {
	mc, err := c.mc.MarshalBinary()
	if err != nil {
		return nil, err
	}
	res, err := c.res.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return append(mc, res...), nil
}

func (c *t3cell) UnmarshalBinary(data []byte) error {
	if len(data) < t3cellSplit {
		return attacks.ErrCorrupt
	}
	if err := c.mc.UnmarshalBinary(data[:t3cellSplit]); err != nil {
		return err
	}
	return c.res.UnmarshalBinary(data[t3cellSplit:])
}

// table3Cell runs one Table III cell: Monte Carlo P1-P2 plus the empirical
// measurements-to-success search under the cap, both sharded on eng.
func table3Cell(ctx context.Context, sc Scale, eng *parexp.Engine, mk func(src *rng.Source) cache.Cache, kind sim.CacheKind, size int) (t3cell, error) {
	mc, err := infotheory.MonteCarloP1P2ShardedCtx(ctx, eng, infotheory.P1P2Config{
		NewCache: mk,
		Window:   rng.Symmetric(size),
		Trials:   sc.MonteCarloTrials,
		Region:   t4Region(),
		Seed:     sc.Seed,
	}, parexp.Shards)
	if err != nil {
		return t3cell{}, err
	}
	cfg := attacks.CollisionConfig{Sim: attackerSim(), Seed: sc.Seed}
	cfg.Sim.L1Kind = kind
	if size > 1 {
		cfg.Victim = sim.ThreadConfig{Mode: sim.ModeRandomFill, Window: rng.Symmetric(size)}
	}
	res, err := attacks.MeasurementsToSuccessShardedCtx(ctx, eng, cfg, sc.AttackBatch, sc.AttackMaxSamples, parexp.Shards)
	if err != nil {
		return t3cell{}, err
	}
	return t3cell{mc, res}, nil
}

// table3Bases lists the two random fill base caches Table III compares.
func table3Bases() []struct {
	name string
	kind sim.CacheKind
	mk   func(src *rng.Source) cache.Cache
} {
	return []struct {
		name string
		kind sim.CacheKind
		mk   func(src *rng.Source) cache.Cache
	}{
		{"RandomFill+4-way SA", sim.KindSA, func(src *rng.Source) cache.Cache {
			return cache.NewSetAssoc(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}, cache.LRU{})
		}},
		{"RandomFill+Newcache", sim.KindNewcache, func(src *rng.Source) cache.Cache {
			return newcache.New(32*1024, 4, src)
		}},
	}
}

// Table3 reproduces Table III: P1-P2 (Monte Carlo) and the number of
// measurements for a successful collision attack, for window sizes 1..32 on
// the random fill cache built over the 4-way SA cache and over Newcache.
func Table3(sc Scale) *Table {
	t, err := Table3Ctx(context.Background(), sc)
	if err != nil {
		panic(err)
	}
	return t
}

// table3Sizes is Table III's window-size axis.
var table3Sizes = []int{1, 2, 4, 8, 16, 32}

// table3Plan is Table III's work-unit plan. Its unit is one cell — a
// (base cache, window size) pair's Monte Carlo counts plus its
// measurements-to-success search. A cell is the smallest independently
// re-runnable unit: the search stops at the first successful round, and
// that stopping point depends on all of the cell's shards at every round
// boundary, so checkpointing below cell granularity would mean serializing
// mid-stream RNG positions (see DESIGN.md). All cells still run
// concurrently, each itself sharded.
func table3Plan(sc Scale) unitPlan[t3cell] {
	bases := table3Bases()
	sizes := table3Sizes
	eng := sc.engine()
	return unitPlan[t3cell]{
		exp:  "Table3",
		n:    len(bases) * len(sizes),
		seed: func(int) uint64 { return sc.Seed },
		run: func(ctx context.Context, i int) (t3cell, error) {
			base := bases[i/len(sizes)]
			return table3Cell(ctx, sc, eng, base.mk, base.kind, sizes[i%len(sizes)])
		},
		marshal: func(c t3cell) ([]byte, error) { return c.MarshalBinary() },
		unmarshal: func(data []byte) (t3cell, error) {
			var c t3cell
			err := c.UnmarshalBinary(data)
			return c, err
		},
	}
}

// Table3Ctx is the resumable Table III; table3Plan describes its units,
// which restore in (base, size) order.
func Table3Ctx(ctx context.Context, sc Scale) (*Table, error) {
	t := &Table{
		Title: "Table III: P1-P2 and measurements for a successful collision attack",
		Headers: []string{"cache", "window", "P1-P2", "measurements", "outcome",
			"Eq.5 estimate"},
	}
	bases := table3Bases()
	sizes := table3Sizes
	cells, err := runShards(ctx, sc, table3Plan(sc))
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		base, size := bases[i/len(sizes)], sizes[i%len(sizes)]
		outcome := fmt.Sprintf("success (%d/15 pairs)", c.res.CorrectPairs)
		meas := fmt.Sprintf("%d", c.res.Measurements)
		if !c.res.Success {
			outcome = fmt.Sprintf("no success after %d (best %d/15)",
				c.res.Measurements, c.res.CorrectPairs)
			meas = "-"
		}
		// Equation 5 with the observed sigma_T, the L1 miss
		// penalty as tmiss-thit, and alpha = 0.99.
		est := infotheory.MeasurementsRequired(c.mc.Diff(), 19, c.res.SigmaT, 0.99)
		estStr := "inf"
		if !math.IsInf(est, 1) {
			estStr = fmt.Sprintf("%.0f", est)
		}
		t.AddRow(base.name, fmt.Sprintf("%d", size),
			fmt.Sprintf("%.3f", c.mc.Diff()), meas, outcome, estStr)
	}
	t.AddNote("paper (SA): P1-P2 = 0.652/0.332/0.127/0.044/0.012/0.006; 65k/1.87M/16.7M measurements, no success >= size 8 after 2^24")
	t.AddNote("paper (Newcache): P1-P2 = 0.576/0.292/0.119/0.045/0.016/0.007; 244k/2.1M, no success >= size 4 after 2^24")
	t.AddNote("search cap: %d samples; Eq.5 column extrapolates with alpha=0.99, tmiss-thit=19 cycles (L2 hit - L1 hit)", sc.AttackMaxSamples)
	return t, nil
}

// Table3Cell runs one Table III cell in isolation — the SA-based random
// fill cache at the given window size — and returns it as a one-row table.
// It exists so benchmarks can time a single cell's sharded pipeline (Monte
// Carlo + measurements-to-success search) across worker counts without
// paying for the other eleven cells.
func Table3Cell(sc Scale, size int) *Table {
	mk := func(src *rng.Source) cache.Cache {
		return cache.NewSetAssoc(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}, cache.LRU{})
	}
	c, err := table3Cell(context.Background(), sc, sc.engine(), mk, sim.KindSA, size)
	if err != nil {
		panic(err)
	}
	t := &Table{
		Title:   fmt.Sprintf("Table III cell: RandomFill+4-way SA, window %d", size),
		Headers: []string{"P1-P2", "measurements", "success"},
	}
	t.AddRow(fmt.Sprintf("%.3f", c.mc.Diff()), fmt.Sprintf("%d", c.res.Measurements),
		fmt.Sprintf("%v", c.res.Success))
	return t
}

// Figure5 reproduces the storage-channel capacity chart: normalized
// capacity vs window size normalized to the security-critical region size,
// for M = 8, 16, 64, 128 lines.
func Figure5() *Table {
	t := &Table{
		Title:   "Figure 5: normalized channel capacity vs normalized window size",
		Headers: []string{"window/M", "M=8", "M=16", "M=64", "M=128"},
	}
	ms := []int{8, 16, 64, 128}
	for _, ratio := range []float64{0.25, 0.5, 1, 2, 4, 8} {
		row := []string{fmt.Sprintf("%g", ratio)}
		for _, m := range ms {
			w := rng.Symmetric(int(ratio * float64(m)))
			row = append(row, fmt.Sprintf("%.4f", infotheory.NormalizedCapacity(m, w.A, w.B)))
		}
		t.AddRow(row...)
	}
	t.AddNote("capacity normalized to demand fetch (log2 M bits); paper: >10x reduction at window = 2M, boundary effect smaller for larger M")
	return t
}
