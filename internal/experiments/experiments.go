// Package experiments regenerates every table and figure of the paper's
// evaluation: one function per experiment, each returning a formatted Table
// whose rows mirror what the paper reports. cmd/experiments drives them from
// the command line and bench_test.go wraps them as benchmarks.
//
// Each experiment takes a Scale that controls sample counts and input
// sizes: FullScale approximates the paper's own budgets (hours of CPU for
// the attack searches); QuickScale produces the same qualitative shapes in
// seconds to minutes and is what the test suite asserts against.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"randfill/internal/checkpoint"
	"randfill/internal/parexp"
)

// Table is a formatted experiment result: the rows the paper's table or
// figure reports.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Scale controls the experiment budgets.
type Scale struct {
	// MonteCarloTrials for Table III's P1-P2 estimation (paper: 100,000).
	MonteCarloTrials int
	// AttackMaxSamples caps the measurements-to-success search (paper:
	// 2^24 — three weeks of gem5 time; see DESIGN.md).
	AttackMaxSamples int
	// AttackBatch is the search's check interval.
	AttackBatch int
	// Figure2Samples is the number of block encryptions behind the
	// timing characteristic chart (paper: 2^17).
	Figure2Samples int
	// CBCBytes is the AES CBC input size for Figures 6 and 7 (paper:
	// 32 KB).
	CBCBytes int
	// SpecAccesses is the per-benchmark trace length for Figures 8-10
	// (standing in for the paper's 2 billion instructions).
	SpecAccesses int
	// Seed drives all randomness.
	Seed uint64
	// Workers is the parallel experiment engine's concurrency; 0 selects
	// GOMAXPROCS. Worker-count invariance (internal/parexp) guarantees
	// the emitted tables are byte-identical for every value: Workers is a
	// speed knob, never a results knob, which is why it lives in Scale
	// next to the budget knobs rather than in each experiment's inputs.
	Workers int
	// Checkpoint, when non-nil, makes the resumable experiments flush each
	// completed work unit through the store the moment it finishes, so an
	// interrupted run can pick up where it left off. Nil disables
	// checkpointing (the default; no I/O on the experiment path).
	Checkpoint *checkpoint.Store
	// Resume makes the resumable experiments load completed units from
	// Checkpoint instead of re-running them. Because every unit is a pure
	// function of (Scale, unit index) and its accumulator serializes
	// exactly, a resumed run's output is byte-identical to an
	// uninterrupted one — Checkpoint's identity checks (seed, config
	// hash, RNG stream version) refuse units recorded under any other
	// configuration.
	Resume bool
	// Track, when non-nil, observes each executed work unit starting
	// (done=false) and durably finishing (done=true). cmd/experiments wires
	// it to the in-flight tracker behind the hard-kill aborted markers; it
	// never influences results and is excluded from the config hash.
	Track func(m checkpoint.Meta, done bool)
}

// engine returns the worker pool the experiment's trial shards execute on.
func (sc Scale) engine() *parexp.Engine { return parexp.New(sc.Workers) }

// FullScale approximates the paper's budgets. The attack search cap now
// matches the paper's 2^24 (which took it three weeks of gem5 time): with
// the search sharded across workers the cap is an overnight run instead of
// an out-of-reach one. The Equation 5 column still extrapolates for cells
// that fail under the cap.
func FullScale() Scale {
	return Scale{
		MonteCarloTrials: 100000,
		AttackMaxSamples: 1 << 24,
		AttackBatch:      1 << 15,
		Figure2Samples:   1 << 17,
		CBCBytes:         32 * 1024,
		SpecAccesses:     1_000_000,
		Seed:             1,
	}
}

// QuickScale produces the same qualitative shapes at a few percent of the
// cost; it is the scale the automated tests and benchmarks run at.
func QuickScale() Scale {
	return Scale{
		MonteCarloTrials: 20000,
		AttackMaxSamples: 1 << 15,
		AttackBatch:      1 << 13,
		Figure2Samples:   1 << 14,
		CBCBytes:         8 * 1024,
		SpecAccesses:     150_000,
		Seed:             1,
	}
}

// Experiment is a registry entry. Run honors cooperative cancellation: a
// cancelled or expired ctx stops the experiment between work units and
// surfaces ctx's error. The resumable experiments (Figure2, Table3,
// MissQueueSecurity, OccupancyMatrix, PolicyMatrix — the long-running attack
// searches and sweeps) additionally honor Scale.Checkpoint and Scale.Resume;
// the rest
// check ctx at unit boundaries only and never touch the checkpoint store.
type Experiment struct {
	Name string
	// What the experiment reproduces.
	Description string
	Run         func(ctx context.Context, sc Scale) (*Table, error)
}

// plain adapts a non-resumable experiment to the registry's context-aware
// signature. These experiments run in one piece, so cancellation is honored
// only before the run starts; checkpoint settings are ignored.
func plain(f func(Scale) *Table) func(context.Context, Scale) (*Table, error) {
	return func(ctx context.Context, sc Scale) (*Table, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return f(sc), nil
	}
}

// All returns the experiment registry in paper order.
func All() []Experiment {
	return []Experiment{
		{"Figure2", "final-round collision attack timing characteristic chart", Figure2Ctx},
		{"Table3", "P1-P2 and measurements-to-success vs window size", Table3Ctx},
		{"Figure5", "storage channel capacity vs window size", plain(func(Scale) *Table { return Figure5() })},
		{"Figure6", "AES-CBC IPC across cache geometries and defenses", plain(Figure6)},
		{"Figure7", "AES-CBC IPC vs random fill window size", plain(Figure7)},
		{"Figure8", "SMT co-run throughput of SPEC-like programs next to AES", plain(Figure8)},
		{"Figure9", "spatial locality profiles Eff(d)", plain(Figure9)},
		{"Figure10", "L1 MPKI and IPC vs random fill window per benchmark", plain(Figure10)},
		{"Traffic", "L2/memory traffic increase for streaming benchmarks", plain(Traffic)},
		{"Prefetch", "tagged prefetcher vs random fill on streaming benchmarks", plain(PrefetchComparison)},
		{"Defenses", "defense matrix: cache architectures vs attack classes (Section VIII)", plain(DefenseMatrix)},
		{"AblationWindowShape", "window direction: security signal vs streaming speedup", plain(AblationWindowShape)},
		{"AblationFillQueue", "random fill queue depth", plain(AblationFillQueue)},
		{"AblationMissQueue", "miss queue (MSHR) entries", plain(AblationMissQueue)},
		{"AblationDropOnHit", "drop-if-present tag check", plain(AblationDropOnHit)},
		{"AblationL2RandomFill", "random fill at L1 only vs L1+L2", plain(AblationL2RandomFill)},
		{"Hierarchy3", "3-level hierarchy: which levels run random fill", plain(Hierarchy3)},
		{"ConstantTime", "constant-time defenses vs random fill on AES", plain(ConstantTime)},
		{"InformingDoS", "informing-loads DoS amplification under an evicting co-runner", plain(InformingDoS)},
		{"AdaptiveWindow", "phase-adaptive window selection (the paper's future work)", plain(AdaptiveWindow)},
		{"Equation4", "analytical timing-channel model vs simulator (Eq. 4)", plain(Equation4)},
		{"MissQueueSecurity", "miss queue size vs collision attack cost (Section V.A)", MissQueueSecurityCtx},
		{"OccupancyMatrix", "security x performance matrix: reuse and occupancy channels per secure cache design", OccupancyMatrixCtx},
		{"PolicyMatrix", "replacement policy x design sweep: reuse/occupancy channels and AES IPC/MPKI per pair", PolicyMatrixCtx},
	}
}

// ByName finds a registered experiment.
func ByName(name string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.Name, name) {
			return e, true
		}
	}
	return Experiment{}, false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
