package experiments

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"randfill/internal/securecache"
)

// TestOccupancyMatrixShape: one row per registered design, in registry
// order, with every cell parseable and in range.
func TestOccupancyMatrixShape(t *testing.T) {
	tbl := OccupancyMatrix(tinyScale())
	designs := securecache.All()
	if len(tbl.Rows) != len(designs) {
		t.Fatalf("%d rows, want %d (one per design)", len(tbl.Rows), len(designs))
	}
	for i, row := range tbl.Rows {
		if row[0] != designs[i].Name {
			t.Errorf("row %d is %q, want %q (registry order)", i, row[0], designs[i].Name)
		}
		if len(row) != len(tbl.Headers) {
			t.Fatalf("row %d has %d cells, want %d", i, len(row), len(tbl.Headers))
		}
		for j, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("row %d col %d: %q is not numeric: %v", i, j+1, cell, err)
			}
			if v < 0 {
				t.Errorf("row %d col %d: negative %v", i, j+1, v)
			}
		}
	}
}

// TestOccupancyMatrixSeparatesChannels pins the matrix's qualitative story
// at tiny scale: randfill closes the reuse channel that the demand-fill
// designs leak, while the occupancy channel stays open on the placement
// randomizers.
func TestOccupancyMatrixSeparatesChannels(t *testing.T) {
	tbl := OccupancyMatrix(tinyScale())
	cell := func(design string, col int) float64 {
		for _, row := range tbl.Rows {
			if row[0] == design {
				v, err := strconv.ParseFloat(row[col], 64)
				if err != nil {
					t.Fatalf("%s col %d: %v", design, col, err)
				}
				return v
			}
		}
		t.Fatalf("design %q missing from the matrix", design)
		return 0
	}
	// Column 1 = reuse accuracy, column 4 = occupancy MI.
	if rf, sc := cell("randfill", 1), cell("scattercache", 1); rf >= sc {
		t.Errorf("reuse accuracy: randfill %.3f not below scattercache %.3f", rf, sc)
	}
	for _, d := range []string{"scattercache", "mirage", "newcache"} {
		if mi := cell(d, 4); mi < 0.1 {
			t.Errorf("%s: occupancy MI %.3f, want the channel open on a placement randomizer", d, mi)
		}
	}
}

// TestOccupancyMatrixWorkerInvariance is the satellite acceptance check by
// name: the rendered matrix is byte-identical at -workers 1, 2 and 8.
func TestOccupancyMatrixWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("three full tiny-scale matrix runs")
	}
	e, ok := ByName("OccupancyMatrix")
	if !ok {
		t.Fatal("OccupancyMatrix not registered")
	}
	sc := tinyScale()
	sc.Workers = 1
	want := mustRun(t, e, sc)
	for _, w := range []int{2, 8} {
		sc.Workers = w
		if got := mustRun(t, e, sc); got != want {
			t.Fatalf("workers=%d changed the matrix\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
				w, want, w, got)
		}
	}
}

// TestOccupancyMatrixResumeByteIdentical: a half-destroyed checkpoint set
// resumes to the clean bytes, re-running only the missing design cells.
func TestOccupancyMatrixResumeByteIdentical(t *testing.T) {
	e, _ := ByName("OccupancyMatrix")
	sc := tinyScale()
	clean := mustRun(t, e, sc)
	if !strings.Contains(clean, "mirage") {
		t.Fatalf("matrix missing mirage row:\n%s", clean)
	}

	dir := t.TempDir()
	st, h := openStore(t, dir)
	sc.Checkpoint = st
	if got := mustRun(t, e, sc); got != clean {
		t.Fatal("checkpointing changed the output")
	}
	n := len(securecache.All())
	if h.count() != n {
		t.Fatalf("%d checkpoint writes, want %d (one per design)", h.count(), n)
	}

	files := ckptFiles(t, dir)
	if len(files) != n {
		t.Fatalf("%d .ckpt files, want %d", len(files), n)
	}
	if err := os.Remove(files[0]); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(files[1], 5); err != nil {
		t.Fatal(err)
	}

	st2, h2 := openStore(t, dir)
	sc.Checkpoint = st2
	sc.Resume = true
	sc.Workers = 8
	if got := mustRun(t, e, sc); got != clean {
		t.Fatal("resumed matrix differs from clean run")
	}
	if h2.count() != 2 {
		t.Fatalf("resume re-ran %d cells, want exactly the 2 damaged ones", h2.count())
	}
}
