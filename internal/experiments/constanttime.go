package experiments

import (
	"fmt"

	"randfill/internal/cache"
	"randfill/internal/mem"
	"randfill/internal/rng"
	"randfill/internal/sim"
)

// ConstantTime compares the constant-execution-time defenses the paper
// discusses in Sections III.B, VI and VIII against random fill, on the AES
// workload: disable-cache, informing loads (Kong et al.), PLcache+preload,
// and the random fill cache. The paper's qualitative ranking — disable
// cache worst, informing loads below PLcache+preload, random fill best — is
// the reproduction target.
func ConstantTime(sc Scale) *Table {
	t := &Table{
		Title: "Constant-time defenses vs random fill (AES-CBC)",
		Headers: []string{"defense", "IPC vs baseline", "handler traps",
			"notes"},
	}
	trace := aesCBCTrace(sc)

	// An 8 KB 2-way L1: the tables do not fit comfortably, so eviction
	// pressure is real and the preloading strategies' costs show (a big
	// L1 hides them — informing loads traps once and never again).
	base := func(kind sim.CacheKind) sim.Config {
		cfg := sim.DefaultConfig()
		cfg.L1 = cache.Geometry{SizeBytes: 8 * 1024, Ways: 2}
		cfg.L1Kind = kind
		cfg.Seed = sc.Seed
		return cfg
	}
	baseline := sim.New(base(sim.KindSA)).RunTrace(sim.ThreadConfig{}, trace)

	disable := sim.New(base(sim.KindSA)).RunTrace(sim.ThreadConfig{
		Mode: sim.ModeDisableSecret,
	}, trace)
	t.AddRow("disable cache", pct(disable.IPC()/baseline.IPC()), "-",
		"every secret access goes to L2")

	informing := sim.New(base(sim.KindSA)).RunTrace(sim.ThreadConfig{
		Mode:          sim.ModeInforming,
		SecretRegions: encTables(),
	}, trace)
	t.AddRow("informing loads", pct(informing.IPC()/baseline.IPC()),
		fmt.Sprintf("%d", informing.InformingTraps),
		"handler reloads all tables per secret miss")

	preload := sim.New(base(sim.KindPLcache)).RunTrace(sim.ThreadConfig{
		Mode: sim.ModePreload, SecretRegions: encTables(), Owner: 1,
	}, trace)
	t.AddRow("PLcache+preload", pct(preload.IPC()/baseline.IPC()), "-",
		"tables locked once, at thread start")

	rf := sim.New(base(sim.KindSA)).RunTrace(sim.ThreadConfig{
		Mode: sim.ModeRandomFill, Window: rng.Window{A: 16, B: 15},
	}, trace)
	t.AddRow("random fill [-16,+15]", pct(rf.IPC()/baseline.IPC()), "-",
		"no preloading, no locking")

	t.AddNote("paper: informing loads is slower than PLcache+preload (more frequent handler invocation) and both trail random fill; an attacker who evicts the tables repeatedly turns the informing-loads handler into a DoS amplifier (Section VIII)")
	return t
}

// InformingDoS demonstrates the Section VIII abuse case: an attacker
// thread that continuously evicts the victim's tables multiplies the
// informing-loads victim's handler invocations, while the random-fill
// victim is unaffected by design.
func InformingDoS(sc Scale) *Table {
	t := &Table{
		Title:   "Section VIII: informing-loads DoS amplification under an evicting co-runner",
		Headers: []string{"victim defense", "solo IPC", "co-run IPC", "slowdown", "traps"},
	}
	trace := aesCBCTrace(sc)
	// The attacker streams over a large buffer, evicting the victim's
	// tables from the shared L1 as fast as it can.
	attacker := streamingEvictTrace(sc)

	// A 16 KB DM shared L1: the attacker's streaming sweep actually
	// displaces the victim's tables.
	mkCfg := func() sim.Config {
		cfg := sim.DefaultConfig()
		cfg.L1 = cache.Geometry{SizeBytes: 16 * 1024, Ways: 1}
		cfg.Seed = sc.Seed
		return cfg
	}
	for _, cfg := range []struct {
		name string
		tc   sim.ThreadConfig
	}{
		{"informing loads", sim.ThreadConfig{Mode: sim.ModeInforming, SecretRegions: encTables()}},
		{"random fill [-16,+15]", sim.ThreadConfig{Mode: sim.ModeRandomFill, Window: rng.Window{A: 16, B: 15}}},
	} {
		solo := sim.New(mkCfg()).RunTrace(cfg.tc, trace)
		m := sim.New(mkCfg())
		co := m.RunSMT(cfg.tc, trace, sim.ThreadConfig{Owner: 1}, attacker)
		t.AddRow(cfg.name,
			fmt.Sprintf("%.3f", solo.IPC()),
			fmt.Sprintf("%.3f", co.IPC()),
			pct(co.IPC()/solo.IPC()),
			fmt.Sprintf("%d", co.InformingTraps))
	}
	t.AddNote("the informing-loads victim pays a full table reload per attacker-induced miss; the random fill victim has nothing for the attacker to abuse")
	return t
}

// streamingEvictTrace builds the DoS attacker's trace: a fast streaming
// sweep large enough to thrash the shared L1.
func streamingEvictTrace(sc Scale) mem.Trace {
	const sweepLines = 4096 // 256 KB, 8x the L1
	n := sc.SpecAccesses / 2
	tr := make(mem.Trace, n)
	for i := range tr {
		tr[i] = mem.Access{Addr: 0x4000000 + mem.Addr((i%sweepLines)*mem.LineSize)}
	}
	return tr
}
