package experiments

import (
	"fmt"

	"randfill/internal/attacks"
	"randfill/internal/parexp"
	"randfill/internal/sim"
)

// MissQueueSecurity reproduces the paper's observation that its 1-entry
// miss-queue configuration "requires about 1 order of magnitude less
// samples compared to the baseline configuration ... which has 4 miss queue
// entries" (Section V.A): more outstanding misses overlap, blurring the
// per-collision timing signal. At a fixed measurement budget, the attack
// recovers more key relations against the smaller miss queue.
func MissQueueSecurity(sc Scale) *Table {
	t := &Table{
		Title: "Section V.A: miss queue size vs collision attack progress",
		Headers: []string{"miss queue entries", "sigma_T (cycles)",
			"pairs recovered", "outcome"},
	}
	sizes := []int{2, 4, 8}
	eng := sc.engine()
	results := parexp.Map(eng, len(sizes), func(i int) attacks.SearchResult {
		cfg := attacks.CollisionConfig{Sim: sim.DefaultConfig(), Seed: sc.Seed}
		cfg.Sim.MissQueue = sizes[i]
		return attacks.MeasurementsToSuccessSharded(eng, cfg, sc.AttackBatch, sc.AttackMaxSamples, parexp.Shards)
	})
	for i, res := range results {
		outcome := fmt.Sprintf("no success at %d samples", res.Measurements)
		if res.Success {
			outcome = fmt.Sprintf("success at %d samples", res.Measurements)
		}
		t.AddRow(fmt.Sprintf("%d", sizes[i]),
			fmt.Sprintf("%.1f", res.SigmaT),
			fmt.Sprintf("%d/15", res.CorrectPairs),
			outcome)
	}
	t.AddNote("paper: the 1-entry configuration needs ~10x fewer samples than the 4-entry baseline; here the 2-entry configuration recovers more pairs than 4 or 8 at the same budget (2 is the smallest queue that still lets random fill requests issue in a trace-driven model — DESIGN.md)")
	return t
}
