package experiments

import (
	"context"
	"fmt"

	"randfill/internal/attacks"
	"randfill/internal/parexp"
	"randfill/internal/sim"
)

// MissQueueSecurity reproduces the paper's observation that its 1-entry
// miss-queue configuration "requires about 1 order of magnitude less
// samples compared to the baseline configuration ... which has 4 miss queue
// entries" (Section V.A): more outstanding misses overlap, blurring the
// per-collision timing signal. At a fixed measurement budget, the attack
// recovers more key relations against the smaller miss queue.
func MissQueueSecurity(sc Scale) *Table {
	t, err := MissQueueSecurityCtx(context.Background(), sc)
	if err != nil {
		panic(err)
	}
	return t
}

// missQueueSizes is the experiment's miss-queue axis.
var missQueueSizes = []int{2, 4, 8}

// missQueuePlan is MissQueueSecurity's work-unit plan: one miss-queue
// size's full measurements-to-success search per unit (the same
// cell-granularity reasoning as table3Plan: the search's early exit couples
// its shards, so the completed SearchResult is what checkpoints).
func missQueuePlan(sc Scale) unitPlan[attacks.SearchResult] {
	sizes := missQueueSizes
	eng := sc.engine()
	return unitPlan[attacks.SearchResult]{
		exp:  "MissQueueSecurity",
		n:    len(sizes),
		seed: func(int) uint64 { return sc.Seed },
		run: func(ctx context.Context, i int) (attacks.SearchResult, error) {
			cfg := attacks.CollisionConfig{Sim: sim.DefaultConfig(), Seed: sc.Seed}
			cfg.Sim.MissQueue = sizes[i]
			return attacks.MeasurementsToSuccessShardedCtx(ctx, eng, cfg, sc.AttackBatch, sc.AttackMaxSamples, parexp.Shards)
		},
		marshal: func(r attacks.SearchResult) ([]byte, error) { return r.MarshalBinary() },
		unmarshal: func(data []byte) (attacks.SearchResult, error) {
			var r attacks.SearchResult
			err := r.UnmarshalBinary(data)
			return r, err
		},
	}
}

// MissQueueSecurityCtx is the resumable MissQueueSecurity; missQueuePlan
// describes its units.
func MissQueueSecurityCtx(ctx context.Context, sc Scale) (*Table, error) {
	t := &Table{
		Title: "Section V.A: miss queue size vs collision attack progress",
		Headers: []string{"miss queue entries", "sigma_T (cycles)",
			"pairs recovered", "outcome"},
	}
	sizes := missQueueSizes
	results, err := runShards(ctx, sc, missQueuePlan(sc))
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		outcome := fmt.Sprintf("no success at %d samples", res.Measurements)
		if res.Success {
			outcome = fmt.Sprintf("success at %d samples", res.Measurements)
		}
		t.AddRow(fmt.Sprintf("%d", sizes[i]),
			fmt.Sprintf("%.1f", res.SigmaT),
			fmt.Sprintf("%d/15", res.CorrectPairs),
			outcome)
	}
	t.AddNote("paper: the 1-entry configuration needs ~10x fewer samples than the 4-entry baseline; here the 2-entry configuration recovers more pairs than 4 or 8 at the same budget (2 is the smallest queue that still lets random fill requests issue in a trace-driven model — DESIGN.md)")
	return t, nil
}
