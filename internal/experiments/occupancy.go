package experiments

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"

	"randfill/internal/attacks"
	"randfill/internal/cache"
	"randfill/internal/rng"
	"randfill/internal/securecache"
	"randfill/internal/sim"
)

// occCell is one design's row of the security x performance matrix: both
// attack channels plus the AES-CBC performance of the same architecture.
// All six fields checkpoint exactly (bit-patterns, not formatted strings).
type occCell struct {
	reuseAcc, reuseMI float64
	occAcc, occMI     float64
	ipc, mpki         float64
}

// occCellSize is the fixed checkpoint payload size: six float64 bit
// patterns.
const occCellSize = 6 * 8

func (c occCell) MarshalBinary() ([]byte, error) {
	buf := make([]byte, occCellSize)
	for i, v := range [6]float64{c.reuseAcc, c.reuseMI, c.occAcc, c.occMI, c.ipc, c.mpki} {
		binary.BigEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf, nil
}

func (c *occCell) UnmarshalBinary(data []byte) error {
	if len(data) != occCellSize {
		return attacks.ErrCorrupt
	}
	var v [6]float64
	for i := range v {
		v[i] = math.Float64frombits(binary.BigEndian.Uint64(data[8*i:]))
	}
	c.reuseAcc, c.reuseMI, c.occAcc, c.occMI, c.ipc, c.mpki = v[0], v[1], v[2], v[3], v[4], v[5]
	return nil
}

// occupancyVictimSizes is the victim working-set sweep (in lines) of the
// occupancy channel, against a 128-line cache with a 96-line attacker prime
// (3/4 of capacity — a full prime self-thrashes on way-partitioned designs
// and saturates the probe).
var occupancyVictimSizes = []int{16, 32, 64, 96}

// occupancyCell evaluates one registered design: the reuse (flush + reload)
// channel over the AES table region, the occupancy channel over the victim
// size sweep, and the AES-CBC IPC/MPKI of the same architecture on the
// timing simulator.
func occupancyCell(sc Scale, d securecache.Design, seed uint64) occCell {
	mk := func(geom cache.Geometry) func(src *rng.Source) securecache.SecureCache {
		return func(src *rng.Source) securecache.SecureCache {
			return d.New(securecache.Config{Geom: geom}, src)
		}
	}

	// Reuse: the attacker observes the paper's best case — the table
	// region extended by the default window on both sides — so windowed
	// and demand designs are scored over the same observable range.
	reuse := attacks.Reuse(attacks.ReuseConfig{
		NewCache: mk(cache.Geometry{SizeBytes: 32 * 1024, Ways: 4}),
		Region:   t4Region(),
		Pad:      16,
		Trials:   sc.MonteCarloTrials / 10,
		Seed:     seed,
	})

	occ := attacks.Occupancy(attacks.OccupancyConfig{
		NewCache:    mk(cache.Geometry{SizeBytes: 8 * 1024, Ways: 4}), // 128 lines
		Lines:       96,
		VictimSizes: occupancyVictimSizes,
		Trials:      sc.MonteCarloTrials / 100,
		Seed:        seed,
	})

	// Performance: the same architecture as the simulator's L1 running the
	// Figure 6 AES-CBC workload; randfill is the SA cache with the paper's
	// default window, every other design runs demand fill.
	cfg := sim.DefaultConfig()
	cfg.Seed = sc.Seed
	tc := sim.ThreadConfig{}
	if d.Name == "randfill" {
		cfg.L1Kind = sim.KindSA
		tc = sim.ThreadConfig{Mode: sim.ModeRandomFill, Window: rng.Symmetric(32)}
	} else {
		cfg.L1Kind = sim.CacheKind(d.Name)
	}
	res := runAES(cfg, tc, aesCBCTrace(sc))

	return occCell{
		reuseAcc: reuse.Accuracy, reuseMI: reuse.MutualInfo,
		occAcc: occ.Accuracy, occMI: occ.MutualInfo,
		ipc: res.IPC(), mpki: res.MPKI(),
	}
}

// occupancyPlan is OccupancyMatrix's work-unit plan: one registered
// secure-cache design's full cell per unit. Per-unit seeds derive from the
// master seed through a dedicated stream, so cells are independent pure
// functions of (Scale, index).
func occupancyPlan(sc Scale) unitPlan[occCell] {
	designs := securecache.All()
	seedFor := func(i int) uint64 {
		return rng.New(sc.Seed ^ 0x0cc9).SplitSeed(uint64(i + 1))
	}
	return unitPlan[occCell]{
		exp:  "OccupancyMatrix",
		n:    len(designs),
		seed: seedFor,
		run: func(_ context.Context, i int) (occCell, error) {
			return occupancyCell(sc, designs[i], seedFor(i)), nil
		},
		marshal: func(c occCell) ([]byte, error) { return c.MarshalBinary() },
		unmarshal: func(data []byte) (occCell, error) {
			var c occCell
			err := c.UnmarshalBinary(data)
			return c, err
		},
	}
}

// OccupancyMatrix is the non-resumable entry point (panics on error).
func OccupancyMatrix(sc Scale) *Table {
	t, err := OccupancyMatrixCtx(context.Background(), sc)
	if err != nil {
		panic(err)
	}
	return t
}

// OccupancyMatrixCtx builds the security x performance matrix over every
// registered secure-cache design: the reuse (flush + reload) channel the
// paper evaluates, the cache-occupancy channel that needs no shared memory,
// and the AES-CBC IPC/MPKI of the same architecture. Its work unit is one
// design's full cell, restored in registry order, so the emitted table is
// byte-identical across worker counts and across kill/resume boundaries.
func OccupancyMatrixCtx(ctx context.Context, sc Scale) (*Table, error) {
	designs := securecache.All()
	cells, err := runShards(ctx, sc, occupancyPlan(sc))
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "Occupancy matrix: attack channels vs performance per secure cache design",
		Headers: []string{"design", "reuse acc", "reuse MI (bits)",
			"occupancy acc", "occupancy MI (bits)", "AES IPC", "AES MPKI"},
	}
	for i, c := range cells {
		t.AddRow(designs[i].Name,
			fmt.Sprintf("%.3f", c.reuseAcc), fmt.Sprintf("%.3f", c.reuseMI),
			fmt.Sprintf("%.3f", c.occAcc), fmt.Sprintf("%.3f", c.occMI),
			fmt.Sprintf("%.3f", c.ipc), fmt.Sprintf("%.2f", c.mpki))
	}
	t.AddNote("reuse: flush+reload over the %d-line AES table +/-16 lines, %d trials (chance acc 1/16, max MI 4 bits)",
		t4Region().NumLines(), sc.MonteCarloTrials/10)
	t.AddNote("occupancy: 96-line prime on a 128-line cache, victim sweep %v, %d trials/size (chance acc 1/4, max MI 2 bits); no shared addresses",
		occupancyVictimSizes, sc.MonteCarloTrials/100)
	t.AddNote("performance: AES-CBC (%d bytes) as the simulator L1; randfill = SA + window [-16,+15], others demand fill",
		sc.CBCBytes)
	return t, nil
}
