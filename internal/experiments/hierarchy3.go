package experiments

import (
	"fmt"

	"randfill/internal/cache"
	"randfill/internal/parexp"
	"randfill/internal/rng"
	"randfill/internal/sim"
)

// Hierarchy3 sweeps which levels of a three-level hierarchy run the random
// fill policy — the experiment the two-level machine structurally could not
// express. Section VI evaluates L1-only vs L1+L2 and argues lower levels
// tolerate the pollution because of their capacity; the 3-level sweep
// extends that argument one level down: random fill at the L3 is nearly
// free, at the L2 cheap, and the latency cost concentrates at the L1, where
// nofill forwarding robs the busiest cache of its reuse.
func Hierarchy3(sc Scale) *Table {
	t := &Table{
		Title:   "3-level hierarchy: random fill placement (AES-CBC, window [-8,+7], L1 32K/L2 256K/L3 2M)",
		Headers: []string{"random fill at", "IPC vs demand", "mem traffic vs demand", "rf issued L1/L2/L3"},
	}
	trace := aesCBCTrace(sc)
	w := rng.Window{A: 8, B: 7}

	placements := []struct {
		name       string
		l1, l2, l3 bool
	}{
		{"none (demand)", false, false, false},
		{"L1", true, false, false},
		{"L2", false, true, false},
		{"L3", false, false, true},
		{"L1+L2", true, true, false},
		{"L1+L3", true, false, true},
		{"L2+L3", false, true, true},
		{"L1+L2+L3", true, true, true},
	}

	type placeResult struct {
		ipc float64
		mem uint64
		rf  [3]uint64
	}
	results := parexp.Map(sc.engine(), len(placements), func(i int) placeResult {
		p := placements[i]
		cfg := sim.DefaultConfig()
		cfg.Seed = sc.Seed
		cfg.Levels = []sim.LevelConfig{
			{Geom: cache.Geometry{SizeBytes: 256 * 1024, Ways: 8}, HitLat: 12},
			{Geom: cache.Geometry{SizeBytes: 2 * 1024 * 1024, Ways: 16}, HitLat: 40},
		}
		if p.l2 {
			cfg.Levels[0].Window = w
		}
		if p.l3 {
			cfg.Levels[1].Window = w
		}
		tc := sim.ThreadConfig{}
		if p.l1 {
			tc = sim.ThreadConfig{Mode: sim.ModeRandomFill, Window: w}
		}
		m := sim.New(cfg)
		res := m.RunTrace(tc, trace)
		r := placeResult{ipc: res.IPC(), mem: m.MemAccesses()}
		r.rf[0] = res.RandomFills
		for k := 1; k <= 2; k++ {
			if fs := m.Hierarchy().Level(k).FillStats(); fs != nil {
				r.rf[k] = fs.RandomIssued
			}
		}
		return r
	})

	base := results[0]
	for i, r := range results {
		t.AddRow(placements[i].name,
			pct(r.ipc/base.ipc),
			pct(float64(r.mem)/float64(base.mem)),
			fmt.Sprintf("%d/%d/%d", r.rf[0], r.rf[1], r.rf[2]))
	}
	t.AddNote("each lower level runs a full fill engine (nofill forwarding + drop-if-present + underflow clamping); background fills add traffic, never demand latency")
	t.AddNote("extends Section VI one level down: pollution tolerance grows with capacity, so the IPC cost of random fill concentrates at the L1")
	return t
}
