package experiments

import (
	"fmt"

	"randfill/internal/infotheory"
	"randfill/internal/parexp"
	"randfill/internal/rng"
)

// Equation4 validates the paper's analytical timing-channel model against
// the timing simulator: for the two-access microbenchmark of Section V.A,
// the measured expected-time difference mu2 - mu1 must equal
// (P1 - P2)(tmiss - thit) — Equation 4 — at every window size.
func Equation4(sc Scale) *Table {
	t := &Table{
		Title: "Equation 4 validation: measured mu2-mu1 vs (P1-P2)(tmiss-thit)",
		Headers: []string{"window", "P1", "P2", "predicted (cycles)",
			"measured (cycles)"},
	}
	trials := sc.MonteCarloTrials / 8
	if trials < 1000 {
		trials = 1000
	}
	sizes := []int{1, 2, 4, 8, 16, 32}
	// One self-contained measurement per window size; Map keeps row order
	// fixed no matter which size finishes first.
	results := parexp.Map(sc.engine(), len(sizes), func(i int) infotheory.TimingSignalResult {
		return infotheory.MeasureTimingSignal(infotheory.TimingSignalConfig{
			Window: rng.Symmetric(sizes[i]),
			Region: t4Region(),
			Trials: trials,
			Seed:   sc.Seed + uint64(sizes[i]),
		})
	})
	for i, res := range results {
		t.AddRow(fmt.Sprintf("%d", sizes[i]),
			fmt.Sprintf("%.3f", res.P1),
			fmt.Sprintf("%.3f", res.P2),
			fmt.Sprintf("%.2f", res.Predicted),
			fmt.Sprintf("%.2f", res.Measured))
	}
	t.AddNote("the analytical model and the simulator agree within Monte Carlo noise; at the covering window both sides vanish — the paper's 'completely closes the timing channel'")
	return t
}
