package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"randfill/internal/checkpoint"
)

// countingHooks counts checkpoint writes, so the tests can assert which
// units were restored vs re-run.
type countingHooks struct{ puts atomic.Int64 }

func (h *countingHooks) BeforePut(checkpoint.Meta) error  { return nil }
func (h *countingHooks) AfterPut(checkpoint.Meta, string) { h.puts.Add(1) }
func (h *countingHooks) count() int                       { return int(h.puts.Load()) }

func openStore(t *testing.T, dir string) (*checkpoint.Store, *countingHooks) {
	t.Helper()
	st, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := &countingHooks{}
	st.Hooks = h
	return st, h
}

// ckptFiles lists every checkpoint file (complete or torn) via the store's
// own Scan, so the tests and the production inventory agree on what counts
// as a checkpoint file.
func ckptFiles(t *testing.T, dir string) []string {
	t.Helper()
	st, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := st.Scan()
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Path)
	}
	return names
}

// TestFigure2ResumeByteIdentical is the resume contract end to end,
// in-process: a checkpointing run, a partially-destroyed checkpoint dir,
// and a resumed run at a different worker count all render the same bytes.
func TestFigure2ResumeByteIdentical(t *testing.T) {
	e, _ := ByName("Figure2")
	sc := tinyScale()
	sc.Workers = 2
	clean := mustRun(t, e, sc)

	dir := t.TempDir()
	st, h := openStore(t, dir)
	sc.Checkpoint = st
	if got := mustRun(t, e, sc); got != clean {
		t.Fatal("checkpointing changed the output")
	}
	if h.count() != 8 {
		t.Fatalf("%d checkpoint writes, want 8 (one per shard)", h.count())
	}

	// Destroy shard checkpoints: delete one, tear another mid-file. Both
	// must silently re-run on resume.
	files := ckptFiles(t, dir)
	if len(files) != 8 {
		t.Fatalf("%d .ckpt files, want 8", len(files))
	}
	if err := os.Remove(files[0]); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(files[1], 10); err != nil {
		t.Fatal(err)
	}

	st2, h2 := openStore(t, dir)
	sc.Checkpoint = st2
	sc.Resume = true
	sc.Workers = 8
	if got := mustRun(t, e, sc); got != clean {
		t.Fatal("resumed output differs from clean run")
	}
	if h2.count() != 2 {
		t.Fatalf("resume re-ran %d shards, want exactly the 2 damaged ones", h2.count())
	}

	// Fully-checkpointed resume: nothing re-runs, same bytes.
	st3, h3 := openStore(t, dir)
	sc.Checkpoint = st3
	sc.Workers = 1
	if got := mustRun(t, e, sc); got != clean {
		t.Fatal("fully-restored output differs from clean run")
	}
	if h3.count() != 0 {
		t.Fatalf("fully-checkpointed resume still wrote %d checkpoints", h3.count())
	}
}

// TestResumeRejectsOtherConfig: checkpoints are bound to the budget knobs
// and seed via the config hash, so resuming under a different configuration
// re-runs everything rather than merging foreign shards.
func TestResumeRejectsOtherConfig(t *testing.T) {
	e, _ := ByName("MissQueueSecurity")
	dir := t.TempDir()
	sc := tinyScale()
	st, h := openStore(t, dir)
	sc.Checkpoint = st
	mustRun(t, e, sc)
	if h.count() != 3 {
		t.Fatalf("%d checkpoint writes, want 3", h.count())
	}

	changed := tinyScale()
	changed.AttackMaxSamples /= 2
	st2, h2 := openStore(t, dir)
	changed.Checkpoint = st2
	changed.Resume = true
	mustRun(t, e, changed)
	if h2.count() != 3 {
		t.Fatalf("changed-config resume reused checkpoints (%d writes, want 3)", h2.count())
	}

	seedChanged := tinyScale()
	seedChanged.Seed++
	st3, h3 := openStore(t, dir)
	seedChanged.Checkpoint = st3
	seedChanged.Resume = true
	mustRun(t, e, seedChanged)
	if h3.count() != 3 {
		t.Fatalf("changed-seed resume reused checkpoints (%d writes, want 3)", h3.count())
	}
}

// TestTable3ResumeByteIdentical exercises the cell-granular experiment: a
// half-checkpointed Table3 resumes to the clean bytes, re-running only the
// missing cells.
func TestTable3ResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("several tiny Table3 sweeps")
	}
	e, _ := ByName("Table3")
	sc := tinyScale()
	clean := mustRun(t, e, sc)

	dir := t.TempDir()
	st, h := openStore(t, dir)
	sc.Checkpoint = st
	if got := mustRun(t, e, sc); got != clean {
		t.Fatal("checkpointing changed the output")
	}
	if h.count() != 12 {
		t.Fatalf("%d checkpoint writes, want 12 (one per cell)", h.count())
	}
	files := ckptFiles(t, dir)
	for _, f := range files[:6] {
		if err := os.Remove(f); err != nil {
			t.Fatal(err)
		}
	}
	st2, h2 := openStore(t, dir)
	sc.Checkpoint = st2
	sc.Resume = true
	sc.Workers = 8
	if got := mustRun(t, e, sc); got != clean {
		t.Fatal("resumed Table3 differs from clean run")
	}
	if h2.count() != 6 {
		t.Fatalf("resume re-ran %d cells, want 6", h2.count())
	}
}

// TestCheckpointFileNamesCarryExperiment pins the operator-facing layout:
// one file per unit, named by experiment.
func TestCheckpointFileNamesCarryExperiment(t *testing.T) {
	e, _ := ByName("MissQueueSecurity")
	dir := t.TempDir()
	sc := tinyScale()
	st, _ := openStore(t, dir)
	sc.Checkpoint = st
	mustRun(t, e, sc)
	for _, f := range ckptFiles(t, dir) {
		if !strings.Contains(filepath.Base(f), "MissQueueSecurity") {
			t.Fatalf("checkpoint file %q does not name its experiment", f)
		}
	}
}
