package experiments

import (
	"bytes"
	"context"
	"os"
	"sync"
	"testing"

	"randfill/internal/checkpoint"
)

// resumableNames are the experiments that must expose a work-unit plan.
var resumableNames = []string{"Figure2", "Table3", "MissQueueSecurity", "OccupancyMatrix", "PolicyMatrix"}

// TestPlanForCoversExactlyTheResumables: every resumable experiment has a
// plan with sane identities; nothing else does.
func TestPlanForCoversExactlyTheResumables(t *testing.T) {
	sc := tinyScale()
	for _, name := range resumableNames {
		p, ok := PlanFor(name, sc)
		if !ok {
			t.Errorf("PlanFor(%q) = false, want a plan", name)
			continue
		}
		if p.Name != name || p.Units <= 0 {
			t.Errorf("PlanFor(%q) = {Name:%q Units:%d}", name, p.Name, p.Units)
		}
		hash := sc.configHash(name)
		for i := 0; i < p.Units; i++ {
			m := p.Meta(i)
			if m.Experiment != name || m.Shard != i || m.ConfigHash != hash {
				t.Errorf("%s unit %d meta = %+v", name, i, m)
			}
		}
		// Case-insensitive like ByName.
		if _, ok := PlanFor(name, sc); !ok {
			t.Errorf("PlanFor(%q) case-folded lookup failed", name)
		}
	}
	for _, name := range []string{"Figure5", "Defenses", "NoSuchExperiment"} {
		if _, ok := PlanFor(name, sc); ok {
			t.Errorf("PlanFor(%q) returned a plan for a non-resumable", name)
		}
	}
}

// TestPlanForUnitsMatchInProcessRun: executing units through WorkPlan.RunUnit
// (the fabric worker's path) writes checkpoints byte-identical to the ones
// the in-process runShards driver writes — the invariant the whole
// distributed fabric's correctness rests on.
func TestPlanForUnitsMatchInProcessRun(t *testing.T) {
	for _, name := range []string{"Figure2", "OccupancyMatrix"} {
		t.Run(name, func(t *testing.T) {
			sc := tinyScale()
			e, ok := ByName(name)
			if !ok {
				t.Fatal("experiment not registered")
			}

			// In-process checkpointing run.
			soloDir := t.TempDir()
			soloStore, _ := openStore(t, soloDir)
			scSolo := sc
			scSolo.Checkpoint = soloStore
			if _, err := e.Run(context.Background(), scSolo); err != nil {
				t.Fatal(err)
			}

			// Unit-at-a-time run through the exported plan.
			plan, ok := PlanFor(name, sc)
			if !ok {
				t.Fatal("no plan")
			}
			planDir := t.TempDir()
			planStore, _ := openStore(t, planDir)
			for i := 0; i < plan.Units; i++ {
				if err := plan.RunUnit(context.Background(), i, planStore); err != nil {
					t.Fatalf("unit %d: %v", i, err)
				}
			}

			soloFiles, planFiles := ckptFiles(t, soloDir), ckptFiles(t, planDir)
			if len(soloFiles) != plan.Units || len(planFiles) != plan.Units {
				t.Fatalf("file counts: solo %d, plan %d, want %d", len(soloFiles), len(planFiles), plan.Units)
			}
			for i := 0; i < plan.Units; i++ {
				m := plan.Meta(i)
				want, err := os.ReadFile(soloStore.Path(m))
				if err != nil {
					t.Fatal(err)
				}
				got, err := os.ReadFile(planStore.Path(m))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("unit %d: plan-run checkpoint differs from in-process run", i)
				}
			}
		})
	}
}

// TestTrackObservesExecutedUnitsOnly: the Track hook sees each executed
// unit start and finish, and stays silent for restored units.
func TestTrackObservesExecutedUnitsOnly(t *testing.T) {
	sc := tinyScale()
	dir := t.TempDir()
	st, _ := openStore(t, dir)
	sc.Checkpoint = st

	type obs struct {
		m    checkpoint.Meta
		done bool
	}
	var mu sync.Mutex
	var seen []obs
	sc.Track = func(m checkpoint.Meta, done bool) {
		mu.Lock()
		seen = append(seen, obs{m, done})
		mu.Unlock()
	}
	e, _ := ByName("Figure2")
	if _, err := e.Run(context.Background(), sc); err != nil {
		t.Fatal(err)
	}
	starts, finishes := 0, 0
	for _, o := range seen {
		if o.m.Experiment != "Figure2" {
			t.Errorf("tracked foreign unit %+v", o.m)
		}
		if o.done {
			finishes++
		} else {
			starts++
		}
	}
	if starts != 8 || finishes != 8 {
		t.Fatalf("tracked %d starts, %d finishes; want 8 each", starts, finishes)
	}

	// A fully-restored resume run executes nothing and tracks nothing.
	seen = nil
	sc.Resume = true
	if _, err := e.Run(context.Background(), sc); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 0 {
		t.Fatalf("restored run tracked %d events, want 0", len(seen))
	}
}
